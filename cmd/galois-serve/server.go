package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
)

// server is the concurrent SQL front end over one shared core.Runtime:
// every request opens a cheap session, executes under the runtime's
// engine-global fair-share scheduler, and renders the relation as JSON.
// A bounded admission gate caps how many queries execute at once;
// requests beyond it queue (and leave the queue when their client
// disconnects).
type server struct {
	rt            *core.Runtime
	gate          chan struct{}
	maxConcurrent int
	maxQueue      int
	queryTimeout  time.Duration
	mux           *http.ServeMux

	queries   atomic.Int64 // completed (ok or failed) queries
	active    atomic.Int64 // currently executing (inside the gate)
	maxActive atomic.Int64 // high-water mark of active
	waiting   atomic.Int64 // admitted requests waiting for a slot
	shed      atomic.Int64 // requests refused with 503 (queue full / breaker)
	timeouts  atomic.Int64 // queries answered 504 (deadline expired)
}

// serverConfig tunes the front end's degradation behavior alongside the
// admission gate.
type serverConfig struct {
	// maxConcurrent bounds simultaneously executing queries (0 or
	// negative means 2× the scheduler's per-endpoint worker budget —
	// enough to keep the pool busy without unbounded overcommit).
	maxConcurrent int
	// maxQueue bounds requests waiting for an execution slot; one past
	// it is refused immediately with 503 + Retry-After instead of
	// queueing without bound (0 or negative means 4× maxConcurrent).
	maxQueue int
	// queryTimeout bounds one query end to end; expiry answers 504
	// (0 means no server-imposed deadline).
	queryTimeout time.Duration
}

// newServer wires the routes over the runtime.
func newServer(rt *core.Runtime, cfg serverConfig) *server {
	if cfg.maxConcurrent <= 0 {
		cfg.maxConcurrent = 2 * rt.Options().BatchWorkers
	}
	if cfg.maxQueue <= 0 {
		cfg.maxQueue = 4 * cfg.maxConcurrent
	}
	s := &server{
		rt:            rt,
		gate:          make(chan struct{}, cfg.maxConcurrent),
		maxConcurrent: cfg.maxConcurrent,
		maxQueue:      cfg.maxQueue,
		queryTimeout:  cfg.queryTimeout,
		mux:           http.NewServeMux(),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// queryResponse is the JSON rendering of one executed query.
type queryResponse struct {
	Columns  []string   `json:"columns"`
	Types    []string   `json:"types"`
	Rows     [][]string `json:"rows"`
	RowCount int        `json:"row_count"`
	Plan     string     `json:"plan,omitempty"`
	// Cached reports how the runtime's result cache answered the query:
	// false (executed against the base tables), "exact" (relation served
	// verbatim — zero prompts, no planning beyond the logical build), or
	// "subsumed" (a residual plan evaluated locally over a cached
	// relation — zero prompts).
	Cached any        `json:"cached"`
	Stats  queryStats `json:"stats"`
}

// cachedJSON renders a report's cache outcome for the wire: false when
// the query executed, the outcome string otherwise. Older clients that
// treated the field as a boolean read both "exact" and "subsumed" as
// truthy.
func cachedJSON(c core.CacheOutcome) any {
	if c == core.CacheNone {
		return false
	}
	return string(c)
}

// queryStats is the per-query usage summary.
type queryStats struct {
	Prompts            int     `json:"prompts"`
	PromptTokens       int     `json:"prompt_tokens"`
	CompletionTokens   int     `json:"completion_tokens"`
	CacheHits          int     `json:"cache_hits"`
	CacheMisses        int     `json:"cache_misses"`
	SimulatedLatencyMS float64 `json:"simulated_latency_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// handleQuery executes one SQL statement: the `q` form/query parameter,
// or the raw request body. `?plan=1` includes the executed plan.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Only GET and POST carry queries; anything else (PUT, DELETE,
	// arbitrary verbs) must not execute SQL.
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed on /query; use GET or POST", r.Method))
		return
	}
	sql, err := querySQL(r)
	if err != nil {
		// An over-limit body is its own status: truncating it would
		// execute a prefix of the client's statement (or fail with a
		// confusing parse error mid-token).
		status := http.StatusBadRequest
		if errors.Is(err, errBodyTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	// Reject malformed ?plan= up front: silently treating a typo as
	// "no plan" hides the mistake from the client.
	wantPlan, err := planParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Admission gate: at most maxConcurrent queries execute at once, at
	// most maxQueue wait for a slot; anything past both is shed
	// immediately — an overloaded server must answer "come back later"
	// fast, not queue without bound until everything times out.
	ctx := r.Context()
	select {
	case s.gate <- struct{}{}:
		// A free execution slot: admitted immediately, never queued. The
		// fast path must not touch the waiting count — a simultaneous
		// burst onto an idle server is not queue pressure, and counting
		// it as such would shed requests while slots sit free.
	default:
		// All slots busy: this request actually has to wait, so it is
		// subject to the queue bound.
		if n := s.waiting.Add(1); n > int64(s.maxQueue) {
			s.waiting.Add(-1)
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("admission queue saturated (%d executing, %d waiting); retry later", s.maxConcurrent, s.maxQueue))
			return
		}
		select {
		case s.gate <- struct{}{}:
			s.waiting.Add(-1)
			if ctx.Err() != nil {
				// The client was already gone when the slot freed (with both
				// select cases ready either may win): hand the slot back and
				// do not count the request as a served query.
				<-s.gate
				writeError(w, http.StatusServiceUnavailable, fmt.Errorf("request cancelled while queued for admission"))
				return
			}
		case <-ctx.Done():
			s.waiting.Add(-1)
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("request cancelled while queued for admission"))
			return
		}
	}
	defer func() { <-s.gate }()
	n := s.active.Add(1)
	for {
		high := s.maxActive.Load()
		if n <= high || s.maxActive.CompareAndSwap(high, n) {
			break
		}
	}
	defer s.active.Add(-1)
	defer s.queries.Add(1)

	// Malformed or unexecutable SQL is the client's fault and must not
	// surface as a server error; check it up front so everything failing
	// later — planning against the shared bindings, the model backend —
	// maps to 5xx, which retry policies and monitoring treat correctly.
	stmt, err := parser.Parse(sql)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch stmt.(type) {
	case *ast.Select, *ast.Explain:
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("only SELECT and EXPLAIN statements can be served"))
		return
	}

	// The server-imposed per-query deadline: a query that outlives it
	// answers 504 instead of holding its execution slot indefinitely.
	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.queryTimeout)
		defer cancel()
	}

	sess := s.rt.NewSession()
	rel, rep, err := sess.Query(ctx, sql)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}

	resp := queryResponse{
		Columns:  make([]string, rel.Schema.Len()),
		Types:    make([]string, rel.Schema.Len()),
		Rows:     make([][]string, 0, rel.Cardinality()),
		RowCount: rel.Cardinality(),
		Cached:   cachedJSON(rep.Cached),
		Stats: queryStats{
			Prompts:            rep.Stats.Prompts,
			PromptTokens:       rep.Stats.PromptTokens,
			CompletionTokens:   rep.Stats.CompletionTokens,
			CacheHits:          rep.Stats.CacheHits,
			CacheMisses:        rep.Stats.CacheMisses,
			SimulatedLatencyMS: float64(rep.Stats.SimulatedLatency) / float64(time.Millisecond),
		},
	}
	for i, c := range rel.Schema.Columns {
		resp.Columns[i] = c.QualifiedName()
		resp.Types[i] = c.Type.String()
	}
	for _, row := range rel.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		resp.Rows = append(resp.Rows, cells)
	}
	if wantPlan {
		resp.Plan = rep.Plan
	}
	writeJSON(w, http.StatusOK, resp)
}

// planParam parses the optional `plan` query parameter. Absent (or
// empty) means no plan; any other value must parse as a bool — a
// malformed value like ?plan=frobnicate is the client's error, not a
// silent "no plan".
func planParam(r *http.Request) (bool, error) {
	raw := r.URL.Query().Get("plan")
	if raw == "" {
		return false, nil
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return false, fmt.Errorf("invalid plan parameter %q: want a boolean (1/0/true/false)", raw)
	}
	return v, nil
}

// maxBodyBytes bounds a /query request body; a body past it answers 413
// rather than being silently truncated to a SQL prefix.
const maxBodyBytes = 1 << 20

// errBodyTooLarge marks an over-limit request body for the 413 mapping.
var errBodyTooLarge = errors.New("request body exceeds 1 MiB; pass the statement via ?q= or shorten it")

// querySQL extracts the SQL statement from a request: the `q` URL query
// parameter, the `q` field of a form-encoded body, or the raw request
// body.
func querySQL(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); strings.TrimSpace(q) != "" {
		return strings.TrimSpace(q), nil
	}
	if r.Body == nil {
		return "", fmt.Errorf("missing SQL: pass ?q= or a request body")
	}
	// Read one byte past the limit: exactly-at-limit bodies pass, anything
	// longer is detected instead of truncated.
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return "", fmt.Errorf("reading request body: %w", err)
	}
	if len(body) > maxBodyBytes {
		return "", errBodyTooLarge
	}
	// Clients POSTing with curl -d send the form content type whether the
	// body is `q=<urlencoded SQL>` or the bare statement, so accept both:
	// a parseable q field wins, anything else is taken as raw SQL.
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/x-www-form-urlencoded") {
		if vals, err := url.ParseQuery(string(body)); err == nil {
			if sql := strings.TrimSpace(vals.Get("q")); sql != "" {
				return sql, nil
			}
		}
	}
	if sql := strings.TrimSpace(string(body)); sql != "" {
		return sql, nil
	}
	return "", fmt.Errorf("missing SQL: pass ?q= or a request body")
}

// writeQueryError maps an execution failure onto the HTTP status retry
// policies expect: 504 when a deadline (the server's -query-timeout or
// the client's own) expired mid-query, 503 + Retry-After when the model
// endpoint's circuit breaker shed the call, 503 when the client
// disconnected mid-flight, 500 for everything else.
func (s *server) writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case llm.Classify(err) == llm.ClassBreakerOpen:
		s.shed.Add(1)
		w.Header().Set("Retry-After", s.breakerRetryAfter())
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// breakerRetryAfter renders the Retry-After a breaker-shed client
// should honor: the breaker's own cooldown, floored at one second.
func (s *server) breakerRetryAfter() string {
	cooldown := s.rt.Options().BreakerCooldown
	if cooldown <= 0 {
		cooldown = llm.DefaultBreakerCooldown
	}
	secs := int(cooldown / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// healthResponse is the /healthz JSON: overall readiness plus the
// breaker position of every resilient model endpoint.
type healthResponse struct {
	Status    string                `json:"status"`
	Endpoints []core.EndpointHealth `json:"endpoints,omitempty"`
}

// handleHealthz reports liveness and readiness. The server is "ok" when
// no breaker is open, "degraded" (still 200 — some backends answer)
// when some are, and "unavailable" with 503 when every model endpoint's
// breaker is open: a probe should stop routing traffic here, because no
// query touching the model can succeed until a cooldown probe heals one.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	eps := s.rt.ResilienceHealth()
	open := 0
	for _, ep := range eps {
		if ep.Breaker == llm.BreakerOpen.String() {
			open++
		}
	}
	status, code := "ok", http.StatusOK
	switch {
	case len(eps) > 0 && open == len(eps):
		status, code = "unavailable", http.StatusServiceUnavailable
	case open > 0:
		status = "degraded"
	}
	writeJSON(w, code, healthResponse{Status: status, Endpoints: eps})
}

// serverStats is the /stats JSON: serving counters plus the shared
// runtime tiers' views.
type serverStats struct {
	QueriesServed int64 `json:"queries_served"`
	Active        int64 `json:"active"`
	MaxActive     int64 `json:"max_active"`
	Waiting       int64 `json:"waiting"`
	MaxConcurrent int   `json:"max_concurrent"`
	Workers       int   `json:"workers_per_endpoint"`
	CacheHits     int   `json:"cache_hits"`
	CacheMisses   int   `json:"cache_misses"`
	CacheEntries  int   `json:"cache_entries"`
	// Result-cache counters: whole relations served without planning or
	// prompts (exact hits), queries answered by a residual plan over a
	// cached relation (subsumed hits), resident entries and their
	// approximate bytes, plus the binding epochs — the total bump count
	// and the per-component breakdown entries are currently keyed under.
	ResultCacheHits         int               `json:"result_cache_hits"`
	ResultCacheSubsumedHits int               `json:"result_cache_subsumed_hits"`
	ResultCacheMisses       int               `json:"result_cache_misses"`
	ResultCacheEntries      int               `json:"result_cache_entries"`
	ResultCacheBytes        int               `json:"result_cache_bytes"`
	Epoch                   uint64            `json:"epoch"`
	TableEpochs             map[string]uint64 `json:"table_epochs"`
	// Degradation counters and the per-endpoint resilience snapshot:
	// requests shed with 503 (saturated queue or open breaker), queries
	// answered 504, the queue bound, and each model endpoint's breaker
	// state with its retry/fault accounting.
	MaxQueue   int                   `json:"max_queue"`
	Shed       int64                 `json:"shed"`
	Timeouts   int64                 `json:"timeouts"`
	Resilience []core.EndpointHealth `json:"resilience,omitempty"`
	// Persistence snapshots the durable tier (zero/disabled without
	// -data-dir): what warm start restored, what it rejected, and the
	// segment store's own accounting.
	Persistence core.PersistCounters `json:"persistence"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.rt.CacheStats()
	rcs := s.rt.ResultCacheStats()
	writeJSON(w, http.StatusOK, serverStats{
		QueriesServed:      s.queries.Load(),
		Active:             s.active.Load(),
		MaxActive:          s.maxActive.Load(),
		Waiting:            s.waiting.Load(),
		MaxConcurrent:      s.maxConcurrent,
		Workers:            s.rt.Options().BatchWorkers,
		CacheHits:          cs.Hits,
		CacheMisses:        cs.Misses,
		CacheEntries:       cs.Entries,
		ResultCacheHits:         rcs.Hits,
		ResultCacheSubsumedHits: rcs.SubsumedHits,
		ResultCacheMisses:       rcs.Misses,
		ResultCacheEntries:      rcs.Entries,
		ResultCacheBytes:        rcs.Bytes,
		Epoch:                   s.rt.Epoch(),
		TableEpochs:             s.rt.TableEpochs(),
		MaxQueue:                s.maxQueue,
		Shed:                    s.shed.Load(),
		Timeouts:                s.timeouts.Load(),
		Resilience:              s.rt.ResilienceHealth(),
		Persistence:             s.rt.Persistence(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
