package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
)

// server is the concurrent SQL front end over one shared core.Runtime:
// every request opens a cheap session, executes under the runtime's
// engine-global deficit-weighted scheduler, and renders the relation as
// JSON — buffered, or streamed row by row (NDJSON / SSE) as the
// pipelined executor yields tuples. An adaptive AIMD admission
// controller decides how many queries execute at once; requests beyond
// it queue (and leave the queue when their client disconnects), and are
// shed only when the controller has already collapsed to its floor.
type server struct {
	rt            *core.Runtime
	adm           *admission
	maxConcurrent int
	maxQueue      int
	queryTimeout  time.Duration
	mux           *http.ServeMux

	queries   atomic.Int64 // completed (ok or failed) queries
	active    atomic.Int64 // currently executing (inside the gate)
	maxActive atomic.Int64 // high-water mark of active
	waiting   atomic.Int64 // admitted requests waiting for a slot
	shed      atomic.Int64 // requests refused with 503 (queue full / breaker)
	timeouts  atomic.Int64 // queries answered 504 (deadline expired)
}

// serverConfig tunes the front end's degradation behavior alongside the
// admission controller.
type serverConfig struct {
	// maxConcurrent is the admission controller's ceiling on
	// simultaneously executing queries (0 or negative means 2× the
	// scheduler's per-endpoint worker budget — enough to keep the pool
	// busy without unbounded overcommit).
	maxConcurrent int
	// maxQueue bounds requests waiting for an execution slot. While the
	// adaptive limit is above its floor a full queue cuts the limit and
	// still admits the request into the queue; at the floor the bound is
	// hard and one past it is refused immediately with 503 + Retry-After
	// (0 or negative means 4× maxConcurrent).
	maxQueue int
	// queryTimeout bounds one query end to end; expiry answers 504
	// (0 means no server-imposed deadline).
	queryTimeout time.Duration
	// admissionFloor is the adaptive limit's lower bound — the
	// concurrency the server insists on even when every completion
	// reports congestion (0 means maxConcurrent/4, minimum 1).
	admissionFloor int
	// admissionCooldown spaces multiplicative limit cuts (0 means the
	// 250ms default; negative disables the rate limit — tests drive
	// deterministic cut sequences that way).
	admissionCooldown time.Duration
}

// newServer wires the routes over the runtime.
func newServer(rt *core.Runtime, cfg serverConfig) *server {
	if cfg.maxConcurrent <= 0 {
		cfg.maxConcurrent = 2 * rt.Options().BatchWorkers
	}
	if cfg.maxQueue <= 0 {
		cfg.maxQueue = 4 * cfg.maxConcurrent
	}
	s := &server{
		rt:            rt,
		maxConcurrent: cfg.maxConcurrent,
		maxQueue:      cfg.maxQueue,
		queryTimeout:  cfg.queryTimeout,
		mux:           http.NewServeMux(),
	}
	s.adm = newAdmission(cfg.maxConcurrent, cfg.admissionFloor, cfg.maxQueue, cfg.admissionCooldown, &s.waiting)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// queryResponse is the JSON rendering of one executed query.
type queryResponse struct {
	Columns  []string   `json:"columns"`
	Types    []string   `json:"types"`
	Rows     [][]string `json:"rows"`
	RowCount int        `json:"row_count"`
	Plan     string     `json:"plan,omitempty"`
	// Cached reports how the runtime's result cache answered the query:
	// false (executed against the base tables), "exact" (relation served
	// verbatim — zero prompts, no planning beyond the logical build), or
	// "subsumed" (a residual plan evaluated locally over a cached
	// relation — zero prompts).
	Cached any        `json:"cached"`
	Stats  queryStats `json:"stats"`
}

// cachedJSON renders a report's cache outcome for the wire: false when
// the query executed, the outcome string otherwise. Older clients that
// treated the field as a boolean read both "exact" and "subsumed" as
// truthy.
func cachedJSON(c core.CacheOutcome) any {
	if c == core.CacheNone {
		return false
	}
	return string(c)
}

// queryStats is the per-query usage summary.
type queryStats struct {
	Prompts            int     `json:"prompts"`
	PromptTokens       int     `json:"prompt_tokens"`
	CompletionTokens   int     `json:"completion_tokens"`
	CacheHits          int     `json:"cache_hits"`
	CacheMisses        int     `json:"cache_misses"`
	SimulatedLatencyMS float64 `json:"simulated_latency_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// handleQuery executes one SQL statement: the `q` form/query parameter,
// or the raw request body. `?plan=1` includes the executed plan;
// `?class=batch` runs the query in the scheduler's batch band and
// `?weight=N` scales its deficit share; `Accept: application/x-ndjson`
// (or `?stream=1` for SSE) streams rows as the executor yields them.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Only GET and POST carry queries; anything else (PUT, DELETE,
	// arbitrary verbs) must not execute SQL.
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed on /query; use GET or POST", r.Method))
		return
	}
	sql, err := querySQL(r)
	if err != nil {
		// An over-limit body is its own status: truncating it would
		// execute a prefix of the client's statement (or fail with a
		// confusing parse error mid-token).
		status := http.StatusBadRequest
		if errors.Is(err, errBodyTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	// Reject malformed ?plan= up front: silently treating a typo as
	// "no plan" hides the mistake from the client.
	wantPlan, err := planParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Likewise ?class=/?weight= (scheduler band and deficit share) and
	// ?stream= (delivery encoding): a typo is the client's error, not a
	// silent fallback to the defaults.
	class, weight, err := admissionParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mode, err := streamMode(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// ?route=role=backend[,role=backend...] pins this query's prompt
	// roles to named backends; roles and backend names are validated up
	// front so a typo answers 400 instead of executing unrouted.
	routes, err := s.routeParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Adaptive admission: at most limit (floor..max-concurrent, moved by
	// AIMD on completion signals) queries execute at once; excess waits
	// FIFO, and is shed with 503 only once the controller has already
	// collapsed to its floor and the queue is at its bound — an
	// overloaded server must answer "come back later" fast, not queue
	// doomed work until everything times out.
	ctx := r.Context()
	isBatch := class == llm.ClassBatch.String()
	switch err := s.adm.acquireClass(ctx.Done(), isBatch); {
	case errors.Is(err, errAdmissionShed):
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("admission saturated (concurrency at floor, %d waiting); retry later", s.maxQueue))
		return
	case err != nil:
		// Cancelled while queued: the client is gone, do not count the
		// request as a served query.
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	// Releasing the slot samples this completion's congestion signals
	// (scheduler backlog, breaker state) into the adaptive limit.
	defer func() { s.adm.releaseClass(s.congested(), isBatch) }()
	n := s.active.Add(1)
	for {
		high := s.maxActive.Load()
		if n <= high || s.maxActive.CompareAndSwap(high, n) {
			break
		}
	}
	defer s.active.Add(-1)
	defer s.queries.Add(1)

	// Malformed or unexecutable SQL is the client's fault and must not
	// surface as a server error; check it up front so everything failing
	// later — planning against the shared bindings, the model backend —
	// maps to 5xx, which retry policies and monitoring treat correctly.
	stmt, err := parser.Parse(sql)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch stmt.(type) {
	case *ast.Select, *ast.Explain:
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("only SELECT and EXPLAIN statements can be served"))
		return
	}

	// The server-imposed per-query deadline: a query that outlives it
	// answers 504 instead of holding its execution slot indefinitely.
	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.queryTimeout)
		defer cancel()
	}

	sess := s.rt.NewSession()
	if class != "" || weight > 0 || len(routes) > 0 {
		o := sess.Options()
		o.AdmissionClass = class
		o.AdmissionWeight = weight
		o.Routes = routes
		sess.SetOptions(o)
	}

	if mode != streamNone {
		if fl, ok := w.(http.Flusher); ok {
			s.streamQuery(ctx, w, fl, sess, sql, mode, wantPlan)
			return
		}
		// The response writer can't flush (buffering middleware, some
		// test recorders): degrade to the buffered JSON body below
		// rather than holding rows hostage in an unflushable pipe.
	}

	rel, rep, err := sess.Query(ctx, sql)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}

	resp := queryResponse{
		Columns:  make([]string, rel.Schema.Len()),
		Types:    make([]string, rel.Schema.Len()),
		Rows:     make([][]string, 0, rel.Cardinality()),
		RowCount: rel.Cardinality(),
		Cached:   cachedJSON(rep.Cached),
		Stats: queryStats{
			Prompts:            rep.Stats.Prompts,
			PromptTokens:       rep.Stats.PromptTokens,
			CompletionTokens:   rep.Stats.CompletionTokens,
			CacheHits:          rep.Stats.CacheHits,
			CacheMisses:        rep.Stats.CacheMisses,
			SimulatedLatencyMS: float64(rep.Stats.SimulatedLatency) / float64(time.Millisecond),
		},
	}
	for i, c := range rel.Schema.Columns {
		resp.Columns[i] = c.QualifiedName()
		resp.Types[i] = c.Type.String()
	}
	for _, row := range rel.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		resp.Rows = append(resp.Rows, cells)
	}
	if wantPlan {
		resp.Plan = rep.Plan
	}
	writeJSON(w, http.StatusOK, resp)
}

// planParam parses the optional `plan` query parameter. Absent (or
// empty) means no plan; any other value must parse as a bool — a
// malformed value like ?plan=frobnicate is the client's error, not a
// silent "no plan".
func planParam(r *http.Request) (bool, error) {
	raw := r.URL.Query().Get("plan")
	if raw == "" {
		return false, nil
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return false, fmt.Errorf("invalid plan parameter %q: want a boolean (1/0/true/false)", raw)
	}
	return v, nil
}

// admissionParams parses the optional `class` and `weight` query
// parameters — the scheduler band the query runs in and its deficit
// share within it. Unknown class spellings and out-of-range weights are
// the client's error: silently running a "btach" query interactive
// would defeat the operator's intent.
func admissionParams(r *http.Request) (class string, weight int, err error) {
	q := r.URL.Query()
	class = q.Get("class")
	if _, err := llm.ParseClass(class); err != nil {
		return "", 0, err
	}
	if raw := q.Get("weight"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 || v > maxAdmissionWeight {
			return "", 0, fmt.Errorf("invalid weight parameter %q: want an integer in [1,%d]", raw, maxAdmissionWeight)
		}
		weight = v
	}
	return class, weight, nil
}

// maxAdmissionWeight caps the per-request deficit weight: a weight is a
// relative share, and an unbounded one would let a single client vote
// itself the whole band.
const maxAdmissionWeight = 64

// routeParam parses the optional `route` query parameter —
// role=backend pairs separated by commas — into the session's route
// overrides, validating each role spelling and backend name against the
// runtime's registry.
func (s *server) routeParam(r *http.Request) (map[string]string, error) {
	raw := r.URL.Query().Get("route")
	if raw == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		role, backend, ok := strings.Cut(part, "=")
		role, backend = strings.TrimSpace(role), strings.TrimSpace(backend)
		if !ok || role == "" || backend == "" {
			return nil, fmt.Errorf("invalid route entry %q: want role=backend", part)
		}
		if _, err := llm.ParseRole(role); err != nil {
			return nil, fmt.Errorf("invalid route parameter: %w", err)
		}
		if _, ok := s.rt.Registry().Get(backend); !ok {
			return nil, fmt.Errorf("invalid route parameter: backend %q not declared", backend)
		}
		out[role] = backend
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("invalid route parameter %q: no role=backend pairs", raw)
	}
	return out, nil
}

// congested reports whether this instant looks like backpressure, the
// signal the admission controller folds in at each query completion:
// the scheduler holding more queued prompts than its worker budget can
// start (queries are stacking up behind the model), or any endpoint's
// circuit breaker away from closed (the backend is failing or still
// probing its way back).
func (s *server) congested() bool {
	g := s.rt.SchedulerGauges()
	if g.Interactive.Queued+g.Batch.Queued > g.Workers {
		return true
	}
	for _, ep := range s.rt.ResilienceHealth() {
		if ep.Breaker != llm.BreakerClosed.String() {
			return true
		}
	}
	return false
}

// maxBodyBytes bounds a /query request body; a body past it answers 413
// rather than being silently truncated to a SQL prefix.
const maxBodyBytes = 1 << 20

// errBodyTooLarge marks an over-limit request body for the 413 mapping.
var errBodyTooLarge = errors.New("request body exceeds 1 MiB; pass the statement via ?q= or shorten it")

// querySQL extracts the SQL statement from a request: the `q` URL query
// parameter, the `q` field of a form-encoded body, or the raw request
// body.
func querySQL(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); strings.TrimSpace(q) != "" {
		return strings.TrimSpace(q), nil
	}
	if r.Body == nil {
		return "", fmt.Errorf("missing SQL: pass ?q= or a request body")
	}
	// Read one byte past the limit: exactly-at-limit bodies pass, anything
	// longer is detected instead of truncated.
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return "", fmt.Errorf("reading request body: %w", err)
	}
	if len(body) > maxBodyBytes {
		return "", errBodyTooLarge
	}
	// Clients POSTing with curl -d send the form content type whether the
	// body is `q=<urlencoded SQL>` or the bare statement, so accept both:
	// a parseable q field wins, anything else is taken as raw SQL.
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/x-www-form-urlencoded") {
		if vals, err := url.ParseQuery(string(body)); err == nil {
			if sql := strings.TrimSpace(vals.Get("q")); sql != "" {
				return sql, nil
			}
		}
	}
	if sql := strings.TrimSpace(string(body)); sql != "" {
		return sql, nil
	}
	return "", fmt.Errorf("missing SQL: pass ?q= or a request body")
}

// writeQueryError maps an execution failure onto the HTTP status retry
// policies expect: 504 when a deadline (the server's -query-timeout or
// the client's own) expired mid-query, 503 + Retry-After when the model
// endpoint's circuit breaker shed the call, 503 when the client
// disconnected mid-flight, 500 for everything else.
func (s *server) writeQueryError(w http.ResponseWriter, err error) {
	s.noteQueryError(err)
	switch {
	case llm.Classify(err) == llm.ClassBreakerOpen:
		w.Header().Set("Retry-After", s.breakerRetryAfter())
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// noteQueryError folds one failed query into the degradation counters,
// independent of how the failure reaches the client — the status line
// for buffered responses, an in-band error frame for streams already
// past their headers.
func (s *server) noteQueryError(err error) {
	switch {
	case llm.Classify(err) == llm.ClassBreakerOpen:
		s.shed.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
	}
}

// breakerRetryAfter renders the Retry-After a breaker-shed client
// should honor: the breaker's own cooldown, floored at one second.
func (s *server) breakerRetryAfter() string {
	cooldown := s.rt.Options().BreakerCooldown
	if cooldown <= 0 {
		cooldown = llm.DefaultBreakerCooldown
	}
	secs := int(cooldown / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// healthResponse is the /healthz JSON: overall readiness plus the
// breaker position of every resilient model endpoint.
type healthResponse struct {
	Status    string                `json:"status"`
	Endpoints []core.EndpointHealth `json:"endpoints,omitempty"`
}

// handleHealthz reports liveness and readiness. The server is "ok" when
// no breaker is open, "degraded" (still 200 — some backends answer)
// when some are, and "unavailable" with 503 when every model endpoint's
// breaker is open: a probe should stop routing traffic here, because no
// query touching the model can succeed until a cooldown probe heals one.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	eps := s.rt.ResilienceHealth()
	open := 0
	for _, ep := range eps {
		if ep.Breaker == llm.BreakerOpen.String() {
			open++
		}
	}
	status, code := "ok", http.StatusOK
	switch {
	case len(eps) > 0 && open == len(eps):
		status, code = "unavailable", http.StatusServiceUnavailable
	case open > 0:
		status = "degraded"
	}
	writeJSON(w, code, healthResponse{Status: status, Endpoints: eps})
}

// serverStats is the /stats JSON: serving counters plus the shared
// runtime tiers' views.
type serverStats struct {
	QueriesServed int64 `json:"queries_served"`
	Active        int64 `json:"active"`
	MaxActive     int64 `json:"max_active"`
	Waiting       int64 `json:"waiting"`
	MaxConcurrent int   `json:"max_concurrent"`
	Workers       int   `json:"workers_per_endpoint"`
	CacheHits     int   `json:"cache_hits"`
	CacheMisses   int   `json:"cache_misses"`
	CacheEntries  int   `json:"cache_entries"`
	// Result-cache counters: whole relations served without planning or
	// prompts (exact hits), queries answered by a residual plan over a
	// cached relation (subsumed hits), resident entries and their
	// approximate bytes, plus the binding epochs — the total bump count
	// and the per-component breakdown entries are currently keyed under.
	ResultCacheHits         int               `json:"result_cache_hits"`
	ResultCacheSubsumedHits int               `json:"result_cache_subsumed_hits"`
	ResultCacheMisses       int               `json:"result_cache_misses"`
	ResultCacheEntries      int               `json:"result_cache_entries"`
	ResultCacheBytes        int               `json:"result_cache_bytes"`
	Epoch                   uint64            `json:"epoch"`
	TableEpochs             map[string]uint64 `json:"table_epochs"`
	// Degradation counters and the per-endpoint resilience snapshot:
	// requests shed with 503 (saturated queue or open breaker), queries
	// answered 504, the queue bound, and each model endpoint's breaker
	// state with its retry/fault accounting.
	MaxQueue   int                   `json:"max_queue"`
	Shed       int64                 `json:"shed"`
	Timeouts   int64                 `json:"timeouts"`
	Resilience []core.EndpointHealth `json:"resilience,omitempty"`
	// Backends lists every model backend the runtime routes over — name,
	// underlying model, pricing coefficients, fallback chain, lifetime
	// prompt count and breaker state — and Failovers counts the prompts
	// that failed over to a fallback backend, runtime-lifetime.
	Backends  []core.BackendStatus `json:"backends,omitempty"`
	Failovers int64                `json:"failovers"`
	// Admission is the AIMD controller's live position: the effective
	// concurrency limit between its floor and max_concurrent, and how
	// many additive growths / multiplicative cuts moved it there.
	Admission admissionStats `json:"admission"`
	// Sched is the engine-global scheduler's dispatch state: per-class
	// queued/busy prompt counts and the cumulative drain counters of the
	// deficit-weighted bands.
	Sched llm.SchedulerGauges `json:"sched"`
	// Persistence snapshots the durable tier (zero/disabled without
	// -data-dir): what warm start restored, what it rejected, and the
	// segment store's own accounting.
	Persistence core.PersistCounters `json:"persistence"`
}

// admissionStats is the /stats rendering of the adaptive gate.
type admissionStats struct {
	Limit     int   `json:"limit"`
	Floor     int   `json:"floor"`
	Ceil      int   `json:"ceil"`
	Increases int64 `json:"increases"`
	Decreases int64 `json:"decreases"`
	// BatchLimit/BatchActive are the batch band's sub-limit inside the
	// global limit and its current occupancy — the headroom congestion
	// sheds before cutting interactive capacity.
	BatchLimit  int `json:"batch_limit"`
	BatchActive int `json:"batch_active"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.rt.CacheStats()
	rcs := s.rt.ResultCacheStats()
	limit, floor, ceil, inc, dec := s.adm.snapshot()
	batchLimit, batchActive := s.adm.batchSnapshot()
	writeJSON(w, http.StatusOK, serverStats{
		QueriesServed:           s.queries.Load(),
		Active:                  s.active.Load(),
		MaxActive:               s.maxActive.Load(),
		Waiting:                 s.waiting.Load(),
		MaxConcurrent:           s.maxConcurrent,
		Workers:                 s.rt.Options().BatchWorkers,
		CacheHits:               cs.Hits,
		CacheMisses:             cs.Misses,
		CacheEntries:            cs.Entries,
		ResultCacheHits:         rcs.Hits,
		ResultCacheSubsumedHits: rcs.SubsumedHits,
		ResultCacheMisses:       rcs.Misses,
		ResultCacheEntries:      rcs.Entries,
		ResultCacheBytes:        rcs.Bytes,
		Epoch:                   s.rt.Epoch(),
		TableEpochs:             s.rt.TableEpochs(),
		MaxQueue:                s.maxQueue,
		Shed:                    s.shed.Load(),
		Timeouts:                s.timeouts.Load(),
		Resilience:              s.rt.ResilienceHealth(),
		Backends:                s.rt.BackendStatuses(),
		Failovers:               s.rt.Failovers(),
		Admission:               admissionStats{Limit: limit, Floor: floor, Ceil: ceil, Increases: inc, Decreases: dec, BatchLimit: batchLimit, BatchActive: batchActive},
		Sched:                   s.rt.SchedulerGauges(),
		Persistence:             s.rt.Persistence(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
