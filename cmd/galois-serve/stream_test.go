package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/simllm"
)

// streamFrame is the union of every frame type, for decoding test
// streams line by line.
type streamFrame struct {
	Type     string     `json:"type"`
	Columns  []string   `json:"columns"`
	Types    []string   `json:"types"`
	Cached   any        `json:"cached"`
	Cells    []string   `json:"cells"`
	VTMS     float64    `json:"vt_ms"`
	RowCount int        `json:"row_count"`
	Plan     string     `json:"plan"`
	Stats    queryStats `json:"stats"`
	Error    string     `json:"error"`
}

// readNDJSON decodes every frame of an NDJSON response body.
func readNDJSON(t *testing.T, body *bufio.Scanner) []streamFrame {
	t.Helper()
	var frames []streamFrame
	for body.Scan() {
		line := strings.TrimSpace(body.Text())
		if line == "" {
			continue
		}
		var f streamFrame
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		frames = append(frames, f)
	}
	return frames
}

// TestServeStreamNDJSON: Accept: application/x-ndjson delivers the
// query as header / rows / stats frames carrying exactly the rows and
// accounting of the buffered response — and the first row's virtual
// availability time precedes the relation's completion, proving rows
// left the server before the full result existed (the whole point of
// streaming; checkable deterministically because time is simulated).
func TestServeStreamNDJSON(t *testing.T) {
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	_, rt := testRuntime(t, opts)
	ts := httptest.NewServer(newServer(rt, serverConfig{maxConcurrent: 4}))
	defer ts.Close()

	const sql = `SELECT name, population FROM city WHERE population > 1000000`

	// Buffered baseline on an identical, separate runtime.
	_, baseRT := testRuntime(t, opts)
	rel, rep, err := baseRT.NewSession().Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(sql))
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	frames := readNDJSON(t, bufio.NewScanner(resp.Body))
	if len(frames) < 3 {
		t.Fatalf("got %d frames, want header + rows + stats", len(frames))
	}
	head, tail := frames[0], frames[len(frames)-1]
	if head.Type != "header" {
		t.Fatalf("first frame type = %q, want header", head.Type)
	}
	if tail.Type != "stats" {
		t.Fatalf("last frame type = %q, want stats", tail.Type)
	}

	// Same schema, same rows, same order as the buffered path.
	if len(head.Columns) != rel.Schema.Len() {
		t.Fatalf("header columns = %v", head.Columns)
	}
	rowFrames := frames[1 : len(frames)-1]
	if len(rowFrames) != len(rel.Rows) || tail.RowCount != len(rel.Rows) {
		t.Fatalf("streamed %d rows (row_count %d), baseline has %d", len(rowFrames), tail.RowCount, len(rel.Rows))
	}
	for i, f := range rowFrames {
		if f.Type != "row" {
			t.Fatalf("frame %d type = %q, want row", i+1, f.Type)
		}
		for j, v := range rel.Rows[i] {
			if f.Cells[j] != v.String() {
				t.Fatalf("row %d = %v, want %v", i, f.Cells, rel.Rows[i])
			}
		}
	}
	if tail.Stats.Prompts != rep.Stats.Prompts {
		t.Errorf("streamed prompts = %d, buffered %d", tail.Stats.Prompts, rep.Stats.Prompts)
	}

	// The streaming claim, in virtual time: the first row was available
	// strictly before the relation finished, and availability is
	// monotone across the stream's head (rows are emitted as their
	// producing chains complete, not after the last one).
	first := rowFrames[0]
	if first.VTMS <= 0 || first.VTMS >= tail.Stats.SimulatedLatencyMS {
		t.Errorf("first row vt = %vms, want within (0, %vms): streaming must beat full-relation completion",
			first.VTMS, tail.Stats.SimulatedLatencyMS)
	}
	last := rowFrames[len(rowFrames)-1]
	if first.VTMS > last.VTMS {
		t.Errorf("row availability not monotone: first %vms, last %vms", first.VTMS, last.VTMS)
	}
}

// TestServeStreamSSE: ?stream=1 wraps the same frames in SSE events
// for EventSource clients.
func TestServeStreamSSE(t *testing.T) {
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	_, rt := testRuntime(t, opts)
	ts := httptest.NewServer(newServer(rt, serverConfig{maxConcurrent: 4}))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query?stream=1", "text/plain",
		strings.NewReader(`SELECT name FROM country WHERE continent = 'Europe'`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q, want text/event-stream", ct)
	}

	// Walk the event stream: event lines name the frame, data lines
	// carry the JSON payload.
	var events []string
	var rows int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if ev, ok := strings.CutPrefix(line, "event: "); ok {
			events = append(events, ev)
			if ev == "row" {
				rows++
			}
		}
	}
	if len(events) < 3 || events[0] != "header" || events[len(events)-1] != "stats" {
		t.Fatalf("event sequence = %v, want header ... stats", events)
	}
	if rows == 0 {
		t.Fatal("no row events in SSE stream")
	}
}

// TestServeStreamBadParam: an unknown ?stream= value is a client
// error, not a silent fallback.
func TestServeStreamBadParam(t *testing.T) {
	opts := core.DefaultOptions()
	_, rt := testRuntime(t, opts)
	ts := httptest.NewServer(newServer(rt, serverConfig{maxConcurrent: 4}))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query?stream=frobnicate", "text/plain", strings.NewReader(`SELECT name FROM country`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// unflushableWriter hides the Flusher interface of the wrapped
// recorder (a plain field, not an embed, so Flush is not promoted): a
// transport that cannot stream.
type unflushableWriter struct{ rec *httptest.ResponseRecorder }

func (u unflushableWriter) Header() http.Header         { return u.rec.Header() }
func (u unflushableWriter) Write(b []byte) (int, error) { return u.rec.Write(b) }
func (u unflushableWriter) WriteHeader(code int)        { u.rec.WriteHeader(code) }

// TestServeStreamFallbackBuffered is the regression for plain-JSON and
// non-streaming transports: a streaming request over a writer with no
// Flusher degrades to the ordinary buffered queryResponse instead of
// failing or half-streaming, and a request with no streaming signal
// stays buffered even though the handler now supports streams.
func TestServeStreamFallbackBuffered(t *testing.T) {
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	_, rt := testRuntime(t, opts)
	srv := newServer(rt, serverConfig{maxConcurrent: 4})

	req := httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`SELECT name FROM country WHERE continent = 'Europe'`))
	req.Header.Set("Accept", "application/x-ndjson")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(unflushableWriter{rec: rec}, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body %s)", rec.Code, rec.Body.String())
	}
	var qr queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatalf("fallback body is not a buffered queryResponse: %v (body %s)", err, rec.Body.String())
	}
	if qr.RowCount == 0 || len(qr.Rows) != qr.RowCount {
		t.Fatalf("fallback response rows = %d (row_count %d)", len(qr.Rows), qr.RowCount)
	}
}

// TestServeStreamDisconnectMidStream is the -race regression for
// streaming slot hygiene, mirroring TestServeCancelledQueuedCounters:
// a client that vanishes mid-query must leave no admission slot, no
// scheduler slot, and no queued prompt behind, and the server must
// serve the next query normally.
func TestServeStreamDisconnectMidStream(t *testing.T) {
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	release := make(chan struct{})
	rt, err := r.Runtime(&gatedTestLLM{inner: r.Model(simllm.ChatGPT), release: release}, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(rt, serverConfig{maxConcurrent: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query",
		strings.NewReader(`SELECT name, population FROM city WHERE population > 1000000`))
	req.Header.Set("Accept", "application/x-ndjson")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return // cancelled before the response headers arrived
		}
		// Stay connected and keep reading: the stream must end only
		// because cancel() severs it, not because this client hung up.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	// The query is mid-execution: the header frame is out (or about to
	// be) and the row prompts hold scheduler slots, gated inside the
	// model. The client now disconnects.
	waitFor(t, func() bool { return rt.SchedulerGauges().Interactive.Busy > 0 })
	cancel()
	<-done

	// Cancellation must unwind everything: admission slot released,
	// scheduler slots and queues empty, waiting gauge zero.
	waitFor(t, func() bool { return srv.active.Load() == 0 })
	waitFor(t, func() bool {
		g := rt.SchedulerGauges()
		return g.Interactive.Busy == 0 && g.Interactive.Queued == 0 && g.Batch.Busy == 0 && g.Batch.Queued == 0
	})
	if srv.waiting.Load() != 0 {
		t.Fatalf("waiting gauge leaked: %d", srv.waiting.Load())
	}

	// The gate and scheduler are healthy: an ungated follow-up query
	// streams to completion.
	close(release)
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/query",
		strings.NewReader(`SELECT name FROM country WHERE continent = 'Europe'`))
	req2.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readNDJSON(t, bufio.NewScanner(resp.Body))
	if len(frames) < 2 || frames[len(frames)-1].Type != "stats" {
		t.Fatalf("follow-up stream did not complete cleanly: %+v", frames)
	}
	waitFor(t, func() bool { return srv.active.Load() == 0 })
}

// TestServeStreamClassParams: ?class= and ?weight= ride along with a
// streamed query (they shape dispatch, not the response), and an
// unknown class is rejected up front.
func TestServeStreamClassParams(t *testing.T) {
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	_, rt := testRuntime(t, opts)
	ts := httptest.NewServer(newServer(rt, serverConfig{maxConcurrent: 4}))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query?class=batch&weight=4",
		strings.NewReader(`SELECT name FROM country WHERE continent = 'Europe'`))
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	frames := readNDJSON(t, bufio.NewScanner(resp.Body))
	if frames[len(frames)-1].Type != "stats" {
		t.Fatalf("batch-class stream did not finish: %+v", frames[len(frames)-1])
	}
	// The batch band's drain counter moved: the query's prompts really
	// were dispatched as batch work.
	if g := rt.SchedulerGauges(); g.Batch.Drained == 0 && g.Batch.Busy == 0 {
		// Drained counts queued->granted transitions only; on an idle
		// scheduler every prompt may take the direct path. Accept either,
		// but the class must at least parse and execute (checked above).
		t.Logf("batch drain counter idle (direct dispatch): %+v", g)
	}

	resp2, err := http.Post(ts.URL+"/query?class=bulk", "text/plain", strings.NewReader(`SELECT name FROM country`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown class status = %d, want 400", resp2.StatusCode)
	}
}
