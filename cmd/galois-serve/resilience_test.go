package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/faultllm"
	"repro/internal/simllm"
)

// getHealth fetches /healthz and decodes it.
func getHealth(t *testing.T, ts *httptest.Server) (*http.Response, healthResponse) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	return resp, hr
}

// TestServeHealthzReadiness: /healthz reports per-endpoint breaker
// state, turns 503 when every backend's breaker is open, and recovers
// to 200 once a half-open probe heals the endpoint.
func TestServeHealthzReadiness(t *testing.T) {
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	opts.Retries = -1 // fail fast: each failed prompt feeds the breaker
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = 20 * time.Millisecond
	inj := faultllm.Wrap(r.Model(simllm.ChatGPT), faultllm.Profile{Seed: 1})
	rt, err := r.Runtime(inj, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(rt, serverConfig{maxConcurrent: 4}))
	defer ts.Close()

	// Healthy: one endpoint, breaker closed, 200.
	resp, hr := getHealth(t, ts)
	if resp.StatusCode != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("healthy: status=%d body=%+v", resp.StatusCode, hr)
	}
	if len(hr.Endpoints) != 1 || hr.Endpoints[0].Breaker != "closed" {
		t.Fatalf("healthy endpoints = %+v", hr.Endpoints)
	}

	// Total outage: failed queries trip the breaker.
	inj.SetOutage(true)
	for i := 0; i < 3; i++ {
		resp, _ := postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`)
		if resp.StatusCode == http.StatusOK {
			t.Fatal("query succeeded during a total outage")
		}
	}
	resp, hr = getHealth(t, ts)
	if resp.StatusCode != http.StatusServiceUnavailable || hr.Status != "unavailable" {
		t.Fatalf("during outage: status=%d body=%+v, want 503/unavailable", resp.StatusCode, hr)
	}
	if hr.Endpoints[0].Breaker != "open" {
		t.Fatalf("breaker = %q, want open", hr.Endpoints[0].Breaker)
	}

	// While open, queries are shed with 503 + Retry-After.
	shedResp, _ := postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`)
	if shedResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed query: status %d, want 503", shedResp.StatusCode)
	}
	if shedResp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker-shed response missing Retry-After")
	}

	// Backend heals; after the cooldown a probe closes the breaker and
	// readiness returns.
	inj.SetOutage(false)
	time.Sleep(30 * time.Millisecond)
	okResp, _ := postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`)
	if okResp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery query: status %d, want 200", okResp.StatusCode)
	}
	resp, hr = getHealth(t, ts)
	if resp.StatusCode != http.StatusOK || hr.Status != "ok" || hr.Endpoints[0].Breaker != "closed" {
		t.Fatalf("after recovery: status=%d body=%+v, want 200/ok/closed", resp.StatusCode, hr)
	}
}

// TestServeQueryTimeout: a query that outlives -query-timeout answers
// 504 and releases its execution slot.
func TestServeQueryTimeout(t *testing.T) {
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	release := make(chan struct{})
	defer close(release)
	rt, err := r.Runtime(&gatedTestLLM{inner: r.Model(simllm.ChatGPT), release: release}, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(rt, serverConfig{maxConcurrent: 2, queryTimeout: 20 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, _ := postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	waitFor(t, func() bool { return srv.active.Load() == 0 })
	if got := srv.timeouts.Load(); got != 1 {
		t.Fatalf("timeouts counter = %d, want 1", got)
	}
}

// TestServeQueueSaturation: requests past the bounded admission queue
// are shed immediately with 503 + Retry-After instead of queueing
// without bound, and the queue keeps working after the load passes.
func TestServeQueueSaturation(t *testing.T) {
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	release := make(chan struct{})
	rt, err := r.Runtime(&gatedTestLLM{inner: r.Model(simllm.ChatGPT), release: release}, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(rt, serverConfig{maxConcurrent: 1, maxQueue: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the one execution slot, then the one queue spot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`)
	}()
	waitFor(t, func() bool { return srv.active.Load() == 1 })
	queuedCtx, cancelQueued := context.WithCancel(context.Background())
	defer cancelQueued()
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequestWithContext(queuedCtx, http.MethodGet,
			ts.URL+"/query?q=SELECT+name+FROM+country", nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool { return srv.waiting.Load() == 1 })

	// The next request finds both full and is shed at once.
	resp, err := http.Get(ts.URL + "/query?q=SELECT+name+FROM+country")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("saturated response missing Retry-After")
	}
	if got := srv.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// Drain: the held queries finish and the server serves again.
	close(release)
	wg.Wait()
	if resp, _ := postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain query: status %d, want 200", resp.StatusCode)
	}

	var st serverStats
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.MaxQueue != 1 || st.Shed != 1 {
		t.Fatalf("stats degradation counters: %+v, want max_queue=1 shed=1", st)
	}
	if len(st.Resilience) == 0 {
		t.Fatal("/stats missing resilience endpoint snapshot")
	}
}

// TestServeIdleBurstNotShed: a simultaneous burst of maxConcurrent
// arrivals on an idle server must all be admitted straight into free
// execution slots — the queue bound applies only to requests that
// actually have to wait, so even maxQueue=1 must not shed any of them.
func TestServeIdleBurstNotShed(t *testing.T) {
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	release := make(chan struct{})
	rt, err := r.Runtime(&gatedTestLLM{inner: r.Model(simllm.ChatGPT), release: release}, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(rt, serverConfig{maxConcurrent: 4, maxQueue: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Four requests land at once; the gated backend holds all of them
	// mid-execution so the burst genuinely overlaps.
	var wg sync.WaitGroup
	codes := make([]int, 4)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`)
			codes[i] = resp.StatusCode
		}(i)
	}
	waitFor(t, func() bool { return srv.active.Load() == 4 })
	if got := srv.waiting.Load(); got != 0 {
		t.Fatalf("waiting = %d, want 0 — slot-admitted requests must not count as queued", got)
	}
	if got := srv.shed.Load(); got != 0 {
		t.Fatalf("shed = %d, want 0 — burst onto free slots must not be shed", got)
	}
	close(release)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("burst request %d: status %d, want 200", i, code)
		}
	}
}
