package main

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// errAdmissionShed marks a request refused at the gate: the controller
// is already at its floor and the wait queue is at its bound, so the
// only honest answer is "come back later" — fast.
var errAdmissionShed = errors.New("admission queue saturated")

// errAdmissionCancelled marks a request whose client disconnected while
// it waited for an execution slot.
var errAdmissionCancelled = errors.New("request cancelled while queued for admission")

// admission is the adaptive concurrency gate in front of query
// execution. It replaces the fixed channel semaphore with an AIMD
// (additive-increase / multiplicative-decrease) controller: the
// effective limit starts at the configured ceiling — an idle, healthy
// server admits exactly like the static gate did — and moves between a
// floor and that ceiling driven by backpressure signals sampled at each
// query's completion (scheduler queue depth beyond the worker budget,
// a non-closed circuit breaker). Healthy completions grow the limit by
// one; congested completions halve it toward the floor, rate-limited by
// a cooldown so one backlogged sample doesn't collapse the window.
//
// Shedding is a last resort, not the first response to pressure: a
// request that finds the wait queue full while the limit is still above
// the floor is admitted into the queue anyway and the limit is cut —
// the queue transiently overshoots its bound, but the shrinking limit
// drains it, and only when the controller is already at the floor AND
// the queue is at its bound does a request get 503 + Retry-After. This
// keeps the static gate's property that a burst onto an idle server is
// never shed, while adding the property that a degraded backend sheds
// early instead of queueing doomed work.
//
// Waiters are granted strictly FIFO via per-request channels: a freed
// slot is handed to the oldest waiter (channel close), so arrival order
// is service order and no waiter can be starved by fast-path arrivals
// (the fast path requires an empty queue).
type admission struct {
	mu      sync.Mutex
	limit   int // current effective concurrency bound (floor..ceil)
	floor   int
	ceil    int
	active  int             // slots granted (may transiently exceed limit after a cut)
	queue   []chan struct{} // FIFO waiters; a close grants the slot
	lastCut time.Time       // last multiplicative decrease, for the cooldown

	maxQueue int
	cooldown time.Duration
	now      func() time.Time

	increases atomic.Int64 // additive limit growths
	decreases atomic.Int64 // multiplicative limit cuts

	// waiting mirrors the queue length into the server's public gauge
	// (tests and /stats read the atomic without taking mu).
	waiting *atomic.Int64
}

// defaultCutCooldown spaces multiplicative decreases: congestion
// signals arrive once per completing query, and a single backlog spike
// observed by a dozen completions should cost one cut, not a collapse
// to the floor.
const defaultCutCooldown = 250 * time.Millisecond

// newAdmission builds the controller. floor <= 0 selects ceil/4
// (minimum 1); cooldown < 0 disables the cut rate limit (tests drive
// deterministic cut sequences that way).
func newAdmission(ceil, floor, maxQueue int, cooldown time.Duration, waiting *atomic.Int64) *admission {
	if ceil < 1 {
		ceil = 1
	}
	if floor <= 0 {
		floor = ceil / 4
	}
	if floor < 1 {
		floor = 1
	}
	if floor > ceil {
		floor = ceil
	}
	if cooldown == 0 {
		cooldown = defaultCutCooldown
	}
	return &admission{
		limit:    ceil, // start wide open: an idle server behaves like the static gate
		floor:    floor,
		ceil:     ceil,
		maxQueue: maxQueue,
		cooldown: cooldown,
		now:      time.Now,
		waiting:  waiting,
	}
}

// acquire blocks until the request holds an execution slot, the context
// is cancelled (errAdmissionCancelled), or the gate sheds it
// (errAdmissionShed). ctx is the request's own context; done is its
// Done channel (split out so tests can drive it directly).
func (a *admission) acquire(done <-chan struct{}) error {
	a.mu.Lock()
	if a.active < a.limit && len(a.queue) == 0 {
		// A free slot and nobody ahead: admitted immediately, never
		// queued. This path must not touch the waiting gauge — a burst
		// onto an idle server is not queue pressure.
		a.active++
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.maxQueue {
		if a.limit <= a.floor {
			// Floor AND full queue: genuinely saturated, shed.
			a.mu.Unlock()
			return errAdmissionShed
		}
		// Full queue above the floor is congestion evidence, not a shed:
		// cut the limit and queue anyway. The bound is transiently
		// exceeded; the shrinking limit converges to the floor, where
		// the bound becomes hard again.
		a.cutLocked()
	}
	ch := make(chan struct{})
	a.queue = append(a.queue, ch)
	a.waiting.Add(1)
	a.mu.Unlock()

	select {
	case <-ch:
		a.waiting.Add(-1)
		select {
		case <-done:
			// The client was already gone when the slot was granted (with
			// both cases ready either may win): hand the slot straight to
			// the next waiter and do not serve.
			a.returnSlot()
			return errAdmissionCancelled
		default:
		}
		return nil
	case <-done:
		a.mu.Lock()
		granted := true
		for i, w := range a.queue {
			if w == ch {
				// Still queued: withdraw. Order of the rest is preserved.
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				granted = false
				break
			}
		}
		if granted {
			// grantLocked already popped us and transferred a slot; give
			// it back to the next in line.
			a.active--
			a.grantLocked()
		}
		a.mu.Unlock()
		a.waiting.Add(-1)
		return errAdmissionCancelled
	}
}

// release frees the caller's slot and folds one completion's congestion
// sample into the limit: congested halves toward the floor (cooldown
// permitting), healthy grows by one toward the ceiling.
func (a *admission) release(congested bool) {
	a.mu.Lock()
	if congested {
		a.cutLocked()
	} else if a.limit < a.ceil {
		a.limit++
		a.increases.Add(1)
	}
	a.active--
	a.grantLocked()
	a.mu.Unlock()
}

// returnSlot gives a slot back without sampling — the holder never
// executed (cancelled between grant and service).
func (a *admission) returnSlot() {
	a.mu.Lock()
	a.active--
	a.grantLocked()
	a.mu.Unlock()
}

// cutLocked is one multiplicative decrease: halve, floor-clamped,
// rate-limited. Callers hold mu.
func (a *admission) cutLocked() {
	if a.cooldown > 0 {
		if now := a.now(); now.Sub(a.lastCut) < a.cooldown {
			return
		} else {
			a.lastCut = now
		}
	}
	next := a.limit / 2
	if next < a.floor {
		next = a.floor
	}
	if next < a.limit {
		a.limit = next
		a.decreases.Add(1)
	}
}

// grantLocked hands freed capacity to waiters, oldest first, while the
// limit allows. Callers hold mu.
func (a *admission) grantLocked() {
	for a.active < a.limit && len(a.queue) > 0 {
		ch := a.queue[0]
		a.queue = a.queue[1:]
		a.active++
		close(ch)
	}
}

// snapshot reports the controller's observable state for /stats.
func (a *admission) snapshot() (limit, floor, ceil int, increases, decreases int64) {
	a.mu.Lock()
	limit = a.limit
	a.mu.Unlock()
	return limit, a.floor, a.ceil, a.increases.Load(), a.decreases.Load()
}
