package main

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// errAdmissionShed marks a request refused at the gate: the controller
// is already at its floor and the wait queue is at its bound, so the
// only honest answer is "come back later" — fast.
var errAdmissionShed = errors.New("admission queue saturated")

// errAdmissionCancelled marks a request whose client disconnected while
// it waited for an execution slot.
var errAdmissionCancelled = errors.New("request cancelled while queued for admission")

// admission is the adaptive concurrency gate in front of query
// execution. It replaces the fixed channel semaphore with an AIMD
// (additive-increase / multiplicative-decrease) controller: the
// effective limit starts at the configured ceiling — an idle, healthy
// server admits exactly like the static gate did — and moves between a
// floor and that ceiling driven by backpressure signals sampled at each
// query's completion (scheduler queue depth beyond the worker budget,
// a non-closed circuit breaker). Healthy completions grow the limit by
// one; congested completions halve it toward the floor, rate-limited by
// a cooldown so one backlogged sample doesn't collapse the window.
//
// Shedding is a last resort, not the first response to pressure: a
// request that finds the wait queue full while the limit is still above
// the floor is admitted into the queue anyway and the limit is cut —
// the queue transiently overshoots its bound, but the shrinking limit
// drains it, and only when the controller is already at the floor AND
// the queue is at its bound does a request get 503 + Retry-After. This
// keeps the static gate's property that a burst onto an idle server is
// never shed, while adding the property that a degraded backend sheds
// early instead of queueing doomed work.
//
// Waiters are granted strictly FIFO via per-request channels: a freed
// slot is handed to the oldest waiter (channel close), so arrival order
// is service order and no waiter can be starved by fast-path arrivals
// (the fast path requires an empty queue).
//
// The controller is class-aware: batch queries run under their own
// sub-limit (batchLimit, starting wide open at the ceiling) inside the
// global limit, and congestion observed while batch work is present
// halves that sub-limit first — batch concurrency is the headroom shed
// to protect interactive capacity, and only once the batch band is down
// to one slot do further congested samples cut the global limit. A
// purely interactive workload never has batch pressure, so its AIMD
// trajectory is exactly the class-blind controller's. Batch waiters
// queue separately; an interactive arrival is never stuck behind a
// batch head blocked on the batch cap.
type admission struct {
	mu    sync.Mutex
	limit int // current effective concurrency bound (floor..ceil)
	floor int
	ceil  int
	// batchLimit caps concurrently executing batch-class queries
	// (1..ceil); congestion cuts it before the global limit.
	batchLimit  int
	active      int             // slots granted (may transiently exceed limit after a cut)
	batchActive int             // granted slots held by batch-class queries
	queue       []chan struct{} // FIFO interactive waiters; a close grants the slot
	batchQueue  []chan struct{} // FIFO batch waiters, granted only under batchLimit
	lastCut     time.Time       // last multiplicative decrease, for the cooldown

	maxQueue int
	cooldown time.Duration
	now      func() time.Time

	increases atomic.Int64 // additive limit growths
	decreases atomic.Int64 // multiplicative limit cuts

	// waiting mirrors the queue length into the server's public gauge
	// (tests and /stats read the atomic without taking mu).
	waiting *atomic.Int64
}

// defaultCutCooldown spaces multiplicative decreases: congestion
// signals arrive once per completing query, and a single backlog spike
// observed by a dozen completions should cost one cut, not a collapse
// to the floor.
const defaultCutCooldown = 250 * time.Millisecond

// newAdmission builds the controller. floor <= 0 selects ceil/4
// (minimum 1); cooldown < 0 disables the cut rate limit (tests drive
// deterministic cut sequences that way).
func newAdmission(ceil, floor, maxQueue int, cooldown time.Duration, waiting *atomic.Int64) *admission {
	if ceil < 1 {
		ceil = 1
	}
	if floor <= 0 {
		floor = ceil / 4
	}
	if floor < 1 {
		floor = 1
	}
	if floor > ceil {
		floor = ceil
	}
	if cooldown == 0 {
		cooldown = defaultCutCooldown
	}
	return &admission{
		limit:      ceil, // start wide open: an idle server behaves like the static gate
		floor:      floor,
		ceil:       ceil,
		batchLimit: ceil, // batch headroom also starts wide open
		maxQueue:   maxQueue,
		cooldown:   cooldown,
		now:        time.Now,
		waiting:    waiting,
	}
}

// acquire admits an interactive-class request (see acquireClass).
func (a *admission) acquire(done <-chan struct{}) error {
	return a.acquireClass(done, false)
}

// acquireClass blocks until the request holds an execution slot, the
// context is cancelled (errAdmissionCancelled), or the gate sheds it
// (errAdmissionShed). done is the request context's Done channel (split
// out so tests can drive it directly); batch routes the request through
// the batch band's sub-limit.
func (a *admission) acquireClass(done <-chan struct{}, batch bool) error {
	a.mu.Lock()
	if a.fastPathLocked(batch) {
		// A free slot and nobody ahead: admitted immediately, never
		// queued. This path must not touch the waiting gauge — a burst
		// onto an idle server is not queue pressure.
		a.active++
		if batch {
			a.batchActive++
		}
		a.mu.Unlock()
		return nil
	}
	if len(a.queue)+len(a.batchQueue) >= a.maxQueue {
		if a.limit <= a.floor {
			// Floor AND full queue: genuinely saturated, shed.
			a.mu.Unlock()
			return errAdmissionShed
		}
		// Full queue above the floor is congestion evidence, not a shed:
		// cut the limit and queue anyway. The bound is transiently
		// exceeded; the shrinking limit converges to the floor, where
		// the bound becomes hard again.
		a.cutLocked()
	}
	ch := make(chan struct{})
	if batch {
		a.batchQueue = append(a.batchQueue, ch)
	} else {
		a.queue = append(a.queue, ch)
	}
	a.waiting.Add(1)
	a.mu.Unlock()

	select {
	case <-ch:
		a.waiting.Add(-1)
		select {
		case <-done:
			// The client was already gone when the slot was granted (with
			// both cases ready either may win): hand the slot straight to
			// the next waiter and do not serve.
			a.returnSlot(batch)
			return errAdmissionCancelled
		default:
		}
		return nil
	case <-done:
		a.mu.Lock()
		granted := true
		q := &a.queue
		if batch {
			q = &a.batchQueue
		}
		for i, w := range *q {
			if w == ch {
				// Still queued: withdraw. Order of the rest is preserved.
				*q = append((*q)[:i], (*q)[i+1:]...)
				granted = false
				break
			}
		}
		if granted {
			// grantLocked already popped us and transferred a slot; give
			// it back to the next in line.
			a.active--
			if batch {
				a.batchActive--
			}
			a.grantLocked()
		}
		a.mu.Unlock()
		a.waiting.Add(-1)
		return errAdmissionCancelled
	}
}

// fastPathLocked reports whether a fresh arrival may take a slot without
// queueing. Interactive requires a free global slot and no interactive
// waiter ahead — batch waiters blocked on their cap never delay it.
// Batch additionally requires batch headroom and an empty batch queue.
func (a *admission) fastPathLocked(batch bool) bool {
	if a.active >= a.limit || len(a.queue) > 0 {
		return false
	}
	if batch {
		return a.batchActive < a.batchLimit && len(a.batchQueue) == 0
	}
	return true
}

// release frees an interactive-class slot (see releaseClass).
func (a *admission) release(congested bool) {
	a.releaseClass(congested, false)
}

// releaseClass frees the caller's slot and folds one completion's
// congestion sample into the limits: congested cuts (batch headroom
// first — see cutLocked), healthy grows the global limit by one toward
// the ceiling, then restores batch headroom.
func (a *admission) releaseClass(congested, batch bool) {
	a.mu.Lock()
	if congested {
		a.cutLocked()
	} else if a.limit < a.ceil {
		a.limit++
		a.increases.Add(1)
	} else if a.batchLimit < a.ceil {
		// Global capacity restored: heal the batch band last, one slot
		// per healthy completion — the inverse of the cut order.
		a.batchLimit++
		a.increases.Add(1)
	}
	a.active--
	if batch {
		a.batchActive--
	}
	a.grantLocked()
	a.mu.Unlock()
}

// returnSlot gives a slot back without sampling — the holder never
// executed (cancelled between grant and service).
func (a *admission) returnSlot(batch bool) {
	a.mu.Lock()
	a.active--
	if batch {
		a.batchActive--
	}
	a.grantLocked()
	a.mu.Unlock()
}

// cutLocked is one multiplicative decrease, rate-limited by the
// cooldown. While batch work is present (executing or queued) and its
// band is above one slot, the cut halves the batch sub-limit and leaves
// interactive capacity untouched; otherwise it halves the global limit
// toward the floor — so a purely interactive workload sees exactly the
// class-blind AIMD trajectory. Callers hold mu.
func (a *admission) cutLocked() {
	if a.cooldown > 0 {
		if now := a.now(); now.Sub(a.lastCut) < a.cooldown {
			return
		} else {
			a.lastCut = now
		}
	}
	if (a.batchActive > 0 || len(a.batchQueue) > 0) && a.batchLimit > 1 {
		next := a.batchLimit / 2
		if next < 1 {
			next = 1
		}
		a.batchLimit = next
		a.decreases.Add(1)
		return
	}
	next := a.limit / 2
	if next < a.floor {
		next = a.floor
	}
	if next < a.limit {
		a.limit = next
		a.decreases.Add(1)
	}
}

// grantLocked hands freed capacity to waiters while the limit allows:
// interactive first (oldest first), then batch heads under the batch
// cap. Callers hold mu.
func (a *admission) grantLocked() {
	for a.active < a.limit {
		if len(a.queue) > 0 {
			ch := a.queue[0]
			a.queue = a.queue[1:]
			a.active++
			close(ch)
			continue
		}
		if len(a.batchQueue) > 0 && a.batchActive < a.batchLimit {
			ch := a.batchQueue[0]
			a.batchQueue = a.batchQueue[1:]
			a.active++
			a.batchActive++
			close(ch)
			continue
		}
		return
	}
}

// snapshot reports the controller's observable state for /stats.
func (a *admission) snapshot() (limit, floor, ceil int, increases, decreases int64) {
	a.mu.Lock()
	limit = a.limit
	a.mu.Unlock()
	return limit, a.floor, a.ceil, a.increases.Load(), a.decreases.Load()
}

// batchSnapshot reports the batch band's position: its sub-limit and how
// many batch-class queries currently hold slots.
func (a *admission) batchSnapshot() (batchLimit, batchActive int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.batchLimit, a.batchActive
}
