package main

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// Unit tests for the AIMD admission controller, driven synchronously:
// a negative cooldown disables the cut rate limit so every congestion
// sample moves the limit deterministically.

// TestAdmissionAIMDLimitMoves: congested completions halve the limit
// toward the floor, healthy completions grow it by one toward the
// ceiling, and both legs are counted.
func TestAdmissionAIMDLimitMoves(t *testing.T) {
	var waiting atomic.Int64
	a := newAdmission(8, 2, 4, -1, &waiting)

	for i := 0; i < 8; i++ {
		if err := a.acquire(nil); err != nil {
			t.Fatal(err)
		}
	}
	if limit, floor, ceil, _, _ := a.snapshot(); limit != 8 || floor != 2 || ceil != 8 {
		t.Fatalf("fresh controller = limit %d floor %d ceil %d, want 8/2/8", limit, floor, ceil)
	}

	// Multiplicative decrease: 8 -> 4 -> 2, then clamped at the floor.
	a.release(true)
	a.release(true)
	a.release(true)
	limit, _, _, inc, dec := a.snapshot()
	if limit != 2 || dec != 2 {
		t.Fatalf("after three congested releases: limit %d decreases %d, want 2/2 (floor clamps the third)", limit, dec)
	}

	// Additive increase: one per healthy completion, capped at the ceiling.
	for i := 0; i < 10; i++ {
		a.release(false)
	}
	limit, _, _, inc, dec = a.snapshot()
	if limit != 8 {
		t.Fatalf("after recovery: limit %d, want ceiling 8", limit)
	}
	if inc != 6 {
		t.Fatalf("increases = %d, want 6 (2 -> 8, capped thereafter)", inc)
	}
	if waiting.Load() != 0 {
		t.Fatalf("waiting gauge = %d, want 0 (nothing ever queued)", waiting.Load())
	}
}

// TestAdmissionFullQueueCutsBeforeShedding: a request that finds the
// wait queue at its bound while the limit is above the floor is NOT
// shed — it cuts the limit and queues anyway. Only at the floor does
// the bound become a hard shed.
func TestAdmissionFullQueueCutsBeforeShedding(t *testing.T) {
	var waiting atomic.Int64
	a := newAdmission(4, 1, 1, -1, &waiting)

	for i := 0; i < 4; i++ {
		if err := a.acquire(nil); err != nil {
			t.Fatal(err)
		}
	}

	// Three waiters arrive one at a time. #1 fills the queue; #2 finds
	// it full above the floor (cut 4 -> 2, queued anyway); #3 the same
	// (cut 2 -> 1 = floor, queued anyway).
	acquired := make(chan error, 3)
	for i := 0; i < 3; i++ {
		want := int64(i + 1)
		go func() { acquired <- a.acquire(nil) }()
		waitFor(t, func() bool { return waiting.Load() == want })
	}
	limit, _, _, _, dec := a.snapshot()
	if limit != 1 || dec != 2 {
		t.Fatalf("after queue-full arrivals: limit %d decreases %d, want 1/2", limit, dec)
	}

	// Floor AND full queue: the next arrival is shed, synchronously.
	if err := a.acquire(nil); !errors.Is(err, errAdmissionShed) {
		t.Fatalf("acquire at floor with full queue = %v, want errAdmissionShed", err)
	}

	// Drain the four initial holders. Healthy releases grow the limit
	// (1 -> 2 -> 3 -> 4) and active falls, so freed capacity reaches the
	// FIFO queue: all three waiters are granted slots.
	for i := 0; i < 4; i++ {
		a.release(false)
	}
	for i := 0; i < 3; i++ {
		if err := <-acquired; err != nil {
			t.Fatal(err)
		}
	}
	// Release the waiters' slots too, so the gate ends idle.
	for i := 0; i < 3; i++ {
		a.release(false)
	}
	if waiting.Load() != 0 {
		t.Fatalf("waiting gauge leaked: %d", waiting.Load())
	}
}

// TestAdmissionCancelWhileQueued: a waiter whose request dies while
// queued withdraws cleanly — the gauge returns to zero, the slot is
// never consumed, and later arrivals are unaffected.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	var waiting atomic.Int64
	a := newAdmission(1, 1, 4, -1, &waiting)
	if err := a.acquire(nil); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- a.acquire(done) }()
	waitFor(t, func() bool { return waiting.Load() == 1 })
	close(done)
	if err := <-errc; !errors.Is(err, errAdmissionCancelled) {
		t.Fatalf("cancelled waiter got %v, want errAdmissionCancelled", err)
	}
	if waiting.Load() != 0 {
		t.Fatalf("waiting gauge leaked after cancel: %d", waiting.Load())
	}

	a.release(false)
	if err := a.acquire(nil); err != nil {
		t.Fatalf("acquire after cancelled waiter = %v, want immediate admit", err)
	}
	a.release(false)
}

// TestAdmissionFIFO: queued waiters are granted strictly in arrival
// order — a freed slot goes to the oldest waiter, and the fast path
// cannot jump the queue (it requires the queue to be empty).
func TestAdmissionFIFO(t *testing.T) {
	var waiting atomic.Int64
	a := newAdmission(1, 1, 8, -1, &waiting)
	if err := a.acquire(nil); err != nil {
		t.Fatal(err)
	}

	const waiters = 3
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			if err := a.acquire(nil); err != nil {
				t.Error(err)
				return
			}
			order <- i
			a.release(false)
		}()
		// Serialize arrivals so the queue order is the loop order.
		waitFor(t, func() bool { return waiting.Load() == int64(i+1) })
	}

	a.release(false) // frees the chain: each waiter's release grants the next
	wg.Wait()
	for want := 0; want < waiters; want++ {
		if got := <-order; got != want {
			t.Fatalf("grant order position %d went to waiter %d (FIFO violated)", want, got)
		}
	}
}

// TestAdmissionBatchCutFirst: congestion observed while batch-class
// queries hold slots halves the batch band's sub-limit — repeatedly,
// down to one slot — before the global interactive limit is touched;
// only once the batch band is minimal do further congested samples cut
// the global limit. Healthy completions restore the global limit first,
// then the batch band, the inverse of the cut order.
func TestAdmissionBatchCutFirst(t *testing.T) {
	var waiting atomic.Int64
	a := newAdmission(8, 2, 4, -1, &waiting)

	// Four batch queries and four interactive queries in flight.
	for i := 0; i < 4; i++ {
		if err := a.acquireClass(nil, true); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := a.acquireClass(nil, false); err != nil {
			t.Fatal(err)
		}
	}
	if bl, ba := a.batchSnapshot(); bl != 8 || ba != 4 {
		t.Fatalf("batch band = limit %d active %d, want 8/4", bl, ba)
	}

	// Congested batch completions: the batch sub-limit halves 8 -> 4 ->
	// 2 -> 1 while the global limit stays at the ceiling.
	a.releaseClass(true, true)
	a.releaseClass(true, true)
	a.releaseClass(true, true)
	limit, _, _, _, dec := a.snapshot()
	bl, ba := a.batchSnapshot()
	if limit != 8 {
		t.Fatalf("global limit = %d, want 8 (batch headroom absorbs the cuts)", limit)
	}
	if bl != 1 || dec != 3 {
		t.Fatalf("batch limit = %d decreases = %d, want 1/3 (8 -> 4 -> 2 -> 1)", bl, dec)
	}
	if ba != 1 {
		t.Fatalf("batch active = %d, want 1", ba)
	}

	// Batch band already minimal: the next congested sample (batch work
	// still present) cuts the global limit.
	a.releaseClass(true, true)
	limit, _, _, _, dec = a.snapshot()
	if limit != 4 || dec != 4 {
		t.Fatalf("after cut at minimal batch band: limit %d decreases %d, want 4/4", limit, dec)
	}
	if _, ba := a.batchSnapshot(); ba != 0 {
		t.Fatalf("batch active = %d, want 0", ba)
	}

	// Recovery: healthy completions grow the global limit back to the
	// ceiling first (4 -> 8), then refill the batch band (1 -> 8). The
	// four interactive queries still hold slots; their releases are the
	// first healthy samples.
	for i := 0; i < 4; i++ {
		a.releaseClass(false, false)
	}
	limit, _, _, _, _ = a.snapshot()
	bl, _ = a.batchSnapshot()
	if limit != 8 || bl != 1 {
		t.Fatalf("global-first recovery: limit %d batch %d, want 8/1", limit, bl)
	}
	for i := 0; i < 7; i++ {
		if err := a.acquireClass(nil, false); err != nil {
			t.Fatal(err)
		}
		a.releaseClass(false, false)
	}
	if bl, _ := a.batchSnapshot(); bl != 8 {
		t.Fatalf("batch band after recovery = %d, want 8", bl)
	}
}

// TestAdmissionInteractivePassesBlockedBatch: batch waiters blocked on
// the batch cap never delay an interactive arrival — it takes a free
// global slot directly — and a freed batch slot goes to the oldest
// batch waiter.
func TestAdmissionInteractivePassesBlockedBatch(t *testing.T) {
	var waiting atomic.Int64
	a := newAdmission(4, 1, 8, -1, &waiting)

	// Shrink the batch band to one slot: batch congestion with batch
	// work present.
	if err := a.acquireClass(nil, true); err != nil {
		t.Fatal(err)
	}
	a.releaseClass(true, true) // 4 -> 2
	if err := a.acquireClass(nil, true); err != nil {
		t.Fatal(err)
	}
	a.releaseClass(true, true) // 2 -> 1
	if bl, _ := a.batchSnapshot(); bl != 1 {
		t.Fatalf("batch limit = %d, want 1", bl)
	}

	// One batch query holds the band; a second batch request must queue.
	if err := a.acquireClass(nil, true); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- a.acquireClass(nil, true) }()
	waitFor(t, func() bool { return waiting.Load() == 1 })

	// Interactive arrivals pass the blocked batch head: three global
	// slots remain and all are granted immediately.
	for i := 0; i < 3; i++ {
		if err := a.acquireClass(nil, false); err != nil {
			t.Fatalf("interactive acquire %d: %v", i, err)
		}
	}
	select {
	case err := <-blocked:
		t.Fatalf("batch waiter granted early: %v", err)
	default:
	}

	// Freeing the batch slot hands it to the queued batch waiter.
	a.releaseClass(false, true)
	if err := <-blocked; err != nil {
		t.Fatalf("batch waiter: %v", err)
	}
	if waiting.Load() != 0 {
		t.Fatalf("waiting gauge = %d, want 0", waiting.Load())
	}
}
