package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/simllm"
)

// testRuntime builds the benchmark world's runtime for serving tests.
func testRuntime(t *testing.T, opts core.Options) (*bench.Runner, *core.Runtime) {
	t.Helper()
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := r.Runtime(r.Model(simllm.ChatGPT), opts)
	if err != nil {
		t.Fatal(err)
	}
	return r, rt
}

func postQuery(t *testing.T, ts *httptest.Server, sql string) (*http.Response, queryResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(sql))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, qr
}

// TestServeConcurrentQueries: concurrent HTTP queries against one shared
// runtime each return exactly the relation a direct serial session run
// produces.
func TestServeConcurrentQueries(t *testing.T) {
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	_, rt := testRuntime(t, opts)
	ts := httptest.NewServer(newServer(rt, serverConfig{maxConcurrent: 8}))
	defer ts.Close()

	queries := []string{
		`SELECT name FROM country WHERE continent = 'Europe'`,
		`SELECT name, population FROM city WHERE population > 1000000`,
		`SELECT name FROM mayor WHERE election_year = 2019`,
		`SELECT name FROM mountain WHERE height > 5000`,
	}
	// Serial baselines on an identical but separate runtime.
	_, baseRT := testRuntime(t, opts)
	want := map[string][][]string{}
	for _, q := range queries {
		rel, _, err := baseRT.NewSession().Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		rows := [][]string{}
		for _, row := range rel.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			rows = append(rows, cells)
		}
		want[q] = rows
	}

	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				resp, qr := postQuery(t, ts, q)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%q: status %d", q, resp.StatusCode)
					return
				}
				if fmt.Sprint(qr.Rows) != fmt.Sprint(want[q]) {
					t.Errorf("%q rows diverged from serial run:\n%v\nwant:\n%v", q, qr.Rows, want[q])
				}
				if qr.Stats.Prompts == 0 {
					t.Errorf("%q reported zero prompts", q)
				}
			}(q)
		}
	}
	wg.Wait()
}

// slowLLM delays every completion so queries overlap long enough for the
// admission gate to be observable.
type slowLLM struct {
	inner llm.Client
	delay time.Duration
}

func (s *slowLLM) Name() string { return s.inner.Name() }
func (s *slowLLM) Complete(ctx context.Context, p string) (string, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return "", ctx.Err()
	}
	return s.inner.Complete(ctx, p)
}

// TestServeAdmissionGate: with -max-concurrent=2, twelve parallel
// requests never have more than two queries executing at once, and all
// of them are eventually served.
func TestServeAdmissionGate(t *testing.T) {
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	rt, err := r.Runtime(&slowLLM{inner: r.Model(simllm.ChatGPT), delay: 2 * time.Millisecond}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// maxQueue is raised past the burst: this test exercises the ordered
	// drain of the gate, not load shedding (see TestServeQueueSaturation).
	srv := newServer(rt, serverConfig{maxConcurrent: 2, maxQueue: 16})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	if got := srv.maxActive.Load(); got > 2 {
		t.Errorf("admission gate leaked: %d queries executed concurrently, cap 2", got)
	}
	if got := srv.queries.Load(); got != 12 {
		t.Errorf("served %d queries, want 12", got)
	}
}

// TestServeErrors: bad SQL is a 400 with a JSON error; a missing
// statement likewise.
func TestServeErrors(t *testing.T) {
	_, rt := testRuntime(t, core.DefaultOptions())
	ts := httptest.NewServer(newServer(rt, serverConfig{maxConcurrent: 4}))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader("SELEC nonsense"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad SQL: status %d, want 400", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		t.Errorf("bad SQL: error body = %+v, %v", er, err)
	}

	resp2, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader("   "))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("empty SQL: status %d, want 400", resp2.StatusCode)
	}
}

// failingLLM simulates a backend outage: every completion errors.
type failingLLM struct{}

func (failingLLM) Name() string { return "failing" }
func (failingLLM) Complete(ctx context.Context, p string) (string, error) {
	return "", fmt.Errorf("model backend unavailable")
}

// TestServeBackendFailureIs5xx: a valid query whose execution fails in
// the model backend is a server error (500), not the client's fault.
func TestServeBackendFailureIs5xx(t *testing.T) {
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	rt, err := r.Runtime(failingLLM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(rt, serverConfig{maxConcurrent: 4}))
	defer ts.Close()

	resp, _ := postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("backend failure: status %d, want 500", resp.StatusCode)
	}
}

// TestServeFormEncodedQuery: `curl -d "q=SELECT ..."` (a form-encoded q
// field) and `curl -d "SELECT ..."` (bare SQL under the same content
// type) both work.
func TestServeFormEncodedQuery(t *testing.T) {
	_, rt := testRuntime(t, core.DefaultOptions())
	ts := httptest.NewServer(newServer(rt, serverConfig{maxConcurrent: 4}))
	defer ts.Close()

	const sql = `SELECT name FROM country WHERE continent = 'Europe'`
	form := url.Values{"q": {sql}}.Encode()
	resp, err := http.Post(ts.URL+"/query", "application/x-www-form-urlencoded", strings.NewReader(form))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("form-encoded q: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}

	resp2, err := http.Post(ts.URL+"/query", "application/x-www-form-urlencoded", strings.NewReader(sql))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var qr2 queryResponse
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("bare SQL under form content type: status %d", resp2.StatusCode)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&qr2); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(qr.Rows) != fmt.Sprint(qr2.Rows) || qr.RowCount == 0 {
		t.Errorf("form and raw submissions disagree: %d vs %d rows", qr.RowCount, qr2.RowCount)
	}
}

// TestServeHealthzAndStats: the probes respond, and /stats reflects
// served queries and the shared cache.
func TestServeHealthzAndStats(t *testing.T) {
	_, rt := testRuntime(t, core.DefaultOptions())
	ts := httptest.NewServer(newServer(rt, serverConfig{maxConcurrent: 4}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	if resp, _ := postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	// The same query again rides the shared prompt cache.
	if resp, qr := postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	} else if qr.Stats.CacheHits == 0 {
		t.Error("repeated query had zero cache hits")
	}

	statsResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st serverStats
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.QueriesServed != 2 {
		t.Errorf("queries_served = %d, want 2", st.QueriesServed)
	}
	if st.CacheHits == 0 || st.CacheEntries == 0 {
		t.Errorf("stats cache counters empty: %+v", st)
	}
	if st.MaxConcurrent != 4 {
		t.Errorf("max_concurrent = %d, want 4", st.MaxConcurrent)
	}
}

// TestServeQueuedClientDisconnect: a request abandoned while waiting for
// admission frees its queue spot and does not wedge the gate.
func TestServeQueuedClientDisconnect(t *testing.T) {
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	release := make(chan struct{})
	rt, err := r.Runtime(&gatedTestLLM{inner: r.Model(simllm.ChatGPT), release: release}, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(rt, serverConfig{maxConcurrent: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the single slot.
	done := make(chan struct{})
	go func() {
		defer close(done)
		postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`)
	}()
	waitFor(t, func() bool { return srv.active.Load() == 1 })

	// A queued request whose client gives up.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/query?q=SELECT+name+FROM+country", nil)
	errCh := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errCh <- err
	}()
	waitFor(t, func() bool { return srv.waiting.Load() == 1 })
	cancel()
	if err := <-errCh; err == nil {
		t.Error("cancelled queued request returned without error")
	}
	waitFor(t, func() bool { return srv.waiting.Load() == 0 })

	// Release the running query; the gate must be fully usable again.
	close(release)
	<-done
	if resp, _ := postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`); resp.StatusCode != http.StatusOK {
		t.Errorf("gate wedged after queued disconnect: status %d", resp.StatusCode)
	}
}

// TestServeMethodNotAllowed: /query executes SQL only for GET and POST;
// every other verb is a 405 with an Allow header and runs nothing.
func TestServeMethodNotAllowed(t *testing.T) {
	_, rt := testRuntime(t, core.DefaultOptions())
	srv := newServer(rt, serverConfig{maxConcurrent: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, method := range []string{http.MethodPut, http.MethodDelete, http.MethodPatch, "FROBNICATE"} {
		req, err := http.NewRequest(method, ts.URL+"/query?q=SELECT+name+FROM+country", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s /query: status %d, want 405", method, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "GET, POST" {
			t.Errorf("%s /query: Allow = %q, want \"GET, POST\"", method, allow)
		}
	}
	if got := srv.queries.Load(); got != 0 {
		t.Errorf("rejected methods executed %d queries", got)
	}

	// GET and POST still work.
	resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(`SELECT name FROM country WHERE continent = 'Europe'`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /query: status %d", resp.StatusCode)
	}
	if resp, _ := postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`); resp.StatusCode != http.StatusOK {
		t.Errorf("POST /query: status %d", resp.StatusCode)
	}
}

// TestServePlanParam: ?plan=1 returns the plan, absent and false values
// omit it, and a malformed value is the client's error (400), not a
// silent "no plan".
func TestServePlanParam(t *testing.T) {
	_, rt := testRuntime(t, core.DefaultOptions())
	ts := httptest.NewServer(newServer(rt, serverConfig{maxConcurrent: 4}))
	defer ts.Close()

	get := func(t *testing.T, plan string) (*http.Response, queryResponse) {
		t.Helper()
		u := ts.URL + "/query?q=" + url.QueryEscape(`SELECT name FROM country WHERE continent = 'Europe'`)
		if plan != "" {
			u += "&plan=" + url.QueryEscape(plan)
		}
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr queryResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				t.Fatal(err)
			}
		}
		return resp, qr
	}

	if resp, qr := get(t, "1"); resp.StatusCode != http.StatusOK || qr.Plan == "" {
		t.Errorf("plan=1: status %d, plan %q", resp.StatusCode, qr.Plan)
	}
	if resp, qr := get(t, "true"); resp.StatusCode != http.StatusOK || qr.Plan == "" {
		t.Errorf("plan=true: status %d, plan %q", resp.StatusCode, qr.Plan)
	}
	if resp, qr := get(t, "0"); resp.StatusCode != http.StatusOK || qr.Plan != "" {
		t.Errorf("plan=0: status %d, plan %q", resp.StatusCode, qr.Plan)
	}
	if resp, qr := get(t, ""); resp.StatusCode != http.StatusOK || qr.Plan != "" {
		t.Errorf("plan absent: status %d, plan %q", resp.StatusCode, qr.Plan)
	}
	resp, _ := get(t, "frobnicate")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("plan=frobnicate: status %d, want 400", resp.StatusCode)
	}
}

// TestServeCancelledQueuedCounters is the -race regression for the
// admission-gate accounting: requests cancelled while queued must leave
// the waiting gauge at zero and never count toward queries_served.
func TestServeCancelledQueuedCounters(t *testing.T) {
	r, err := bench.NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	release := make(chan struct{})
	rt, err := r.Runtime(&gatedTestLLM{inner: r.Model(simllm.ChatGPT), release: release}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// maxQueue must exceed the cancelled burst: every request is meant to
	// queue (then be abandoned), not be shed up front.
	srv := newServer(rt, serverConfig{maxConcurrent: 1, maxQueue: 16})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the single slot.
	done := make(chan struct{})
	go func() {
		defer close(done)
		postQuery(t, ts, `SELECT name FROM country WHERE continent = 'Europe'`)
	}()
	waitFor(t, func() bool { return srv.active.Load() == 1 })

	// A burst of queued requests all abandoned by their clients.
	const cancelled = 6
	var wg sync.WaitGroup
	for i := 0; i < cancelled; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/query?q=SELECT+name+FROM+country", nil)
			go func() {
				// Cancel once the request is (likely) queued. Plain polling
				// with an unconditional cancel — waitFor's t.Fatal must not
				// run off the test goroutine, and cancelling regardless
				// keeps the test from wedging if the wait times out.
				deadline := time.Now().Add(5 * time.Second)
				for time.Now().Before(deadline) && srv.waiting.Load() == 0 {
					time.Sleep(time.Millisecond)
				}
				cancel()
			}()
			if _, err := http.DefaultClient.Do(req); err == nil {
				t.Error("cancelled queued request returned without error")
			}
		}()
	}
	wg.Wait()
	waitFor(t, func() bool { return srv.waiting.Load() == 0 })

	close(release)
	<-done

	var st serverStats
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Waiting != 0 {
		t.Errorf("waiting gauge leaked: %d, want 0", st.Waiting)
	}
	if st.QueriesServed != 1 {
		t.Errorf("queries_served = %d, want 1 (cancelled-while-queued requests must not count)", st.QueriesServed)
	}
	if st.Active != 0 {
		t.Errorf("active gauge leaked: %d, want 0", st.Active)
	}
}

// TestServeResultCache: with the result cache on, a repeated query is
// answered with cached=true and zero prompts, /stats exposes the
// hit/miss/entry counters, and a rebind (epoch bump) re-executes.
func TestServeResultCache(t *testing.T) {
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	opts.ResultCacheEnabled = true
	r, rt := testRuntime(t, opts)
	ts := httptest.NewServer(newServer(rt, serverConfig{maxConcurrent: 4}))
	defer ts.Close()

	const sql = `SELECT name FROM country WHERE continent = 'Europe'`
	resp1, qr1 := postQuery(t, ts, sql)
	if resp1.StatusCode != http.StatusOK || qr1.Cached != false {
		t.Fatalf("cold query: status %d, cached %v", resp1.StatusCode, qr1.Cached)
	}
	resp2, qr2 := postQuery(t, ts, sql)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("hot query: status %d", resp2.StatusCode)
	}
	if qr2.Cached != "exact" || qr2.Stats.Prompts != 0 {
		t.Errorf("hot query: cached=%v prompts=%d, want \"exact\" with 0 prompts", qr2.Cached, qr2.Stats.Prompts)
	}
	if fmt.Sprint(qr2.Rows) != fmt.Sprint(qr1.Rows) {
		t.Errorf("cached rows diverged:\n%v\nwant:\n%v", qr2.Rows, qr1.Rows)
	}

	var st serverStats
	statsResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ResultCacheHits != 1 || st.ResultCacheMisses != 1 || st.ResultCacheEntries != 1 {
		t.Errorf("result cache stats = %d/%d/%d, want 1/1/1",
			st.ResultCacheHits, st.ResultCacheMisses, st.ResultCacheEntries)
	}

	// A rebind invalidates: the same SQL re-executes.
	epochBefore := st.Epoch
	if err := rt.BindLLMTable(r.World.Table("country").Def); err != nil {
		t.Fatal(err)
	}
	resp3, qr3 := postQuery(t, ts, sql)
	if resp3.StatusCode != http.StatusOK || qr3.Cached != false || qr3.Stats.Prompts == 0 {
		t.Errorf("post-rebind query: status %d cached=%v prompts=%d, want fresh execution",
			resp3.StatusCode, qr3.Cached, qr3.Stats.Prompts)
	}
	if fmt.Sprint(qr3.Rows) != fmt.Sprint(qr1.Rows) {
		t.Errorf("post-rebind rows diverged:\n%v\nwant:\n%v", qr3.Rows, qr1.Rows)
	}
	statsResp2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp2.Body.Close()
	var st2 serverStats
	if err := json.NewDecoder(statsResp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if st2.Epoch <= epochBefore {
		t.Errorf("epoch did not advance on rebind: %d -> %d", epochBefore, st2.Epoch)
	}
}

// TestServeResultCacheSubsumption: a query subsumed by a cached
// relation's plan is answered with cached="subsumed" and zero prompts —
// including a truncating LIMIT query, which the exact tier never serves
// — and /stats exposes the subsumed-hit counter and per-table epochs.
func TestServeResultCacheSubsumption(t *testing.T) {
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	opts.ResultCacheEnabled = true
	_, rt := testRuntime(t, opts)
	ts := httptest.NewServer(newServer(rt, serverConfig{maxConcurrent: 4}))
	defer ts.Close()

	// The parent populates the cache with a producer-shaped relation.
	respP, qrP := postQuery(t, ts, `SELECT name, continent FROM country`)
	if respP.StatusCode != http.StatusOK || qrP.Cached != false || qrP.Stats.Prompts == 0 {
		t.Fatalf("parent query: status %d cached=%v prompts=%d", respP.StatusCode, qrP.Cached, qrP.Stats.Prompts)
	}

	// Children: a projection subset with a residual key-column filter
	// (non-key LLM attribute predicates are answered by boolean prompts
	// and never run locally), and a truncating LIMIT consumer.
	for _, child := range []string{
		`SELECT name FROM country WHERE name != 'Atlantis'`,
		`SELECT name, continent FROM country LIMIT 3`,
	} {
		resp, qr := postQuery(t, ts, child)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("child %q: status %d", child, resp.StatusCode)
		}
		if qr.Cached != "subsumed" || qr.Stats.Prompts != 0 {
			t.Errorf("child %q: cached=%v prompts=%d, want \"subsumed\" with 0 prompts",
				child, qr.Cached, qr.Stats.Prompts)
		}
	}

	var st serverStats
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ResultCacheSubsumedHits != 2 {
		t.Errorf("result_cache_subsumed_hits = %d, want 2", st.ResultCacheSubsumedHits)
	}
	if st.ResultCacheBytes <= 0 {
		t.Errorf("result_cache_bytes = %d, want > 0", st.ResultCacheBytes)
	}
	if st.TableEpochs == nil {
		t.Error("table_epochs missing from /stats")
	}
}

// gatedTestLLM blocks every completion until released.
type gatedTestLLM struct {
	inner   llm.Client
	release chan struct{}
}

func (g *gatedTestLLM) Name() string { return g.inner.Name() }
func (g *gatedTestLLM) Complete(ctx context.Context, p string) (string, error) {
	select {
	case <-g.release:
	case <-ctx.Done():
		return "", ctx.Err()
	}
	return g.inner.Complete(ctx, p)
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestServeBodyTooLarge: a request body past the 1 MiB bound answers
// 413 instead of being silently truncated to a SQL prefix — and a body
// exactly at the bound still parses and executes.
func TestServeBodyTooLarge(t *testing.T) {
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	_, rt := testRuntime(t, opts)
	ts := httptest.NewServer(newServer(rt, serverConfig{maxConcurrent: 4}))
	defer ts.Close()

	// One byte over: 413, and the error names the limit.
	sql := "SELECT name FROM country"
	over := sql + strings.Repeat(" ", maxBodyBytes-len(sql)+1)
	resp, _ := postQuery(t, ts, over)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}

	// Exactly at the limit: the (whitespace-padded) statement executes.
	atLimit := sql + strings.Repeat(" ", maxBodyBytes-len(sql))
	resp, qr := postQuery(t, ts, atLimit)
	if resp.StatusCode != http.StatusOK || qr.RowCount == 0 {
		t.Fatalf("at-limit body: status %d rows %d, want 200 with rows", resp.StatusCode, qr.RowCount)
	}
}

// TestServeWarmRestart: two server generations over the same -data-dir.
// The second serves the first's query from the warm-loaded result cache
// (zero prompts) and reports the restore on /stats.
func TestServeWarmRestart(t *testing.T) {
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	opts.ResultCacheEnabled = true
	dir := t.TempDir()
	sql := "SELECT name FROM country WHERE continent = 'Europe'"

	_, rt1 := testRuntime(t, opts)
	if err := rt1.OpenStore(core.StoreConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(newServer(rt1, serverConfig{maxConcurrent: 4}))
	resp, cold := postQuery(t, ts1, sql)
	if resp.StatusCode != http.StatusOK || cold.Stats.Prompts == 0 {
		t.Fatalf("cold query: status %d prompts %d", resp.StatusCode, cold.Stats.Prompts)
	}
	ts1.Close()
	if err := rt1.CloseStore(); err != nil {
		t.Fatal(err)
	}

	_, rt2 := testRuntime(t, opts)
	if err := rt2.OpenStore(core.StoreConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	defer rt2.CloseStore()
	ts2 := httptest.NewServer(newServer(rt2, serverConfig{maxConcurrent: 4}))
	defer ts2.Close()

	resp, warm := postQuery(t, ts2, sql)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: status %d", resp.StatusCode)
	}
	if warm.Stats.Prompts != 0 || warm.Cached != "exact" {
		t.Errorf("warm query not served from the restored cache: prompts=%d cached=%v",
			warm.Stats.Prompts, warm.Cached)
	}
	if len(warm.Rows) != len(cold.Rows) {
		t.Errorf("warm relation diverged: %d rows, want %d", len(warm.Rows), len(cold.Rows))
	}

	sresp, err := http.Get(ts2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st serverStats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Persistence.Enabled || st.Persistence.WarmRelations != 1 {
		t.Errorf("/stats persistence = %+v, want enabled with 1 warm relation", st.Persistence)
	}
}
