// Command galois-serve runs Galois as a long-lived concurrent SQL
// service: one shared runtime (model endpoints, prompt cache, optimizer
// statistics, and the engine-global fair-share prompt scheduler) serving
// any number of concurrent queries over HTTP, each in its own cheap
// session.
//
// Usage:
//
//	galois-serve [-addr :8080] [-model chatgpt] [-seed 1]
//	             [-max-concurrent 16] [-workers 8] [-cache] [-pipeline]
//	             [-result-cache] [-result-cache-size 256] [-result-cache-bytes N]
//	             [-data-dir DIR] [-store-bytes N] [-store-ttl D] [-snapshot-interval 1m]
//
// Endpoints:
//
//	POST /query            SQL in the request body (or GET /query?q=...);
//	                       ?plan=1 includes the executed plan, ?class=batch
//	                       runs in the scheduler's batch band, ?weight=N
//	                       scales the deficit share. Returns the relation,
//	                       row count and per-query prompt stats as JSON —
//	                       or as a row stream: Accept: application/x-ndjson
//	                       delivers NDJSON frames (header, rows, stats
//	                       trailer) as the executor yields tuples, and
//	                       ?stream=1 the same frames as SSE events.
//	GET  /healthz          liveness probe.
//	GET  /stats            serving counters, admission-controller and
//	                       scheduler state, shared cache statistics.
//
// Concurrency model: all queries share one per-endpoint LLM worker
// budget (-workers), divided by the engine-global deficit-weighted
// scheduler — interactive queries drain with strict priority, batch
// queries soak up idle slots, and a batch backlog can never delay an
// interactive prompt by more than the one already on the wire. The
// admission controller moves its effective concurrency limit between
// -admission-floor and -max-concurrent by AIMD on backpressure signals;
// excess requests queue FIFO (abandoning the queue when their client
// disconnects) and are shed with 503 + Retry-After only at the floor.
// SIGINT/SIGTERM drain in-flight queries before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/rescache"
	"repro/internal/simllm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "galois-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "chatgpt", "simulated model: flan, tk, gpt3, chatgpt")
	configPath := flag.String("config", "", "multi-backend routing declaration (galois.yaml): named backends with per-role routes, optimizer pricing and failover chains; overrides -model")
	seed := flag.Int64("seed", 1, "noise seed for the simulated model")
	maxConcurrent := flag.Int("max-concurrent", 16, "admission gate: max concurrently executing queries (0 = 2x workers)")
	workers := flag.Int("workers", llm.DefaultBatchWorkers, "shared per-endpoint LLM worker budget, fair-shared across all in-flight queries")
	cache := flag.Bool("cache", true, "enable the shared prompt cache (dedup + reuse of completions across queries)")
	cacheSize := flag.Int("cache-size", llm.DefaultCacheSize, "max completions the prompt cache retains")
	resultCache := flag.Bool("result-cache", true, "enable the shared result cache (identical LIMIT-free queries served as whole relations: zero prompts, zero planning; invalidated on rebind/ANALYZE)")
	resultCacheSize := flag.Int("result-cache-size", rescache.DefaultSize, "max relations the result cache retains")
	resultCacheBytes := flag.Int("result-cache-bytes", 0, "approximate byte budget for the result cache (0 = unlimited; the LRU evicts past it)")
	pipeline := flag.Bool("pipeline", true, "enable the pipelined streaming executor on the shared scheduler")
	costbased := flag.Bool("costbased", true, "enable cost-based plan selection")
	pushdown := flag.Bool("pushdown", false, "enable the prompt-pushdown optimization")
	shutdownGrace := flag.Duration("shutdown-grace", 30*time.Second, "max time to drain in-flight queries on SIGINT/SIGTERM")
	maxQueue := flag.Int("max-queue", 0, "max requests waiting for an execution slot; past it requests are shed with 503 + Retry-After once the adaptive limit is at its floor (0 = 4x max-concurrent)")
	admissionFloor := flag.Int("admission-floor", 0, "lower bound of the adaptive concurrency limit; AIMD moves the limit between this and -max-concurrent (0 = max-concurrent/4, minimum 1)")
	queryTimeout := flag.Duration("query-timeout", 0, "server-imposed deadline per query; expiry answers 504 (0 = none)")
	resilient := flag.Bool("resilient", true, "enable the fault-tolerant LLM transport (deadlines, retries, circuit breaker, retry budget)")
	retries := flag.Int("retries", 0, "max retries per prompt after a retryable failure (0 = default 3, negative = never retry)")
	retryBackoff := flag.Duration("retry-backoff", 0, "base backoff ceiling before the first retry; doubles per attempt with deterministic full jitter (0 = default 100ms)")
	promptTimeout := flag.Duration("prompt-timeout", 0, "per-attempt deadline on each model call; expiry is retried (0 = no per-attempt deadline)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive failed prompts that open an endpoint's circuit breaker (0 = default 5, negative = no breaker)")
	dataDir := flag.String("data-dir", "", "directory for the durable store: statistics and result-cache relations persist across restarts (empty = in-memory only)")
	storeBytes := flag.Int("store-bytes", 0, "approximate on-disk byte budget for the durable store (0 = unlimited; oldest relations evicted past it)")
	storeTTL := flag.Duration("store-ttl", 0, "expire persisted relations this long after they were written (0 = never)")
	snapshotInterval := flag.Duration("snapshot-interval", time.Minute, "how often the background snapshot flushes statistics and epochs to the durable store (0 = only on drain)")
	flag.Parse()

	runner, err := bench.NewRunner(*seed)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.Optimizer.PromptPushdown = *pushdown
	opts.Optimizer.CostBased = *costbased
	opts.CacheEnabled = *cache
	opts.CacheSize = *cacheSize
	opts.ResultCacheEnabled = *resultCache
	opts.ResultCacheSize = *resultCacheSize
	opts.ResultCacheBytes = *resultCacheBytes
	opts.Pipelined = *pipeline
	opts.BatchWorkers = *workers
	opts.Resilient = *resilient
	opts.Retries = *retries
	opts.RetryBackoff = *retryBackoff
	opts.PromptTimeout = *promptTimeout
	opts.BreakerThreshold = *breakerThreshold

	var rt *core.Runtime
	var modelDesc string
	if *configPath != "" {
		cfg, err := config.Load(*configPath)
		if err != nil {
			return err
		}
		if rt, err = runner.RuntimeFromConfig(cfg, opts); err != nil {
			return err
		}
		names := make([]string, len(cfg.Backends))
		for i, b := range cfg.Backends {
			names[i] = fmt.Sprintf("%s=%s", b.Name, b.Model)
		}
		modelDesc = "routed: " + strings.Join(names, ", ")
	} else {
		profile, ok := simllm.ProfileByName(*model)
		if !ok {
			return fmt.Errorf("unknown model %q (want flan, tk, gpt3 or chatgpt)", *model)
		}
		modelDesc = fmt.Sprintf("%s (%s)", profile.DisplayName, profile.Params)
		if rt, err = runner.Runtime(runner.Model(profile), opts); err != nil {
			return err
		}
	}
	if *dataDir != "" {
		if err := rt.OpenStore(core.StoreConfig{
			Dir:              *dataDir,
			MaxBytes:         *storeBytes,
			TTL:              *storeTTL,
			SnapshotInterval: *snapshotInterval,
		}); err != nil {
			return fmt.Errorf("opening durable store: %w", err)
		}
		p := rt.Persistence()
		log.Printf("galois-serve: durable store at %s — warm-loaded %d relations, %d stats tables (dropped %d stale, %d corrupt)",
			*dataDir, p.WarmRelations, p.WarmStatsTables, p.DroppedStale, p.DroppedCorrupt)
	}

	handler := newServer(rt, serverConfig{
		maxConcurrent:  *maxConcurrent,
		maxQueue:       *maxQueue,
		queryTimeout:   *queryTimeout,
		admissionFloor: *admissionFloor,
	})
	srv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("galois-serve: %s listening on %s — workers=%d max-concurrent=%d pipeline=%v cache=%v result-cache=%v",
		modelDesc, *addr, *workers, *maxConcurrent, *pipeline, *cache, *resultCache)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("galois-serve: draining in-flight queries (grace %s)", *shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Drain the durable store only after in-flight queries finished, so
	// the final flush captures everything they learned.
	if *dataDir != "" {
		if err := rt.CloseStore(); err != nil {
			return fmt.Errorf("draining durable store: %w", err)
		}
	}
	log.Printf("galois-serve: bye")
	return nil
}
