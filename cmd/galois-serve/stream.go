package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
)

// Streaming delivery: instead of materializing the whole relation
// before the first response byte, the handler walks core.QueryStream
// and writes each row as the pipelined executor yields it — one
// self-describing JSON frame per line (NDJSON), or the same frames
// wrapped in SSE events for EventSource clients. The frame sequence is
// always header, zero or more rows, then exactly one terminal frame:
// stats on success, error on a mid-stream failure (the 200 status line
// is long gone by then, so failures must travel in-band).
const (
	streamNone   = ""       // buffered queryResponse JSON
	streamNDJSON = "ndjson" // application/x-ndjson, one frame per line
	streamSSE    = "sse"    // text/event-stream, one frame per event
)

// streamMode picks the delivery encoding for one request. The explicit
// ?stream= parameter wins; otherwise an Accept header asking for
// application/x-ndjson selects NDJSON. Plain JSON clients are
// untouched: absent both signals the buffered response stays the
// default, so nothing changes for existing callers.
func streamMode(r *http.Request) (string, error) {
	if raw := r.URL.Query().Get("stream"); raw != "" {
		switch raw {
		case "0", "false":
			return streamNone, nil
		case "1", "true", "sse":
			return streamSSE, nil
		case "ndjson":
			return streamNDJSON, nil
		}
		return "", fmt.Errorf("invalid stream parameter %q: want 1/0/sse/ndjson", raw)
	}
	if strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
		return streamNDJSON, nil
	}
	return streamNone, nil
}

// streamHeader opens every stream: the schema a client needs to
// interpret the rows, plus how the result cache answered (known at open
// time, before any row exists).
type streamHeader struct {
	Type    string   `json:"type"` // "header"
	Columns []string `json:"columns"`
	Types   []string `json:"types"`
	Cached  any      `json:"cached"`
}

// streamRow is one delivered tuple with its virtual availability time —
// the simulated instant the prompt chain producing it completed — so
// clients (and the tests) can verify rows left before the relation was
// done against the deterministic latency model.
type streamRow struct {
	Type  string   `json:"type"` // "row"
	Cells []string `json:"cells"`
	VTMS  float64  `json:"vt_ms"`
}

// streamStats closes a successful stream with the same accounting the
// buffered response carries.
type streamStats struct {
	Type     string     `json:"type"` // "stats"
	RowCount int        `json:"row_count"`
	Plan     string     `json:"plan,omitempty"`
	Stats    queryStats `json:"stats"`
}

// streamFailure closes a failed stream; its presence instead of a stats
// frame is the client's only failure signal.
type streamFailure struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

// streamQuery executes sql over sess and writes the result as a frame
// stream. Errors before the first frame still use the normal status
// mapping (503/504/...); once the header is out every outcome travels
// in-band. A client disconnect mid-stream cancels ctx, which fails the
// executor's queued prompts and releases the scheduler tenant via the
// deferred Close — the caller's admission slot is released when this
// returns, exactly like a buffered query.
func (s *server) streamQuery(ctx context.Context, w http.ResponseWriter, fl http.Flusher, sess *core.Session, sql, mode string, wantPlan bool) {
	st, err := sess.QueryStream(ctx, sql)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	defer st.Close()

	fw := &frameWriter{w: w, fl: fl, mode: mode}
	sch := st.Schema()
	head := streamHeader{
		Type:    "header",
		Columns: make([]string, sch.Len()),
		Types:   make([]string, sch.Len()),
		Cached:  cachedJSON(st.Cached()),
	}
	for i, c := range sch.Columns {
		head.Columns[i] = c.QualifiedName()
		head.Types[i] = c.Type.String()
	}
	if fw.frame("header", head) != nil {
		return
	}

	rows := 0
	for {
		row, vt, err := st.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			s.noteQueryError(err)
			fw.frame("error", streamFailure{Type: "error", Error: err.Error()})
			return
		}
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		rows++
		if fw.frame("row", streamRow{Type: "row", Cells: cells, VTMS: float64(vt) / float64(time.Millisecond)}) != nil {
			// The pipe is dead; the deferred Close stops upstream prompt
			// issue and frees the tenant's slots.
			return
		}
	}

	rep, err := st.Finish()
	if err != nil {
		s.noteQueryError(err)
		fw.frame("error", streamFailure{Type: "error", Error: err.Error()})
		return
	}
	tail := streamStats{
		Type:     "stats",
		RowCount: rows,
		Stats: queryStats{
			Prompts:            rep.Stats.Prompts,
			PromptTokens:       rep.Stats.PromptTokens,
			CompletionTokens:   rep.Stats.CompletionTokens,
			CacheHits:          rep.Stats.CacheHits,
			CacheMisses:        rep.Stats.CacheMisses,
			SimulatedLatencyMS: float64(rep.Stats.SimulatedLatency) / float64(time.Millisecond),
		},
	}
	if wantPlan {
		tail.Plan = rep.Plan
	}
	fw.frame("stats", tail)
}

// frameWriter writes one JSON frame per call and flushes it
// immediately — a streamed row must reach the network now, not when
// some buffer happens to fill. The first frame commits the content type
// and the 200 status line.
type frameWriter struct {
	w       http.ResponseWriter
	fl      http.Flusher
	mode    string
	started bool
}

func (f *frameWriter) frame(event string, v any) error {
	if !f.started {
		f.started = true
		if f.mode == streamSSE {
			f.w.Header().Set("Content-Type", "text/event-stream")
			f.w.Header().Set("Cache-Control", "no-cache")
		} else {
			f.w.Header().Set("Content-Type", "application/x-ndjson")
		}
		// Tell buffering reverse proxies not to defeat the flushes.
		f.w.Header().Set("X-Accel-Buffering", "no")
		f.w.WriteHeader(http.StatusOK)
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if f.mode == streamSSE {
		_, err = fmt.Fprintf(f.w, "event: %s\ndata: %s\n\n", event, data)
	} else {
		_, err = f.w.Write(append(data, '\n'))
	}
	if err != nil {
		return err
	}
	f.fl.Flush()
	return nil
}
