// Command worldgen dumps the synthetic world as a SQL script (CREATE
// TABLE + INSERT statements) that the in-memory DBMS can replay. Useful
// for inspecting the ground truth and for loading it into an external
// engine for cross-checking.
//
//	go run ./cmd/worldgen              # full dump to stdout
//	go run ./cmd/worldgen -table city  # one table
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/world"
)

func main() {
	table := flag.String("table", "", "dump only this table")
	flag.Parse()

	w := world.Build()
	names := w.Tables()
	if *table != "" {
		if w.Table(*table) == nil {
			fmt.Fprintf(os.Stderr, "worldgen: no table %q (have %v)\n", *table, names)
			os.Exit(1)
		}
		names = []string{*table}
	}
	for _, name := range names {
		fmt.Print(world.DumpSQL(w, name))
		fmt.Println()
	}
}
