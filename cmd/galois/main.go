// Command galois executes SQL queries against a simulated pre-trained LLM
// (and, for hybrid queries, the in-memory ground-truth DBMS), printing the
// result relation, the query plan, and prompt statistics.
//
// Usage:
//
//	galois [-model chatgpt] [-seed 1] [-explain] [-stats] [-truth]
//	       [-config galois.yaml] [-route role=backend,...]
//	       [-data-dir DIR] "SELECT ..."
//
// Examples:
//
//	galois "SELECT name FROM country WHERE independence_year > 1950"
//	galois -model gpt3 -stats "SELECT c.name, m.birth_date FROM city c, mayor m WHERE c.mayor = m.name AND m.election_year = 2019"
//	galois -explain "SELECT name FROM city WHERE population > 1000000"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/rescache"
	"repro/internal/simllm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "galois:", err)
		os.Exit(1)
	}
}

func run() error {
	model := flag.String("model", "chatgpt", "simulated model: flan, tk, gpt3, chatgpt")
	configPath := flag.String("config", "", "multi-backend routing declaration (galois.yaml): named backends with per-role routes, optimizer pricing and failover chains; overrides -model")
	routeFlag := flag.String("route", "", "per-session role routes as role=backend[,role=backend...] (requires -config)")
	seed := flag.Int64("seed", 1, "noise seed for the simulated model")
	explain := flag.Bool("explain", false, "print the optimized plan instead of executing")
	stats := flag.Bool("stats", false, "print prompt statistics after the result")
	truth := flag.Bool("truth", false, "also execute on the ground-truth DBMS and print both")
	pushdown := flag.Bool("pushdown", false, "enable the prompt-pushdown optimization")
	cache := flag.Bool("cache", true, "enable the engine-level prompt cache (dedup + reuse of completions)")
	cacheSize := flag.Int("cache-size", llm.DefaultCacheSize, "max completions the prompt cache retains")
	resultCache := flag.Bool("result-cache", true, "enable the relation-level result cache (identical LIMIT-free queries served without planning or prompts; invalidated on rebind/ANALYZE)")
	resultCacheSize := flag.Int("result-cache-size", rescache.DefaultSize, "max relations the result cache retains")
	resultCacheBytes := flag.Int("result-cache-bytes", 0, "approximate byte budget for the result cache (0 = unlimited; the LRU evicts past it)")
	pipeline := flag.Bool("pipeline", true, "enable the pipelined streaming executor (overlap prompt waves across operators; off = the paper's stop-and-go execution)")
	costbased := flag.Bool("costbased", true, "enable cost-based plan selection (enumerate candidate plans, pick the one with the fewest estimated prompts; off = the paper's fixed rewrite heuristics)")
	workers := flag.Int("workers", 0, "per-endpoint LLM worker budget (0 = the engine default); in pipelined mode this is the shared scheduler's budget")
	resilient := flag.Bool("resilient", true, "enable the fault-tolerant LLM transport (deadlines, retries, circuit breaker, retry budget)")
	retries := flag.Int("retries", 0, "max retries per prompt after a retryable failure (0 = default 3, negative = never retry)")
	retryBackoff := flag.Duration("retry-backoff", 0, "base backoff ceiling before the first retry; doubles per attempt with deterministic full jitter (0 = default 100ms)")
	promptTimeout := flag.Duration("prompt-timeout", 0, "per-attempt deadline on each model call; expiry is retried (0 = no per-attempt deadline)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive failed prompts that open an endpoint's circuit breaker (0 = default 5, negative = no breaker)")
	dataDir := flag.String("data-dir", "", "directory for the durable store: statistics and result-cache relations persist across invocations (empty = in-memory only)")
	storeBytes := flag.Int("store-bytes", 0, "approximate on-disk byte budget for the durable store (0 = unlimited)")
	storeTTL := flag.Duration("store-ttl", 0, "expire persisted relations this long after they were written (0 = never)")
	flag.Parse()

	sql := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if sql == "" {
		flag.Usage()
		return fmt.Errorf("missing SQL query argument")
	}

	runner, err := bench.NewRunner(*seed)
	if err != nil {
		return err
	}
	opts := core.DefaultOptions()
	opts.Optimizer.PromptPushdown = *pushdown
	opts.Optimizer.CostBased = *costbased
	opts.CacheEnabled = *cache
	opts.CacheSize = *cacheSize
	opts.ResultCacheEnabled = *resultCache
	opts.ResultCacheSize = *resultCacheSize
	opts.ResultCacheBytes = *resultCacheBytes
	opts.Pipelined = *pipeline
	if *workers > 0 {
		opts.BatchWorkers = *workers
	}
	opts.Resilient = *resilient
	opts.Retries = *retries
	opts.RetryBackoff = *retryBackoff
	opts.PromptTimeout = *promptTimeout
	opts.BreakerThreshold = *breakerThreshold

	var rt *core.Runtime
	var header string
	if *configPath != "" {
		cfg, err := config.Load(*configPath)
		if err != nil {
			return err
		}
		if *routeFlag != "" {
			routes, err := parseRoutes(*routeFlag)
			if err != nil {
				return err
			}
			opts.Routes = routes
		}
		if rt, err = runner.RuntimeFromConfig(cfg, opts); err != nil {
			return err
		}
		names := make([]string, len(cfg.Backends))
		for i, b := range cfg.Backends {
			names[i] = fmt.Sprintf("%s=%s", b.Name, b.Model)
		}
		header = "routed: " + strings.Join(names, ", ")
	} else {
		if *routeFlag != "" {
			return fmt.Errorf("-route requires -config (no named backends without a routing declaration)")
		}
		profile, ok := simllm.ProfileByName(*model)
		if !ok {
			return fmt.Errorf("unknown model %q (want flan, tk, gpt3 or chatgpt)", *model)
		}
		header = fmt.Sprintf("%s (%s)", profile.DisplayName, profile.Params)
		if rt, err = runner.Runtime(runner.Model(profile), opts); err != nil {
			return err
		}
	}
	if *dataDir != "" {
		// A one-shot CLI has no background traffic: warm-load on open,
		// flush on the way out. Repeated invocations over one -data-dir
		// behave like one long-lived session.
		if err := rt.OpenStore(core.StoreConfig{Dir: *dataDir, MaxBytes: *storeBytes, TTL: *storeTTL}); err != nil {
			return fmt.Errorf("opening durable store: %w", err)
		}
		defer rt.CloseStore()
	}
	engine := rt.Engine()

	ctx := context.Background()
	isExplain := strings.HasPrefix(strings.ToUpper(sql), "EXPLAIN")
	if *explain && !isExplain {
		// Print the chosen plan with its cost estimates instead of
		// executing; EXPLAIN ANALYZE (typed out) executes and annotates.
		sql = "EXPLAIN " + sql
		isExplain = true
	}

	rel, rep, err := engine.Query(ctx, sql)
	if err != nil {
		return err
	}
	fmt.Printf("-- %s (%s) --\n", header, sql)
	fmt.Print(rel.String())
	fmt.Printf("(%d rows)\n", rel.Cardinality())
	if *stats {
		fmt.Printf("\nplan:\n%s\nllm usage: %s\n", rep.Plan, rep.Stats.String())
		if rep.Estimate != nil {
			fmt.Printf("planner:   %s\n", rep.Estimate.String())
		}
	}

	// A plan rendering has no ground-truth relation to compare against.
	if *truth && !isExplain {
		td, err := runner.GroundTruth(ctx, sql)
		if err != nil {
			return fmt.Errorf("ground truth: %w", err)
		}
		fmt.Printf("\n-- ground truth (DBMS) --\n%s(%d rows)\n", td.String(), td.Cardinality())
	}
	return nil
}

// parseRoutes parses "role=backend[,role=backend...]" into the
// per-session route map -route accepts.
func parseRoutes(s string) (map[string]string, error) {
	out := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		role, backend, ok := strings.Cut(part, "=")
		if !ok || strings.TrimSpace(role) == "" || strings.TrimSpace(backend) == "" {
			return nil, fmt.Errorf("bad -route entry %q (want role=backend)", part)
		}
		out[strings.TrimSpace(role)] = strings.TrimSpace(backend)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-route: no routes given")
	}
	return out, nil
}
