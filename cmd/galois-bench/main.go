// Command galois-bench regenerates every experiment in the paper's
// evaluation section: Table 1 (result cardinality per model), Table 2
// (cell-value matches per method and query class on ChatGPT), the latency
// note of Section 5, the Figure 3 plan and Figure 4 prompt, plus the
// ablations called out in DESIGN.md.
//
// Usage:
//
//	galois-bench                 # everything
//	galois-bench -table 1       # just Table 1
//	galois-bench -table 2
//	galois-bench -figure 3      # the lowered plan for q'
//	galois-bench -figure 4      # the few-shot prompt
//	galois-bench -latency
//	galois-bench -ablation pushdown|cleaning|joins|more|cache|pipeline|optimizer|
//	                       concurrency|resultcache|chaos|persist|sched|routing|
//	                       verify|portability|schemafree
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/rescache"
	"repro/internal/simllm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "galois-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	table := flag.Int("table", 0, "regenerate one table (1 or 2); 0 = all")
	figure := flag.Int("figure", 0, "regenerate one figure (3 or 4); 0 = all")
	latency := flag.Bool("latency", false, "only the latency measurement")
	ablation := flag.String("ablation", "", "one ablation: pushdown, cleaning, joins, more, cache, pipeline, optimizer, concurrency, resultcache, chaos, persist, sched, routing, verify, portability, schemafree")
	explain := flag.String("explain", "", "print EXPLAIN ANALYZE for the given SQL under the cost-based engine and exit")
	configPath := flag.String("config", "", "multi-backend routing declaration (galois.yaml) for -explain: plans are priced and routed across the declared backends")
	seed := flag.Int64("seed", 1, "noise seed")
	model := flag.String("model", "chatgpt", "model for Table 2 and ablations")
	cache := flag.Bool("cache", false, "run the table/latency/extension experiments with the engine prompt cache on (default off = the paper's configuration; ablations define their own configs)")
	cacheSize := flag.Int("cache-size", llm.DefaultCacheSize, "max completions the prompt cache retains when -cache is set")
	resultCache := flag.Bool("result-cache", false, "run the table/latency/extension experiments with the relation-level result cache on (default off = the paper's configuration)")
	resultCacheSize := flag.Int("result-cache-size", rescache.DefaultSize, "max relations the result cache retains when -result-cache is set")
	resultCacheBytes := flag.Int("result-cache-bytes", 0, "approximate byte budget for the result cache (0 = unlimited; the LRU evicts past it)")
	pipeline := flag.Bool("pipeline", false, "run the table/latency/extension experiments with the pipelined streaming executor (default off = the paper's stop-and-go execution)")
	workers := flag.Int("workers", 0, "per-endpoint LLM worker budget (0 = the engine default); in pipelined mode this is the shared scheduler's budget")
	flag.Parse()

	runner, err := bench.NewRunner(*seed)
	if err != nil {
		return err
	}
	profile, ok := simllm.ProfileByName(*model)
	if !ok {
		return fmt.Errorf("unknown model %q", *model)
	}
	ctx := context.Background()
	opts := bench.PaperOptions()
	opts.CacheEnabled = *cache
	opts.CacheSize = *cacheSize
	opts.ResultCacheEnabled = *resultCache
	opts.ResultCacheSize = *resultCacheSize
	opts.ResultCacheBytes = *resultCacheBytes
	opts.Pipelined = *pipeline
	if *workers > 0 {
		opts.BatchWorkers = *workers
	}

	if *explain != "" {
		return printExplain(ctx, runner, profile, *configPath, *explain)
	}
	if *configPath != "" {
		return fmt.Errorf("-config only applies to -explain (experiments declare their own backend arms)")
	}

	specific := *table != 0 || *figure != 0 || *latency || *ablation != ""

	if *table == 1 || !specific {
		if err := printTable1(ctx, runner, opts); err != nil {
			return err
		}
	}
	if *table == 2 || !specific {
		if err := printTable2(ctx, runner, profile, opts); err != nil {
			return err
		}
	}
	if *figure == 3 || !specific {
		if err := printFigure3(runner, opts); err != nil {
			return err
		}
	}
	if *figure == 4 || !specific {
		printFigure4()
	}
	if *latency || !specific {
		if err := printLatency(ctx, runner, opts); err != nil {
			return err
		}
	}
	if *ablation != "" || !specific {
		names := []string{"pushdown", "cleaning", "joins", "more", "cache", "pipeline", "optimizer", "concurrency", "resultcache", "chaos", "persist", "sched", "routing", "verify", "portability", "schemafree"}
		if *ablation != "" {
			names = []string{*ablation}
		}
		for _, name := range names {
			if err := printAblation(ctx, runner, profile, name, opts); err != nil {
				return err
			}
		}
	}
	return nil
}

func printTable1(ctx context.Context, r *bench.Runner, opts core.Options) error {
	rows, err := r.Table1(ctx, simllm.AllProfiles(), opts)
	if err != nil {
		return err
	}
	fmt.Println("Table 1: average cardinality difference of R_M vs |R_D| (closer to 0 is better)")
	fmt.Println("  model     paper    measured")
	for _, row := range rows {
		fmt.Printf("  %-8s %+7.1f %+10.1f\n", row.Model, bench.Table1Paper[row.Model], row.DiffPercent)
	}
	fmt.Println()
	return nil
}

func printTable2(ctx context.Context, r *bench.Runner, p simllm.Profile, opts core.Options) error {
	rows, err := r.Table2(ctx, p, opts)
	if err != nil {
		return err
	}
	fmt.Printf("Table 2: cell value matches (%%) on %s — All / Selections / Aggregates / Joins\n", p.DisplayName)
	fmt.Println("  method   paper              measured")
	for i, row := range rows {
		pp := bench.Table2Paper[i]
		fmt.Printf("  %-6s  %3.0f/%3.0f/%3.0f/%3.0f   %5.1f/%5.1f/%5.1f/%5.1f\n",
			row.Method, pp.All, pp.Selections, pp.Aggregates, pp.Joins,
			row.All, row.Selections, row.Aggregates, row.Joins)
	}
	fmt.Println()
	return nil
}

// Figure3SQL is the q' of Figure 3: cities over 1M population joined with
// young politicians (mayors in our world).
const Figure3SQL = `SELECT c.name, p.name FROM city c, mayor p WHERE c.mayor = p.name AND c.population > 1000000 AND p.age < 40`

func printFigure3(r *bench.Runner, opts core.Options) error {
	engine, err := r.Engine(r.Model(simllm.ChatGPT), opts)
	if err != nil {
		return err
	}
	plan, err := engine.Explain(Figure3SQL)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3: logical plan for q' (LLM operators injected by lowering)")
	fmt.Println("  q' =", Figure3SQL)
	fmt.Print(plan)
	fmt.Println()
	return nil
}

func printFigure4() {
	fmt.Println("Figure 4: few-shot examples for the GPT-3 prompt")
	fmt.Print(prompt.FewShotPreamble)
	fmt.Println()
}

func printLatency(ctx context.Context, r *bench.Runner, opts core.Options) error {
	stats, err := r.Latency(ctx, simllm.GPT3, opts)
	if err != nil {
		return err
	}
	fmt.Println("Section 5 latency note (paper: ~110 batched prompts, ~20 s per query on GPT-3)")
	fmt.Printf("  model=%s avg_prompts=%.0f max_prompts=%d avg_simulated_latency=%s\n\n",
		stats.Model, stats.AvgPrompts, stats.MaxPrompts, stats.AvgLatency)
	return nil
}

func printAblation(ctx context.Context, r *bench.Runner, p simllm.Profile, name string, opts core.Options) error {
	var rows []bench.AblationRow
	var err error
	var title string
	switch name {
	case "pushdown":
		title = "Ablation A: prompt pushdown (selection queries)"
		rows, err = r.AblationPushdown(ctx, p)
	case "cleaning":
		title = "Ablation B: answer cleaning / type enforcement (all queries)"
		rows, err = r.AblationCleaning(ctx, p)
	case "joins":
		title = "Ablation C: surface-form canonicalization before joins (join queries)"
		rows, err = r.AblationJoinFormats(ctx, p)
	case "more":
		title = "Ablation D: termination threshold for the more-results loop (projection queries)"
		rows, err = r.AblationMoreResults(ctx, p, []int{1, 2, 4, 8, 12})
	case "cache":
		title = "Ablation E: engine-level prompt cache (LRU + singleflight + batch dedup; prompts = model calls issued)"
		rows, err = r.AblationCache(ctx, p)
	case "pipeline":
		return printPipeline(ctx, r, p)
	case "optimizer":
		return printOptimizer(ctx, r, p)
	case "concurrency":
		return printConcurrency(ctx, r, p)
	case "resultcache":
		return printResultCache(ctx, r, p)
	case "chaos":
		return printChaos(ctx, r, p)
	case "persist":
		return printPersist(ctx, r, p)
	case "sched":
		return printSched(ctx, r, p)
	case "routing":
		return printRouting(ctx, r, p)
	case "verify":
		title = "Extension: verification by a second model (Section 6, Knowledge of the Unknown)"
		rows, err = r.AblationVerification(ctx, p, simllm.GPT3)
	case "portability":
		return printPortability(ctx, r, opts)
	case "schemafree":
		return printSchemaFree(ctx, r, p, opts)
	default:
		return fmt.Errorf("unknown ablation %q", name)
	}
	if err != nil {
		return err
	}
	fmt.Println(title)
	fmt.Println("  config                cell%   card-diff%   prompts/query")
	for _, row := range rows {
		fmt.Printf("  %-20s %6.1f %+11.1f %11.1f\n", row.Config, row.CellMatch, row.CardDiff, row.AvgPrompts)
	}
	fmt.Println()
	return nil
}

func printPipeline(ctx context.Context, r *bench.Runner, p simllm.Profile) error {
	rep, err := r.PipelineComparison(ctx, p, simllm.GPT3)
	if err != nil {
		return err
	}
	fmt.Println("Ablation F: pipelined streaming executor vs stop-and-go (identical result sets asserted)")
	for _, bm := range rep.Benchmarks {
		fmt.Printf("  %s (%d queries, results identical: %v, speedup %.2fx)\n",
			bm.Name, bm.Configs[0].Queries, bm.ResultsIdentical, bm.Speedup)
		for _, cfg := range bm.Configs {
			fmt.Printf("    %-12s %6.1f prompts/query %8.1f s/query simulated\n",
				cfg.Config, cfg.PromptsPerQuery, cfg.AvgSimLatencyMS/1000)
		}
	}
	fmt.Println()
	return nil
}

func printOptimizer(ctx context.Context, r *bench.Runner, p simllm.Profile) error {
	rep, err := r.OptimizerComparison(ctx, p)
	if err != nil {
		return err
	}
	fmt.Println("Ablation G: cost-based plan selection vs fixed rewrite heuristics")
	fmt.Println("  config                prompts/query   cell%")
	for _, arm := range rep.Corpus {
		fmt.Printf("  %-20s %13.1f %7.1f\n", arm.Config, arm.PromptsPerQuery, arm.CellMatch)
	}
	fmt.Println("  multi-predicate suite (fixed → cost-based prompts):")
	for _, q := range rep.MultiPredicate {
		fmt.Printf("    %-22s %4d → %4d  (%+.1f%% saved)\n", q.Name, q.FixedPrompts, q.CostBasedPrompts, q.SavingsPercent)
	}
	fmt.Printf("  estimate accuracy over the corpus: mean ratio %.2f, max ratio %.2f (must stay ≤ 2)\n\n",
		rep.Estimates.MeanRatio, rep.Estimates.MaxRatio)
	return nil
}

func printConcurrency(ctx context.Context, r *bench.Runner, p simllm.Profile) error {
	rep, err := r.ConcurrencyComparison(ctx, p, bench.DefaultConcurrency, bench.DefaultServeWorkers)
	if err != nil {
		return err
	}
	fmt.Println("Ablation H: shared-runtime concurrency (one engine-global fair-share scheduler)")
	fmt.Printf("  corpus of %d queries, per-endpoint worker budget W=%d\n", rep.Serial.Queries, rep.Workers)
	fmt.Printf("  %-16s aggregate simulated makespan %8.1f s  (%d prompts)\n",
		rep.Serial.Config, rep.Serial.AggregateMakespanMS/1000, rep.Serial.TotalPrompts)
	fmt.Printf("  %-16s aggregate simulated makespan %8.1f s  (%d prompts)\n",
		rep.Concurrent.Config, rep.Concurrent.AggregateMakespanMS/1000, rep.Concurrent.TotalPrompts)
	fmt.Printf("  speedup %.2fx — results identical: %v, per-query prompts identical: %v\n\n",
		rep.SpeedupX, rep.ResultsIdentical, rep.PromptsIdentical)
	return nil
}

func printSched(ctx context.Context, r *bench.Runner, p simllm.Profile) error {
	rep, err := r.SchedComparison(ctx, p, bench.DefaultConcurrency, bench.DefaultServeWorkers)
	if err != nil {
		return err
	}
	fmt.Println("Ablation K: deficit-weighted fair scheduling (strict-priority classes + token-deficit rotation)")
	fmt.Printf("  simulated contention: %d interactive chains over %d saturating batch tenants, W=%d\n",
		rep.SimInteractive, rep.SimBatch, rep.Workers)
	fmt.Printf("  %-18s interactive p50/p99 %7.1f / %7.1f s   batch p99 %6.1f s   makespan %6.1f s\n",
		rep.RoundRobin.Policy, rep.RoundRobin.InteractiveP50MS/1000, rep.RoundRobin.InteractiveP99MS/1000,
		rep.RoundRobin.BatchP99MS/1000, rep.RoundRobin.MakespanMS/1000)
	fmt.Printf("  %-18s interactive p50/p99 %7.1f / %7.1f s   batch p99 %6.1f s   makespan %6.1f s\n",
		rep.Deficit.Policy, rep.Deficit.InteractiveP50MS/1000, rep.Deficit.InteractiveP99MS/1000,
		rep.Deficit.BatchP99MS/1000, rep.Deficit.MakespanMS/1000)
	fmt.Printf("  interactive p99 improvement %.2fx; worst first-dispatch wait %.0f ms within the %.0f ms one-prompt bound\n",
		rep.P99ImprovementX, rep.Deficit.MaxFirstWaitMS, rep.StarvationBoundMS)
	fmt.Printf("  live corpus %-9s aggregate simulated makespan %8.1f s  (%d prompts)\n",
		rep.Solo.Config, rep.Solo.AggregateMakespanMS/1000, rep.Solo.TotalPrompts)
	fmt.Printf("  live corpus %-9s aggregate simulated makespan %8.1f s  (%d prompts)\n",
		rep.Mixed.Config, rep.Mixed.AggregateMakespanMS/1000, rep.Mixed.TotalPrompts)
	fmt.Printf("  results identical: %v, per-query prompts identical: %v\n\n",
		rep.ResultsIdentical, rep.PromptsIdentical)
	return nil
}

func printRouting(ctx context.Context, r *bench.Runner, p simllm.Profile) error {
	rep, err := r.RoutingComparison(ctx, p)
	if err != nil {
		return err
	}
	fmt.Println("Ablation L: multi-backend routing (cheap backend on keyscan/filter; failover on outage)")
	fmt.Printf("  corpus of %d queries per arm; cheap backend priced at %.2fx the strong backend\n",
		rep.Queries, rep.CheapCostWeight)
	for _, arm := range []bench.RoutingArm{rep.Single, rep.Routed, rep.Failover} {
		fmt.Printf("  %-28s weighted cost %7.1f (%4d prompts", arm.Config, arm.WeightedCost, arm.Prompts)
		for _, name := range []string{"cheap", "strong"} {
			if n, ok := arm.BackendPrompts[name]; ok {
				fmt.Printf(", %s=%d", name, n)
			}
		}
		fmt.Printf("), identical: %v/%v, failed: %d\n", arm.ResultsIdentical, arm.PromptsIdentical, arm.FailedQueries)
	}
	fmt.Printf("  outage at query %d: %d prompts failed over down the declared chain, breaker opened: %v\n\n",
		rep.Failover.OutageAtQuery, rep.Failover.Failovers, rep.Failover.BreakerOpened)
	return nil
}

func printResultCache(ctx context.Context, r *bench.Runner, p simllm.Profile) error {
	rep, err := r.ResultCacheComparison(ctx, p, bench.DefaultResultCacheRepeats)
	if err != nil {
		return err
	}
	fmt.Println("Ablation I: semantic result cache (repeated dashboard traffic; prompt cache off in both arms)")
	fmt.Printf("  corpus of %d queries (%d storable, %d LIMIT-bearing consume-only), %d hot passes\n",
		rep.Queries, rep.CacheableQueries, rep.LimitQueries, rep.Repeats)
	fmt.Printf("  first pass:   %d prompts uncached vs %d cached — %d queries already subsumed cold (results identical: %v)\n",
		rep.UncachedFirstPrompts, rep.CachedFirstPrompts, rep.ColdSubsumed, rep.FirstRunIdentical)
	fmt.Printf("  hot passes:   %d prompts on storable queries, %d on LIMIT queries (relations identical: %v)\n",
		rep.RepeatPromptsCacheable, rep.RepeatPromptsLimit, rep.RepeatIdentical)
	fmt.Printf("  result cache: %d exact hits / %d subsumed / %d misses / %d entries\n",
		rep.ResultCacheHits, rep.ResultCacheSubsumedHits, rep.ResultCacheMisses, rep.ResultCacheEntries)
	fmt.Printf("  per-table bump (ANALYZE): primed table re-executed: %v, unrelated tables retained: %v, relations still identical: %v\n\n",
		rep.InvalidationReexecuted, rep.InvalidationRetained, rep.InvalidationIdentical)
	return nil
}

func printChaos(ctx context.Context, r *bench.Runner, p simllm.Profile) error {
	rep, err := r.ChaosComparison(ctx, p)
	if err != nil {
		return err
	}
	fmt.Println("Ablation J: fault-tolerant LLM transport (seeded chaos differential)")
	fmt.Printf("  corpus of %d queries per arm; identical = relations/prompts/makespan bit-identical to fault-free\n", rep.Queries)
	for _, arm := range []bench.ChaosArm{rep.Transient, rep.Malformed} {
		fmt.Printf("  %-20s %3d faults healed by %3d retries, %d queries lost, identical: %v/%v/%v (hot pass: %v)\n",
			arm.Config, arm.Faults, arm.Retries, arm.FailedQueries,
			arm.ResultsIdentical, arm.PromptsIdentical, arm.MakespanIdentical, arm.HotIdentical)
	}
	fmt.Printf("  %-20s %d of %d queries lost without retries (all failures classified: %v)\n",
		rep.NoRetry.Config, rep.NoRetry.FailedQueries, rep.NoRetry.Queries, rep.NoRetry.FailuresClassified)
	o := rep.Outage
	fmt.Printf("  outage: breaker opened after %d classified failures, shed fast while open: %v, cache kept serving: %v\n",
		o.FailedDuringOutage, o.FastFailed && o.ShedClassified, o.CacheServedDuringOutage)
	fmt.Printf("  recovery: half-open probe healed: %v, post-recovery identical (no stale cache entries): %v\n\n",
		o.ProbeHealed, o.PostRecoveryOK && o.PostRecoveryIdentical)
	return nil
}

func printPersist(ctx context.Context, r *bench.Runner, p simllm.Profile) error {
	dir, err := os.MkdirTemp("", "galois-persist-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rep, err := r.PersistComparison(ctx, p, dir)
	if err != nil {
		return err
	}
	fmt.Println("Ablation K: durable store (four runtime generations over one data directory; prompt cache off)")
	fmt.Printf("  corpus of %d queries (%d storable, %d LIMIT-bearing bypass the store)\n",
		rep.Queries, rep.CacheableQueries, rep.LimitQueries)
	fmt.Printf("  cold pass:    %d prompts; drained %d relations and %d statistics tables to disk\n",
		rep.ColdPrompts, rep.WarmRelations, rep.WarmStatsTables)
	fmt.Printf("  warm restart: %d prompts, relations bit-identical: %v, statistics restored: %v (all observed: %v)\n",
		rep.WarmPrompts, rep.WarmIdentical, rep.StatsRestored, rep.AllStatsSeen)
	fmt.Printf("  rebind probe: re-executed: %v, unrelated retained: %v, identical: %v; next restart warm-loads %d again\n",
		rep.RebindReexecuted, rep.RebindRetained, rep.RebindIdentical, rep.ReopenWarmRelations)
	fmt.Printf("  ANALYZE across drain: warm-loaded %d of %d (primed table's %d re-pay), stale served: %d, re-executed: %v, retained: %v, identical: %v\n\n",
		rep.PostPrimeWarmRelations, rep.CacheableQueries, rep.PrimedCacheable,
		rep.PostPrimeDroppedStale, rep.PrimedReexecuted, rep.PrimedRetained, rep.PrimedIdentical)
	return nil
}

func printExplain(ctx context.Context, r *bench.Runner, p simllm.Profile, configPath, sql string) error {
	opts := bench.CostBasedOptions()
	var engine *core.Engine
	if configPath != "" {
		cfg, err := config.Load(configPath)
		if err != nil {
			return err
		}
		rt, err := r.RuntimeFromConfig(cfg, opts)
		if err != nil {
			return err
		}
		engine = rt.Engine()
	} else {
		var err error
		engine, err = r.Engine(r.Model(p), opts)
		if err != nil {
			return err
		}
	}
	if !strings.HasPrefix(strings.ToUpper(strings.TrimSpace(sql)), "EXPLAIN") {
		sql = "EXPLAIN ANALYZE " + sql
	}
	rel, _, err := engine.Query(ctx, sql)
	if err != nil {
		return err
	}
	fmt.Print(rel.String())
	return nil
}

func printPortability(ctx context.Context, r *bench.Runner, opts core.Options) error {
	cells, err := r.Portability(ctx, simllm.AllProfiles(), opts)
	if err != nil {
		return err
	}
	fmt.Println("Extension: portability — pairwise result overlap across models (Section 6)")
	for _, c := range cells {
		fmt.Printf("  %-8s vs %-8s overlap %5.1f%%\n", c.ModelA, c.ModelB, c.Overlap)
	}
	fmt.Println()
	return nil
}

func printSchemaFree(ctx context.Context, r *bench.Runner, p simllm.Profile, opts core.Options) error {
	fmt.Println("Extension: schema-less equivalence — Q1 (join) vs Q2 (flat) (Section 6)")
	for _, prof := range []simllm.Profile{simllm.GPT3, p} {
		res, err := r.SchemaFreedom(ctx, prof, opts)
		if err != nil {
			return err
		}
		fmt.Printf("  %s: Q1 rows=%d (truth %.1f%%), Q2 rows=%d (truth %.1f%%), mutual overlap=%.1f%% (DBMS would guarantee 100%%)\n",
			prof.ID, res.Q1Rows, res.Q1Truth, res.Q2Rows, res.Q2Truth, res.MutualOverlap)
		if prof.ID == p.ID {
			break
		}
	}
	fmt.Println()
	return nil
}
