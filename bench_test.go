// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation (Section 5) plus the DESIGN.md ablations, one
// testing.B target per experiment:
//
//	go test -bench=BenchmarkTable1 -benchmem         # Table 1
//	go test -bench=BenchmarkTable2 -benchmem         # Table 2
//	go test -bench=BenchmarkFigure3 -benchmem        # Figure 3 plan
//	go test -bench=BenchmarkFigure4 -benchmem        # Figure 4 prompt
//	go test -bench=BenchmarkPromptCounts -benchmem   # §5 latency note
//	go test -bench=BenchmarkAblation -benchmem       # ablations A–D
//
// Each benchmark reports the paper-relevant quantities as custom metrics
// (cardinality diff %, cell match %, prompts/query) so `go test -bench=.`
// output doubles as the reproduction record; EXPERIMENTS.md holds a
// committed copy.
package main

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/simllm"
	"repro/internal/spider"
)

func mustRunner(b *testing.B) *bench.Runner {
	b.Helper()
	r, err := bench.NewRunner(1)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable1 regenerates the cardinality experiment. Each model's
// measured diff % is reported as a metric named after the model.
func BenchmarkTable1(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rows []bench.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.Table1(ctx, simllm.AllProfiles(), bench.PaperOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		b.ReportMetric(row.DiffPercent, row.Model+"_card_diff_%")
	}
}

// BenchmarkTable2 regenerates the content experiment on ChatGPT.
func BenchmarkTable2(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rows []bench.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.Table2(ctx, simllm.ChatGPT, bench.PaperOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		tag := map[string]string{"R_M": "galois", "T_M": "qa", "T_M^C": "qa_cot"}[row.Method]
		b.ReportMetric(row.All, tag+"_all_%")
		b.ReportMetric(row.Selections, tag+"_sel_%")
		b.ReportMetric(row.Aggregates, tag+"_agg_%")
		b.ReportMetric(row.Joins, tag+"_join_%")
	}
}

// BenchmarkFigure3 measures planning+lowering for the paper's q' (the
// Figure 3 plan); the golden-content check lives in the optimizer tests.
func BenchmarkFigure3(b *testing.B) {
	r := mustRunner(b)
	engine, err := r.Engine(r.Model(simllm.ChatGPT), bench.PaperOptions())
	if err != nil {
		b.Fatal(err)
	}
	const q = `SELECT c.name, p.name FROM city c, mayor p WHERE c.mayor = p.name AND c.population > 1000000 AND p.age < 40`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Explain(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 measures prompt construction with the Figure 4
// preamble.
func BenchmarkFigure4(b *testing.B) {
	builder := prompt.NewBuilder()
	for i := 0; i < b.N; i++ {
		_ = builder.Question("What is the capital of France?")
	}
}

// BenchmarkPromptCounts regenerates the Section 5 latency note (~110
// batched prompts, ~20 s per query on GPT-3), reporting prompts/query and
// simulated seconds/query.
func BenchmarkPromptCounts(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var stats *bench.LatencyStats
	for i := 0; i < b.N; i++ {
		var err error
		stats, err = r.Latency(ctx, simllm.GPT3, bench.PaperOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.AvgPrompts, "prompts/query")
	b.ReportMetric(stats.AvgLatency.Seconds(), "sim_s/query")
}

// BenchmarkAblationPushdown compares staged prompts vs merged list prompts
// (Ablation A).
func BenchmarkAblationPushdown(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.AblationPushdown(ctx, simllm.ChatGPT)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].AvgPrompts, "staged_prompts/query")
	b.ReportMetric(rows[1].AvgPrompts, "pushdown_prompts/query")
	b.ReportMetric(rows[0].CellMatch, "staged_cell_%")
	b.ReportMetric(rows[1].CellMatch, "pushdown_cell_%")
}

// BenchmarkAblationCleaning toggles answer normalization (Ablation B).
func BenchmarkAblationCleaning(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.AblationCleaning(ctx, simllm.ChatGPT)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].CellMatch, "cleaning_on_cell_%")
	b.ReportMetric(rows[1].CellMatch, "cleaning_off_cell_%")
}

// BenchmarkAblationJoinFormats toggles surface-form canonicalization
// before joins (Ablation C).
func BenchmarkAblationJoinFormats(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.AblationJoinFormats(ctx, simllm.ChatGPT)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].CellMatch, "raw_join_cell_%")
	b.ReportMetric(rows[1].CellMatch, "canon_join_cell_%")
}

// BenchmarkMoreResultsThreshold sweeps the termination threshold of the
// more-results loop (Ablation D).
func BenchmarkMoreResultsThreshold(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.AblationMoreResults(ctx, simllm.GPT3, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		b.ReportMetric(row.CellMatch, row.Config+"_cell_%")
	}
}

// BenchmarkAblationCache compares model calls per query with the
// engine-level prompt cache off vs on across the corpus (Ablation E): the
// cache-on arm reuses key scans and attribute fetches across queries,
// collapses concurrent identical prompts, and deduplicates batches.
func BenchmarkAblationCache(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.AblationCache(ctx, simllm.ChatGPT)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].AvgPrompts, "cache_off_prompts/query")
	b.ReportMetric(rows[1].AvgPrompts, "cache_on_prompts/query")
	b.ReportMetric(rows[0].CellMatch, "cache_off_cell_%")
	b.ReportMetric(rows[1].CellMatch, "cache_on_cell_%")
}

// BenchmarkRepeatedQueryCached measures the repeated-traffic hot path the
// cache targets: the same query against one warm engine. After the first
// iteration every prompt is a cache hit, so this is the zero-model-call
// serving cost.
func BenchmarkRepeatedQueryCached(b *testing.B) {
	r := mustRunner(b)
	engine, err := r.Engine(r.Model(simllm.ChatGPT), core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	const q = `SELECT name FROM country WHERE independence_year > 1950`
	if _, _, err := engine.Query(ctx, q); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	var prompts int
	for i := 0; i < b.N; i++ {
		_, rep, err := engine.Query(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		prompts += rep.Stats.Prompts
	}
	b.ReportMetric(float64(prompts)/float64(b.N), "prompts/query")
}

// BenchmarkPipelineComparison measures the pipelined streaming executor
// against stop-and-go execution — the multi-operator benchmark query and
// the whole corpus, both with a GPT-3 verifier over ChatGPT — and writes
// the machine-readable BENCH_pipeline.json artifact (prompts/query and
// simulated latency per configuration) tracking the perf trajectory. The
// report is deterministic, so the committed artifact is reproducible:
//
//	go test -run '^$' -bench BenchmarkPipelineComparison -benchtime=1x .
func BenchmarkPipelineComparison(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rep *bench.PipelineReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = r.PipelineComparison(ctx, simllm.ChatGPT, simllm.GPT3)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, bm := range rep.Benchmarks {
		tag, _, _ := strings.Cut(bm.Name, "-") // "multiop-…" -> "multiop"
		b.ReportMetric(bm.Speedup, tag+"_speedup_x")
		b.ReportMetric(bm.Configs[0].AvgSimLatencyMS/1000, tag+"_stopgo_s/query")
		b.ReportMetric(bm.Configs[1].AvgSimLatencyMS/1000, tag+"_pipelined_s/query")
		if !bm.ResultsIdentical {
			b.Fatalf("%s: pipelined execution changed a result", bm.Name)
		}
	}
	if err := bench.WritePipelineArtifact("BENCH_pipeline.json", rep); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkOptimizerComparison measures cost-based plan selection
// against the fixed rewrite heuristics — the whole corpus per arm plus
// the multi-predicate suite — and writes the machine-readable
// BENCH_optimizer.json artifact (prompts/query per configuration,
// per-query savings, estimate accuracy). The report is deterministic, so
// the committed artifact is reproducible:
//
//	go test -run '^$' -bench BenchmarkOptimizerComparison -benchtime=1x .
func BenchmarkOptimizerComparison(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rep *bench.OptimizerReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = r.OptimizerComparison(ctx, simllm.ChatGPT)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Corpus[0].PromptsPerQuery, "fixed_prompts/query")
	b.ReportMetric(rep.Corpus[1].PromptsPerQuery, "costbased_prompts/query")
	b.ReportMetric(rep.Estimates.MaxRatio, "estimate_max_ratio")
	best := 0.0
	for _, q := range rep.MultiPredicate {
		if q.SavingsPercent > best {
			best = q.SavingsPercent
		}
	}
	b.ReportMetric(best, "best_multipred_savings_%")
	if err := rep.CheckAcceptance(); err != nil {
		b.Fatalf("acceptance criteria violated:\n%v", err)
	}
	if err := bench.WriteOptimizerArtifact("BENCH_optimizer.json", rep); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkConcurrencyComparison measures the shared-runtime concurrency
// model: the corpus executed one query at a time versus K=4 queries at a
// time against one runtime, sharing the engine-global scheduler's
// per-endpoint worker budget — and writes the machine-readable
// BENCH_concurrency.json artifact. The aggregate simulated makespan of
// the concurrent arm must beat K-times-serial by at least 2x while every
// relation and per-query prompt count stays bit-identical (the report is
// deterministic, so the committed artifact is reproducible):
//
//	go test -run '^$' -bench BenchmarkConcurrencyComparison -benchtime=1x .
func BenchmarkConcurrencyComparison(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rep *bench.ConcurrencyReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = r.ConcurrencyComparison(ctx, simllm.ChatGPT, bench.DefaultConcurrency, bench.DefaultServeWorkers)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.SpeedupX, "aggregate_speedup_x")
	b.ReportMetric(rep.Serial.AggregateMakespanMS/1000, "serial_corpus_s")
	b.ReportMetric(rep.Concurrent.AggregateMakespanMS/1000, "concurrent_corpus_s")
	if err := rep.CheckAcceptance(); err != nil {
		b.Fatalf("acceptance criteria violated:\n%v", err)
	}
	if err := bench.WriteConcurrencyArtifact("BENCH_concurrency.json", rep); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChaosComparison runs the seeded chaos differential through
// the fault-tolerant LLM transport — the corpus under transient and
// malformed-output fault profiles with retries (relations, prompt counts
// and simulated makespan must stay bit-identical to fault-free), the
// no-retry availability control, and the breaker lifecycle under a total
// outage — and writes the machine-readable BENCH_chaos.json artifact
// (the report is deterministic, so the committed artifact is
// reproducible):
//
//	go test -run '^$' -bench BenchmarkChaosComparison -benchtime=1x .
func BenchmarkChaosComparison(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rep *bench.ChaosReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = r.ChaosComparison(ctx, simllm.ChatGPT)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Transient.Faults), "injected_faults")
	b.ReportMetric(float64(rep.Transient.Retries), "healing_retries")
	b.ReportMetric(float64(rep.NoRetry.FailedQueries), "no_retry_lost_queries")
	if err := rep.CheckAcceptance(); err != nil {
		b.Fatalf("acceptance criteria violated:\n%v", err)
	}
	if err := bench.WriteChaosArtifact("BENCH_chaos.json", rep); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResultCacheComparison measures the semantic result
// cache on repeated corpus traffic — one cold pass (where subsumption
// already answers some queries from earlier results), two hot passes,
// and a per-table PrimeTableKeys epoch bump — against a cache-off
// control, and writes the machine-readable BENCH_resultcache.json
// artifact. Repeated identical queries must cost zero prompts while
// every relation stays bit-identical, and the epoch bump must
// re-execute only the primed table's queries (the report is
// deterministic, so the committed artifact is reproducible):
//
//	go test -run '^$' -bench BenchmarkResultCacheComparison -benchtime=1x .
func BenchmarkResultCacheComparison(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rep *bench.ResultCacheReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = r.ResultCacheComparison(ctx, simllm.ChatGPT, bench.DefaultResultCacheRepeats)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.CachedFirstPrompts)/float64(rep.Queries), "cold_prompts/query")
	b.ReportMetric(float64(rep.RepeatPromptsCacheable)/float64(rep.CacheableQueries*rep.Repeats), "hot_prompts/query")
	b.ReportMetric(float64(rep.ResultCacheHits), "result_cache_hits")
	if err := rep.CheckAcceptance(); err != nil {
		b.Fatalf("acceptance criteria violated:\n%v", err)
	}
	if err := bench.WriteResultCacheArtifact("BENCH_resultcache.json", rep); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSemanticCacheComparison measures the subsumption tier of the
// semantic result cache on the fixed near-miss corpus — parents execute
// cold and replay exactly hot, then children the cache has never seen
// verbatim must each be answered by a residual plan over a cached
// relation for zero prompts, bit-identical to direct execution on a
// cache-off control — and writes the machine-readable
// BENCH_semcache.json artifact (the report is deterministic, so the
// committed artifact is reproducible):
//
//	go test -run '^$' -bench BenchmarkSemanticCacheComparison -benchtime=1x .
func BenchmarkSemanticCacheComparison(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rep *bench.SemCacheReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = r.SemanticCacheComparison(ctx, simllm.ChatGPT)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.ColdPrompts)/float64(rep.Parents), "cold_prompts/parent")
	b.ReportMetric(float64(rep.NearMissPrompts), "near_miss_prompts")
	b.ReportMetric(float64(rep.NearMissSubsumed), "children_subsumed")
	if err := rep.CheckAcceptance(); err != nil {
		b.Fatalf("acceptance criteria violated:\n%v", err)
	}
	if err := bench.WriteSemCacheArtifact("BENCH_semcache.json", rep); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRoutingComparison runs the multi-backend routing differential
// — the corpus on a single strong backend, on a cheap/strong backend pair
// with key scans and filters routed to the cheap backend (relations and
// per-query prompt counts bit-identical, total weighted prompt cost
// strictly lower), and on the same pair with the cheap backend suffering
// a total outage mid-corpus (every prompt failing over down the declared
// chain: zero failed queries, breaker open, bit-identical relations) —
// and writes the machine-readable BENCH_routing.json artifact (the
// report is deterministic, so the committed artifact is reproducible):
//
//	go test -run '^$' -bench BenchmarkRoutingComparison -benchtime=1x .
func BenchmarkRoutingComparison(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rep *bench.RoutingReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = r.RoutingComparison(ctx, simllm.ChatGPT)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Single.WeightedCost, "single_weighted_cost")
	b.ReportMetric(rep.Routed.WeightedCost, "routed_weighted_cost")
	b.ReportMetric(float64(rep.Failover.Failovers), "outage_failovers")
	if err := rep.CheckAcceptance(); err != nil {
		b.Fatalf("acceptance criteria violated:\n%v", err)
	}
	if err := bench.WriteRoutingArtifact("BENCH_routing.json", rep); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGaloisQuery measures one representative end-to-end query on the
// simulated ChatGPT (micro-benchmark of the full pipeline).
func BenchmarkGaloisQuery(b *testing.B) {
	r := mustRunner(b)
	engine, err := r.Engine(r.Model(simllm.ChatGPT), bench.PaperOptions())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := engine.Query(ctx, `SELECT name FROM country WHERE independence_year > 1950`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroundTruthCorpus measures the DBMS baseline across the whole
// corpus (result b of Section 5).
func BenchmarkGroundTruthCorpus(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range spider.Queries() {
			if _, err := r.GroundTruth(ctx, q.SQL); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkQABaseline measures one QA round trip (text in, parsed relation
// out) on the simulated ChatGPT.
func BenchmarkQABaseline(b *testing.B) {
	r := mustRunner(b)
	model := r.Model(simllm.ChatGPT)
	rec := llm.NewRecorder(model)
	q := spider.Queries()[10] // query 11, the independence question
	truth, err := r.GroundTruth(context.Background(), q.SQL)
	if err != nil {
		b.Fatal(err)
	}
	builder := prompt.NewBuilder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rec.Complete(context.Background(), builder.Question(q.NL)); err != nil {
			b.Fatal(err)
		}
	}
	_ = truth
}

// BenchmarkPortability regenerates the Section 6 portability exploration:
// pairwise result overlap across models.
func BenchmarkPortability(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var cells []bench.PortabilityCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = r.Portability(ctx, simllm.AllProfiles(), bench.PaperOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		b.ReportMetric(c.Overlap, c.ModelA+"_"+c.ModelB+"_overlap_%")
	}
}

// BenchmarkSchemaFreedom regenerates the Section 6 schema-less
// equivalence exploration (Q1 join vs Q2 flat formulation).
func BenchmarkSchemaFreedom(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var res *bench.SchemaFreedomResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.SchemaFreedom(ctx, simllm.GPT3, bench.PaperOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MutualOverlap, "mutual_overlap_%")
	b.ReportMetric(res.Q1Truth, "q1_truth_%")
	b.ReportMetric(res.Q2Truth, "q2_truth_%")
}

// BenchmarkVerification regenerates the Section 6 "Knowledge of the
// Unknown" exploration: a second model double-checks fetched values.
func BenchmarkVerification(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.AblationVerification(ctx, simllm.ChatGPT, simllm.GPT3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].CellMatch, "unverified_cell_%")
	b.ReportMetric(rows[1].CellMatch, "verified_cell_%")
	b.ReportMetric(rows[1].AvgPrompts-rows[0].AvgPrompts, "extra_prompts/query")
}

// BenchmarkPersistComparison measures the durable content-addressed
// store across four process generations over one data directory — a
// cold pass that fills the store, a warm restart that must serve the
// whole corpus for zero prompts with bit-identical relations and
// restored statistics, a rebind probe (warm-loaded relations of a
// re-bound table re-execute; the rest stay free), and an ANALYZE probe
// whose epoch bump persists across a drain so the primed table's
// relations never warm-load in the next generation — and writes the
// machine-readable BENCH_persist.json artifact (the report is
// deterministic, so the committed artifact is reproducible):
//
//	go test -run '^$' -bench BenchmarkPersistComparison -benchtime=1x .
func BenchmarkPersistComparison(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rep *bench.PersistReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = r.PersistComparison(ctx, simllm.ChatGPT, b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.ColdPrompts)/float64(rep.Queries), "cold_prompts/query")
	b.ReportMetric(float64(rep.WarmPrompts), "warm_prompts")
	b.ReportMetric(float64(rep.WarmRelations), "warm_relations")
	if err := rep.CheckAcceptance(); err != nil {
		b.Fatalf("acceptance criteria violated:\n%v", err)
	}
	if err := bench.WritePersistArtifact("BENCH_persist.json", rep); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSchedComparison measures the deficit-weighted fair scheduler
// — the simulated mixed-class contention A/B (interactive chains over
// saturating batch tenants, round-robin versus the shipped strict-
// priority deficit bands, on a virtual clock) and the live corpus solo
// versus K-way mixed-class concurrent — and writes the machine-readable
// BENCH_sched.json artifact. Interactive p99 must improve with margin
// while the worst first-dispatch wait stays inside the one-prompt
// starvation bound, and classes/weights must be pure scheduling hints:
// bit-identical relations, identical prompt counts, aggregate makespan
// no worse than solo (the report is deterministic, so the committed
// artifact is reproducible):
//
//	go test -run '^$' -bench BenchmarkSchedComparison -benchtime=1x .
func BenchmarkSchedComparison(b *testing.B) {
	r := mustRunner(b)
	ctx := context.Background()
	var rep *bench.SchedReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = r.SchedComparison(ctx, simllm.ChatGPT, bench.DefaultConcurrency, bench.DefaultServeWorkers)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.P99ImprovementX, "interactive_p99_improvement_x")
	b.ReportMetric(rep.Deficit.InteractiveP99MS/1000, "deficit_interactive_p99_s")
	b.ReportMetric(rep.RoundRobin.InteractiveP99MS/1000, "rr_interactive_p99_s")
	b.ReportMetric(rep.Deficit.MaxFirstWaitMS, "max_first_wait_ms")
	if err := rep.CheckAcceptance(); err != nil {
		b.Fatalf("acceptance criteria violated:\n%v", err)
	}
	if err := bench.WriteSchedArtifact("BENCH_sched.json", rep); err != nil {
		b.Fatal(err)
	}
}
