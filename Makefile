GO ?= go

.PHONY: check vet build test race bench bench-pipeline bench-optimizer bench-concurrency bench-resultcache bench-semcache bench-chaos bench-persist bench-sched bench-routing serve fuzz cover

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Regenerates the committed BENCH_pipeline.json artifact (deterministic).
bench-pipeline:
	$(GO) test -run '^$$' -bench BenchmarkPipelineComparison -benchtime=1x .

# Regenerates the committed BENCH_optimizer.json artifact (deterministic).
bench-optimizer:
	$(GO) test -run '^$$' -bench BenchmarkOptimizerComparison -benchtime=1x .

# Regenerates the committed BENCH_concurrency.json artifact
# (deterministic): serial vs K-way-concurrent corpus on one shared
# runtime and scheduler.
bench-concurrency:
	$(GO) test -run '^$$' -bench BenchmarkConcurrencyComparison -benchtime=1x .

# Regenerates the committed BENCH_resultcache.json artifact
# (deterministic): repeated corpus traffic against the relation-level
# result cache, with an epoch-bump invalidation probe.
bench-resultcache:
	$(GO) test -run '^$$' -bench BenchmarkResultCacheComparison -benchtime=1x .

# Regenerates the committed BENCH_semcache.json artifact
# (deterministic): the subsumption tier answering never-seen near-miss
# queries from cached relations, with a per-table invalidation probe.
bench-semcache:
	$(GO) test -run '^$$' -bench BenchmarkSemanticCacheComparison -benchtime=1x .

# Regenerates the committed BENCH_chaos.json artifact (deterministic):
# the seeded chaos differential — corpus under transient/malformed fault
# profiles with retries vs fault-free, the no-retry availability control,
# and the breaker lifecycle under a total outage.
bench-chaos:
	$(GO) test -run '^$$' -bench BenchmarkChaosComparison -benchtime=1x .

# Regenerates the committed BENCH_persist.json artifact (deterministic):
# the durable store across four runtime generations over one data
# directory — cold fill, zero-prompt warm restart, a rebind probe, and
# an ANALYZE whose invalidation survives the drain.
bench-persist:
	$(GO) test -run '^$$' -bench BenchmarkPersistComparison -benchtime=1x .

# Regenerates the committed BENCH_sched.json artifact (deterministic):
# simulated mixed-class contention under round-robin vs deficit-weighted
# dispatch, plus the live corpus solo vs K-way mixed-class concurrent.
bench-sched:
	$(GO) test -run '^$$' -bench BenchmarkSchedComparison -benchtime=1x .

# Regenerates the committed BENCH_routing.json artifact (deterministic):
# the multi-backend routing differential — single backend vs cheap/strong
# pair with keyscan/filter routed cheap (bit-identical, lower weighted
# cost) vs the same pair with a mid-corpus outage of the cheap backend
# (zero failures, every prompt failing over down the declared chain).
bench-routing:
	$(GO) test -run '^$$' -bench BenchmarkRoutingComparison -benchtime=1x .

# Run the concurrent SQL server on the simulated world.
serve:
	$(GO) run ./cmd/galois-serve

# Short fuzz smoke of the SQL parser and the simulated model's prompt
# parser (same runs CI does).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 30s ./internal/sql/parser
	$(GO) test -run '^$$' -fuzz FuzzParseResponse -fuzztime 30s ./internal/simllm

# Per-package coverage summary.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1
