GO ?= go

.PHONY: check vet build test race bench bench-pipeline

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Regenerates the committed BENCH_pipeline.json artifact (deterministic).
bench-pipeline:
	$(GO) test -run '^$$' -bench BenchmarkPipelineComparison -benchtime=1x .
