GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
