// qa-vs-sql: run one benchmark query through all three evaluated methods —
// Galois (R_M), plain question answering (T_M), and question answering
// with a fixed chain-of-thought prompt (T_M^C) — and score each against
// the ground truth with the paper's metrics (cardinality ratio and 5%-
// tolerance cell matching).
//
//	go run ./examples/qa-vs-sql            # default query 11
//	go run ./examples/qa-vs-sql -query 37  # the Figure 1 join
//	go run ./examples/qa-vs-sql -model gpt3 -query 26
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/clean"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/prompt"
	"repro/internal/qa"
	"repro/internal/simllm"
	"repro/internal/spider"
)

func main() {
	queryID := flag.Int("query", 11, "benchmark query ID (1-46)")
	modelName := flag.String("model", "chatgpt", "simulated model")
	flag.Parse()

	var query *spider.Query
	for i, q := range spider.Queries() {
		if q.ID == *queryID {
			query = &spider.Queries()[i]
			break
		}
	}
	if query == nil {
		log.Fatalf("no benchmark query with ID %d", *queryID)
	}
	profile, ok := simllm.ProfileByName(*modelName)
	if !ok {
		log.Fatalf("unknown model %q", *modelName)
	}

	runner, err := bench.NewRunner(1)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	model := runner.Model(profile)
	engine, err := runner.Engine(model, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	cellOpts := runner.CellOptions()
	cleaner := clean.New(clean.DefaultOptions())
	builder := prompt.NewBuilder()

	fmt.Printf("query %d (%s): %s\nNL: %s\n\n", query.ID, query.Class, query.SQL, query.NL)

	truth, err := runner.GroundTruth(ctx, query.SQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth R_D (%d rows):\n%s\n", truth.Cardinality(), truth.String())

	report := func(name string, rel interface {
		Cardinality() int
	}, pct float64, card float64) {
		fmt.Printf("%-6s rows=%-3d cell-match=%5.1f%% cardinality-diff=%+.1f%%\n", name, rel.Cardinality(), pct, card)
	}

	// (a) Galois.
	rm, rep, err := engine.Query(ctx, query.SQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R_M — Galois over %s (%d prompts, simulated %s):\n%s\n",
		profile.DisplayName, rep.Stats.Prompts, rep.Stats.SimulatedLatency, rm.String())

	// (c) plain QA and (d) QA with chain of thought.
	tm, err := qa.Ask(ctx, model, builder, query.NL, truth.Schema, cleaner, false)
	if err != nil {
		log.Fatal(err)
	}
	tmc, err := qa.Ask(ctx, model, builder, query.NL, truth.Schema, cleaner, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T_M — raw QA answer:\n%s\n\n", tm.Text)
	fmt.Printf("T_M^C — chain-of-thought answer:\n%s\n\n", tmc.Text)

	fmt.Println("scores:")
	report("R_M", rm, eval.MatchContent(truth, rm, cellOpts).Percent(),
		eval.CardinalityDiffPercent(truth.Cardinality(), rm.Cardinality()))
	report("T_M", tm.Relation, eval.MatchContent(truth, tm.Relation, cellOpts).Percent(),
		eval.CardinalityDiffPercent(truth.Cardinality(), tm.Relation.Cardinality()))
	report("T_M^C", tmc.Relation, eval.MatchContent(truth, tmc.Relation, cellOpts).Percent(),
		eval.CardinalityDiffPercent(truth.Cardinality(), tmc.Relation.Cardinality()))
}
