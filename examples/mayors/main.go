// Mayors: the Figure 1 walk-through. The same information need — "cities
// whose current mayor has been in charge since 2019, with the mayor's
// birth date" — is answered two ways:
//
//  1. as a SQL query executed by Galois over the LLM (path (1) in
//     Figure 1), returning a typed relation, and
//  2. as a natural-language question to the same model (path (2)),
//     returning prose that must be parsed back into records.
//
// Run it to see why the relational path is easier to consume and compare.
//
//	go run ./examples/mayors
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/clean"
	"repro/internal/core"
	"repro/internal/prompt"
	"repro/internal/qa"
	"repro/internal/simllm"
)

const figure1SQL = `SELECT c.name, m.birth_date
FROM city c, mayor m
WHERE c.mayor = m.name AND m.election_year = 2019`

const figure1NL = "List names of the cities and mayor birth date for the cities where the current mayor has been in charge since 2019."

func main() {
	runner, err := bench.NewRunner(1)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	// GPT-3's instruct profile keeps surface forms canonical, so the
	// Figure 1 join succeeds; swap in simllm.ChatGPT to watch the
	// surface-form mismatches of Section 5 empty it out.
	model := runner.Model(simllm.GPT3)

	// Path (1): SQL through Galois.
	engine, err := runner.Engine(model, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rel, rep, err := engine.Query(ctx, figure1SQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("(1) Galois executes the SQL query over the LLM:")
	fmt.Print(rel.String())
	fmt.Printf("(%d rows; %d prompts)\n\n", rel.Cardinality(), rep.Stats.Prompts)

	// Path (2): the NL question to the same model.
	truth, err := runner.GroundTruth(ctx, figure1SQL)
	if err != nil {
		log.Fatal(err)
	}
	res, err := qa.Ask(ctx, model, prompt.NewBuilder(), figure1NL, truth.Schema, clean.New(clean.DefaultOptions()), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("(2) the same model answers the NL question with text:")
	fmt.Println(res.Text)
	fmt.Printf("\nparsed back into a relation (%d rows):\n%s", res.Relation.Cardinality(), res.Relation.String())

	fmt.Printf("\nground truth has %d rows:\n%s", truth.Cardinality(), truth.String())
}
