// Hybrid querying: one SQL script joins a relation stored in the LLM with
// a relation stored in a traditional DBMS — the introduction's motivating
// query:
//
//	SELECT c.gdp, AVG(e.salary)
//	FROM LLM.country c, DB.Employees e
//	WHERE c.code = e.countryCode
//	GROUP BY e.countryCode
//
// The country relation is materialized from the model with prompts; the
// Employees table lives in the in-memory DBMS. This example also shows the
// surface-form pitfall (alpha-2 vs alpha-3 country codes) and the
// canonicalization fix.
//
//	go run ./examples/hybrid
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/clean"
	"repro/internal/core"
	"repro/internal/simllm"
)

const hybridSQL = `SELECT c.gdp, AVG(e.salary)
FROM LLM.country c, DB.Employees e
WHERE c.code = e.countryCode
GROUP BY e.countryCode`

func main() {
	runner, err := bench.NewRunner(1)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// First attempt: raw surface forms. The model mixes alpha-2 and
	// alpha-3 codes ("IT" vs "ITA"), so part of the join silently fails —
	// the exact failure Section 5 reports.
	model := runner.Model(simllm.ChatGPT)
	engine, err := runner.Engine(model, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rel, rep, err := engine.Query(ctx, hybridSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hybrid query (raw surface forms):")
	fmt.Print(rel.String())
	fmt.Printf("(%d rows; %d prompts)\n\n", rel.Cardinality(), rep.Stats.Prompts)

	// Second attempt: canonicalize entity codes during cleaning
	// (Ablation C). The join recovers.
	opts := core.DefaultOptions()
	opts.Clean.Canonicalizer = clean.NewCanonicalizer(runner.World.Aliases())
	engine2, err := runner.Engine(model, opts)
	if err != nil {
		log.Fatal(err)
	}
	rel2, _, err := engine2.Query(ctx, hybridSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hybrid query (canonicalized codes):")
	fmt.Print(rel2.String())
	fmt.Printf("(%d rows)\n\n", rel2.Cardinality())

	// Ground truth for comparison: the same query with both relations in
	// the DBMS.
	truth, err := runner.GroundTruth(ctx, `SELECT c.gdp, AVG(e.salary) FROM country c, Employees e WHERE c.code = e.countryCode GROUP BY e.countryCode`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ground truth (both relations in the DBMS):")
	fmt.Print(truth.String())
	fmt.Printf("(%d rows)\n", truth.Cardinality())
}
