// Quickstart: run one SQL query against a simulated pre-trained LLM.
//
// The engine sees only the schema you bind and an llm.Client; tuples are
// retrieved from the model with automatically generated prompts.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/simllm"
	"repro/internal/value"
	"repro/internal/world"
)

func main() {
	// The LLM: a simulated ChatGPT over the synthetic world. Swap in any
	// llm.Client implementation to target a real API.
	w := world.Build()
	model := simllm.New(simllm.ChatGPT, w, 1)

	// The engine: bind the relation schema the query will use. No
	// instances are provided — only the schema and its key attribute
	// (Section 3 of the paper).
	engine := core.New(model, core.DefaultOptions())
	err := engine.BindLLMTable(&schema.TableDef{
		Name:      "country",
		KeyColumn: "name",
		Schema: schema.New(
			schema.Column{Name: "name", Type: value.KindString},
			schema.Column{Name: "capital", Type: value.KindString},
			schema.Column{Name: "independence_year", Type: value.KindInt},
		),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Execute a SQL query whose data lives entirely in the LLM.
	sql := `SELECT name, capital FROM country WHERE independence_year > 1950`
	rel, rep, err := engine.Query(context.Background(), sql)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(sql)
	fmt.Print(rel.String())
	fmt.Printf("(%d rows; %s)\n", rel.Cardinality(), rep.Stats.String())
}
