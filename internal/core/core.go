// Package core implements the Galois engine — the paper's primary
// contribution: executing SQL over data stored in a pre-trained LLM,
// optionally combined with tables in a traditional DBMS (hybrid queries).
//
// A query runs through four steps, mirroring Section 4's workflow:
//
//  1. parse + plan: the SQL is parsed and a logical plan built over the
//     user-provided schema (the plan is the chain-of-thought
//     decomposition);
//  2. optimize + lower: relational rewrites, then LLM-specific lowering
//     injecting prompt operators (key scan, attribute fetch, boolean
//     filter);
//  3. execute: prompt operators call the LLM, traditional operators
//     combine the materialized tuples;
//  4. clean: every LLM answer is normalized and type-checked before it
//     becomes a cell value.
//
// The engine is split into two tiers, mirroring classic DBMS
// architecture: a shared, concurrency-safe Runtime (model endpoints,
// table bindings, prompt cache, optimizer statistics, and the
// engine-global fair-share prompt scheduler) and cheap per-query
// Sessions on top (Runtime.NewSession). Engine bundles one runtime with
// one session for the single-caller case; concurrent servers hold one
// Runtime and open a Session per query.
package core

import (
	"context"
	"time"

	"repro/internal/clean"
	"repro/internal/llm"
	"repro/internal/logical"
	"repro/internal/memdb"
	"repro/internal/optimizer"
	"repro/internal/rescache"
	"repro/internal/schema"
)

// Options configure a Runtime and the Sessions opened on it. Most fields
// are session-tier (each session may differ); CacheEnabled/CacheSize and
// BatchWorkers-as-scheduler-budget are runtime-tier, fixed at NewRuntime.
type Options struct {
	// Optimizer selects plan rewrites, including the prompt-pushdown
	// ablation.
	Optimizer optimizer.Options
	// Clean selects answer normalizations, including the type-enforcement
	// and code-canonicalization ablations.
	Clean clean.Options
	// MaxScanIterations caps the "return more results" loop per leaf.
	MaxScanIterations int
	// BatchWorkers bounds concurrent prompt execution: per-operator batch
	// fan-out in stop-and-go mode (session-tier), and the engine-global
	// scheduler's per-endpoint worker budget — shared fairly by all
	// in-flight queries, fixed at NewRuntime — in pipelined mode.
	BatchWorkers int
	// Pipelined turns on the streaming executor: each query opens a
	// tenant on the engine-global prompt scheduler (one bounded worker
	// pool per model endpoint, alive for the runtime's lifetime,
	// fair-shared round-robin across in-flight queries), the LLM
	// operators submit prompts as upstream tuples arrive (an attribute
	// fetch starts while the key scan is still iterating "more results"
	// pages, the verifier runs concurrently with the primary fetch), a
	// satisfied LIMIT stops upstream prompt issue, and simulated latency
	// is the tenant's makespan — the larger of the critical dependency
	// path and the aggregate work spread over the worker budget — instead
	// of summed waves. Results are identical to stop-and-go execution.
	// Default on (DefaultOptions); off reproduces the paper's stop-and-go
	// behavior.
	Pipelined bool
	// CacheEnabled turns on the runtime-level prompt cache: completions
	// are reused across operators and across every query of this runtime,
	// concurrent identical prompts collapse into one model call, and
	// duplicate prompts within one batch cost one completion. Default on
	// (DefaultOptions).
	CacheEnabled bool
	// CacheSize caps the number of completions the prompt cache retains
	// (0 means llm.DefaultCacheSize).
	CacheSize int
	// ResultCacheEnabled turns on the runtime-level semantic result
	// cache: whole query results are cached by a canonical plan
	// fingerprint plus the per-table epoch stamp of the bindings the
	// plan reads. An identical LIMIT-free query arriving again costs
	// zero prompts and zero planning ("exact" hit), K concurrent
	// identical queries execute once (singleflight), and a query whose
	// plan is subsumed by a cached relation's producing plan — superset
	// of columns, weaker-or-equal filters, same bindings — is answered
	// by running its residual plan (filter/project/sort/limit/distinct)
	// locally over the cached relation for zero prompts ("subsumed"
	// hit). BindLLMTable, AttachDB and PrimeTableKeys bump only the
	// epoch of the component they touch, invalidating exactly the
	// entries reading it. Runtime-tier, fixed at NewRuntime. Default
	// off (the paper configuration and the engine defaults report fresh
	// per-query statistics); galois-serve enables it by default via
	// -result-cache.
	ResultCacheEnabled bool
	// ResultCacheSize caps the number of relations the result cache
	// retains (0 means rescache.DefaultSize).
	ResultCacheSize int
	// ResultCacheBytes caps the approximate resident bytes of the
	// result cache's relations; the LRU evicts past it (0 means
	// unlimited — only ResultCacheSize bounds it).
	ResultCacheBytes int
	// Resilient turns on the fault-tolerant LLM transport: the runtime
	// wraps its primary client — and, memoized, any session verifier —
	// in an llm.ResilientClient adding per-attempt deadlines, bounded
	// deterministic-jitter retries, a per-endpoint circuit breaker and a
	// token-bucket retry budget. Retries happen inside one recorded
	// call, so fault-free accounting (prompts, cache counters, simulated
	// makespan) is bit-identical with or without the wrapper. Runtime-
	// tier, fixed at NewRuntime. Default on (DefaultOptions); off
	// reproduces the fail-fast transport of the earlier engine.
	Resilient bool
	// Retries bounds resubmissions per prompt after a retryable failure
	// (0 means llm.DefaultMaxRetries; negative disables retries).
	Retries int
	// RetryBackoff is the first retry's backoff ceiling; the ceiling
	// doubles per attempt and the actual sleep is deterministic full
	// jitter (0 means llm.DefaultBaseBackoff).
	RetryBackoff time.Duration
	// PromptTimeout bounds each individual model-call attempt; an
	// expired attempt is retried as llm.ClassDeadline (0 means no
	// per-attempt deadline).
	PromptTimeout time.Duration
	// BreakerThreshold is the run of consecutive failed prompts that
	// opens an endpoint's circuit breaker (0 means
	// llm.DefaultBreakerThreshold; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds before probing
	// (0 means llm.DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// AdmissionClass selects the scheduler dispatch band this session's
	// queries run in: "interactive" (the default, also for "") or
	// "batch". Interactive tenants are drained with strict priority —
	// a saturating batch query can never delay an interactive query's
	// next prompt by more than the one prompt already on the wire —
	// while batch tenants consume every slot interactive traffic leaves
	// idle. Session-tier: galois-serve maps the ?class= request
	// parameter onto it. Unknown spellings fall back to interactive.
	AdmissionClass string
	// AdmissionWeight scales the session's deficit share within its
	// band: a weight-2 batch tenant drains twice the prompt tokens per
	// rotation of a weight-1 one. Values below 1 (including the zero
	// default) mean weight 1.
	AdmissionWeight int
	// DefaultSource decides where unqualified tables live when both an
	// LLM binding and a DB table exist: "LLM" (default) or "DB".
	DefaultSource string
	// Routes overrides, per session, which named backend each prompt
	// role ("keyscan", "fetch", "filter", "verify") resolves to on a
	// multi-backend runtime. Overrides win over table pins and the
	// runtime's role routes; names must be declared backends. Routing
	// selects the model answering, so Routes participates in the result
	// cache's options fingerprint.
	Routes map[string]string
	// Verifier, when non-nil, double-checks every fetched attribute value
	// with a second model and NULLs out disagreements (Section 6,
	// "Knowledge of the Unknown").
	Verifier llm.Client
	// VerifyTolerance is the relative error under which two numeric
	// answers agree (0 means the 10% default).
	VerifyTolerance float64
}

// normalize fills the zero values every tier agrees on; Runtime
// construction and Session.SetOptions both apply it so a session
// configured explicitly behaves like one inheriting runtime defaults.
func (o *Options) normalize() {
	if o.MaxScanIterations <= 0 {
		o.MaxScanIterations = 12
	}
	if o.BatchWorkers <= 0 {
		o.BatchWorkers = llm.DefaultBatchWorkers
	}
	if o.DefaultSource == "" {
		o.DefaultSource = "LLM"
	}
}

// DefaultOptions is the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{
		Optimizer:         optimizer.Defaults(),
		Clean:             clean.DefaultOptions(),
		MaxScanIterations: 12,
		BatchWorkers:      llm.DefaultBatchWorkers,
		DefaultSource:     "LLM",
		Pipelined:         true,
		CacheEnabled:      true,
		Resilient:         true,
	}
}

// resilientConfig maps the options' resilience knobs onto the transport
// wrapper's configuration (zero fields select the llm defaults).
func (o *Options) resilientConfig() llm.ResilientConfig {
	return llm.ResilientConfig{
		MaxRetries:       o.Retries,
		BaseBackoff:      o.RetryBackoff,
		PromptTimeout:    o.PromptTimeout,
		BreakerThreshold: o.BreakerThreshold,
		BreakerCooldown:  o.BreakerCooldown,
	}
}

// Engine executes SQL over an LLM and (optionally) a relational store.
// It is the single-caller convenience bundle: one shared Runtime plus
// one default Session, with every method delegating to the right tier.
// Servers handling concurrent queries should use the tiers directly —
// core.NewRuntime once, Runtime.NewSession per query — or simply call
// Engine.Query concurrently, which opens no per-call state beyond the
// query's scheduler tenant and is safe.
type Engine struct {
	rt   *Runtime
	sess *Session
}

// New builds an engine (a runtime plus a default session) over the given
// LLM client.
func New(client llm.Client, opts Options) *Engine {
	return NewRuntime(client, opts).Engine()
}

// Runtime exposes the engine's shared tier, for callers that open
// additional concurrent sessions on it.
func (e *Engine) Runtime() *Runtime { return e.rt }

// Session exposes the engine's default session.
func (e *Engine) Session() *Session { return e.sess }

// Statistics exposes the planner's statistics store (never nil).
func (e *Engine) Statistics() *optimizer.Statistics { return e.rt.Statistics() }

// PrimeTableKeys seeds the planner's cardinality estimate for one table
// — the engine's ANALYZE equivalent for operators who know their data's
// scale before the first query runs.
func (e *Engine) PrimeTableKeys(table string, keys int) { e.rt.PrimeTableKeys(table, keys) }

// CacheStats reports the engine-lifetime prompt-cache counters (zero
// value when the cache is disabled).
func (e *Engine) CacheStats() llm.CacheStats { return e.rt.CacheStats() }

// ResultCacheStats reports the engine-lifetime result-cache counters
// (zero value when the result cache is disabled).
func (e *Engine) ResultCacheStats() rescache.Stats { return e.rt.ResultCacheStats() }

// AttachDB connects a relational store for DB-bound (and hybrid) queries.
func (e *Engine) AttachDB(db *memdb.DB) { e.rt.AttachDB(db) }

// BindLLMTable declares a relation whose tuples live in the LLM.
func (e *Engine) BindLLMTable(def *schema.TableDef) error { return e.rt.BindLLMTable(def) }

// ResolveTable implements logical.Resolver; see Runtime.ResolveTable.
func (e *Engine) ResolveTable(name, explicit string) (*schema.TableDef, string, error) {
	return e.rt.ResolveTable(name, explicit)
}

// Plan parses, plans and optimizes a query, returning the lowered
// logical plan (what EXPLAIN shows).
func (e *Engine) Plan(sql string) (logical.Node, error) { return e.sess.Plan(sql) }

// Explain renders the optimized plan as an indented tree.
func (e *Engine) Explain(sql string) (string, error) { return e.sess.Explain(sql) }

// Query executes sql on the default session and returns the result
// relation plus an execution report. Safe for concurrent calls: each
// call plans and executes independently on the shared runtime.
func (e *Engine) Query(ctx context.Context, sql string) (*schema.Relation, *Report, error) {
	return e.sess.Query(ctx, sql)
}
