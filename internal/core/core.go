// Package core implements the Galois engine — the paper's primary
// contribution: executing SQL over data stored in a pre-trained LLM,
// optionally combined with tables in a traditional DBMS (hybrid queries).
//
// A query runs through four steps, mirroring Section 4's workflow:
//
//  1. parse + plan: the SQL is parsed and a logical plan built over the
//     user-provided schema (the plan is the chain-of-thought
//     decomposition);
//  2. optimize + lower: relational rewrites, then LLM-specific lowering
//     injecting prompt operators (key scan, attribute fetch, boolean
//     filter);
//  3. execute: prompt operators call the LLM, traditional operators
//     combine the materialized tuples;
//  4. clean: every LLM answer is normalized and type-checked before it
//     becomes a cell value.
package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/clean"
	"repro/internal/llm"
	"repro/internal/logical"
	"repro/internal/memdb"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/prompt"
	"repro/internal/schema"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
	"repro/internal/value"
)

// Options configure an Engine.
type Options struct {
	// Optimizer selects plan rewrites, including the prompt-pushdown
	// ablation.
	Optimizer optimizer.Options
	// Clean selects answer normalizations, including the type-enforcement
	// and code-canonicalization ablations.
	Clean clean.Options
	// MaxScanIterations caps the "return more results" loop per leaf.
	MaxScanIterations int
	// BatchWorkers bounds concurrent prompt execution in batched
	// operators.
	BatchWorkers int
	// Pipelined turns on the streaming executor: a query-level prompt
	// scheduler owns one bounded worker pool shared by every operator of
	// the query, the LLM operators submit prompts as upstream tuples
	// arrive (an attribute fetch starts while the key scan is still
	// iterating "more results" pages, the verifier runs concurrently with
	// the primary fetch), a satisfied LIMIT stops upstream prompt issue,
	// and simulated latency is the scheduler's makespan — the larger of
	// the critical dependency path and the aggregate work spread over the
	// worker budget — instead of summed per-operator waves. Results are
	// identical to stop-and-go execution. Default on (DefaultOptions);
	// off reproduces the paper's stop-and-go behavior.
	Pipelined bool
	// CacheEnabled turns on the engine-level prompt cache: completions
	// are reused across operators and across every query of this engine,
	// concurrent identical prompts collapse into one model call, and
	// duplicate prompts within one batch cost one completion. Default on
	// (DefaultOptions).
	CacheEnabled bool
	// CacheSize caps the number of completions the prompt cache retains
	// (0 means llm.DefaultCacheSize).
	CacheSize int
	// DefaultSource decides where unqualified tables live when both an
	// LLM binding and a DB table exist: "LLM" (default) or "DB".
	DefaultSource string
	// Verifier, when non-nil, double-checks every fetched attribute value
	// with a second model and NULLs out disagreements (Section 6,
	// "Knowledge of the Unknown").
	Verifier llm.Client
	// VerifyTolerance is the relative error under which two numeric
	// answers agree (0 means the 10% default).
	VerifyTolerance float64
}

// DefaultOptions is the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{
		Optimizer:         optimizer.Defaults(),
		Clean:             clean.DefaultOptions(),
		MaxScanIterations: 12,
		BatchWorkers:      llm.DefaultBatchWorkers,
		DefaultSource:     "LLM",
		Pipelined:         true,
		CacheEnabled:      true,
	}
}

// Engine executes SQL over an LLM and (optionally) a relational store.
type Engine struct {
	client  llm.Client
	db      *memdb.DB
	llmDefs map[string]*schema.TableDef
	opts    Options
	builder *prompt.Builder
	// cache is the engine-level prompt cache (nil when disabled): the
	// shared stateful tier between the executor and the model, persistent
	// across queries.
	cache *llm.Cache
	// stats feed the cost-based optimizer: table cardinalities, page
	// sizes and predicate selectivities, starting from defaults and
	// refined from the per-operator counters of every executed query.
	stats *optimizer.Statistics
}

// New builds an engine over the given LLM client.
func New(client llm.Client, opts Options) *Engine {
	if opts.MaxScanIterations <= 0 {
		opts.MaxScanIterations = 12
	}
	if opts.BatchWorkers <= 0 {
		opts.BatchWorkers = llm.DefaultBatchWorkers
	}
	if opts.DefaultSource == "" {
		opts.DefaultSource = "LLM"
	}
	e := &Engine{
		client:  client,
		llmDefs: map[string]*schema.TableDef{},
		opts:    opts,
		builder: prompt.NewBuilder(),
		stats:   optimizer.NewStatistics(),
	}
	if opts.CacheEnabled {
		e.cache = llm.NewCache(opts.CacheSize)
	}
	return e
}

// Statistics exposes the planner's statistics store (never nil).
func (e *Engine) Statistics() *optimizer.Statistics { return e.stats }

// PrimeTableKeys seeds the planner's cardinality estimate for one table
// — the engine's ANALYZE equivalent for operators who know their data's
// scale before the first query runs.
func (e *Engine) PrimeTableKeys(table string, keys int) {
	e.stats.SetTableKeys(table, keys)
}

// CacheStats reports the engine-lifetime prompt-cache counters (zero
// value when the cache is disabled).
func (e *Engine) CacheStats() llm.CacheStats {
	if e.cache == nil {
		return llm.CacheStats{}
	}
	return e.cache.Stats()
}

// AttachDB connects a relational store for DB-bound (and hybrid) queries.
func (e *Engine) AttachDB(db *memdb.DB) { e.db = db }

// BindLLMTable declares a relation whose tuples live in the LLM. The
// definition supplies the schema and the single-attribute key the paper
// assumes (Section 3).
func (e *Engine) BindLLMTable(def *schema.TableDef) error {
	if def.KeyIndex() < 0 {
		return fmt.Errorf("core: table %s: key column %q not in schema", def.Name, def.KeyColumn)
	}
	e.llmDefs[strings.ToLower(def.Name)] = def
	return nil
}

// ResolveTable implements logical.Resolver. Explicit LLM./DB. qualifiers
// win; otherwise DefaultSource breaks ties between an LLM binding and a
// DB table of the same name.
func (e *Engine) ResolveTable(name, explicit string) (*schema.TableDef, string, error) {
	llmDef := e.llmDefs[strings.ToLower(name)]
	var dbDef *schema.TableDef
	if e.db != nil {
		dbDef = e.db.Table(name)
	}
	switch explicit {
	case "LLM":
		if llmDef == nil {
			return nil, "", fmt.Errorf("core: no LLM binding for table %s", name)
		}
		return llmDef, "LLM", nil
	case "DB":
		if dbDef == nil {
			return nil, "", fmt.Errorf("core: no DB table %s", name)
		}
		return dbDef, "DB", nil
	}
	switch {
	case llmDef != nil && dbDef != nil:
		if e.opts.DefaultSource == "DB" {
			return dbDef, "DB", nil
		}
		return llmDef, "LLM", nil
	case llmDef != nil:
		return llmDef, "LLM", nil
	case dbDef != nil:
		return dbDef, "DB", nil
	default:
		return nil, "", fmt.Errorf("core: unknown table %s", name)
	}
}

// Plan parses, plans and optimizes a query, returning the lowered logical
// plan (what EXPLAIN shows). Under a cost-based configuration this is the
// cheapest enumerated candidate.
func (e *Engine) Plan(sql string) (logical.Node, error) {
	sel, err := parser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	plan, _, err := e.planSelect(sel)
	return plan, err
}

// planSelect builds and optimizes the plan for one SELECT, returning the
// planner's cost prediction alongside it. With CostBased on, candidates
// are enumerated and the cheapest wins; otherwise the fixed heuristics
// apply and the estimate prices the resulting single plan.
func (e *Engine) planSelect(sel *ast.Select) (logical.Node, *optimizer.PlanCost, error) {
	factory := func() (logical.Node, error) { return logical.Build(sel, e) }
	params := optimizer.CostParams{Workers: e.opts.BatchWorkers, Verifier: e.opts.Verifier != nil}
	if e.opts.Optimizer.CostBased {
		plan, cost, _, err := optimizer.ChooseBest(factory, e.opts.Optimizer, e.stats, params)
		return plan, cost, err
	}
	plan, err := factory()
	if err != nil {
		return nil, nil, err
	}
	plan, err = optimizer.Optimize(plan, e.opts.Optimizer)
	if err != nil {
		return nil, nil, err
	}
	return plan, optimizer.Estimate(plan, e.stats, params), nil
}

// Explain renders the optimized plan as an indented tree.
func (e *Engine) Explain(sql string) (string, error) {
	plan, err := e.Plan(sql)
	if err != nil {
		return "", err
	}
	return logical.Explain(plan), nil
}

// Report summarizes one query execution.
type Report struct {
	Stats llm.Stats
	Plan  string
	// Estimate is the planner's cost prediction for the executed plan.
	Estimate *optimizer.PlanCost
	// Metrics hold the per-operator actual prompt/row counters (nil for
	// pure EXPLAIN, which does not execute).
	Metrics *physical.Metrics
}

// Query executes sql and returns the result relation plus an execution
// report (prompt counts, simulated latency, the plan used). EXPLAIN and
// EXPLAIN ANALYZE statements return the annotated plan as a one-column
// relation instead of query results.
func (e *Engine) Query(ctx context.Context, sql string) (*schema.Relation, *Report, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	switch s := stmt.(type) {
	case *ast.Explain:
		return e.runExplain(ctx, s)
	case *ast.Select:
		plan, cost, err := e.planSelect(s)
		if err != nil {
			return nil, nil, err
		}
		rel, rep, err := e.execute(ctx, plan)
		if err != nil {
			return nil, nil, err
		}
		rep.Estimate = cost
		e.observe(plan, rep.Metrics)
		return rel, rep, nil
	default:
		return nil, nil, fmt.Errorf("core: only SELECT and EXPLAIN statements can be executed")
	}
}

// runExplain plans (and for ANALYZE also executes) the inner SELECT and
// renders the annotated plan tree as a one-column relation.
func (e *Engine) runExplain(ctx context.Context, ex *ast.Explain) (*schema.Relation, *Report, error) {
	plan, cost, err := e.planSelect(ex.Stmt)
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{Plan: logical.Explain(plan), Estimate: cost}
	if ex.Analyze {
		_, execRep, err := e.execute(ctx, plan)
		if err != nil {
			return nil, nil, err
		}
		rep.Stats = execRep.Stats
		rep.Metrics = execRep.Metrics
		e.observe(plan, execRep.Metrics)
	}
	text := ExplainText(plan, cost, rep.Metrics, rep.Stats, ex.Analyze)
	rel := schema.NewRelation(schema.New(schema.Column{Name: "QUERY PLAN", Type: value.KindString}))
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		rel.Append(schema.Tuple{value.Text(line)})
	}
	return rel, rep, nil
}

// execute compiles and runs one lowered plan.
func (e *Engine) execute(ctx context.Context, plan logical.Node) (*schema.Relation, *Report, error) {
	var env *physical.Env
	if e.db != nil {
		env = &physical.Env{Data: e.db.Relation}
	}
	op, err := physical.Compile(plan, env)
	if err != nil {
		return nil, nil, err
	}

	recorder := llm.NewRecorder(e.client)
	var verifyRecorder *llm.Recorder
	var verifier llm.Client
	if e.opts.Verifier != nil {
		verifyRecorder = llm.NewRecorder(e.opts.Verifier)
		verifier = verifyRecorder
	}
	metrics := physical.NewMetrics()
	pctx := &physical.Context{
		Ctx:               ctx,
		Client:            recorder,
		Cache:             e.cache,
		Prompts:           e.builder,
		Cleaner:           clean.New(e.opts.Clean),
		MaxScanIterations: e.opts.MaxScanIterations,
		BatchWorkers:      e.opts.BatchWorkers,
		Metrics:           metrics,
		Verifier:          verifier,
		VerifyTolerance:   e.opts.VerifyTolerance,
	}
	var sched *llm.Scheduler
	if e.opts.Pipelined {
		sched = llm.NewScheduler(ctx, e.cache, e.opts.BatchWorkers)
		pctx.Scheduler = sched
	}
	rel, err := physical.Run(pctx, op)
	if sched != nil {
		// A satisfied LIMIT (or an error) can leave abandoned futures
		// still talking to the model; their prompts were issued, so
		// settle them before reading any counters.
		sched.Quiesce()
	}
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{Stats: recorder.Stats(), Plan: logical.Explain(plan), Metrics: metrics}
	if verifyRecorder != nil {
		rep.Stats.Add(verifyRecorder.Stats())
	}
	if sched != nil {
		// Pipelined prompts carry no per-call latency on the recorders;
		// the query's simulated wall-clock is the scheduler's makespan.
		rep.Stats.SimulatedLatency += sched.Makespan()
	}
	return rel, rep, nil
}

// observe feeds the executed plan's per-operator counters back into the
// planner's statistics, so later queries plan against what this engine
// actually saw (cardinalities, page sizes, selectivities). Plans with a
// LIMIT are excluded: under one, operators may not see their full input
// (the pipelined close-cascade stops producers mid-stream, and consumed
// row counts depend on the execution strategy), so their counters
// describe the truncated run rather than the data and would corrupt the
// estimates.
func (e *Engine) observe(plan logical.Node, m *physical.Metrics) {
	if m == nil || hasLimit(plan) {
		return
	}
	var walk func(logical.Node)
	walk = func(n logical.Node) {
		switch node := n.(type) {
		case *logical.Scan:
			if node.Source == "LLM" && node.PushedFilter == nil {
				if nm, ok := m.Get(node); ok && nm.Prompts > 0 {
					e.stats.ObserveScan(node.Table.Name, nm.RowsOut, nm.Prompts)
				}
			}
		case *logical.LLMFilter:
			if nm, ok := m.Get(node); ok && nm.RowsIn > 0 {
				ref := node.Cond.Left.(*ast.ColumnRef)
				lit := node.Cond.Right.(*ast.Literal)
				e.stats.ObserveFilter(node.Table.Name, ref.Name, node.Cond.Op, lit.Val.String(), nm.RowsIn, nm.RowsOut)
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(plan)
}

// hasLimit reports whether the plan contains a Limit node.
func hasLimit(n logical.Node) bool {
	if _, ok := n.(*logical.Limit); ok {
		return true
	}
	for _, c := range n.Children() {
		if hasLimit(c) {
			return true
		}
	}
	return false
}
