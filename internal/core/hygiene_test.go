package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/simllm"
	"repro/internal/world"
)

// outageClient fails every call while down, passing through otherwise —
// the minimal mid-flight backend failure.
type outageClient struct {
	inner llm.Client
	down  atomic.Bool
}

func (o *outageClient) Name() string { return o.inner.Name() }

func (o *outageClient) Complete(ctx context.Context, prompt string) (string, error) {
	if o.down.Load() {
		return "", llm.Permanent(errors.New("endpoint down"))
	}
	return o.inner.Complete(ctx, prompt)
}

// gatedClient blocks every call until released, honoring cancellation.
type gatedClient struct {
	inner   llm.Client
	started chan struct{}
	release chan struct{}
}

func (g *gatedClient) Name() string { return g.inner.Name() }

func (g *gatedClient) Complete(ctx context.Context, prompt string) (string, error) {
	select {
	case g.started <- struct{}{}:
	default:
	}
	select {
	case <-g.release:
		return g.inner.Complete(ctx, prompt)
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

// drainedRuntime asserts the runtime's scheduler released every worker
// slot and queue spot and the process goroutine count returned to its
// pre-query baseline.
func drainedRuntime(t *testing.T, rt *Runtime, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rt.scheduler().Busy() == 0 && rt.scheduler().Queued() == 0 && runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("runtime did not drain: busy=%d queued=%d goroutines=%d (baseline %d)",
		rt.scheduler().Busy(), rt.scheduler().Queued(), runtime.NumGoroutine(), baseline)
}

// hygieneOptions: pipelined on the shared scheduler, caches off so every
// query actually exercises the transport.
func hygieneOptions() Options {
	opts := DefaultOptions()
	opts.CacheEnabled = false
	opts.Retries = -1 // surface the failure, don't ride it out
	return opts
}

const hygieneSQL = `SELECT name FROM country WHERE continent = 'Europe'`

// TestQueryFailureReleasesSlots: a query aborted by a mid-flight backend
// failure must release its scheduler slots and goroutines, and the next
// query on the same runtime must run at full budget.
func TestQueryFailureReleasesSlots(t *testing.T) {
	w := world.Build()
	flaky := &outageClient{inner: simllm.New(simllm.ChatGPT, w, 1)}
	rt := runtimeOver(t, flaky, hygieneOptions(), w)
	baseline := runtime.NumGoroutine()

	flaky.down.Store(true)
	if _, _, err := rt.NewSession().Query(context.Background(), hygieneSQL); err == nil {
		t.Fatal("query succeeded against a dead backend")
	}
	drainedRuntime(t, rt, baseline)

	flaky.down.Store(false)
	rel, _, err := rt.NewSession().Query(context.Background(), hygieneSQL)
	if err != nil {
		t.Fatalf("post-failure query: %v", err)
	}
	if rel.Cardinality() == 0 {
		t.Fatal("post-failure query returned no rows")
	}
}

// TestQueryCancelReleasesSlots: cancelling a query mid-flight — prompts
// blocked on the backend — must return promptly with a cancellation
// error, release every slot, and leave the runtime fully usable.
func TestQueryCancelReleasesSlots(t *testing.T) {
	w := world.Build()
	gated := &gatedClient{
		inner:   simllm.New(simllm.ChatGPT, w, 1),
		started: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	rt := runtimeOver(t, gated, hygieneOptions(), w)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := rt.NewSession().Query(ctx, hygieneSQL)
		done <- err
	}()
	<-gated.started // a prompt is mid-flight on the backend
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled query error = %v, want context.Canceled", err)
		}
		if !llm.IsCancellation(err) {
			t.Fatalf("cancelled query misclassified as backend failure: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled query never returned")
	}
	drainedRuntime(t, rt, baseline)

	close(gated.release)
	rel, _, err := rt.NewSession().Query(context.Background(), hygieneSQL)
	if err != nil {
		t.Fatalf("post-cancel query: %v", err)
	}
	if rel.Cardinality() == 0 {
		t.Fatal("post-cancel query returned no rows")
	}
}
