package core

import (
	"context"
	"errors"
	"io"

	"repro/internal/clean"
	"repro/internal/llm"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/rescache"
	"repro/internal/schema"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
)

// Stream is one query's incremental result delivery: rows leave as the
// pipelined executor yields them, instead of waiting for the whole
// relation to materialize. The contract mirrors the row iterators the
// executor itself is built from:
//
//	st, err := sess.QueryStream(ctx, sql)
//	defer st.Close()
//	for { row, vt, err := st.Next(); ... }   // io.EOF ends the stream
//	rep, err := st.Finish()                  // stats, makespan, plan
//
// Next returns, next to each tuple, its virtual availability time — the
// simulated instant the prompt chain producing the row completed — so a
// consumer (and the tests) can check "the first row left before the
// full relation was done" against the deterministic latency model
// rather than a racy wall clock. Finish is valid only after Next
// returned io.EOF; it settles accounting exactly like a buffered Query
// (quiesce, observe, session totals, result-cache population). Close is
// idempotent and safe mid-stream: it cascades through the operator tree
// (stopping upstream prompt issue) and closes the scheduler tenant, so
// an abandoned stream releases its slots and queued prompts
// immediately.
//
// Result-cache interplay: an exact hit replays the cached relation row
// by row (zero prompts, vt 0); a subsumed hit streams the residual
// plan's local evaluation; a miss streams the fresh execution while
// accumulating the relation, then populates the cache on Finish. A
// streaming miss executes outside the cache's singleflight — rows must
// reach the client before the relation exists, so the stream cannot
// lead a flight for concurrent buffered callers; identical concurrent
// queries may therefore execute redundantly, and the first Finish wins
// the population race. Results are bit-identical either way.
type Stream struct {
	s      *Session
	schema *schema.Schema
	cached CacheOutcome

	// Live execution state (nil when replaying a materialized result).
	st      *physical.RowStream
	tenant  *llm.Tenant
	penv    *promptEnv
	plan    logical.Node
	cost    *optimizer.PlanCost
	metrics *physical.Metrics

	// Replay state: cache-exact hits and EXPLAIN fall back to a
	// materialized relation with a pre-settled report.
	replay *schema.Relation
	idx    int
	rep    *Report

	// acc accumulates delivered rows: the finished relation for cache
	// population.
	acc      *schema.Relation
	populate func(rel *schema.Relation, rep *Report)

	finished bool
	closed   bool
}

// QueryStream executes sql for incremental row consumption. It accepts
// everything Query does; statements with no incremental production
// (EXPLAIN renders a finished plan tree) run buffered and replay.
func (s *Session) QueryStream(ctx context.Context, sql string) (*Stream, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*ast.Select)
	if !ok {
		rel, rep, err := s.Query(ctx, sql)
		if err != nil {
			return nil, err
		}
		// Query settled all accounting; the stream only replays.
		return &Stream{s: s, schema: rel.Schema, replay: rel, rep: rep, cached: rep.Cached}, nil
	}

	rc := s.rt.resultCache
	if rc == nil {
		plan, cost, err := s.planSelectFrom(sel, nil)
		if err != nil {
			return nil, err
		}
		return s.openLiveStream(ctx, plan, cost, nil)
	}

	// Mirror runSelect's cache flow (same fingerprints, same stamp-
	// before-execution rule, same LIMIT exclusions) so a streamed query
	// and a buffered query populate and hit identically.
	built, err := logical.Build(sel, s)
	if err != nil {
		return nil, err
	}
	shape := logical.Decompose(built)
	comps := logical.Components(built)
	stamp := s.rt.stampFor(comps)
	if sel.Limit >= 0 || sel.Offset > 0 {
		return s.openShapedStream(ctx, sel, built, shape, stamp, nil)
	}
	key := rescache.Key{Fingerprint: s.resultFingerprint(built), Stamp: stamp}
	if entry, ok := rc.Peek(key); ok {
		rep := &Report{Plan: entry.Plan, Cached: CacheExact}
		s.account(rep)
		return &Stream{s: s, schema: entry.Rel.Schema, replay: entry.Rel, rep: rep, cached: CacheExact}, nil
	}
	populate := func(rel *schema.Relation, rep *Report) {
		e := &rescache.Entry{Rel: rel, Plan: rep.Plan, Tables: comps}
		if shape != nil && shape.Producer && !s.opts.Optimizer.PromptPushdown {
			// Same producer-retention rule as the buffered path: see
			// runSelect.
			e.Prod = &rescache.Producer{
				Opts:      s.optionsFingerprint(),
				FromKey:   shape.FromKey,
				FromLabel: shape.FromLabel,
				Conjuncts: shape.ConjunctTexts(),
			}
		}
		// Fetch with a prebuilt entry: an identical resident or in-flight
		// result wins the race and this population is dropped — benign,
		// the relations are bit-identical by construction.
		rc.Fetch(ctx, key, func() (*rescache.Entry, error) { return e, nil })
	}
	return s.openShapedStream(ctx, sel, built, shape, stamp, populate)
}

// openShapedStream is executeShaped for streams: residual plans over
// cached relations compete as candidates, and a residual winner whose
// entry was evicted falls back to a fresh plan.
func (s *Session) openShapedStream(ctx context.Context, sel *ast.Select, built logical.Node, shape *logical.Shape, stamp string, populate func(*schema.Relation, *Report)) (*Stream, error) {
	extras := s.residualCandidates(shape, stamp)
	plan, cost, err := s.planSelectExtras(sel, built, extras)
	if err != nil {
		return nil, err
	}
	if cs := logical.FindCachedScan(plan); cs != nil {
		st, err := s.openResidualStream(ctx, plan, cost, cs, populate)
		if !errors.Is(err, errCachedEntryGone) {
			return st, err
		}
		if plan, cost, err = s.planSelectFrom(sel, nil); err != nil {
			return nil, err
		}
	}
	return s.openLiveStream(ctx, plan, cost, populate)
}

// openResidualStream streams a winning residual plan's local evaluation
// over its cached relation: no scheduler tenant, no model client, zero
// prompts.
func (s *Session) openResidualStream(ctx context.Context, plan logical.Node, cost *optimizer.PlanCost, cs *logical.CachedScan, populate func(*schema.Relation, *Report)) (*Stream, error) {
	entry, ok := s.rt.resultCache.Subsumed(rescache.Key{Fingerprint: cs.Source, Stamp: cs.Stamp})
	if !ok {
		return nil, errCachedEntryGone
	}
	cs.Rel = entry.Rel
	op, err := physical.Compile(plan, nil)
	if err != nil {
		return nil, err
	}
	metrics := physical.NewMetrics()
	pctx := &physical.Context{
		Ctx:     ctx,
		Cleaner: clean.New(s.opts.Clean),
		Metrics: metrics,
	}
	st, err := physical.OpenStream(pctx, op)
	if err != nil {
		return nil, err
	}
	return &Stream{
		s:        s,
		schema:   st.Schema(),
		st:       st,
		plan:     plan,
		cost:     cost,
		metrics:  metrics,
		cached:   CacheSubsumed,
		acc:      schema.NewRelation(st.Schema().Clone()),
		populate: populate,
	}, nil
}

// openLiveStream opens a fresh execution for streaming — execute()'s
// environment (recorder, verifier, scheduler tenant in the session's
// admission class) wired to a RowStream instead of a materializing Run.
func (s *Session) openLiveStream(ctx context.Context, plan logical.Node, cost *optimizer.PlanCost, populate func(*schema.Relation, *Report)) (*Stream, error) {
	var env *physical.Env
	if db := s.rt.database(); db != nil {
		env = &physical.Env{Data: db.Relation}
	}
	op, err := physical.Compile(plan, env)
	if err != nil {
		return nil, err
	}
	penv, err := s.promptEnv()
	if err != nil {
		return nil, err
	}
	ctx = llm.WithRecorder(ctx, penv.primary)
	var verifier llm.Client
	if penv.verifier != nil {
		verifier = penv.verifier
	}
	metrics := physical.NewMetrics()
	pctx := &physical.Context{
		Ctx:               ctx,
		Client:            penv.primaryClient(),
		Route:             penv.clientForRole,
		Cache:             s.rt.cache,
		Prompts:           s.rt.builder,
		Cleaner:           clean.New(s.opts.Clean),
		MaxScanIterations: s.opts.MaxScanIterations,
		BatchWorkers:      s.opts.BatchWorkers,
		Metrics:           metrics,
		Verifier:          verifier,
		VerifyTolerance:   s.opts.VerifyTolerance,
	}
	var tenant *llm.Tenant
	if s.opts.Pipelined {
		tenant = s.openTenant(ctx)
		pctx.Scheduler = tenant
	}
	st, err := physical.OpenStream(pctx, op)
	if err != nil {
		if tenant != nil {
			tenant.Close()
		}
		return nil, err
	}
	return &Stream{
		s:        s,
		schema:   st.Schema(),
		st:       st,
		tenant:   tenant,
		penv:     penv,
		plan:     plan,
		cost:     cost,
		metrics:  metrics,
		acc:      schema.NewRelation(st.Schema().Clone()),
		populate: populate,
	}, nil
}

// Schema reports the stream's output columns (available before the
// first row — the header frame of a wire protocol).
func (st *Stream) Schema() *schema.Schema { return st.schema }

// Cached reports how the result cache participated, known at open time.
func (st *Stream) Cached() CacheOutcome { return st.cached }

// Next pulls one row with its virtual availability time; io.EOF ends
// the stream.
func (st *Stream) Next() (schema.Tuple, llm.VTime, error) {
	if st.closed {
		return nil, 0, errors.New("core: stream closed")
	}
	if st.replay != nil {
		if st.idx >= len(st.replay.Rows) {
			return nil, 0, io.EOF
		}
		t := st.replay.Rows[st.idx]
		st.idx++
		return t, 0, nil
	}
	t, vt, err := st.st.Next()
	if err != nil {
		return nil, 0, err
	}
	if st.acc != nil {
		st.acc.Append(t)
	}
	return t, vt, nil
}

// Finish settles the completed stream: it releases the execution,
// quiesces the tenant (abandoned futures were issued and must be
// accounted), builds the Report a buffered Query would have returned,
// feeds the optimizer statistics, folds the session totals, and
// populates the result cache with the accumulated relation. Only valid
// after Next returned io.EOF.
func (st *Stream) Finish() (*Report, error) {
	if st.finished {
		return st.rep, nil
	}
	if st.closed {
		return nil, errors.New("core: stream closed before completion")
	}
	st.finished = true
	st.closed = true
	if st.replay != nil {
		return st.rep, nil // settled at open
	}
	st.st.Close()
	if st.tenant != nil {
		st.tenant.Quiesce()
	}
	rep := &Report{Plan: logical.Explain(st.plan), Estimate: st.cost, Metrics: st.metrics, Cached: st.cached}
	if st.penv != nil {
		rep.Stats = st.penv.stats()
	}
	if st.tenant != nil {
		rep.Stats.SimulatedLatency += st.tenant.Makespan()
		rep.Sched = st.tenant.Stats()
		st.tenant.Close()
	}
	if st.cached == CacheNone {
		st.s.observe(st.plan, st.metrics)
	}
	st.s.account(rep)
	if st.populate != nil && st.acc != nil {
		st.populate(st.acc, rep)
	}
	st.rep = rep
	return rep, nil
}

// Close releases the stream. Safe (and required) mid-stream: the
// operator close cascade stops upstream prompt issue, and closing the
// tenant fails its queued prompts immediately without perturbing other
// tenants — a disconnected client frees its slots right away.
// Idempotent; a no-op after Finish.
func (st *Stream) Close() {
	if st.closed {
		return
	}
	st.closed = true
	if st.st != nil {
		st.st.Close()
	}
	if st.tenant != nil {
		st.tenant.Close()
	}
}
