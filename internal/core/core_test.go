package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/memdb"
	"repro/internal/schema"
	"repro/internal/simllm"
	"repro/internal/value"
	"repro/internal/world"
)

func testEngine(t *testing.T, p simllm.Profile) (*Engine, *world.World) {
	t.Helper()
	w := world.Build()
	model := simllm.New(p, w, 1)
	e := New(model, DefaultOptions())
	for _, name := range []string{"country", "city", "mayor"} {
		if err := e.BindLLMTable(w.Table(name).Def); err != nil {
			t.Fatal(err)
		}
	}
	db := memdb.New()
	if err := db.LoadRelation(w.Table("employees").Def, w.Relation("employees")); err != nil {
		t.Fatal(err)
	}
	// Also load country into the DB so the precedence rules are testable.
	if err := db.LoadRelation(w.Table("country").Def, w.Relation("country")); err != nil {
		t.Fatal(err)
	}
	e.AttachDB(db)
	return e, w
}

func TestBindRequiresKey(t *testing.T) {
	e := New(nil, DefaultOptions())
	err := e.BindLLMTable(&schema.TableDef{
		Name:      "bad",
		KeyColumn: "missing",
		Schema:    schema.New(schema.Column{Name: "x", Type: value.KindInt}),
	})
	if err == nil {
		t.Error("binding a table whose key is not in the schema must fail")
	}
}

func TestResolvePrecedence(t *testing.T) {
	e, _ := testEngine(t, simllm.GPT3)

	// Unqualified: LLM wins by default.
	_, source, err := e.ResolveTable("country", "")
	if err != nil || source != "LLM" {
		t.Errorf("default source = %q, %v", source, err)
	}
	// Explicit DB qualifier.
	_, source, err = e.ResolveTable("country", "DB")
	if err != nil || source != "DB" {
		t.Errorf("explicit DB = %q, %v", source, err)
	}
	// DB-only table resolves to DB.
	_, source, err = e.ResolveTable("employees", "")
	if err != nil || source != "DB" {
		t.Errorf("employees = %q, %v", source, err)
	}
	// Explicit LLM for a DB-only table fails.
	if _, _, err := e.ResolveTable("employees", "LLM"); err == nil {
		t.Error("employees has no LLM binding")
	}
	if _, _, err := e.ResolveTable("nothing", ""); err == nil {
		t.Error("unknown table must fail")
	}

	// DefaultSource flips the tie-break.
	opts := DefaultOptions()
	opts.DefaultSource = "DB"
	e2 := New(nil, opts)
	e2.AttachDB(mustDB(t))
	if err := e2.BindLLMTable(world.Build().Table("country").Def); err != nil {
		t.Fatal(err)
	}
	_, source, err = e2.ResolveTable("country", "")
	if err != nil || source != "DB" {
		t.Errorf("DefaultSource=DB tie-break = %q, %v", source, err)
	}
}

func mustDB(t *testing.T) *memdb.DB {
	t.Helper()
	w := world.Build()
	db := memdb.New()
	if err := db.LoadRelation(w.Table("country").Def, w.Relation("country")); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQueryEndToEnd(t *testing.T) {
	e, _ := testEngine(t, simllm.GPT3)
	rel, rep, err := e.Query(context.Background(), "SELECT name FROM country WHERE continent = 'Europe'")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() == 0 {
		t.Error("GPT-3 should list European countries")
	}
	if rep.Stats.Prompts == 0 {
		t.Error("LLM usage must be recorded")
	}
	if !strings.Contains(rep.Plan, "LLMKeyScan") {
		t.Errorf("report plan missing LLM operators:\n%s", rep.Plan)
	}
	// The output schema is fixed by construction (Section 5: "all output
	// relations have the expected schema").
	if rel.Schema.Len() != 1 || !strings.EqualFold(rel.Schema.Columns[0].Name, "name") {
		t.Errorf("output schema = %v", rel.Schema)
	}
}

// TestQueryCacheAcrossQueries: with the default-on prompt cache, running
// the same query twice on one engine costs zero model calls and zero
// simulated seconds the second time, with every prompt served as a hit.
func TestQueryCacheAcrossQueries(t *testing.T) {
	e, _ := testEngine(t, simllm.GPT3)
	const q = "SELECT name, capital FROM country WHERE continent = 'Europe'"
	ctx := context.Background()

	first, rep1, err := e.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Stats.Prompts == 0 {
		t.Fatal("cold cache must issue prompts")
	}
	second, rep2, err := e.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Stats.Prompts != 0 {
		t.Errorf("warm cache issued %d prompts, want 0", rep2.Stats.Prompts)
	}
	if rep2.Stats.CacheHits == 0 {
		t.Error("warm run must record cache hits")
	}
	if rep2.Stats.SimulatedLatency != 0 {
		t.Errorf("cached prompts must cost zero simulated time, got %v", rep2.Stats.SimulatedLatency)
	}
	if first.Cardinality() != second.Cardinality() {
		t.Errorf("cached result diverged: %d vs %d rows", first.Cardinality(), second.Cardinality())
	}
	cs := e.CacheStats()
	if cs.Hits == 0 || cs.Misses == 0 || cs.Entries == 0 {
		t.Errorf("engine cache stats = %+v", cs)
	}
}

// TestPipelinedMatchesStopAndGo: the default pipelined executor must
// return the same relation as stop-and-go execution with the same issued
// prompts, at lower simulated latency, on a multi-operator query.
func TestPipelinedMatchesStopAndGo(t *testing.T) {
	const q = "SELECT name, capital FROM country WHERE continent = 'Europe'"
	ctx := context.Background()

	run := func(pipelined bool) (*schema.Relation, *Report) {
		w := world.Build()
		opts := DefaultOptions()
		opts.CacheEnabled = false // both modes pay for every prompt
		opts.Pipelined = pipelined
		e := New(simllm.New(simllm.GPT3, w, 1), opts)
		if err := e.BindLLMTable(w.Table("country").Def); err != nil {
			t.Fatal(err)
		}
		rel, rep, err := e.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		return rel, rep
	}

	wantRel, wantRep := run(false)
	gotRel, gotRep := run(true)
	if gotRel.String() != wantRel.String() {
		t.Errorf("pipelined result diverged:\n%s\nvs\n%s", gotRel.String(), wantRel.String())
	}
	if gotRep.Stats.Prompts != wantRep.Stats.Prompts {
		t.Errorf("prompts = %d pipelined vs %d stop-and-go", gotRep.Stats.Prompts, wantRep.Stats.Prompts)
	}
	if gotRep.Stats.SimulatedLatency == 0 || gotRep.Stats.SimulatedLatency > wantRep.Stats.SimulatedLatency {
		t.Errorf("pipelined latency %v must be positive and at most stop-and-go %v",
			gotRep.Stats.SimulatedLatency, wantRep.Stats.SimulatedLatency)
	}
}

// TestPipelinedLimitQuery: a LIMIT query under the pipelined executor
// terminates early, settles abandoned in-flight prompts before the
// report is built, and still returns the right rows.
func TestPipelinedLimitQuery(t *testing.T) {
	e, _ := testEngine(t, simllm.GPT3)
	rel, rep, err := e.Query(context.Background(), "SELECT name, capital FROM country LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 2 {
		t.Errorf("LIMIT 2 returned %d rows", rel.Cardinality())
	}
	if rep.Stats.Prompts+rep.Stats.CacheHits == 0 {
		t.Error("limit query must still account its prompts")
	}
}

// TestQueryCacheDisabled: CacheEnabled=false restores pay-per-prompt
// behavior — the second identical query costs the same as the first.
func TestQueryCacheDisabled(t *testing.T) {
	w := world.Build()
	opts := DefaultOptions()
	opts.CacheEnabled = false
	e := New(simllm.New(simllm.GPT3, w, 1), opts)
	if err := e.BindLLMTable(w.Table("country").Def); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT name FROM country WHERE continent = 'Europe'"
	ctx := context.Background()
	_, rep1, err := e.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	_, rep2, err := e.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Stats.Prompts != rep1.Stats.Prompts {
		t.Errorf("cache off must re-issue prompts: %d vs %d", rep2.Stats.Prompts, rep1.Stats.Prompts)
	}
	if rep2.Stats.CacheHits != 0 || rep2.Stats.CacheMisses != 0 {
		t.Errorf("cache off must not record cache traffic: %+v", rep2.Stats)
	}
}

func TestHybridQuery(t *testing.T) {
	e, _ := testEngine(t, simllm.GPT3)
	rel, _, err := e.Query(context.Background(),
		"SELECT c.gdp, AVG(e.salary) FROM LLM.country c, DB.Employees e WHERE c.code = e.countryCode GROUP BY e.countryCode")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema.Len() != 2 {
		t.Errorf("hybrid schema = %v", rel.Schema)
	}
	if rel.Cardinality() == 0 {
		t.Error("hybrid join should produce groups on gpt3")
	}
}

func TestExplainShowsLowering(t *testing.T) {
	e, _ := testEngine(t, simllm.ChatGPT)
	plan, err := e.Explain("SELECT name, population FROM city WHERE population > 1000000")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LLMKeyScan", "LLMFilter", "LLMFetchAttr", "Project"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %s:\n%s", want, plan)
		}
	}
}

func TestQueryParseError(t *testing.T) {
	e, _ := testEngine(t, simllm.GPT3)
	if _, _, err := e.Query(context.Background(), "SELEC nonsense"); err == nil {
		t.Error("parse errors must surface")
	}
	if _, err := e.Explain("SELECT x FROM nothing"); err == nil {
		t.Error("unknown tables must surface")
	}
}

func TestDeterministicQueries(t *testing.T) {
	e, _ := testEngine(t, simllm.ChatGPT)
	ctx := context.Background()
	sql := "SELECT name FROM country WHERE population > 100000000"
	a, _, err := e.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := e.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cardinality() != b.Cardinality() {
		t.Fatalf("non-deterministic: %d vs %d rows", a.Cardinality(), b.Cardinality())
	}
	for i := range a.Rows {
		if a.Rows[i][0].String() != b.Rows[i][0].String() {
			t.Fatalf("row %d differs: %v vs %v", i, a.Rows[i], b.Rows[i])
		}
	}
}
