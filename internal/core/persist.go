package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/optimizer"
	"repro/internal/rescache"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/value"
)

// Record kinds in the durable store. Relations are keyed by the hashed
// plan fingerprint; the two singleton kinds ("stats", "epochs") live
// under one well-known key and are pinned so byte-budget eviction can
// never sacrifice the planner's learned state or the epoch table to
// make room for one more relation.
const (
	kindRel    = "rel"
	kindStats  = "stats"
	kindEpochs = "epochs"
	metaKey    = "global"
)

// StoreConfig configures the runtime's durable tier (see OpenStore).
type StoreConfig struct {
	// Dir is the data directory (the -data-dir flag). Required.
	Dir string
	// MaxBytes caps the approximate live bytes on disk (0 = unlimited).
	MaxBytes int
	// TTL expires persisted relations this long after they were written
	// (0 = never). Stats and epochs are pinned and never expire.
	TTL time.Duration
	// SnapshotInterval, when positive, starts a background goroutine
	// flushing statistics + epochs (and fsyncing pending relation
	// appends) this often, so a crash loses at most one interval of
	// learned state even without a graceful drain.
	SnapshotInterval time.Duration
}

// PersistCounters snapshots the durable tier for /stats and the bench
// report.
type PersistCounters struct {
	// Enabled reports whether a store was opened on this runtime.
	Enabled bool `json:"enabled"`
	// WarmRelations counts result-cache entries admitted on warm start;
	// WarmStatsTables the per-table statistics restored.
	WarmRelations   int `json:"warm_relations"`
	WarmStatsTables int `json:"warm_stats_tables"`
	// DroppedStale counts persisted relations rejected on warm load
	// because their epoch stamp no longer matched (rebind before or
	// during the downtime); DroppedCorrupt those whose payload failed to
	// decode. Both are deleted from the store, never served.
	DroppedStale   int `json:"dropped_stale"`
	DroppedCorrupt int `json:"dropped_corrupt"`
	// Snapshots counts stats+epochs flushes (drain, ticker, explicit);
	// Errors counts persistence operations that failed (the runtime
	// degrades to in-memory-only behavior rather than failing queries).
	Snapshots int `json:"snapshots"`
	Errors    int `json:"errors"`
	// Store carries the underlying segment store's own accounting.
	Store store.Counters `json:"store"`
}

// relKey hashes a plan fingerprint into a fixed-length store key.
// Fingerprints are canonical plan serializations — arbitrarily long and
// full of delimiters — so the durable tier addresses them by content
// hash, one record per fingerprint (the stamp rides along as the
// record's validity stamp).
func relKey(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint))
	return hex.EncodeToString(sum[:])
}

// Wire format of one persisted result-cache entry. Values serialize as
// (kind, exact string) pairs — NOT through value.ParseAs, whose
// trimming and null-word folding would break the bit-identical
// round-trip the warm-start gate demands.
type wireValue struct {
	K uint8  `json:"k"`
	V string `json:"v,omitempty"`
}

type wireColumn struct {
	Table string `json:"t,omitempty"`
	Name  string `json:"n"`
	Type  uint8  `json:"y"`
}

type wireProducer struct {
	Opts      string   `json:"opts"`
	FromKey   string   `json:"from_key"`
	FromLabel string   `json:"from_label"`
	Conjuncts []string `json:"conjuncts,omitempty"`
}

type wireEntry struct {
	Fingerprint string        `json:"fp"`
	Stamp       string        `json:"stamp"`
	Plan        string        `json:"plan,omitempty"`
	Tables      []string      `json:"tables"`
	Prod        *wireProducer `json:"prod,omitempty"`
	Cols        []wireColumn  `json:"cols"`
	Rows        [][]wireValue `json:"rows"`
}

func encodeValue(v value.Value) wireValue {
	w := wireValue{K: uint8(v.Kind())}
	switch v.Kind() {
	case value.KindNull:
	case value.KindInt:
		w.V = strconv.FormatInt(v.AsInt(), 10)
	case value.KindFloat:
		w.V = strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)
	case value.KindString:
		w.V = v.AsString()
	case value.KindBool:
		if v.AsBool() {
			w.V = "t"
		} else {
			w.V = "f"
		}
	case value.KindDate:
		w.V = v.AsTime().Format("2006-01-02")
	}
	return w
}

func decodeValue(w wireValue) (value.Value, error) {
	switch value.Kind(w.K) {
	case value.KindNull:
		return value.Null(), nil
	case value.KindInt:
		i, err := strconv.ParseInt(w.V, 10, 64)
		if err != nil {
			return value.Value{}, err
		}
		return value.Int(i), nil
	case value.KindFloat:
		f, err := strconv.ParseFloat(w.V, 64)
		if err != nil {
			return value.Value{}, err
		}
		return value.Float(f), nil
	case value.KindString:
		return value.Text(w.V), nil
	case value.KindBool:
		switch w.V {
		case "t":
			return value.Bool(true), nil
		case "f":
			return value.Bool(false), nil
		}
		return value.Value{}, fmt.Errorf("core: bad bool payload %q", w.V)
	case value.KindDate:
		t, err := time.Parse("2006-01-02", w.V)
		if err != nil {
			return value.Value{}, err
		}
		return value.DateFromTime(t), nil
	}
	return value.Value{}, fmt.Errorf("core: unknown value kind %d", w.K)
}

// encodeEntry serializes one cache entry for the durable tier. The
// entry is the cache's immutable copy; no locks are needed.
func encodeEntry(key rescache.Key, e *rescache.Entry) ([]byte, error) {
	we := wireEntry{
		Fingerprint: key.Fingerprint,
		Stamp:       key.Stamp,
		Plan:        e.Plan,
		Tables:      e.Tables,
		Cols:        make([]wireColumn, 0, len(e.Rel.Schema.Columns)),
		Rows:        make([][]wireValue, 0, len(e.Rel.Rows)),
	}
	if e.Prod != nil {
		we.Prod = &wireProducer{Opts: e.Prod.Opts, FromKey: e.Prod.FromKey,
			FromLabel: e.Prod.FromLabel, Conjuncts: e.Prod.Conjuncts}
	}
	for _, c := range e.Rel.Schema.Columns {
		we.Cols = append(we.Cols, wireColumn{Table: c.Table, Name: c.Name, Type: uint8(c.Type)})
	}
	for _, row := range e.Rel.Rows {
		wr := make([]wireValue, 0, len(row))
		for _, v := range row {
			wr = append(wr, encodeValue(v))
		}
		we.Rows = append(we.Rows, wr)
	}
	return json.Marshal(we)
}

// decodeEntry reconstructs a cache entry (and its key) from a persisted
// payload, validating arity so a damaged payload can never panic
// Relation.Append.
func decodeEntry(payload []byte) (rescache.Key, *rescache.Entry, error) {
	var we wireEntry
	if err := json.Unmarshal(payload, &we); err != nil {
		return rescache.Key{}, nil, err
	}
	if we.Fingerprint == "" || len(we.Cols) == 0 {
		return rescache.Key{}, nil, errors.New("core: persisted entry missing fingerprint or schema")
	}
	cols := make([]schema.Column, 0, len(we.Cols))
	for _, c := range we.Cols {
		cols = append(cols, schema.Column{Table: c.Table, Name: c.Name, Type: value.Kind(c.Type)})
	}
	rel := schema.NewRelation(schema.New(cols...))
	for _, wr := range we.Rows {
		if len(wr) != len(cols) {
			return rescache.Key{}, nil, fmt.Errorf("core: persisted row arity %d != %d", len(wr), len(cols))
		}
		row := make(schema.Tuple, 0, len(cols))
		for _, w := range wr {
			v, err := decodeValue(w)
			if err != nil {
				return rescache.Key{}, nil, err
			}
			row = append(row, v)
		}
		rel.Append(row)
	}
	e := &rescache.Entry{Rel: rel, Plan: we.Plan, Tables: we.Tables}
	if we.Prod != nil {
		e.Prod = &rescache.Producer{Opts: we.Prod.Opts, FromKey: we.Prod.FromKey,
			FromLabel: we.Prod.FromLabel, Conjuncts: we.Prod.Conjuncts}
	}
	return rescache.Key{Fingerprint: we.Fingerprint, Stamp: we.Stamp}, e, nil
}

// OpenStore attaches a durable store to the runtime and warm-starts
// from it: persisted binding epochs merge into the live epoch table
// (max wins — a bump recorded before the restart is never forgotten),
// persisted statistics restore into the planner (live observations
// win), and persisted relations load into the result cache when — and
// only when — their recorded epoch stamp still equals the post-merge
// stamp of the components they read. Stale or undecodable records are
// deleted, never served.
//
// Call it once, after the boot-time binds (BindLLMTable / AttachDB /
// PrimeTableKeys) and before serving traffic; entries cached before
// OpenStore are not mirrored retroactively.
func (rt *Runtime) OpenStore(cfg StoreConfig) error {
	if cfg.Dir == "" {
		return errors.New("core: OpenStore needs a data directory")
	}
	rt.persistMu.Lock()
	if rt.pstore != nil {
		rt.persistMu.Unlock()
		return errors.New("core: store already open")
	}
	rt.persistMu.Unlock()

	st, err := store.Open(cfg.Dir, store.Options{MaxBytes: cfg.MaxBytes, TTL: cfg.TTL})
	if err != nil {
		return err
	}

	var ctr PersistCounters
	ctr.Enabled = true

	// 1. Epochs: merge max(live, persisted) per component, then
	// invalidate any component the merge raised — an in-memory entry
	// cached under the lower pre-merge epoch must not survive either.
	if rec, ok := st.Get(kindEpochs, metaKey); ok {
		var persisted map[string]uint64
		if err := json.Unmarshal(rec.Payload, &persisted); err == nil {
			var raised []string
			rt.epochMu.Lock()
			for comp, e := range persisted {
				if e > rt.compEpochs[comp] {
					rt.compEpochs[comp] = e
					raised = append(raised, comp)
				}
			}
			rt.epochMu.Unlock()
			for _, comp := range raised {
				rt.epochTotal.Add(1)
				if rt.resultCache != nil {
					rt.resultCache.InvalidateComponent(comp)
				}
			}
		} else {
			ctr.DroppedCorrupt++
			st.Delete(kindEpochs, metaKey)
		}
	}

	// 2. Statistics: snapshot fills gaps, live observations win.
	if rec, ok := st.Get(kindStats, metaKey); ok {
		var snap optimizer.StatsSnapshot
		if err := json.Unmarshal(rec.Payload, &snap); err == nil {
			rt.stats.Restore(snap)
			ctr.WarmStatsTables = len(snap.Tables)
		} else {
			ctr.DroppedCorrupt++
			st.Delete(kindStats, metaKey)
		}
	}

	// 3. Relations: admit iff the persisted stamp equals the post-merge
	// stamp of the tables the plan reads. The sink is not installed yet,
	// so loads cannot echo back into the store they came from.
	if rt.resultCache != nil {
		for _, rec := range st.All(kindRel) {
			key, entry, err := decodeEntry(rec.Payload)
			if err != nil {
				ctr.DroppedCorrupt++
				st.Delete(kindRel, rec.Key)
				continue
			}
			if key.Stamp != rec.Stamp || key.Stamp != rt.stampFor(entry.Tables) {
				ctr.DroppedStale++
				st.Delete(kindRel, rec.Key)
				continue
			}
			if rt.resultCache.Load(key, entry) {
				ctr.WarmRelations++
			} else {
				// Refused by the live cache (budget); keep disk and
				// memory consistent.
				ctr.DroppedStale++
				st.Delete(kindRel, rec.Key)
			}
		}
	}

	rt.persistMu.Lock()
	rt.pstore = st
	rt.pctr = ctr
	rt.persistMu.Unlock()

	if rt.resultCache != nil {
		rt.resultCache.SetSink(runtimeSink{rt: rt})
	}

	// Persist the merged baseline immediately: a crash right after boot
	// must still find the current epochs on disk.
	if err := rt.FlushStore(); err != nil {
		return err
	}

	if cfg.SnapshotInterval > 0 {
		stop, done := make(chan struct{}), make(chan struct{})
		rt.persistMu.Lock()
		rt.snapStop, rt.snapDone = stop, done
		rt.persistMu.Unlock()
		go func() {
			defer close(done)
			tick := time.NewTicker(cfg.SnapshotInterval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					rt.FlushStore()
				case <-stop:
					return
				}
			}
		}()
	}
	return nil
}

// FlushStore makes the durable tier current: it writes the statistics
// snapshot and the epoch table (both pinned) and fsyncs, which also
// hardens any relation appends still sitting in OS buffers. No-op
// without an open store.
func (rt *Runtime) FlushStore() error {
	snap := rt.stats.Snapshot()
	epochs := rt.TableEpochs()

	rt.persistMu.Lock()
	defer rt.persistMu.Unlock()
	if rt.pstore == nil {
		return nil
	}
	var firstErr error
	if payload, err := json.Marshal(snap); err == nil {
		if err := rt.pstore.Put(kindStats, metaKey, "", payload, true); err != nil && firstErr == nil {
			firstErr = err
		}
	} else if firstErr == nil {
		firstErr = err
	}
	if payload, err := json.Marshal(epochs); err == nil {
		if err := rt.pstore.Put(kindEpochs, metaKey, "", payload, true); err != nil && firstErr == nil {
			firstErr = err
		}
	} else if firstErr == nil {
		firstErr = err
	}
	if err := rt.pstore.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		rt.pctr.Errors++
		return firstErr
	}
	rt.pctr.Snapshots++
	return nil
}

// persistEpochs makes one epoch bump durable, synchronously: by the
// time bumpComponent returns, a crash-and-reopen can no longer serve
// relations cached under the pre-bump epochs, even if their tombstones
// were lost — the warm-load stamp check rejects them against the
// persisted (bumped) epoch table. Best-effort: persistence failures
// degrade to in-memory-only invalidation, which is already correct
// within this process's lifetime.
func (rt *Runtime) persistEpochs() {
	epochs := rt.TableEpochs()
	rt.persistMu.Lock()
	defer rt.persistMu.Unlock()
	if rt.pstore == nil {
		return
	}
	payload, err := json.Marshal(epochs)
	if err == nil {
		err = rt.pstore.Put(kindEpochs, metaKey, "", payload, true)
	}
	if err == nil {
		err = rt.pstore.Sync()
	}
	if err != nil {
		rt.pctr.Errors++
	}
}

// CloseStore drains the durable tier on graceful shutdown: it stops the
// snapshot ticker, detaches the sink, flushes, compacts the segment log
// to its live set, and closes the store. The runtime keeps running
// in-memory-only afterwards. No-op without an open store.
func (rt *Runtime) CloseStore() error {
	rt.persistMu.Lock()
	stop, done := rt.snapStop, rt.snapDone
	rt.snapStop, rt.snapDone = nil, nil
	rt.persistMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	if rt.resultCache != nil {
		rt.resultCache.SetSink(nil)
	}
	err := rt.FlushStore()

	rt.persistMu.Lock()
	defer rt.persistMu.Unlock()
	if rt.pstore == nil {
		return err
	}
	if cerr := rt.pstore.Compact(); cerr != nil && err == nil {
		err = cerr
	}
	rt.pctr.Store = rt.pstore.Counters()
	if cerr := rt.pstore.Close(); cerr != nil && err == nil {
		err = cerr
	}
	rt.pstore = nil
	return err
}

// Persistence snapshots the durable tier's counters (zero value when no
// store was ever opened; frozen at their final values after CloseStore).
func (rt *Runtime) Persistence() PersistCounters {
	rt.persistMu.Lock()
	defer rt.persistMu.Unlock()
	ctr := rt.pctr
	if rt.pstore != nil {
		ctr.Store = rt.pstore.Counters()
	}
	return ctr
}

// runtimeSink mirrors result-cache residency changes to the durable
// store. Hooks arrive outside the cache mutex; persistMu is the only
// lock taken. Relation appends are not fsynced per Put — losing the
// most recent relations in a crash only costs re-paying their prompts —
// while drops follow the cache's correctness decisions and rely on
// FlushStore/persistEpochs for durability ordering (see bumpComponent).
type runtimeSink struct{ rt *Runtime }

func (s runtimeSink) StoreEntry(key rescache.Key, e *rescache.Entry) {
	payload, err := encodeEntry(key, e)
	s.rt.persistMu.Lock()
	defer s.rt.persistMu.Unlock()
	if s.rt.pstore == nil {
		return
	}
	if err == nil {
		err = s.rt.pstore.Put(kindRel, relKey(key.Fingerprint), key.Stamp, payload, false)
	}
	if err != nil {
		s.rt.pctr.Errors++
	}
}

func (s runtimeSink) DropEntry(key rescache.Key) {
	s.rt.persistMu.Lock()
	defer s.rt.persistMu.Unlock()
	if s.rt.pstore == nil {
		return
	}
	// Drop only the stamp generation the cache dropped: a fresher entry
	// persisted under the same fingerprint (re-executed after a bump)
	// must survive a lagging drop of its stale predecessor.
	k := relKey(key.Fingerprint)
	if rec, ok := s.rt.pstore.Get(kindRel, k); ok && rec.Stamp == key.Stamp {
		if err := s.rt.pstore.Delete(kindRel, k); err != nil {
			s.rt.pctr.Errors++
		}
	}
}
