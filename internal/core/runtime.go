package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/llm"
	"repro/internal/logical"
	"repro/internal/memdb"
	"repro/internal/optimizer"
	"repro/internal/prompt"
	"repro/internal/rescache"
	"repro/internal/schema"
	"repro/internal/store"
)

// Runtime is the process-wide, concurrency-safe tier of the engine: the
// stateful pieces every query shares, mirroring the classic DBMS split
// between a database and the sessions over it. It owns
//
//   - the LLM client registry (the primary model the table bindings
//     resolve against),
//   - the table bindings themselves (LLM-side schema plus the optional
//     relational store), guarded for concurrent Bind/Resolve,
//   - the prompt cache, shared so repeated traffic across queries and
//     across sessions reuses completions,
//   - the optimizer statistics, refined by every executed query and
//     consulted by every planner, and
//   - the engine-global llm.Scheduler: one bounded worker pool per model
//     endpoint, alive for the runtime's lifetime, fair-sharing its
//     budget across all in-flight queries.
//
// Queries never run on the Runtime directly: NewSession opens a cheap
// per-query/per-connection Session on top. A Runtime is safe for any
// number of concurrent sessions.
type Runtime struct {
	// registry is the named-backend set this runtime routes prompts
	// over. A single-client runtime (NewRuntime) holds an implicit
	// one-backend registry named after the client; a multi-backend
	// runtime (NewRuntimeWithBackends) declares backends, routes and
	// failover chains explicitly.
	registry *llm.Registry
	// routed reports whether backends were declared explicitly — only
	// then does the optimizer price plans per backend and EXPLAIN
	// annotate routes; an implicit registry reproduces single-client
	// behavior bit for bit.
	routed  bool
	opts    Options
	builder *prompt.Builder
	// cache is the runtime-level prompt cache (nil when disabled): the
	// shared stateful tier between the executor and the model, persistent
	// across queries and sessions.
	cache *llm.Cache
	// resultCache is the relation-level result cache (nil when
	// disabled): whole query results keyed by plan fingerprint + the
	// per-table epoch stamp of the bindings the plan reads, shared
	// across sessions so repeated identical traffic skips planning and
	// execution entirely, and subsumed traffic skips the prompts.
	resultCache *rescache.Cache
	// epochMu guards compEpochs: one binding epoch per invalidation
	// component ("llm:<table>" per LLM binding, "db" for the attached
	// store). Any operation that can change what a query observes —
	// BindLLMTable, AttachDB, PrimeTableKeys — bumps the component it
	// touches, invalidating exactly the results that read it; entries
	// over other tables survive. Statistics refined passively by
	// executed queries do NOT bump anything: they steer plan choice,
	// and the differential harness pins all candidate plans
	// result-identical.
	//
	// Lock order: the result cache validates inserts by calling
	// stampFor while holding its own mutex, so epochMu is always
	// acquired after (never around) the cache lock; bumpComponent
	// writes the epoch first and only then — with no lock held —
	// invalidates, which is what makes a stale straddling insert
	// impossible: either it re-reads the bumped stamp and drops
	// itself, or it lands early enough for the invalidation scan to
	// remove it.
	epochMu    sync.Mutex
	compEpochs map[string]uint64
	// epochTotal counts bumps across all components — the monotone
	// "something changed" counter /stats exposes.
	epochTotal atomic.Uint64
	// stats feed the cost-based optimizer: table cardinalities, page
	// sizes and predicate selectivities, starting from defaults and
	// refined from the per-operator counters of every executed query.
	// Concurrency-safe; sessions observe into it concurrently.
	stats *optimizer.Statistics
	// sched is the engine-global prompt scheduler (nil when the runtime
	// default is stop-and-go execution and no session asks otherwise —
	// see scheduler()).
	schedOnce sync.Once
	sched     *llm.Scheduler

	// mu guards the table bindings and the attached store: BindLLMTable /
	// AttachDB write, concurrent session planners read through
	// ResolveTable.
	mu      sync.RWMutex
	llmDefs map[string]*schema.TableDef
	db      *memdb.DB

	// persistMu guards the durable tier (nil pstore = persistence off).
	// It is a leaf below the result-cache mutex and epochMu: sink hooks
	// and flushes acquire it only with no other runtime lock held, and
	// nothing under it calls back into the cache or the epoch table.
	persistMu sync.Mutex
	pstore    *store.Store
	pctr      PersistCounters
	snapStop  chan struct{}
	snapDone  chan struct{}
}

// NewRuntime builds the shared runtime tier over the given LLM client.
// opts become the default options of every session opened on it;
// runtime-tier settings (CacheEnabled/CacheSize, BatchWorkers as the
// shared scheduler's per-endpoint budget) are fixed here. The client
// becomes the sole backend of an implicit registry under its own name;
// runtimes routing across several models use NewRuntimeWithBackends.
// A nil client yields an empty registry: DB-only plans run, LLM-bound
// operators fail at Open exactly as before.
func NewRuntime(client llm.Client, opts Options) *Runtime {
	var defs []BackendDef
	if client != nil {
		defs = []BackendDef{{Name: client.Name(), Client: client}}
	}
	rt, err := newRuntimeBackends(defs, "", nil, opts)
	if err != nil {
		// Unreachable: at most one backend, no routes, no fallbacks.
		panic(fmt.Sprintf("core: implicit registry: %v", err))
	}
	rt.routed = false
	return rt
}

// BackendDef declares one named model backend for a multi-backend
// runtime: the transport, the scheduler worker budget, the optimizer's
// pricing coefficients and the failover chain.
type BackendDef struct {
	// Name is the backend's identity: routes, table pins, fallback
	// chains, scheduler pools and error attribution all use it.
	Name string
	// Client is the raw transport. The runtime wraps it in its own
	// ResilientClient (independent breaker, retry budget) unless
	// resilience is off or the caller pre-wrapped it.
	Client llm.Client
	// Workers overrides the shared scheduler's per-endpoint worker
	// budget for this backend (0 = the runtime default).
	Workers int
	// CostWeight is the relative price per prompt the optimizer charges
	// plans routing to this backend (0 = 1.0).
	CostWeight float64
	// SpeedFactor scales the backend's estimated per-prompt latency in
	// plan pricing (0 = 1.0; below 1 is faster).
	SpeedFactor float64
	// Fallback names the backends calls fail over to, in order, when
	// this backend sheds or exhausts a call.
	Fallback []string
}

// NewRuntimeWithBackends builds a runtime routing prompts across named
// backends. defaultName selects the backend unrouted roles use (""
// means the first declared); routes binds prompt roles ("keyscan",
// "fetch", "filter", "verify") to backends runtime-wide, with
// per-table pins (schema.TableDef.Backend) and per-session overrides
// (Options.Routes) layering on top.
func NewRuntimeWithBackends(defs []BackendDef, defaultName string, routes map[string]string, opts Options) (*Runtime, error) {
	if len(defs) == 0 {
		return nil, fmt.Errorf("core: no backends declared")
	}
	return newRuntimeBackends(defs, defaultName, routes, opts)
}

// newRuntimeBackends is the shared runtime constructor. An empty defs
// slice (the implicit nil-client path) builds an empty registry and
// skips validation; explicit construction requires at least one
// backend.
func newRuntimeBackends(defs []BackendDef, defaultName string, routes map[string]string, opts Options) (*Runtime, error) {
	opts.normalize()
	wrap := func(inner llm.Client, endpoint string) llm.Client {
		if !opts.Resilient {
			return inner
		}
		// Never re-wrap: the chaos bench hands in a pre-built
		// ResilientClient to control its test seams (fake clock, instant
		// sleep), and double-wrapping would hide its breaker from the
		// health surfaces.
		if _, ok := inner.(*llm.ResilientClient); ok {
			return inner
		}
		cfg := opts.resilientConfig()
		cfg.Endpoint = endpoint
		return llm.NewResilient(inner, cfg)
	}
	registry := llm.NewRegistry(wrap)
	for _, def := range defs {
		if _, err := registry.Add(llm.BackendSpec{
			Name:        def.Name,
			Client:      def.Client,
			Workers:     def.Workers,
			CostWeight:  def.CostWeight,
			SpeedFactor: def.SpeedFactor,
			Fallback:    def.Fallback,
		}); err != nil {
			return nil, err
		}
	}
	if defaultName != "" {
		if err := registry.SetDefault(defaultName); err != nil {
			return nil, err
		}
	}
	for roleName, backend := range routes {
		role, err := llm.ParseRole(roleName)
		if err != nil {
			return nil, err
		}
		if err := registry.SetRoute(role, backend); err != nil {
			return nil, err
		}
	}
	if len(defs) > 0 {
		if err := registry.Validate(); err != nil {
			return nil, err
		}
	}
	rt := &Runtime{
		registry:   registry,
		routed:     true,
		llmDefs:    map[string]*schema.TableDef{},
		compEpochs: map[string]uint64{},
		opts:       opts,
		builder:    prompt.NewBuilder(),
		stats:      optimizer.NewStatistics(),
	}
	if opts.CacheEnabled {
		rt.cache = llm.NewCache(opts.CacheSize)
	}
	if opts.ResultCacheEnabled {
		rt.resultCache = rescache.New(rescache.Config{
			Capacity:     opts.ResultCacheSize,
			MaxBytes:     opts.ResultCacheBytes,
			CurrentStamp: rt.stampFor,
		})
	}
	return rt, nil
}

// Epoch returns the total number of binding-epoch bumps across all
// components — the monotone change counter /stats exposes. Cache keys
// carry the finer per-component stamp (stampFor), not this total.
func (rt *Runtime) Epoch() uint64 { return rt.epochTotal.Load() }

// TableEpochs snapshots the per-component binding epochs ("llm:<table>"
// per LLM binding, "db" for the attached store).
func (rt *Runtime) TableEpochs() map[string]uint64 {
	rt.epochMu.Lock()
	defer rt.epochMu.Unlock()
	out := make(map[string]uint64, len(rt.compEpochs))
	for k, v := range rt.compEpochs {
		out[k] = v
	}
	return out
}

// bumpComponent advances one component's binding epoch and eagerly
// evicts the results that read it. The epoch write strictly precedes the
// invalidation (see the epochMu lock-order note).
func (rt *Runtime) bumpComponent(comp string) {
	rt.epochMu.Lock()
	rt.compEpochs[comp]++
	rt.epochMu.Unlock()
	rt.epochTotal.Add(1)
	if rt.resultCache != nil {
		rt.resultCache.InvalidateComponent(comp)
	}
	// Make the bump durable last, after the in-memory invalidation has
	// already tombstoned the stale relations through the sink. Even if
	// the process dies between the tombstones and this write, reopening
	// replays the un-bumped epochs against un-dropped entries — merely
	// the pre-bump state, still self-consistent. The dangerous ordering
	// would be the reverse: durable entries outliving a durable bump is
	// exactly what the stamp check on warm load rejects.
	rt.persistEpochs()
}

// stampFor serializes the current epochs of exactly the given components
// (which logical.Components returns sorted) into the stamp result-cache
// keys carry.
func (rt *Runtime) stampFor(tables []string) string {
	comps := append([]string(nil), tables...)
	sort.Strings(comps)
	rt.epochMu.Lock()
	defer rt.epochMu.Unlock()
	var b strings.Builder
	for _, t := range comps {
		fmt.Fprintf(&b, "%s=%d;", t, rt.compEpochs[t])
	}
	return b.String()
}

// ResultCacheStats reports the runtime-lifetime result-cache counters
// (zero value when the result cache is disabled).
func (rt *Runtime) ResultCacheStats() rescache.Stats {
	if rt.resultCache == nil {
		return rescache.Stats{}
	}
	return rt.resultCache.Stats()
}

// NewSession opens a lightweight per-query session carrying the
// runtime's default options. Sessions are cheap (no pools, no maps) and
// any number may run queries concurrently against one runtime.
func (rt *Runtime) NewSession() *Session {
	return &Session{rt: rt, opts: rt.opts}
}

// Engine wraps this runtime and a fresh default session in the
// single-caller convenience bundle.
func (rt *Runtime) Engine() *Engine {
	return &Engine{rt: rt, sess: rt.NewSession()}
}

// Options returns the runtime's session defaults.
func (rt *Runtime) Options() Options { return rt.opts }

// scheduler returns the engine-global prompt scheduler, creating it on
// first use. It lives for the runtime's lifetime: every pipelined query
// of every session shares its per-endpoint worker budget.
func (rt *Runtime) scheduler() *llm.Scheduler {
	rt.schedOnce.Do(func() {
		rt.sched = llm.NewScheduler(rt.cache, rt.opts.BatchWorkers)
		// Declared per-backend worker budgets override the shared
		// default for their endpoint's pool.
		for _, b := range rt.registry.Backends() {
			if b.Workers() > 0 {
				rt.sched.SetEndpointWorkers(b.Name(), b.Workers())
			}
		}
	})
	return rt.sched
}

// SchedulerGauges snapshots the shared scheduler's dispatch state:
// per-class queued/busy counts and cumulative deficit-scheduler drain
// counters. The observability feed for galois-serve /stats and the
// queue-depth signal its adaptive admission controller samples.
func (rt *Runtime) SchedulerGauges() llm.SchedulerGauges {
	return rt.scheduler().Gauges()
}

// Statistics exposes the planner's statistics store (never nil).
func (rt *Runtime) Statistics() *optimizer.Statistics { return rt.stats }

// Client exposes the runtime's default backend (its calls traverse that
// backend's resilient transport when resilience is on). Nil when the
// runtime was built without a client.
func (rt *Runtime) Client() llm.Client {
	if b := rt.registry.Default(); b != nil {
		return b
	}
	return nil
}

// Registry exposes the runtime's named-backend set.
func (rt *Runtime) Registry() *llm.Registry { return rt.registry }

// Routed reports whether backends were declared explicitly — the
// configuration under which the optimizer prices plans per backend and
// EXPLAIN annotates routes.
func (rt *Runtime) Routed() bool { return rt.routed }

// Failovers reports how many prompts failed over to a fallback backend,
// runtime-lifetime.
func (rt *Runtime) Failovers() int64 { return rt.registry.Failovers() }

// tableBackend resolves a table name to its pinned backend ("" when the
// table is unbound or unpinned).
func (rt *Runtime) tableBackend(name string) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if def := rt.llmDefs[strings.ToLower(name)]; def != nil {
		return def.Backend
	}
	return ""
}

// EndpointHealth is one model endpoint's resilience snapshot: breaker
// position plus lifetime fault-recovery counters. Serve's /healthz and
// /stats render these.
type EndpointHealth struct {
	Endpoint string                 `json:"endpoint"`
	Breaker  string                 `json:"breaker"`
	Counters llm.ResilienceCounters `json:"counters"`
}

// ResilienceHealth snapshots every resilient endpoint the runtime
// manages — declared backends plus adopted session verifiers — sorted
// by endpoint name. Empty when resilience is off.
func (rt *Runtime) ResilienceHealth() []EndpointHealth {
	var out []EndpointHealth
	for _, b := range rt.registry.All() {
		rc, ok := b.Resilience()
		if !ok {
			continue
		}
		out = append(out, EndpointHealth{Endpoint: b.Name(), Breaker: rc.State().String(), Counters: rc.Counters()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// BackendStatus is one backend's /stats row: routing metadata plus
// lifetime traffic and resilience state.
type BackendStatus struct {
	Name        string                 `json:"name"`
	Model       string                 `json:"model"`
	Default     bool                   `json:"default,omitempty"`
	Workers     int                    `json:"workers,omitempty"`
	CostWeight  float64                `json:"cost_weight"`
	SpeedFactor float64                `json:"speed_factor"`
	Fallback    []string               `json:"fallback,omitempty"`
	Prompts     int64                  `json:"prompts"`
	Breaker     string                 `json:"breaker,omitempty"`
	Counters    llm.ResilienceCounters `json:"counters"`
}

// BackendStatuses snapshots every backend the runtime routes over, in
// declaration order (adopted verifier backends follow, sorted by name).
func (rt *Runtime) BackendStatuses() []BackendStatus {
	def := rt.registry.Default()
	var out []BackendStatus
	for _, b := range rt.registry.All() {
		st := BackendStatus{
			Name:        b.Name(),
			Model:       b.Raw().Name(),
			Default:     b == def,
			Workers:     b.Workers(),
			CostWeight:  b.CostWeight(),
			SpeedFactor: b.SpeedFactor(),
			Fallback:    b.Fallback(),
			Prompts:     b.Prompts(),
		}
		if rc, ok := b.Resilience(); ok {
			st.Breaker = rc.State().String()
			st.Counters = rc.Counters()
		}
		out = append(out, st)
	}
	return out
}

// PrimeTableKeys seeds the planner's cardinality estimate for one table
// — the engine's ANALYZE equivalent for operators who know their data's
// scale before the first query runs.
func (rt *Runtime) PrimeTableKeys(table string, keys int) {
	rt.stats.SetTableKeys(table, keys)
	// Primed statistics can redirect plan choice wholesale (unlike the
	// passive per-query refinement), so treat ANALYZE as a state change
	// for that table: results reading it are no longer served. Priming
	// targets LLM tables (DB cardinalities are known exactly), so the
	// LLM component is the one bumped.
	rt.bumpComponent(logical.ComponentLLM(table))
}

// CacheStats reports the runtime-lifetime prompt-cache counters (zero
// value when the cache is disabled).
func (rt *Runtime) CacheStats() llm.CacheStats {
	if rt.cache == nil {
		return llm.CacheStats{}
	}
	return rt.cache.Stats()
}

// AttachDB connects a relational store for DB-bound (and hybrid) queries.
func (rt *Runtime) AttachDB(db *memdb.DB) {
	rt.mu.Lock()
	rt.db = db
	rt.mu.Unlock()
	rt.bumpComponent(logical.ComponentDB)
}

// BindLLMTable declares a relation whose tuples live in the LLM. The
// definition supplies the schema and the single-attribute key the paper
// assumes (Section 3). Safe to call concurrently with running queries:
// bindings are guarded, and a query planned before the bind simply does
// not see the new table.
func (rt *Runtime) BindLLMTable(def *schema.TableDef) error {
	if def.KeyIndex() < 0 {
		return fmt.Errorf("core: table %s: key column %q not in schema", def.Name, def.KeyColumn)
	}
	if def.Backend != "" {
		if _, ok := rt.registry.Get(def.Backend); !ok {
			return fmt.Errorf("core: table %s: pinned backend %q not declared", def.Name, def.Backend)
		}
	}
	rt.mu.Lock()
	rt.llmDefs[strings.ToLower(def.Name)] = def
	rt.mu.Unlock()
	rt.bumpComponent(logical.ComponentLLM(def.Name))
	return nil
}

// ResolveTable implements logical.Resolver with the runtime's default
// source. Sessions resolve through their own Session.ResolveTable so a
// per-session DefaultSource override takes effect.
func (rt *Runtime) ResolveTable(name, explicit string) (*schema.TableDef, string, error) {
	return rt.resolveTable(name, explicit, rt.opts.DefaultSource)
}

// resolveTable resolves one table reference. Explicit LLM./DB.
// qualifiers win; otherwise defaultSource breaks ties between an LLM
// binding and a DB table of the same name.
func (rt *Runtime) resolveTable(name, explicit, defaultSource string) (*schema.TableDef, string, error) {
	rt.mu.RLock()
	llmDef := rt.llmDefs[strings.ToLower(name)]
	db := rt.db
	rt.mu.RUnlock()
	var dbDef *schema.TableDef
	if db != nil {
		dbDef = db.Table(name)
	}
	switch explicit {
	case "LLM":
		if llmDef == nil {
			return nil, "", fmt.Errorf("core: no LLM binding for table %s", name)
		}
		return llmDef, "LLM", nil
	case "DB":
		if dbDef == nil {
			return nil, "", fmt.Errorf("core: no DB table %s", name)
		}
		return dbDef, "DB", nil
	}
	switch {
	case llmDef != nil && dbDef != nil:
		if defaultSource == "DB" {
			return dbDef, "DB", nil
		}
		return llmDef, "LLM", nil
	case llmDef != nil:
		return llmDef, "LLM", nil
	case dbDef != nil:
		return dbDef, "DB", nil
	default:
		return nil, "", fmt.Errorf("core: unknown table %s", name)
	}
}

// database returns the attached relational store (nil when none).
func (rt *Runtime) database() *memdb.DB {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.db
}
