package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/llm"
	"repro/internal/memdb"
	"repro/internal/optimizer"
	"repro/internal/prompt"
	"repro/internal/rescache"
	"repro/internal/schema"
)

// Runtime is the process-wide, concurrency-safe tier of the engine: the
// stateful pieces every query shares, mirroring the classic DBMS split
// between a database and the sessions over it. It owns
//
//   - the LLM client registry (the primary model the table bindings
//     resolve against),
//   - the table bindings themselves (LLM-side schema plus the optional
//     relational store), guarded for concurrent Bind/Resolve,
//   - the prompt cache, shared so repeated traffic across queries and
//     across sessions reuses completions,
//   - the optimizer statistics, refined by every executed query and
//     consulted by every planner, and
//   - the engine-global llm.Scheduler: one bounded worker pool per model
//     endpoint, alive for the runtime's lifetime, fair-sharing its
//     budget across all in-flight queries.
//
// Queries never run on the Runtime directly: NewSession opens a cheap
// per-query/per-connection Session on top. A Runtime is safe for any
// number of concurrent sessions.
type Runtime struct {
	client  llm.Client
	opts    Options
	builder *prompt.Builder
	// cache is the runtime-level prompt cache (nil when disabled): the
	// shared stateful tier between the executor and the model, persistent
	// across queries and sessions.
	cache *llm.Cache
	// resultCache is the relation-level result cache (nil when
	// disabled): whole query results keyed by plan fingerprint + epoch,
	// shared across sessions so repeated identical traffic skips
	// planning and execution entirely.
	resultCache *rescache.Cache
	// epoch is the binding epoch every result-cache key carries. Any
	// operation that can change what a query observes — BindLLMTable,
	// AttachDB, PrimeTableKeys — bumps it, invalidating every result
	// cached before the change. Statistics refined passively by executed
	// queries do NOT bump it: they steer plan choice, and the
	// differential harness pins all candidate plans result-identical.
	epoch atomic.Uint64
	// stats feed the cost-based optimizer: table cardinalities, page
	// sizes and predicate selectivities, starting from defaults and
	// refined from the per-operator counters of every executed query.
	// Concurrency-safe; sessions observe into it concurrently.
	stats *optimizer.Statistics
	// sched is the engine-global prompt scheduler (nil when the runtime
	// default is stop-and-go execution and no session asks otherwise —
	// see scheduler()).
	schedOnce sync.Once
	sched     *llm.Scheduler

	// mu guards the table bindings and the attached store: BindLLMTable /
	// AttachDB write, concurrent session planners read through
	// ResolveTable.
	mu      sync.RWMutex
	llmDefs map[string]*schema.TableDef
	db      *memdb.DB
}

// NewRuntime builds the shared runtime tier over the given LLM client.
// opts become the default options of every session opened on it;
// runtime-tier settings (CacheEnabled/CacheSize, BatchWorkers as the
// shared scheduler's per-endpoint budget) are fixed here.
func NewRuntime(client llm.Client, opts Options) *Runtime {
	opts.normalize()
	rt := &Runtime{
		client:  client,
		llmDefs: map[string]*schema.TableDef{},
		opts:    opts,
		builder: prompt.NewBuilder(),
		stats:   optimizer.NewStatistics(),
	}
	if opts.CacheEnabled {
		rt.cache = llm.NewCache(opts.CacheSize)
	}
	if opts.ResultCacheEnabled {
		rt.resultCache = rescache.New(opts.ResultCacheSize)
	}
	return rt
}

// Epoch returns the runtime's current binding epoch — the invalidation
// counter every result-cache key carries.
func (rt *Runtime) Epoch() uint64 { return rt.epoch.Load() }

// bumpEpoch advances the binding epoch and eagerly evicts every result
// cached under an older one.
func (rt *Runtime) bumpEpoch() {
	e := rt.epoch.Add(1)
	if rt.resultCache != nil {
		rt.resultCache.EvictEpochsBelow(e)
	}
}

// ResultCacheStats reports the runtime-lifetime result-cache counters
// (zero value when the result cache is disabled).
func (rt *Runtime) ResultCacheStats() rescache.Stats {
	if rt.resultCache == nil {
		return rescache.Stats{}
	}
	return rt.resultCache.Stats()
}

// NewSession opens a lightweight per-query session carrying the
// runtime's default options. Sessions are cheap (no pools, no maps) and
// any number may run queries concurrently against one runtime.
func (rt *Runtime) NewSession() *Session {
	return &Session{rt: rt, opts: rt.opts}
}

// Engine wraps this runtime and a fresh default session in the
// single-caller convenience bundle.
func (rt *Runtime) Engine() *Engine {
	return &Engine{rt: rt, sess: rt.NewSession()}
}

// Options returns the runtime's session defaults.
func (rt *Runtime) Options() Options { return rt.opts }

// scheduler returns the engine-global prompt scheduler, creating it on
// first use. It lives for the runtime's lifetime: every pipelined query
// of every session shares its per-endpoint worker budget.
func (rt *Runtime) scheduler() *llm.Scheduler {
	rt.schedOnce.Do(func() {
		rt.sched = llm.NewScheduler(rt.cache, rt.opts.BatchWorkers)
	})
	return rt.sched
}

// Statistics exposes the planner's statistics store (never nil).
func (rt *Runtime) Statistics() *optimizer.Statistics { return rt.stats }

// PrimeTableKeys seeds the planner's cardinality estimate for one table
// — the engine's ANALYZE equivalent for operators who know their data's
// scale before the first query runs.
func (rt *Runtime) PrimeTableKeys(table string, keys int) {
	rt.stats.SetTableKeys(table, keys)
	// Primed statistics can redirect plan choice wholesale (unlike the
	// passive per-query refinement), so treat ANALYZE as a state change:
	// results cached before it are no longer served.
	rt.bumpEpoch()
}

// CacheStats reports the runtime-lifetime prompt-cache counters (zero
// value when the cache is disabled).
func (rt *Runtime) CacheStats() llm.CacheStats {
	if rt.cache == nil {
		return llm.CacheStats{}
	}
	return rt.cache.Stats()
}

// AttachDB connects a relational store for DB-bound (and hybrid) queries.
func (rt *Runtime) AttachDB(db *memdb.DB) {
	rt.mu.Lock()
	rt.db = db
	rt.mu.Unlock()
	rt.bumpEpoch()
}

// BindLLMTable declares a relation whose tuples live in the LLM. The
// definition supplies the schema and the single-attribute key the paper
// assumes (Section 3). Safe to call concurrently with running queries:
// bindings are guarded, and a query planned before the bind simply does
// not see the new table.
func (rt *Runtime) BindLLMTable(def *schema.TableDef) error {
	if def.KeyIndex() < 0 {
		return fmt.Errorf("core: table %s: key column %q not in schema", def.Name, def.KeyColumn)
	}
	rt.mu.Lock()
	rt.llmDefs[strings.ToLower(def.Name)] = def
	rt.mu.Unlock()
	rt.bumpEpoch()
	return nil
}

// ResolveTable implements logical.Resolver with the runtime's default
// source. Sessions resolve through their own Session.ResolveTable so a
// per-session DefaultSource override takes effect.
func (rt *Runtime) ResolveTable(name, explicit string) (*schema.TableDef, string, error) {
	return rt.resolveTable(name, explicit, rt.opts.DefaultSource)
}

// resolveTable resolves one table reference. Explicit LLM./DB.
// qualifiers win; otherwise defaultSource breaks ties between an LLM
// binding and a DB table of the same name.
func (rt *Runtime) resolveTable(name, explicit, defaultSource string) (*schema.TableDef, string, error) {
	rt.mu.RLock()
	llmDef := rt.llmDefs[strings.ToLower(name)]
	db := rt.db
	rt.mu.RUnlock()
	var dbDef *schema.TableDef
	if db != nil {
		dbDef = db.Table(name)
	}
	switch explicit {
	case "LLM":
		if llmDef == nil {
			return nil, "", fmt.Errorf("core: no LLM binding for table %s", name)
		}
		return llmDef, "LLM", nil
	case "DB":
		if dbDef == nil {
			return nil, "", fmt.Errorf("core: no DB table %s", name)
		}
		return dbDef, "DB", nil
	}
	switch {
	case llmDef != nil && dbDef != nil:
		if defaultSource == "DB" {
			return dbDef, "DB", nil
		}
		return llmDef, "LLM", nil
	case llmDef != nil:
		return llmDef, "LLM", nil
	case dbDef != nil:
		return dbDef, "DB", nil
	default:
		return nil, "", fmt.Errorf("core: unknown table %s", name)
	}
}

// database returns the attached relational store (nil when none).
func (rt *Runtime) database() *memdb.DB {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.db
}
