package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/clean"
	"repro/internal/llm"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/rescache"
	"repro/internal/schema"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
	"repro/internal/value"
)

// Session is the lightweight per-query (or per-connection) tier over a
// shared Runtime: it carries the query options, accumulates per-session
// metrics, and holds nothing heavier — the model endpoints, the prompt
// cache, the optimizer statistics and the global scheduler all live in
// the Runtime. Open one with Runtime.NewSession.
//
// A Session is safe for concurrent use, but its unit of isolation is the
// query: each Query call plans and executes independently, opening its
// own tenant on the shared scheduler so accounting, cancellation and
// fair-share attribution stay exact per query.
type Session struct {
	rt *Runtime
	// opts are this session's options, seeded from the runtime defaults.
	// Mutate via SetOptions before issuing queries.
	opts Options

	mu      sync.Mutex
	queries int
	totals  llm.Stats
}

// Runtime returns the shared tier this session runs on.
func (s *Session) Runtime() *Runtime { return s.rt }

// Options returns the session's current options.
func (s *Session) Options() Options { return s.opts }

// SetOptions replaces the session's per-query options (plan rewrites,
// cleaning, verifier, pipelining). Runtime-tier settings — the prompt
// cache and the shared scheduler's worker budget — are fixed at
// NewRuntime and ignored here. Not safe concurrently with Query.
func (s *Session) SetOptions(opts Options) {
	opts.normalize()
	s.opts = opts
}

// SessionStats summarize a session's lifetime usage.
type SessionStats struct {
	Queries int
	Totals  llm.Stats
}

// Stats returns the session-lifetime counters: queries executed and the
// summed LLM usage across them.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStats{Queries: s.queries, Totals: s.totals}
}

// Plan parses, plans and optimizes a query, returning the lowered logical
// plan (what EXPLAIN shows). Under a cost-based configuration this is the
// cheapest enumerated candidate.
func (s *Session) Plan(sql string) (logical.Node, error) {
	sel, err := parser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	plan, _, err := s.planSelect(sel)
	return plan, err
}

// ResolveTable implements logical.Resolver over the shared bindings with
// this session's DefaultSource breaking LLM-vs-DB ties.
func (s *Session) ResolveTable(name, explicit string) (*schema.TableDef, string, error) {
	return s.rt.resolveTable(name, explicit, s.opts.DefaultSource)
}

// planSelect builds and optimizes the plan for one SELECT, returning the
// planner's cost prediction alongside it. With CostBased on, candidates
// are enumerated and the cheapest wins; otherwise the fixed heuristics
// apply and the estimate prices the resulting single plan.
func (s *Session) planSelect(sel *ast.Select) (logical.Node, *optimizer.PlanCost, error) {
	return s.planSelectExtras(sel, nil, nil)
}

// planSelectFrom is planSelect with an optional pre-built plan consumed
// by the factory's first call (candidate enumeration still rebuilds for
// every further candidate, since optimization mutates its input).
func (s *Session) planSelectFrom(sel *ast.Select, built logical.Node) (logical.Node, *optimizer.PlanCost, error) {
	return s.planSelectExtras(sel, built, nil)
}

// planSelectExtras is the planner entry point: fresh candidates (one
// under the fixed heuristics, an enumeration under CostBased) compete
// against any pre-built residual plans over cached relations. The extras
// are priced with the same Estimate and win only when strictly cheaper,
// so cache answering is a plan-choice decision, not a bypass.
func (s *Session) planSelectExtras(sel *ast.Select, built logical.Node, extras []optimizer.ExtraPlan) (logical.Node, *optimizer.PlanCost, error) {
	factory := func() (logical.Node, error) {
		if built != nil {
			plan := built
			built = nil
			return plan, nil
		}
		return logical.Build(sel, s)
	}
	// Price plans with the worker budget that will actually apply: the
	// runtime scheduler's shared per-endpoint budget in pipelined mode,
	// the session's batch fan-out in stop-and-go mode.
	workers := s.opts.BatchWorkers
	if s.opts.Pipelined {
		workers = s.rt.opts.BatchWorkers
	}
	// On a multi-backend runtime, plans are priced against the backend
	// each operator role routes to (session overrides included); the
	// single-backend estimate stays unpriced and byte-identical.
	overrides, err := s.routeOverrides()
	if err != nil {
		return nil, nil, err
	}
	router := s.rt.registry.Router(overrides)
	params := optimizer.CostParams{
		Workers:  workers,
		Verifier: s.verifyEnabled(overrides),
		Price:    s.priceFor(router),
	}
	if s.opts.Optimizer.CostBased {
		plan, cost, _, err := optimizer.ChooseBestExtra(factory, s.opts.Optimizer, s.rt.stats, params, extras)
		return plan, cost, err
	}
	plan, err := factory()
	if err != nil {
		return nil, nil, err
	}
	plan, err = optimizer.Optimize(plan, s.opts.Optimizer)
	if err != nil {
		return nil, nil, err
	}
	cost := optimizer.Estimate(plan, s.rt.stats, params)
	for _, ex := range extras {
		exCost := optimizer.Estimate(ex.Plan, s.rt.stats, params)
		if optimizer.Cheaper(exCost, cost) {
			plan, cost = ex.Plan, exCost
			cost.Choice = ex.Label
		}
	}
	if len(extras) > 0 {
		cost.Candidates = 1 + len(extras)
	}
	return plan, cost, nil
}

// Explain renders the optimized plan as an indented tree.
func (s *Session) Explain(sql string) (string, error) {
	plan, err := s.Plan(sql)
	if err != nil {
		return "", err
	}
	return logical.Explain(plan), nil
}

// CacheOutcome reports how the result cache participated in one query.
type CacheOutcome string

const (
	// CacheNone: the query executed against the base tables.
	CacheNone CacheOutcome = ""
	// CacheExact: the relation was served verbatim from the cache (or a
	// concurrent identical in-flight execution).
	CacheExact CacheOutcome = "exact"
	// CacheSubsumed: the relation was computed by a residual plan over a
	// cached relation whose producing plan subsumes this query — zero
	// prompts, local evaluation only.
	CacheSubsumed CacheOutcome = "subsumed"
)

// Report summarizes one query execution.
type Report struct {
	Stats llm.Stats
	Plan  string
	// Estimate is the planner's cost prediction for the executed plan.
	Estimate *optimizer.PlanCost
	// Metrics hold the per-operator actual prompt/row counters (nil for
	// pure EXPLAIN, which does not execute).
	Metrics *physical.Metrics
	// Sched is the query's simulated-latency accounting on the shared
	// scheduler (critical path, per-endpoint work) — nil for stop-and-go
	// execution. Concurrency benchmarks aggregate these across queries
	// with llm.AggregateMakespan.
	Sched *llm.TenantStats
	// Cached reports whether (and how) the runtime's result cache
	// answered the query: CacheExact for a verbatim hit (Plan still
	// holds the plan the populating run executed, Stats all zero),
	// CacheSubsumed for a residual plan evaluated locally over a cached
	// relation (Plan shows the residual plan, Stats all zero).
	Cached CacheOutcome
}

// Query executes sql and returns the result relation plus an execution
// report (prompt counts, simulated latency, the plan used). EXPLAIN and
// EXPLAIN ANALYZE statements return the annotated plan as a one-column
// relation instead of query results.
func (s *Session) Query(ctx context.Context, sql string) (*schema.Relation, *Report, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	switch stmt := stmt.(type) {
	case *ast.Explain:
		return s.runExplain(ctx, stmt)
	case *ast.Select:
		return s.runSelect(ctx, stmt)
	default:
		return nil, nil, fmt.Errorf("core: only SELECT and EXPLAIN statements can be executed")
	}
}

// runSelect executes one SELECT, consulting the runtime's result cache
// when it is on. Truncating statements — LIMIT, and OFFSET even without
// one (the builder lowers both to a Limit node) — are never stored and
// never exact-matched: a truncated relation's content depends on the
// executing plan's row order, so it must never be served as the query's
// one true result — the same observation rule the optimizer statistics
// follow (see observe). They do, however, participate as subsumption
// consumers: a cached LIMIT-free superset relation answers them with a
// local residual evaluation for zero prompts.
func (s *Session) runSelect(ctx context.Context, sel *ast.Select) (*schema.Relation, *Report, error) {
	rc := s.rt.resultCache
	if rc == nil {
		return s.executeSelect(ctx, sel, nil)
	}
	// The cheap logical build (no candidate enumeration, no costing)
	// yields both canonical forms: the flat fingerprint for exact
	// matching and the structured shape for subsumption. The stamp is
	// captured before execution, so a bind landing mid-flight keys this
	// result under the old epochs, where no post-bind lookup can reach
	// it.
	built, err := logical.Build(sel, s)
	if err != nil {
		return nil, nil, err
	}
	shape := logical.Decompose(built)
	comps := logical.Components(built)
	stamp := s.rt.stampFor(comps)
	if sel.Limit >= 0 || sel.Offset > 0 {
		return s.executeShaped(ctx, sel, built, shape, stamp)
	}
	key := rescache.Key{Fingerprint: s.resultFingerprint(built), Stamp: stamp}
	var popRel *schema.Relation
	var popRep *Report
	entry, cached, err := rc.Fetch(ctx, key, func() (*rescache.Entry, error) {
		rel, rep, err := s.executeShaped(ctx, sel, built, shape, stamp)
		if err != nil {
			return nil, err
		}
		popRel, popRep = rel, rep
		e := &rescache.Entry{Rel: rel, Plan: rep.Plan, Tables: comps}
		if shape != nil && shape.Producer && !s.opts.Optimizer.PromptPushdown {
			// Producer-shaped plans (Project over base filters, no
			// hidden columns) retain their decomposition so this entry
			// can answer subsumed queries. Prompt pushdown merges
			// predicates into the retrieval prompts and can change
			// observable results, so pushdown sessions neither produce
			// nor consume subsumption entries.
			e.Prod = &rescache.Producer{
				Opts:      s.optionsFingerprint(),
				FromKey:   shape.FromKey,
				FromLabel: shape.FromLabel,
				Conjuncts: shape.ConjunctTexts(),
			}
		}
		return e, nil
	})
	if err != nil {
		return nil, nil, err
	}
	if !cached {
		// This caller was the singleflight leader: it executed (and
		// populated the cache) and reports its real usage — which may
		// itself have been a subsumption answer.
		return popRel, popRep, nil
	}
	rep := &Report{Plan: entry.Plan, Cached: CacheExact}
	s.account(rep)
	return entry.Rel, rep, nil
}

// executeShaped plans one SELECT with residual plans over cached
// relations competing as candidates, and executes the winner. A residual
// winner whose backing entry was evicted between costing and execution
// falls back to a fresh plan.
func (s *Session) executeShaped(ctx context.Context, sel *ast.Select, built logical.Node, shape *logical.Shape, stamp string) (*schema.Relation, *Report, error) {
	extras := s.residualCandidates(shape, stamp)
	plan, cost, err := s.planSelectExtras(sel, built, extras)
	if err != nil {
		return nil, nil, err
	}
	if cs := logical.FindCachedScan(plan); cs != nil {
		rel, rep, err := s.executeResidual(ctx, plan, cost, cs)
		if !errors.Is(err, errCachedEntryGone) {
			return rel, rep, err
		}
		if plan, cost, err = s.planSelectFrom(sel, nil); err != nil {
			return nil, nil, err
		}
	}
	return s.runPlan(ctx, plan, cost)
}

// executeSelect plans, optimizes and executes one SELECT against the base
// tables, feeding the observed counters back into the shared statistics.
// A non-nil built plan (already constructed for the result-cache
// fingerprint) seeds the planner's first factory call so a cache miss
// does not build twice.
func (s *Session) executeSelect(ctx context.Context, sel *ast.Select, built logical.Node) (*schema.Relation, *Report, error) {
	plan, cost, err := s.planSelectFrom(sel, built)
	if err != nil {
		return nil, nil, err
	}
	return s.runPlan(ctx, plan, cost)
}

// runPlan executes one planned query against the base tables, observing
// its counters into the shared statistics and the session totals.
func (s *Session) runPlan(ctx context.Context, plan logical.Node, cost *optimizer.PlanCost) (*schema.Relation, *Report, error) {
	rel, rep, err := s.execute(ctx, plan)
	if err != nil {
		return nil, nil, err
	}
	rep.Estimate = cost
	s.observe(plan, rep.Metrics)
	s.account(rep)
	return rel, rep, nil
}

// residualCandidates matches the incoming shape against the cache's
// subsumption index and returns one pre-built residual plan per cached
// relation that can answer it: same FROM tree, weaker-or-equal producer
// conjuncts, same result-affecting options, and a residual chain that
// compiles against the producer's output columns. The candidates then
// compete in planSelectExtras on estimated cost.
func (s *Session) residualCandidates(shape *logical.Shape, stamp string) []optimizer.ExtraPlan {
	rc := s.rt.resultCache
	if rc == nil || shape == nil || s.opts.Optimizer.PromptPushdown {
		return nil
	}
	opts := s.optionsFingerprint()
	var extras []optimizer.ExtraPlan
	for _, c := range rc.Candidates(rescache.TablesKey(shape.Tables), stamp) {
		if c.Prod.Opts != opts {
			continue
		}
		residual, ok := logical.Subsumes(shape, c.Prod.FromKey, c.Prod.Conjuncts)
		if !ok {
			continue
		}
		// Residual conjuncts run as plain in-memory comparisons, so every
		// one of them must be a conjunct direct execution also evaluates
		// locally. A predicate the optimizer could lower to a per-key
		// boolean prompt (LLMFilter) is answered by the model's semantic
		// judgment, which need not agree with comparing the fetched
		// attribute value — evaluating it locally would change results.
		// Conjuncts the producer already applied are unaffected: they are
		// matched, not re-evaluated.
		if s.opts.Optimizer.UseLLMFilter && !residualsLocalSafe(residual, shape.From) {
			continue
		}
		cs := logical.NewCachedScan(c.Prod.FromLabel, c.Key.Fingerprint, c.Key.Stamp, c.Rows, c.Schema)
		plan, err := logical.BuildResidual(shape, cs, residual)
		if err != nil {
			continue
		}
		// Column coverage is decided here: the residual compiles exactly
		// when everything the query computes resolves over the columns
		// the producer projected. Rel stays nil for validation; the
		// winning plan re-fetches the relation before execution.
		if _, err := physical.Compile(plan, nil); err != nil {
			continue
		}
		extras = append(extras, optimizer.ExtraPlan{
			Plan:  plan,
			Label: "residual over cached(" + c.Prod.FromLabel + ")",
		})
	}
	return extras
}

// residualsLocalSafe reports whether every residual conjunct is safe to
// evaluate as a local comparison (see optimizer.ResidualLocalSafe).
func residualsLocalSafe(residual []ast.Expr, from logical.Node) bool {
	for _, c := range residual {
		if !optimizer.ResidualLocalSafe(c, from) {
			return false
		}
	}
	return true
}

// errCachedEntryGone reports that a residual plan's backing cache entry
// was evicted between plan choice and execution; the session replans
// fresh.
var errCachedEntryGone = errors.New("core: cached relation evicted")

// executeResidual runs a winning residual plan locally over its cached
// relation: no scheduler tenant, no model client, zero prompts. The
// cached rows were cleaned by the producing run, so only the relational
// operators run here.
func (s *Session) executeResidual(ctx context.Context, plan logical.Node, cost *optimizer.PlanCost, cs *logical.CachedScan) (*schema.Relation, *Report, error) {
	entry, ok := s.rt.resultCache.Subsumed(rescache.Key{Fingerprint: cs.Source, Stamp: cs.Stamp})
	if !ok {
		return nil, nil, errCachedEntryGone
	}
	cs.Rel = entry.Rel
	op, err := physical.Compile(plan, nil)
	if err != nil {
		return nil, nil, err
	}
	metrics := physical.NewMetrics()
	pctx := &physical.Context{
		Ctx:     ctx,
		Cleaner: clean.New(s.opts.Clean),
		Metrics: metrics,
	}
	rel, err := physical.Run(pctx, op)
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{Plan: logical.Explain(plan), Estimate: cost, Metrics: metrics, Cached: CacheSubsumed}
	s.account(rep)
	return rel, rep, nil
}

// optionsFingerprint renders every session option that can change a
// computed relation. Options that only change how the same relation is
// computed (pipelining, worker budgets, the prompt cache, which
// enumerated candidate wins) are deliberately excluded; the differential
// harness pins them result-identical.
func (s *Session) optionsFingerprint() string {
	var b strings.Builder
	o := &s.opts
	fmt.Fprintf(&b, "opt=%t,%t,%t,%t|", o.Optimizer.PushdownPredicates, o.Optimizer.UseLLMFilter,
		o.Optimizer.PromptPushdown, o.Optimizer.CostBased)
	writeSortedSet(&b, o.Optimizer.DisableLLMFilter)
	writeSortedSet(&b, o.Optimizer.PromptPushdownSkip)
	writeSortedIntSet(&b, o.Optimizer.SwapJoins)
	fmt.Fprintf(&b, "clean=%t,%t,%s|", o.Clean.NormalizeNumbers, o.Clean.EnforceTypes,
		o.Clean.Canonicalizer.Fingerprint())
	fmt.Fprintf(&b, "scan=%d|", o.MaxScanIterations)
	if o.Verifier != nil {
		fmt.Fprintf(&b, "verify=%s,%g|", o.Verifier.Name(), o.VerifyTolerance)
	}
	fingerprintRoutes(&b, o.Routes)
	return b.String()
}

// resultFingerprint keys one built (pre-optimization) plan for exact
// result-cache matching: the options prefix plus the canonical plan
// serialization — literals kept, table bindings folded in
// (logical.Fingerprint).
func (s *Session) resultFingerprint(plan logical.Node) string {
	return s.optionsFingerprint() + logical.Fingerprint(plan)
}

// writeSortedSet renders a per-conjunct option set deterministically.
// Elements are quoted: conjunct keys contain spaces, and a plain join
// would let distinct sets (e.g. {"a b","c"} vs {"a","b c"}) collide.
func writeSortedSet(b *strings.Builder, set map[string]bool) {
	keys := make([]string, 0, len(set))
	for k, on := range set {
		if on {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%q,", k)
	}
	b.WriteByte('|')
}

// writeSortedIntSet renders a join-index option set deterministically.
func writeSortedIntSet(b *strings.Builder, set map[int]bool) {
	keys := make([]int, 0, len(set))
	for k, on := range set {
		if on {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	fmt.Fprintf(b, "%v|", keys)
}

// account folds one executed query into the session-lifetime counters.
func (s *Session) account(rep *Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	s.totals.Add(rep.Stats)
}

// runExplain plans (and for ANALYZE also executes) the inner SELECT and
// renders the annotated plan tree as a one-column relation. With the
// result cache on, residual plans over cached relations compete here
// exactly as they do for execution, so EXPLAIN shows the
// "residual over cached(...)" plan a subsumed query would actually run.
func (s *Session) runExplain(ctx context.Context, ex *ast.Explain) (*schema.Relation, *Report, error) {
	var plan logical.Node
	var cost *optimizer.PlanCost
	var err error
	if s.rt.resultCache != nil {
		built, berr := logical.Build(ex.Stmt, s)
		if berr != nil {
			return nil, nil, berr
		}
		shape := logical.Decompose(built)
		stamp := s.rt.stampFor(logical.Components(built))
		plan, cost, err = s.planSelectExtras(ex.Stmt, built, s.residualCandidates(shape, stamp))
	} else {
		plan, cost, err = s.planSelect(ex.Stmt)
	}
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{Plan: logical.Explain(plan), Estimate: cost}
	if ex.Analyze {
		cs := logical.FindCachedScan(plan)
		if cs != nil {
			_, execRep, rerr := s.executeResidual(ctx, plan, cost, cs)
			switch {
			case rerr == nil:
				rep.Metrics = execRep.Metrics
				rep.Cached = CacheSubsumed
			case errors.Is(rerr, errCachedEntryGone):
				// Evicted since planning: explain and run a fresh plan.
				if plan, cost, rerr = s.planSelectFrom(ex.Stmt, nil); rerr != nil {
					return nil, nil, rerr
				}
				rep = &Report{Plan: logical.Explain(plan), Estimate: cost}
				cs = nil
			default:
				return nil, nil, rerr
			}
		}
		if cs == nil {
			_, execRep, err := s.execute(ctx, plan)
			if err != nil {
				return nil, nil, err
			}
			rep.Stats = execRep.Stats
			rep.Metrics = execRep.Metrics
			rep.Sched = execRep.Sched
			s.observe(plan, execRep.Metrics)
			s.account(rep)
		}
	}
	text := ExplainText(plan, cost, rep.Metrics, rep.Stats, ex.Analyze)
	rel := schema.NewRelation(schema.New(schema.Column{Name: "QUERY PLAN", Type: value.KindString}))
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		rel.Append(schema.Tuple{value.Text(line)})
	}
	return rel, rep, nil
}

// execute compiles and runs one lowered plan.
func (s *Session) execute(ctx context.Context, plan logical.Node) (*schema.Relation, *Report, error) {
	var env *physical.Env
	if db := s.rt.database(); db != nil {
		env = &physical.Env{Data: db.Relation}
	}
	op, err := physical.Compile(plan, env)
	if err != nil {
		return nil, nil, err
	}

	penv, err := s.promptEnv()
	if err != nil {
		return nil, nil, err
	}
	// The resilience layer sits below the recorders (retries happen
	// inside one recorded call), so it attributes per-query faults and
	// retries through the context rather than the call chain.
	ctx = llm.WithRecorder(ctx, penv.primary)
	var verifier llm.Client
	if penv.verifier != nil {
		verifier = penv.verifier
	}
	metrics := physical.NewMetrics()
	pctx := &physical.Context{
		Ctx:               ctx,
		Client:            penv.primaryClient(),
		Route:             penv.clientForRole,
		Cache:             s.rt.cache,
		Prompts:           s.rt.builder,
		Cleaner:           clean.New(s.opts.Clean),
		MaxScanIterations: s.opts.MaxScanIterations,
		BatchWorkers:      s.opts.BatchWorkers,
		Metrics:           metrics,
		Verifier:          verifier,
		VerifyTolerance:   s.opts.VerifyTolerance,
	}
	var tenant *llm.Tenant
	if s.opts.Pipelined {
		// Open this query's tenant on the engine-global scheduler: its
		// prompts fair-share the per-endpoint worker budget with every
		// other in-flight query, while accounting stays per query. The
		// session's admission class and weight decide the dispatch band
		// and the deficit share within it.
		tenant = s.openTenant(ctx)
		defer tenant.Close()
		pctx.Scheduler = tenant
	}
	rel, err := physical.Run(pctx, op)
	if tenant != nil {
		// A satisfied LIMIT (or an error) can leave abandoned futures
		// still talking to the model; their prompts were issued, so
		// settle them before reading any counters.
		tenant.Quiesce()
	}
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{Stats: penv.stats(), Plan: logical.Explain(plan), Metrics: metrics}
	if tenant != nil {
		// Pipelined prompts carry no per-call latency on the recorders;
		// the query's simulated wall-clock is its makespan as if it ran
		// alone against the full worker budget (exact per-query
		// attribution under concurrency).
		rep.Stats.SimulatedLatency += tenant.Makespan()
		rep.Sched = tenant.Stats()
	}
	return rel, rep, nil
}

// openTenant opens one query's scheduler tenant in the session's
// admission class and weight. Unknown class spellings fall back to
// interactive (the serve layer rejects them before they reach here;
// direct API callers get the safe default).
func (s *Session) openTenant(ctx context.Context) *llm.Tenant {
	class, _ := llm.ParseClass(s.opts.AdmissionClass)
	return s.rt.scheduler().TenantFor(ctx, "", class, s.opts.AdmissionWeight)
}

// observe feeds the executed plan's per-operator counters back into the
// runtime's statistics, so later queries — of any session — plan against
// what the engine actually saw (cardinalities, page sizes,
// selectivities). Plans with a LIMIT are excluded: under one, operators
// may not see their full input (the pipelined close-cascade stops
// producers mid-stream, and consumed row counts depend on the execution
// strategy), so their counters describe the truncated run rather than
// the data and would corrupt the estimates. Residual plans never reach
// here: their counters describe cached rows, not the model.
func (s *Session) observe(plan logical.Node, m *physical.Metrics) {
	if m == nil || hasLimit(plan) {
		return
	}
	var walk func(logical.Node)
	walk = func(n logical.Node) {
		switch node := n.(type) {
		case *logical.Scan:
			if node.Source == "LLM" && node.PushedFilter == nil {
				if nm, ok := m.Get(node); ok && nm.Prompts > 0 {
					s.rt.stats.ObserveScan(node.Table.Name, nm.RowsOut, nm.Prompts)
				}
			}
		case *logical.LLMFilter:
			if nm, ok := m.Get(node); ok && nm.RowsIn > 0 {
				ref := node.Cond.Left.(*ast.ColumnRef)
				lit := node.Cond.Right.(*ast.Literal)
				s.rt.stats.ObserveFilter(node.Table.Name, ref.Name, node.Cond.Op, lit.Val.String(), nm.RowsIn, nm.RowsOut)
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(plan)
}

// hasLimit reports whether the plan contains a Limit node.
func hasLimit(n logical.Node) bool {
	if _, ok := n.(*logical.Limit); ok {
		return true
	}
	for _, c := range n.Children() {
		if hasLimit(c) {
			return true
		}
	}
	return false
}
