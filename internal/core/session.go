package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/clean"
	"repro/internal/llm"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/rescache"
	"repro/internal/schema"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
	"repro/internal/value"
)

// Session is the lightweight per-query (or per-connection) tier over a
// shared Runtime: it carries the query options, accumulates per-session
// metrics, and holds nothing heavier — the model endpoints, the prompt
// cache, the optimizer statistics and the global scheduler all live in
// the Runtime. Open one with Runtime.NewSession.
//
// A Session is safe for concurrent use, but its unit of isolation is the
// query: each Query call plans and executes independently, opening its
// own tenant on the shared scheduler so accounting, cancellation and
// fair-share attribution stay exact per query.
type Session struct {
	rt *Runtime
	// opts are this session's options, seeded from the runtime defaults.
	// Mutate via SetOptions before issuing queries.
	opts Options

	mu      sync.Mutex
	queries int
	totals  llm.Stats
}

// Runtime returns the shared tier this session runs on.
func (s *Session) Runtime() *Runtime { return s.rt }

// Options returns the session's current options.
func (s *Session) Options() Options { return s.opts }

// SetOptions replaces the session's per-query options (plan rewrites,
// cleaning, verifier, pipelining). Runtime-tier settings — the prompt
// cache and the shared scheduler's worker budget — are fixed at
// NewRuntime and ignored here. Not safe concurrently with Query.
func (s *Session) SetOptions(opts Options) {
	opts.normalize()
	s.opts = opts
}

// SessionStats summarize a session's lifetime usage.
type SessionStats struct {
	Queries int
	Totals  llm.Stats
}

// Stats returns the session-lifetime counters: queries executed and the
// summed LLM usage across them.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStats{Queries: s.queries, Totals: s.totals}
}

// Plan parses, plans and optimizes a query, returning the lowered logical
// plan (what EXPLAIN shows). Under a cost-based configuration this is the
// cheapest enumerated candidate.
func (s *Session) Plan(sql string) (logical.Node, error) {
	sel, err := parser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	plan, _, err := s.planSelect(sel)
	return plan, err
}

// ResolveTable implements logical.Resolver over the shared bindings with
// this session's DefaultSource breaking LLM-vs-DB ties.
func (s *Session) ResolveTable(name, explicit string) (*schema.TableDef, string, error) {
	return s.rt.resolveTable(name, explicit, s.opts.DefaultSource)
}

// planSelect builds and optimizes the plan for one SELECT, returning the
// planner's cost prediction alongside it. With CostBased on, candidates
// are enumerated and the cheapest wins; otherwise the fixed heuristics
// apply and the estimate prices the resulting single plan.
func (s *Session) planSelect(sel *ast.Select) (logical.Node, *optimizer.PlanCost, error) {
	return s.planSelectFrom(sel, nil)
}

// planSelectFrom is planSelect with an optional pre-built plan consumed
// by the factory's first call (candidate enumeration still rebuilds for
// every further candidate, since optimization mutates its input).
func (s *Session) planSelectFrom(sel *ast.Select, built logical.Node) (logical.Node, *optimizer.PlanCost, error) {
	factory := func() (logical.Node, error) {
		if built != nil {
			plan := built
			built = nil
			return plan, nil
		}
		return logical.Build(sel, s)
	}
	// Price plans with the worker budget that will actually apply: the
	// runtime scheduler's shared per-endpoint budget in pipelined mode,
	// the session's batch fan-out in stop-and-go mode.
	workers := s.opts.BatchWorkers
	if s.opts.Pipelined {
		workers = s.rt.opts.BatchWorkers
	}
	params := optimizer.CostParams{Workers: workers, Verifier: s.opts.Verifier != nil}
	if s.opts.Optimizer.CostBased {
		plan, cost, _, err := optimizer.ChooseBest(factory, s.opts.Optimizer, s.rt.stats, params)
		return plan, cost, err
	}
	plan, err := factory()
	if err != nil {
		return nil, nil, err
	}
	plan, err = optimizer.Optimize(plan, s.opts.Optimizer)
	if err != nil {
		return nil, nil, err
	}
	return plan, optimizer.Estimate(plan, s.rt.stats, params), nil
}

// Explain renders the optimized plan as an indented tree.
func (s *Session) Explain(sql string) (string, error) {
	plan, err := s.Plan(sql)
	if err != nil {
		return "", err
	}
	return logical.Explain(plan), nil
}

// Report summarizes one query execution.
type Report struct {
	Stats llm.Stats
	Plan  string
	// Estimate is the planner's cost prediction for the executed plan.
	Estimate *optimizer.PlanCost
	// Metrics hold the per-operator actual prompt/row counters (nil for
	// pure EXPLAIN, which does not execute).
	Metrics *physical.Metrics
	// Sched is the query's simulated-latency accounting on the shared
	// scheduler (critical path, per-endpoint work) — nil for stop-and-go
	// execution. Concurrency benchmarks aggregate these across queries
	// with llm.AggregateMakespan.
	Sched *llm.TenantStats
	// Cached reports that the relation came from the runtime's result
	// cache (or a concurrent identical execution): no planning beyond
	// the logical build, zero prompts, Stats all zero. Plan still holds
	// the plan the populating run executed.
	Cached bool
}

// Query executes sql and returns the result relation plus an execution
// report (prompt counts, simulated latency, the plan used). EXPLAIN and
// EXPLAIN ANALYZE statements return the annotated plan as a one-column
// relation instead of query results.
func (s *Session) Query(ctx context.Context, sql string) (*schema.Relation, *Report, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	switch stmt := stmt.(type) {
	case *ast.Explain:
		return s.runExplain(ctx, stmt)
	case *ast.Select:
		return s.runSelect(ctx, stmt)
	default:
		return nil, nil, fmt.Errorf("core: only SELECT and EXPLAIN statements can be executed")
	}
}

// runSelect executes one SELECT, consulting the runtime's result cache
// when it is on. Truncating statements — LIMIT, and OFFSET even without
// one (the builder lowers both to a Limit node) — bypass the cache
// entirely: a truncated relation's content depends on the executing
// plan's row order, so it must never be served as the query's one true
// result — the same observation rule the optimizer statistics follow
// (see observe).
func (s *Session) runSelect(ctx context.Context, sel *ast.Select) (*schema.Relation, *Report, error) {
	rc := s.rt.resultCache
	if rc == nil || sel.Limit >= 0 || sel.Offset > 0 {
		return s.executeSelect(ctx, sel, nil)
	}
	// The cheap logical build (no candidate enumeration, no costing)
	// yields the canonical fingerprint; the epoch is captured before
	// execution, so a bind landing mid-flight keys this result under the
	// old epoch, where no post-bind lookup can reach it.
	built, err := logical.Build(sel, s)
	if err != nil {
		return nil, nil, err
	}
	key := rescache.Key{Fingerprint: s.resultFingerprint(built), Epoch: s.rt.Epoch()}
	var popRel *schema.Relation
	var popRep *Report
	entry, cached, err := rc.Fetch(ctx, key, func() (*rescache.Entry, error) {
		rel, rep, err := s.executeSelect(ctx, sel, built)
		if err != nil {
			return nil, err
		}
		popRel, popRep = rel, rep
		return &rescache.Entry{Rel: rel, Plan: rep.Plan}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	if !cached {
		// This caller was the singleflight leader: it executed (and
		// populated the cache) and reports its real usage.
		return popRel, popRep, nil
	}
	rep := &Report{Plan: entry.Plan, Cached: true}
	s.account(rep)
	return entry.Rel, rep, nil
}

// executeSelect plans, optimizes and executes one SELECT, feeding the
// observed counters back into the shared statistics. A non-nil built
// plan (already constructed for the result-cache fingerprint) seeds the
// planner's first factory call so a cache miss does not build twice.
func (s *Session) executeSelect(ctx context.Context, sel *ast.Select, built logical.Node) (*schema.Relation, *Report, error) {
	plan, cost, err := s.planSelectFrom(sel, built)
	if err != nil {
		return nil, nil, err
	}
	rel, rep, err := s.execute(ctx, plan)
	if err != nil {
		return nil, nil, err
	}
	rep.Estimate = cost
	s.observe(plan, rep.Metrics)
	s.account(rep)
	return rel, rep, nil
}

// resultFingerprint keys one built (pre-optimization) plan for the
// result cache: the canonical plan serialization — literals kept, table
// bindings folded in (logical.Fingerprint) — prefixed by every session
// option that can change the computed relation. Options that only change
// how the same relation is computed (pipelining, worker budgets, the
// prompt cache, which enumerated candidate wins) are deliberately
// excluded; the differential harness pins them result-identical.
func (s *Session) resultFingerprint(plan logical.Node) string {
	var b strings.Builder
	o := &s.opts
	fmt.Fprintf(&b, "opt=%t,%t,%t,%t|", o.Optimizer.PushdownPredicates, o.Optimizer.UseLLMFilter,
		o.Optimizer.PromptPushdown, o.Optimizer.CostBased)
	writeSortedSet(&b, o.Optimizer.DisableLLMFilter)
	writeSortedSet(&b, o.Optimizer.PromptPushdownSkip)
	writeSortedIntSet(&b, o.Optimizer.SwapJoins)
	fmt.Fprintf(&b, "clean=%t,%t,%s|", o.Clean.NormalizeNumbers, o.Clean.EnforceTypes,
		o.Clean.Canonicalizer.Fingerprint())
	fmt.Fprintf(&b, "scan=%d|", o.MaxScanIterations)
	if o.Verifier != nil {
		fmt.Fprintf(&b, "verify=%s,%g|", o.Verifier.Name(), o.VerifyTolerance)
	}
	b.WriteString(logical.Fingerprint(plan))
	return b.String()
}

// writeSortedSet renders a per-conjunct option set deterministically.
// Elements are quoted: conjunct keys contain spaces, and a plain join
// would let distinct sets (e.g. {"a b","c"} vs {"a","b c"}) collide.
func writeSortedSet(b *strings.Builder, set map[string]bool) {
	keys := make([]string, 0, len(set))
	for k, on := range set {
		if on {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%q,", k)
	}
	b.WriteByte('|')
}

// writeSortedIntSet renders a join-index option set deterministically.
func writeSortedIntSet(b *strings.Builder, set map[int]bool) {
	keys := make([]int, 0, len(set))
	for k, on := range set {
		if on {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	fmt.Fprintf(b, "%v|", keys)
}

// account folds one executed query into the session-lifetime counters.
func (s *Session) account(rep *Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	s.totals.Add(rep.Stats)
}

// runExplain plans (and for ANALYZE also executes) the inner SELECT and
// renders the annotated plan tree as a one-column relation.
func (s *Session) runExplain(ctx context.Context, ex *ast.Explain) (*schema.Relation, *Report, error) {
	plan, cost, err := s.planSelect(ex.Stmt)
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{Plan: logical.Explain(plan), Estimate: cost}
	if ex.Analyze {
		_, execRep, err := s.execute(ctx, plan)
		if err != nil {
			return nil, nil, err
		}
		rep.Stats = execRep.Stats
		rep.Metrics = execRep.Metrics
		rep.Sched = execRep.Sched
		s.observe(plan, execRep.Metrics)
		s.account(rep)
	}
	text := ExplainText(plan, cost, rep.Metrics, rep.Stats, ex.Analyze)
	rel := schema.NewRelation(schema.New(schema.Column{Name: "QUERY PLAN", Type: value.KindString}))
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		rel.Append(schema.Tuple{value.Text(line)})
	}
	return rel, rep, nil
}

// execute compiles and runs one lowered plan.
func (s *Session) execute(ctx context.Context, plan logical.Node) (*schema.Relation, *Report, error) {
	var env *physical.Env
	if db := s.rt.database(); db != nil {
		env = &physical.Env{Data: db.Relation}
	}
	op, err := physical.Compile(plan, env)
	if err != nil {
		return nil, nil, err
	}

	recorder := llm.NewRecorder(s.rt.client)
	var verifyRecorder *llm.Recorder
	var verifier llm.Client
	if s.opts.Verifier != nil {
		verifyRecorder = llm.NewRecorder(s.opts.Verifier)
		verifier = verifyRecorder
	}
	metrics := physical.NewMetrics()
	pctx := &physical.Context{
		Ctx:               ctx,
		Client:            recorder,
		Cache:             s.rt.cache,
		Prompts:           s.rt.builder,
		Cleaner:           clean.New(s.opts.Clean),
		MaxScanIterations: s.opts.MaxScanIterations,
		BatchWorkers:      s.opts.BatchWorkers,
		Metrics:           metrics,
		Verifier:          verifier,
		VerifyTolerance:   s.opts.VerifyTolerance,
	}
	var tenant *llm.Tenant
	if s.opts.Pipelined {
		// Open this query's tenant on the engine-global scheduler: its
		// prompts fair-share the per-endpoint worker budget with every
		// other in-flight query, while accounting stays per query.
		tenant = s.rt.scheduler().Tenant(ctx, "")
		defer tenant.Close()
		pctx.Scheduler = tenant
	}
	rel, err := physical.Run(pctx, op)
	if tenant != nil {
		// A satisfied LIMIT (or an error) can leave abandoned futures
		// still talking to the model; their prompts were issued, so
		// settle them before reading any counters.
		tenant.Quiesce()
	}
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{Stats: recorder.Stats(), Plan: logical.Explain(plan), Metrics: metrics}
	if verifyRecorder != nil {
		rep.Stats.Add(verifyRecorder.Stats())
	}
	if tenant != nil {
		// Pipelined prompts carry no per-call latency on the recorders;
		// the query's simulated wall-clock is its makespan as if it ran
		// alone against the full worker budget (exact per-query
		// attribution under concurrency).
		rep.Stats.SimulatedLatency += tenant.Makespan()
		rep.Sched = tenant.Stats()
	}
	return rel, rep, nil
}

// observe feeds the executed plan's per-operator counters back into the
// runtime's statistics, so later queries — of any session — plan against
// what the engine actually saw (cardinalities, page sizes,
// selectivities). Plans with a LIMIT are excluded: under one, operators
// may not see their full input (the pipelined close-cascade stops
// producers mid-stream, and consumed row counts depend on the execution
// strategy), so their counters describe the truncated run rather than
// the data and would corrupt the estimates.
func (s *Session) observe(plan logical.Node, m *physical.Metrics) {
	if m == nil || hasLimit(plan) {
		return
	}
	var walk func(logical.Node)
	walk = func(n logical.Node) {
		switch node := n.(type) {
		case *logical.Scan:
			if node.Source == "LLM" && node.PushedFilter == nil {
				if nm, ok := m.Get(node); ok && nm.Prompts > 0 {
					s.rt.stats.ObserveScan(node.Table.Name, nm.RowsOut, nm.Prompts)
				}
			}
		case *logical.LLMFilter:
			if nm, ok := m.Get(node); ok && nm.RowsIn > 0 {
				ref := node.Cond.Left.(*ast.ColumnRef)
				lit := node.Cond.Right.(*ast.Literal)
				s.rt.stats.ObserveFilter(node.Table.Name, ref.Name, node.Cond.Op, lit.Val.String(), nm.RowsIn, nm.RowsOut)
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(plan)
}

// hasLimit reports whether the plan contains a Limit node.
func hasLimit(n logical.Node) bool {
	if _, ok := n.(*logical.Limit); ok {
		return true
	}
	for _, c := range n.Children() {
		if hasLimit(c) {
			return true
		}
	}
	return false
}
