package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/llm"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/physical"
)

// ExplainText renders a plan tree with the planner's per-operator
// estimates and — in analyze mode — the actual counters of one
// execution, followed by a summary of estimated vs actual totals. This
// is the payload of EXPLAIN / EXPLAIN ANALYZE and of the CLIs' -explain
// flags.
func ExplainText(plan logical.Node, cost *optimizer.PlanCost, m *physical.Metrics, stats llm.Stats, analyzed bool) string {
	var b strings.Builder
	explainNode(&b, plan, 0, cost, m, analyzed)
	if cost != nil {
		fmt.Fprintf(&b, "estimated: prompts=%.1f latency=%s", cost.Prompts, cost.Latency.Round(time.Millisecond))
		if cost.Priced {
			// The backend-weighted prompt cost appears only on routed
			// runtimes, keeping single-backend EXPLAIN output unchanged.
			fmt.Fprintf(&b, " cost=%.1f", cost.Cost)
		}
		if cost.Candidates > 1 {
			fmt.Fprintf(&b, " (cost-based, %d candidates, choice: %s)", cost.Candidates, cost.Choice)
		}
		b.WriteByte('\n')
	}
	if analyzed {
		fmt.Fprintf(&b, "actual:    prompts=%d latency=%s cache_hits=%d (simulated)\n",
			stats.Prompts, stats.SimulatedLatency.Round(time.Millisecond), stats.CacheHits)
		// Resilience counters appear only when fault recovery actually
		// happened, so fault-free EXPLAIN ANALYZE output is unchanged.
		if stats.Retries > 0 || stats.Faults > 0 || stats.BreakerFastFails > 0 {
			fmt.Fprintf(&b, "resilience: retries=%d faults=%d breaker_fast_fails=%d\n",
				stats.Retries, stats.Faults, stats.BreakerFastFails)
		}
	}
	return b.String()
}

func explainNode(b *strings.Builder, n logical.Node, depth int, cost *optimizer.PlanCost, m *physical.Metrics, analyzed bool) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Describe())
	if cost != nil {
		if est, ok := cost.Nodes[n]; ok {
			if est.Prompts > 0 {
				fmt.Fprintf(b, "  (est rows=%.1f prompts=%.1f", est.Rows, est.Prompts)
				if est.Backend != "" {
					// Routed runtimes annotate which backend the
					// operator's prompts go to.
					fmt.Fprintf(b, " route=%s", est.Backend)
				}
				b.WriteString(")")
			} else {
				fmt.Fprintf(b, "  (est rows=%.1f)", est.Rows)
			}
		}
	}
	if analyzed {
		if nm, ok := m.Get(n); ok {
			fmt.Fprintf(b, " [actual rows=%d prompts=%d]", nm.RowsOut, nm.Prompts)
		}
	}
	b.WriteByte('\n')
	for _, c := range n.Children() {
		explainNode(b, c, depth+1, cost, m, analyzed)
	}
}
