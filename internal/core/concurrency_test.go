package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/llm"
	"repro/internal/memdb"
	"repro/internal/simllm"
	"repro/internal/world"
)

// runtimeOver builds a runtime over the given client with the world's
// LLM tables bound.
func runtimeOver(t *testing.T, client llm.Client, opts Options, w *world.World) *Runtime {
	t.Helper()
	rt := NewRuntime(client, opts)
	for _, name := range []string{"country", "city", "mayor", "stadium", "mountain"} {
		if err := rt.BindLLMTable(w.Table(name).Def); err != nil {
			t.Fatal(err)
		}
	}
	return rt
}

// TestConcurrentBindAndQuery is the data-race regression for the table
// bindings: sessions plan (ResolveTable reads) while BindLLMTable writes
// concurrently. Run under -race this fails on any unguarded access to
// the binding map.
func TestConcurrentBindAndQuery(t *testing.T) {
	w := world.Build()
	model := simllm.New(simllm.ChatGPT, w, 1)
	rt := NewRuntime(model, DefaultOptions())
	if err := rt.BindLLMTable(w.Table("country").Def); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Writers: rebind a rotating set of tables while queries run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			for _, name := range []string{"city", "mayor", "stadium", "mountain", "country"} {
				if err := rt.BindLLMTable(w.Table(name).Def); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	// Readers: concurrent sessions planning and executing against the
	// always-present country binding.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := rt.NewSession()
			for i := 0; i < 5; i++ {
				if _, _, err := sess.Query(ctx, `SELECT name FROM country WHERE continent = 'Europe'`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentSessionsBitIdentical: many sessions querying one shared
// runtime concurrently each get exactly the relation a serial run
// produces — results are isolation-independent.
func TestConcurrentSessionsBitIdentical(t *testing.T) {
	w := world.Build()
	queries := []string{
		`SELECT name FROM country WHERE continent = 'Europe'`,
		`SELECT name, population FROM city WHERE population > 1000000`,
		`SELECT name FROM mayor WHERE election_year = 2019`,
		`SELECT name, capacity FROM stadium WHERE capacity > 40000`,
		`SELECT name FROM mountain WHERE height > 5000`,
	}
	opts := DefaultOptions()
	opts.CacheEnabled = false // prompt counts must be per-query exact

	// Serial baselines on a fresh runtime each (no shared state at all).
	want := make([]string, len(queries))
	wantPrompts := make([]int, len(queries))
	for i, q := range queries {
		rt := runtimeOver(t, simllm.New(simllm.ChatGPT, w, 1), opts, w)
		rel, rep, err := rt.NewSession().Query(context.Background(), q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		want[i] = rel.String()
		wantPrompts[i] = rep.Stats.Prompts
	}

	// The same queries, concurrently, all on ONE runtime (one scheduler,
	// one statistics store), several rounds each.
	rt := runtimeOver(t, simllm.New(simllm.ChatGPT, w, 1), opts, w)
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q string) {
				defer wg.Done()
				rel, rep, err := rt.NewSession().Query(context.Background(), q)
				if err != nil {
					t.Errorf("concurrent %q: %v", q, err)
					return
				}
				if rel.String() != want[i] {
					t.Errorf("concurrent %q diverged from serial run:\n%s\nwant:\n%s", q, rel.String(), want[i])
				}
				if rep.Stats.Prompts != wantPrompts[i] {
					t.Errorf("concurrent %q issued %d prompts, serial run issued %d", q, rep.Stats.Prompts, wantPrompts[i])
				}
			}(i, q)
		}
	}
	wg.Wait()
}

// cancellingClient cancels a context after `after` completions whose
// prompt mentions `match` — a cross-model trigger for mid-flight query
// cancellation.
type cancellingClient struct {
	inner  llm.Client
	match  string
	after  int
	cancel context.CancelFunc

	mu   sync.Mutex
	seen int
}

func (c *cancellingClient) Name() string { return c.inner.Name() }

func (c *cancellingClient) Complete(ctx context.Context, p string) (string, error) {
	if strings.Contains(p, c.match) {
		c.mu.Lock()
		c.seen++
		if c.seen == c.after {
			c.cancel()
		}
		c.mu.Unlock()
	}
	return c.inner.Complete(ctx, p)
}

// TestCancelledQueryDoesNotPerturbConcurrent is the cancellation
// satellite: a query cancelled mid-flight under the shared scheduler
// resolves promptly, frees its workers, and leaves a concurrent query's
// result relation and prompt count exactly as a solo run — then the
// runtime keeps serving.
func TestCancelledQueryDoesNotPerturbConcurrent(t *testing.T) {
	w := world.Build()
	opts := DefaultOptions()
	opts.CacheEnabled = false // B's prompt count must not depend on A's progress

	const bQuery = `SELECT name, population FROM city WHERE population > 1000000`

	// Solo baseline for B on a fresh runtime.
	solo := runtimeOver(t, simllm.New(simllm.ChatGPT, w, 1), opts, w)
	wantRel, wantRep, err := solo.NewSession().Query(context.Background(), bQuery)
	if err != nil {
		t.Fatal(err)
	}

	// Shared runtime: A (over stadium) is cancelled after its third
	// stadium prompt; B runs concurrently to completion.
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	client := &cancellingClient{
		inner:  simllm.New(simllm.ChatGPT, w, 1),
		match:  "stadium",
		after:  3,
		cancel: cancelA,
	}
	rt := runtimeOver(t, client, opts, w)

	var wg sync.WaitGroup
	var errA error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, errA = rt.NewSession().Query(ctxA, `SELECT name, capacity, opened_year FROM stadium WHERE capacity > 40000`)
	}()
	var relB string
	var promptsB int
	var errB error
	wg.Add(1)
	go func() {
		defer wg.Done()
		rel, rep, err := rt.NewSession().Query(context.Background(), bQuery)
		if err != nil {
			errB = err
			return
		}
		relB, promptsB = rel.String(), rep.Stats.Prompts
	}()
	wg.Wait()

	if !errors.Is(errA, context.Canceled) {
		t.Errorf("cancelled query err = %v, want context.Canceled", errA)
	}
	if errB != nil {
		t.Fatalf("concurrent query failed: %v", errB)
	}
	if relB != wantRel.String() {
		t.Errorf("concurrent query perturbed by cancellation:\n%s\nwant:\n%s", relB, wantRel.String())
	}
	if promptsB != wantRep.Stats.Prompts {
		t.Errorf("concurrent query issued %d prompts, solo run issued %d", promptsB, wantRep.Stats.Prompts)
	}

	// The cancelled tenant released its slots: the runtime still serves.
	rel, rep, err := rt.NewSession().Query(context.Background(), `SELECT name FROM country WHERE continent = 'Europe'`)
	if err != nil {
		t.Fatalf("runtime wedged after cancellation: %v", err)
	}
	if rel.Cardinality() == 0 || rep.Stats.Prompts == 0 {
		t.Errorf("post-cancellation query returned %d rows / %d prompts", rel.Cardinality(), rep.Stats.Prompts)
	}
}

// TestSessionDefaultSourceOverride: DefaultSource is session-tier — a
// session overriding it resolves unqualified ambiguous tables its own
// way without touching the runtime default or other sessions.
func TestSessionDefaultSourceOverride(t *testing.T) {
	w := world.Build()
	rt := runtimeOver(t, simllm.New(simllm.ChatGPT, w, 1), DefaultOptions(), w)
	db := memdb.New()
	if err := db.LoadRelation(w.Table("country").Def, w.Relation("country")); err != nil {
		t.Fatal(err)
	}
	rt.AttachDB(db)

	llmSess := rt.NewSession()
	dbSess := rt.NewSession()
	opts := rt.Options()
	opts.DefaultSource = "DB"
	dbSess.SetOptions(opts)

	if _, source, err := llmSess.ResolveTable("country", ""); err != nil || source != "LLM" {
		t.Errorf("default session resolved country to %q, %v; want LLM", source, err)
	}
	if _, source, err := dbSess.ResolveTable("country", ""); err != nil || source != "DB" {
		t.Errorf("overridden session resolved country to %q, %v; want DB", source, err)
	}
	// The runtime default is untouched.
	if _, source, err := rt.ResolveTable("country", ""); err != nil || source != "LLM" {
		t.Errorf("runtime resolved country to %q, %v; want LLM", source, err)
	}
}

// TestSessionStatsAccumulate: the per-session counters sum the session's
// own queries, independent of other sessions on the runtime.
func TestSessionStatsAccumulate(t *testing.T) {
	w := world.Build()
	rt := runtimeOver(t, simllm.New(simllm.ChatGPT, w, 1), DefaultOptions(), w)
	a, b := rt.NewSession(), rt.NewSession()
	for i := 0; i < 2; i++ {
		if _, _, err := a.Query(context.Background(), `SELECT name FROM country WHERE continent = 'Europe'`); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats(); got.Queries != 2 {
		t.Errorf("session a queries = %d, want 2", got.Queries)
	}
	if got := b.Stats(); got.Queries != 0 || got.Totals.Prompts != 0 {
		t.Errorf("session b stats = %+v, want zero", got)
	}
}

// TestEngineTiersShared: the Engine wrapper's default session and any
// extra session share one runtime — bindings and cache included.
func TestEngineTiersShared(t *testing.T) {
	w := world.Build()
	e := New(simllm.New(simllm.ChatGPT, w, 1), DefaultOptions())
	if err := e.BindLLMTable(w.Table("country").Def); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Query(context.Background(), `SELECT name FROM country WHERE continent = 'Europe'`); err != nil {
		t.Fatal(err)
	}
	misses := e.CacheStats().Misses
	if misses == 0 {
		t.Fatal("expected cache misses after first query")
	}
	// A second session over the same runtime replays from the cache.
	sess := e.Runtime().NewSession()
	if _, _, err := sess.Query(context.Background(), `SELECT name FROM country WHERE continent = 'Europe'`); err != nil {
		t.Fatal(err)
	}
	after := e.CacheStats()
	if after.Misses != misses {
		t.Errorf("second session re-issued prompts: misses %d -> %d", misses, after.Misses)
	}
	if after.Hits == 0 {
		t.Error("second session hit the shared cache 0 times")
	}
}
