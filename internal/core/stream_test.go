package core

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/simllm"
	"repro/internal/world"
)

// TestQueryStreamMatchesQuery: the streaming session API yields exactly
// the buffered API's relation — same rows, same order, same prompt
// accounting — while making rows available at virtual times strictly
// before the whole relation's completion.
func TestQueryStreamMatchesQuery(t *testing.T) {
	w := world.Build()
	opts := DefaultOptions()
	opts.CacheEnabled = false
	const sql = `SELECT name, population FROM city WHERE population > 1000000`

	rel, rep, err := runtimeOver(t, simllm.New(simllm.ChatGPT, w, 1), opts, w).
		NewSession().Query(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}

	st, err := runtimeOver(t, simllm.New(simllm.ChatGPT, w, 1), opts, w).
		NewSession().QueryStream(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Schema().Len() != rel.Schema.Len() {
		t.Fatalf("stream schema %v, buffered %v", st.Schema(), rel.Schema)
	}

	var n int
	var firstVT, lastVT llm.VTime
	for {
		row, vt, err := st.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if n >= len(rel.Rows) {
			t.Fatalf("stream yielded more than the buffered %d rows", len(rel.Rows))
		}
		for i, v := range rel.Rows[n] {
			if row[i].String() != v.String() {
				t.Fatalf("row %d = %v, buffered %v", n, row, rel.Rows[n])
			}
		}
		if n == 0 {
			firstVT = vt
		}
		lastVT = vt
		n++
	}
	if n != len(rel.Rows) {
		t.Fatalf("stream yielded %d rows, buffered %d", n, len(rel.Rows))
	}

	srep, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if srep.Stats.Prompts != rep.Stats.Prompts {
		t.Errorf("stream prompts = %d, buffered %d", srep.Stats.Prompts, rep.Stats.Prompts)
	}
	// The streaming property in simulated time: the first row's
	// availability precedes the relation's completion, and head-to-tail
	// availability is monotone.
	if firstVT <= 0 || firstVT >= srep.Stats.SimulatedLatency {
		t.Errorf("first row vt = %v, want within (0, %v)", firstVT, srep.Stats.SimulatedLatency)
	}
	if firstVT > lastVT {
		t.Errorf("vt not monotone: first %v > last %v", firstVT, lastVT)
	}
}

// TestQueryStreamEarlyCloseHygiene: abandoning a stream mid-relation
// must leave the shared scheduler empty — no busy slots, no queued
// prompts — and the runtime must serve the next query normally.
func TestQueryStreamEarlyCloseHygiene(t *testing.T) {
	w := world.Build()
	opts := DefaultOptions()
	opts.CacheEnabled = false
	rt := runtimeOver(t, simllm.New(simllm.ChatGPT, w, 1), opts, w)

	st, err := rt.NewSession().QueryStream(context.Background(),
		`SELECT name, population FROM city WHERE population > 1000000`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	st.Close() // abandon with most of the relation unread

	// Close cancels the stream's context, which fails every queued
	// prompt immediately — but a slot whose prompt is already in flight
	// is non-preemptible and drains asynchronously. Poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g := rt.SchedulerGauges()
		if g.Interactive.Busy == 0 && g.Interactive.Queued == 0 && g.Batch.Busy == 0 && g.Batch.Queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduler state leaked after early close: %+v", g)
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := rt.NewSession().Query(context.Background(),
		`SELECT name FROM country WHERE continent = 'Europe'`); err != nil {
		t.Fatalf("query after abandoned stream: %v", err)
	}
}
