package core

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/simllm"
	"repro/internal/store"
	"repro/internal/world"
)

// persistRuntime builds a runtime over a fresh deterministic backend and
// attaches the durable store at dir. Binds happen before OpenStore, as
// the production boot sequence does.
func persistRuntime(t *testing.T, w *world.World, dir string) (*Runtime, *countingClient) {
	t.Helper()
	client := &countingClient{inner: simllm.New(simllm.ChatGPT, w, 1)}
	rt := runtimeOver(t, client, resultCacheOptions(), w)
	if err := rt.OpenStore(StoreConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	return rt, client
}

// TestWarmStartServesWithoutExecution is the end-to-end warm-restart
// gate at the core level: run a query, drain, reopen from the same data
// directory on a fresh runtime, and the same query costs zero model
// calls, returns the bit-identical relation, and plans over the
// persisted (not default) statistics.
func TestWarmStartServesWithoutExecution(t *testing.T) {
	w := world.Build()
	dir := t.TempDir()
	ctx := context.Background()

	rt1, client1 := persistRuntime(t, w, dir)
	rel1, rep1, err := rt1.NewSession().Query(ctx, rcQuery)
	if err != nil {
		t.Fatal(err)
	}
	if client1.calls.Load() == 0 {
		t.Fatal("cold query issued no model calls")
	}
	snap1 := rt1.Statistics().Snapshot()
	if err := rt1.CloseStore(); err != nil {
		t.Fatal(err)
	}

	rt2, client2 := persistRuntime(t, w, dir)
	defer rt2.CloseStore()
	p := rt2.Persistence()
	if p.WarmRelations != 1 {
		t.Fatalf("warm relations = %d, want 1 (%+v)", p.WarmRelations, p)
	}
	if p.WarmStatsTables == 0 {
		t.Fatalf("no statistics tables restored: %+v", p)
	}
	if got := rt2.Statistics().Snapshot(); !reflect.DeepEqual(got.Tables, snap1.Tables) {
		t.Errorf("restored table stats diverged:\n got %+v\nwant %+v", got.Tables, snap1.Tables)
	}
	if ts := rt2.Statistics().Table("country"); !ts.Seen {
		t.Errorf("country stats not warm: %+v (planner would use defaults)", ts)
	}

	rel2, rep2, err := rt2.NewSession().Query(ctx, rcQuery)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Cached != CacheExact || client2.calls.Load() != 0 || rep2.Stats.Prompts != 0 {
		t.Errorf("warm query not served from the restored cache: cached=%q calls=%d prompts=%d",
			rep2.Cached, client2.calls.Load(), rep2.Stats.Prompts)
	}
	if rel2.String() != rel1.String() {
		t.Errorf("warm relation diverged:\n%s\nwant:\n%s", rel2.String(), rel1.String())
	}
	if rep2.Plan != rep1.Plan {
		t.Errorf("warm plan diverged:\n%s\nwant:\n%s", rep2.Plan, rep1.Plan)
	}
}

// TestWarmLoadDropsCorruptSegments: a data directory whose segments were
// damaged after the drain reopens cleanly — the damaged suffix is
// dropped and counted, nothing corrupt is served, and the store remains
// usable for the next drain cycle.
func TestWarmLoadDropsCorruptSegments(t *testing.T) {
	w := world.Build()
	dir := t.TempDir()
	ctx := context.Background()

	rt1, _ := persistRuntime(t, w, dir)
	rel1, _, err := rt1.NewSession().Query(ctx, rcQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt1.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte midway through every segment: everything from the
	// damaged frame on is a torn suffix.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments to damage: %v %v", segs, err)
	}
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	rt2, _ := persistRuntime(t, w, dir)
	p := rt2.Persistence()
	if p.Store.DroppedCorrupt == 0 {
		t.Fatalf("damage not detected: %+v", p)
	}
	// Whatever survived must still answer correctly (the backend is
	// deterministic, so any divergence means a corrupt serve).
	rel2, _, err := rt2.NewSession().Query(ctx, rcQuery)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.String() != rel1.String() {
		t.Errorf("post-damage relation diverged:\n%s\nwant:\n%s", rel2.String(), rel1.String())
	}
	if err := rt2.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// Third generation: the repaired store round-trips again.
	rt3, client3 := persistRuntime(t, w, dir)
	defer rt3.CloseStore()
	if p := rt3.Persistence(); p.WarmRelations != 1 {
		t.Fatalf("repaired store did not warm-load: %+v", p)
	}
	if _, rep, err := rt3.NewSession().Query(ctx, rcQuery); err != nil || rep.Cached != CacheExact || client3.calls.Load() != 0 {
		t.Errorf("repaired store not serving warm: %v %+v calls=%d", err, rep, client3.calls.Load())
	}
}

// TestStaleEpochStampNeverServed pins the crash-ordering guarantee: an
// epoch bump is made durable before its relation tombstones need to be
// (bumpComponent fsyncs the epoch table; relation deletes may sit in OS
// buffers). Simulate the worst crash — bumped epochs on disk, the
// stale relation still present — and the warm load must reject the
// relation against the merged epoch table.
func TestStaleEpochStampNeverServed(t *testing.T) {
	w := world.Build()
	dir := t.TempDir()
	ctx := context.Background()

	rt1, _ := persistRuntime(t, w, dir)
	if _, _, err := rt1.NewSession().Query(ctx, rcQuery); err != nil {
		t.Fatal(err)
	}
	epochs := rt1.TableEpochs()
	if err := rt1.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// Crash replica: the bump reached the durable epoch table but the
	// relation's tombstone was lost.
	epochs["llm:country"]++
	payload, err := json.Marshal(epochs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(kindEpochs, metaKey, "", payload, true); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rt2, client2 := persistRuntime(t, w, dir)
	defer rt2.CloseStore()
	p := rt2.Persistence()
	if p.WarmRelations != 0 || p.DroppedStale == 0 {
		t.Fatalf("stale relation admitted: %+v", p)
	}
	// The merged epoch survived into the live table and the query
	// re-executes rather than serving the pre-bump relation.
	if got := rt2.TableEpochs()["llm:country"]; got != epochs["llm:country"] {
		t.Errorf("persisted bump not merged: llm:country = %d, want %d", got, epochs["llm:country"])
	}
	if _, rep, err := rt2.NewSession().Query(ctx, rcQuery); err != nil || rep.Cached != CacheNone || client2.calls.Load() == 0 {
		t.Errorf("stale-epoch query served warm: %v cached=%q calls=%d", err, rep.Cached, client2.calls.Load())
	}
}

// TestPostRestartRebindInvalidatesWarmLoad: a warm-loaded relation is
// still subject to live invalidation — a rebind after the restart drops
// it from memory AND from disk, so a third generation cannot resurrect
// it either.
func TestPostRestartRebindInvalidatesWarmLoad(t *testing.T) {
	w := world.Build()
	dir := t.TempDir()
	ctx := context.Background()

	rt1, _ := persistRuntime(t, w, dir)
	if _, _, err := rt1.NewSession().Query(ctx, rcQuery); err != nil {
		t.Fatal(err)
	}
	if err := rt1.CloseStore(); err != nil {
		t.Fatal(err)
	}

	rt2, client2 := persistRuntime(t, w, dir)
	if p := rt2.Persistence(); p.WarmRelations != 1 {
		t.Fatalf("fixture vacuous, nothing warm-loaded: %+v", p)
	}
	if err := rt2.BindLLMTable(w.Table("country").Def); err != nil {
		t.Fatal(err)
	}
	if _, rep, err := rt2.NewSession().Query(ctx, rcQuery); err != nil || rep.Cached != CacheNone || client2.calls.Load() == 0 {
		t.Errorf("rebind did not invalidate the warm-loaded entry: %v cached=%q calls=%d",
			err, rep.Cached, client2.calls.Load())
	}
	if err := rt2.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// The re-executed relation persisted under the bumped stamp and
	// warm-loads; the stale one is gone for good.
	rt3, _ := persistRuntime(t, w, dir)
	defer rt3.CloseStore()
	if p := rt3.Persistence(); p.WarmRelations != 1 || p.DroppedStale != 0 {
		t.Errorf("third generation saw stale state: %+v", p)
	}
	if got := rt3.TableEpochs()["llm:country"]; got != 2 {
		t.Errorf("rebind epoch lost across restart: llm:country = %d, want 2", got)
	}
}

// TestValueCodecRoundTrip covers the persisted value encoding with the
// payloads value.ParseAs would mangle: whitespace-significant strings,
// null-words as data, and floats needing full precision.
func TestValueCodecRoundTrip(t *testing.T) {
	w := world.Build()
	dir := t.TempDir()
	ctx := context.Background()

	// A projection keeps raw strings; the deterministic backend includes
	// values with spaces. Any trimming or null-folding in the codec
	// diverges the relation string.
	q := `SELECT name, capital FROM country`
	rt1, _ := persistRuntime(t, w, dir)
	rel1, _, err := rt1.NewSession().Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rel1.String(), " ") {
		t.Fatal("fixture vacuous: no whitespace-bearing values")
	}
	if err := rt1.CloseStore(); err != nil {
		t.Fatal(err)
	}

	rt2, client2 := persistRuntime(t, w, dir)
	defer rt2.CloseStore()
	rel2, _, err := rt2.NewSession().Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if client2.calls.Load() != 0 {
		t.Errorf("warm query re-executed (%d calls)", client2.calls.Load())
	}
	if rel2.String() != rel1.String() {
		t.Errorf("codec round-trip diverged:\n%s\nwant:\n%s", rel2.String(), rel1.String())
	}
}
