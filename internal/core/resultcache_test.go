package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/simllm"
	"repro/internal/value"
	"repro/internal/world"
)

// resultCacheOptions is the shared configuration of these tests: result
// cache on, prompt cache off (so model-call counts and relation contents
// are attributable to the result cache alone, and a backend swap cannot
// leak stale completions through the prompt tier).
func resultCacheOptions() Options {
	opts := DefaultOptions()
	opts.CacheEnabled = false
	opts.ResultCacheEnabled = true
	return opts
}

// countingClient counts the model calls that actually reach the backend.
type countingClient struct {
	inner llm.Client
	calls atomic.Int64
}

func (c *countingClient) Name() string { return c.inner.Name() }
func (c *countingClient) Complete(ctx context.Context, p string) (string, error) {
	c.calls.Add(1)
	return c.inner.Complete(ctx, p)
}

const rcQuery = `SELECT name FROM country WHERE continent = 'Europe'`

// TestResultCacheHitServesWithoutExecution: the second identical query
// is served from the result cache — zero prompts, zero model calls, the
// bit-identical relation, and the populating run's plan.
func TestResultCacheHitServesWithoutExecution(t *testing.T) {
	w := world.Build()
	client := &countingClient{inner: simllm.New(simllm.ChatGPT, w, 1)}
	rt := runtimeOver(t, client, resultCacheOptions(), w)
	ctx := context.Background()

	rel1, rep1, err := rt.NewSession().Query(ctx, rcQuery)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Cached != CacheNone {
		t.Errorf("cold query reported cached = %q", rep1.Cached)
	}
	coldCalls := client.calls.Load()
	if coldCalls == 0 || rep1.Stats.Prompts == 0 {
		t.Fatalf("cold query issued no model calls (%d calls, %d prompts)", coldCalls, rep1.Stats.Prompts)
	}

	rel2, rep2, err := rt.NewSession().Query(ctx, rcQuery)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Cached != CacheExact {
		t.Errorf("repeated query cached = %q, want %q", rep2.Cached, CacheExact)
	}
	if rep2.Stats.Prompts != 0 || client.calls.Load() != coldCalls {
		t.Errorf("cached hit cost prompts: %d prompts, %d extra calls",
			rep2.Stats.Prompts, client.calls.Load()-coldCalls)
	}
	if rel2.String() != rel1.String() {
		t.Errorf("cached relation diverged:\n%s\nwant:\n%s", rel2.String(), rel1.String())
	}
	if rep2.Plan != rep1.Plan {
		t.Errorf("cached plan diverged:\n%s\nwant:\n%s", rep2.Plan, rep1.Plan)
	}
	st := rt.ResultCacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("result cache stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}

	// Mutating a served relation must not pollute the cache.
	rel2.Rows[0][0] = value.Text("CORRUPTED")
	rel3, _, err := rt.NewSession().Query(ctx, rcQuery)
	if err != nil {
		t.Fatal(err)
	}
	if rel3.String() != rel1.String() {
		t.Error("mutating a cached result leaked into later hits")
	}
}

// TestResultCacheEpochInvalidation: BindLLMTable and PrimeTableKeys on a
// table the query reads bump that table's epoch and force re-execution —
// while rebinding an unrelated table or attaching the store leaves the
// entry valid: invalidation is per component, not global.
func TestResultCacheEpochInvalidation(t *testing.T) {
	w := world.Build()
	client := &countingClient{inner: simllm.New(simllm.ChatGPT, w, 1)}
	rt := runtimeOver(t, client, resultCacheOptions(), w)
	ctx := context.Background()

	// rcQuery reads only LLM.country; fn decides whether its cached
	// relation must survive.
	check := func(name string, invalidates bool, fn func()) {
		t.Helper()
		if _, _, err := rt.NewSession().Query(ctx, rcQuery); err != nil {
			t.Fatal(err)
		}
		before := client.calls.Load()
		epochBefore := rt.Epoch()
		fn()
		if rt.Epoch() == epochBefore {
			t.Fatalf("%s did not bump the total epoch counter", name)
		}
		_, rep, err := rt.NewSession().Query(ctx, rcQuery)
		if err != nil {
			t.Fatal(err)
		}
		if invalidates {
			if rep.Cached != CacheNone || client.calls.Load() == before {
				t.Errorf("%s: query after the bump was served from the cache", name)
			}
		} else {
			if rep.Cached != CacheExact || client.calls.Load() != before {
				t.Errorf("%s: unrelated bump invalidated the entry (cached=%q, %d extra calls)",
					name, rep.Cached, client.calls.Load()-before)
			}
		}
	}

	check("PrimeTableKeys(country)", true, func() { rt.PrimeTableKeys("country", 50) })
	check("BindLLMTable(country)", true, func() {
		if err := rt.BindLLMTable(w.Table("country").Def); err != nil {
			t.Fatal(err)
		}
	})
	check("BindLLMTable(city)", false, func() {
		if err := rt.BindLLMTable(w.Table("city").Def); err != nil {
			t.Fatal(err)
		}
	})
	check("AttachDB", false, func() { rt.AttachDB(mustDB(t)) })

	if eps := rt.TableEpochs(); eps["llm:country"] == 0 || eps["llm:city"] == 0 || eps["db"] == 0 {
		t.Errorf("per-table epochs not tracked: %v", eps)
	}
}

// TestResultCacheLimitBypass: LIMIT-bearing statements never populate
// (or consult) the cache — a truncated relation must not be served as a
// complete one.
func TestResultCacheLimitBypass(t *testing.T) {
	w := world.Build()
	rt := runtimeOver(t, simllm.New(simllm.ChatGPT, w, 1), resultCacheOptions(), w)
	ctx := context.Background()

	// OFFSET without LIMIT also truncates (the builder lowers it to a
	// Limit node), so it must bypass too.
	for _, truncated := range []string{rcQuery + ` LIMIT 3`, rcQuery + ` OFFSET 2`} {
		for i := 0; i < 2; i++ {
			_, rep, err := rt.NewSession().Query(ctx, truncated)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Cached != CacheNone {
				t.Fatalf("run %d of %q was served from the result cache (%q)", i+1, truncated, rep.Cached)
			}
		}
	}
	if st := rt.ResultCacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Errorf("truncating queries touched the result cache: %+v", st)
	}
}

// slowClient delays completions so concurrent identical queries overlap
// long enough for the singleflight to be exercised.
type slowClient struct {
	inner llm.Client
	delay time.Duration
}

func (s *slowClient) Name() string { return s.inner.Name() }
func (s *slowClient) Complete(ctx context.Context, p string) (string, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return "", ctx.Err()
	}
	return s.inner.Complete(ctx, p)
}

// TestResultCacheSingleflightStorm: K concurrent identical queries cost
// exactly one execution's model calls, and every caller receives the
// identical relation.
func TestResultCacheSingleflightStorm(t *testing.T) {
	w := world.Build()

	// Reference: one solo execution on an identically seeded runtime.
	soloClient := &countingClient{inner: simllm.New(simllm.ChatGPT, w, 1)}
	soloRT := runtimeOver(t, soloClient, resultCacheOptions(), w)
	soloRel, _, err := soloRT.NewSession().Query(context.Background(), rcQuery)
	if err != nil {
		t.Fatal(err)
	}

	client := &countingClient{inner: &slowClient{inner: simllm.New(simllm.ChatGPT, w, 1), delay: time.Millisecond}}
	rt := runtimeOver(t, client, resultCacheOptions(), w)
	const k = 12
	rels := make([]string, k)
	var cachedCount atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rel, rep, err := rt.NewSession().Query(context.Background(), rcQuery)
			if err != nil {
				t.Error(err)
				return
			}
			rels[i] = rel.String()
			if rep.Cached == CacheExact {
				cachedCount.Add(1)
			}
		}(i)
	}
	wg.Wait()

	if got, want := client.calls.Load(), soloClient.calls.Load(); got != want {
		t.Errorf("%d concurrent identical queries cost %d model calls, want %d (one execution)", k, got, want)
	}
	for i, r := range rels {
		if r != soloRel.String() {
			t.Errorf("caller %d diverged from the solo run:\n%s", i, r)
		}
	}
	if cachedCount.Load() != k-1 {
		t.Errorf("%d of %d callers were cached, want %d (all but the leader)", cachedCount.Load(), k, k-1)
	}
	if st := rt.ResultCacheStats(); st.Misses != 1 || st.Hits != k-1 {
		t.Errorf("result cache stats = %+v, want 1 miss / %d hits", st, k-1)
	}
}

// TestResultFingerprintOptionSetsUnambiguous: distinct per-conjunct
// option sets must never collide in the fingerprint (conjunct keys
// contain spaces, so a plain join would let {"a b","c"} and {"a","b c"}
// alias each other — and with them, cached relations across sessions).
func TestResultFingerprintOptionSetsUnambiguous(t *testing.T) {
	w := world.Build()
	rt := runtimeOver(t, simllm.New(simllm.ChatGPT, w, 1), resultCacheOptions(), w)

	fingerprint := func(set map[string]bool) string {
		s := rt.NewSession()
		opts := s.Options()
		opts.Optimizer.DisableLLMFilter = set
		s.SetOptions(opts)
		plan, err := s.Plan(rcQuery)
		if err != nil {
			t.Fatal(err)
		}
		return s.resultFingerprint(plan)
	}

	a := fingerprint(map[string]bool{"a b": true, "c": true})
	b := fingerprint(map[string]bool{"a": true, "b c": true})
	if a == b {
		t.Error("distinct option sets produced the same result-cache fingerprint")
	}
	if a != fingerprint(map[string]bool{"c": true, "a b": true}) {
		t.Error("option-set fingerprint depends on map iteration order")
	}
}

// versionedClient delegates to one of two deterministic backends. The
// stale-result test flips the version together with a BindLLMTable epoch
// bump, modelling a rebinding that changes what the LLM side answers.
type versionedClient struct {
	v       atomic.Int32
	clients [2]llm.Client
}

func (c *versionedClient) Name() string { return "versioned" }
func (c *versionedClient) Complete(ctx context.Context, p string) (string, error) {
	return c.clients[c.v.Load()].Complete(ctx, p)
}

// TestResultCacheNoStaleAcrossEpochBump is the -race regression for the
// invalidation contract: a storm of identical queries runs while table
// bindings churn concurrently, the backend is swapped together with a
// BindLLMTable bump between phases, and after every bump each newly
// issued query must observe the new backend's relation — a stale cached
// relation must never be served across the epoch.
func TestResultCacheNoStaleAcrossEpochBump(t *testing.T) {
	w := world.Build()
	ctx := context.Background()

	// Reference relations per version, computed on pinned runtimes.
	want := [2]string{}
	for v := 0; v < 2; v++ {
		client := &versionedClient{clients: [2]llm.Client{
			simllm.New(simllm.ChatGPT, w, 1), simllm.New(simllm.GPT3, w, 1),
		}}
		client.v.Store(int32(v))
		rel, _, err := runtimeOver(t, client, resultCacheOptions(), w).NewSession().Query(ctx, rcQuery)
		if err != nil {
			t.Fatal(err)
		}
		want[v] = rel.String()
	}
	if want[0] == want[1] {
		t.Fatal("fixture vacuous: both backends return the same relation")
	}

	client := &versionedClient{clients: [2]llm.Client{
		simllm.New(simllm.ChatGPT, w, 1), simllm.New(simllm.GPT3, w, 1),
	}}
	rt := runtimeOver(t, client, resultCacheOptions(), w)

	storm := func(version int32) {
		t.Helper()
		const k = 8
		var wg sync.WaitGroup
		// Unrelated concurrent binds stress epoch bumps racing the storm:
		// under per-table epochs they must leave this query's entries
		// untouched — and must never let a stale relation through.
		stop := make(chan struct{})
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					if err := rt.BindLLMTable(w.Table("mountain").Def); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rel, _, err := rt.NewSession().Query(ctx, rcQuery)
				if err != nil {
					t.Error(err)
					return
				}
				if got := rel.String(); got != want[version] {
					t.Errorf("version %d storm served a stale relation:\n%s\nwant:\n%s", version, got, want[version])
				}
			}()
		}
		wg.Wait()
		close(stop)
	}

	for round := 0; round < 3; round++ {
		for v := int32(0); v < 2; v++ {
			// Swap the backend, then publish the change with the bump: a
			// query issued after BindLLMTable returns must see version v.
			client.v.Store(v)
			if err := rt.BindLLMTable(w.Table("country").Def); err != nil {
				t.Fatal(err)
			}
			storm(v)
		}
	}
}
