package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/llm"
	"repro/internal/optimizer"
)

// routeOverrides parses and validates the session's per-role backend
// overrides against the runtime's registry. Nil when the session sets
// none.
func (s *Session) routeOverrides() (map[llm.Role]string, error) {
	if len(s.opts.Routes) == 0 {
		return nil, nil
	}
	out := make(map[llm.Role]string, len(s.opts.Routes))
	for roleName, backend := range s.opts.Routes {
		role, err := llm.ParseRole(roleName)
		if err != nil {
			return nil, fmt.Errorf("core: session route: %w", err)
		}
		if _, ok := s.rt.registry.Get(backend); !ok {
			return nil, fmt.Errorf("core: session route %s -> %q: backend not declared", role, backend)
		}
		out[role] = backend
	}
	return out, nil
}

// verifyRoute reports the backend the verify role is explicitly routed
// to — session override first, then the runtime's role route. A verify
// route turns verification on even without an Options.Verifier client:
// the routed backend provides the second opinion.
func (s *Session) verifyRoute(overrides map[llm.Role]string) (string, bool) {
	if b, ok := overrides[llm.RoleVerify]; ok && b != "" {
		return b, true
	}
	if b, ok := s.rt.registry.Routes()[llm.RoleVerify]; ok && b != "" {
		return b, true
	}
	return "", false
}

// verifyEnabled reports whether fetched values are double-checked this
// session: an explicit verifier client or a routed verify backend.
func (s *Session) verifyEnabled(overrides map[llm.Role]string) bool {
	if s.opts.Verifier != nil {
		return true
	}
	_, ok := s.verifyRoute(overrides)
	return ok
}

// priceFor builds the optimizer's backend-pricing hook over a routing
// view: each operator role is charged the cost weight and speed factor
// of the backend it would route to. Nil (unpriced estimates, identical
// to the single-backend planner) when the runtime declared no explicit
// backends.
func (s *Session) priceFor(router *llm.Router) func(role llm.Role, table string) optimizer.BackendPrice {
	if !s.rt.routed {
		return nil
	}
	return func(role llm.Role, table string) optimizer.BackendPrice {
		b, err := router.Backend(role, s.rt.tableBackend(table))
		if err != nil || b == nil {
			b = s.rt.registry.Default()
		}
		return optimizer.BackendPrice{Backend: b.Name(), CostWeight: b.CostWeight(), SpeedFactor: b.SpeedFactor()}
	}
}

// promptEnv is one query's routed transport environment: a routing view
// with the session's overrides applied, one stats recorder per distinct
// failover chain (an unrouted runtime degenerates to exactly one), and
// the resolved verifier. Route resolution is memoized by chain, so every
// operator sharing a route shares a recorder and the scheduler sees one
// client identity per chain.
type promptEnv struct {
	s      *Session
	router *llm.Router

	mu      sync.Mutex
	byChain map[string]*llm.Recorder
	recs    []*llm.Recorder

	primary  *llm.Recorder
	verifier *llm.Recorder // nil when verification is off this session
}

// promptEnv builds the environment for one query's execution.
func (s *Session) promptEnv() (*promptEnv, error) {
	overrides, err := s.routeOverrides()
	if err != nil {
		return nil, err
	}
	env := &promptEnv{
		s:       s,
		router:  s.rt.registry.Router(overrides),
		byChain: map[string]*llm.Recorder{},
	}
	// The empty role resolves to the default backend's chain: the client
	// operators fall back to and faults are attributed to by default.
	env.primary = env.clientFor("", "")
	if name, ok := s.verifyRoute(overrides); ok && name != "" {
		env.verifier = env.clientFor(llm.RoleVerify, "")
	} else if s.opts.Verifier != nil {
		adopted := s.rt.registry.Adopt(s.opts.Verifier)
		rec := llm.NewRecorder(adopted)
		env.recs = append(env.recs, rec)
		env.verifier = rec
	}
	return env, nil
}

// clientFor resolves one prompt role (plus an optional table-pinned
// backend) to its recorded, failover-capable client. Roles resolving to
// the same chain share one recorder; resolution failures fall back to
// the primary (overrides and pins are validated before execution, so
// that path is defensive only).
func (e *promptEnv) clientFor(role llm.Role, tableBackend string) *llm.Recorder {
	e.mu.Lock()
	defer e.mu.Unlock()
	chain, err := e.router.Chain(role, tableBackend)
	if err != nil || len(chain) == 0 {
		return e.primary
	}
	names := make([]string, len(chain))
	for i, b := range chain {
		names[i] = b.Name()
	}
	key := strings.Join(names, "\x1f")
	if rec, ok := e.byChain[key]; ok {
		return rec
	}
	client, err := e.router.Client(role, tableBackend)
	if err != nil {
		return e.primary
	}
	rec := llm.NewRecorder(client)
	e.byChain[key] = rec
	e.recs = append(e.recs, rec)
	return rec
}

// clientForRole adapts clientFor to the physical layer's Route hook
// signature. A clientless runtime resolves every role to nil (not a
// typed-nil interface), so operators report the usual missing-client
// error.
func (e *promptEnv) clientForRole(role llm.Role, tableBackend string) llm.Client {
	if rec := e.clientFor(role, tableBackend); rec != nil {
		return rec
	}
	return nil
}

// primaryClient returns the default-chain client as an interface, nil
// when the runtime has no backends.
func (e *promptEnv) primaryClient() llm.Client {
	if e.primary != nil {
		return e.primary
	}
	return nil
}

// stats sums the usage of every distinct recorder the query routed
// prompts through (the verifier's included, counted once even when it
// shares the primary's chain).
func (e *promptEnv) stats() llm.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	var total llm.Stats
	for _, rec := range e.recs {
		total.Add(rec.Stats())
	}
	return total
}

// fingerprintRoutes renders the session's route overrides into the
// options fingerprint: routing selects the model that answers, so two
// sessions with different routes must never share cached results.
// Unrouted sessions contribute nothing, keeping their fingerprints
// byte-identical with the pre-routing engine.
func fingerprintRoutes(b *strings.Builder, routes map[string]string) {
	if len(routes) == 0 {
		return
	}
	keys := make([]string, 0, len(routes))
	for k := range routes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("routes=")
	for _, k := range keys {
		fmt.Fprintf(b, "%s:%s,", k, routes[k])
	}
	b.WriteByte('|')
}
