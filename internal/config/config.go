// Package config loads the engine's multi-backend routing declaration
// — the `galois.yaml` the CLIs accept via -config. The file names the
// model backends (each with its own scheduler budget, optimizer pricing
// and failover chain), the default backend, and the role routes:
//
//	# galois.yaml
//	default: strong
//	backends:
//	  - name: cheap
//	    model: gpt3        # simulated model profile
//	    seed: 7            # optional noise seed (0 = the CLI's -seed)
//	    workers: 2         # optional per-endpoint worker budget
//	    cost: 0.25         # optimizer price per prompt (default 1.0)
//	    speed: 0.5         # optimizer latency multiplier (default 1.0)
//	    fallback: [strong] # failover chain, in order
//	  - name: strong
//	    model: chatgpt
//	routes:
//	  keyscan: cheap
//	  filter: cheap
//
// The syntax is the small YAML subset above — scalar top-level keys, a
// list of flat maps, one string map, flow lists, '#' comments — parsed
// by hand so the engine stays dependency-free. Anything outside the
// subset is a load error, not silently ignored.
package config

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/llm"
)

// Backend declares one named model backend.
type Backend struct {
	// Name is the backend's registry identity (routes, fallback chains,
	// scheduler pools, error attribution).
	Name string
	// Model names the simulated model profile serving this backend
	// (flan, tk, gpt3, chatgpt).
	Model string
	// Seed overrides the model's noise seed (0 = inherit the CLI seed).
	Seed int64
	// Workers overrides the scheduler's per-endpoint worker budget
	// (0 = the engine default).
	Workers int
	// Cost is the optimizer's relative price per prompt (0 = 1.0).
	Cost float64
	// Speed scales the backend's estimated per-prompt latency in plan
	// pricing (0 = 1.0; below 1 is faster).
	Speed float64
	// Fallback names the backends calls fail over to, in order.
	Fallback []string
}

// Config is one parsed routing declaration.
type Config struct {
	// Default names the backend unrouted roles use ("" = the first
	// declared backend).
	Default string
	// Backends lists the declared backends in file order.
	Backends []Backend
	// Routes binds prompt roles (keyscan, fetch, filter, verify) to
	// backend names.
	Routes map[string]string
}

// Load reads and parses path, validating the result.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// Parse parses a routing declaration from source text and validates it.
func Parse(src string) (*Config, error) {
	cfg := &Config{Routes: map[string]string{}}
	p := &parser{}
	// section tracks which top-level block indented lines belong to.
	const (
		secNone = iota
		secBackends
		secRoutes
	)
	section := secNone
	var cur *Backend

	flush := func() {
		if cur != nil {
			cfg.Backends = append(cfg.Backends, *cur)
			cur = nil
		}
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		p.line = lineNo + 1
		line := stripComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		if strings.Contains(line[:indent+1], "\t") {
			return nil, p.errf("tab indentation (use spaces)")
		}
		text := strings.TrimSpace(line)

		if indent == 0 {
			flush()
			key, val, err := splitKV(text)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			switch key {
			case "default":
				if val == "" {
					return nil, p.errf("default: missing backend name")
				}
				cfg.Default = val
			case "backends":
				if val != "" {
					return nil, p.errf("backends: must introduce a list")
				}
				section = secBackends
			case "routes":
				if val != "" {
					return nil, p.errf("routes: must introduce a map")
				}
				section = secRoutes
			default:
				return nil, p.errf("unknown top-level key %q (want default, backends or routes)", key)
			}
			continue
		}

		switch section {
		case secBackends:
			if strings.HasPrefix(text, "- ") || text == "-" {
				flush()
				cur = &Backend{}
				text = strings.TrimSpace(strings.TrimPrefix(text, "-"))
				if text == "" {
					continue
				}
			}
			if cur == nil {
				return nil, p.errf("backend field outside a '- ' list item")
			}
			key, val, err := splitKV(text)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			if err := p.setBackendField(cur, key, val); err != nil {
				return nil, err
			}
		case secRoutes:
			key, val, err := splitKV(text)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			if val == "" {
				return nil, p.errf("route %s: missing backend name", key)
			}
			if _, ok := cfg.Routes[key]; ok {
				return nil, p.errf("route %s declared twice", key)
			}
			cfg.Routes[key] = val
		default:
			return nil, p.errf("indented line outside a block")
		}
	}
	flush()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// parser carries the current line for error attribution.
type parser struct{ line int }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) setBackendField(b *Backend, key, val string) error {
	switch key {
	case "name":
		b.Name = val
	case "model":
		b.Model = val
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return p.errf("seed: %q is not an integer", val)
		}
		b.Seed = n
	case "workers":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return p.errf("workers: %q is not a non-negative integer", val)
		}
		b.Workers = n
	case "cost":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return p.errf("cost: %q is not a non-negative number", val)
		}
		b.Cost = f
	case "speed":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return p.errf("speed: %q is not a non-negative number", val)
		}
		b.Speed = f
	case "fallback":
		list, err := parseFlowList(val)
		if err != nil {
			return p.errf("fallback: %v", err)
		}
		b.Fallback = list
	default:
		return p.errf("unknown backend field %q", key)
	}
	return nil
}

// validate cross-checks the parsed declaration: unique non-empty names,
// models present, declared default/fallbacks/route targets, valid roles.
func (cfg *Config) validate() error {
	if len(cfg.Backends) == 0 {
		return fmt.Errorf("no backends declared")
	}
	names := map[string]bool{}
	for _, b := range cfg.Backends {
		if b.Name == "" {
			return fmt.Errorf("backend with no name")
		}
		if names[b.Name] {
			return fmt.Errorf("backend %q declared twice", b.Name)
		}
		names[b.Name] = true
		if b.Model == "" {
			return fmt.Errorf("backend %q: no model", b.Name)
		}
	}
	for _, b := range cfg.Backends {
		for _, fb := range b.Fallback {
			if fb == b.Name {
				return fmt.Errorf("backend %q lists itself as fallback", b.Name)
			}
			if !names[fb] {
				return fmt.Errorf("backend %q fallback %q not declared", b.Name, fb)
			}
		}
	}
	if cfg.Default != "" && !names[cfg.Default] {
		return fmt.Errorf("default backend %q not declared", cfg.Default)
	}
	for roleName, target := range cfg.Routes {
		if _, err := llm.ParseRole(roleName); err != nil {
			return fmt.Errorf("route: %v", err)
		}
		if !names[target] {
			return fmt.Errorf("route %s -> %q: backend not declared", roleName, target)
		}
	}
	return nil
}

// stripComment removes a trailing '#' comment (quotes are not honored —
// the subset has no quoted strings containing '#').
func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		return line[:i]
	}
	return line
}

// splitKV splits "key: value" (value may be empty).
func splitKV(text string) (key, val string, err error) {
	i := strings.IndexByte(text, ':')
	if i < 0 {
		return "", "", fmt.Errorf("expected 'key: value', got %q", text)
	}
	key = strings.TrimSpace(text[:i])
	val = strings.TrimSpace(text[i+1:])
	if key == "" {
		return "", "", fmt.Errorf("empty key in %q", text)
	}
	return key, unquote(val), nil
}

// parseFlowList parses "[a, b, c]" (or a bare single name) into its
// elements.
func parseFlowList(val string) ([]string, error) {
	if val == "" {
		return nil, fmt.Errorf("empty list")
	}
	if !strings.HasPrefix(val, "[") {
		return []string{unquote(val)}, nil
	}
	if !strings.HasSuffix(val, "]") {
		return nil, fmt.Errorf("unterminated list %q", val)
	}
	inner := strings.TrimSpace(val[1 : len(val)-1])
	if inner == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(inner, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		e := unquote(strings.TrimSpace(p))
		if e == "" {
			return nil, fmt.Errorf("empty element in %q", val)
		}
		out = append(out, e)
	}
	return out, nil
}

// unquote strips one level of matching single or double quotes.
func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
