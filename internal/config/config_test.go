package config

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sample = `
# galois.yaml — two backends, cheap roles routed to the small model
default: strong
backends:
  - name: cheap
    model: gpt3
    seed: 7
    workers: 2
    cost: 0.25
    speed: 0.5
    fallback: [strong]
  - name: strong
    model: chatgpt   # trailing comment
routes:
  keyscan: cheap
  filter: cheap
`

func TestParseSample(t *testing.T) {
	cfg, err := Parse(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.Default != "strong" {
		t.Fatalf("Default = %q", cfg.Default)
	}
	want := []Backend{
		{Name: "cheap", Model: "gpt3", Seed: 7, Workers: 2, Cost: 0.25, Speed: 0.5, Fallback: []string{"strong"}},
		{Name: "strong", Model: "chatgpt"},
	}
	if !reflect.DeepEqual(cfg.Backends, want) {
		t.Fatalf("Backends = %+v, want %+v", cfg.Backends, want)
	}
	if !reflect.DeepEqual(cfg.Routes, map[string]string{"keyscan": "cheap", "filter": "cheap"}) {
		t.Fatalf("Routes = %v", cfg.Routes)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "galois.yaml")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(cfg.Backends) != 2 {
		t.Fatalf("backends = %d, want 2", len(cfg.Backends))
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.yaml")); err == nil {
		t.Fatalf("Load missing file: want error")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"empty", "", "no backends"},
		{"no model", "backends:\n  - name: a\n", "no model"},
		{"no name", "backends:\n  - model: chatgpt\n", "no name"},
		{"dup name", "backends:\n  - name: a\n    model: m\n  - name: a\n    model: m\n", "twice"},
		{"bad default", "default: ghost\nbackends:\n  - name: a\n    model: m\n", "ghost"},
		{"self fallback", "backends:\n  - name: a\n    model: m\n    fallback: [a]\n", "itself"},
		{"unknown fallback", "backends:\n  - name: a\n    model: m\n    fallback: [b]\n", "not declared"},
		{"bad role", "backends:\n  - name: a\n    model: m\nroutes:\n  scan: a\n", "unknown prompt role"},
		{"route target", "backends:\n  - name: a\n    model: m\nroutes:\n  keyscan: b\n", "not declared"},
		{"dup route", "backends:\n  - name: a\n    model: m\nroutes:\n  keyscan: a\n  keyscan: a\n", "twice"},
		{"unknown top key", "verifier: x\n", "unknown top-level key"},
		{"unknown field", "backends:\n  - name: a\n    temperature: 1\n", "unknown backend field"},
		{"bad seed", "backends:\n  - name: a\n    model: m\n    seed: abc\n", "not an integer"},
		{"bad workers", "backends:\n  - name: a\n    model: m\n    workers: -1\n", "non-negative"},
		{"bad cost", "backends:\n  - name: a\n    model: m\n    cost: cheap\n", "non-negative"},
		{"tab indent", "backends:\n\t- name: a\n", "tab"},
		{"orphan field", "backends:\n  name: a\n", "list item"},
		{"orphan indent", "  stray: 1\n", "outside a block"},
		{"unterminated list", "backends:\n  - name: a\n    model: m\n    fallback: [b\n", "unterminated"},
		{"missing colon", "backends:\n  - name a\n", "key: value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse: want error containing %q", tc.frag)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error = %v, want fragment %q", err, tc.frag)
			}
		})
	}
}

func TestParseQuotedAndBareList(t *testing.T) {
	cfg, err := Parse("backends:\n  - name: \"a\"\n    model: 'chatgpt'\n    fallback: b\n  - name: b\n    model: m\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.Backends[0].Name != "a" || cfg.Backends[0].Model != "chatgpt" {
		t.Fatalf("quotes not stripped: %+v", cfg.Backends[0])
	}
	if !reflect.DeepEqual(cfg.Backends[0].Fallback, []string{"b"}) {
		t.Fatalf("bare fallback = %v, want [b]", cfg.Backends[0].Fallback)
	}
	if cfg.Default != "" {
		t.Fatalf("Default = %q, want first-declared semantics (empty)", cfg.Default)
	}
}
