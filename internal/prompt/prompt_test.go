package prompt

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKeyListFirst(t *testing.T) {
	b := &Builder{} // no preamble: easier golden checks
	got := b.KeyList("city", "name", nil, nil)
	want := "List the names of all cities. Return one name per line. If you do not know any, answer Unknown."
	if got != want {
		t.Errorf("KeyList =\n%q\nwant\n%q", got, want)
	}
}

func TestKeyListMoreWithExclusions(t *testing.T) {
	b := &Builder{}
	got := b.KeyList("city", "name", nil, []string{"Paris", "Rome"})
	want := "List more names of cities. Do not repeat any of: Paris; Rome. Return one name per line. If there are no more, answer Done."
	if got != want {
		t.Errorf("more prompt =\n%q\nwant\n%q", got, want)
	}
}

func TestKeyListPushedConditions(t *testing.T) {
	b := &Builder{}
	conds := []Condition{
		{Attr: "population", OpPhrase: "more than", Value: "1000000"},
		{Attr: "elevation", OpPhrase: "less than", Value: "100"},
	}
	got := b.KeyList("city", "name", conds, nil)
	if !strings.Contains(got, "cities with population more than 1000000 and elevation less than 100.") {
		t.Errorf("pushed conditions missing: %q", got)
	}
}

func TestAttrPrompt(t *testing.T) {
	b := &Builder{}
	got := b.Attr("mayor", "B. Obama", "birthDate")
	want := "What is the birth date of the mayor B. Obama? Answer with only the value. If unknown, answer Unknown."
	if got != want {
		t.Errorf("Attr =\n%q\nwant\n%q", got, want)
	}
}

// TestFilterPromptPaperTemplate instantiates the paper's exact template
// example: "Has politician B. Obama age less than 40?" (Section 4).
func TestFilterPromptPaperTemplate(t *testing.T) {
	b := &Builder{}
	got := b.Filter("politician", "B. Obama", "age", "less than", "40")
	want := "Has politician B. Obama age less than 40? Answer yes or no."
	if got != want {
		t.Errorf("Filter =\n%q\nwant\n%q", got, want)
	}
}

func TestPreambleIncluded(t *testing.T) {
	b := NewBuilder()
	got := b.KeyList("city", "name", nil, nil)
	if !strings.HasPrefix(got, FewShotPreamble) {
		t.Error("default builder must prepend the few-shot preamble")
	}
}

// TestFigure4Verbatim pins the Figure 4 preamble content.
func TestFigure4Verbatim(t *testing.T) {
	mustContain := []string{
		"I am a highly intelligent question answering bot.",
		`I will respond with "Unknown"`,
		"Q: What is human life expectancy in the United States?",
		"A: 78.",
		"Q: Who was president of the United States in 1955?",
		"A: Dwight D. Eisenhower.",
		"Q: What is the capital of France?",
		"A: Paris.",
		"Q: What is a continent starting with letter O?",
		"A: Oceania.",
		"Q: Where were the 1992 Olympics held?",
		"A: Barcelona.",
		"Q: How many squigs are in a bonk?",
		"A: Unknown",
	}
	for _, s := range mustContain {
		if !strings.Contains(FewShotPreamble, s) {
			t.Errorf("Figure 4 preamble missing %q", s)
		}
	}
}

func TestQuestionPrompts(t *testing.T) {
	b := NewBuilder()
	q := b.Question("What is the capital of Italy?")
	if !strings.HasSuffix(q, "Q: What is the capital of Italy?\nA:") {
		t.Errorf("Question = %q", q)
	}
	cot := b.CoTQuestion("What is the capital of Italy?")
	if !strings.Contains(cot, CoTExemplar) || !strings.Contains(cot, "reason step by step") {
		t.Errorf("CoTQuestion missing exemplar: %q", cot)
	}
}

func TestOpPhraseRoundTrip(t *testing.T) {
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		phrase := OpPhrase(op)
		back, ok := ParseOpPhrase(phrase)
		if !ok || back != op {
			t.Errorf("OpPhrase round trip %q → %q → %q", op, phrase, back)
		}
	}
	if _, ok := ParseOpPhrase("whatever"); ok {
		t.Error("unknown phrase must not parse")
	}
}

func TestHumanize(t *testing.T) {
	cases := map[string]string{
		"independence_year": "independence year",
		"birthDate":         "birth date",
		"name":              "name",
		"GDP":               "gdp",
		"mountain_range":    "mountain range",
		"electionYear":      "election year",
	}
	for in, want := range cases {
		if got := Humanize(in); got != want {
			t.Errorf("Humanize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPluralize(t *testing.T) {
	cases := map[string]string{
		"city":           "cities",
		"country":        "countries",
		"airport":        "airports",
		"bus":            "buses",
		"church":         "churches",
		"box":            "boxes",
		"mayor":          "mayors",
		"day":            "days", // vowel+y
		"mountain range": "mountain ranges",
	}
	for in, want := range cases {
		if got := Pluralize(in); got != want {
			t.Errorf("Pluralize(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: Singularize inverts Pluralize on the nouns we use.
func TestSingularizeInverse(t *testing.T) {
	nouns := []string{"city", "country", "airport", "singer", "stadium", "mountain", "mayor", "bus", "church"}
	for _, n := range nouns {
		if got := Singularize(Pluralize(n)); got != n {
			t.Errorf("Singularize(Pluralize(%q)) = %q", n, got)
		}
	}
	// And it holds for random lowercase words without tricky suffixes.
	f := func(seed uint32) bool {
		word := genWord(seed)
		if word == "" || strings.HasSuffix(word, "s") || strings.HasSuffix(word, "y") ||
			strings.HasSuffix(word, "x") || strings.HasSuffix(word, "h") ||
			strings.HasSuffix(word, "e") {
			// Plurals of these suffixes are ambiguous to invert
			// ("ses" could be se+s or s+es); skip them.
			return true
		}
		return Singularize(Pluralize(word)) == word
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func genWord(seed uint32) string {
	n := int(seed%6) + 1
	var b strings.Builder
	x := seed
	for i := 0; i < n; i++ {
		x = x*1664525 + 1013904223
		b.WriteByte(byte('a' + (x>>16)%26))
	}
	return b.String()
}
