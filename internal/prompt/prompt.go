// Package prompt builds the textual prompts that implement Galois's
// physical operators (Section 4): key-list retrieval for leaf scans,
// "return more results" iteration, per-key attribute fetches, and per-key
// boolean filters. Prompts are generated automatically from the operator,
// the schema labels and the selection conditions — no human annotation.
//
// The canonical wording lives in exported constants so the simulated LLM
// (package simllm) can recognize the same prompts a real model would
// receive as plain text.
package prompt

import (
	"strings"
)

// Canonical wording anchors. simllm keys its prompt understanding on
// these; changing one requires changing both sides, which is exactly the
// prompt-engineering coupling the paper describes.
const (
	ListAnchor    = "List the names of all"
	MoreAnchor    = "List more names of"
	ExcludeAnchor = "Do not repeat any of:"
	AttrAnchor    = "What is the"
	FilterAnchor  = "Has"
	DoneMarker    = "Done"
	UnknownMarker = "Unknown"
	LineFormat    = "Return one name per line."
	ValueFormat   = "Answer with only the value."
	YesNoFormat   = "Answer yes or no."
)

// FewShotPreamble is the GPT-3 instruction-plus-examples prompt from
// Figure 4 of the paper, reproduced verbatim.
const FewShotPreamble = `I am a highly intelligent question answering bot. If you ask me a question that is rooted in truth, I will give you the short answer. If you ask me a question that is nonsense, trickery, or has no clear answer, I will respond with "Unknown". If the answer is numerical, I will return the number only.

Q: What is human life expectancy in the United States?
A: 78.
Q: Who was president of the United States in 1955?
A: Dwight D. Eisenhower.
Q: What is the capital of France?
A: Paris.
Q: What is a continent starting with letter O?
A: Oceania.
Q: Where were the 1992 Olympics held?
A: Barcelona.
Q: How many squigs are in a bonk?
A: Unknown
`

// CoTExemplar is the fixed, manually crafted chain-of-thought example used
// by the T_M^C baseline (Section 5): one worked decomposition, followed by
// the actual question and an instruction to reason step by step.
const CoTExemplar = `Example:
Question: List the names of the cities and the mayor birth date for the cities where the current mayor has been in charge since 2019.
Let's break the task into steps.
Step 1: list city names.
Step 2: for each city, find its current mayor.
Step 3: for each mayor, check if they took charge in 2019; keep only those cities.
Step 4: for each remaining mayor, find the birth date.
Step 5: output one line per city: city name, mayor birth date.
`

// Condition is a selection merged into a list prompt by the prompt
// pushdown optimization ("get names of cities with > 1M population").
type Condition struct {
	Attr     string // humanized attribute label
	OpPhrase string // "more than", "equal to", ...
	Value    string
}

// Builder assembles prompts. IncludePreamble controls whether retrieval
// prompts are prefixed with the few-shot preamble (the paper constructs
// prompts "appropriately for each model").
type Builder struct {
	IncludePreamble bool
}

// NewBuilder returns a Builder with the preamble enabled.
func NewBuilder() *Builder { return &Builder{IncludePreamble: true} }

func (b *Builder) wrap(body string) string {
	if b.IncludePreamble {
		return FewShotPreamble + "\n" + body
	}
	return body
}

// KeyList builds the leaf-scan prompt retrieving the key attribute values
// of a relation, optionally with pushed-down conditions and an exclusion
// list for the "more results" iteration.
func (b *Builder) KeyList(relation, keyAttr string, conds []Condition, exclude []string) string {
	var s strings.Builder
	if len(exclude) == 0 {
		s.WriteString(ListAnchor)
	} else {
		s.WriteString(MoreAnchor)
	}
	s.WriteByte(' ')
	s.WriteString(Pluralize(Humanize(relation)))
	for i, c := range conds {
		if i == 0 {
			s.WriteString(" with ")
		} else {
			s.WriteString(" and ")
		}
		s.WriteString(c.Attr)
		s.WriteByte(' ')
		s.WriteString(c.OpPhrase)
		s.WriteByte(' ')
		s.WriteString(c.Value)
	}
	s.WriteByte('.')
	if len(exclude) > 0 {
		s.WriteByte(' ')
		s.WriteString(ExcludeAnchor)
		s.WriteByte(' ')
		s.WriteString(strings.Join(exclude, "; "))
		s.WriteByte('.')
	}
	s.WriteByte(' ')
	s.WriteString(LineFormat)
	if len(exclude) > 0 {
		s.WriteString(" If there are no more, answer " + DoneMarker + ".")
	} else {
		s.WriteString(" If you do not know any, answer " + UnknownMarker + ".")
	}
	return b.wrap(s.String())
}

// Attr builds the per-key attribute fetch prompt: "What is the birth date
// of the politician B. Obama? Answer with only the value."
func (b *Builder) Attr(relation, key, attr string) string {
	var s strings.Builder
	s.WriteString(AttrAnchor)
	s.WriteByte(' ')
	s.WriteString(Humanize(attr))
	s.WriteString(" of the ")
	s.WriteString(Humanize(relation))
	s.WriteByte(' ')
	s.WriteString(key)
	s.WriteString("? ")
	s.WriteString(ValueFormat)
	s.WriteString(" If unknown, answer " + UnknownMarker + ".")
	return b.wrap(s.String())
}

// Filter builds the per-key boolean selection prompt, instantiating the
// paper's template "Has relationName keyName attributeName operator
// value?" — e.g. "Has politician B. Obama age less than 40?".
func (b *Builder) Filter(relation, key, attr, opPhrase, val string) string {
	var s strings.Builder
	s.WriteString(FilterAnchor)
	s.WriteByte(' ')
	s.WriteString(Humanize(relation))
	s.WriteByte(' ')
	s.WriteString(key)
	s.WriteByte(' ')
	s.WriteString(Humanize(attr))
	s.WriteByte(' ')
	s.WriteString(opPhrase)
	s.WriteByte(' ')
	s.WriteString(val)
	s.WriteString("? ")
	s.WriteString(YesNoFormat)
	return b.wrap(s.String())
}

// Question builds the plain QA prompt for the T_M baseline.
func (b *Builder) Question(q string) string {
	return FewShotPreamble + "\nQ: " + q + "\nA:"
}

// CoTQuestion builds the chain-of-thought QA prompt for T_M^C.
func (b *Builder) CoTQuestion(q string) string {
	return FewShotPreamble + "\n" + CoTExemplar + "\nQuestion: " + q + "\nLet's reason step by step, then answer.\nA:"
}

// OpPhrase renders a SQL comparison operator as the natural-language
// phrase used in prompts.
func OpPhrase(op string) string {
	switch op {
	case "=":
		return "equal to"
	case "!=":
		return "different from"
	case "<":
		return "less than"
	case "<=":
		return "at most"
	case ">":
		return "more than"
	case ">=":
		return "at least"
	default:
		return op
	}
}

// ParseOpPhrase is the inverse of OpPhrase; ok is false for unknown
// phrases.
func ParseOpPhrase(phrase string) (string, bool) {
	switch phrase {
	case "equal to":
		return "=", true
	case "different from":
		return "!=", true
	case "less than":
		return "<", true
	case "at most":
		return "<=", true
	case "more than":
		return ">", true
	case "at least":
		return ">=", true
	}
	return "", false
}

// Humanize turns a schema label into prompt-friendly words:
// "independence_year" → "independence year", "birthDate" → "birth date".
func Humanize(label string) string {
	var b strings.Builder
	prevLower := false
	for _, r := range label {
		switch {
		case r == '_' || r == '-':
			b.WriteByte(' ')
			prevLower = false
		case r >= 'A' && r <= 'Z':
			if prevLower {
				b.WriteByte(' ')
			}
			b.WriteRune(r - 'A' + 'a')
			prevLower = false
		default:
			b.WriteRune(r)
			prevLower = r >= 'a' && r <= 'z' || r >= '0' && r <= '9'
		}
	}
	return strings.TrimSpace(b.String())
}

// Pluralize produces the plural of a (humanized) relation noun: city →
// cities, country → countries, airport → airports, bus → buses.
func Pluralize(noun string) string {
	if noun == "" {
		return noun
	}
	// Pluralize only the head noun's last word.
	words := strings.Fields(noun)
	last := words[len(words)-1]
	switch {
	case strings.HasSuffix(last, "s") || strings.HasSuffix(last, "x") ||
		strings.HasSuffix(last, "ch") || strings.HasSuffix(last, "sh"):
		last += "es"
	case strings.HasSuffix(last, "y") && len(last) > 1 && !isVowel(last[len(last)-2]):
		last = last[:len(last)-1] + "ies"
	default:
		last += "s"
	}
	words[len(words)-1] = last
	return strings.Join(words, " ")
}

// Singularize is the inverse of Pluralize for the forms it produces.
func Singularize(noun string) string {
	words := strings.Fields(noun)
	if len(words) == 0 {
		return noun
	}
	last := words[len(words)-1]
	switch {
	case strings.HasSuffix(last, "ies"):
		last = last[:len(last)-3] + "y"
	case strings.HasSuffix(last, "ches") || strings.HasSuffix(last, "shes") ||
		strings.HasSuffix(last, "xes") || strings.HasSuffix(last, "ses"):
		last = last[:len(last)-2]
	case strings.HasSuffix(last, "s") && !strings.HasSuffix(last, "ss"):
		last = last[:len(last)-1]
	}
	words[len(words)-1] = last
	return strings.Join(words, " ")
}

func isVowel(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}
