package memdb

import (
	"context"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/world"
)

func setup(t *testing.T) *DB {
	t.Helper()
	db := New()
	ctx := context.Background()
	script := `
CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score FLOAT);
INSERT INTO t VALUES (1, 'Ann', 3.5), (2, 'Bob', 2.0), (3, 'Cid', 4.5);
`
	if _, err := db.ExecScript(ctx, script); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := setup(t)
	rel, err := db.QuerySQL(context.Background(), "SELECT name FROM t WHERE score > 3 ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 2 || rel.Rows[0][0].AsString() != "Ann" {
		t.Errorf("result = %v", rel.Rows)
	}
}

func TestInsertColumnOrder(t *testing.T) {
	db := setup(t)
	ctx := context.Background()
	if _, err := db.Exec(ctx, "INSERT INTO t (score, id, name) VALUES (1.0, 4, 'Dee')"); err != nil {
		t.Fatal(err)
	}
	rel, err := db.QuerySQL(ctx, "SELECT score FROM t WHERE id = 4")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 1 || rel.Rows[0][0].AsFloat() != 1.0 {
		t.Errorf("reordered insert = %v", rel.Rows)
	}
}

func TestInsertCoercion(t *testing.T) {
	db := setup(t)
	ctx := context.Background()
	// Integer literal into a FLOAT column coerces.
	if _, err := db.Exec(ctx, "INSERT INTO t VALUES (5, 'Eli', 4)"); err != nil {
		t.Fatal(err)
	}
	// Fractional into INT fails.
	if _, err := db.Exec(ctx, "INSERT INTO t VALUES (6.5, 'Fay', 1.0)"); err == nil {
		t.Error("fractional id must fail coercion")
	}
}

func TestErrors(t *testing.T) {
	db := setup(t)
	ctx := context.Background()
	if _, err := db.Exec(ctx, "CREATE TABLE t (x INT)"); err == nil {
		t.Error("duplicate table must fail")
	}
	if _, err := db.Exec(ctx, "INSERT INTO missing VALUES (1)"); err == nil {
		t.Error("insert into missing table must fail")
	}
	if _, err := db.QuerySQL(ctx, "SELECT zzz FROM t"); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := db.QuerySQL(ctx, "SELECT * FROM missing"); err == nil {
		t.Error("unknown table must fail")
	}
	if _, err := db.Exec(ctx, "INSERT INTO t (id) VALUES (9)"); err == nil {
		t.Error("partial column list must fail")
	}
}

func TestResolveTable(t *testing.T) {
	db := setup(t)
	def, source, err := db.ResolveTable("T", "")
	if err != nil || source != "DB" || def.Name != "t" {
		t.Errorf("ResolveTable = %v %q %v", def, source, err)
	}
	if _, _, err := db.ResolveTable("none", ""); err == nil {
		t.Error("missing table must fail")
	}
}

func TestLoadRelationAndTables(t *testing.T) {
	db := New()
	def := &schema.TableDef{
		Name:      "k",
		KeyColumn: "a",
		Schema:    schema.New(schema.Column{Name: "a", Type: value.KindInt}),
	}
	rel := schema.NewRelation(def.Schema.Clone())
	rel.Append(schema.Tuple{value.Int(7)})
	if err := db.LoadRelation(def, rel); err != nil {
		t.Fatal(err)
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "k" {
		t.Errorf("Tables = %v", got)
	}
	out, err := db.Relation("k")
	if err != nil || out.Cardinality() != 1 {
		t.Errorf("Relation = %v, %v", out, err)
	}
}

// TestGroundTruthQueries runs representative benchmark-style queries over
// the full world load to pin exact ground-truth values.
func TestGroundTruthQueries(t *testing.T) {
	w := world.Build()
	db := New()
	for _, name := range w.Tables() {
		if err := db.LoadRelation(w.Table(name).Def, w.Relation(name)); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()

	rel, err := db.QuerySQL(ctx, "SELECT COUNT(*) FROM country")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0].AsInt() != 48 {
		t.Errorf("COUNT(country) = %v", rel.Rows[0][0])
	}

	rel, err = db.QuerySQL(ctx, "SELECT name FROM country WHERE continent = 'Europe' AND population > 50000000 ORDER BY population DESC")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() == 0 || rel.Rows[0][0].AsString() != "Russia" {
		t.Errorf("big European countries = %v", rel.Rows)
	}

	rel, err = db.QuerySQL(ctx, "SELECT c.name, m.election_year FROM city c, mayor m WHERE c.mayor = m.name AND m.election_year = 2019")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() == 0 {
		t.Error("Figure 1 ground truth should be non-empty")
	}
	for _, row := range rel.Rows {
		if row[1].AsInt() != 2019 {
			t.Errorf("election year filter leaked %v", row)
		}
	}

	// The hybrid ground truth: join on alpha-3 codes.
	rel, err = db.QuerySQL(ctx, "SELECT c.gdp, AVG(e.salary) FROM country c, Employees e WHERE c.code = e.countryCode GROUP BY e.countryCode")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 10 {
		t.Errorf("hybrid groups = %d", rel.Cardinality())
	}
}
