// Package memdb is the in-memory relational store that plays the role of
// the traditional DBMS in the hybrid architecture: it holds the
// ground-truth relations (the stand-in for the Spider databases), executes
// CREATE TABLE / INSERT, and answers SELECTs with exact relational
// semantics through the same planner and physical engine Galois uses —
// minus the LLM operators.
package memdb

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/schema"
	"repro/internal/sql/ast"
	"repro/internal/sql/parser"
	"repro/internal/value"
)

// DB is an in-memory catalog of tables. It is not safe for concurrent
// writers; concurrent readers are fine once loading is done.
type DB struct {
	tables map[string]*tableData
}

type tableData struct {
	def  *schema.TableDef
	rows []schema.Tuple
}

// New returns an empty database.
func New() *DB { return &DB{tables: map[string]*tableData{}} }

// CreateTable registers a table definition with no rows. It fails if the
// name is taken.
func (db *DB) CreateTable(def *schema.TableDef) error {
	name := strings.ToLower(def.Name)
	if _, ok := db.tables[name]; ok {
		return fmt.Errorf("memdb: table %s already exists", def.Name)
	}
	db.tables[name] = &tableData{def: def}
	return nil
}

// LoadRelation registers a table from a definition plus materialized rows
// (used to load the synthetic world).
func (db *DB) LoadRelation(def *schema.TableDef, rel *schema.Relation) error {
	if err := db.CreateTable(def); err != nil {
		return err
	}
	t := db.tables[strings.ToLower(def.Name)]
	for _, row := range rel.Rows {
		t.rows = append(t.rows, row.Clone())
	}
	return nil
}

// Insert appends typed rows to a table, coercing values to column types.
func (db *DB) Insert(table string, columns []string, rows []schema.Tuple) error {
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("memdb: no such table %s", table)
	}
	def := t.def
	// Map provided column order to schema positions.
	positions := make([]int, def.Schema.Len())
	if len(columns) == 0 {
		for i := range positions {
			positions[i] = i
		}
	} else {
		if len(columns) != def.Schema.Len() {
			return fmt.Errorf("memdb: INSERT into %s expects all %d columns", table, def.Schema.Len())
		}
		for i := range positions {
			positions[i] = -1
		}
		for j, c := range columns {
			i, err := def.Schema.Resolve("", c)
			if err != nil {
				return err
			}
			positions[i] = j
		}
		for i, p := range positions {
			if p < 0 {
				return fmt.Errorf("memdb: INSERT into %s missing column %s", table, def.Schema.Columns[i].Name)
			}
		}
	}
	for _, row := range rows {
		if len(row) != def.Schema.Len() {
			return fmt.Errorf("memdb: INSERT row has %d values, table %s has %d columns", len(row), table, def.Schema.Len())
		}
		out := make(schema.Tuple, def.Schema.Len())
		for i, p := range positions {
			v, err := value.Coerce(row[p], def.Schema.Columns[i].Type)
			if err != nil {
				return fmt.Errorf("memdb: column %s: %w", def.Schema.Columns[i].Name, err)
			}
			out[i] = v
		}
		t.rows = append(t.rows, out)
	}
	return nil
}

// Table returns the definition of a table, or nil.
func (db *DB) Table(name string) *schema.TableDef {
	if t, ok := db.tables[strings.ToLower(name)]; ok {
		return t.def
	}
	return nil
}

// Tables lists table names in sorted order.
func (db *DB) Tables() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Relation materializes a table's current contents.
func (db *DB) Relation(name string) (*schema.Relation, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("memdb: no such table %s", name)
	}
	rel := schema.NewRelation(t.def.Schema.Clone())
	rel.Rows = t.rows
	return rel, nil
}

// ResolveTable implements logical.Resolver: every table is DB-bound.
func (db *DB) ResolveTable(name, explicit string) (*schema.TableDef, string, error) {
	def := db.Table(name)
	if def == nil {
		return nil, "", fmt.Errorf("memdb: no such table %s", name)
	}
	return def, "DB", nil
}

// Exec runs a statement. SELECTs return their result relation; DDL/DML
// return nil.
func (db *DB) Exec(ctx context.Context, sql string) (*schema.Relation, error) {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.exec(ctx, stmt)
}

// ExecScript runs a semicolon-separated script, returning the result of
// the last SELECT (if any).
func (db *DB) ExecScript(ctx context.Context, sql string) (*schema.Relation, error) {
	stmts, err := parser.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var last *schema.Relation
	for _, stmt := range stmts {
		r, err := db.exec(ctx, stmt)
		if err != nil {
			return nil, err
		}
		if r != nil {
			last = r
		}
	}
	return last, nil
}

func (db *DB) exec(ctx context.Context, stmt ast.Statement) (*schema.Relation, error) {
	switch s := stmt.(type) {
	case *ast.Select:
		return db.Query(ctx, s)
	case *ast.CreateTable:
		def := &schema.TableDef{Name: s.Name, Schema: schema.New()}
		for _, c := range s.Columns {
			def.Schema.Columns = append(def.Schema.Columns, schema.Column{Name: c.Name, Type: c.Type})
			if c.PrimaryKey {
				def.KeyColumn = c.Name
			}
		}
		if def.KeyColumn == "" && def.Schema.Len() > 0 {
			def.KeyColumn = def.Schema.Columns[0].Name
		}
		return nil, db.CreateTable(def)
	case *ast.Insert:
		rows := make([]schema.Tuple, len(s.Rows))
		for i, exprRow := range s.Rows {
			row := make(schema.Tuple, len(exprRow))
			for j, e := range exprRow {
				v, err := expr.EvalConst(e)
				if err != nil {
					return nil, err
				}
				row[j] = v
			}
			rows[i] = row
		}
		return nil, db.Insert(s.Table, s.Columns, rows)
	default:
		return nil, fmt.Errorf("memdb: unsupported statement %T", stmt)
	}
}

// Query plans, optimizes and executes a parsed SELECT.
func (db *DB) Query(ctx context.Context, sel *ast.Select) (*schema.Relation, error) {
	plan, err := logical.Build(sel, db)
	if err != nil {
		return nil, err
	}
	plan, err = optimizer.Optimize(plan, optimizer.Defaults())
	if err != nil {
		return nil, err
	}
	op, err := physical.Compile(plan, &physical.Env{Data: db.Relation})
	if err != nil {
		return nil, err
	}
	return physical.Run(&physical.Context{Ctx: ctx}, op)
}

// QuerySQL parses and executes a SELECT given as text.
func (db *DB) QuerySQL(ctx context.Context, sql string) (*schema.Relation, error) {
	sel, err := parser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	return db.Query(ctx, sel)
}
