package expr

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/sql/parser"
	"repro/internal/value"
)

// evalWhere parses "SELECT x FROM t WHERE <cond>", compiles the condition
// against the test schema, and evaluates it over one tuple.
func evalWhere(t *testing.T, cond string, tuple schema.Tuple) value.Value {
	t.Helper()
	sel, err := parser.ParseSelect("SELECT a FROM t WHERE " + cond)
	if err != nil {
		t.Fatalf("parse %q: %v", cond, err)
	}
	f, err := Compile(sel.Where, testSchema())
	if err != nil {
		t.Fatalf("compile %q: %v", cond, err)
	}
	v, err := f(tuple)
	if err != nil {
		t.Fatalf("eval %q: %v", cond, err)
	}
	return v
}

func testSchema() *schema.Schema {
	return schema.New(
		schema.Column{Table: "t", Name: "a", Type: value.KindInt},
		schema.Column{Table: "t", Name: "b", Type: value.KindFloat},
		schema.Column{Table: "t", Name: "s", Type: value.KindString},
		schema.Column{Table: "t", Name: "n", Type: value.KindInt}, // holds NULLs
	)
}

func row(a int64, b float64, s string) schema.Tuple {
	return schema.Tuple{value.Int(a), value.Float(b), value.Text(s), value.Null()}
}

func TestComparisons(t *testing.T) {
	tuple := row(5, 2.5, "hello")
	cases := map[string]bool{
		"a = 5":             true,
		"a != 5":            false,
		"a < 10":            true,
		"a <= 5":            true,
		"a > 5":             false,
		"a >= 5":            true,
		"b = 2.5":           true,
		"a > b":             true,
		"s = 'hello'":       true,
		"s < 'world'":       true,
		"a = 5 AND b = 2.5": true,
		"a = 5 AND b = 9":   false,
		"a = 9 OR b = 2.5":  true,
		"NOT a = 9":         true,
		"NOT (a = 5)":       false,
	}
	for cond, want := range cases {
		v := evalWhere(t, cond, tuple)
		if v.IsNull() || v.AsBool() != want {
			t.Errorf("%q = %v, want %v", cond, v, want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	tuple := row(5, 2.5, "x")
	// Comparisons with NULL yield NULL.
	if v := evalWhere(t, "n = 5", tuple); !v.IsNull() {
		t.Errorf("NULL = 5 should be NULL, got %v", v)
	}
	// AND short-circuits false; OR short-circuits true.
	if v := evalWhere(t, "a = 9 AND n = 5", tuple); v.IsNull() || v.AsBool() {
		t.Errorf("false AND NULL = %v, want false", v)
	}
	if v := evalWhere(t, "a = 5 OR n = 5", tuple); v.IsNull() || !v.AsBool() {
		t.Errorf("true OR NULL = %v, want true", v)
	}
	if v := evalWhere(t, "a = 5 AND n = 5", tuple); !v.IsNull() {
		t.Errorf("true AND NULL = %v, want NULL", v)
	}
	// IS NULL.
	if v := evalWhere(t, "n IS NULL", tuple); !v.AsBool() {
		t.Error("n IS NULL should hold")
	}
	if v := evalWhere(t, "a IS NOT NULL", tuple); !v.AsBool() {
		t.Error("a IS NOT NULL should hold")
	}
}

func TestArithmetic(t *testing.T) {
	tuple := row(5, 2.5, "x")
	sel, _ := parser.ParseSelect("SELECT a + b * 2 - 1 FROM t")
	f, err := Compile(sel.Items[0].Expr, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	v, err := f(tuple)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v.Numeric(); got != 9 {
		t.Errorf("5 + 2.5*2 - 1 = %v", v)
	}
}

func TestInBetweenLike(t *testing.T) {
	tuple := row(5, 2.5, "hello world")
	cases := map[string]bool{
		"a IN (1, 5, 9)":        true,
		"a NOT IN (1, 9)":       true,
		"a IN (1, 2)":           false,
		"a BETWEEN 1 AND 5":     true,
		"a BETWEEN 6 AND 9":     false,
		"a NOT BETWEEN 6 AND 9": true,
		"s LIKE 'hello%'":       true,
		"s LIKE '%world'":       true,
		"s LIKE '%lo wo%'":      true,
		"s LIKE 'h_llo world'":  true,
		"s LIKE 'HELLO%'":       true, // case-insensitive
		"s NOT LIKE 'bye%'":     true,
		"s LIKE 'hello'":        false,
	}
	for cond, want := range cases {
		v := evalWhere(t, cond, tuple)
		if v.IsNull() || v.AsBool() != want {
			t.Errorf("%q = %v, want %v", cond, v, want)
		}
	}
}

func TestCase(t *testing.T) {
	sel, _ := parser.ParseSelect("SELECT CASE WHEN a > 3 THEN 'big' WHEN a > 1 THEN 'mid' ELSE 'small' END FROM t")
	f, err := Compile(sel.Items[0].Expr, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		a    int64
		want string
	}{{5, "big"}, {2, "mid"}, {0, "small"}} {
		v, err := f(row(c.a, 0, ""))
		if err != nil {
			t.Fatal(err)
		}
		if v.AsString() != c.want {
			t.Errorf("CASE with a=%d = %q, want %q", c.a, v.AsString(), c.want)
		}
	}
}

func TestScalarFunctions(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"SELECT UPPER(s) FROM t", "HI"},
		{"SELECT LOWER(s) FROM t", "hi"},
		{"SELECT LENGTH(s) FROM t", "2"},
		{"SELECT ABS(a) FROM t", "5"},
		{"SELECT ROUND(b) FROM t", "3"},
		{"SELECT ROUND(b, 1) FROM t", "2.5"},
		{"SELECT TRIM(s) FROM t", "Hi"},
	}
	for _, c := range cases {
		sel, err := parser.ParseSelect(c.src)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Compile(sel.Items[0].Expr, testSchema())
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		tuple := schema.Tuple{value.Int(-5), value.Float(2.51), value.Text("Hi"), value.Null()}
		if strings.Contains(c.src, "ABS") {
			tuple[0] = value.Int(-5)
		}
		if strings.Contains(c.src, "TRIM") {
			tuple[2] = value.Text("  Hi  ")
		}
		v, err := f(tuple)
		if err != nil {
			t.Fatal(err)
		}
		got := v.String()
		if strings.Contains(c.src, "ROUND(b)") {
			// ROUND(2.51) = 3.
			if got != "3" {
				t.Errorf("%s = %q", c.src, got)
			}
			continue
		}
		if got != c.want && !(c.want == "5" && got == "5") {
			t.Errorf("%s = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestAggregateRejected(t *testing.T) {
	sel, _ := parser.ParseSelect("SELECT AVG(a) FROM t")
	if _, err := Compile(sel.Items[0].Expr, testSchema()); err == nil {
		t.Error("aggregates must be rejected by the expression compiler")
	}
}

func TestUnknownColumn(t *testing.T) {
	sel, _ := parser.ParseSelect("SELECT zzz FROM t")
	if _, err := Compile(sel.Items[0].Expr, testSchema()); err == nil {
		t.Error("unknown column must fail compilation")
	}
}

func TestEvalConst(t *testing.T) {
	sel, _ := parser.ParseSelect("SELECT 2 + 3 * 4 FROM t")
	v, err := EvalConst(sel.Items[0].Expr)
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 14 {
		t.Errorf("EvalConst = %v", v)
	}
	refExpr, _ := parser.ParseSelect("SELECT a FROM t")
	if _, err := EvalConst(refExpr.Items[0].Expr); err == nil {
		t.Error("EvalConst with a column reference must fail")
	}
}

// TestMatchLikeAgainstRegexp cross-checks the LIKE matcher against a
// regexp reference implementation on random inputs.
func TestMatchLikeAgainstRegexp(t *testing.T) {
	alphabet := []rune("ab%_")
	f := func(sSeed, pSeed uint32) bool {
		s := genString(sSeed, []rune("ab"), 8)
		p := genString(pSeed, alphabet, 6)
		// Reference: translate the pattern to a regexp.
		var re strings.Builder
		re.WriteString("(?is)^")
		for _, r := range p {
			switch r {
			case '%':
				re.WriteString(".*")
			case '_':
				re.WriteString(".")
			default:
				re.WriteString(regexp.QuoteMeta(string(r)))
			}
		}
		re.WriteString("$")
		want := regexp.MustCompile(re.String()).MatchString(s)
		return MatchLike(s, p) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func genString(seed uint32, alphabet []rune, maxLen int) string {
	n := int(seed % uint32(maxLen+1))
	var b strings.Builder
	x := seed
	for i := 0; i < n; i++ {
		x = x*1664525 + 1013904223
		b.WriteRune(alphabet[int(x>>16)%len(alphabet)])
	}
	return b.String()
}

func TestEvalBool(t *testing.T) {
	sel, _ := parser.ParseSelect("SELECT a FROM t WHERE n = 1")
	f, err := Compile(sel.Where, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	ok, err := EvalBool(f, row(1, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("NULL predicate must evaluate to false in WHERE")
	}
}
