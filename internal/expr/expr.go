// Package expr compiles AST expressions into evaluators over tuples.
// Compilation resolves every column reference against a schema once, so
// per-row evaluation is a tree of closures with no name lookups.
package expr

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/schema"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// Func evaluates an expression over one tuple.
type Func func(schema.Tuple) (value.Value, error)

// Compile resolves e against s and returns an evaluator. Aggregate calls
// are rejected: the planner must have replaced them with column references
// into an aggregation operator's output before compiling.
func Compile(e ast.Expr, s *schema.Schema) (Func, error) {
	switch n := e.(type) {
	case *ast.Literal:
		v := n.Val
		return func(schema.Tuple) (value.Value, error) { return v, nil }, nil

	case *ast.ColumnRef:
		idx, err := s.Resolve(n.Table, n.Name)
		if err != nil {
			return nil, err
		}
		return func(t schema.Tuple) (value.Value, error) { return t[idx], nil }, nil

	case *ast.Star:
		return nil, fmt.Errorf("expr: * is not valid in this context")

	case *ast.Binary:
		return compileBinary(n, s)

	case *ast.Unary:
		inner, err := Compile(n.Expr, s)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "NOT":
			return func(t schema.Tuple) (value.Value, error) {
				v, err := inner(t)
				if err != nil {
					return value.Null(), err
				}
				if v.IsNull() {
					return value.Null(), nil
				}
				return value.Bool(!v.Truthy()), nil
			}, nil
		case "-":
			return func(t schema.Tuple) (value.Value, error) {
				v, err := inner(t)
				if err != nil {
					return value.Null(), err
				}
				return value.Sub(value.Int(0), v)
			}, nil
		default:
			return nil, fmt.Errorf("expr: unknown unary operator %q", n.Op)
		}

	case *ast.InList:
		return compileInList(n, s)

	case *ast.Between:
		return compileBetween(n, s)

	case *ast.Like:
		return compileLike(n, s)

	case *ast.IsNull:
		inner, err := Compile(n.Expr, s)
		if err != nil {
			return nil, err
		}
		not := n.Not
		return func(t schema.Tuple) (value.Value, error) {
			v, err := inner(t)
			if err != nil {
				return value.Null(), err
			}
			return value.Bool(v.IsNull() != not), nil
		}, nil

	case *ast.Case:
		return compileCase(n, s)

	case *ast.FuncCall:
		if n.IsAggregate() {
			return nil, fmt.Errorf("expr: aggregate %s not allowed here (planner bug?)", n.Name)
		}
		return compileScalarFunc(n, s)

	default:
		return nil, fmt.Errorf("expr: unsupported expression %T", e)
	}
}

func compileBinary(n *ast.Binary, s *schema.Schema) (Func, error) {
	left, err := Compile(n.Left, s)
	if err != nil {
		return nil, err
	}
	right, err := Compile(n.Right, s)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "AND":
		return func(t schema.Tuple) (value.Value, error) {
			l, err := left(t)
			if err != nil {
				return value.Null(), err
			}
			if !l.IsNull() && !l.Truthy() {
				return value.Bool(false), nil
			}
			r, err := right(t)
			if err != nil {
				return value.Null(), err
			}
			if !r.IsNull() && !r.Truthy() {
				return value.Bool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return value.Null(), nil
			}
			return value.Bool(true), nil
		}, nil
	case "OR":
		return func(t schema.Tuple) (value.Value, error) {
			l, err := left(t)
			if err != nil {
				return value.Null(), err
			}
			if !l.IsNull() && l.Truthy() {
				return value.Bool(true), nil
			}
			r, err := right(t)
			if err != nil {
				return value.Null(), err
			}
			if !r.IsNull() && r.Truthy() {
				return value.Bool(true), nil
			}
			if l.IsNull() || r.IsNull() {
				return value.Null(), nil
			}
			return value.Bool(false), nil
		}, nil
	case "+", "-", "*", "/", "%":
		op := n.Op
		return func(t schema.Tuple) (value.Value, error) {
			l, err := left(t)
			if err != nil {
				return value.Null(), err
			}
			r, err := right(t)
			if err != nil {
				return value.Null(), err
			}
			switch op {
			case "+":
				return value.Add(l, r)
			case "-":
				return value.Sub(l, r)
			case "*":
				return value.Mul(l, r)
			case "/":
				return value.Div(l, r)
			default: // %
				if l.IsNull() || r.IsNull() {
					return value.Null(), nil
				}
				lf, lok := l.Numeric()
				rf, rok := r.Numeric()
				if !lok || !rok {
					return value.Null(), fmt.Errorf("expr: %% requires numeric operands")
				}
				if rf == 0 {
					return value.Null(), fmt.Errorf("expr: modulo by zero")
				}
				return value.Float(math.Mod(lf, rf)), nil
			}
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		op := n.Op
		return func(t schema.Tuple) (value.Value, error) {
			l, err := left(t)
			if err != nil {
				return value.Null(), err
			}
			r, err := right(t)
			if err != nil {
				return value.Null(), err
			}
			if l.IsNull() || r.IsNull() {
				return value.Null(), nil
			}
			c, err := value.Compare(l, r)
			if err != nil {
				// Incomparable values never satisfy a predicate; SQL
				// engines differ here, and for LLM-sourced data a silent
				// false keeps malformed cells out of results.
				return value.Bool(false), nil
			}
			var ok bool
			switch op {
			case "=":
				ok = c == 0
			case "!=":
				ok = c != 0
			case "<":
				ok = c < 0
			case "<=":
				ok = c <= 0
			case ">":
				ok = c > 0
			case ">=":
				ok = c >= 0
			}
			return value.Bool(ok), nil
		}, nil
	default:
		return nil, fmt.Errorf("expr: unknown binary operator %q", n.Op)
	}
}

func compileInList(n *ast.InList, s *schema.Schema) (Func, error) {
	inner, err := Compile(n.Expr, s)
	if err != nil {
		return nil, err
	}
	items := make([]Func, len(n.List))
	for i, e := range n.List {
		f, err := Compile(e, s)
		if err != nil {
			return nil, err
		}
		items[i] = f
	}
	not := n.Not
	return func(t schema.Tuple) (value.Value, error) {
		v, err := inner(t)
		if err != nil {
			return value.Null(), err
		}
		if v.IsNull() {
			return value.Null(), nil
		}
		for _, item := range items {
			iv, err := item(t)
			if err != nil {
				return value.Null(), err
			}
			if value.Equal(v, iv) {
				return value.Bool(!not), nil
			}
		}
		return value.Bool(not), nil
	}, nil
}

func compileBetween(n *ast.Between, s *schema.Schema) (Func, error) {
	inner, err := Compile(n.Expr, s)
	if err != nil {
		return nil, err
	}
	lo, err := Compile(n.Lo, s)
	if err != nil {
		return nil, err
	}
	hi, err := Compile(n.Hi, s)
	if err != nil {
		return nil, err
	}
	not := n.Not
	return func(t schema.Tuple) (value.Value, error) {
		v, err := inner(t)
		if err != nil {
			return value.Null(), err
		}
		lv, err := lo(t)
		if err != nil {
			return value.Null(), err
		}
		hv, err := hi(t)
		if err != nil {
			return value.Null(), err
		}
		if v.IsNull() || lv.IsNull() || hv.IsNull() {
			return value.Null(), nil
		}
		cl, err1 := value.Compare(v, lv)
		ch, err2 := value.Compare(v, hv)
		if err1 != nil || err2 != nil {
			return value.Bool(false), nil
		}
		in := cl >= 0 && ch <= 0
		return value.Bool(in != not), nil
	}, nil
}

func compileLike(n *ast.Like, s *schema.Schema) (Func, error) {
	inner, err := Compile(n.Expr, s)
	if err != nil {
		return nil, err
	}
	pat, err := Compile(n.Pattern, s)
	if err != nil {
		return nil, err
	}
	not := n.Not
	return func(t schema.Tuple) (value.Value, error) {
		v, err := inner(t)
		if err != nil {
			return value.Null(), err
		}
		pv, err := pat(t)
		if err != nil {
			return value.Null(), err
		}
		if v.IsNull() || pv.IsNull() {
			return value.Null(), nil
		}
		ok := MatchLike(v.String(), pv.String())
		return value.Bool(ok != not), nil
	}, nil
}

// MatchLike implements SQL LIKE matching: % matches any run (including
// empty), _ matches exactly one character. Matching is case-insensitive,
// which is the friendlier choice for LLM-sourced text.
func MatchLike(s, pattern string) bool {
	return likeMatch([]rune(strings.ToLower(s)), []rune(strings.ToLower(pattern)))
}

func likeMatch(s, p []rune) bool {
	// Iterative matcher with backtracking over the last %.
	var si, pi int
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			starP = pi
			starS = si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

func compileCase(n *ast.Case, s *schema.Schema) (Func, error) {
	type arm struct{ cond, res Func }
	arms := make([]arm, len(n.Whens))
	for i, w := range n.Whens {
		c, err := Compile(w.Cond, s)
		if err != nil {
			return nil, err
		}
		r, err := Compile(w.Result, s)
		if err != nil {
			return nil, err
		}
		arms[i] = arm{c, r}
	}
	var elseF Func
	if n.Else != nil {
		f, err := Compile(n.Else, s)
		if err != nil {
			return nil, err
		}
		elseF = f
	}
	return func(t schema.Tuple) (value.Value, error) {
		for _, a := range arms {
			c, err := a.cond(t)
			if err != nil {
				return value.Null(), err
			}
			if !c.IsNull() && c.Truthy() {
				return a.res(t)
			}
		}
		if elseF != nil {
			return elseF(t)
		}
		return value.Null(), nil
	}, nil
}

func compileScalarFunc(n *ast.FuncCall, s *schema.Schema) (Func, error) {
	args := make([]Func, len(n.Args))
	for i, a := range n.Args {
		f, err := Compile(a, s)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	requireArgs := func(k int) error {
		if len(args) != k {
			return fmt.Errorf("expr: %s expects %d argument(s), got %d", n.Name, k, len(args))
		}
		return nil
	}
	switch n.Name {
	case "UPPER":
		if err := requireArgs(1); err != nil {
			return nil, err
		}
		return stringFunc(args[0], strings.ToUpper), nil
	case "LOWER":
		if err := requireArgs(1); err != nil {
			return nil, err
		}
		return stringFunc(args[0], strings.ToLower), nil
	case "TRIM":
		if err := requireArgs(1); err != nil {
			return nil, err
		}
		return stringFunc(args[0], strings.TrimSpace), nil
	case "LENGTH":
		if err := requireArgs(1); err != nil {
			return nil, err
		}
		f := args[0]
		return func(t schema.Tuple) (value.Value, error) {
			v, err := f(t)
			if err != nil || v.IsNull() {
				return value.Null(), err
			}
			return value.Int(int64(len([]rune(v.String())))), nil
		}, nil
	case "ABS":
		if err := requireArgs(1); err != nil {
			return nil, err
		}
		f := args[0]
		return func(t schema.Tuple) (value.Value, error) {
			v, err := f(t)
			if err != nil || v.IsNull() {
				return value.Null(), err
			}
			n, ok := v.Numeric()
			if !ok {
				return value.Null(), fmt.Errorf("expr: ABS requires a numeric argument")
			}
			if v.Kind() == value.KindInt {
				i := v.AsInt()
				if i < 0 {
					i = -i
				}
				return value.Int(i), nil
			}
			return value.Float(math.Abs(n)), nil
		}, nil
	case "ROUND":
		if len(args) != 1 && len(args) != 2 {
			return nil, fmt.Errorf("expr: ROUND expects 1 or 2 arguments")
		}
		f := args[0]
		var digits Func
		if len(args) == 2 {
			digits = args[1]
		}
		return func(t schema.Tuple) (value.Value, error) {
			v, err := f(t)
			if err != nil || v.IsNull() {
				return value.Null(), err
			}
			n, ok := v.Numeric()
			if !ok {
				return value.Null(), fmt.Errorf("expr: ROUND requires a numeric argument")
			}
			d := 0
			if digits != nil {
				dv, err := digits(t)
				if err != nil {
					return value.Null(), err
				}
				df, ok := dv.Numeric()
				if !ok {
					return value.Null(), fmt.Errorf("expr: ROUND digits must be numeric")
				}
				d = int(df)
			}
			scale := math.Pow(10, float64(d))
			return value.Float(math.Round(n*scale) / scale), nil
		}, nil
	default:
		return nil, fmt.Errorf("expr: unknown function %s", n.Name)
	}
}

func stringFunc(f Func, apply func(string) string) Func {
	return func(t schema.Tuple) (value.Value, error) {
		v, err := f(t)
		if err != nil || v.IsNull() {
			return value.Null(), err
		}
		return value.Text(apply(v.String())), nil
	}
}

// EvalBool evaluates f and reduces the result to a WHERE-clause boolean:
// NULL and errors from incomparable values count as false.
func EvalBool(f Func, t schema.Tuple) (bool, error) {
	v, err := f(t)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	return v.Truthy(), nil
}

// EvalConst evaluates e with no tuple context; it fails if e references
// columns. Used for INSERT literal rows and constant folding.
func EvalConst(e ast.Expr) (value.Value, error) {
	empty := schema.New()
	f, err := Compile(e, empty)
	if err != nil {
		return value.Null(), err
	}
	return f(nil)
}
