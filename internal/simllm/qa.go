package simllm

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/prompt"
	"repro/internal/value"
)

// QuerySpec is the semantic reading of one natural-language benchmark
// question. The simulated model "understands" a registered question by
// executing its spec over the model's own noisy beliefs — the same beliefs
// the Galois prompt operators tap — and rendering the result as prose.
// This keeps the T_M / T_M^C baselines honest: both paths read the same
// stored knowledge; only the reasoning harness differs.
type QuerySpec struct {
	Relation string
	Select   []string // attributes to report (key included explicitly)
	Filter   []FilterSpec
	Agg      string // "", "count", "sum", "avg", "min", "max"
	AggAttr  string
	GroupBy  string
	Join     *JoinSpec
	OrderBy  string // superlative questions sort mentally ...
	Desc     bool
	Limit    int // ... and keep the top-k (0 = all)
	Distinct bool
}

// FilterSpec is one conjunctive condition.
type FilterSpec struct {
	Attr  string
	Op    string // = != < <= > >=
	Value string // literal as text
}

// JoinSpec links a second relation through an equality.
type JoinSpec struct {
	Relation  string
	LeftAttr  string // attribute of the outer relation
	RightAttr string // attribute of the joined relation
	Select    []string
	Filter    []FilterSpec
}

func normalizeQuestion(q string) string {
	q = strings.ToLower(strings.TrimSpace(q))
	q = strings.TrimRight(q, "?.! ")
	return strings.Join(strings.Fields(q), " ")
}

// handleQA answers "Q: <question>\nA:" prompts.
func (m *Model) handleQA(body string) string {
	q := extractQuestion(body, "Q:", "\nA:")
	spec, ok := m.questions[normalizeQuestion(q)]
	if !ok {
		return prompt.UnknownMarker
	}
	return m.answerSpec(spec, false)
}

// handleCoTQA answers the chain-of-thought variant.
func (m *Model) handleCoTQA(body string) string {
	q := extractQuestion(body, "Question:", "\nLet's reason")
	if q == "" {
		q = extractQuestion(body, "Q:", "\nA:")
	}
	spec, ok := m.questions[normalizeQuestion(q)]
	if !ok {
		return prompt.UnknownMarker
	}
	var b strings.Builder
	b.WriteString("Step 1: recall the relevant " + prompt.Pluralize(prompt.Humanize(spec.Relation)) + ".\n")
	step := 2
	if len(spec.Filter) > 0 {
		b.WriteString("Step " + strconv.Itoa(step) + ": apply the conditions.\n")
		step++
	}
	if spec.Join != nil {
		b.WriteString("Step " + strconv.Itoa(step) + ": connect each one to its " + prompt.Humanize(spec.Join.Relation) + ".\n")
		step++
	}
	if spec.Agg != "" {
		b.WriteString("Step " + strconv.Itoa(step) + ": compute the " + spec.Agg + ".\n")
	}
	b.WriteString("Answer: ")
	b.WriteString(m.answerSpec(spec, true))
	return b.String()
}

func extractQuestion(body, start, end string) string {
	i := strings.LastIndex(body, start)
	if i < 0 {
		return ""
	}
	rest := body[i+len(start):]
	if j := strings.Index(rest, end); j >= 0 {
		rest = rest[:j]
	}
	return strings.TrimSpace(rest)
}

// qaRow is one intermediate result row during holistic answering.
type qaRow struct {
	key   string
	vals  []value.Value // positionally aligned with the selected attrs
	attrs []string      // (relation-qualified for rendering context)
	rels  []string
}

// answerSpec executes a spec over the model's beliefs with holistic-
// reasoning noise and renders a prose answer.
func (m *Model) answerSpec(spec QuerySpec, cot bool) string {
	slipKey := "qaslip"
	joinRate := m.profile.QAJoinRate
	aggErrRate := m.profile.QAAggErrRate
	if cot {
		slipKey = "cotslip"
		joinRate = 0 // the fixed exemplar never quite fits the join step
		aggErrRate = m.profile.CoTAggErrR
	}

	// 1. Recall and filter.
	var rows []qaRow
	for _, key := range m.knownKeys(spec.Relation) {
		include := m.passesFilters(spec.Relation, key, spec.Filter)
		// Holistic reasoning slips: items wrongly included or dropped.
		if m.h01(slipKey, spec.Relation, key) < m.profile.QASlip {
			include = !include
		}
		if !include {
			continue
		}
		rows = append(rows, m.makeRow(spec.Relation, key, spec.Select))
	}

	// 2. Join.
	if spec.Join != nil {
		rows = m.joinRows(rows, spec, joinRate, slipKey)
	}

	// 3. Superlative ordering.
	if spec.OrderBy != "" {
		m.sortRows(rows, spec)
	}
	if spec.Limit > 0 && len(rows) > spec.Limit {
		rows = rows[:spec.Limit]
	}

	// 4. Aggregate or enumerate.
	if spec.Agg != "" {
		return m.renderAggregate(rows, spec, aggErrRate)
	}
	return m.renderRows(rows, spec)
}

func (m *Model) passesFilters(rel, key string, filters []FilterSpec) bool {
	for _, f := range filters {
		bv, known := m.belief(rel, key, f.Attr)
		if !known || !evalCond(bv, f.Op, f.Value) {
			return false
		}
	}
	return true
}

func (m *Model) makeRow(rel, key string, attrs []string) qaRow {
	row := qaRow{key: key}
	for _, a := range attrs {
		bv, known := m.belief(rel, key, a)
		if !known {
			bv = value.Null()
		}
		row.vals = append(row.vals, bv)
		row.attrs = append(row.attrs, a)
		row.rels = append(row.rels, rel)
	}
	return row
}

func (m *Model) joinRows(rows []qaRow, spec QuerySpec, joinRate float64, slipKey string) []qaRow {
	j := spec.Join
	var out []qaRow
	for _, row := range rows {
		leftVal, known := m.belief(spec.Relation, row.key, j.LeftAttr)
		if !known {
			continue
		}
		// Can the model hold the two facts together? Mostly not — the
		// paper's joins are where holistic QA falls apart.
		if m.h01(slipKey+"-join", spec.Relation, row.key) >= joinRate {
			continue
		}
		for _, rk := range m.knownKeys(j.Relation) {
			rv, rknown := m.belief(j.Relation, rk, j.RightAttr)
			if !rknown || !strings.EqualFold(rv.String(), leftVal.String()) {
				continue
			}
			if !m.passesFilters(j.Relation, rk, j.Filter) {
				continue
			}
			combined := qaRow{key: row.key}
			combined.vals = append(combined.vals, row.vals...)
			combined.attrs = append(combined.attrs, row.attrs...)
			combined.rels = append(combined.rels, row.rels...)
			for _, a := range j.Select {
				bv, bknown := m.belief(j.Relation, rk, a)
				if !bknown {
					bv = value.Null()
				}
				combined.vals = append(combined.vals, bv)
				combined.attrs = append(combined.attrs, a)
				combined.rels = append(combined.rels, j.Relation)
			}
			out = append(out, combined)
			break // first match, as a person would
		}
	}
	return out
}

func (m *Model) sortRows(rows []qaRow, spec QuerySpec) {
	keyOf := func(r qaRow) float64 {
		bv, known := m.belief(spec.Relation, r.key, spec.OrderBy)
		if !known {
			return math.Inf(-1)
		}
		if f, ok := bv.Numeric(); ok {
			return f
		}
		return 0
	}
	sort.SliceStable(rows, func(i, k int) bool {
		a, b := keyOf(rows[i]), keyOf(rows[k])
		if spec.Desc {
			return a > b
		}
		return a < b
	})
}

func (m *Model) renderAggregate(rows []qaRow, spec QuerySpec, errRate float64) string {
	apply := func(vals []float64, groupKey string) string {
		var out float64
		switch spec.Agg {
		case "count":
			out = float64(len(vals))
		case "sum":
			for _, v := range vals {
				out += v
			}
		case "avg":
			if len(vals) == 0 {
				return prompt.UnknownMarker
			}
			for _, v := range vals {
				out += v
			}
			out /= float64(len(vals))
		case "min":
			if len(vals) == 0 {
				return prompt.UnknownMarker
			}
			out = vals[0]
			for _, v := range vals {
				out = math.Min(out, v)
			}
		case "max":
			if len(vals) == 0 {
				return prompt.UnknownMarker
			}
			out = vals[0]
			for _, v := range vals {
				out = math.Max(out, v)
			}
		}
		// Mental arithmetic is unreliable (Section 3: LLMs "fail with
		// numerical comparisons" and aggregation).
		if m.h01("qaagg", spec.Relation, spec.Agg, spec.AggAttr, groupKey) < errRate {
			f := 1 + m.profile.QAAggSpread*(2*m.h01("qaaggamt", spec.Relation, spec.Agg, spec.AggAttr, groupKey)-1)
			out *= f
		}
		if spec.Agg == "count" || out == math.Trunc(out) {
			return strconv.FormatInt(int64(math.Round(out)), 10)
		}
		return strconv.FormatFloat(out, 'f', 1, 64)
	}

	collect := func(rs []qaRow) []float64 {
		var vals []float64
		for _, r := range rs {
			if spec.Agg == "count" && spec.AggAttr == "" {
				vals = append(vals, 1)
				continue
			}
			bv, known := m.belief(spec.Relation, r.key, spec.AggAttr)
			if !known {
				continue
			}
			if f, ok := bv.Numeric(); ok {
				vals = append(vals, f)
			}
		}
		return vals
	}

	if spec.GroupBy == "" {
		return apply(collect(rows), "")
	}
	groups := map[string][]qaRow{}
	var order []string
	for _, r := range rows {
		bv, known := m.belief(spec.Relation, r.key, spec.GroupBy)
		if !known {
			continue
		}
		g := bv.String()
		if _, seen := groups[g]; !seen {
			order = append(order, g)
		}
		groups[g] = append(groups[g], r)
	}
	var lines []string
	for _, g := range order {
		lines = append(lines, "- "+g+": "+apply(collect(groups[g]), g))
	}
	if len(lines) == 0 {
		return prompt.UnknownMarker
	}
	return strings.Join(lines, "\n")
}

func (m *Model) renderRows(rows []qaRow, spec QuerySpec) string {
	if len(rows) == 0 {
		return prompt.UnknownMarker
	}
	if len(rows) > m.profile.QAListLimit {
		rows = rows[:m.profile.QAListLimit]
	}
	seen := map[string]bool{}
	singleAttr := len(rows[0].vals) == 1
	var parts []string
	for _, r := range rows {
		var fields []string
		for i, v := range r.vals {
			fields = append(fields, m.render(r.rels[i], r.key, r.attrs[i], v))
		}
		line := strings.Join(fields, ", ")
		if spec.Distinct || singleAttr {
			if seen[strings.ToLower(line)] {
				continue
			}
			seen[strings.ToLower(line)] = true
		}
		parts = append(parts, line)
	}
	if singleAttr {
		return strings.Join(parts, ", ")
	}
	for i := range parts {
		parts[i] = "- " + parts[i]
	}
	return strings.Join(parts, "\n")
}
