package simllm

import (
	"sync"
	"testing"

	"repro/internal/world"
)

// fuzzModel builds one simulated model per process; the world is
// deterministic, so every fuzz execution sees the same knowledge base.
var fuzzModel = sync.OnceValue(func() *Model {
	return New(ChatGPT, world.Build(), 1)
})

// FuzzParseResponse throws arbitrary prompt text at the simulated
// model's response generator. dispatch parses the canonical prompt
// wording with hand-rolled string surgery (anchors, operator phrases,
// exclusion lists), which is exactly the kind of code fuzzing breaks:
// it must never panic or hang, whatever the prompt looks like.
//
// Seed corpus: testdata/fuzz/FuzzParseResponse plus the f.Add calls
// below. Run with:
// go test -run '^$' -fuzz FuzzParseResponse -fuzztime 30s ./internal/simllm
func FuzzParseResponse(f *testing.F) {
	seeds := []string{
		"List the names of all cities. One name per line. Say Done when there are no more results.",
		"List the names of cities with population more than 1000000. Exclude: Tokyo; Delhi. One name per line.",
		"More results. List the names of all countries. Exclude: France; Japan.",
		"What is the population of the city Tokyo? Answer with the value only.",
		"Has the city Tokyo population more than 1000000? Answer yes or no.",
		"Has the country France independence year less than 1800? Answer yes or no.",
		"Q: What are the names of all countries?",
		"Q: How many cities have more than a million people? Let's reason step by step.",
		"What is the name of the mountain ?",
		"List the  of . Exclude: ;;;. One  per line.",
		"Has the  ? yes",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	m := fuzzModel()
	f.Fuzz(func(t *testing.T, prompt string) {
		// The response itself is unspecified for garbage prompts; the
		// contract is only that generating it never panics.
		_ = m.dispatch(prompt)
	})
}
