package simllm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestCompleteHonorsDeadContext: a call whose context is already
// cancelled or expired must report the context error, never a
// completion — before and after the simulated work. The resilient
// transport's per-attempt deadlines rely on a dead attempt never
// yielding a completion that could be recorded or cached.
func TestCompleteHonorsDeadContext(t *testing.T) {
	m := newModel(t, ChatGPT)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if out, err := m.Complete(cancelled, "What is the capital of France?"); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx: got (%q, %v), want context.Canceled", out, err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel2()
	if out, err := m.Complete(expired, "What is the capital of France?"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired ctx: got (%q, %v), want context.DeadlineExceeded", out, err)
	}

	// A live context still completes.
	if out, err := m.Complete(context.Background(), "What is the capital of France?"); err != nil || out == "" {
		t.Errorf("live ctx: got (%q, %v), want a completion", out, err)
	}
}
