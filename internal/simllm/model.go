package simllm

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"repro/internal/clean"
	"repro/internal/value"
	"repro/internal/world"
)

// Model is one simulated LLM. It implements the llm.Client interface
// (Name/Complete) and is safe for concurrent use: all state is immutable
// after construction and every random decision is a pure hash of
// (seed, model, inputs).
type Model struct {
	profile   Profile
	world     *world.World
	seed      int64
	questions map[string]QuerySpec
}

// New builds a model over the world with the given noise seed.
func New(p Profile, w *world.World, seed int64) *Model {
	return &Model{
		profile:   p,
		world:     w,
		seed:      seed,
		questions: map[string]QuerySpec{},
	}
}

// Name implements llm.Client.
func (m *Model) Name() string { return m.profile.ID }

// Profile returns the model's noise profile.
func (m *Model) Profile() Profile { return m.profile }

// RegisterQuestions adds NL question → semantic spec entries to the
// model's question understanding (see qa.go). The benchmark corpus calls
// this once per model.
func (m *Model) RegisterQuestions(bank map[string]QuerySpec) {
	for q, spec := range bank {
		m.questions[normalizeQuestion(q)] = spec
	}
}

// Complete implements llm.Client: parse the prompt, answer with noise.
func (m *Model) Complete(ctx context.Context, promptText string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	out := m.dispatch(promptText)
	// Re-check after the simulated work: a per-attempt deadline that
	// fired while the completion was being produced must win over the
	// completion, or the transport above would see a success from an
	// attempt it has already written off (and let a cache store it).
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return out, nil
}

// ------------------------------------------------------------ determinism

// h64 hashes the seed, model id and parts with FNV-1a.
func (m *Model) h64(parts ...string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", m.seed, m.profile.ID)
	for _, p := range parts {
		h.Write([]byte{0x1f})
		h.Write([]byte(strings.ToLower(p)))
	}
	return h.Sum64()
}

// h01 maps a hash to [0,1).
func (m *Model) h01(parts ...string) float64 {
	return float64(m.h64(parts...)%1e9) / 1e9
}

// hInt maps a hash to [0,n).
func (m *Model) hInt(n int, parts ...string) int {
	if n <= 0 {
		return 0
	}
	return int(m.h64(parts...) % uint64(n))
}

// ----------------------------------------------------------------- recall

// knows reports whether the model recalls the entity at all.
func (m *Model) knows(rel, key string, pop float64) bool {
	p := m.profile.KnowFloor + (m.profile.KnowCeil-m.profile.KnowFloor)*math.Pow(pop, m.profile.RecallBias)
	return m.h01("know", rel, key) < p
}

// knownKeys returns the keys the model recalls, most popular first.
func (m *Model) knownKeys(rel string) []string {
	var out []string
	for _, kp := range m.world.KeysByPopularity(rel) {
		if m.knows(rel, kp.Key, kp.Pop) {
			out = append(out, kp.Key)
		}
	}
	return out
}

// ---------------------------------------------------------------- beliefs

// belief returns what the model thinks the value of (rel, key, attr) is.
// ok is false when the model would answer "Unknown". Beliefs are stable:
// asking twice gives the same answer.
func (m *Model) belief(rel, key, attr string) (value.Value, bool) {
	truth, exists := m.world.Fact(rel, key, attr)
	if !exists {
		return value.Null(), false
	}
	// The key attribute is self-evident once the entity is recalled.
	if def := m.world.Def(rel); def != nil && strings.EqualFold(def.KeyColumn, attr) {
		return truth, true
	}
	// Derived attributes chain through the same beliefs the explicit join
	// formulation would touch, so the two schema-less formulations of one
	// information need agree up to per-step noise (Section 6).
	if d, ok := m.world.DerivedAttr(rel, attr); ok {
		mid, okMid := m.belief(rel, key, d.Via)
		if !okMid || mid.IsNull() {
			return value.Null(), false
		}
		return m.belief(d.Target, m.canon(mid.String()), d.TargetAttr)
	}
	r := m.h01("belief", rel, key, attr)
	switch {
	case r < m.profile.HallucinationRate:
		// Confuse with another entity's value — plausible but wrong.
		if v, ok := m.world.OtherValue(rel, key, attr, m.hInt(1<<20, "swap", rel, key, attr)); ok {
			return v, true
		}
		return truth, true
	case r < m.profile.HallucinationRate+m.profile.UnknownRate:
		return value.Null(), false
	}
	// Numeric imprecision: remembered magnitude, fuzzy digits. Year-like
	// integers drift by a few years; everything else by a relative error.
	if n, isNum := truth.Numeric(); isNum && truth.Kind() != value.KindDate {
		if m.h01("fuzz", rel, key, attr) < m.profile.NumericFuzz {
			amt := 2*m.h01("fuzzamt", rel, key, attr) - 1 // [-1, 1)
			if truth.Kind() == value.KindInt && n >= 1000 && n <= 2100 {
				drift := math.Round(amt * m.profile.NumericSpread * 20)
				return value.Int(int64(n + drift)), true
			}
			fuzzed := n * (1 + m.profile.NumericSpread*amt)
			if truth.Kind() == value.KindInt {
				return value.Int(int64(math.Round(fuzzed))), true
			}
			return value.Float(fuzzed), true
		}
	}
	return truth, true
}

// -------------------------------------------------------- surface forms

// render converts a belief into the text the model would emit, applying
// surface-form noise. The context strings keep the choice stable per
// (entity, attribute).
func (m *Model) render(rel, key, attr string, v value.Value) string {
	if v.IsNull() {
		return "Unknown"
	}
	switch v.Kind() {
	case value.KindString:
		s := v.AsString()
		// Registered alternate surface form (alpha-2 country code).
		if alt, ok := m.world.AltSurface(rel, key, attr); ok {
			if m.h01("altcode", rel, key, attr) < m.profile.AltCodeRate {
				return alt
			}
			return s
		}
		// Cross-relation references ("what country is Paris in?") may use
		// the target entity's alternate spelling. The style choice is
		// keyed per (relation, attribute): a model that says "French
		// Republic" for one city says it for all of them, which is why
		// joins break systematically rather than per row (Section 5's
		// IT-vs-ITA failure).
		if target, isRef := m.world.RefTarget(rel, attr); isRef {
			if alt, ok := m.world.EntityAlt(target, s); ok {
				if m.h01("refstyle", rel, attr) < m.profile.RefAltRate {
					return alt
				}
			}
			return s
		}
		return s
	case value.KindInt:
		n := v.AsInt()
		if m.h01("fmt", rel, key, attr) < m.profile.FormatNoise {
			switch m.hInt(3, "fmtpick", rel, key, attr) {
			case 0:
				return withCommas(n)
			case 1:
				return compactMagnitude(float64(n))
			default:
				return "about " + withCommas(n)
			}
		}
		return strconv.FormatInt(n, 10)
	case value.KindFloat:
		f := v.AsFloat()
		if m.h01("fmt", rel, key, attr) < m.profile.FormatNoise {
			switch m.hInt(2, "fmtpick", rel, key, attr) {
			case 0:
				return compactMagnitude(f)
			default:
				return "approximately " + strconv.FormatFloat(f, 'f', 1, 64)
			}
		}
		return strconv.FormatFloat(f, 'g', -1, 64)
	case value.KindDate:
		t := v.AsTime()
		switch {
		case m.h01("fmt", rel, key, attr) < m.profile.FormatNoise:
			if m.hInt(2, "fmtpick", rel, key, attr) == 0 {
				return t.Format("2 January 2006")
			}
			return t.Format("January 2, 2006")
		default:
			return t.Format("2006-01-02")
		}
	case value.KindBool:
		if v.AsBool() {
			return "yes"
		}
		return "no"
	default:
		return v.String()
	}
}

// withCommas renders 1234567 as "1,234,567".
func withCommas(n int64) string {
	s := strconv.FormatInt(n, 10)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var b strings.Builder
	pre := len(s) % 3
	if pre > 0 {
		b.WriteString(s[:pre])
	}
	for i := pre; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	out := b.String()
	if neg {
		out = "-" + out
	}
	return out
}

// compactMagnitude renders 2697000 as "2.7 million", 25460 as "25.5k".
func compactMagnitude(f float64) string {
	abs := math.Abs(f)
	switch {
	case abs >= 1e9:
		return trimF(f/1e9) + " billion"
	case abs >= 1e6:
		return trimF(f/1e6) + " million"
	case abs >= 1e4:
		return trimF(f/1e3) + "k"
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

func trimF(f float64) string {
	s := strconv.FormatFloat(f, 'f', 1, 64)
	return strings.TrimSuffix(s, ".0")
}

// evalCond checks a belief value against an operator and a literal string
// (as it appeared in the prompt), with numeric tolerance for surface forms.
func evalCond(belief value.Value, op, lit string) bool {
	if belief.IsNull() {
		return false
	}
	var litVal value.Value
	if f, ok := clean.ParseNumber(lit); ok {
		litVal = value.Float(f)
	} else {
		litVal = value.Text(lit)
	}
	c, err := value.Compare(belief, litVal)
	if err != nil {
		return false
	}
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}
