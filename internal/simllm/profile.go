// Package simllm implements the simulated large language models that stand
// in for the paper's Flan-T5, Tk-Instruct, InstructGPT-3 and ChatGPT (the
// substitution recorded in DESIGN.md). A Model speaks only text: it parses
// incoming prompts the way the wording was designed to be understood,
// consults the synthetic world's facts, and answers with deterministic,
// profile-specific noise reproducing the failure modes the paper reports —
// popularity-biased recall, hallucinated facts, surface-form variance
// (alpha-2 vs alpha-3 country codes, "1.2 million"), response truncation
// with "more results" fatigue, chatty wrapping, and weak mental arithmetic.
package simllm

// Profile parameterizes one simulated model. All probabilities are in
// [0,1] and are realized deterministically from hashes of (seed, model,
// entity, attribute), so the same question always gets the same answer
// from the same model — the consistency a single pre-trained checkpoint
// exhibits.
type Profile struct {
	ID          string // short name used in prompts/stats ("gpt3")
	DisplayName string // paper name ("InstructGPT-3")
	Params      string // parameter count as reported ("175B")

	// Recall: an entity is "known" with probability
	// KnowFloor + (KnowCeil-KnowFloor) * popularity^RecallBias.
	KnowFloor  float64
	KnowCeil   float64
	RecallBias float64

	// Belief noise on attribute values.
	HallucinationRate float64 // belief is another entity's value
	UnknownRate       float64 // model refuses ("Unknown")
	NumericFuzz       float64 // probability a numeric belief is off
	NumericSpread     float64 // max relative error when off

	// Surface form noise (affects parsing and joins, not beliefs).
	FormatNoise float64 // alternate number/date renderings
	AltCodeRate float64 // alternate entity spellings (IT vs ITA, USA ...)
	RefAltRate  float64 // systematic alternate style for cross-relation references
	Chattiness  float64 // sentence-wrapped single-value answers

	// List behaviour.
	ListLimit    int     // max items per completion
	MoreFatigue  float64 // probability a "more" prompt stops early
	ExtraKeyRate float64 // hallucinated entities injected into lists

	// Boolean filter prompts.
	BoolAccuracy    float64 // per-key yes/no accuracy
	CombinedPenalty float64 // accuracy loss per extra pushed condition

	// Question answering (the T_M / T_M^C baselines).
	QAListLimit  int     // entities a prose answer enumerates
	QASlip       float64 // per-item holistic reasoning slip
	QAAggErrRate float64 // probability a mental aggregate is off
	QAAggSpread  float64 // max relative error of a mental aggregate
	QAJoinRate   float64 // probability a join pair is produced at all
	CoTAggErrR   float64 // aggregate error rate under the fixed CoT prompt
}

// Profiles for the four models evaluated in Section 5. The numbers are
// calibrated so the benchmark harness reproduces the shape of Tables 1
// and 2 (see EXPERIMENTS.md), not fit to any proprietary system.
var (
	// Flan is Flan-T5-large: small, instruction-tuned, misses many
	// entities and tires quickly when asked for more.
	Flan = Profile{
		ID: "flan", DisplayName: "Flan-T5-large", Params: "783M",
		KnowFloor: 0.08, KnowCeil: 0.90, RecallBias: 1.6,
		HallucinationRate: 0.18, UnknownRate: 0.14,
		NumericFuzz: 0.55, NumericSpread: 0.45,
		FormatNoise: 0.20, AltCodeRate: 0.35, RefAltRate: 0.45, Chattiness: 0,
		ListLimit: 6, MoreFatigue: 0.60, ExtraKeyRate: 0.02,
		BoolAccuracy: 0.72, CombinedPenalty: 0.10,
		QAListLimit: 6, QASlip: 0.28, QAAggErrRate: 0.85, QAAggSpread: 0.5,
		QAJoinRate: 0.03, CoTAggErrR: 0.9,
	}

	// TK is Tk-Instruct-large: a sibling of Flan with slightly better
	// recall but the same small-model weaknesses.
	TK = Profile{
		ID: "tk", DisplayName: "Tk-Instruct-large", Params: "783M",
		KnowFloor: 0.10, KnowCeil: 0.88, RecallBias: 1.5,
		HallucinationRate: 0.16, UnknownRate: 0.12,
		NumericFuzz: 0.50, NumericSpread: 0.40,
		FormatNoise: 0.20, AltCodeRate: 0.35, RefAltRate: 0.45, Chattiness: 0,
		ListLimit: 7, MoreFatigue: 0.55, ExtraKeyRate: 0.02,
		BoolAccuracy: 0.74, CombinedPenalty: 0.10,
		QAListLimit: 6, QASlip: 0.26, QAAggErrRate: 0.85, QAAggSpread: 0.5,
		QAJoinRate: 0.03, CoTAggErrR: 0.9,
	}

	// GPT3 is InstructGPT-3: near-complete recall of the generic-topic
	// world, terse instruction-following answers, slight over-generation
	// (the paper's +1.0% cardinality).
	GPT3 = Profile{
		ID: "gpt3", DisplayName: "InstructGPT-3", Params: "175B",
		KnowFloor: 0.95, KnowCeil: 1.00, RecallBias: 1.0,
		HallucinationRate: 0.06, UnknownRate: 0.03,
		NumericFuzz: 0.30, NumericSpread: 0.25,
		FormatNoise: 0.12, AltCodeRate: 0.15, RefAltRate: 0.20, Chattiness: 0,
		ListLimit: 18, MoreFatigue: 0.03, ExtraKeyRate: 0.09,
		BoolAccuracy: 0.90, CombinedPenalty: 0.07,
		QAListLimit: 20, QASlip: 0.12, QAAggErrRate: 0.70, QAAggSpread: 0.35,
		QAJoinRate: 0.06, CoTAggErrR: 0.8,
	}

	// ChatGPT is GPT-3.5-turbo: strong recall but chatty, stops list
	// iteration early (the −19.5% cardinality), and mixes entity-code
	// surface forms, which is what kills joins in Table 2.
	ChatGPT = Profile{
		ID: "chatgpt", DisplayName: "GPT-3.5-turbo", Params: "175B",
		KnowFloor: 0.93, KnowCeil: 1.00, RecallBias: 1.0,
		HallucinationRate: 0.07, UnknownRate: 0.04,
		NumericFuzz: 0.42, NumericSpread: 0.35,
		FormatNoise: 0.30, AltCodeRate: 0.60, RefAltRate: 0.92, Chattiness: 0.18,
		ListLimit: 13, MoreFatigue: 0.08, ExtraKeyRate: 0.01,
		BoolAccuracy: 0.96, CombinedPenalty: 0.08,
		QAListLimit: 28, QASlip: 0.14, QAAggErrRate: 0.60, QAAggSpread: 0.35,
		QAJoinRate: 0.10, CoTAggErrR: 0.95,
	}
)

// ProfileByName returns the built-in profile with the given ID.
func ProfileByName(id string) (Profile, bool) {
	switch id {
	case "flan":
		return Flan, true
	case "tk":
		return TK, true
	case "gpt3":
		return GPT3, true
	case "chatgpt":
		return ChatGPT, true
	}
	return Profile{}, false
}

// AllProfiles lists the four built-in models in the paper's table order.
func AllProfiles() []Profile { return []Profile{Flan, TK, GPT3, ChatGPT} }
