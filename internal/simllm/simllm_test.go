package simllm

import (
	"context"
	"strings"
	"testing"

	"repro/internal/prompt"
	"repro/internal/world"
)

func newModel(t *testing.T, p Profile) *Model {
	t.Helper()
	return New(p, world.Build(), 1)
}

func builder() *prompt.Builder {
	b := prompt.NewBuilder()
	b.IncludePreamble = false
	return b
}

func ask(t *testing.T, m *Model, p string) string {
	t.Helper()
	out, err := m.Complete(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDeterministic(t *testing.T) {
	m := newModel(t, ChatGPT)
	p := builder().Attr("country", "Italy", "capital")
	a, b := ask(t, m, p), ask(t, m, p)
	if a != b {
		t.Errorf("same prompt must get the same answer: %q vs %q", a, b)
	}
	// A different seed may answer differently, but stays deterministic.
	m2 := New(ChatGPT, world.Build(), 2)
	c, d := ask(t, m2, p), ask(t, m2, p)
	if c != d {
		t.Error("seeded model must be self-consistent")
	}
}

func TestPreambleTolerated(t *testing.T) {
	m := newModel(t, GPT3)
	withPreamble := prompt.NewBuilder()
	bare := builder()
	a := ask(t, m, withPreamble.Attr("country", "France", "capital"))
	b := ask(t, m, bare.Attr("country", "France", "capital"))
	if a != b {
		t.Errorf("preamble must not change the answer: %q vs %q", a, b)
	}
}

func TestListPrompt(t *testing.T) {
	m := newModel(t, GPT3)
	out := ask(t, m, builder().KeyList("country", "name", nil, nil))
	lines := strings.Split(out, "\n")
	if len(lines) == 0 || len(lines) > GPT3.ListLimit+2 {
		t.Errorf("list size %d exceeds limit %d", len(lines), GPT3.ListLimit)
	}
	// The most famous country heads the list.
	if !strings.Contains(out, "United States") {
		t.Errorf("list should contain the most popular entities:\n%s", out)
	}
}

func TestListExclusionsRespected(t *testing.T) {
	m := newModel(t, GPT3)
	first := ask(t, m, builder().KeyList("country", "name", nil, nil))
	keys := strings.Split(first, "\n")
	more := ask(t, m, builder().KeyList("country", "name", nil, keys))
	for _, k := range keys {
		if k == "" {
			continue
		}
		for _, line := range strings.Split(more, "\n") {
			if strings.EqualFold(strings.TrimSpace(line), strings.TrimSpace(k)) {
				t.Errorf("repeated key %q in more-results answer", k)
			}
		}
	}
}

func TestListUnknownRelation(t *testing.T) {
	m := newModel(t, GPT3)
	out := ask(t, m, builder().KeyList("spaceship", "name", nil, nil))
	if out != prompt.UnknownMarker {
		t.Errorf("unknown relation = %q", out)
	}
}

func TestPushedConditionFilters(t *testing.T) {
	m := newModel(t, GPT3)
	conds := []prompt.Condition{{Attr: "continent", OpPhrase: "equal to", Value: "Europe"}}
	out := ask(t, m, builder().KeyList("country", "name", conds, nil))
	if strings.Contains(out, "United States") {
		t.Errorf("pushed condition ignored:\n%s", out)
	}
}

func TestAttrPrompt(t *testing.T) {
	m := newModel(t, GPT3)
	out := ask(t, m, builder().Attr("country", "France", "capital"))
	if !strings.Contains(strings.ToLower(out), "paris") && out != prompt.UnknownMarker {
		t.Errorf("capital of France = %q", out)
	}
	// Multi-word attribute labels resolve.
	out = ask(t, m, builder().Attr("country", "France", "independence_year"))
	if out == prompt.UnknownMarker {
		t.Skip("model refused; acceptable under noise")
	}
}

func TestAttrUnknownEntity(t *testing.T) {
	m := newModel(t, GPT3)
	out := ask(t, m, builder().Attr("country", "Atlantis", "capital"))
	if out != prompt.UnknownMarker {
		t.Errorf("unknown entity = %q", out)
	}
}

func TestAttrAliasUnderstood(t *testing.T) {
	m := newModel(t, GPT3)
	canonical := ask(t, m, builder().Attr("country", "United States", "capital"))
	alias := ask(t, m, builder().Attr("country", "USA", "capital"))
	if canonical != alias {
		t.Errorf("the model should understand alias spellings: %q vs %q", canonical, alias)
	}
}

func TestFilterPrompt(t *testing.T) {
	m := newModel(t, GPT3)
	yes := ask(t, m, builder().Filter("country", "China", "population", "more than", "1000000"))
	no := ask(t, m, builder().Filter("country", "Iceland", "population", "more than", "1000000000"))
	if !strings.HasPrefix(strings.ToLower(yes), "yes") {
		t.Errorf("China has >1M people: %q", yes)
	}
	if !strings.HasPrefix(strings.ToLower(no), "no") {
		t.Errorf("Iceland has <1B people: %q", no)
	}
}

func TestFilterUnknownEntityIsNo(t *testing.T) {
	m := newModel(t, GPT3)
	out := ask(t, m, builder().Filter("country", "Atlantis", "population", "more than", "1"))
	if out != "no" {
		t.Errorf("unknown entity filter = %q", out)
	}
}

func TestRecallOrdering(t *testing.T) {
	// The bigger model must recall at least as many entities on average.
	w := world.Build()
	small := New(Flan, w, 1)
	big := New(GPT3, w, 1)
	if len(small.knownKeys("country")) > len(big.knownKeys("country")) {
		t.Errorf("flan recalls %d countries, gpt3 %d — ordering violated",
			len(small.knownKeys("country")), len(big.knownKeys("country")))
	}
	// GPT-3 knows nearly everything.
	if n := len(big.knownKeys("country")); n < 40 {
		t.Errorf("gpt3 recalls only %d/48 countries", n)
	}
	// Flan is popularity-biased: it must know the most famous one.
	if !small.knows("country", "United States", 1.0) {
		t.Error("even a small model knows the most popular entity")
	}
}

func TestBeliefStable(t *testing.T) {
	m := newModel(t, ChatGPT)
	a, okA := m.belief("city", "Chicago", "population")
	b, okB := m.belief("city", "Chicago", "population")
	if okA != okB || a.String() != b.String() {
		t.Error("beliefs must be stable across queries")
	}
}

func TestQARegisteredQuestion(t *testing.T) {
	m := newModel(t, GPT3)
	m.RegisterQuestions(map[string]QuerySpec{
		"which countries are in europe": {
			Relation: "country", Select: []string{"name"},
			Filter: []FilterSpec{{Attr: "continent", Op: "=", Value: "Europe"}},
		},
	})
	out := ask(t, m, prompt.NewBuilder().Question("Which countries are in Europe?"))
	if out == prompt.UnknownMarker {
		t.Fatal("registered question must be answered")
	}
	if strings.Contains(out, "China") {
		t.Errorf("filter ignored: %s", out)
	}
}

func TestQAUnregisteredQuestion(t *testing.T) {
	m := newModel(t, GPT3)
	out := ask(t, m, prompt.NewBuilder().Question("What is the meaning of life?"))
	if out != prompt.UnknownMarker {
		t.Errorf("unregistered question = %q", out)
	}
}

func TestCoTAnswerHasSteps(t *testing.T) {
	m := newModel(t, GPT3)
	m.RegisterQuestions(map[string]QuerySpec{
		"how many countries are there": {Relation: "country", Agg: "count"},
	})
	out := ask(t, m, prompt.NewBuilder().CoTQuestion("How many countries are there?"))
	if !strings.Contains(out, "Step 1") || !strings.Contains(out, "Answer:") {
		t.Errorf("CoT answer should show its steps: %q", out)
	}
}

func TestQAAggregates(t *testing.T) {
	m := newModel(t, GPT3)
	m.RegisterQuestions(map[string]QuerySpec{
		"max mountain": {Relation: "mountain", Agg: "max", AggAttr: "height"},
	})
	out := ask(t, m, prompt.NewBuilder().Question("max mountain"))
	if out == prompt.UnknownMarker {
		t.Fatal("aggregate question must produce a number")
	}
}

func TestQAGroupBy(t *testing.T) {
	m := newModel(t, GPT3)
	m.RegisterQuestions(map[string]QuerySpec{
		"countries per continent": {Relation: "country", Agg: "count", GroupBy: "continent"},
	})
	out := ask(t, m, prompt.NewBuilder().Question("countries per continent"))
	if !strings.Contains(out, ":") {
		t.Errorf("grouped answer should have group: value lines, got %q", out)
	}
}

func TestProfileRegistry(t *testing.T) {
	for _, id := range []string{"flan", "tk", "gpt3", "chatgpt"} {
		p, ok := ProfileByName(id)
		if !ok || p.ID != id {
			t.Errorf("ProfileByName(%q) = %+v, %v", id, p, ok)
		}
	}
	if _, ok := ProfileByName("gpt5"); ok {
		t.Error("unknown profile must not resolve")
	}
	if len(AllProfiles()) != 4 {
		t.Error("four models, as in the paper")
	}
}

func TestGarbagePrompt(t *testing.T) {
	m := newModel(t, ChatGPT)
	out := ask(t, m, "complete gibberish with no recognizable structure")
	if out != prompt.UnknownMarker {
		t.Errorf("gibberish = %q", out)
	}
}

func TestSplitKeyAttr(t *testing.T) {
	m := newModel(t, GPT3)
	key, attr, ok := m.splitKeyAttr("country", "United States independence year")
	if !ok || key != "United States" || attr != "independence_year" {
		t.Errorf("splitKeyAttr = %q %q %v", key, attr, ok)
	}
	_, _, ok = m.splitKeyAttr("country", "no such attribute here")
	if ok {
		t.Error("unsplittable input must fail")
	}
}

func TestDerivedAttrBelief(t *testing.T) {
	// Asking for a derived attribute directly must agree with chaining
	// the two underlying questions — the Section 6 schema-less property,
	// modulo recall.
	m := newModel(t, GPT3)
	direct := ask(t, m, builder().Attr("city", "Paris", "mayor_birth_date"))
	mayor := ask(t, m, builder().Attr("city", "Paris", "mayor"))
	if mayor == prompt.UnknownMarker || direct == prompt.UnknownMarker {
		t.Skip("model refused under noise; acceptable")
	}
	indirect := ask(t, m, builder().Attr("mayor", mayor, "birth_date"))
	if direct != indirect {
		t.Errorf("derived answer %q must chain the same beliefs as %q", direct, indirect)
	}
}

func TestQASuperlative(t *testing.T) {
	// OrderBy + Limit answers superlative questions with the top entity.
	m := newModel(t, GPT3)
	m.RegisterQuestions(map[string]QuerySpec{
		"most populous city": {
			Relation: "city", Select: []string{"name"},
			OrderBy: "population", Desc: true, Limit: 1,
		},
	})
	out := ask(t, m, prompt.NewBuilder().Question("most populous city"))
	if out == prompt.UnknownMarker {
		t.Fatal("superlative must answer")
	}
	if strings.Contains(out, ",") {
		t.Errorf("limit 1 should yield one entity, got %q", out)
	}
}

func TestQAJoinSpec(t *testing.T) {
	// Join questions produce few correct pairs (the paper's QA joins reach
	// only 8%); the plumbing must still work end to end.
	m := newModel(t, GPT3)
	m.RegisterQuestions(map[string]QuerySpec{
		"city continents": {
			Relation: "city", Select: []string{"name"},
			Join: &JoinSpec{Relation: "country", LeftAttr: "country", RightAttr: "name", Select: []string{"continent"}},
		},
	})
	out := ask(t, m, prompt.NewBuilder().Question("city continents"))
	// Either some pairs or a refusal; never an error.
	if out == "" {
		t.Error("join QA must produce text")
	}
}

func TestQADistinct(t *testing.T) {
	m := newModel(t, GPT3)
	m.RegisterQuestions(map[string]QuerySpec{
		"distinct continents": {
			Relation: "country", Select: []string{"continent"}, Distinct: true,
		},
	})
	out := ask(t, m, prompt.NewBuilder().Question("distinct continents"))
	seen := map[string]bool{}
	for _, item := range strings.Split(out, ",") {
		k := strings.ToLower(strings.TrimSpace(item))
		if seen[k] {
			t.Errorf("duplicate %q in distinct answer %q", item, out)
		}
		seen[k] = true
	}
}

func TestModelConcurrencySafe(t *testing.T) {
	// Models are used concurrently by batched operators; hammer one from
	// many goroutines (run with -race).
	m := newModel(t, ChatGPT)
	b := builder()
	done := make(chan string, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			key := []string{"France", "Italy", "Japan", "Brazil"}[i%4]
			out, _ := m.Complete(context.Background(), b.Attr("country", key, "capital"))
			done <- out
		}(i)
	}
	answers := map[string]bool{}
	for i := 0; i < 16; i++ {
		answers[<-done] = true
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
}
