package qa

import (
	"context"
	"testing"

	"repro/internal/clean"
	"repro/internal/prompt"
	"repro/internal/schema"
	"repro/internal/value"
)

func cleaner() *clean.Cleaner { return clean.New(clean.DefaultOptions()) }

func singleCol(kind value.Kind) *schema.Schema {
	return schema.New(schema.Column{Name: "x", Type: kind})
}

func TestParseSingleColumnList(t *testing.T) {
	rel := Parse("Paris, Rome, London", singleCol(value.KindString), cleaner())
	if rel.Cardinality() != 3 || rel.Rows[1][0].AsString() != "Rome" {
		t.Errorf("parsed = %v", rel.Rows)
	}
}

func TestParseBulletedList(t *testing.T) {
	rel := Parse("- Paris\n- Rome\n- Paris", singleCol(value.KindString), cleaner())
	if rel.Cardinality() != 2 {
		t.Errorf("dedup failed: %v", rel.Rows)
	}
}

func TestParseSingleNumber(t *testing.T) {
	rel := Parse("About 42.", singleCol(value.KindInt), cleaner())
	if rel.Cardinality() != 1 || rel.Rows[0][0].AsInt() != 42 {
		t.Errorf("number = %v", rel.Rows)
	}
	// Unparseable numerics are dropped, not kept as text.
	rel = Parse("dunno, maybe", singleCol(value.KindInt), cleaner())
	if rel.Cardinality() != 0 {
		t.Errorf("garbage numeric = %v", rel.Rows)
	}
}

func TestParseUnknown(t *testing.T) {
	rel := Parse("Unknown", singleCol(value.KindString), cleaner())
	if rel.Cardinality() != 0 {
		t.Errorf("Unknown should be empty, got %v", rel.Rows)
	}
	rel = Parse("", singleCol(value.KindString), cleaner())
	if rel.Cardinality() != 0 {
		t.Errorf("empty should be empty")
	}
}

func TestParseMultiColumnWithDates(t *testing.T) {
	s := schema.New(
		schema.Column{Name: "city", Type: value.KindString},
		schema.Column{Name: "birth", Type: value.KindDate},
	)
	text := "- New York City: May 8, 1961\n- Chicago: August 4, 1962"
	rel := Parse(text, s, cleaner())
	if rel.Cardinality() != 2 {
		t.Fatalf("rows = %d: %v", rel.Cardinality(), rel.Rows)
	}
	if rel.Rows[0][0].AsString() != "New York City" {
		t.Errorf("key = %v", rel.Rows[0][0])
	}
	if !value.Equal(rel.Rows[0][1], value.Date(1961, 5, 8)) {
		t.Errorf("comma-containing date survived splitting: %v", rel.Rows[0][1])
	}
}

func TestParseMultiColumnCommaForm(t *testing.T) {
	s := schema.New(
		schema.Column{Name: "a", Type: value.KindString},
		schema.Column{Name: "b", Type: value.KindInt},
	)
	rel := Parse("- Rome, 2873000\n- Paris, 2161000", s, cleaner())
	if rel.Cardinality() != 2 || rel.Rows[0][1].AsInt() != 2873000 {
		t.Errorf("rows = %v", rel.Rows)
	}
}

func TestParseAnswerPrefix(t *testing.T) {
	text := "Step 1: think.\nStep 2: think more.\nAnswer: Paris, Rome"
	rel := Parse(text, singleCol(value.KindString), cleaner())
	if rel.Cardinality() != 2 || rel.Rows[0][0].AsString() != "Paris" {
		t.Errorf("CoT answer extraction = %v", rel.Rows)
	}
}

func TestParsePadsShortRecords(t *testing.T) {
	s := schema.New(
		schema.Column{Name: "a", Type: value.KindString},
		schema.Column{Name: "b", Type: value.KindString},
		schema.Column{Name: "c", Type: value.KindString},
	)
	rel := Parse("- Rome, x", s, cleaner())
	if rel.Cardinality() != 1 || !rel.Rows[0][2].IsNull() {
		t.Errorf("short record = %v", rel.Rows)
	}
}

func TestParseSkipsChattyHeaders(t *testing.T) {
	s := schema.New(
		schema.Column{Name: "a", Type: value.KindString},
		schema.Column{Name: "b", Type: value.KindString},
	)
	rel := Parse("Here are the results:\n- Rome: Italy", s, cleaner())
	if rel.Cardinality() != 1 {
		t.Errorf("header line leaked into records: %v", rel.Rows)
	}
}

// fixedClient returns one canned answer.
type fixedClient struct{ answer string }

func (f *fixedClient) Name() string { return "fixed" }
func (f *fixedClient) Complete(ctx context.Context, p string) (string, error) {
	return f.answer, nil
}

func TestAsk(t *testing.T) {
	client := &fixedClient{answer: "Paris, Rome"}
	res, err := Ask(context.Background(), client, prompt.NewBuilder(), "Which cities?", singleCol(value.KindString), cleaner(), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Text != "Paris, Rome" || res.Relation.Cardinality() != 2 {
		t.Errorf("Ask = %+v", res)
	}
	// CoT variant sends a different prompt but parses the same way.
	res, err = Ask(context.Background(), client, prompt.NewBuilder(), "Which cities?", singleCol(value.KindString), cleaner(), true)
	if err != nil || res.Relation.Cardinality() != 2 {
		t.Errorf("CoT Ask = %+v, %v", res, err)
	}
}
