// Package qa implements the two question-answering baselines of Section 5:
// T_M (ask the NL paraphrase of the query, parse the prose answer) and
// T_M^C (same, with a fixed manually-crafted chain-of-thought exemplar in
// the prompt). The postprocessing that the paper performs manually —
// splitting comma-separated values, removing repetitions and punctuation,
// mapping records onto the expected schema — is automated here with fixed
// rules applied identically to every model and method.
package qa

import (
	"context"
	"strings"

	"repro/internal/clean"
	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/schema"
	"repro/internal/value"
)

// Result is one baseline answer: the raw text and the relation extracted
// from it under the expected schema.
type Result struct {
	Text     string
	Relation *schema.Relation
}

// Ask sends the NL question to the model and parses the textual answer
// into a relation with the expected schema. cot selects the
// chain-of-thought prompt variant.
func Ask(ctx context.Context, client llm.Client, b *prompt.Builder, question string, expected *schema.Schema, cleaner *clean.Cleaner, cot bool) (*Result, error) {
	var p string
	if cot {
		p = b.CoTQuestion(question)
	} else {
		p = b.Question(question)
	}
	text, err := client.Complete(ctx, p)
	if err != nil {
		return nil, err
	}
	return &Result{Text: text, Relation: Parse(text, expected, cleaner)}, nil
}

// Parse extracts records from a prose answer. The rules mirror the
// paper's manual mapping: take the text after the final "Answer:" (CoT
// emits reasoning first), split bulleted lines or comma lists, strip
// punctuation, drop repetitions, and type every field against the
// expected schema.
func Parse(text string, expected *schema.Schema, cleaner *clean.Cleaner) *schema.Relation {
	rel := schema.NewRelation(expected.Clone())
	body := text
	if i := strings.LastIndex(body, "Answer:"); i >= 0 {
		body = body[i+len("Answer:"):]
	}
	body = strings.TrimSpace(body)
	if body == "" || strings.EqualFold(body, prompt.UnknownMarker) {
		return rel
	}

	cols := expected.Len()
	if cols == 1 {
		for _, item := range clean.SplitList(body) {
			v := cleaner.Cell(item, expected.Columns[0].Type)
			if v.IsNull() && expected.Columns[0].Type != value.KindString {
				// Keep unparseable single values out; a human mapper
				// would discard them too.
				continue
			}
			rel.Append(schema.Tuple{v})
		}
		return rel
	}

	// Multi-column: one record per line.
	seen := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		raw := strings.TrimSpace(line)
		if raw == "" || strings.HasSuffix(raw, ":") {
			continue
		}
		item := clean.Strip(raw)
		if item == "" {
			continue
		}
		fields := splitRecord(item, cols)
		if fields == nil {
			continue
		}
		row := make(schema.Tuple, cols)
		for i, f := range fields {
			row[i] = cleaner.Cell(f, expected.Columns[i].Type)
		}
		idx := make([]int, cols)
		for i := range idx {
			idx[i] = i
		}
		k := row.Key(idx)
		if seen[k] {
			continue
		}
		seen[k] = true
		rel.Append(row)
	}
	return rel
}

// splitRecord splits "New York City: Bill de Blasio, born May 8, 1961"
// into the expected number of fields. A leading "key:" separates the
// first field; commas separate the rest, with over-splits merged into the
// final field (dates such as "May 8, 1961" contain commas).
func splitRecord(s string, cols int) []string {
	var fields []string
	rest := s
	if i := strings.Index(rest, ":"); i >= 0 && cols >= 2 {
		fields = append(fields, strings.TrimSpace(rest[:i]))
		rest = strings.TrimSpace(rest[i+1:])
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	need := cols - len(fields)
	switch {
	case need <= 0:
		return fields[:cols]
	case len(parts) < need:
		// Too few fields: pad with empties so partial records still map.
		for _, p := range parts {
			fields = append(fields, p)
		}
		for len(fields) < cols {
			fields = append(fields, "")
		}
		return fields
	case len(parts) == need:
		return append(fields, parts...)
	default:
		// Over-split: keep the first need-1 parts, merge the remainder
		// back into the final field.
		fields = append(fields, parts[:need-1]...)
		fields = append(fields, strings.Join(parts[need-1:], ", "))
		return fields
	}
}
