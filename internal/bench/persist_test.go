package bench

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/simllm"
)

func TestPersistComparison(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.PersistComparison(context.Background(), simllm.ChatGPT, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckAcceptance(); err != nil {
		t.Fatal(err)
	}
	if rep.CacheableQueries == 0 {
		t.Fatal("no cacheable queries in the corpus")
	}
	if rep.CacheableQueries+rep.LimitQueries != rep.Queries {
		t.Errorf("per-class counts don't add up: %d + %d != %d",
			rep.CacheableQueries, rep.LimitQueries, rep.Queries)
	}
	if rep.PrimedCacheable == 0 {
		t.Error("ANALYZE probe vacuous: no cacheable query reads the primed table")
	}
	t.Logf("corpus of %d (%d cacheable): cold %d prompts, warm %d prompts, %d relations restored",
		rep.Queries, rep.CacheableQueries, rep.ColdPrompts, rep.WarmPrompts, rep.WarmRelations)
}

// TestPersistDeterministic pins the artifact's reproducibility: two full
// four-generation comparisons over distinct data directories must agree
// byte-for-byte on the JSON CI diffs.
func TestPersistDeterministic(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, err := r.PersistComparison(ctx, simllm.ChatGPT, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.PersistComparison(ctx, simllm.ChatGPT, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("comparison not deterministic:\nfirst:  %s\nsecond: %s", aj, bj)
	}
}
