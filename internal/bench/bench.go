// Package bench wires the full reproduction together: it builds the
// synthetic world, loads the ground-truth DBMS, binds the LLM-side schema,
// and regenerates every experiment in the paper's evaluation (Table 1,
// Table 2, the latency note) plus the ablations DESIGN.md calls out.
package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/clean"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/memdb"
	"repro/internal/prompt"
	"repro/internal/qa"
	"repro/internal/schema"
	"repro/internal/simllm"
	"repro/internal/spider"
	"repro/internal/world"
)

// LLMTables lists the relations bound to the LLM side (everything except
// the DB-only employees table).
var LLMTables = []string{"country", "city", "mayor", "airport", "singer", "stadium", "mountain"}

// Runner holds the shared fixtures for one benchmark session.
type Runner struct {
	World *world.World
	DB    *memdb.DB
	Seed  int64
}

// NewRunner builds the world and the ground-truth database.
func NewRunner(seed int64) (*Runner, error) {
	w := world.Build()
	db := memdb.New()
	for _, name := range w.Tables() {
		t := w.Table(name)
		rel := w.Relation(name)
		if err := db.LoadRelation(t.Def, rel); err != nil {
			return nil, fmt.Errorf("bench: loading %s: %w", name, err)
		}
	}
	return &Runner{World: w, DB: db, Seed: seed}, nil
}

// Model instantiates a simulated model with the benchmark question bank
// registered.
func (r *Runner) Model(p simllm.Profile) *simllm.Model {
	m := simllm.New(p, r.World, r.Seed)
	m.RegisterQuestions(spider.QuestionBank())
	return m
}

// Engine builds a Galois engine over the model with the LLM-side schema
// bound and the ground-truth DB attached (for hybrid queries).
func (r *Runner) Engine(client llm.Client, opts core.Options) (*core.Engine, error) {
	rt, err := r.Runtime(client, opts)
	if err != nil {
		return nil, err
	}
	return rt.Engine(), nil
}

// Runtime builds the shared engine tier over the model with the
// LLM-side schema bound and the ground-truth DB attached — the fixture
// for concurrent-session workloads (galois-serve, the concurrency
// benchmark) where callers open their own sessions.
func (r *Runner) Runtime(client llm.Client, opts core.Options) (*core.Runtime, error) {
	rt := core.NewRuntime(client, opts)
	rt.AttachDB(r.DB)
	for _, name := range LLMTables {
		if err := rt.BindLLMTable(r.World.Table(name).Def); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// RuntimeFromConfig builds the multi-backend engine tier a -config file
// declares: one simulated model per backend (each with its own noise
// seed when the file sets one, the runner's seed otherwise), the
// default, the role routes and the failover chains, with the LLM-side
// schema bound and the ground-truth DB attached.
func (r *Runner) RuntimeFromConfig(cfg *config.Config, opts core.Options) (*core.Runtime, error) {
	defs := make([]core.BackendDef, 0, len(cfg.Backends))
	for _, b := range cfg.Backends {
		profile, ok := simllm.ProfileByName(b.Model)
		if !ok {
			return nil, fmt.Errorf("bench: backend %q: unknown model %q", b.Name, b.Model)
		}
		seed := r.Seed
		if b.Seed != 0 {
			seed = b.Seed
		}
		m := simllm.New(profile, r.World, seed)
		m.RegisterQuestions(spider.QuestionBank())
		defs = append(defs, core.BackendDef{
			Name:        b.Name,
			Client:      m,
			Workers:     b.Workers,
			CostWeight:  b.Cost,
			SpeedFactor: b.Speed,
			Fallback:    b.Fallback,
		})
	}
	rt, err := core.NewRuntimeWithBackends(defs, cfg.Default, cfg.Routes, opts)
	if err != nil {
		return nil, err
	}
	rt.AttachDB(r.DB)
	for _, name := range LLMTables {
		if err := rt.BindLLMTable(r.World.Table(name).Def); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// GroundTruth executes a query on the DBMS (result b in Section 5).
func (r *Runner) GroundTruth(ctx context.Context, sql string) (*schema.Relation, error) {
	return r.DB.QuerySQL(ctx, sql)
}

// PaperOptions is the published configuration: the engine defaults with
// the prompt cache disabled (the paper's system had no prompt reuse) and
// stop-and-go execution (each operator drains its input and issues one
// blocking batch, with latency summed across operators — the model
// behind the paper's ~20 s/query note). Experiments reproducing the
// paper's numbers run with these; AblationCache and PipelineComparison
// measure the respective engine upgrades.
func PaperOptions() core.Options {
	opts := core.DefaultOptions()
	opts.CacheEnabled = false
	opts.Pipelined = false
	return opts
}

// CellOptions returns the content-matching configuration: 5% numeric
// tolerance plus the alias canonicalizer standing in for the paper's
// manual tuple mapping.
func (r *Runner) CellOptions() eval.CellOptions {
	return eval.CellOptions{
		NumericTolerance: 0.05,
		Canon:            clean.NewCanonicalizer(r.World.Aliases()),
	}
}

// ----------------------------------------------------------------- Table 1

// Table1Row is one model's cardinality result.
type Table1Row struct {
	Model       string
	DiffPercent float64 // 1−f as % (paper: Flan −47.4 … GPT-3 +1.0)
	Queries     int     // queries with non-empty ground truth
}

// Table1Paper holds the published numbers for side-by-side reporting.
var Table1Paper = map[string]float64{"flan": -47.4, "tk": -43.7, "gpt3": 1.0, "chatgpt": -19.5}

// Table1 regenerates the cardinality experiment for the given profiles.
func (r *Runner) Table1(ctx context.Context, profiles []simllm.Profile, opts core.Options) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(profiles))
	for _, p := range profiles {
		engine, err := r.Engine(r.Model(p), opts)
		if err != nil {
			return nil, err
		}
		var diffs []float64
		for _, q := range spider.Queries() {
			truth, err := r.GroundTruth(ctx, q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: ground truth for query %d: %w", q.ID, err)
			}
			if truth.Cardinality() == 0 {
				continue
			}
			got, _, err := engine.Query(ctx, q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: %s on query %d: %w", p.ID, q.ID, err)
			}
			diffs = append(diffs, eval.CardinalityDiffPercent(truth.Cardinality(), got.Cardinality()))
		}
		rows = append(rows, Table1Row{Model: p.ID, DiffPercent: eval.Mean(diffs), Queries: len(diffs)})
	}
	return rows, nil
}

// ----------------------------------------------------------------- Table 2

// Table2Row is one method's per-class cell-match percentages.
type Table2Row struct {
	Method     string // "R_M", "T_M", "T_M^C"
	All        float64
	Selections float64
	Aggregates float64
	Joins      float64
}

// Table2Paper holds the published ChatGPT numbers.
var Table2Paper = []Table2Row{
	{Method: "R_M", All: 50, Selections: 80, Aggregates: 29, Joins: 0},
	{Method: "T_M", All: 44, Selections: 71, Aggregates: 20, Joins: 8},
	{Method: "T_M^C", All: 41, Selections: 71, Aggregates: 13, Joins: 0},
}

// Table2 regenerates the content experiment on one model.
func (r *Runner) Table2(ctx context.Context, p simllm.Profile, opts core.Options) ([]Table2Row, error) {
	model := r.Model(p)
	engine, err := r.Engine(model, opts)
	if err != nil {
		return nil, err
	}
	cellOpts := r.CellOptions()
	builder := prompt.NewBuilder()
	cleaner := clean.New(opts.Clean)

	type acc struct{ all, sel, agg, join []float64 }
	method := map[string]*acc{"R_M": {}, "T_M": {}, "T_M^C": {}}
	record := func(name string, class spider.Class, pct float64) {
		a := method[name]
		a.all = append(a.all, pct)
		switch class {
		case spider.ClassSelection:
			a.sel = append(a.sel, pct)
		case spider.ClassAggregate:
			a.agg = append(a.agg, pct)
		case spider.ClassJoin:
			a.join = append(a.join, pct)
		}
	}

	for _, q := range spider.Queries() {
		truth, err := r.GroundTruth(ctx, q.SQL)
		if err != nil {
			return nil, fmt.Errorf("bench: ground truth for query %d: %w", q.ID, err)
		}

		// (a) Galois.
		got, _, err := engine.Query(ctx, q.SQL)
		if err != nil {
			return nil, fmt.Errorf("bench: galois on query %d: %w", q.ID, err)
		}
		record("R_M", q.Class, eval.MatchContent(truth, got, cellOpts).Percent())

		// (c) plain QA and (d) QA with chain of thought.
		for _, m := range []struct {
			name string
			cot  bool
		}{{"T_M", false}, {"T_M^C", true}} {
			res, err := qa.Ask(ctx, model, builder, q.NL, truth.Schema, cleaner, m.cot)
			if err != nil {
				return nil, fmt.Errorf("bench: %s on query %d: %w", m.name, q.ID, err)
			}
			record(m.name, q.Class, eval.MatchContent(truth, res.Relation, cellOpts).Percent())
		}
	}

	var out []Table2Row
	for _, name := range []string{"R_M", "T_M", "T_M^C"} {
		a := method[name]
		out = append(out, Table2Row{
			Method:     name,
			All:        eval.Mean(a.all),
			Selections: eval.Mean(a.sel),
			Aggregates: eval.Mean(a.agg),
			Joins:      eval.Mean(a.join),
		})
	}
	return out, nil
}

// ----------------------------------------------------------- latency note

// LatencyStats summarizes the prompt-count/latency observation in
// Section 5 (~110 batched prompts, ~20 s per query on GPT-3).
type LatencyStats struct {
	Model            string
	AvgPrompts       float64
	AvgLatency       time.Duration
	MaxPrompts       int
	TotalPrompts     int
	QueriesMeasured  int
	AvgPromptsPerQry float64
}

// Latency measures prompt counts and simulated latency across the corpus.
func (r *Runner) Latency(ctx context.Context, p simllm.Profile, opts core.Options) (*LatencyStats, error) {
	engine, err := r.Engine(r.Model(p), opts)
	if err != nil {
		return nil, err
	}
	stats := &LatencyStats{Model: p.ID}
	var totalLatency time.Duration
	for _, q := range spider.Queries() {
		_, rep, err := engine.Query(ctx, q.SQL)
		if err != nil {
			return nil, fmt.Errorf("bench: latency run query %d: %w", q.ID, err)
		}
		stats.TotalPrompts += rep.Stats.Prompts
		totalLatency += rep.Stats.SimulatedLatency
		if rep.Stats.Prompts > stats.MaxPrompts {
			stats.MaxPrompts = rep.Stats.Prompts
		}
		stats.QueriesMeasured++
	}
	if stats.QueriesMeasured > 0 {
		stats.AvgPrompts = float64(stats.TotalPrompts) / float64(stats.QueriesMeasured)
		stats.AvgLatency = totalLatency / time.Duration(stats.QueriesMeasured)
		stats.AvgPromptsPerQry = stats.AvgPrompts
	}
	return stats, nil
}
