package bench

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/simllm"
)

// TestResultCacheComparison is the acceptance gate of the semantic
// result cache: repeated identical corpus traffic must cost zero prompts
// while every relation stays bit-identical to the uncached control, the
// cold pass must never cost more than the control (subsumption can only
// save), and a PrimeTableKeys bump on one table must re-execute that
// table's queries while sparing every other table's — without changing
// a result.
func TestResultCacheComparison(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.ResultCacheComparison(context.Background(), simllm.ChatGPT, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckAcceptance(); err != nil {
		t.Fatal(err)
	}
	if rep.CacheableQueries == 0 {
		t.Fatal("no cacheable queries in the corpus")
	}
	if rep.CacheableQueries+rep.LimitQueries != rep.Queries {
		t.Errorf("per-class counts don't add up: %d + %d != %d",
			rep.CacheableQueries, rep.LimitQueries, rep.Queries)
	}
	t.Logf("corpus of %d (%d cacheable): cold %d prompts, hot %d prompts, %d cache hits",
		rep.Queries, rep.CacheableQueries, rep.CachedFirstPrompts,
		rep.RepeatPromptsCacheable+rep.RepeatPromptsLimit, rep.ResultCacheHits)
}

// TestResultCacheDeterministic pins the artifact's reproducibility: two
// fresh comparisons must agree byte-for-byte on the JSON CI diffs.
func TestResultCacheDeterministic(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, err := r.ResultCacheComparison(ctx, simllm.ChatGPT, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ResultCacheComparison(ctx, simllm.ChatGPT, 1)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("comparison not deterministic:\nfirst:  %s\nsecond: %s", aj, bj)
	}
}
