package bench

import (
	"context"
	"testing"

	"repro/internal/simllm"
)

// These tests assert the qualitative claims of the paper's evaluation —
// the "shape" DESIGN.md commits to reproducing. They run the full
// experiment pipeline, so they are skipped under -short.

func runner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestTable1Shape: small models miss roughly half the rows, GPT-3 is
// near-perfect, ChatGPT sits in between (Table 1 orders
// flan < tk < chatgpt < gpt3 on cardinality fidelity).
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r := runner(t)
	rows, err := r.Table1(context.Background(), simllm.AllProfiles(), PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[string]float64{}
	for _, row := range rows {
		byModel[row.Model] = row.DiffPercent
		if row.Queries != 46 {
			t.Errorf("%s measured on %d queries, want 46", row.Model, row.Queries)
		}
	}
	if !(byModel["flan"] < -35) {
		t.Errorf("flan should miss a large fraction of rows, got %+.1f", byModel["flan"])
	}
	if !(byModel["tk"] < -30) {
		t.Errorf("tk should miss a large fraction of rows, got %+.1f", byModel["tk"])
	}
	if abs(byModel["gpt3"]) > 10 {
		t.Errorf("gpt3 should be near 0, got %+.1f", byModel["gpt3"])
	}
	if !(byModel["chatgpt"] < -10 && byModel["chatgpt"] > -35) {
		t.Errorf("chatgpt should sit between the small models and gpt3, got %+.1f", byModel["chatgpt"])
	}
	// Ordering: flan ≤ tk < chatgpt < gpt3.
	if !(byModel["flan"] <= byModel["tk"]+5 && byModel["tk"] < byModel["chatgpt"] && byModel["chatgpt"] < byModel["gpt3"]) {
		t.Errorf("ordering violated: %+v", byModel)
	}
}

// TestTable2Shape asserts the content-quality claims on ChatGPT:
// Galois beats plain QA overall; selections ≫ aggregates ≫ joins≈0 for
// the SQL path; the fixed CoT prompt does not beat Galois (Section 5:
// "well-engineered chain-of-thought NL prompts do not lead to better
// results than Galois").
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r := runner(t)
	rows, err := r.Table2(context.Background(), simllm.ChatGPT, PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]Table2Row{}
	for _, row := range rows {
		byMethod[row.Method] = row
	}
	rm, tm, tmc := byMethod["R_M"], byMethod["T_M"], byMethod["T_M^C"]

	if rm.All <= tm.All {
		t.Errorf("Galois (%.1f) must beat plain QA (%.1f) overall", rm.All, tm.All)
	}
	if rm.All <= tmc.All {
		t.Errorf("Galois (%.1f) must beat CoT QA (%.1f) overall", rm.All, tmc.All)
	}
	if !(rm.Selections > rm.Aggregates && rm.Aggregates > rm.Joins) {
		t.Errorf("class ordering violated for R_M: %.1f/%.1f/%.1f", rm.Selections, rm.Aggregates, rm.Joins)
	}
	if rm.Joins > 10 {
		t.Errorf("joins fail on ChatGPT (surface-form mismatches), got %.1f", rm.Joins)
	}
	if rm.Selections < 60 {
		t.Errorf("selections are the easy class (paper: 80%%), got %.1f", rm.Selections)
	}
	if tmc.All > tm.All {
		t.Errorf("the fixed CoT prompt should not beat plain QA overall (paper: 41 vs 44), got %.1f vs %.1f", tmc.All, tm.All)
	}
	if tmc.Joins > 1 {
		t.Errorf("CoT joins are 0 in the paper, got %.1f", tmc.Joins)
	}
}

// TestLatencyShape: tens-of-prompts per query with skew (the paper reports
// ~110 batched prompts and a skewed distribution).
func TestLatencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r := runner(t)
	stats, err := r.Latency(context.Background(), simllm.GPT3, PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.AvgPrompts < 10 {
		t.Errorf("avg prompts = %.0f, expected tens per query", stats.AvgPrompts)
	}
	if stats.MaxPrompts < int(2*stats.AvgPrompts) {
		t.Errorf("distribution should be skewed: max %d vs avg %.0f", stats.MaxPrompts, stats.AvgPrompts)
	}
	if stats.AvgLatency.Seconds() < 1 {
		t.Errorf("simulated latency = %s, expected seconds per query", stats.AvgLatency)
	}
}

// TestAblationPushdownShape: merging selections into the list prompt must
// slash prompt counts (the Section 6 motivation) without collapsing
// accuracy.
func TestAblationPushdownShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r := runner(t)
	rows, err := r.AblationPushdown(context.Background(), simllm.ChatGPT)
	if err != nil {
		t.Fatal(err)
	}
	staged, merged := rows[0], rows[1]
	if merged.AvgPrompts >= staged.AvgPrompts/3 {
		t.Errorf("pushdown should cut prompts hard: %.1f vs %.1f", merged.AvgPrompts, staged.AvgPrompts)
	}
	if merged.CellMatch < staged.CellMatch-20 {
		t.Errorf("pushdown accuracy collapsed: %.1f vs %.1f", merged.CellMatch, staged.CellMatch)
	}
}

// TestAblationCleaningShape: disabling normalization/type enforcement must
// hurt content quality (Section 4: "a simple but crucial step").
func TestAblationCleaningShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r := runner(t)
	rows, err := r.AblationCleaning(context.Background(), simllm.ChatGPT)
	if err != nil {
		t.Fatal(err)
	}
	on, off := rows[0], rows[1]
	if on.CellMatch <= off.CellMatch {
		t.Errorf("cleaning must help: on=%.1f off=%.1f", on.CellMatch, off.CellMatch)
	}
}

// TestAblationJoinShape: canonicalizing surface forms must repair the
// broken joins.
func TestAblationJoinShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r := runner(t)
	rows, err := r.AblationJoinFormats(context.Background(), simllm.ChatGPT)
	if err != nil {
		t.Fatal(err)
	}
	raw, canon := rows[0], rows[1]
	if raw.CellMatch > 15 {
		t.Errorf("raw joins should be near zero, got %.1f", raw.CellMatch)
	}
	if canon.CellMatch < raw.CellMatch+20 {
		t.Errorf("canonicalization should repair joins: %.1f vs %.1f", canon.CellMatch, raw.CellMatch)
	}
}

// TestAblationMoreResultsShape: cardinality improves monotonically-ish
// with the iteration budget and saturates.
func TestAblationMoreResultsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r := runner(t)
	rows, err := r.AblationMoreResults(context.Background(), simllm.GPT3, []int{1, 4, 12})
	if err != nil {
		t.Fatal(err)
	}
	if !(rows[0].CellMatch < rows[1].CellMatch) {
		t.Errorf("one iteration must truncate hard: %.1f vs %.1f", rows[0].CellMatch, rows[1].CellMatch)
	}
	if rows[2].CellMatch < rows[1].CellMatch-5 {
		t.Errorf("more budget must not hurt: %.1f vs %.1f", rows[2].CellMatch, rows[1].CellMatch)
	}
}

// TestDeterminismAcrossRunners: the whole benchmark is reproducible
// bit-for-bit for a fixed seed.
func TestDeterminismAcrossRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	ctx := context.Background()
	a := runner(t)
	b := runner(t)
	ra, err := a.Table1(ctx, []simllm.Profile{simllm.ChatGPT}, PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Table1(ctx, []simllm.Profile{simllm.ChatGPT}, PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ra[0].DiffPercent != rb[0].DiffPercent {
		t.Errorf("non-deterministic benchmark: %.3f vs %.3f", ra[0].DiffPercent, rb[0].DiffPercent)
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
