package bench

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/simllm"
)

// TestSmoke runs one query end to end through the ground-truth engine and
// through Galois on every simulated model. It is the canary for the whole
// pipeline.
func TestSmoke(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	truth, err := r.GroundTruth(ctx, `SELECT name FROM city WHERE population > 5000000`)
	if err != nil {
		t.Fatal(err)
	}
	if truth.Cardinality() == 0 {
		t.Fatal("ground truth returned no rows")
	}
	t.Logf("ground truth: %d cities", truth.Cardinality())

	for _, p := range simllm.AllProfiles() {
		engine, err := r.Engine(r.Model(p), core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		got, rep, err := engine.Query(ctx, `SELECT name FROM city WHERE population > 5000000`)
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		t.Logf("%s: %d rows, %s", p.ID, got.Cardinality(), rep.Stats.String())
	}
}
