package bench

import (
	"context"
	"testing"

	"repro/internal/simllm"
)

// TestChaosComparison is the acceptance gate of the fault-tolerant LLM
// transport: under seeded transient and malformed-output fault profiles
// with retries enabled, every corpus query must heal with relations,
// recorded prompt counts and simulated makespan bit-identical to the
// fault-free run (on the cold pass and the cache-hot pass alike); with
// retries disabled the same faults must lose queries, all surfaced
// through the error taxonomy; and a total outage must walk the breaker
// through open -> shed -> half-open probe -> closed with no stale cache
// entries. Runs under -race in CI.
func TestChaosComparison(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.ChaosComparison(context.Background(), simllm.ChatGPT)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckAcceptance(); err != nil {
		t.Fatal(err)
	}
	t.Logf("transient: %d faults healed by %d retries over %d queries (no-retry control lost %d)",
		rep.Transient.Faults, rep.Transient.Retries, rep.Transient.Queries, rep.NoRetry.FailedQueries)
}

// TestChaosDeterministic pins the artifact's reproducibility: two fresh
// comparisons must agree on every number CI diffs.
func TestChaosDeterministic(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.ChaosComparison(context.Background(), simllm.ChatGPT)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ChaosComparison(context.Background(), simllm.ChatGPT)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("chaos comparison not deterministic:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}
