package bench

import (
	"context"
	"testing"

	"repro/internal/simllm"
)

// TestPipelineComparison is the acceptance gate of the pipelined
// executor: on the multi-operator benchmark query
// (scan→fetch→filter per join side, with cross-model verification) it
// must cut simulated latency at least 2x with bit-identical results and
// the same number of issued prompts, and on the whole corpus it must
// never be slower and never change a result.
func TestPipelineComparison(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.PipelineComparison(context.Background(), simllm.ChatGPT, simllm.GPT3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want multiop + corpus", len(rep.Benchmarks))
	}

	multi := rep.Benchmarks[0]
	if !multi.ResultsIdentical {
		t.Error("multiop: pipelined execution changed the result")
	}
	if multi.Speedup < 2 {
		t.Errorf("multiop: speedup = %.2fx, want >= 2x (stop-and-go %.0f ms vs pipelined %.0f ms)",
			multi.Speedup, multi.Configs[0].AvgSimLatencyMS, multi.Configs[1].AvgSimLatencyMS)
	}
	if multi.Configs[0].PromptsPerQuery != multi.Configs[1].PromptsPerQuery {
		t.Errorf("multiop: prompt counts diverged: %.1f vs %.1f",
			multi.Configs[0].PromptsPerQuery, multi.Configs[1].PromptsPerQuery)
	}
	t.Logf("multiop: %.0f prompts/query, %.1f s -> %.1f s (%.2fx)",
		multi.Configs[0].PromptsPerQuery,
		multi.Configs[0].AvgSimLatencyMS/1000, multi.Configs[1].AvgSimLatencyMS/1000, multi.Speedup)

	corpus := rep.Benchmarks[1]
	if !corpus.ResultsIdentical {
		t.Error("corpus: pipelined execution changed a result")
	}
	if corpus.Speedup < 1 {
		t.Errorf("corpus: pipelining slowed the corpus down: %.2fx", corpus.Speedup)
	}
	t.Logf("corpus: %d queries, %.1f s -> %.1f s per query (%.2fx)",
		corpus.Configs[0].Queries,
		corpus.Configs[0].AvgSimLatencyMS/1000, corpus.Configs[1].AvgSimLatencyMS/1000, corpus.Speedup)
}
