package bench

import (
	"context"
	"testing"

	"repro/internal/simllm"
)

// TestAblationCacheShape: the engine-level prompt cache must cut issued
// model calls substantially on the corpus (key scans and attribute
// fetches recur across queries) without changing results — the simulated
// models answer each prompt as a pure function, so a cached completion is
// bit-identical to a fresh one.
func TestAblationCacheShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r := runner(t)
	rows, err := r.AblationCache(context.Background(), simllm.ChatGPT)
	if err != nil {
		t.Fatal(err)
	}
	off, on := rows[0], rows[1]
	if off.AvgPrompts <= 0 {
		t.Fatalf("cache-off arm issued no prompts: %+v", off)
	}
	if on.AvgPrompts >= 0.8*off.AvgPrompts {
		t.Errorf("cache must measurably cut prompts/query: on=%.1f off=%.1f", on.AvgPrompts, off.AvgPrompts)
	}
	if diff := on.CellMatch - off.CellMatch; diff > 0.01 || diff < -0.01 {
		t.Errorf("cache must not change results: on=%.2f off=%.2f", on.CellMatch, off.CellMatch)
	}
	if diff := on.CardDiff - off.CardDiff; diff > 0.01 || diff < -0.01 {
		t.Errorf("cache must not change cardinality: on=%.2f off=%.2f", on.CardDiff, off.CardDiff)
	}
}
