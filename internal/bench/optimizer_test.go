package bench

import (
	"context"
	"strings"
	"testing"

	"repro/internal/simllm"
)

// TestOptimizerComparison gates the cost-based optimizer's acceptance
// criteria: on the corpus the chosen plans never issue more prompts than
// the fixed heuristics, at least one multi-predicate query saves ≥10%,
// and EXPLAIN's estimated prompt counts stay within 2x of actuals.
func TestOptimizerComparison(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.OptimizerComparison(context.Background(), simllm.ChatGPT)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckAcceptance(); err != nil {
		t.Errorf("acceptance criteria violated:\n%v\nmulti-predicate suite: %+v", err, rep.MultiPredicate)
	}
}

// TestExplainAnalyzeThroughEngine exercises the SQL front end: EXPLAIN
// returns the annotated plan without executing, EXPLAIN ANALYZE executes
// and annotates actual counters.
func TestExplainAnalyzeThroughEngine(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := r.Engine(r.Model(simllm.ChatGPT), CostBasedOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	rel, rep, err := engine.Query(ctx, "EXPLAIN SELECT name FROM city WHERE population > 1000000")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Prompts != 0 {
		t.Errorf("EXPLAIN must not execute, issued %d prompts", rep.Stats.Prompts)
	}
	text := rel.String()
	for _, want := range []string{"LLMKeyScan", "est rows", "estimated: prompts="} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, text)
		}
	}

	rel, rep, err = engine.Query(ctx, "EXPLAIN ANALYZE SELECT name FROM city WHERE population > 1000000")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Prompts == 0 {
		t.Error("EXPLAIN ANALYZE must execute the query")
	}
	text = rel.String()
	for _, want := range []string{"actual rows=", "actual:    prompts="} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, text)
		}
	}
}
