package bench

import (
	"context"
	"fmt"

	"repro/internal/clean"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/simllm"
	"repro/internal/spider"
)

// AblationRow is one configuration's outcome on the corpus (or a subset).
type AblationRow struct {
	Config     string
	CellMatch  float64 // avg cell match % vs ground truth
	CardDiff   float64 // avg cardinality diff %
	AvgPrompts float64 // prompts per query
	Queries    int
}

// runConfig executes the given queries under one engine configuration and
// aggregates the metrics.
func (r *Runner) runConfig(ctx context.Context, p simllm.Profile, opts core.Options, queries []spider.Query, label string) (AblationRow, error) {
	engine, err := r.Engine(r.Model(p), opts)
	if err != nil {
		return AblationRow{}, err
	}
	cellOpts := r.CellOptions()
	var cells, cards []float64
	prompts := 0
	for _, q := range queries {
		truth, err := r.GroundTruth(ctx, q.SQL)
		if err != nil {
			return AblationRow{}, fmt.Errorf("bench: ground truth for query %d: %w", q.ID, err)
		}
		got, rep, err := engine.Query(ctx, q.SQL)
		if err != nil {
			return AblationRow{}, fmt.Errorf("bench: %s query %d: %w", label, q.ID, err)
		}
		cells = append(cells, eval.MatchContent(truth, got, cellOpts).Percent())
		if truth.Cardinality() > 0 {
			cards = append(cards, eval.CardinalityDiffPercent(truth.Cardinality(), got.Cardinality()))
		}
		prompts += rep.Stats.Prompts
	}
	row := AblationRow{Config: label, CellMatch: eval.Mean(cells), CardDiff: eval.Mean(cards), Queries: len(queries)}
	if len(queries) > 0 {
		row.AvgPrompts = float64(prompts) / float64(len(queries))
	}
	return row, nil
}

// AblationPushdown compares staged prompts (key scan + per-key boolean
// filters) against merged prompts (selection pushed into the list prompt),
// the Section 6 optimization: fewer prompt executions, lower per-condition
// accuracy.
func (r *Runner) AblationPushdown(ctx context.Context, p simllm.Profile) ([]AblationRow, error) {
	queries := spider.ByClass(spider.ClassSelection)

	staged := PaperOptions()
	merged := PaperOptions()
	merged.Optimizer.PromptPushdown = true

	a, err := r.runConfig(ctx, p, staged, queries, "staged-prompts")
	if err != nil {
		return nil, err
	}
	b, err := r.runConfig(ctx, p, merged, queries, "prompt-pushdown")
	if err != nil {
		return nil, err
	}
	return []AblationRow{a, b}, nil
}

// AblationCleaning compares the full cleaner against one with numeric
// normalization and type enforcement disabled (Section 4: "a simple but
// crucial step to limit the incorrect output due to model hallucinations").
func (r *Runner) AblationCleaning(ctx context.Context, p simllm.Profile) ([]AblationRow, error) {
	queries := spider.Queries()

	withClean := PaperOptions()
	withoutClean := PaperOptions()
	withoutClean.Clean = clean.Options{NormalizeNumbers: false, EnforceTypes: false}

	a, err := r.runConfig(ctx, p, withClean, queries, "cleaning-on")
	if err != nil {
		return nil, err
	}
	b, err := r.runConfig(ctx, p, withoutClean, queries, "cleaning-off")
	if err != nil {
		return nil, err
	}
	return []AblationRow{a, b}, nil
}

// AblationJoinFormats shows that canonicalizing entity surface forms
// before joining repairs the IT-vs-ITA failures of Section 5.
func (r *Runner) AblationJoinFormats(ctx context.Context, p simllm.Profile) ([]AblationRow, error) {
	queries := spider.ByClass(spider.ClassJoin)

	plain := PaperOptions()
	canon := PaperOptions()
	canon.Clean.Canonicalizer = clean.NewCanonicalizer(r.World.Aliases())

	a, err := r.runConfig(ctx, p, plain, queries, "raw-surface-forms")
	if err != nil {
		return nil, err
	}
	b, err := r.runConfig(ctx, p, canon, queries, "canonicalized")
	if err != nil {
		return nil, err
	}
	return []AblationRow{a, b}, nil
}

// AblationMoreResults sweeps the termination threshold of the "return more
// results" loop (Section 4's user-specified threshold alternative).
func (r *Runner) AblationMoreResults(ctx context.Context, p simllm.Profile, iterations []int) ([]AblationRow, error) {
	queries := spider.ByClass(spider.ClassOther)
	var out []AblationRow
	for _, n := range iterations {
		opts := PaperOptions()
		opts.MaxScanIterations = n
		row, err := r.runConfig(ctx, p, opts, queries, fmt.Sprintf("max-iterations=%d", n))
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// AblationCache measures the engine-level prompt cache on a repeated-key
// workload: one engine per config runs the full corpus, so with the cache
// on the key scans and attribute fetches that recur across queries are
// served from memory, concurrent identical prompts collapse, and
// duplicate prompts inside one batch cost one completion. AvgPrompts
// counts only model calls actually issued — the cache-on arm must show a
// clear drop.
func (r *Runner) AblationCache(ctx context.Context, p simllm.Profile) ([]AblationRow, error) {
	queries := spider.Queries()

	off := core.DefaultOptions()
	off.CacheEnabled = false
	on := core.DefaultOptions()
	on.CacheEnabled = true

	a, err := r.runConfig(ctx, p, off, queries, "cache-off")
	if err != nil {
		return nil, err
	}
	b, err := r.runConfig(ctx, p, on, queries, "cache-on")
	if err != nil {
		return nil, err
	}
	return []AblationRow{a, b}, nil
}
