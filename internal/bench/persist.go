package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"reflect"

	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/simllm"
	"repro/internal/spider"
	"repro/internal/sql/parser"
)

// PersistQuery is one corpus query's record across the restart.
type PersistQuery struct {
	ID    int  `json:"id"`
	Limit bool `json:"limit,omitempty"`
	// ColdPrompts is the first generation's prompt count; WarmPrompts the
	// second generation's — 0 for every cacheable query when warm start
	// works.
	ColdPrompts int `json:"cold_prompts"`
	WarmPrompts int `json:"warm_prompts"`
}

// PersistReport is the machine-readable warm-restart record
// (BENCH_persist.json): the corpus run cold on one runtime generation,
// drained to disk, and replayed on three successor generations over the
// same data directory — a plain restart, a restart after a live rebind,
// and a restart after an ANALYZE — asserting what each must and must
// not re-pay. Prompt cache off, fixed plans: every number is a pure
// function of the corpus, so CI diffs the artifact byte-for-byte.
type PersistReport struct {
	Model   string `json:"model"`
	Queries int    `json:"queries"`
	// CacheableQueries counts LIMIT-free corpus queries (storable);
	// LimitQueries bypass the result cache and re-pay on every
	// generation.
	CacheableQueries int `json:"cacheable_queries"`
	LimitQueries     int `json:"limit_queries"`
	// ColdPrompts is generation 1's total; WarmPrompts generation 2's
	// over cacheable queries — the headline 0.
	ColdPrompts int `json:"cold_prompts"`
	WarmPrompts int `json:"warm_prompts"`
	// WarmRelations / WarmStatsTables are what generation 2's open
	// restored; StatsRestored pins its statistics bit-identical to
	// generation 1's final snapshot, and AllStatsSeen that every
	// restored table is marked observed (the planner will not fall back
	// to default estimates for any of them).
	WarmRelations   int  `json:"warm_relations"`
	WarmStatsTables int  `json:"warm_stats_tables"`
	StatsRestored   bool `json:"stats_restored"`
	AllStatsSeen    bool `json:"all_stats_seen"`
	// WarmIdentical: every warm-pass relation is bit-identical to its
	// cold-pass relation.
	WarmIdentical bool `json:"warm_identical"`
	// Rebind probe (generation 2, live): BindLLMTable on one table after
	// the warm pass. The first warm-loaded query reading it re-executes
	// with prompts, queries not reading it stay free, results identical.
	RebindReexecuted bool `json:"rebind_reexecuted"`
	RebindRetained   bool `json:"rebind_retained"`
	RebindIdentical  bool `json:"rebind_identical"`
	// ReopenWarmRelations is generation 3's restore count: the rebind
	// probe's re-executed entries persisted under their bumped stamps
	// and every entry warm-loads again.
	ReopenWarmRelations int `json:"reopen_warm_relations"`
	// ANALYZE probe: generation 3 primes one table and drains without
	// replaying. Generation 4 must warm-load everything except that
	// table's entries (PostPrimeWarmRelations), re-execute its first
	// query with prompts, keep every other query free, and serve nothing
	// stale (PostPrimeDroppedStale counts warm-load stamp rejections —
	// 0 here, because the graceful drain also persisted the tombstones).
	PostPrimeWarmRelations int  `json:"post_prime_warm_relations"`
	PostPrimeDroppedStale  int  `json:"post_prime_dropped_stale"`
	PrimedReexecuted       bool `json:"primed_reexecuted"`
	PrimedRetained         bool `json:"primed_retained"`
	PrimedIdentical        bool `json:"primed_identical"`
	// PrimedCacheable counts cacheable queries reading the primed table
	// (the entries generation 4 must re-pay).
	PrimedCacheable int `json:"primed_cacheable"`

	PerQuery []PersistQuery `json:"per_query"`
}

// PersistComparison measures the durable store end to end: four runtime
// generations over one data directory, each built on a freshly seeded
// identical model, so any relation divergence is a persistence bug, not
// noise. dir must be empty (or nonexistent) at entry.
func (r *Runner) PersistComparison(ctx context.Context, p simllm.Profile, dir string) (*PersistReport, error) {
	type corpusQuery struct {
		id      int
		sql     string
		limit   bool
		rebound bool // reads the table the generation-2 probe rebinds
		primed  bool // reads the table the generation-3 probe primes
	}
	var corpus []corpusQuery
	for _, q := range spider.Queries() {
		sel, err := parser.ParseSelect(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("bench: parsing corpus query %d: %w", q.ID, err)
		}
		corpus = append(corpus, corpusQuery{id: q.ID, sql: q.SQL, limit: sel.Limit >= 0})
	}

	// Resolve which queries read the probed components on a throwaway
	// runtime (planning only; nothing executes).
	planRT, err := r.Runtime(r.Model(p), resultCacheOptions(false))
	if err != nil {
		return nil, err
	}
	reboundComp := logical.ComponentLLM(LLMTables[0])
	primedComp := logical.ComponentLLM(LLMTables[1])
	for i, q := range corpus {
		plan, err := planRT.NewSession().Plan(q.sql)
		if err != nil {
			return nil, fmt.Errorf("bench: planning corpus query %d: %w", q.id, err)
		}
		for _, comp := range logical.Components(plan) {
			switch comp {
			case reboundComp:
				corpus[i].rebound = true
			case primedComp:
				corpus[i].primed = true
			}
		}
	}

	generation := func() (*core.Runtime, error) {
		rt, err := r.Runtime(r.Model(p), resultCacheOptions(true))
		if err != nil {
			return nil, err
		}
		if err := rt.OpenStore(core.StoreConfig{Dir: dir}); err != nil {
			return nil, err
		}
		return rt, nil
	}

	rep := &PersistReport{
		Model:           p.ID,
		Queries:         len(corpus),
		WarmIdentical:   true,
		RebindRetained:  true,
		RebindIdentical: true,
		PrimedRetained:  true,
		PrimedIdentical: true,
	}
	perQuery := make([]PersistQuery, len(corpus))
	for i, q := range corpus {
		perQuery[i] = PersistQuery{ID: q.id, Limit: q.limit}
		if q.limit {
			rep.LimitQueries++
		} else {
			rep.CacheableQueries++
			if q.primed {
				rep.PrimedCacheable++
			}
		}
	}

	// Generation 1: cold — populate the cache, learn the statistics,
	// drain everything to disk.
	rt1, err := generation()
	if err != nil {
		return nil, err
	}
	cold := make([]queryOutcome, len(corpus))
	for i, q := range corpus {
		cold[i] = runQuery(ctx, rt1, q.sql)
		if cold[i].err != nil {
			return nil, fmt.Errorf("bench: cold generation: %w", cold[i].err)
		}
		perQuery[i].ColdPrompts = cold[i].prompts
		rep.ColdPrompts += cold[i].prompts
	}
	coldStats := rt1.Statistics().Snapshot()
	if err := rt1.CloseStore(); err != nil {
		return nil, fmt.Errorf("bench: draining cold generation: %w", err)
	}

	// Generation 2: warm restart — the whole corpus for zero prompts,
	// over the persisted statistics; then the live-rebind probe.
	rt2, err := generation()
	if err != nil {
		return nil, err
	}
	p2 := rt2.Persistence()
	rep.WarmRelations = p2.WarmRelations
	rep.WarmStatsTables = p2.WarmStatsTables
	warmStats := rt2.Statistics().Snapshot()
	rep.StatsRestored = reflect.DeepEqual(warmStats.Tables, coldStats.Tables)
	rep.AllStatsSeen = len(warmStats.Tables) > 0
	for _, ts := range warmStats.Tables {
		if !ts.Seen {
			rep.AllStatsSeen = false
		}
	}
	for i, q := range corpus {
		warm := runQuery(ctx, rt2, q.sql)
		if warm.err != nil {
			return nil, fmt.Errorf("bench: warm generation: %w", warm.err)
		}
		perQuery[i].WarmPrompts = warm.prompts
		if !q.limit {
			rep.WarmPrompts += warm.prompts
		}
		if warm.rel != cold[i].rel {
			rep.WarmIdentical = false
		}
	}

	// Rebind probe: the warm-loaded entries obey live invalidation. Only
	// the first rebound query must pay prompts — later ones may already
	// be subsumed by relations this very pass repopulates.
	if err := rt2.BindLLMTable(r.World.Table(LLMTables[0]).Def); err != nil {
		return nil, err
	}
	probedFirst := false
	for i, q := range corpus {
		probe := runQuery(ctx, rt2, q.sql)
		if probe.err != nil {
			return nil, fmt.Errorf("bench: rebind probe: %w", probe.err)
		}
		if !q.limit {
			if q.rebound && !probedFirst {
				probedFirst = true
				rep.RebindReexecuted = probe.prompts > 0
			}
			if !q.rebound && probe.prompts != 0 {
				rep.RebindRetained = false
			}
		}
		if probe.rel != cold[i].rel {
			rep.RebindIdentical = false
		}
	}
	if err := rt2.CloseStore(); err != nil {
		return nil, fmt.Errorf("bench: draining warm generation: %w", err)
	}

	// Generation 3: everything re-persisted under post-rebind stamps
	// warm-loads again; ANALYZE one table and drain without replaying.
	rt3, err := generation()
	if err != nil {
		return nil, err
	}
	rep.ReopenWarmRelations = rt3.Persistence().WarmRelations
	rt3.PrimeTableKeys(LLMTables[1], 1)
	if err := rt3.CloseStore(); err != nil {
		return nil, fmt.Errorf("bench: draining primed generation: %w", err)
	}

	// Generation 4: the primed table's entries are gone for good; every
	// other entry still serves for free.
	rt4, err := generation()
	if err != nil {
		return nil, err
	}
	p4 := rt4.Persistence()
	rep.PostPrimeWarmRelations = p4.WarmRelations
	rep.PostPrimeDroppedStale = p4.DroppedStale
	probedFirst = false
	for i, q := range corpus {
		probe := runQuery(ctx, rt4, q.sql)
		if probe.err != nil {
			return nil, fmt.Errorf("bench: post-prime generation: %w", probe.err)
		}
		if !q.limit {
			if q.primed && !probedFirst {
				probedFirst = true
				rep.PrimedReexecuted = probe.prompts > 0
			}
			if !q.primed && probe.prompts != 0 {
				rep.PrimedRetained = false
			}
		}
		if probe.rel != cold[i].rel {
			rep.PrimedIdentical = false
		}
	}
	if err := rt4.CloseStore(); err != nil {
		return nil, fmt.Errorf("bench: draining post-prime generation: %w", err)
	}

	rep.PerQuery = perQuery
	return rep, nil
}

// CheckAcceptance enforces the warm-restart acceptance criteria: the
// restarted generation serves the hot corpus for zero prompts with
// bit-identical relations over fully restored statistics, a live rebind
// and a persisted ANALYZE each invalidate exactly their own table's
// entries across restarts, and nothing stale is ever served.
func (rep *PersistReport) CheckAcceptance() error {
	var errs []error
	if rep.ColdPrompts == 0 {
		errs = append(errs, errors.New("cold generation issued no prompts; fixture vacuous"))
	}
	if rep.WarmPrompts != 0 {
		errs = append(errs, fmt.Errorf("warm restart re-paid %d prompts on cacheable queries, want 0", rep.WarmPrompts))
	}
	if rep.WarmRelations != rep.CacheableQueries {
		errs = append(errs, fmt.Errorf("warm start restored %d relations, want %d (every cacheable query)", rep.WarmRelations, rep.CacheableQueries))
	}
	if !rep.WarmIdentical {
		errs = append(errs, errors.New("a warm relation diverged from its cold relation"))
	}
	if !rep.StatsRestored || rep.WarmStatsTables == 0 {
		errs = append(errs, fmt.Errorf("statistics not restored bit-identical (%d tables, restored=%v)", rep.WarmStatsTables, rep.StatsRestored))
	}
	if !rep.AllStatsSeen {
		errs = append(errs, errors.New("a restored table is not marked observed; the planner would fall back to defaults"))
	}
	if !rep.RebindReexecuted {
		errs = append(errs, errors.New("a warm-loaded entry was still served across a live rebind"))
	}
	if !rep.RebindRetained {
		errs = append(errs, errors.New("a live rebind invalidated warm-loaded entries over unrelated tables"))
	}
	if !rep.RebindIdentical {
		errs = append(errs, errors.New("re-execution after the live rebind changed a relation"))
	}
	if rep.ReopenWarmRelations != rep.CacheableQueries {
		errs = append(errs, fmt.Errorf("post-rebind reopen restored %d relations, want %d", rep.ReopenWarmRelations, rep.CacheableQueries))
	}
	if want := rep.CacheableQueries - rep.PrimedCacheable; rep.PostPrimeWarmRelations != want {
		errs = append(errs, fmt.Errorf("post-ANALYZE reopen restored %d relations, want %d (all but the primed table's)", rep.PostPrimeWarmRelations, want))
	}
	if !rep.PrimedReexecuted {
		errs = append(errs, errors.New("a primed table's entry survived the restart it was invalidated before"))
	}
	if !rep.PrimedRetained {
		errs = append(errs, errors.New("a persisted ANALYZE invalidated entries over unrelated tables"))
	}
	if !rep.PrimedIdentical {
		errs = append(errs, errors.New("re-execution after the persisted ANALYZE changed a relation"))
	}
	return errors.Join(errs...)
}

// WritePersistArtifact writes the report as indented JSON — the
// committed BENCH_persist.json tracking warm restarts.
func WritePersistArtifact(path string, rep *PersistReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
