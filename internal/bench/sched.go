package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/simllm"
	"repro/internal/spider"
)

// The sched benchmark measures what the deficit-weighted scheduler buys
// over the legacy per-prompt round-robin, in two complementary halves:
//
//   - A simulated half: a deterministic discrete-event run of one mixed
//     workload — batch tenants saturating the worker pool while short
//     interactive chains arrive on top — under both dispatch policies
//     (llm.Simulate drives the live band code for the deficit arm).
//     Dispatch order under contention is scheduling policy, so this is
//     where interactive tail latency actually differs; the virtual clock
//     makes the difference a pure function of the workload, diffable in
//     CI.
//
//   - A live half: the corpus executed solo (one query at a time)
//     versus K-way concurrent with alternating admission classes on one
//     shared runtime. Class and weight must be pure scheduling hints:
//     relations bit-identical, per-query prompt counts unchanged, and
//     the aggregate simulated makespan no worse than the solo sum.

// Simulated-workload shape. The batch tenants arrive first and carry
// enough independent prompts to keep every slot busy past the last
// interactive arrival, so each interactive chain lands on a saturated
// pool — the regime the two policies disagree in.
const (
	// DefaultSimInteractive is how many interactive chain tenants arrive.
	DefaultSimInteractive = 16
	// DefaultSimBatch is how many batch tenants saturate the pool. A
	// round-robin rotation visits every ready flow once, so a wide batch
	// fleet is exactly what stretches an interactive chain's per-step
	// wait under the baseline — the fan-in a shared serving deployment
	// actually sees, not an adversarial corner.
	DefaultSimBatch = 24
	// simBatchPrompts is each batch tenant's independent prompt count.
	simBatchPrompts = 24
	// simChainPrompts is each interactive tenant's dependent chain length.
	simChainPrompts = 4
	// simStagger spaces interactive arrivals so roughly half the pool's
	// worth of chains is in flight at once: contention without the
	// interactive band itself becoming the bottleneck (the starvation
	// bound is per-band).
	simStagger = 500 * time.Millisecond
)

// SchedWorkload builds the benchmark's mixed-class workload — a pure
// function, so both arms and every regeneration see the same prompts.
func SchedWorkload() []llm.SimTenant {
	var ts []llm.SimTenant
	for b := 0; b < DefaultSimBatch; b++ {
		costs := make([]int, simBatchPrompts)
		for i := range costs {
			costs[i] = 32 + 8*((b+i)%4) // 32..56 tokens, deterministic spread
		}
		ts = append(ts, llm.SimTenant{
			Tag:     fmt.Sprintf("batch-%d", b),
			Class:   llm.ClassBatch,
			Weight:  1,
			Arrival: 0,
			Costs:   costs,
		})
	}
	for q := 0; q < DefaultSimInteractive; q++ {
		costs := make([]int, simChainPrompts)
		for i := range costs {
			costs[i] = 16 + 4*((q+i)%3) // 16..24 tokens
		}
		ts = append(ts, llm.SimTenant{
			Tag:     fmt.Sprintf("interactive-%d", q),
			Class:   llm.ClassInteractive,
			Weight:  1,
			Arrival: llm.VTime(q) * llm.VTime(simStagger),
			Costs:   costs,
			Chain:   true,
		})
	}
	return ts
}

// schedWorkloadBound is the workload's starvation bound: the service
// time of its costliest prompt — the longest any in-flight prompt can
// hold a slot, and therefore the longest an interactive arrival may
// wait for its first dispatch under strict priority.
func schedWorkloadBound(ts []llm.SimTenant) llm.VTime {
	var maxCost int
	for _, t := range ts {
		for _, c := range t.Costs {
			if c > maxCost {
				maxCost = c
			}
		}
	}
	return llm.SimService(maxCost)
}

// SchedSimArm summarizes one policy's simulated outcome.
type SchedSimArm struct {
	Policy string `json:"policy"`
	// Interactive latency percentiles: arrival to last prompt done.
	InteractiveP50MS float64 `json:"interactive_p50_ms"`
	InteractiveP99MS float64 `json:"interactive_p99_ms"`
	// MaxFirstWaitMS is the worst interactive wait for a first dispatch:
	// first completion minus arrival minus the first prompt's own
	// service time. Under strict priority it must stay within the
	// starvation bound.
	MaxFirstWaitMS float64 `json:"max_first_wait_ms"`
	// BatchP99MS is the batch tenants' completion-latency p99 — what
	// strict priority costs the background work.
	BatchP99MS float64 `json:"batch_p99_ms"`
	MakespanMS float64 `json:"makespan_ms"`
}

// SchedLiveArm aggregates one live execution mode over the corpus.
type SchedLiveArm struct {
	Config              string  `json:"config"` // "solo" or "mixed-kN"
	Queries             int     `json:"queries"`
	TotalPrompts        int     `json:"total_prompts"`
	AggregateMakespanMS float64 `json:"aggregate_makespan_ms"`
}

// SchedReport is the machine-readable scheduling record
// (BENCH_sched.json).
type SchedReport struct {
	Model   string `json:"model"`
	Workers int    `json:"workers_per_endpoint"`
	K       int    `json:"concurrency"`

	// Simulated mixed-class contention, both policies over one workload.
	SimInteractive int         `json:"sim_interactive_tenants"`
	SimBatch       int         `json:"sim_batch_tenants"`
	RoundRobin     SchedSimArm `json:"sim_round_robin"`
	Deficit        SchedSimArm `json:"sim_deficit_weighted"`
	// P99ImprovementX is round-robin interactive p99 over
	// deficit-weighted interactive p99 — the headline win.
	P99ImprovementX float64 `json:"interactive_p99_improvement_x"`
	// StarvationBoundMS is the workload's one-prompt service-time bound
	// the deficit arm's MaxFirstWaitMS is gated against.
	StarvationBoundMS float64 `json:"starvation_bound_ms"`

	// Live corpus, solo versus mixed-class concurrent.
	Solo  SchedLiveArm `json:"solo"`
	Mixed SchedLiveArm `json:"mixed"`
	// ResultsIdentical reports whether every query's relation was
	// bit-identical between the solo and mixed-class runs.
	ResultsIdentical bool `json:"results_identical"`
	// PromptsIdentical reports whether every query issued exactly the
	// same number of prompts in both runs.
	PromptsIdentical bool `json:"prompts_identical"`
}

// simArm runs one policy over the workload and reduces it to the arm
// summary.
func simArm(workers int, policy llm.SimPolicy, ts []llm.SimTenant) SchedSimArm {
	res := llm.Simulate(workers, policy, ts)
	var inter, batch []llm.VTime
	var maxWait llm.VTime
	for i, tr := range res.Tenants {
		if ts[i].Class == llm.ClassBatch {
			batch = append(batch, tr.Latency)
			continue
		}
		inter = append(inter, tr.Latency)
		if wait := tr.FirstLatency - llm.SimService(ts[i].Costs[0]); wait > maxWait {
			maxWait = wait
		}
	}
	ms := func(v llm.VTime) float64 { return float64(v) / float64(time.Millisecond) }
	return SchedSimArm{
		Policy:           res.Policy,
		InteractiveP50MS: ms(llm.Percentile(inter, 50)),
		InteractiveP99MS: ms(llm.Percentile(inter, 99)),
		MaxFirstWaitMS:   ms(maxWait),
		BatchP99MS:       ms(llm.Percentile(batch, 99)),
		MakespanMS:       ms(res.Makespan),
	}
}

// runClassedQuery executes one corpus query on a fresh session running
// in the given admission class.
func runClassedQuery(ctx context.Context, rt *core.Runtime, sql, class string, weight int) queryOutcome {
	sess := rt.NewSession()
	o := sess.Options()
	o.AdmissionClass = class
	o.AdmissionWeight = weight
	sess.SetOptions(o)
	rel, rep, err := sess.Query(ctx, sql)
	if err != nil {
		return queryOutcome{err: fmt.Errorf("%q: %w", sql, err)}
	}
	return queryOutcome{
		rel:      rel.String(),
		prompts:  rep.Stats.Prompts,
		makespan: rep.Stats.SimulatedLatency,
		sched:    rep.Sched,
		cached:   rep.Cached,
	}
}

// SchedComparison runs both halves of the scheduling benchmark: the
// simulated policy A/B over the mixed workload, and the live corpus
// solo versus K-way mixed-class concurrent (queries alternating between
// the interactive and batch bands, batch at weight 2 to exercise the
// weighted deficit). Cache off and fixed plans in both live arms, so
// every reported number is a pure function of the prompt sets.
func (r *Runner) SchedComparison(ctx context.Context, p simllm.Profile, k, workers int) (*SchedReport, error) {
	if k < 1 {
		k = DefaultConcurrency
	}
	if workers < 1 {
		workers = DefaultServeWorkers
	}

	workload := SchedWorkload()
	rep := &SchedReport{
		Model:             p.ID,
		Workers:           workers,
		K:                 k,
		SimInteractive:    DefaultSimInteractive,
		SimBatch:          DefaultSimBatch,
		RoundRobin:        simArm(workers, llm.PolicyRoundRobin, workload),
		Deficit:           simArm(workers, llm.PolicyDeficitWeighted, workload),
		StarvationBoundMS: float64(schedWorkloadBound(workload)) / float64(time.Millisecond),
		ResultsIdentical:  true,
		PromptsIdentical:  true,
	}
	if rep.Deficit.InteractiveP99MS > 0 {
		rep.P99ImprovementX = rep.RoundRobin.InteractiveP99MS / rep.Deficit.InteractiveP99MS
	}

	var corpus []string
	for _, q := range spider.Queries() {
		corpus = append(corpus, q.SQL)
	}

	// Solo arm: one runtime, one query at a time, default class.
	soloRT, err := r.Runtime(r.Model(p), concurrencyOptions(workers))
	if err != nil {
		return nil, err
	}
	solo := make([]queryOutcome, len(corpus))
	for i, sql := range corpus {
		solo[i] = runQuery(ctx, soloRT, sql)
		if solo[i].err != nil {
			return nil, fmt.Errorf("bench: solo arm: %w", solo[i].err)
		}
	}

	// Mixed arm: a fresh but identically configured runtime, K queries
	// at a time, odd corpus indexes demoted to the batch band at weight 2.
	mixedRT, err := r.Runtime(r.Model(p), concurrencyOptions(workers))
	if err != nil {
		return nil, err
	}
	mixed := make([]queryOutcome, len(corpus))
	var mixedTotal time.Duration
	for lo := 0; lo < len(corpus); lo += k {
		hi := lo + k
		if hi > len(corpus) {
			hi = len(corpus)
		}
		var wg sync.WaitGroup
		for i := lo; i < hi; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				class, weight := "interactive", 1
				if i%2 == 1 {
					class, weight = "batch", 2
				}
				mixed[i] = runClassedQuery(ctx, mixedRT, corpus[i], class, weight)
			}(i)
		}
		wg.Wait()
		var batch []*llm.TenantStats
		for i := lo; i < hi; i++ {
			if mixed[i].err != nil {
				return nil, fmt.Errorf("bench: mixed arm: %w", mixed[i].err)
			}
			batch = append(batch, mixed[i].sched)
		}
		mixedTotal += llm.AggregateMakespan(workers, batch)
	}

	var soloTotal time.Duration
	var soloPrompts, mixedPrompts int
	for i := range corpus {
		soloTotal += solo[i].makespan
		soloPrompts += solo[i].prompts
		mixedPrompts += mixed[i].prompts
		if solo[i].rel != mixed[i].rel {
			rep.ResultsIdentical = false
		}
		if solo[i].prompts != mixed[i].prompts {
			rep.PromptsIdentical = false
		}
	}
	rep.Solo = SchedLiveArm{
		Config:              "solo",
		Queries:             len(corpus),
		TotalPrompts:        soloPrompts,
		AggregateMakespanMS: float64(soloTotal) / float64(time.Millisecond),
	}
	rep.Mixed = SchedLiveArm{
		Config:              fmt.Sprintf("mixed-k%d", k),
		Queries:             len(corpus),
		TotalPrompts:        mixedPrompts,
		AggregateMakespanMS: float64(mixedTotal) / float64(time.Millisecond),
	}
	return rep, nil
}

// CheckAcceptance enforces the scheduling acceptance criteria: under
// simulated mixed-class contention the deficit-weighted policy must cut
// interactive p99 versus round-robin (with margin) while staying inside
// the one-prompt starvation bound and costing essentially no makespan;
// and in the live mixed-class run, classes and weights must be pure
// scheduling hints — bit-identical relations, identical prompt counts,
// aggregate makespan no worse than solo.
func (rep *SchedReport) CheckAcceptance() error {
	var errs []error
	if rep.P99ImprovementX < 1.2 {
		errs = append(errs, fmt.Errorf("interactive p99 improvement %.2fx under mixed-class contention, want >= 1.2x", rep.P99ImprovementX))
	}
	if rep.Deficit.MaxFirstWaitMS > rep.StarvationBoundMS {
		errs = append(errs, fmt.Errorf("interactive first-dispatch wait %.1fms exceeds the one-prompt starvation bound %.1fms",
			rep.Deficit.MaxFirstWaitMS, rep.StarvationBoundMS))
	}
	if rep.Deficit.MakespanMS > rep.RoundRobin.MakespanMS*1.02 {
		errs = append(errs, fmt.Errorf("strict priority cost throughput: deficit makespan %.0fms vs round-robin %.0fms (>2%% regression)",
			rep.Deficit.MakespanMS, rep.RoundRobin.MakespanMS))
	}
	if !rep.ResultsIdentical {
		errs = append(errs, errors.New("mixed-class execution changed a result relation"))
	}
	if !rep.PromptsIdentical {
		errs = append(errs, errors.New("mixed-class execution changed a per-query prompt count"))
	}
	if rep.Mixed.AggregateMakespanMS > rep.Solo.AggregateMakespanMS {
		errs = append(errs, fmt.Errorf("mixed-class aggregate makespan %.0fms worse than solo %.0fms",
			rep.Mixed.AggregateMakespanMS, rep.Solo.AggregateMakespanMS))
	}
	return errors.Join(errs...)
}

// WriteSchedArtifact writes the report as indented JSON — the committed
// BENCH_sched.json tracking the scheduling trajectory.
func WriteSchedArtifact(path string, rep *SchedReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
