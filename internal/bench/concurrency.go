package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/simllm"
	"repro/internal/spider"
)

// DefaultConcurrency is the K of the committed concurrency benchmark:
// how many corpus queries run at once against one shared runtime.
const DefaultConcurrency = 4

// DefaultServeWorkers is the per-endpoint worker budget of the
// concurrency benchmark: the connection budget a serving deployment
// provisions, shared fairly by all in-flight queries. It is larger than
// one interactive query's DefaultBatchWorkers because a server sizes its
// endpoint budget for the fleet, not for one query — and the whole point
// of the shared scheduler is that concurrent queries soak up the slots
// any single query would leave idle while it waits on its sequential
// prompt chains.
const DefaultServeWorkers = 16

// ConcurrencyArm aggregates one isolation mode over the corpus.
type ConcurrencyArm struct {
	Config  string `json:"config"` // "serial" or "concurrent-kN"
	Queries int    `json:"queries"`
	// TotalPrompts sums issued model calls across the corpus (cache off:
	// every prompt is a model call).
	TotalPrompts int `json:"total_prompts"`
	// AggregateMakespanMS is the simulated wall-clock to finish the whole
	// corpus: summed per-query makespans when serial, summed per-batch
	// aggregate makespans (max critical path vs summed per-endpoint work
	// over the shared budget) when concurrent.
	AggregateMakespanMS float64 `json:"aggregate_makespan_ms"`
}

// ConcurrencyReport is the machine-readable concurrency record
// (BENCH_concurrency.json): the corpus executed serially versus K-ways
// concurrently against one shared runtime and scheduler.
type ConcurrencyReport struct {
	Model      string         `json:"model"`
	Workers    int            `json:"workers_per_endpoint"`
	K          int            `json:"concurrency"`
	Serial     ConcurrencyArm `json:"serial"`
	Concurrent ConcurrencyArm `json:"concurrent"`
	// SpeedupX is serial aggregate makespan over concurrent aggregate
	// makespan — how much faster the corpus finishes when K queries
	// share the worker budget instead of running one at a time.
	SpeedupX float64 `json:"speedup_x"`
	// ResultsIdentical reports whether every query's relation was
	// bit-identical between the serial and concurrent runs.
	ResultsIdentical bool `json:"results_identical"`
	// PromptsIdentical reports whether every query issued exactly the
	// same number of prompts in both runs.
	PromptsIdentical bool `json:"prompts_identical"`
}

// concurrencyOptions pins the benchmark configuration: pipelined on the
// shared scheduler, cache off (both arms pay for every prompt, and
// per-query accounting becomes a pure function of the query), fixed
// heuristic plans (no cost-based feedback, so plan choice cannot depend
// on the order concurrent queries observe statistics).
func concurrencyOptions(workers int) core.Options {
	opts := PaperOptions()
	opts.Pipelined = true
	opts.Optimizer.CostBased = false
	opts.BatchWorkers = workers
	return opts
}

// queryOutcome is one query's record in one arm.
type queryOutcome struct {
	rel     string
	prompts int
	// makespan is the query-alone simulated wall-clock (serial arm).
	makespan time.Duration
	// sched is the query's scheduler accounting (concurrent aggregation).
	sched *llm.TenantStats
	// cached reports how the result cache answered (cache-on arms only).
	cached core.CacheOutcome
	err    error
}

// runQuery executes one corpus query on a fresh session of rt.
func runQuery(ctx context.Context, rt *core.Runtime, sql string) queryOutcome {
	rel, rep, err := rt.NewSession().Query(ctx, sql)
	if err != nil {
		return queryOutcome{err: fmt.Errorf("%q: %w", sql, err)}
	}
	return queryOutcome{
		rel:      rel.String(),
		prompts:  rep.Stats.Prompts,
		makespan: rep.Stats.SimulatedLatency,
		sched:    rep.Sched,
		cached:   rep.Cached,
	}
}

// ConcurrencyComparison measures the shared-runtime concurrency model:
// the corpus executed one query at a time versus K queries at a time
// against one runtime (one scheduler, one statistics store), with the
// per-endpoint worker budget fixed at `workers` in both arms.
//
// The serial arm's aggregate makespan sums each query's makespan — the
// larger of its critical path and its work spread over the full budget;
// a lone query cannot do better. The concurrent arm partitions the
// corpus into batches of K and sums each batch's aggregate makespan —
// max(any query's critical path, any endpoint's summed work over the
// budget), the same list-scheduling bound lifted across queries
// (llm.AggregateMakespan). With the cache off both are pure functions of
// the prompt sets, so the report is deterministic and CI can diff it.
func (r *Runner) ConcurrencyComparison(ctx context.Context, p simllm.Profile, k, workers int) (*ConcurrencyReport, error) {
	if k < 1 {
		k = DefaultConcurrency
	}
	if workers < 1 {
		workers = DefaultServeWorkers
	}
	var corpus []string
	for _, q := range spider.Queries() {
		corpus = append(corpus, q.SQL)
	}

	// Serial arm: one runtime, one query at a time.
	serialRT, err := r.Runtime(r.Model(p), concurrencyOptions(workers))
	if err != nil {
		return nil, err
	}
	serial := make([]queryOutcome, len(corpus))
	for i, sql := range corpus {
		serial[i] = runQuery(ctx, serialRT, sql)
		if serial[i].err != nil {
			return nil, fmt.Errorf("bench: serial arm: %w", serial[i].err)
		}
	}

	// Concurrent arm: a fresh but identically configured runtime, K
	// queries at a time.
	concRT, err := r.Runtime(r.Model(p), concurrencyOptions(workers))
	if err != nil {
		return nil, err
	}
	concurrent := make([]queryOutcome, len(corpus))
	var concTotal time.Duration
	for lo := 0; lo < len(corpus); lo += k {
		hi := lo + k
		if hi > len(corpus) {
			hi = len(corpus)
		}
		var wg sync.WaitGroup
		for i := lo; i < hi; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				concurrent[i] = runQuery(ctx, concRT, corpus[i])
			}(i)
		}
		wg.Wait()
		var batch []*llm.TenantStats
		for i := lo; i < hi; i++ {
			if concurrent[i].err != nil {
				return nil, fmt.Errorf("bench: concurrent arm: %w", concurrent[i].err)
			}
			batch = append(batch, concurrent[i].sched)
		}
		concTotal += llm.AggregateMakespan(workers, batch)
	}

	rep := &ConcurrencyReport{
		Model:            p.ID,
		Workers:          workers,
		K:                k,
		ResultsIdentical: true,
		PromptsIdentical: true,
	}
	var serialTotal time.Duration
	var serialPrompts, concPrompts int
	for i := range corpus {
		serialTotal += serial[i].makespan
		serialPrompts += serial[i].prompts
		concPrompts += concurrent[i].prompts
		if serial[i].rel != concurrent[i].rel {
			rep.ResultsIdentical = false
		}
		if serial[i].prompts != concurrent[i].prompts {
			rep.PromptsIdentical = false
		}
	}
	rep.Serial = ConcurrencyArm{
		Config:              "serial",
		Queries:             len(corpus),
		TotalPrompts:        serialPrompts,
		AggregateMakespanMS: float64(serialTotal) / float64(time.Millisecond),
	}
	rep.Concurrent = ConcurrencyArm{
		Config:              fmt.Sprintf("concurrent-k%d", k),
		Queries:             len(corpus),
		TotalPrompts:        concPrompts,
		AggregateMakespanMS: float64(concTotal) / float64(time.Millisecond),
	}
	if concTotal > 0 {
		rep.SpeedupX = float64(serialTotal) / float64(concTotal)
	}
	return rep, nil
}

// CheckAcceptance enforces the concurrency acceptance criteria: K
// concurrent corpus queries must finish in aggregate simulated makespan
// at least 2x better than K-times-serial (i.e. strictly less than K× a
// single query's latency, with margin), with bit-identical relations
// and identical prompt counts per query.
func (rep *ConcurrencyReport) CheckAcceptance() error {
	var errs []error
	if !rep.ResultsIdentical {
		errs = append(errs, errors.New("concurrent execution changed a result relation"))
	}
	if !rep.PromptsIdentical {
		errs = append(errs, errors.New("concurrent execution changed a per-query prompt count"))
	}
	if rep.SpeedupX < 2 {
		errs = append(errs, fmt.Errorf("aggregate speedup %.2fx under shared scheduler, want >= 2x at k=%d", rep.SpeedupX, rep.K))
	}
	return errors.Join(errs...)
}

// WriteConcurrencyArtifact writes the report as indented JSON — the
// committed BENCH_concurrency.json tracking the serving trajectory.
func WriteConcurrencyArtifact(path string, rep *ConcurrencyReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
