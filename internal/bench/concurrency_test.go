package bench

import (
	"context"
	"testing"

	"repro/internal/simllm"
)

// TestConcurrencyComparison is the acceptance gate of the shared-runtime
// concurrency model: K=4 corpus queries sharing one scheduler must
// finish in aggregate simulated makespan at least 2x better than running
// one at a time, with every relation and per-query prompt count
// bit-identical between the two isolation modes. Runs under -race in CI,
// so it double-checks the runtime's concurrency safety too.
func TestConcurrencyComparison(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.ConcurrencyComparison(context.Background(), simllm.ChatGPT, DefaultConcurrency, DefaultServeWorkers)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckAcceptance(); err != nil {
		t.Fatal(err)
	}
	if rep.Serial.Queries != rep.Concurrent.Queries || rep.Serial.Queries == 0 {
		t.Errorf("arm sizes diverged: serial %d vs concurrent %d", rep.Serial.Queries, rep.Concurrent.Queries)
	}
	if rep.Serial.TotalPrompts != rep.Concurrent.TotalPrompts {
		t.Errorf("total prompts diverged: serial %d vs concurrent %d", rep.Serial.TotalPrompts, rep.Concurrent.TotalPrompts)
	}
	t.Logf("corpus of %d: serial %.1f s -> concurrent-k%d %.1f s (%.2fx, W=%d)",
		rep.Serial.Queries, rep.Serial.AggregateMakespanMS/1000,
		rep.K, rep.Concurrent.AggregateMakespanMS/1000, rep.SpeedupX, rep.Workers)
}

// TestConcurrencyDeterministic pins the artifact's reproducibility: two
// fresh comparisons must agree byte-for-byte on the aggregates CI diffs.
func TestConcurrencyDeterministic(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.ConcurrencyComparison(context.Background(), simllm.ChatGPT, DefaultConcurrency, DefaultServeWorkers)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ConcurrencyComparison(context.Background(), simllm.ChatGPT, DefaultConcurrency, DefaultServeWorkers)
	if err != nil {
		t.Fatal(err)
	}
	if a.Serial.AggregateMakespanMS != b.Serial.AggregateMakespanMS ||
		a.Concurrent.AggregateMakespanMS != b.Concurrent.AggregateMakespanMS ||
		a.Serial.TotalPrompts != b.Serial.TotalPrompts {
		t.Errorf("comparison not deterministic:\nfirst:  %+v / %+v\nsecond: %+v / %+v",
			a.Serial, a.Concurrent, b.Serial, b.Concurrent)
	}
}
