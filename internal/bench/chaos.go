package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/faultllm"
	"repro/internal/llm"
	"repro/internal/simllm"
	"repro/internal/spider"
)

// Chaos fault profiles. The rates are per (prompt, attempt) decisions —
// pure hashes of the seeded injector, never of wall-clock or goroutine
// interleaving — so every arm of the differential is reproducible and CI
// can diff the committed artifact byte-for-byte.
const (
	// ChaosTransientRate injects retryable backend errors on ~12% of
	// first and second attempts.
	ChaosTransientRate = 0.12
	// ChaosTimeoutRate injects per-attempt deadline expiries on ~5%.
	ChaosTimeoutRate = 0.05
	// ChaosMalformedRate brands ~15% of completions with the malformed
	// marker the transport's validator must reject before any cache can
	// store them.
	ChaosMalformedRate = 0.15
	// ChaosBreakerThreshold is the outage scenario's breaker setting:
	// small enough that a short total outage trips it.
	ChaosBreakerThreshold = 3
)

// ChaosArm is one fault profile run over the whole corpus, twice (a cold
// pass and a cache-hot pass), through the resilient transport.
type ChaosArm struct {
	Config  string           `json:"config"`
	Profile faultllm.Profile `json:"profile"`
	Queries int              `json:"queries"`
	// FailedQueries counts corpus queries that returned an error. With
	// retries on, every transient profile must heal to zero.
	FailedQueries int `json:"failed_queries"`
	// ColdPrompts / HotPrompts count model calls recorded per pass
	// (retries are not prompts: the Recorder sees one call per success).
	ColdPrompts int `json:"cold_prompts"`
	HotPrompts  int `json:"hot_prompts"`
	// ColdMakespanMS sums per-query simulated makespans of the cold pass.
	ColdMakespanMS float64 `json:"cold_makespan_ms"`
	// Retries / Faults are the transport's recovery work — the only
	// place fault handling is allowed to show up.
	Retries int64 `json:"retries"`
	Faults  int64 `json:"faults"`
	// Injected* report what the chaos injector actually dealt.
	InjectedTransient int64 `json:"injected_transient"`
	InjectedTimeouts  int64 `json:"injected_timeouts"`
	InjectedMalformed int64 `json:"injected_malformed"`
	// The differential against the fault-free baseline: relations
	// bit-identical on both passes, recorded prompt counts and simulated
	// makespan exact per query.
	ResultsIdentical  bool `json:"results_identical"`
	HotIdentical      bool `json:"hot_identical"`
	PromptsIdentical  bool `json:"prompts_identical"`
	MakespanIdentical bool `json:"makespan_identical"`
}

// NoRetryControl is the availability-loss control: the same transient
// profile with retries disabled. Failure counts are deterministic; the
// queries that do survive must still match the baseline bit-for-bit.
type NoRetryControl struct {
	Config        string `json:"config"`
	Queries       int    `json:"queries"`
	FailedQueries int    `json:"failed_queries"`
	// FailuresClassified reports that every failure surfaced as a
	// classified transport error (transient or deadline), never as a
	// bare or cancellation-shaped error.
	FailuresClassified bool `json:"failures_classified"`
	// SurvivorsIdentical reports that the queries that did succeed
	// produced relations bit-identical to the fault-free baseline.
	SurvivorsIdentical bool `json:"survivors_identical"`
}

// OutageScenario is the breaker lifecycle record: a total endpoint
// outage trips the breaker, calls shed fast with classified errors while
// cached results stay servable, and after the cooldown a single
// half-open probe heals the endpoint with no stale or partial cache
// entries left behind. Every field is a deterministic boolean or count.
type OutageScenario struct {
	BreakerThreshold   int   `json:"breaker_threshold"`
	FailedDuringOutage int   `json:"failed_during_outage"`
	FailuresClassified bool  `json:"failures_classified"`
	BreakerOpened      bool  `json:"breaker_opened"`
	BreakerOpens       int64 `json:"breaker_opens"`
	// FastFailed: at least one call was shed without touching the
	// backend while the breaker was open.
	FastFailed bool `json:"fast_failed"`
	// ShedClassified: a query during the open window failed with a
	// breaker-open classified error (so serve layers can map it to 503).
	ShedClassified bool `json:"shed_classified"`
	// CacheServedDuringOutage: a query whose relation was cached before
	// the outage kept answering (zero prompts) while the backend was down.
	CacheServedDuringOutage bool `json:"cache_served_during_outage"`
	HalfOpenAfterCooldown   bool `json:"half_open_after_cooldown"`
	// ProbeHealed: one successful half-open probe closed the breaker.
	ProbeHealed    bool `json:"probe_healed"`
	PostRecoveryOK bool `json:"post_recovery_ok"`
	// PostRecoveryIdentical: queries run after recovery (including the
	// ones that failed mid-outage) match a fault-free control exactly —
	// failed queries left no stale or partial cache entries.
	PostRecoveryIdentical bool `json:"post_recovery_identical"`
}

// ChaosReport is the machine-readable chaos record (BENCH_chaos.json):
// the corpus under seeded fault profiles with and without the resilient
// transport's recovery, plus the breaker lifecycle under a total outage.
type ChaosReport struct {
	Model     string         `json:"model"`
	Seed      int64          `json:"seed"`
	Queries   int            `json:"queries"`
	Baseline  ChaosArm       `json:"baseline"`
	Transient ChaosArm       `json:"transient"`
	Malformed ChaosArm       `json:"malformed"`
	NoRetry   NoRetryControl `json:"no_retry"`
	Outage    OutageScenario `json:"outage"`
}

// chaosOptions pins the differential's engine configuration: stop-and-go
// serial batches and fixed heuristic plans, so the set and order of
// issued prompts is a pure function of the query text, with the prompt
// and result caches optionally on (the retry arms run them on to prove
// faults cannot poison either tier).
func chaosOptions(caches bool) core.Options {
	opts := PaperOptions()
	opts.Optimizer.CostBased = false
	opts.CacheEnabled = caches
	opts.ResultCacheEnabled = caches
	return opts
}

// instantSleep skips backoff wall-clock in the bench while still
// honoring cancellation — backoff durations stay deterministic, they are
// just not waited out.
func instantSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// chaosTransport builds the bench's transport stack: the seeded chaos
// injector under the resilient client, with the injector's validator
// installed, the breaker disabled (the lifecycle is measured separately
// in the outage scenario), and the retry budget effectively unlimited so
// the differential exercises retries alone (budget dynamics have their
// own unit tests).
func chaosTransport(model llm.Client, p faultllm.Profile, retries bool) (*faultllm.Injector, *llm.ResilientClient) {
	inj := faultllm.Wrap(model, p)
	cfg := llm.ResilientConfig{
		BreakerThreshold:   -1,
		RetryBudgetReserve: 1e6,
		Validate:           faultllm.Validator(),
		Sleep:              instantSleep,
	}
	if !retries {
		cfg.MaxRetries = -1
	}
	return inj, llm.NewResilient(inj, cfg)
}

// runChaosArm runs the corpus twice (cold, then cache-hot) through one
// fault profile with retries on, requiring every query to succeed.
func (r *Runner) runChaosArm(ctx context.Context, p simllm.Profile, config string, fp faultllm.Profile) (ChaosArm, [2][]queryOutcome, error) {
	var passes [2][]queryOutcome
	inj, rc := chaosTransport(r.Model(p), fp, true)
	rt, err := r.Runtime(rc, chaosOptions(true))
	if err != nil {
		return ChaosArm{}, passes, err
	}
	corpus := spider.Queries()
	arm := ChaosArm{Config: config, Profile: inj.Profile(), Queries: len(corpus)}
	for pass := 0; pass < 2; pass++ {
		outcomes := make([]queryOutcome, len(corpus))
		for i, q := range corpus {
			outcomes[i] = runQuery(ctx, rt, q.SQL)
			if outcomes[i].err != nil {
				arm.FailedQueries++
			}
			if pass == 0 {
				arm.ColdPrompts += outcomes[i].prompts
				arm.ColdMakespanMS += float64(outcomes[i].makespan) / float64(time.Millisecond)
			} else {
				arm.HotPrompts += outcomes[i].prompts
			}
		}
		passes[pass] = outcomes
	}
	res := rc.Counters()
	arm.Retries = res.Retries
	arm.Faults = res.Faults
	ic := inj.Counters()
	arm.InjectedTransient = ic.Transient
	arm.InjectedTimeouts = ic.Timeouts
	arm.InjectedMalformed = ic.Malformed
	return arm, passes, nil
}

// diffArm fills an arm's differential fields against the baseline passes.
func diffArm(arm *ChaosArm, baseline, got [2][]queryOutcome) {
	arm.ResultsIdentical = true
	arm.HotIdentical = true
	arm.PromptsIdentical = true
	arm.MakespanIdentical = true
	for i := range baseline[0] {
		if got[0][i].rel != baseline[0][i].rel {
			arm.ResultsIdentical = false
		}
		if got[1][i].rel != baseline[1][i].rel {
			arm.HotIdentical = false
		}
		if got[0][i].prompts != baseline[0][i].prompts || got[1][i].prompts != baseline[1][i].prompts {
			arm.PromptsIdentical = false
		}
		if got[0][i].makespan != baseline[0][i].makespan {
			arm.MakespanIdentical = false
		}
	}
}

// classifiedFailure reports whether err carries the transport's error
// taxonomy (any class but a caller cancellation).
func classifiedFailure(err error) bool {
	var le *llm.Error
	return errors.As(err, &le) && !llm.IsCancellation(err)
}

// runNoRetryControl runs the transient profile with retries disabled:
// the availability loss the resilient transport exists to prevent. The
// caches stay off — a failing query cancels its batch mid-flight, so
// which sibling completions land in a cache is scheduling-dependent and
// would make later prompt counts unstable.
func (r *Runner) runNoRetryControl(ctx context.Context, p simllm.Profile, fp faultllm.Profile, baseline []queryOutcome) (NoRetryControl, error) {
	_, rc := chaosTransport(r.Model(p), fp, false)
	rt, err := r.Runtime(rc, chaosOptions(false))
	if err != nil {
		return NoRetryControl{}, err
	}
	corpus := spider.Queries()
	ctl := NoRetryControl{
		Config:             "transient-no-retries",
		Queries:            len(corpus),
		FailuresClassified: true,
		SurvivorsIdentical: true,
	}
	for i, q := range corpus {
		out := runQuery(ctx, rt, q.SQL)
		if out.err != nil {
			ctl.FailedQueries++
			if !classifiedFailure(out.err) {
				ctl.FailuresClassified = false
			}
			continue
		}
		if out.rel != baseline[i].rel {
			ctl.SurvivorsIdentical = false
		}
	}
	return ctl, nil
}

// runOutageScenario walks the breaker lifecycle under a total endpoint
// outage on a fake clock: classified failures trip the breaker, open
// sheds fast while the result cache keeps pre-outage queries servable,
// the cooldown admits exactly one half-open probe, and recovery leaves
// no stale cache entries behind.
func (r *Runner) runOutageScenario(ctx context.Context, p simllm.Profile) (OutageScenario, error) {
	corpus := spider.Queries()
	// Fault-free control for the identity checks.
	control, err := r.Runtime(r.Model(p), chaosOptions(true))
	if err != nil {
		return OutageScenario{}, err
	}
	expect := make([]string, 6)
	for i := 0; i < 6; i++ {
		out := runQuery(ctx, control, corpus[i].SQL)
		if out.err != nil {
			return OutageScenario{}, fmt.Errorf("bench: outage control: %w", out.err)
		}
		expect[i] = out.rel
	}

	clock := time.Unix(0, 0)
	inj := faultllm.Wrap(r.Model(p), faultllm.Profile{Seed: r.Seed})
	rc := llm.NewResilient(inj, llm.ResilientConfig{
		MaxRetries:       -1, // fail fast: every failed call feeds the breaker
		BreakerThreshold: ChaosBreakerThreshold,
		Sleep:            instantSleep,
		Now:              func() time.Time { return clock },
	})
	rt, err := r.Runtime(rc, chaosOptions(true))
	if err != nil {
		return OutageScenario{}, err
	}
	sc := OutageScenario{BreakerThreshold: ChaosBreakerThreshold, FailuresClassified: true}

	// Healthy: warm the caches with query 0.
	if out := runQuery(ctx, rt, corpus[0].SQL); out.err != nil || out.rel != expect[0] {
		return sc, fmt.Errorf("bench: pre-outage query failed or diverged: %v", out.err)
	}

	// Total outage: fresh queries fail with classified errors until the
	// breaker opens (or, once open, shed with breaker-open errors).
	inj.SetOutage(true)
	for i := 1; i <= 3; i++ {
		out := runQuery(ctx, rt, corpus[i].SQL)
		if out.err == nil {
			return sc, fmt.Errorf("bench: query %d succeeded during a total outage", i)
		}
		sc.FailedDuringOutage++
		if !classifiedFailure(out.err) {
			sc.FailuresClassified = false
		}
	}
	sc.BreakerOpened = rc.State() == llm.BreakerOpen

	// The pre-outage query keeps answering from the result cache: zero
	// prompts, no call anywhere near the dead backend.
	if out := runQuery(ctx, rt, corpus[0].SQL); out.err == nil && out.prompts == 0 && out.rel == expect[0] {
		sc.CacheServedDuringOutage = true
	}

	// A fresh query while open is shed fast with a breaker-open error.
	if out := runQuery(ctx, rt, corpus[4].SQL); out.err != nil {
		var le *llm.Error
		sc.ShedClassified = errors.As(out.err, &le) && le.Class == llm.ClassBreakerOpen
	}
	sc.FastFailed = rc.Counters().BreakerFastFails >= 1

	// Backend heals; the cooldown elapses on the fake clock and exactly
	// one half-open probe closes the breaker.
	inj.SetOutage(false)
	clock = clock.Add(llm.DefaultBreakerCooldown + time.Second)
	sc.HalfOpenAfterCooldown = rc.State() == llm.BreakerHalfOpen
	if _, err := rc.Complete(ctx, "health probe: reply with any completion"); err == nil {
		sc.ProbeHealed = rc.State() == llm.BreakerClosed
	}

	// Recovery: the shed query and every query that failed mid-outage now
	// run clean and match the fault-free control — no stale or partial
	// cache entries survived the failures.
	sc.PostRecoveryOK = true
	sc.PostRecoveryIdentical = true
	for _, i := range []int{4, 1, 2, 3, 0, 5} {
		out := runQuery(ctx, rt, corpus[i].SQL)
		if out.err != nil {
			sc.PostRecoveryOK = false
			continue
		}
		if out.rel != expect[i] {
			sc.PostRecoveryIdentical = false
		}
	}
	sc.BreakerOpens = rc.Counters().BreakerOpens
	return sc, nil
}

// ChaosComparison runs the seeded chaos differential: the corpus under a
// fault-free baseline, a transient-fault profile and a malformed-output
// profile (retries on — results, prompt counts and simulated makespan
// must be bit-identical to the baseline), the same transient profile
// with retries off (the availability loss), and the breaker lifecycle
// under a total outage. Every recorded number is deterministic, so the
// committed artifact is reproducible and CI can diff it.
func (r *Runner) ChaosComparison(ctx context.Context, p simllm.Profile) (*ChaosReport, error) {
	rep := &ChaosReport{Model: p.ID, Seed: r.Seed, Queries: len(spider.Queries())}

	baseline, basePasses, err := r.runChaosArm(ctx, p, "fault-free", faultllm.Profile{Seed: r.Seed})
	if err != nil {
		return nil, err
	}
	diffArm(&baseline, basePasses, basePasses)
	rep.Baseline = baseline

	transientProfile := faultllm.Profile{
		Seed:          r.Seed,
		TransientRate: ChaosTransientRate,
		TimeoutRate:   ChaosTimeoutRate,
	}
	transient, passes, err := r.runChaosArm(ctx, p, "transient-retries", transientProfile)
	if err != nil {
		return nil, err
	}
	diffArm(&transient, basePasses, passes)
	rep.Transient = transient

	malformed, passes, err := r.runChaosArm(ctx, p, "malformed-validated",
		faultllm.Profile{Seed: r.Seed, MalformedRate: ChaosMalformedRate})
	if err != nil {
		return nil, err
	}
	diffArm(&malformed, basePasses, passes)
	rep.Malformed = malformed

	if rep.NoRetry, err = r.runNoRetryControl(ctx, p, transientProfile, basePasses[0]); err != nil {
		return nil, err
	}
	if rep.Outage, err = r.runOutageScenario(ctx, p); err != nil {
		return nil, err
	}
	return rep, nil
}

// CheckAcceptance enforces the chaos acceptance criteria: with retries
// on, every fault profile heals to zero failed queries with relations,
// prompt counts and makespan bit-identical to fault-free; without
// retries the same faults lose queries (all classified); and the outage
// scenario walks the full breaker lifecycle with no cache poisoning.
func (rep *ChaosReport) CheckAcceptance() error {
	var errs []error
	check := func(ok bool, format string, args ...any) {
		if !ok {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}
	check(rep.Baseline.FailedQueries == 0, "baseline: %d queries failed", rep.Baseline.FailedQueries)
	check(rep.Baseline.Retries == 0 && rep.Baseline.Faults == 0,
		"baseline: transport reported recovery work (%d retries, %d faults) with no faults injected",
		rep.Baseline.Retries, rep.Baseline.Faults)
	for _, arm := range []*ChaosArm{&rep.Transient, &rep.Malformed} {
		check(arm.FailedQueries == 0, "%s: %d queries failed with retries on", arm.Config, arm.FailedQueries)
		check(arm.Faults > 0 && arm.Retries > 0, "%s: injector dealt no faults (faults=%d retries=%d) — profile inert", arm.Config, arm.Faults, arm.Retries)
		check(arm.ResultsIdentical, "%s: a cold-pass relation diverged from fault-free", arm.Config)
		check(arm.HotIdentical, "%s: a cache-hot relation diverged from fault-free (cache poisoned)", arm.Config)
		check(arm.PromptsIdentical, "%s: recorded prompt counts diverged from fault-free", arm.Config)
		check(arm.MakespanIdentical, "%s: simulated makespan diverged from fault-free", arm.Config)
	}
	check(rep.Malformed.InjectedMalformed > 0, "malformed arm injected no malformed completions")
	check(rep.NoRetry.FailedQueries > 0, "no-retry control lost no queries — transient profile inert")
	check(rep.NoRetry.FailuresClassified, "no-retry control: a failure escaped the error taxonomy")
	check(rep.NoRetry.SurvivorsIdentical, "no-retry control: a surviving query diverged from fault-free")
	o := rep.Outage
	check(o.FailedDuringOutage == 3 && o.FailuresClassified, "outage: failures %d classified=%v", o.FailedDuringOutage, o.FailuresClassified)
	check(o.BreakerOpened && o.BreakerOpens == 1, "outage: breaker opened=%v opens=%d, want one open", o.BreakerOpened, o.BreakerOpens)
	check(o.FastFailed && o.ShedClassified, "outage: open breaker did not shed classified fast-fails (fast=%v shed=%v)", o.FastFailed, o.ShedClassified)
	check(o.CacheServedDuringOutage, "outage: cached relation not served during the outage")
	check(o.HalfOpenAfterCooldown && o.ProbeHealed, "outage: breaker did not recover via half-open probe (half-open=%v healed=%v)", o.HalfOpenAfterCooldown, o.ProbeHealed)
	check(o.PostRecoveryOK && o.PostRecoveryIdentical, "outage: post-recovery queries failed or diverged (ok=%v identical=%v)", o.PostRecoveryOK, o.PostRecoveryIdentical)
	return errors.Join(errs...)
}

// WriteChaosArtifact writes the report as indented JSON — the committed
// BENCH_chaos.json tracking the fault-tolerance trajectory.
func WriteChaosArtifact(path string, rep *ChaosReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
