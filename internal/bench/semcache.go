package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/simllm"
)

// semCacheParent is one producer query of the semantic-cache corpus with
// the near-miss children its cached relation must answer.
type semCacheParent struct {
	table    string // the LLM table the pair family reads
	sql      string
	children []string
}

// semCacheCorpus is the fixed near-miss corpus: every child is a query
// the matching parent's plan subsumes — narrower projections, extra
// key-column predicates (the only predicate class a residual plan may
// evaluate locally), DISTINCT, ORDER BY, LIMIT/OFFSET and aggregates —
// but never a statement the cache has seen verbatim, so the exact tier
// cannot answer it. The families span filtered and unfiltered parents
// and a join producer.
var semCacheCorpus = []semCacheParent{
	{table: "country", sql: `SELECT name, continent, population FROM country`, children: []string{
		`SELECT name FROM country`,
		`SELECT name, continent FROM country LIMIT 5`,
		`SELECT name FROM country WHERE name > 'M'`,
		`SELECT DISTINCT continent FROM country`,
		`SELECT COUNT(*) FROM country`,
		`SELECT name FROM country ORDER BY population DESC LIMIT 3`,
	}},
	{table: "city", sql: `SELECT name, population FROM city WHERE population > 1000000`, children: []string{
		`SELECT name FROM city WHERE population > 1000000`,
		`SELECT name, population FROM city WHERE population > 1000000 ORDER BY population DESC LIMIT 3`,
		`SELECT COUNT(*) FROM city WHERE population > 1000000`,
	}},
	{table: "mountain", sql: `SELECT name, height FROM mountain`, children: []string{
		`SELECT name FROM mountain ORDER BY height DESC LIMIT 3`,
		`SELECT MAX(height) FROM mountain`,
		`SELECT name, height FROM mountain WHERE name != 'Olympus Mons' OFFSET 2`,
	}},
	{table: "singer", sql: `SELECT name, genre FROM singer WHERE genre = 'Pop'`, children: []string{
		`SELECT name FROM singer WHERE genre = 'Pop'`,
		`SELECT name FROM singer WHERE genre = 'Pop' ORDER BY name LIMIT 2`,
	}},
	{table: "stadium", sql: `SELECT s.name, s.capacity, c.name FROM stadium s, city c WHERE s.city = c.name`, children: []string{
		`SELECT s.name FROM stadium s, city c WHERE s.city = c.name`,
		`SELECT s.name, s.capacity FROM stadium s, city c WHERE s.city = c.name ORDER BY s.capacity DESC LIMIT 3`,
	}},
}

// SemCacheChild is one near-miss child's record.
type SemCacheChild struct {
	Parent string `json:"parent"`
	Child  string `json:"child"`
	// Prompts the child cost on first sight against the warm cache —
	// zero when subsumption answered it.
	Prompts  int  `json:"prompts"`
	Subsumed bool `json:"subsumed"`
}

// SemCacheReport is the machine-readable semantic-cache record
// (BENCH_semcache.json): cold producers, an exact-hot replay, a
// near-miss pass of never-seen children, and a per-table invalidation
// probe — with a cache-off control pinning every child bit-identical.
type SemCacheReport struct {
	Model    string `json:"model"`
	Parents  int    `json:"parents"`
	Children int    `json:"children"`
	// ColdPrompts is what populating the cache with every parent cost.
	ColdPrompts int `json:"cold_prompts"`
	// ExactHotPrompts replays every parent verbatim: must be 0.
	ExactHotPrompts int `json:"exact_hot_prompts"`
	// NearMissPrompts sums the children's first-sight prompt counts:
	// must be 0 — every child is answered by a residual plan.
	NearMissPrompts  int `json:"near_miss_prompts"`
	NearMissSubsumed int `json:"near_miss_subsumed"`
	// ChildrenIdentical: every cache-answered child relation is
	// bit-identical to direct execution on a cache-off control engine.
	ChildrenIdentical bool `json:"children_identical"`
	// Result-cache counters after the near-miss pass.
	ResultCacheHits         int `json:"result_cache_hits"`
	ResultCacheSubsumedHits int `json:"result_cache_subsumed_hits"`
	ResultCacheEntries      int `json:"result_cache_entries"`
	ResultCacheBytes        int `json:"result_cache_bytes"`
	// Invalidation probe (PrimeTableKeys on the first family's table):
	// that family's first child re-executes with prompts, every other
	// family's children still cost zero, and every relation is unchanged.
	InvalidationReexecuted bool `json:"invalidation_reexecuted"`
	InvalidationRetained   bool `json:"invalidation_retained"`
	InvalidationIdentical  bool `json:"invalidation_identical"`

	PerChild []SemCacheChild `json:"per_child"`
}

// SemanticCacheComparison measures the subsumption tier on the fixed
// near-miss corpus: parents execute cold (populating the cache), replay
// exactly hot, and then children the cache has never seen verbatim must
// each be answered by a residual plan over a cached relation for zero
// prompts — bit-identical to direct execution on a cache-off control.
// Finally a PrimeTableKeys bump on one table proves invalidation stays
// per-table. Prompt counts are a pure function of the corpus (prompt
// cache off, fixed plans), so the report is deterministic and CI diffs
// the committed artifact.
func (r *Runner) SemanticCacheComparison(ctx context.Context, p simllm.Profile) (*SemCacheReport, error) {
	rt, err := r.Runtime(r.Model(p), resultCacheOptions(true))
	if err != nil {
		return nil, err
	}
	control, err := r.Runtime(r.Model(p), resultCacheOptions(false))
	if err != nil {
		return nil, err
	}

	rep := &SemCacheReport{Model: p.ID, Parents: len(semCacheCorpus), ChildrenIdentical: true}

	// Cold pass: parents populate the cache.
	for _, fam := range semCacheCorpus {
		out := runQuery(ctx, rt, fam.sql)
		if out.err != nil {
			return nil, fmt.Errorf("bench: semcache cold parent: %w", out.err)
		}
		rep.ColdPrompts += out.prompts
	}
	// Exact-hot pass: the same statements verbatim.
	for _, fam := range semCacheCorpus {
		out := runQuery(ctx, rt, fam.sql)
		if out.err != nil {
			return nil, fmt.Errorf("bench: semcache hot parent: %w", out.err)
		}
		rep.ExactHotPrompts += out.prompts
	}
	// Near-miss pass: children on first sight, against the control.
	childRels := map[string]string{}
	for _, fam := range semCacheCorpus {
		for _, child := range fam.children {
			rep.Children++
			out := runQuery(ctx, rt, child)
			if out.err != nil {
				return nil, fmt.Errorf("bench: semcache child: %w", out.err)
			}
			direct := runQuery(ctx, control, child)
			if direct.err != nil {
				return nil, fmt.Errorf("bench: semcache control child: %w", direct.err)
			}
			if out.rel != direct.rel {
				rep.ChildrenIdentical = false
			}
			childRels[child] = out.rel
			rec := SemCacheChild{
				Parent:   fam.sql,
				Child:    child,
				Prompts:  out.prompts,
				Subsumed: out.cached == core.CacheSubsumed,
			}
			rep.NearMissPrompts += rec.Prompts
			if rec.Subsumed {
				rep.NearMissSubsumed++
			}
			rep.PerChild = append(rep.PerChild, rec)
		}
	}
	rcs := rt.ResultCacheStats()
	rep.ResultCacheHits = rcs.Hits
	rep.ResultCacheSubsumedHits = rcs.SubsumedHits
	rep.ResultCacheEntries = rcs.Entries
	rep.ResultCacheBytes = rcs.Bytes

	// Invalidation probe: bump the first family's table and replay all
	// children. The first bumped-family child must re-execute (its
	// producer is gone; LIMIT-free children may repopulate producers that
	// answer later siblings again), every other family stays free, and
	// no relation changes.
	bumped := semCacheCorpus[0].table
	rt.PrimeTableKeys(bumped, 1)
	rep.InvalidationRetained = true
	rep.InvalidationIdentical = true
	probedFirst := false
	for _, fam := range semCacheCorpus {
		for _, child := range fam.children {
			out := runQuery(ctx, rt, child)
			if out.err != nil {
				return nil, fmt.Errorf("bench: semcache invalidation probe: %w", out.err)
			}
			if fam.table == bumped && !probedFirst {
				probedFirst = true
				rep.InvalidationReexecuted = out.prompts > 0
			}
			if fam.table != bumped && out.prompts != 0 {
				rep.InvalidationRetained = false
			}
			if out.rel != childRels[child] {
				rep.InvalidationIdentical = false
			}
		}
	}
	return rep, nil
}

// CheckAcceptance enforces the semantic-cache acceptance criteria: the
// exact tier answers verbatim replays and the subsumption tier answers
// every near-miss child — all for zero prompts, all bit-identical to
// direct execution — and invalidation stays per-table.
func (rep *SemCacheReport) CheckAcceptance() error {
	var errs []error
	if rep.ExactHotPrompts != 0 {
		errs = append(errs, fmt.Errorf("verbatim replays cost %d prompts, want 0", rep.ExactHotPrompts))
	}
	if rep.NearMissPrompts != 0 {
		errs = append(errs, fmt.Errorf("near-miss children cost %d prompts, want 0", rep.NearMissPrompts))
	}
	if rep.NearMissSubsumed != rep.Children {
		errs = append(errs, fmt.Errorf("%d/%d children answered by subsumption, want all", rep.NearMissSubsumed, rep.Children))
	}
	if !rep.ChildrenIdentical {
		errs = append(errs, errors.New("a cache-answered child diverged from direct execution"))
	}
	if rep.ResultCacheSubsumedHits < rep.Children {
		errs = append(errs, fmt.Errorf("subsumed hits = %d, want >= %d", rep.ResultCacheSubsumedHits, rep.Children))
	}
	if !rep.InvalidationReexecuted {
		errs = append(errs, errors.New("the bumped table's first child was still served across its epoch bump"))
	}
	if !rep.InvalidationRetained {
		errs = append(errs, errors.New("bumping one table invalidated entries over unrelated tables"))
	}
	if !rep.InvalidationIdentical {
		errs = append(errs, errors.New("re-execution after the epoch bump changed a relation"))
	}
	return errors.Join(errs...)
}

// WriteSemCacheArtifact writes the report as indented JSON — the
// committed BENCH_semcache.json tracking the subsumption tier.
func WriteSemCacheArtifact(path string, rep *SemCacheReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
