package bench

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/simllm"
)

var update = flag.Bool("update", false, "rewrite the golden plan files under testdata/plans")

// goldenPlanCases are the representative queries whose EXPLAIN output is
// snapshotted: every optimizer rewrite or cost-model change shows up as
// a reviewable diff under testdata/plans.
var goldenPlanCases = []struct {
	name      string
	sql       string
	costBased bool
	pushdown  bool
}{
	{name: "projection", sql: `SELECT name, capital FROM country`},
	{name: "selection-llm-filter", sql: `SELECT name FROM city WHERE population > 5000000`},
	{name: "selection-equality", sql: `SELECT name FROM country WHERE continent = 'Europe'`},
	{name: "selection-complex-pred", sql: `SELECT name FROM city WHERE population + 1 > 1000000`},
	{name: "aggregate-count", sql: `SELECT COUNT(*) FROM country`},
	{name: "aggregate-group-by", sql: `SELECT continent, COUNT(*) FROM country GROUP BY continent`},
	{name: "figure3-join", sql: `SELECT c.name, p.name FROM city c, mayor p WHERE c.mayor = p.name AND c.population > 1000000 AND p.age < 40`},
	{name: "hybrid-join", sql: `SELECT co.name, e.salary FROM LLM.country co, DB.employees e WHERE co.code = e.countryCode`},
	{name: "order-limit", sql: `SELECT name FROM mountain ORDER BY height DESC LIMIT 3`},
	{name: "distinct", sql: `SELECT DISTINCT country FROM city`},
	{name: "pushdown-merged", sql: `SELECT name FROM city WHERE population > 1000000`, pushdown: true},
	{name: "pushdown-key-pred-stays", sql: `SELECT population FROM city WHERE name = 'Tokyo'`, pushdown: true},
	{name: "costbased-proj-overlap", sql: `SELECT name, population, elevation FROM city WHERE population > 1000000 AND elevation > 500`, costBased: true},
	{name: "costbased-filter-order", sql: `SELECT name FROM country WHERE population > 10000000 AND continent = 'Europe'`, costBased: true},
	{name: "costbased-join", sql: `SELECT c.name, c.population, p.age FROM city c, mayor p WHERE c.mayor = p.name AND c.population > 1000000 AND p.age < 40`, costBased: true},
	{name: "costbased-explain-analyze-shape", sql: `SELECT name, gdp FROM country WHERE gdp > 500 AND continent = 'Europe'`, costBased: true},
}

// TestGoldenPlans snapshots EXPLAIN output (plans plus cost estimates
// against default statistics — no execution, so the text is a pure
// function of the optimizer and cost model). Refresh with:
//
//	go test ./internal/bench -run TestGoldenPlans -update
func TestGoldenPlans(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	engineFor := func(costBased, pushdown bool) (*core.Engine, error) {
		opts := PaperOptions()
		opts.Optimizer.CostBased = costBased
		opts.Optimizer.PromptPushdown = pushdown
		return r.Engine(r.Model(simllm.ChatGPT), opts)
	}

	for _, tc := range goldenPlanCases {
		t.Run(tc.name, func(t *testing.T) {
			engine, err := engineFor(tc.costBased, tc.pushdown)
			if err != nil {
				t.Fatal(err)
			}
			rel, _, err := engine.Query(ctx, "EXPLAIN "+tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			b.WriteString("-- " + tc.sql + "\n")
			for _, row := range rel.Rows {
				b.WriteString(row[0].String())
				b.WriteByte('\n')
			}
			got := b.String()

			path := filepath.Join("testdata", "plans", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan drifted from %s:\n got:\n%s\nwant:\n%s", path, got, want)
			}
		})
	}
}

// goldenRoutedCases snapshot EXPLAIN output under the multi-backend
// registry: each LLM operator's plan node carries the backend its
// prompts resolve to (route=...), and the plan summary prices prompts
// through the per-backend cost weights. The override case re-routes a
// role at session scope, on top of the same runtime.
var goldenRoutedCases = []struct {
	name string
	sql  string
	// overrides are session-level role->backend route overrides.
	overrides map[string]string
}{
	{name: "routed-selection", sql: `SELECT name FROM city WHERE population > 5000000`},
	{name: "routed-projection", sql: `SELECT name, capital FROM country`},
	{name: "routed-join", sql: `SELECT c.name, p.name FROM city c, mayor p WHERE c.mayor = p.name AND c.population > 1000000 AND p.age < 40`},
	{name: "routed-session-override", sql: `SELECT name FROM city WHERE population > 5000000`,
		overrides: map[string]string{"fetch": "cheap", "filter": "strong"}},
}

// TestGoldenRoutedPlans snapshots cost-based EXPLAIN output for routed
// queries on a cheap/strong registry (keyscan and filter routed to the
// cheap backend, strong the default): route annotations and weighted
// cost estimates are a pure function of the registry declaration, the
// routes and the statistics. Refresh with:
//
//	go test ./internal/bench -run TestGoldenRoutedPlans -update
func TestGoldenRoutedPlans(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	opts := PaperOptions()
	opts.Optimizer.CostBased = true
	rt, err := core.NewRuntimeWithBackends(r.routedDefs(simllm.ChatGPT, nil), "strong", routingRoutes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	r.attach(rt)

	for _, tc := range goldenRoutedCases {
		t.Run(tc.name, func(t *testing.T) {
			sess := rt.NewSession()
			if len(tc.overrides) > 0 {
				o := sess.Options()
				o.Routes = tc.overrides
				sess.SetOptions(o)
			}
			rel, _, err := sess.Query(ctx, "EXPLAIN "+tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			b.WriteString("-- " + tc.sql + "\n")
			if len(tc.overrides) > 0 {
				keys := make([]string, 0, len(tc.overrides))
				for k := range tc.overrides {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					b.WriteString("-- override: " + k + "=" + tc.overrides[k] + "\n")
				}
			}
			for _, row := range rel.Rows {
				b.WriteString(row[0].String())
				b.WriteByte('\n')
			}
			got := b.String()
			if !strings.Contains(got, "route=") {
				t.Fatalf("EXPLAIN carries no route annotations:\n%s", got)
			}

			path := filepath.Join("testdata", "plans", tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan drifted from %s:\n got:\n%s\nwant:\n%s", path, got, want)
			}
		})
	}
}

// goldenResidualCases snapshot EXPLAIN output for queries the semantic
// result cache answers by subsumption: a parent query warms the cache,
// then the child's cost-based EXPLAIN must pick the residual plan over a
// CachedScan (zero prompts beats any direct plan).
var goldenResidualCases = []struct {
	name   string
	parent string
	child  string
}{
	{
		name:   "residual-projection",
		parent: `SELECT name, continent FROM country`,
		child:  `SELECT name FROM country`,
	},
	{
		name:   "residual-filter-limit",
		parent: `SELECT name, continent FROM country`,
		child:  `SELECT name FROM country WHERE name != 'Atlantis' LIMIT 3`,
	},
	{
		name:   "residual-sort-distinct",
		parent: `SELECT name, continent FROM country`,
		child:  `SELECT DISTINCT continent FROM country ORDER BY continent`,
	},
	{
		name:   "residual-aggregate",
		parent: `SELECT name, population FROM city`,
		child:  `SELECT COUNT(*) FROM city`,
	},
}

// TestGoldenResidualPlans snapshots the residual-plan EXPLAIN shape:
// after the parent executes, the child's EXPLAIN shows the residual tree
// rooted over a cached(...) scan with the subsumption choice annotated.
// The parent runs for real (its prompts warm the cache), but the plans
// themselves are deterministic. Refresh with:
//
//	go test ./internal/bench -run TestGoldenResidualPlans -update
func TestGoldenResidualPlans(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for _, tc := range goldenResidualCases {
		t.Run(tc.name, func(t *testing.T) {
			opts := PaperOptions()
			opts.Optimizer.CostBased = true
			opts.ResultCacheEnabled = true
			engine, err := r.Engine(r.Model(simllm.ChatGPT), opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := engine.Query(ctx, tc.parent); err != nil {
				t.Fatal(err)
			}
			rel, _, err := engine.Query(ctx, "EXPLAIN "+tc.child)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			b.WriteString("-- warm: " + tc.parent + "\n")
			b.WriteString("-- " + tc.child + "\n")
			for _, row := range rel.Rows {
				b.WriteString(row[0].String())
				b.WriteByte('\n')
			}
			got := b.String()
			if !strings.Contains(got, "residual over cached(") {
				t.Fatalf("EXPLAIN did not choose the residual plan:\n%s", got)
			}

			path := filepath.Join("testdata", "plans", tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan drifted from %s:\n got:\n%s\nwant:\n%s", path, got, want)
			}
		})
	}
}
