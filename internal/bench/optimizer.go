package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/simllm"
	"repro/internal/spider"
)

// CostBasedOptions is the paper configuration with cost-based plan
// selection switched on: stop-and-go execution and no cache (so reported
// prompts are model calls), but the optimizer enumerates candidate plans
// and picks the cheapest instead of applying the fixed heuristics.
func CostBasedOptions() core.Options {
	opts := PaperOptions()
	opts.Optimizer.CostBased = true
	return opts
}

// OptimizerQuery is one multi-predicate benchmark query where plan choice
// changes the prompt bill: the filtered attributes also appear in the
// projection, so the fixed heuristics pay a per-key boolean prompt AND a
// later fetch, while fetch-then-filter subsumes the filter for free.
type OptimizerQuery struct {
	Name string `json:"name"`
	SQL  string `json:"sql"`
}

// OptimizerQueries is the multi-predicate suite of the optimizer
// comparison (run after the corpus, so the cost-based arm plans with
// refined statistics).
var OptimizerQueries = []OptimizerQuery{
	{Name: "proj-overlap-city", SQL: `SELECT name, population, elevation FROM city WHERE population > 1000000 AND elevation > 500`},
	{Name: "proj-overlap-country", SQL: `SELECT name, gdp FROM country WHERE gdp > 500 AND continent = 'Europe'`},
	{Name: "join-multi-predicate", SQL: `SELECT c.name, c.population, p.age FROM city c, mayor p WHERE c.mayor = p.name AND c.population > 1000000 AND p.age < 40`},
}

// OptimizerArm aggregates one optimizer configuration over the corpus.
type OptimizerArm struct {
	Config          string  `json:"config"` // "fixed-heuristics" or "cost-based"
	Queries         int     `json:"queries"`
	PromptsPerQuery float64 `json:"prompts_per_query"`
	CellMatch       float64 `json:"cell_match_pct"`
}

// OptimizerQueryResult compares both arms on one multi-predicate query.
type OptimizerQueryResult struct {
	Name             string  `json:"name"`
	SQL              string  `json:"sql"`
	FixedPrompts     int     `json:"fixed_prompts"`
	CostBasedPrompts int     `json:"costbased_prompts"`
	SavingsPercent   float64 `json:"savings_pct"`
}

// EstimateAccuracy summarizes EXPLAIN's estimated-vs-actual prompt
// counts over the corpus (ratio = max(est,actual)/min(est,actual), per
// query, after one adaptation pass).
type EstimateAccuracy struct {
	Queries   int     `json:"queries"`
	MeanRatio float64 `json:"mean_ratio"`
	MaxRatio  float64 `json:"max_ratio"`
}

// OptimizerReport is the machine-readable plan-selection record
// (BENCH_optimizer.json): prompts/query under the fixed heuristics vs
// cost-based selection, per-query results on the multi-predicate suite,
// and the estimate accuracy of the cost model.
type OptimizerReport struct {
	Model string `json:"model"`
	// Corpus holds the fixed-heuristic arm first, cost-based second.
	Corpus         []OptimizerArm         `json:"corpus"`
	MultiPredicate []OptimizerQueryResult `json:"multi_predicate"`
	Estimates      EstimateAccuracy       `json:"estimate_accuracy"`
	// CorpusPromptsFixed/CostBased hold per-query prompt counts in
	// corpus order, so regressions ("cost-based must never issue more
	// prompts") are reviewable query by query.
	CorpusPromptsFixed     []int `json:"corpus_prompts_fixed"`
	CorpusPromptsCostBased []int `json:"corpus_prompts_costbased"`
}

// optimizerArm runs the corpus on one engine, returning the aggregate
// row and the per-query prompt counts.
func (r *Runner) optimizerArm(ctx context.Context, p simllm.Profile, opts core.Options, label string) (OptimizerArm, []int, *core.Engine, error) {
	engine, err := r.Engine(r.Model(p), opts)
	if err != nil {
		return OptimizerArm{}, nil, nil, err
	}
	cellOpts := r.CellOptions()
	var cells []float64
	var perQuery []int
	total := 0
	for _, q := range spider.Queries() {
		truth, err := r.GroundTruth(ctx, q.SQL)
		if err != nil {
			return OptimizerArm{}, nil, nil, fmt.Errorf("bench: ground truth for query %d: %w", q.ID, err)
		}
		got, rep, err := engine.Query(ctx, q.SQL)
		if err != nil {
			return OptimizerArm{}, nil, nil, fmt.Errorf("bench: %s query %d: %w", label, q.ID, err)
		}
		cells = append(cells, eval.MatchContent(truth, got, cellOpts).Percent())
		perQuery = append(perQuery, rep.Stats.Prompts)
		total += rep.Stats.Prompts
	}
	n := len(spider.Queries())
	arm := OptimizerArm{Config: label, Queries: n, CellMatch: eval.Mean(cells)}
	if n > 0 {
		arm.PromptsPerQuery = float64(total) / float64(n)
	}
	return arm, perQuery, engine, nil
}

// OptimizerComparison measures cost-based plan selection against the
// fixed rewrite heuristics: the whole corpus per arm (one engine each,
// so the cost-based arm's statistics adapt query over query), then the
// multi-predicate suite on the warmed engines, then an estimate-accuracy
// pass re-running the corpus on the cost-based arm and comparing
// EXPLAIN's predicted prompt counts against the actuals. Deterministic
// under the paper configuration (no cache, stop-and-go, fixed order).
func (r *Runner) OptimizerComparison(ctx context.Context, p simllm.Profile) (*OptimizerReport, error) {
	fixedArm, fixedPrompts, fixedEngine, err := r.optimizerArm(ctx, p, PaperOptions(), "fixed-heuristics")
	if err != nil {
		return nil, err
	}
	costArm, costPrompts, costEngine, err := r.optimizerArm(ctx, p, CostBasedOptions(), "cost-based")
	if err != nil {
		return nil, err
	}

	rep := &OptimizerReport{
		Model:                  p.ID,
		Corpus:                 []OptimizerArm{fixedArm, costArm},
		CorpusPromptsFixed:     fixedPrompts,
		CorpusPromptsCostBased: costPrompts,
	}

	for _, q := range OptimizerQueries {
		_, fixedRep, err := fixedEngine.Query(ctx, q.SQL)
		if err != nil {
			return nil, fmt.Errorf("bench: fixed %s: %w", q.Name, err)
		}
		_, costRep, err := costEngine.Query(ctx, q.SQL)
		if err != nil {
			return nil, fmt.Errorf("bench: cost-based %s: %w", q.Name, err)
		}
		res := OptimizerQueryResult{
			Name:             q.Name,
			SQL:              q.SQL,
			FixedPrompts:     fixedRep.Stats.Prompts,
			CostBasedPrompts: costRep.Stats.Prompts,
		}
		if res.FixedPrompts > 0 {
			res.SavingsPercent = 100 * float64(res.FixedPrompts-res.CostBasedPrompts) / float64(res.FixedPrompts)
		}
		rep.MultiPredicate = append(rep.MultiPredicate, res)
	}

	// Estimate accuracy: with one adaptation pass behind it, EXPLAIN's
	// predicted prompt count must track what execution actually issues.
	var sum float64
	for _, q := range spider.Queries() {
		_, qRep, err := costEngine.Query(ctx, q.SQL)
		if err != nil {
			return nil, fmt.Errorf("bench: estimate pass query %d: %w", q.ID, err)
		}
		est := 0.0
		if qRep.Estimate != nil {
			est = qRep.Estimate.Prompts
		}
		ratio := estRatio(est, float64(qRep.Stats.Prompts))
		sum += ratio
		if ratio > rep.Estimates.MaxRatio {
			rep.Estimates.MaxRatio = ratio
		}
		rep.Estimates.Queries++
	}
	if rep.Estimates.Queries > 0 {
		rep.Estimates.MeanRatio = sum / float64(rep.Estimates.Queries)
	}
	return rep, nil
}

// estRatio is the symmetric estimate error: max(est,actual)/min(est,actual),
// treating prompt-free plans as perfectly estimated. A zero-vs-nonzero
// mismatch is an unboundedly wrong estimate — the sentinel sits far
// above the 2x acceptance gate so it can never slip through.
func estRatio(est, actual float64) float64 {
	if est <= 0 && actual <= 0 {
		return 1
	}
	if est <= 0 || actual <= 0 {
		return 1000
	}
	if est > actual {
		return est / actual
	}
	return actual / est
}

// CheckAcceptance validates the optimizer acceptance criteria against
// this report, returning every violation. It is the single source of
// truth shared by TestOptimizerComparison and the BENCH_optimizer
// benchmark gate:
//
//   - on the corpus, the cost-based plan never issues more prompts than
//     the fixed-heuristic plan (strict, per query);
//   - at least one multi-predicate query saves ≥10% prompts, and none
//     regresses beyond noise (a per-key boolean filter and a
//     fetch-then-compare answer the same predicate through different
//     noisy channels, so surviving row sets — and the prompts paid
//     downstream — may drift by a handful of rows);
//   - EXPLAIN's estimated prompt counts stay within 2x of actuals.
func (rep *OptimizerReport) CheckAcceptance() error {
	var errs []error
	if len(rep.CorpusPromptsFixed) != len(rep.CorpusPromptsCostBased) {
		return fmt.Errorf("bench: arm lengths differ: %d vs %d", len(rep.CorpusPromptsFixed), len(rep.CorpusPromptsCostBased))
	}
	for i := range rep.CorpusPromptsFixed {
		if rep.CorpusPromptsCostBased[i] > rep.CorpusPromptsFixed[i] {
			errs = append(errs, fmt.Errorf("corpus query %d: cost-based issued %d prompts, fixed %d — cost-based must never be worse",
				i, rep.CorpusPromptsCostBased[i], rep.CorpusPromptsFixed[i]))
		}
	}
	best := 0.0
	for _, q := range rep.MultiPredicate {
		if q.CostBasedPrompts > q.FixedPrompts+3 {
			errs = append(errs, fmt.Errorf("%s: cost-based issued %d prompts, fixed %d", q.Name, q.CostBasedPrompts, q.FixedPrompts))
		}
		if q.SavingsPercent > best {
			best = q.SavingsPercent
		}
	}
	if best < 10 {
		errs = append(errs, fmt.Errorf("no multi-predicate query saved ≥10%% prompts (best %.1f%%)", best))
	}
	if rep.Estimates.MaxRatio > 2 {
		errs = append(errs, fmt.Errorf("estimated prompts drift beyond 2x of actuals (max ratio %.2f)", rep.Estimates.MaxRatio))
	}
	return errors.Join(errs...)
}

// WriteOptimizerArtifact writes the report as indented JSON — the
// committed BENCH_optimizer.json tracking the plan-selection trajectory.
func WriteOptimizerArtifact(path string, rep *OptimizerReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
