package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/simllm"
	"repro/internal/spider"
)

// PipelineQuery is the multi-operator benchmark query of the pipelined
// executor: two LLM key scans, an LLM filter and an attribute fetch per
// side, a hash join on top — the paper's Figure 3 q'. With a verifier
// configured it exercises every overlap the scheduler provides
// (scan→fetch→filter chains per side, verify concurrent with fetch, the
// two sides independent).
const PipelineQuery = `SELECT c.name, p.name FROM city c, mayor p WHERE c.mayor = p.name AND c.population > 1000000 AND p.age < 40`

// PipelineConfig aggregates one execution mode over a query set.
type PipelineConfig struct {
	Config            string  `json:"config"` // "stop-and-go" or "pipelined"
	Queries           int     `json:"queries"`
	PromptsPerQuery   float64 `json:"prompts_per_query"`
	AvgSimLatencyMS   float64 `json:"avg_simulated_latency_ms"`
	TotalSimLatencyMS float64 `json:"total_simulated_latency_ms"`
}

// PipelineBenchmark compares the two modes on one query set.
type PipelineBenchmark struct {
	Name string `json:"name"`
	SQL  string `json:"sql,omitempty"` // single-query benchmarks
	// Configs holds stop-and-go first, pipelined second.
	Configs []PipelineConfig `json:"configs"`
	// Speedup is stop-and-go latency over pipelined latency.
	Speedup float64 `json:"speedup"`
	// ResultsIdentical reports whether every query returned the same
	// rendered relation under both modes.
	ResultsIdentical bool `json:"results_identical"`
}

// PipelineReport is the machine-readable pipelining record
// (BENCH_pipeline.json): prompts/query and simulated latency per
// configuration, for the multi-operator benchmark query and the corpus.
type PipelineReport struct {
	Model      string              `json:"model"`
	Verifier   string              `json:"verifier"`
	Workers    int                 `json:"workers"`
	Benchmarks []PipelineBenchmark `json:"benchmarks"`
}

// pipelineArm runs one query set in one execution mode on a fresh engine
// (cache off — both arms pay for every prompt) and keeps the result
// relations for the equivalence check.
func (r *Runner) pipelineArm(ctx context.Context, p simllm.Profile, verifier simllm.Profile, queries []string, pipelined bool) (PipelineConfig, []*schema.Relation, error) {
	opts := PaperOptions()
	opts.Pipelined = pipelined
	opts.Verifier = r.Model(verifier)
	engine, err := r.Engine(r.Model(p), opts)
	if err != nil {
		return PipelineConfig{}, nil, err
	}
	name := "stop-and-go"
	if pipelined {
		name = "pipelined"
	}
	var rels []*schema.Relation
	prompts := 0
	var latency time.Duration
	for i, sql := range queries {
		rel, rep, err := engine.Query(ctx, sql)
		if err != nil {
			return PipelineConfig{}, nil, fmt.Errorf("bench: %s query %d: %w", name, i, err)
		}
		rels = append(rels, rel)
		prompts += rep.Stats.Prompts
		latency += rep.Stats.SimulatedLatency
	}
	n := len(queries)
	cfg := PipelineConfig{
		Config:            name,
		Queries:           n,
		TotalSimLatencyMS: float64(latency) / float64(time.Millisecond),
	}
	if n > 0 {
		cfg.PromptsPerQuery = float64(prompts) / float64(n)
		cfg.AvgSimLatencyMS = cfg.TotalSimLatencyMS / float64(n)
	}
	return cfg, rels, nil
}

// pipelineBenchmark compares both modes on one query set.
func (r *Runner) pipelineBenchmark(ctx context.Context, p simllm.Profile, verifier simllm.Profile, name string, queries []string) (PipelineBenchmark, error) {
	off, offRels, err := r.pipelineArm(ctx, p, verifier, queries, false)
	if err != nil {
		return PipelineBenchmark{}, err
	}
	on, onRels, err := r.pipelineArm(ctx, p, verifier, queries, true)
	if err != nil {
		return PipelineBenchmark{}, err
	}
	bm := PipelineBenchmark{Name: name, Configs: []PipelineConfig{off, on}, ResultsIdentical: true}
	if len(queries) == 1 {
		bm.SQL = queries[0]
	}
	for i := range offRels {
		if offRels[i].String() != onRels[i].String() {
			bm.ResultsIdentical = false
			break
		}
	}
	if on.TotalSimLatencyMS > 0 {
		bm.Speedup = off.TotalSimLatencyMS / on.TotalSimLatencyMS
	}
	return bm, nil
}

// PipelineComparison measures the pipelined streaming executor against
// stop-and-go execution: the multi-operator benchmark query
// (scan→fetch→filter per join side, cross-model verify) and the whole
// corpus, asserting identical results and recording prompts/query plus
// simulated latency per configuration.
//
// Every query set here must stay LIMIT-free: under a LIMIT, pipelined
// early termination issues a timing-dependent number of prompts, which
// would make the committed BENCH_pipeline.json (diffed in CI)
// nondeterministic. Without LIMIT both modes issue exactly the same
// prompts and the report is a pure function of the seed.
func (r *Runner) PipelineComparison(ctx context.Context, p simllm.Profile, verifier simllm.Profile) (*PipelineReport, error) {
	rep := &PipelineReport{
		Model:    p.ID,
		Verifier: verifier.ID,
		Workers:  core.DefaultOptions().BatchWorkers,
	}

	multi, err := r.pipelineBenchmark(ctx, p, verifier, "multiop-scan-fetch-filter-verify", []string{PipelineQuery})
	if err != nil {
		return nil, err
	}
	rep.Benchmarks = append(rep.Benchmarks, multi)

	var corpus []string
	for _, q := range spider.Queries() {
		corpus = append(corpus, q.SQL)
	}
	full, err := r.pipelineBenchmark(ctx, p, verifier, "corpus", corpus)
	if err != nil {
		return nil, err
	}
	rep.Benchmarks = append(rep.Benchmarks, full)
	return rep, nil
}

// WritePipelineArtifact writes the report as indented JSON — the
// committed BENCH_pipeline.json tracking the perf trajectory.
func WritePipelineArtifact(path string, rep *PipelineReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
