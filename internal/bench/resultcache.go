package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/simllm"
	"repro/internal/spider"
	"repro/internal/sql/parser"
)

// DefaultResultCacheRepeats is the number of hot passes of the committed
// result-cache benchmark: how many times the corpus is replayed against
// the warm cache.
const DefaultResultCacheRepeats = 2

// ResultCacheQuery is one corpus query's record in the cached arm.
type ResultCacheQuery struct {
	ID int `json:"id"`
	// Limit marks LIMIT-bearing statements, which are never stored (a
	// truncated relation must never be served as complete) though they
	// may still be answered by subsumption from a cached superset.
	Limit bool `json:"limit"`
	// FirstPrompts is the cold-pass prompt count (model calls; the
	// prompt cache is off in both arms so every prompt is a call).
	FirstPrompts int `json:"first_prompts"`
	// FirstSubsumed marks cold-pass queries answered by a residual plan
	// over a relation an earlier corpus query populated — zero prompts
	// before the query was ever seen verbatim.
	FirstSubsumed bool `json:"first_subsumed,omitempty"`
	// RepeatPrompts sums prompts across the hot passes: 0 for every
	// query the cache answers (exactly or by subsumption).
	RepeatPrompts int `json:"repeat_prompts"`
}

// ResultCacheReport is the machine-readable result-cache record
// (BENCH_resultcache.json): the corpus replayed against one warm runtime
// with the semantic result cache on, versus a cache-off control. The
// prompt cache is off in both arms so prompt counts isolate what the
// result cache alone saves.
type ResultCacheReport struct {
	Model   string `json:"model"`
	Queries int    `json:"queries"`
	Repeats int    `json:"repeats"`
	// CacheableQueries counts LIMIT-free corpus queries (storable);
	// LimitQueries are never stored but may consume by subsumption.
	CacheableQueries int `json:"cacheable_queries"`
	LimitQueries     int `json:"limit_queries"`
	// First-pass prompt totals: populating the cache costs at most what
	// an uncached run costs — strictly less when subsumption answers a
	// later corpus query from an earlier one's relation.
	UncachedFirstPrompts int `json:"uncached_first_prompts"`
	CachedFirstPrompts   int `json:"cached_first_prompts"`
	// ColdSubsumed counts cold-pass queries answered by subsumption.
	ColdSubsumed int `json:"cold_subsumed"`
	// Hot-pass prompt totals: the headline number — repeated identical
	// traffic must cost zero prompts on every query class.
	RepeatPromptsCacheable int `json:"repeat_prompts_cacheable"`
	RepeatPromptsLimit     int `json:"repeat_prompts_limit"`
	// Result-cache counters after all passes (before the epoch bump).
	ResultCacheHits         int `json:"result_cache_hits"`
	ResultCacheSubsumedHits int `json:"result_cache_subsumed_hits"`
	ResultCacheMisses       int `json:"result_cache_misses"`
	ResultCacheEntries      int `json:"result_cache_entries"`
	// FirstRunIdentical: every cold-pass relation of the cached arm is
	// bit-identical to the uncached control's — including the
	// subsumption-answered ones.
	FirstRunIdentical bool `json:"first_run_identical"`
	// RepeatIdentical: every hot-pass relation is bit-identical to its
	// cold-pass relation.
	RepeatIdentical bool `json:"repeat_identical"`
	// Invalidation probe (PrimeTableKeys on one table): the first
	// LIMIT-free query reading the primed table re-executes with
	// prompts (its entries were invalidated), every LIMIT-free query
	// not reading it is still answered for zero prompts (per-table
	// epochs spare unrelated entries), and every relation stays
	// identical.
	InvalidationReexecuted bool `json:"invalidation_reexecuted"`
	InvalidationRetained   bool `json:"invalidation_retained"`
	InvalidationIdentical  bool `json:"invalidation_identical"`

	PerQuery []ResultCacheQuery `json:"per_query"`
}

// resultCacheOptions pins the benchmark configuration: pipelined,
// prompt cache off (so prompt counts isolate the result cache), fixed
// heuristic plans (no cost-based feedback, so every re-execution uses
// the same plan and the report is deterministic).
func resultCacheOptions(resultCache bool) core.Options {
	opts := PaperOptions()
	opts.Pipelined = true
	opts.Optimizer.CostBased = false
	opts.ResultCacheEnabled = resultCache
	return opts
}

// ResultCacheComparison measures the semantic result cache on repeated
// corpus traffic — the dashboard pattern: one cold pass populating the
// cache (with later corpus queries already free to subsume earlier
// results), `repeats` hot passes replaying the identical SQL, then a
// PrimeTableKeys bump on one table proving per-table invalidation. A
// cache-off control run pins first-pass results bit-identical. With the
// prompt cache off and fixed plans everything is a pure function of the
// corpus, so the report is deterministic and CI can diff it.
func (r *Runner) ResultCacheComparison(ctx context.Context, p simllm.Profile, repeats int) (*ResultCacheReport, error) {
	if repeats < 1 {
		repeats = DefaultResultCacheRepeats
	}
	type corpusQuery struct {
		id     int
		sql    string
		limit  bool
		primed bool // reads the table the invalidation probe primes
	}
	var corpus []corpusQuery
	for _, q := range spider.Queries() {
		sel, err := parser.ParseSelect(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("bench: parsing corpus query %d: %w", q.ID, err)
		}
		corpus = append(corpus, corpusQuery{id: q.ID, sql: q.SQL, limit: sel.Limit >= 0})
	}

	// Control arm: result cache off, one pass.
	controlRT, err := r.Runtime(r.Model(p), resultCacheOptions(false))
	if err != nil {
		return nil, err
	}
	control := make([]queryOutcome, len(corpus))
	for i, q := range corpus {
		control[i] = runQuery(ctx, controlRT, q.sql)
		if control[i].err != nil {
			return nil, fmt.Errorf("bench: control arm: %w", control[i].err)
		}
	}

	// Cached arm: fresh identically seeded runtime, cold pass + hot
	// passes + invalidation probe.
	rt, err := r.Runtime(r.Model(p), resultCacheOptions(true))
	if err != nil {
		return nil, err
	}
	// Resolve which queries read the to-be-primed table on a throwaway
	// runtime (planning only; nothing executes).
	planRT, err := r.Runtime(r.Model(p), resultCacheOptions(false))
	if err != nil {
		return nil, err
	}
	primedComp := logical.ComponentLLM(LLMTables[0])
	for i, q := range corpus {
		plan, err := planRT.NewSession().Plan(q.sql)
		if err != nil {
			return nil, fmt.Errorf("bench: planning corpus query %d: %w", q.id, err)
		}
		for _, comp := range logical.Components(plan) {
			if comp == primedComp {
				corpus[i].primed = true
			}
		}
	}

	rep := &ResultCacheReport{
		Model:             p.ID,
		Queries:           len(corpus),
		Repeats:           repeats,
		FirstRunIdentical: true,
		RepeatIdentical:   true,
	}
	cold := make([]queryOutcome, len(corpus))
	for i, q := range corpus {
		cold[i] = runQuery(ctx, rt, q.sql)
		if cold[i].err != nil {
			return nil, fmt.Errorf("bench: cached arm cold pass: %w", cold[i].err)
		}
		if cold[i].rel != control[i].rel {
			rep.FirstRunIdentical = false
		}
	}
	perQuery := make([]ResultCacheQuery, len(corpus))
	for i, q := range corpus {
		perQuery[i] = ResultCacheQuery{
			ID:            q.id,
			Limit:         q.limit,
			FirstPrompts:  cold[i].prompts,
			FirstSubsumed: cold[i].cached == core.CacheSubsumed,
		}
		if perQuery[i].FirstSubsumed {
			rep.ColdSubsumed++
		}
	}
	for pass := 0; pass < repeats; pass++ {
		for i, q := range corpus {
			hot := runQuery(ctx, rt, q.sql)
			if hot.err != nil {
				return nil, fmt.Errorf("bench: cached arm hot pass %d: %w", pass+1, hot.err)
			}
			perQuery[i].RepeatPrompts += hot.prompts
			if hot.rel != cold[i].rel {
				rep.RepeatIdentical = false
			}
		}
	}
	rcs := rt.ResultCacheStats()
	rep.ResultCacheHits = rcs.Hits
	rep.ResultCacheSubsumedHits = rcs.SubsumedHits
	rep.ResultCacheMisses = rcs.Misses
	rep.ResultCacheEntries = rcs.Entries

	// Invalidation probe: ANALYZE one table (fixed plans, so the primed
	// value cannot change any plan or result) and replay. Only that
	// table's entries are invalidated: the first LIMIT-free query
	// reading it must re-execute with prompts (later ones may already be
	// subsumed by relations this very pass repopulates), while every
	// LIMIT-free query not reading it is still answered for free.
	rt.PrimeTableKeys(LLMTables[0], 1)
	rep.InvalidationRetained = true
	rep.InvalidationIdentical = true
	probedFirst := false
	for i, q := range corpus {
		probe := runQuery(ctx, rt, q.sql)
		if probe.err != nil {
			return nil, fmt.Errorf("bench: invalidation probe: %w", probe.err)
		}
		if !q.limit {
			if q.primed && !probedFirst {
				probedFirst = true
				rep.InvalidationReexecuted = probe.prompts > 0
			}
			if !q.primed && probe.prompts != 0 {
				rep.InvalidationRetained = false
			}
		}
		if probe.rel != cold[i].rel {
			rep.InvalidationIdentical = false
		}
	}

	for i, q := range corpus {
		rep.UncachedFirstPrompts += control[i].prompts
		rep.CachedFirstPrompts += cold[i].prompts
		if q.limit {
			rep.LimitQueries++
			rep.RepeatPromptsLimit += perQuery[i].RepeatPrompts
		} else {
			rep.CacheableQueries++
			rep.RepeatPromptsCacheable += perQuery[i].RepeatPrompts
		}
	}
	rep.PerQuery = perQuery
	return rep, nil
}

// CheckAcceptance enforces the result-cache acceptance criteria:
// repeated identical corpus traffic costs zero prompts, relations stay
// bit-identical with the cache on vs off and across hot passes, the
// cold pass never costs more than the uncached control (subsumption can
// only save), and a PrimeTableKeys bump invalidates the primed table's
// entries while sparing every other table's — without changing a result.
func (rep *ResultCacheReport) CheckAcceptance() error {
	var errs []error
	if rep.RepeatPromptsCacheable != 0 {
		errs = append(errs, fmt.Errorf("repeated cacheable traffic cost %d prompts, want 0", rep.RepeatPromptsCacheable))
	}
	if !rep.FirstRunIdentical {
		errs = append(errs, errors.New("cache-on first pass diverged from the uncached control"))
	}
	if !rep.RepeatIdentical {
		errs = append(errs, errors.New("a hot-pass relation diverged from its cold-pass relation"))
	}
	if rep.CachedFirstPrompts > rep.UncachedFirstPrompts {
		errs = append(errs, fmt.Errorf("cold pass cost %d prompts with the cache on vs %d off", rep.CachedFirstPrompts, rep.UncachedFirstPrompts))
	}
	if want := rep.CacheableQueries * rep.Repeats; rep.ResultCacheHits < want {
		errs = append(errs, fmt.Errorf("result cache hits = %d, want >= %d (every hot-pass cacheable query)", rep.ResultCacheHits, want))
	}
	if !rep.InvalidationReexecuted {
		errs = append(errs, errors.New("the first primed-table query was still served from the cache across its epoch bump"))
	}
	if !rep.InvalidationRetained {
		errs = append(errs, errors.New("priming one table invalidated entries over unrelated tables"))
	}
	if !rep.InvalidationIdentical {
		errs = append(errs, errors.New("re-execution after the epoch bump changed a relation"))
	}
	return errors.Join(errs...)
}

// WriteResultCacheArtifact writes the report as indented JSON — the
// committed BENCH_resultcache.json tracking the serving hot path.
func WriteResultCacheArtifact(path string, rep *ResultCacheReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
