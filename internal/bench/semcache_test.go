package bench

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/simllm"
)

// TestSemanticCacheComparison is the acceptance gate of the subsumption
// tier: every near-miss child — a query the cache has never seen
// verbatim but whose plan a cached producer subsumes — must be answered
// by a residual plan for zero prompts, bit-identical to direct
// execution, and a PrimeTableKeys bump must invalidate only the bumped
// table's entries.
func TestSemanticCacheComparison(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.SemanticCacheComparison(context.Background(), simllm.ChatGPT)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckAcceptance(); err != nil {
		t.Fatal(err)
	}
	if rep.Children == 0 || rep.ColdPrompts == 0 {
		t.Fatalf("degenerate corpus: %d children, %d cold prompts", rep.Children, rep.ColdPrompts)
	}
	t.Logf("%d parents (%d cold prompts), %d children all subsumed for 0 prompts",
		rep.Parents, rep.ColdPrompts, rep.Children)
}

// TestSemanticCacheDeterministic pins the artifact's reproducibility:
// two runs must serialize byte-identically, so the committed
// BENCH_semcache.json can be regenerated and diffed in CI.
func TestSemanticCacheDeterministic(t *testing.T) {
	runs := make([][]byte, 2)
	for i := range runs {
		r, err := NewRunner(1)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.SemanticCacheComparison(context.Background(), simllm.ChatGPT)
		if err != nil {
			t.Fatal(err)
		}
		runs[i], err = json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
	}
	if string(runs[0]) != string(runs[1]) {
		t.Errorf("semantic-cache report is not deterministic:\n%s\nvs\n%s", runs[0], runs[1])
	}
}
