package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/faultllm"
	"repro/internal/llm"
	"repro/internal/simllm"
	"repro/internal/spider"
)

// Routing differential constants. Both backends of the routed arms wrap
// the SAME simulated model profile and seed, differing only in their
// declared cost weight — so the routed corpus is bit-identical to the
// single-backend corpus by construction, and the only thing routing can
// change is which endpoint's meter a prompt lands on.
const (
	// RoutingCheapCost is the cheap backend's optimizer price per prompt
	// relative to the strong backend's 1.0.
	RoutingCheapCost = 0.25
	// RoutingBreakerThreshold is the failover arm's breaker setting on
	// the cheap backend: small enough that the mid-corpus outage trips
	// it within one query.
	RoutingBreakerThreshold = 3
)

// RoutingArm is one routing configuration run over the whole corpus.
type RoutingArm struct {
	Config  string `json:"config"`
	Queries int    `json:"queries"`
	// FailedQueries counts corpus queries that returned an error. Every
	// arm — including the one with a mid-corpus backend outage — must
	// hold this at zero.
	FailedQueries int `json:"failed_queries"`
	// Prompts is the total recorded model calls across the corpus.
	Prompts int `json:"prompts"`
	// BackendPrompts breaks the total down by answering backend.
	BackendPrompts map[string]int64 `json:"backend_prompts"`
	// WeightedCost is Σ backend prompts × declared cost weight — the
	// routing policy's objective. A single-backend arm prices every
	// prompt at 1.0, so its weighted cost equals its prompt count.
	WeightedCost float64 `json:"weighted_cost"`
	// ResultsIdentical: every relation matches the single-backend arm
	// bit for bit.
	ResultsIdentical bool `json:"results_identical"`
	// PromptsIdentical: per-query recorded prompt counts match the
	// single-backend arm exactly.
	PromptsIdentical bool `json:"prompts_identical"`
	// Failovers counts prompts that failed over to a fallback backend.
	Failovers int64 `json:"failovers"`
	// OutageAtQuery is the corpus index where the failover arm's primary
	// went down (-1 for fault-free arms).
	OutageAtQuery int `json:"outage_at_query,omitempty"`
	// BreakerOpened: the cheap backend's breaker opened during the
	// outage (failover arm only).
	BreakerOpened bool `json:"breaker_opened,omitempty"`
}

// RoutingReport is the machine-readable routing record
// (BENCH_routing.json): the corpus under a single backend, under
// cost-aware routing (cheap backend on keyscan/filter), and under
// routing with a mid-corpus outage of the routed-to backend.
type RoutingReport struct {
	Model           string     `json:"model"`
	Seed            int64      `json:"seed"`
	Queries         int        `json:"queries"`
	CheapCostWeight float64    `json:"cheap_cost_weight"`
	Single          RoutingArm `json:"single"`
	Routed          RoutingArm `json:"routed"`
	Failover        RoutingArm `json:"failover"`
}

// routingOptions pins the routing differential's engine configuration:
// stop-and-go serial batches, fixed heuristic plans and both caches off,
// so the set and order of issued prompts is a pure function of the query
// text and every prompt is a distinct, attributable model call.
func routingOptions() core.Options {
	opts := PaperOptions()
	opts.Optimizer.CostBased = false
	opts.ResultCacheEnabled = false
	return opts
}

// routedDefs declares the differential's two backends over the same
// model profile and seed: "cheap" (a quarter of the price, first choice
// for key scans and filters) and "strong" (the default), mutual
// fallbacks. cheapClient substitutes the cheap backend's transport when
// non-nil (the failover arm wraps it in a seeded outage injector).
func (r *Runner) routedDefs(p simllm.Profile, cheapClient llm.Client) []core.BackendDef {
	if cheapClient == nil {
		cheapClient = r.Model(p)
	}
	return []core.BackendDef{
		{Name: "cheap", Client: cheapClient, CostWeight: RoutingCheapCost, Fallback: []string{"strong"}},
		{Name: "strong", Client: r.Model(p), Fallback: []string{"cheap"}},
	}
}

// routingRoutes sends the cheap, high-volume prompt roles to the cheap
// backend; fetch (and verify) stay on the default strong backend.
func routingRoutes() map[string]string {
	return map[string]string{"keyscan": "cheap", "filter": "cheap"}
}

// runRoutingArm runs the corpus once on rt, recording per-query
// outcomes and the per-backend meters afterwards. onQuery (when
// non-nil) runs before each corpus query — the failover arm's outage
// trigger.
func runRoutingArm(ctx context.Context, rt *core.Runtime, config string, onQuery func(i int)) (RoutingArm, []queryOutcome) {
	corpus := spider.Queries()
	arm := RoutingArm{Config: config, Queries: len(corpus), OutageAtQuery: -1}
	outcomes := make([]queryOutcome, len(corpus))
	for i, q := range corpus {
		if onQuery != nil {
			onQuery(i)
		}
		outcomes[i] = runQuery(ctx, rt, q.SQL)
		if outcomes[i].err != nil {
			arm.FailedQueries++
		}
		arm.Prompts += outcomes[i].prompts
	}
	arm.BackendPrompts = map[string]int64{}
	for _, b := range rt.Registry().Backends() {
		arm.BackendPrompts[b.Name()] = b.Prompts()
		arm.WeightedCost += float64(b.Prompts()) * b.CostWeight()
	}
	arm.Failovers = rt.Failovers()
	return arm, outcomes
}

// diffRoutingArm fills an arm's differential fields against the
// single-backend baseline.
func diffRoutingArm(arm *RoutingArm, baseline, got []queryOutcome) {
	arm.ResultsIdentical = true
	arm.PromptsIdentical = true
	for i := range baseline {
		if got[i].rel != baseline[i].rel {
			arm.ResultsIdentical = false
		}
		if got[i].prompts != baseline[i].prompts {
			arm.PromptsIdentical = false
		}
	}
}

// RoutingComparison runs the routing differential: the corpus on a
// single strong backend, on a cheap/strong pair with key scans and
// filters routed to the cheap backend (relations bit-identical, total
// weighted prompt cost strictly lower), and on the same pair with the
// cheap backend suffering a total outage from the middle of the corpus
// onward — every prompt failing over to the strong backend with zero
// query failures and bit-identical relations. Deterministic end to end;
// CI diffs the committed artifact.
func (r *Runner) RoutingComparison(ctx context.Context, p simllm.Profile) (*RoutingReport, error) {
	corpus := spider.Queries()
	rep := &RoutingReport{Model: p.ID, Seed: r.Seed, Queries: len(corpus), CheapCostWeight: RoutingCheapCost}

	// Arm 1: the pre-routing engine — one backend, every prompt at
	// weight 1.0.
	single, err := r.Runtime(r.Model(p), routingOptions())
	if err != nil {
		return nil, err
	}
	singleArm, baseline := runRoutingArm(ctx, single, "single-backend", nil)
	diffRoutingArm(&singleArm, baseline, baseline)
	rep.Single = singleArm

	// Arm 2: cost-aware routing, both backends healthy.
	routed, err := core.NewRuntimeWithBackends(r.routedDefs(p, nil), "strong", routingRoutes(), routingOptions())
	if err != nil {
		return nil, err
	}
	r.attach(routed)
	routedArm, outcomes := runRoutingArm(ctx, routed, "routed-cheap-keyscan-filter", nil)
	diffRoutingArm(&routedArm, baseline, outcomes)
	rep.Routed = routedArm

	// Arm 3: the same routing with the cheap backend dying mid-corpus.
	// The injector is fault-free until the trigger flips it to a total
	// outage; the pre-wrapped resilient transport fails fast (no
	// retries, instant backoff) so the breaker trips deterministically
	// and every shed call fails over to the strong backend.
	inj := faultllm.Wrap(r.Model(p), faultllm.Profile{Seed: r.Seed})
	cheap := llm.NewResilient(inj, llm.ResilientConfig{
		Endpoint:         "cheap",
		MaxRetries:       -1,
		BreakerThreshold: RoutingBreakerThreshold,
		Sleep:            instantSleep,
	})
	failover, err := core.NewRuntimeWithBackends(r.routedDefs(p, cheap), "strong", routingRoutes(), routingOptions())
	if err != nil {
		return nil, err
	}
	r.attach(failover)
	outageAt := len(corpus) / 2
	failArm, outcomes := runRoutingArm(ctx, failover, "routed-primary-outage", func(i int) {
		if i == outageAt {
			inj.SetOutage(true)
		}
	})
	failArm.OutageAtQuery = outageAt
	failArm.BreakerOpened = cheap.Counters().BreakerOpens >= 1
	diffRoutingArm(&failArm, baseline, outcomes)
	rep.Failover = failArm
	return rep, nil
}

// attach binds the benchmark schema and ground-truth DB to a runtime
// built outside Runner.Runtime (the multi-backend constructors).
func (r *Runner) attach(rt *core.Runtime) {
	rt.AttachDB(r.DB)
	for _, name := range LLMTables {
		// The benchmark tables are static and the names come from the
		// fixture; binding cannot fail.
		if err := rt.BindLLMTable(r.World.Table(name).Def); err != nil {
			panic(fmt.Sprintf("bench: binding %s: %v", name, err))
		}
	}
}

// CheckAcceptance enforces the routing acceptance criteria: zero failed
// queries everywhere, routed relations and prompt counts bit-identical
// to single-backend, the cheap backend actually absorbing keyscan and
// filter volume at a strictly lower total weighted cost, and the outage
// arm failing over mid-corpus (breaker open, failovers counted) with no
// result divergence.
func (rep *RoutingReport) CheckAcceptance() error {
	var errs []error
	check := func(ok bool, format string, args ...any) {
		if !ok {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}
	check(rep.Single.FailedQueries == 0, "single: %d queries failed", rep.Single.FailedQueries)
	check(rep.Routed.FailedQueries == 0, "routed: %d queries failed", rep.Routed.FailedQueries)
	check(rep.Failover.FailedQueries == 0, "failover: %d queries failed despite the fallback chain", rep.Failover.FailedQueries)

	check(rep.Routed.ResultsIdentical, "routed: a relation diverged from single-backend")
	check(rep.Routed.PromptsIdentical, "routed: per-query prompt counts diverged from single-backend")
	check(rep.Routed.Failovers == 0, "routed: %d failovers with both backends healthy", rep.Routed.Failovers)
	check(rep.Routed.BackendPrompts["cheap"] > 0, "routed: cheap backend answered no prompts — routes inert")
	check(rep.Routed.BackendPrompts["strong"] > 0, "routed: strong backend answered no prompts — default route inert")
	check(rep.Routed.WeightedCost < rep.Single.WeightedCost,
		"routed: weighted cost %.2f not below single-backend %.2f", rep.Routed.WeightedCost, rep.Single.WeightedCost)
	check(rep.Single.WeightedCost == float64(rep.Single.Prompts),
		"single: weighted cost %.2f != prompt count %d (implicit backend must price at 1.0)", rep.Single.WeightedCost, rep.Single.Prompts)

	check(rep.Failover.ResultsIdentical, "failover: a relation diverged from single-backend")
	check(rep.Failover.Failovers > 0, "failover: no prompts failed over during the outage")
	check(rep.Failover.BreakerOpened, "failover: the cheap backend's breaker never opened")
	check(rep.Failover.WeightedCost > rep.Routed.WeightedCost,
		"failover: weighted cost %.2f not above healthy routed %.2f (outage traffic must land on the strong meter)",
		rep.Failover.WeightedCost, rep.Routed.WeightedCost)
	return errors.Join(errs...)
}

// WriteRoutingArtifact writes the report as indented JSON — the
// committed BENCH_routing.json tracking the routing trajectory.
func WriteRoutingArtifact(path string, rep *RoutingReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
