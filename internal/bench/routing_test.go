package bench

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/simllm"
)

// TestRoutingComparison is the acceptance gate of multi-backend routing:
// the routed corpus (cheap backend on keyscan/filter) must be
// bit-identical to the single-backend corpus — relations and per-query
// prompt counts — at a strictly lower total weighted prompt cost, and a
// total outage of the routed-to backend from mid-corpus onward must fail
// every prompt over to the strong backend with zero query failures and
// no result divergence. Runs under -race in CI.
func TestRoutingComparison(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.RoutingComparison(context.Background(), simllm.ChatGPT)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckAcceptance(); err != nil {
		t.Fatal(err)
	}
	t.Logf("routing: weighted cost %.1f -> %.1f over %d queries; outage at query %d failed over %d prompts with %d failures",
		rep.Single.WeightedCost, rep.Routed.WeightedCost, rep.Queries,
		rep.Failover.OutageAtQuery, rep.Failover.Failovers, rep.Failover.FailedQueries)
}

// TestRoutingDeterministic pins the artifact's reproducibility: two
// fresh comparisons must agree on every number CI diffs.
func TestRoutingDeterministic(t *testing.T) {
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.RoutingComparison(context.Background(), simllm.ChatGPT)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RoutingComparison(context.Background(), simllm.ChatGPT)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("routing comparison not deterministic:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}
