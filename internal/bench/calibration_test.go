package bench

import (
	"context"
	"testing"

	"repro/internal/simllm"
)

// TestCalibrationReport prints the regenerated Tables 1 and 2 next to the
// paper's numbers. It never fails on magnitudes — shape assertions live in
// the dedicated experiment tests — but it is the quickest way to see the
// calibration state (run with -v).
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short mode")
	}
	r, err := NewRunner(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := PaperOptions()

	t1, err := r.Table1(ctx, simllm.AllProfiles(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("Table 1 — cardinality diff % (paper vs measured):")
	for _, row := range t1 {
		t.Logf("  %-8s paper=%+6.1f measured=%+6.1f (n=%d)", row.Model, Table1Paper[row.Model], row.DiffPercent, row.Queries)
	}

	t2, err := r.Table2(ctx, simllm.ChatGPT, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("Table 2 — cell match % on ChatGPT (All/Sel/Agg/Join):")
	for i, row := range t2 {
		p := Table2Paper[i]
		t.Logf("  %-6s paper=%2.0f/%2.0f/%2.0f/%2.0f measured=%4.1f/%4.1f/%4.1f/%4.1f",
			row.Method, p.All, p.Selections, p.Aggregates, p.Joins,
			row.All, row.Selections, row.Aggregates, row.Joins)
	}

	lat, err := r.Latency(ctx, simllm.GPT3, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Latency — paper: ~110 prompts, ~20s/query; measured: %.0f prompts, %s/query",
		lat.AvgPrompts, lat.AvgLatency)
}
