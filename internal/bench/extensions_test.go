package bench

import (
	"context"
	"testing"

	"repro/internal/simllm"
)

// TestPortabilityShape: stronger model pairs overlap more than pairs
// involving a small model (Section 6, Portability).
func TestPortabilityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r := runner(t)
	cells, err := r.Portability(context.Background(),
		[]simllm.Profile{simllm.Flan, simllm.GPT3, simllm.ChatGPT}, PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	byPair := map[string]float64{}
	for _, c := range cells {
		byPair[c.ModelA+"/"+c.ModelB] = c.Overlap
		if c.Overlap >= 100 {
			t.Errorf("%s vs %s overlap %.1f — models must disagree somewhere", c.ModelA, c.ModelB, c.Overlap)
		}
		if c.Overlap <= 0 {
			t.Errorf("%s vs %s overlap %.1f — models must agree somewhere", c.ModelA, c.ModelB, c.Overlap)
		}
	}
	if byPair["flan/gpt3"] >= byPair["gpt3/chatgpt"] {
		t.Errorf("big models should agree more with each other (flan/gpt3=%.1f, gpt3/chatgpt=%.1f)",
			byPair["flan/gpt3"], byPair["gpt3/chatgpt"])
	}
}

// TestSchemaFreedom: the two formulations should be close but not
// identical — the equivalence property a DBMS guarantees does not hold
// over an LLM (Section 6, Schema-less querying).
func TestSchemaFreedom(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r := runner(t)
	res, err := r.SchemaFreedom(context.Background(), simllm.GPT3, PaperOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Q1Rows == 0 || res.Q2Rows == 0 {
		t.Fatalf("both formulations must return rows: %+v", res)
	}
	if res.MutualOverlap < 20 {
		t.Errorf("formulations should agree substantially (same beliefs), got %.1f%%", res.MutualOverlap)
	}
	if res.MutualOverlap >= 100 {
		t.Errorf("perfect equivalence is not expected over an LLM, got %.1f%%", res.MutualOverlap)
	}
}

// TestAblationVerificationRuns: verification trades recall for precision;
// at minimum it must run and spend extra prompts.
func TestAblationVerificationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	r := runner(t)
	rows, err := r.AblationVerification(context.Background(), simllm.ChatGPT, simllm.GPT3)
	if err != nil {
		t.Fatal(err)
	}
	plain, verified := rows[0], rows[1]
	if verified.AvgPrompts <= plain.AvgPrompts {
		t.Errorf("verification must issue extra prompts: %.1f vs %.1f", verified.AvgPrompts, plain.AvgPrompts)
	}
}
