package bench

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/simllm"
	"repro/internal/spider"
	"repro/internal/value"
)

// The experiments in this file explore three research directions from
// Section 6 that the paper raises but does not evaluate: portability
// across models, verification of answers with a second model ("Knowledge
// of the Unknown"), and schema-less query equivalence.

// PortabilityCell is one pair of models' average mutual result overlap.
type PortabilityCell struct {
	ModelA, ModelB string
	Overlap        float64 // avg symmetric cell overlap % across the corpus
}

// Portability runs the corpus on every pair of models and measures how
// much their results agree — Section 6: "the same prompt does not give
// equivalent results across LLMs". Overlap of a pair is the mean of
// matching A's result against B's and vice versa.
func (r *Runner) Portability(ctx context.Context, profiles []simllm.Profile, opts core.Options) ([]PortabilityCell, error) {
	results := map[string][]*schema.Relation{}
	for _, p := range profiles {
		engine, err := r.Engine(r.Model(p), opts)
		if err != nil {
			return nil, err
		}
		for _, q := range spider.Queries() {
			rel, _, err := engine.Query(ctx, q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: portability %s query %d: %w", p.ID, q.ID, err)
			}
			results[p.ID] = append(results[p.ID], rel)
		}
	}
	cellOpts := r.CellOptions()
	var out []PortabilityCell
	for i := 0; i < len(profiles); i++ {
		for j := i + 1; j < len(profiles); j++ {
			a, b := profiles[i].ID, profiles[j].ID
			var overlaps []float64
			for k := range results[a] {
				ab := eval.MatchContent(results[a][k], results[b][k], cellOpts).Percent()
				ba := eval.MatchContent(results[b][k], results[a][k], cellOpts).Percent()
				overlaps = append(overlaps, (ab+ba)/2)
			}
			out = append(out, PortabilityCell{ModelA: a, ModelB: b, Overlap: eval.Mean(overlaps)})
		}
	}
	return out, nil
}

// SchemaFreedomResult compares two SQL formulations of the same
// information need: Q1 joins two LLM relations, Q2 asks one denormalized
// relation with a derived attribute (the Section 6 schema-less example).
type SchemaFreedomResult struct {
	Q1Rows, Q2Rows int
	// MutualOverlap is the symmetric cell overlap % between the two
	// results (100 = the equivalence property holds).
	MutualOverlap float64
	// Q1Truth and Q2Truth score each formulation against the ground
	// truth.
	Q1Truth, Q2Truth float64
}

const (
	schemaFreeQ1 = `SELECT c.name, m.birth_date FROM city c, mayor m WHERE c.mayor = m.name`
	schemaFreeQ2 = `SELECT name, mayor_birth_date FROM city`
)

// SchemaFreedom executes both formulations on one model and measures how
// close they come to the equivalence a DBMS would guarantee.
func (r *Runner) SchemaFreedom(ctx context.Context, p simllm.Profile, opts core.Options) (*SchemaFreedomResult, error) {
	model := r.Model(p)

	// Q1: the explicit join over the declared schema.
	engine1, err := r.Engine(model, opts)
	if err != nil {
		return nil, err
	}
	q1, _, err := engine1.Query(ctx, schemaFreeQ1)
	if err != nil {
		return nil, fmt.Errorf("bench: schema-free Q1: %w", err)
	}

	// Q2: a user-declared denormalized schema with the derived attribute;
	// the LLM has no schema, so this is an equally valid formulation.
	engine2 := core.New(model, opts)
	flatCity := &schema.TableDef{
		Name:      "city",
		KeyColumn: "name",
		Schema: schema.New(
			schema.Column{Name: "name", Type: value.KindString},
			schema.Column{Name: "mayor_birth_date", Type: value.KindDate},
		),
	}
	if err := engine2.BindLLMTable(flatCity); err != nil {
		return nil, err
	}
	q2, _, err := engine2.Query(ctx, schemaFreeQ2)
	if err != nil {
		return nil, fmt.Errorf("bench: schema-free Q2: %w", err)
	}

	truth, err := r.GroundTruth(ctx, schemaFreeQ1)
	if err != nil {
		return nil, err
	}

	cellOpts := r.CellOptions()
	ab := eval.MatchContent(q1, q2, cellOpts).Percent()
	ba := eval.MatchContent(q2, q1, cellOpts).Percent()
	return &SchemaFreedomResult{
		Q1Rows:        q1.Cardinality(),
		Q2Rows:        q2.Cardinality(),
		MutualOverlap: (ab + ba) / 2,
		Q1Truth:       eval.MatchContent(truth, q1, cellOpts).Percent(),
		Q2Truth:       eval.MatchContent(truth, q2, cellOpts).Percent(),
	}, nil
}

// AblationVerification measures the effect of double-checking every
// fetched value with a second model (Section 6, "Knowledge of the
// Unknown": "verification is easier than generation"). It reports the
// corpus with and without a GPT-3 verifier over the primary model.
func (r *Runner) AblationVerification(ctx context.Context, primary, verifier simllm.Profile) ([]AblationRow, error) {
	queries := spider.Queries()

	plain := PaperOptions()
	verified := PaperOptions()
	verified.Verifier = r.Model(verifier)

	a, err := r.runConfig(ctx, primary, plain, queries, "unverified")
	if err != nil {
		return nil, err
	}
	b, err := r.runConfig(ctx, primary, verified, queries, "verified-by-"+verifier.ID)
	if err != nil {
		return nil, err
	}
	return []AblationRow{a, b}, nil
}
