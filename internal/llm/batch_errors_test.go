package llm

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// TestBatchFailureNotMixedWithInternalCancels: when one prompt of a
// batch fails, the batch cancels its siblings internally; the reported
// error must contain only the real failure, never the secondary
// context.Canceled the siblings died of.
func TestBatchFailureNotMixedWithInternalCancels(t *testing.T) {
	boom := Transient(errors.New("backend 500"))
	var n atomic.Int64
	client := clientFunc("flaky", func(ctx context.Context, prompt string) (string, error) {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		if n.Add(1) == 1 {
			return "", boom
		}
		return "ok", nil
	})

	prompts := make([]string, 16)
	for i := range prompts {
		prompts[i] = "p" + string(rune('a'+i))
	}
	_, err := CompleteBatch(context.Background(), client, prompts, 4)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the backend failure", err)
	}
	if strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("backend failure polluted with internal cancellation: %v", err)
	}
	if IsCancellation(err) {
		t.Fatalf("backend failure classified as cancellation: %v", err)
	}
}

// TestBatchCallerCancelReportedAsCancellation: a batch aborted by the
// caller's own cancel reports exactly the caller's context error — it
// must never classify (or read) as a backend failure.
func TestBatchCallerCancelReportedAsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	client := clientFunc("slow", func(cctx context.Context, prompt string) (string, error) {
		if n.Add(1) == 2 {
			cancel() // the user gives up mid-batch
		}
		if err := cctx.Err(); err != nil {
			return "", err
		}
		return "ok", nil
	})

	prompts := make([]string, 16)
	for i := range prompts {
		prompts[i] = "p" + string(rune('a'+i))
	}
	_, err := CompleteBatch(ctx, client, prompts, 2)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !IsCancellation(err) {
		t.Fatalf("caller cancel classified as %v, want cancellation", Classify(err))
	}
}

// TestBatchCachedCallerCancel: same property through the cached path —
// the singleflight leader dying of the caller's cancel must not be
// reported as a backend failure.
func TestBatchCachedCallerCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	client := clientFunc("c", func(cctx context.Context, prompt string) (string, error) {
		return "", cctx.Err()
	})
	cache := NewCache(16)
	_, err := CompleteBatchCached(ctx, client, cache, []string{"a", "b", "c"}, 2)
	if err == nil {
		t.Fatal("want error")
	}
	if !IsCancellation(err) {
		t.Fatalf("class = %v (%v), want cancellation", Classify(err), err)
	}
}
