package llm

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func okClient(name string) Client {
	return clientFunc(name, func(ctx context.Context, prompt string) (string, error) {
		return name + ": " + prompt, nil
	})
}

func mustAdd(t *testing.T, g *Registry, spec BackendSpec) *Backend {
	t.Helper()
	b, err := g.Add(spec)
	if err != nil {
		t.Fatalf("Add(%s): %v", spec.Name, err)
	}
	return b
}

func chainNames(t *testing.T, r *Router, role Role, tableBackend string) []string {
	t.Helper()
	chain, err := r.Chain(role, tableBackend)
	if err != nil {
		t.Fatalf("Chain(%s, %q): %v", role, tableBackend, err)
	}
	names := make([]string, len(chain))
	for i, b := range chain {
		names[i] = b.Name()
	}
	return names
}

func TestRegistryResolutionOrder(t *testing.T) {
	g := NewRegistry(nil)
	mustAdd(t, g, BackendSpec{Name: "strong", Client: okClient("m-strong")})
	mustAdd(t, g, BackendSpec{Name: "cheap", Client: okClient("m-cheap")})
	mustAdd(t, g, BackendSpec{Name: "pinned", Client: okClient("m-pinned")})
	mustAdd(t, g, BackendSpec{Name: "over", Client: okClient("m-over")})
	if err := g.SetRoute(RoleKeyscan, "cheap"); err != nil {
		t.Fatalf("SetRoute: %v", err)
	}

	// Unrouted role: the default (first declared) backend.
	r := g.Router(nil)
	if got := chainNames(t, r, RoleFetch, ""); !reflect.DeepEqual(got, []string{"strong"}) {
		t.Fatalf("default resolution = %v, want [strong]", got)
	}
	// Registry role route beats the default.
	if got := chainNames(t, r, RoleKeyscan, ""); !reflect.DeepEqual(got, []string{"cheap"}) {
		t.Fatalf("role route = %v, want [cheap]", got)
	}
	// Table pin beats the role route.
	if got := chainNames(t, r, RoleKeyscan, "pinned"); !reflect.DeepEqual(got, []string{"pinned"}) {
		t.Fatalf("table pin = %v, want [pinned]", got)
	}
	// Session override beats everything.
	r = g.Router(map[Role]string{RoleKeyscan: "over"})
	if got := chainNames(t, r, RoleKeyscan, "pinned"); !reflect.DeepEqual(got, []string{"over"}) {
		t.Fatalf("session override = %v, want [over]", got)
	}

	// SetDefault moves the unrouted resolution.
	if err := g.SetDefault("cheap"); err != nil {
		t.Fatalf("SetDefault: %v", err)
	}
	r = g.Router(nil)
	if got := chainNames(t, r, RoleFetch, ""); !reflect.DeepEqual(got, []string{"cheap"}) {
		t.Fatalf("after SetDefault = %v, want [cheap]", got)
	}
}

func TestRegistryChainFallbacksDeduped(t *testing.T) {
	g := NewRegistry(nil)
	mustAdd(t, g, BackendSpec{Name: "a", Client: okClient("ma"), Fallback: []string{"b", "c", "b"}})
	mustAdd(t, g, BackendSpec{Name: "b", Client: okClient("mb")})
	mustAdd(t, g, BackendSpec{Name: "c", Client: okClient("mc")})
	r := g.Router(nil)
	if got := chainNames(t, r, RoleFetch, ""); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("chain = %v, want [a b c]", got)
	}
}

func TestRegistryValidate(t *testing.T) {
	empty := NewRegistry(nil)
	if err := empty.Validate(); err == nil {
		t.Fatalf("Validate on empty registry: want error")
	}
	g := NewRegistry(nil)
	mustAdd(t, g, BackendSpec{Name: "a", Client: okClient("ma"), Fallback: []string{"a"}})
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Fatalf("self-fallback Validate = %v, want itself-as-fallback error", err)
	}
	g2 := NewRegistry(nil)
	mustAdd(t, g2, BackendSpec{Name: "a", Client: okClient("ma"), Fallback: []string{"ghost"}})
	if err := g2.Validate(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("unknown-fallback Validate = %v, want undeclared-backend error", err)
	}
	if _, err := g2.Add(BackendSpec{Name: "a", Client: okClient("dup")}); err == nil {
		t.Fatalf("duplicate Add: want error")
	}
	if _, err := g2.Add(BackendSpec{Name: "", Client: okClient("x")}); err == nil {
		t.Fatalf("empty-name Add: want error")
	}
	if _, err := g2.Add(BackendSpec{Name: "nil"}); err == nil {
		t.Fatalf("nil-client Add: want error")
	}
}

func TestRoutedFailoverChainAttribution(t *testing.T) {
	g := NewRegistry(nil)
	down := clientFunc("m-down", func(ctx context.Context, prompt string) (string, error) {
		return "", &Error{Class: ClassBreakerOpen, Endpoint: "primary", Err: ErrBreakerOpen}
	})
	mustAdd(t, g, BackendSpec{Name: "primary", Client: down, Fallback: []string{"backup"}})
	mustAdd(t, g, BackendSpec{Name: "backup", Client: okClient("m-backup")})

	r := g.Router(nil)
	c, err := r.Client(RoleFetch, "")
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	routed, ok := c.(*Routed)
	if !ok {
		t.Fatalf("client = %T, want *Routed (multi-backend chain)", c)
	}
	// Pool identity follows the primary: the route changes who answers,
	// not whose dispatch slot the work runs in.
	if routed.Name() != "primary" {
		t.Fatalf("Name = %q, want primary", routed.Name())
	}
	out, err := routed.Complete(context.Background(), "q1")
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if out != "m-backup: q1" {
		t.Fatalf("out = %q, want the backup's answer", out)
	}
	if got := g.Failovers(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
	pb, _ := g.Get("primary")
	bb, _ := g.Get("backup")
	if pb.Prompts() != 0 || bb.Prompts() != 1 {
		t.Fatalf("prompt counters = %d/%d, want 0 primary / 1 backup", pb.Prompts(), bb.Prompts())
	}
}

func TestRoutedExhaustedChainError(t *testing.T) {
	g := NewRegistry(nil)
	shed := func(name string) Client {
		return clientFunc(name, func(ctx context.Context, prompt string) (string, error) {
			return "", &Error{Class: ClassBreakerOpen, Endpoint: name, Err: ErrBreakerOpen}
		})
	}
	mustAdd(t, g, BackendSpec{Name: "a", Client: shed("a"), Fallback: []string{"b", "c"}})
	mustAdd(t, g, BackendSpec{Name: "b", Client: shed("b")})
	mustAdd(t, g, BackendSpec{Name: "c", Client: shed("c")})

	r := g.Router(nil)
	c, err := r.Client(RoleFilter, "")
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	_, err = c.Complete(context.Background(), "q")
	if err == nil {
		t.Fatalf("Complete: want error when every backend sheds")
	}
	var le *Error
	if !errors.As(err, &le) {
		t.Fatalf("error = %T, want *Error", err)
	}
	if got := le.Attempted(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Attempted = %v, want the full chain in order", got)
	}
	if g.Failovers() != 2 {
		t.Fatalf("Failovers = %d, want 2 (a->b, b->c)", g.Failovers())
	}
}

func TestRoutedPermanentDoesNotFailOver(t *testing.T) {
	g := NewRegistry(nil)
	calls := 0
	bad := clientFunc("bad", func(ctx context.Context, prompt string) (string, error) {
		calls++
		return "", &Error{Class: ClassPermanent, Endpoint: "a", Err: errors.New("malformed prompt")}
	})
	backupCalls := 0
	backup := clientFunc("bk", func(ctx context.Context, prompt string) (string, error) {
		backupCalls++
		return "ok", nil
	})
	mustAdd(t, g, BackendSpec{Name: "a", Client: bad, Fallback: []string{"b"}})
	mustAdd(t, g, BackendSpec{Name: "b", Client: backup})

	r := g.Router(nil)
	c, _ := r.Client(RoleFetch, "")
	if _, err := c.Complete(context.Background(), "q"); err == nil {
		t.Fatalf("Complete: want the permanent error surfaced")
	}
	if calls != 1 || backupCalls != 0 {
		t.Fatalf("calls = %d/%d, want 1 primary / 0 backup (permanent failures fail everywhere)", calls, backupCalls)
	}
	if g.Failovers() != 0 {
		t.Fatalf("Failovers = %d, want 0", g.Failovers())
	}
}

func TestRouterSingleChainReturnsBackendDirect(t *testing.T) {
	g := NewRegistry(nil)
	b := mustAdd(t, g, BackendSpec{Name: "solo", Client: okClient("m")})
	r := g.Router(nil)
	c, err := r.Client(RoleVerify, "")
	if err != nil {
		t.Fatalf("Client: %v", err)
	}
	if c != Client(b) {
		t.Fatalf("client = %T, want the *Backend itself (no Routed wrapper for a one-element chain)", c)
	}
}

func TestRegistryAdoptMemoized(t *testing.T) {
	wraps := 0
	g := NewRegistry(func(inner Client, endpoint string) Client {
		wraps++
		return inner
	})
	declared := mustAdd(t, g, BackendSpec{Name: "declared", Client: okClient("m1")})

	verifier := okClient("verifier-model")
	a1 := g.Adopt(verifier)
	a2 := g.Adopt(verifier)
	if a1 == nil || a1 != a2 {
		t.Fatalf("Adopt not memoized: %p vs %p", a1, a2)
	}
	if a1.Name() != "verifier-model" {
		t.Fatalf("adopted name = %q, want the client's own name", a1.Name())
	}
	// One wrap for the declared backend, one for the adopted client — not
	// one per Adopt call.
	if wraps != 2 {
		t.Fatalf("wrap calls = %d, want 2", wraps)
	}
	// Adopting a declared backend's raw client returns that backend.
	if got := g.Adopt(declared.Raw()); got != declared {
		t.Fatalf("Adopt(declared raw) = %p, want the declared backend %p", got, declared)
	}
	// Adopting a *Backend returns it unchanged.
	if got := g.Adopt(declared); got != declared {
		t.Fatalf("Adopt(*Backend) = %p, want it back", got)
	}
	if g.Adopt(nil) != nil {
		t.Fatalf("Adopt(nil): want nil")
	}

	// All lists declared backends first, then adopted ones.
	all := g.All()
	if len(all) != 2 || all[0] != declared || all[1] != a1 {
		t.Fatalf("All = %v, want [declared adopted]", all)
	}
}

func TestRegistryNormalizesPricing(t *testing.T) {
	g := NewRegistry(nil)
	b := mustAdd(t, g, BackendSpec{Name: "x", Client: okClient("m")})
	if b.CostWeight() != 1 || b.SpeedFactor() != 1 {
		t.Fatalf("zero pricing normalized to %v/%v, want 1/1", b.CostWeight(), b.SpeedFactor())
	}
	c := mustAdd(t, g, BackendSpec{Name: "y", Client: okClient("m2"), CostWeight: 0.25, SpeedFactor: 0.5})
	if c.CostWeight() != 0.25 || c.SpeedFactor() != 0.5 {
		t.Fatalf("explicit pricing = %v/%v, want 0.25/0.5", c.CostWeight(), c.SpeedFactor())
	}
}
