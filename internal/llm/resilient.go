package llm

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Resilience defaults. A typical corpus query issues ~110 prompts; three
// retries with sub-second backoff rides out a transient burst without
// stretching one query past its deadline, and the breaker trips only on
// a run of failures long enough to mean the endpoint is down, not noisy.
const (
	DefaultMaxRetries       = 3
	DefaultBaseBackoff      = 100 * time.Millisecond
	DefaultMaxBackoff       = 2 * time.Second
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 30 * time.Second
	// DefaultRetryBudgetRatio deposits this many retry tokens per
	// first-attempt prompt, i.e. sustained retry traffic is capped at
	// ~25% of organic traffic (the Finagle-style budget).
	DefaultRetryBudgetRatio = 0.25
	// DefaultRetryBudgetReserve seeds and floors the bucket so cold
	// starts and small queries can still retry.
	DefaultRetryBudgetReserve = 10
	// DefaultRetryBudgetCap ceilings the bucket: a long healthy run can
	// bank at most this many retry tokens, so the ratio keeps applying
	// over a bounded recent window (as in Finagle's sliding-window
	// budget) instead of hours of calm traffic funding one giant storm.
	DefaultRetryBudgetCap = 100
)

// ResilientConfig tunes a ResilientClient. The zero value of each knob
// selects the default above; explicit negatives disable the knob where
// that is meaningful (MaxRetries < 0 means never retry,
// BreakerThreshold < 0 means no breaker).
type ResilientConfig struct {
	// Endpoint overrides the name this client reports (and stamps onto
	// errors and breaker sheds). Empty means the inner client's own name.
	// Backend registries set it so a named backend ("cheap") keeps its
	// identity even when several backends share one underlying model.
	Endpoint string
	// MaxRetries bounds resubmissions per prompt (not counting the first
	// attempt). 0 selects DefaultMaxRetries; negative disables retries.
	MaxRetries int
	// BaseBackoff is the backoff ceiling of the first retry; the ceiling
	// doubles per attempt up to MaxBackoff, and the actual sleep is full
	// jitter — uniform in [0, ceiling) — derived deterministically from
	// (prompt, attempt).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// PromptTimeout bounds each individual attempt; 0 means no
	// per-attempt deadline. An expired attempt classifies as
	// ClassDeadline (retryable), never as the caller's cancellation.
	PromptTimeout time.Duration
	// BreakerThreshold is the run of consecutive failed prompts (all
	// retries exhausted) that opens the endpoint's circuit breaker.
	// 0 selects DefaultBreakerThreshold; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds before letting
	// one half-open probe through.
	BreakerCooldown time.Duration
	// RetryBudgetRatio and RetryBudgetReserve shape the token bucket
	// that forbids retry storms: every first attempt deposits Ratio
	// tokens, every retry withdraws one, and the bucket never drains
	// below zero nor is seeded below Reserve. RetryBudgetCap bounds how
	// many tokens healthy traffic can bank (0 selects the default; it is
	// raised to Reserve when Reserve is larger, so a huge reserve stays
	// effective).
	RetryBudgetRatio   float64
	RetryBudgetReserve float64
	RetryBudgetCap     float64
	// Validate, when set, vets every completion before it is returned
	// (and therefore before any cache can store it). A rejection counts
	// as a transient fault and is retried — the defense against a
	// backend's malformed-output burst poisoning the prompt cache.
	Validate func(prompt, completion string) error
	// Sleep and Now are test/bench seams. Nil Sleep waits on a real
	// timer (honoring ctx); nil Now is time.Now. The chaos bench
	// substitutes an instant sleep and a fake clock so backoff and
	// breaker cooldowns cost no wall-clock and stay deterministic.
	Sleep func(ctx context.Context, d time.Duration) error
	Now   func() time.Time
}

// normalized fills defaults.
func (c ResilientConfig) normalized() ResilientConfig {
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = DefaultBaseBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerThreshold < 0 {
		c.BreakerThreshold = 0 // disabled
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.RetryBudgetRatio <= 0 {
		c.RetryBudgetRatio = DefaultRetryBudgetRatio
	}
	if c.RetryBudgetReserve <= 0 {
		c.RetryBudgetReserve = DefaultRetryBudgetReserve
	}
	if c.RetryBudgetCap <= 0 {
		c.RetryBudgetCap = DefaultRetryBudgetCap
	}
	if c.RetryBudgetCap < c.RetryBudgetReserve {
		c.RetryBudgetCap = c.RetryBudgetReserve
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// sleepCtx is the production Sleep: a real timer that aborts on ctx.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state for /healthz and diagnostics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// ResilienceCounters is a snapshot of a ResilientClient's lifetime
// accounting, surfaced through /stats and the chaos bench artifact.
type ResilienceCounters struct {
	Retries          int64   `json:"retries"`            // resubmitted attempts
	Faults           int64   `json:"faults"`             // failed attempts (transient, deadline, rejected completion)
	BreakerFastFails int64   `json:"breaker_fast_fails"` // calls shed while open
	BreakerOpens     int64   `json:"breaker_opens"`      // closed/half-open -> open transitions
	BudgetDenied     int64   `json:"budget_denied"`      // retries forbidden by the budget
	BudgetTokens     float64 `json:"budget_tokens"`      // current bucket level
}

// ResilientClient wraps a Client with per-attempt deadlines, bounded
// deterministic-jitter retries, a completion validator, a per-endpoint
// circuit breaker (closed/open/half-open with a single probe), and a
// token-bucket retry budget. It implements Client, so it slots between
// the engine's Recorder and the raw transport: every path that issues
// prompts — batched operators, the pipelined scheduler, cache-miss
// leaders — traverses it, and because retries happen inside one
// Complete call, the Recorder above still records exactly one prompt
// per success. Fair-share accounting and the simulated-makespan math
// are therefore bit-identical to a fault-free run; the retry overhead
// shows up only in the resilience counters.
type ResilientClient struct {
	inner Client
	cfg   ResilientConfig

	retries          atomic.Int64
	faults           atomic.Int64
	breakerFastFails atomic.Int64
	breakerOpens     atomic.Int64
	budgetDenied     atomic.Int64

	mu           sync.Mutex
	state        BreakerState
	consecFails  int       // consecutive exhausted prompts while closed
	reopenAt     time.Time // when an open breaker admits a probe
	probing      bool      // a half-open probe is in flight
	budgetTokens float64
}

// NewResilient wraps inner. A nil config field means its default; see
// ResilientConfig.
func NewResilient(inner Client, cfg ResilientConfig) *ResilientClient {
	cfg = cfg.normalized()
	return &ResilientClient{inner: inner, cfg: cfg, budgetTokens: cfg.RetryBudgetReserve}
}

// Name implements Client: the configured endpoint name when one was
// declared, the inner client's otherwise.
func (r *ResilientClient) Name() string {
	if r.cfg.Endpoint != "" {
		return r.cfg.Endpoint
	}
	return r.inner.Name()
}

// Inner returns the wrapped transport (the chaos bench reaches through
// to the injector).
func (r *ResilientClient) Inner() Client { return r.inner }

// Config returns the normalized configuration in effect.
func (r *ResilientClient) Config() ResilientConfig { return r.cfg }

// State reports the breaker position, transitioning open -> half-open
// when the cooldown has elapsed (so observers see the state a call would
// see, not a stale "open").
func (r *ResilientClient) State() BreakerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == BreakerOpen && !r.cfg.Now().Before(r.reopenAt) {
		return BreakerHalfOpen
	}
	return r.state
}

// Counters snapshots the lifetime resilience accounting.
func (r *ResilientClient) Counters() ResilienceCounters {
	r.mu.Lock()
	tokens := r.budgetTokens
	r.mu.Unlock()
	return ResilienceCounters{
		Retries:          r.retries.Load(),
		Faults:           r.faults.Load(),
		BreakerFastFails: r.breakerFastFails.Load(),
		BreakerOpens:     r.breakerOpens.Load(),
		BudgetDenied:     r.budgetDenied.Load(),
		BudgetTokens:     tokens,
	}
}

// Complete implements Client with the full resilience pipeline.
func (r *ResilientClient) Complete(ctx context.Context, prompt string) (string, error) {
	probe, err := r.admit()
	if err != nil {
		r.breakerFastFails.Add(1)
		if rec := recorderFromContext(ctx); rec != nil {
			rec.recordResilience(0, 0, 1)
		}
		return "", err
	}

	// Deposit the budget once per prompt, not per attempt: retries must
	// not fund further retries.
	r.deposit()

	var lastErr error
	for attempt := 0; ; attempt++ {
		out, err := r.attempt(ctx, prompt, attempt)
		if err == nil {
			r.onSuccess(probe)
			return out, nil
		}
		class := Classify(err)
		if class == ClassCanceled {
			// The caller's own context ended: not a backend failure.
			// The breaker run is left untouched and nothing is counted
			// as a fault — but a half-open probe slot must be handed
			// back, or the breaker sheds every future call forever.
			r.releaseProbe(probe)
			return "", err
		}
		r.faults.Add(1)
		if rec := recorderFromContext(ctx); rec != nil {
			rec.recordResilience(0, 1, 0)
		}
		lastErr = err
		if class == ClassPermanent {
			break
		}
		if attempt >= r.cfg.MaxRetries {
			break
		}
		if !r.withdraw() {
			r.budgetDenied.Add(1)
			lastErr = &Error{Class: ClassBudget, Endpoint: r.Name(),
				Err: fmt.Errorf("%w after %v", ErrRetryBudgetExhausted, err)}
			break
		}
		if serr := r.cfg.Sleep(ctx, r.backoff(prompt, attempt)); serr != nil {
			// Cancelled mid-backoff: the caller gave up, not the backend,
			// so the breaker run is untouched — but as above, a probe
			// slot must not leak with the abandoned call.
			r.releaseProbe(probe)
			return "", serr
		}
		r.retries.Add(1)
		if rec := recorderFromContext(ctx); rec != nil {
			rec.recordResilience(1, 0, 0)
		}
	}
	r.onFailure(probe)
	return "", r.withEndpoint(lastErr)
}

// attempt runs one call against the inner client under the per-attempt
// deadline, distinguishing that deadline's expiry from the caller's own
// context ending, and vetting the completion before it can escape to
// any cache.
func (r *ResilientClient) attempt(ctx context.Context, prompt string, attempt int) (string, error) {
	actx := WithAttempt(ctx, attempt)
	cancel := func() {}
	if r.cfg.PromptTimeout > 0 {
		actx, cancel = context.WithTimeout(actx, r.cfg.PromptTimeout)
	}
	out, err := r.inner.Complete(actx, prompt)
	cancel()
	if err != nil {
		if Classify(err) == ClassCanceled && ctx.Err() == nil {
			// The attempt's own deadline fired while the caller is still
			// live: a retryable per-prompt timeout, not a cancellation.
			return "", &Error{Class: ClassDeadline, Endpoint: r.Name(),
				Err: fmt.Errorf("attempt %d: %w", attempt, err)}
		}
		return "", err
	}
	if r.cfg.Validate != nil {
		if verr := r.cfg.Validate(prompt, out); verr != nil {
			return "", &Error{Class: ClassTransient, Endpoint: r.Name(),
				Err: fmt.Errorf("rejected completion (attempt %d): %w", attempt, verr)}
		}
	}
	return out, nil
}

// withEndpoint stamps this endpoint's name onto a classified error (or
// wraps an unclassified one as permanent) so upstream surfaces can name
// the failing backend. The name of the endpoint that actually ran the
// attempt always wins: an error that arrives already attributed to a
// different endpoint (a previous backend in a failover chain, a nested
// transport) keeps that history in Chain instead of masking this
// attempt's attribution.
func (r *ResilientClient) withEndpoint(err error) error {
	name := r.Name()
	if ce, ok := err.(*Error); ok {
		if ce.Endpoint != "" && ce.Endpoint != name {
			ce.Chain = append(ce.Chain, ce.Endpoint)
		}
		ce.Endpoint = name
		return ce
	}
	return &Error{Class: Classify(err), Endpoint: name, Err: err}
}

// backoff returns the deterministic full-jitter backoff before retrying
// a prompt: uniform in [0, min(MaxBackoff, BaseBackoff<<attempt)),
// derived from an FNV hash of (prompt, attempt) so the schedule is a
// pure function of the work, never of goroutine interleaving or a
// global RNG — the property the differential chaos suite rests on.
func (r *ResilientClient) backoff(prompt string, attempt int) time.Duration {
	ceiling := r.cfg.BaseBackoff << uint(attempt)
	if ceiling <= 0 || ceiling > r.cfg.MaxBackoff {
		ceiling = r.cfg.MaxBackoff
	}
	h := fnv.New64a()
	h.Write([]byte(prompt))
	fmt.Fprintf(h, "|retry:%d", attempt)
	return time.Duration(h.Sum64() % uint64(ceiling))
}

// ---------------------------------------------------------------- breaker

// admit gates a call on the breaker. It returns probe=true when this
// call is the half-open probe (its outcome decides the breaker), and a
// ClassBreakerOpen error when the call must be shed.
func (r *ResilientClient) admit() (probe bool, err error) {
	if r.cfg.BreakerThreshold <= 0 {
		return false, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case BreakerClosed:
		return false, nil
	case BreakerOpen:
		if r.cfg.Now().Before(r.reopenAt) {
			return false, &Error{Class: ClassBreakerOpen, Endpoint: r.Name(), Err: ErrBreakerOpen}
		}
		// Cooldown elapsed: this call becomes the half-open probe.
		r.state = BreakerHalfOpen
		r.probing = true
		return true, nil
	case BreakerHalfOpen:
		if r.probing {
			// One probe at a time; everyone else keeps shedding.
			return false, &Error{Class: ClassBreakerOpen, Endpoint: r.Name(), Err: ErrBreakerOpen}
		}
		r.probing = true
		return true, nil
	}
	return false, nil
}

// onSuccess records a prompt that ultimately succeeded: a successful
// probe closes the breaker, and any success resets the failure run.
func (r *ResilientClient) onSuccess(probe bool) {
	if r.cfg.BreakerThreshold <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if probe {
		r.probing = false
	}
	r.state = BreakerClosed
	r.consecFails = 0
}

// onFailure records a prompt whose retries were exhausted: a failed
// probe reopens the breaker for another cooldown; a run of failures
// while closed reaching the threshold opens it.
func (r *ResilientClient) onFailure(probe bool) {
	if r.cfg.BreakerThreshold <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if probe {
		r.probing = false
		r.openLocked()
		return
	}
	if r.state != BreakerClosed {
		return
	}
	r.consecFails++
	if r.consecFails >= r.cfg.BreakerThreshold {
		r.openLocked()
	}
}

// releaseProbe hands back the half-open probe slot when the probe's
// outcome is inconclusive — the caller cancelled before the backend
// could answer. The breaker stays half-open and the next admitted call
// becomes a fresh probe; without this, an abandoned probe would leave
// r.probing set forever and every later call would shed.
func (r *ResilientClient) releaseProbe(probe bool) {
	if !probe || r.cfg.BreakerThreshold <= 0 {
		return
	}
	r.mu.Lock()
	r.probing = false
	r.mu.Unlock()
}

// openLocked trips the breaker. Callers hold r.mu.
func (r *ResilientClient) openLocked() {
	r.state = BreakerOpen
	r.consecFails = 0
	r.reopenAt = r.cfg.Now().Add(r.cfg.BreakerCooldown)
	r.breakerOpens.Add(1)
}

// ----------------------------------------------------------------- budget

// deposit credits the retry budget for one first-attempt prompt,
// clamped at the cap so calm traffic cannot bank an unbounded balance.
func (r *ResilientClient) deposit() {
	r.mu.Lock()
	r.budgetTokens += r.cfg.RetryBudgetRatio
	if r.budgetTokens > r.cfg.RetryBudgetCap {
		r.budgetTokens = r.cfg.RetryBudgetCap
	}
	r.mu.Unlock()
}

// withdraw takes one retry token, refusing when the bucket is at or
// below the zero line but never draining past it. The bucket is seeded
// with (and conceptually floored by) the reserve, so small workloads
// can still ride out bursts.
func (r *ResilientClient) withdraw() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.budgetTokens < 1 {
		return false
	}
	r.budgetTokens--
	return true
}
