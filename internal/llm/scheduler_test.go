package llm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoLLM answers every prompt with a fixed completion.
type echoLLM struct {
	name   string
	answer string
}

func (e *echoLLM) Name() string { return e.name }
func (e *echoLLM) Complete(ctx context.Context, p string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return e.answer, nil
}

// latOf mirrors the scheduler's per-prompt cost for test expectations.
func latOf(prompt, out string) time.Duration {
	return promptLatency(CountTokens(prompt), CountTokens(out))
}

func TestSchedulerChainLatency(t *testing.T) {
	client := &echoLLM{name: "m", answer: "one two three"}
	s := NewScheduler(context.Background(), nil, 4)

	// A three-prompt dependency chain: each prompt is ready when the
	// previous one completes.
	var vt VTime
	prompts := []string{"p one", "p one two", "p one two three"}
	var want VTime
	for _, p := range prompts {
		out, end, err := s.Do(client, p, vt)
		if err != nil {
			t.Fatal(err)
		}
		if out != "one two three" {
			t.Fatalf("out = %q", out)
		}
		want += latOf(p, out)
		if end != want {
			t.Fatalf("chain end = %v, want %v", end, want)
		}
		vt = end
	}
	if got := s.CriticalPath(); got != want {
		t.Errorf("critical path = %v, want %v", got, want)
	}
	// Three prompts on four workers: the chain dominates the area bound.
	if got := s.Makespan(); got != want {
		t.Errorf("makespan = %v, want chain %v", got, want)
	}
}

func TestSchedulerAreaBoundDominates(t *testing.T) {
	client := &echoLLM{name: "m", answer: "a b c d e"}
	s := NewScheduler(context.Background(), nil, 2)

	// 8 independent prompts (all ready at 0) on 2 workers: the critical
	// path is one prompt, the area bound is 4 prompts.
	const n = 8
	futs := make([]*Future, n)
	for i := range futs {
		futs[i] = s.Submit(client, "independent prompt", 0)
	}
	one := latOf("independent prompt", "a b c d e")
	for _, f := range futs {
		_, end, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if end != one {
			t.Fatalf("independent prompt ends at %v, want %v", end, one)
		}
	}
	if got := s.CriticalPath(); got != one {
		t.Errorf("critical path = %v, want %v", got, one)
	}
	if got, want := s.Makespan(), time.Duration(n)*one/2; got != want {
		t.Errorf("makespan = %v, want area bound %v", got, want)
	}
}

// TestSchedulerPerEndpointBudget: two model endpoints have independent
// connection budgets, so a verifier's prompts never queue behind the
// primary model's — the makespan is the busier endpoint's area, not the
// sum.
func TestSchedulerPerEndpointBudget(t *testing.T) {
	primary := &echoLLM{name: "primary", answer: "a b c"}
	verifier := &echoLLM{name: "verifier", answer: "a b c"}
	s := NewScheduler(context.Background(), nil, 2)

	const n = 6
	var futs []*Future
	for i := 0; i < n; i++ {
		futs = append(futs, s.Submit(primary, "independent prompt", 0))
		futs = append(futs, s.Submit(verifier, "independent prompt", 0))
	}
	for _, f := range futs {
		if _, _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	one := latOf("independent prompt", "a b c")
	want := time.Duration(n) * one / 2 // each endpoint's own area
	if got := s.Makespan(); got != want {
		t.Errorf("makespan = %v, want per-endpoint area %v (summed would be %v)", got, want, 2*want)
	}
	if got := s.AggregateWork(); got != 2*time.Duration(n)*one {
		t.Errorf("aggregate work = %v, want %v", got, 2*time.Duration(n)*one)
	}
}

func TestSchedulerCacheHitsCostNothing(t *testing.T) {
	rec := NewRecorder(&echoLLM{name: "m", answer: "x"})
	cache := NewCache(8)
	s := NewScheduler(context.Background(), cache, 2)

	if _, _, err := s.Do(rec, "same prompt", 0); err != nil {
		t.Fatal(err)
	}
	first := s.Makespan()
	if first == 0 {
		t.Fatal("issued prompt must cost latency")
	}
	// The identical prompt again, even anchored later on the chain, adds
	// neither span nor area.
	_, end, err := s.Do(rec, "same prompt", first)
	if err != nil {
		t.Fatal(err)
	}
	if end != first {
		t.Errorf("cache hit must complete at its ready time: %v, want %v", end, first)
	}
	if got := s.Makespan(); got != first {
		t.Errorf("makespan grew on a cache hit: %v vs %v", got, first)
	}
	st := rec.Stats()
	if st.Prompts != 1 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats = %+v, want 1 prompt, 1 hit, 1 miss", st)
	}
	if st.SimulatedLatency != 0 {
		t.Errorf("recorder must carry no latency in pipelined mode, got %v", st.SimulatedLatency)
	}
}

func TestSchedulerSingleflightCollapsesConcurrent(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	client := &countingLLM{onCall: func() {
		mu.Lock()
		calls++
		mu.Unlock()
	}}
	s := NewScheduler(context.Background(), NewCache(8), 4)
	var futs []*Future
	for i := 0; i < 6; i++ {
		futs = append(futs, s.Submit(client, "dup", 0))
	}
	for _, f := range futs {
		if _, _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("6 concurrent identical prompts issued %d model calls, want 1", calls)
	}
}

type countingLLM struct{ onCall func() }

func (c *countingLLM) Name() string { return "counting" }
func (c *countingLLM) Complete(ctx context.Context, p string) (string, error) {
	c.onCall()
	return "ok", nil
}

// blockingLLM blocks until its context is canceled.
type blockingLLM struct {
	started chan struct{}
	once    sync.Once
}

func (b *blockingLLM) Name() string { return "blocking" }
func (b *blockingLLM) Complete(ctx context.Context, p string) (string, error) {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return "", ctx.Err()
}

func TestSchedulerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	client := &blockingLLM{started: make(chan struct{})}
	s := NewScheduler(ctx, nil, 2)

	// Saturate both workers plus the queue, then cancel: every future —
	// in-flight and never-dispatched — must resolve with the cancellation.
	var futs []*Future
	for i := 0; i < 5; i++ {
		futs = append(futs, s.Submit(client, fmt.Sprintf("p%d", i), 0))
	}
	<-client.started
	cancel()
	for i, f := range futs {
		done := make(chan struct{})
		var err error
		go func() {
			_, _, err = f.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("future %d did not resolve after cancellation", i)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("future %d err = %v, want context.Canceled", i, err)
		}
	}
}

func TestSchedulerErrorPropagates(t *testing.T) {
	client := &failingLLM{}
	s := NewScheduler(context.Background(), nil, 2)
	if _, _, err := s.Do(client, "boom", 0); err == nil || !strings.Contains(err.Error(), "model failure") {
		t.Errorf("err = %v, want model failure", err)
	}
}

type failingLLM struct{}

func (f *failingLLM) Name() string { return "failing" }
func (f *failingLLM) Complete(ctx context.Context, p string) (string, error) {
	return "", errors.New("model failure")
}

func TestSchedulerDefaultWorkers(t *testing.T) {
	s := NewScheduler(context.Background(), nil, 0)
	if s.Workers() != DefaultBatchWorkers {
		t.Errorf("workers = %d, want %d", s.Workers(), DefaultBatchWorkers)
	}
}
