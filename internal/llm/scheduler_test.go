package llm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoLLM answers every prompt with a fixed completion.
type echoLLM struct {
	name   string
	answer string
}

func (e *echoLLM) Name() string { return e.name }
func (e *echoLLM) Complete(ctx context.Context, p string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return e.answer, nil
}

// latOf mirrors the scheduler's per-prompt cost for test expectations.
func latOf(prompt, out string) time.Duration {
	return promptLatency(CountTokens(prompt), CountTokens(out))
}

// tenant opens a test tenant on a fresh scheduler.
func tenant(s *Scheduler, t *testing.T) *Tenant {
	t.Helper()
	tn := s.Tenant(context.Background(), "")
	t.Cleanup(tn.Close)
	return tn
}

func TestSchedulerChainLatency(t *testing.T) {
	client := &echoLLM{name: "m", answer: "one two three"}
	tn := tenant(NewScheduler(nil, 4), t)

	// A three-prompt dependency chain: each prompt is ready when the
	// previous one completes.
	var vt VTime
	prompts := []string{"p one", "p one two", "p one two three"}
	var want VTime
	for _, p := range prompts {
		out, end, err := tn.Do(client, p, vt)
		if err != nil {
			t.Fatal(err)
		}
		if out != "one two three" {
			t.Fatalf("out = %q", out)
		}
		want += latOf(p, out)
		if end != want {
			t.Fatalf("chain end = %v, want %v", end, want)
		}
		vt = end
	}
	if got := tn.CriticalPath(); got != want {
		t.Errorf("critical path = %v, want %v", got, want)
	}
	// Three prompts on four workers: the chain dominates the area bound.
	if got := tn.Makespan(); got != want {
		t.Errorf("makespan = %v, want chain %v", got, want)
	}
}

func TestSchedulerAreaBoundDominates(t *testing.T) {
	client := &echoLLM{name: "m", answer: "a b c d e"}
	tn := tenant(NewScheduler(nil, 2), t)

	// 8 independent prompts (all ready at 0) on 2 workers: the critical
	// path is one prompt, the area bound is 4 prompts.
	const n = 8
	futs := make([]*Future, n)
	for i := range futs {
		futs[i] = tn.Submit(client, "independent prompt", 0)
	}
	one := latOf("independent prompt", "a b c d e")
	for _, f := range futs {
		_, end, err := f.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if end != one {
			t.Fatalf("independent prompt ends at %v, want %v", end, one)
		}
	}
	if got := tn.CriticalPath(); got != one {
		t.Errorf("critical path = %v, want %v", got, one)
	}
	if got, want := tn.Makespan(), time.Duration(n)*one/2; got != want {
		t.Errorf("makespan = %v, want area bound %v", got, want)
	}
}

// TestSchedulerPerEndpointBudget: two model endpoints have independent
// connection budgets, so a verifier's prompts never queue behind the
// primary model's — the makespan is the busier endpoint's area, not the
// sum.
func TestSchedulerPerEndpointBudget(t *testing.T) {
	primary := &echoLLM{name: "primary", answer: "a b c"}
	verifier := &echoLLM{name: "verifier", answer: "a b c"}
	tn := tenant(NewScheduler(nil, 2), t)

	const n = 6
	var futs []*Future
	for i := 0; i < n; i++ {
		futs = append(futs, tn.Submit(primary, "independent prompt", 0))
		futs = append(futs, tn.Submit(verifier, "independent prompt", 0))
	}
	for _, f := range futs {
		if _, _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	one := latOf("independent prompt", "a b c")
	want := time.Duration(n) * one / 2 // each endpoint's own area
	if got := tn.Makespan(); got != want {
		t.Errorf("makespan = %v, want per-endpoint area %v (summed would be %v)", got, want, 2*want)
	}
	if got := tn.AggregateWork(); got != 2*time.Duration(n)*one {
		t.Errorf("aggregate work = %v, want %v", got, 2*time.Duration(n)*one)
	}
}

func TestSchedulerCacheHitsCostNothing(t *testing.T) {
	rec := NewRecorder(&echoLLM{name: "m", answer: "x"})
	cache := NewCache(8)
	tn := tenant(NewScheduler(cache, 2), t)

	if _, _, err := tn.Do(rec, "same prompt", 0); err != nil {
		t.Fatal(err)
	}
	first := tn.Makespan()
	if first == 0 {
		t.Fatal("issued prompt must cost latency")
	}
	// The identical prompt again, even anchored later on the chain, adds
	// neither span nor area.
	_, end, err := tn.Do(rec, "same prompt", first)
	if err != nil {
		t.Fatal(err)
	}
	if end != first {
		t.Errorf("cache hit must complete at its ready time: %v, want %v", end, first)
	}
	if got := tn.Makespan(); got != first {
		t.Errorf("makespan grew on a cache hit: %v vs %v", got, first)
	}
	st := rec.Stats()
	if st.Prompts != 1 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats = %+v, want 1 prompt, 1 hit, 1 miss", st)
	}
	if st.SimulatedLatency != 0 {
		t.Errorf("recorder must carry no latency in pipelined mode, got %v", st.SimulatedLatency)
	}
}

func TestSchedulerSingleflightCollapsesConcurrent(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	client := &countingLLM{onCall: func(string) {
		mu.Lock()
		calls++
		mu.Unlock()
	}}
	tn := tenant(NewScheduler(NewCache(8), 4), t)
	var futs []*Future
	for i := 0; i < 6; i++ {
		futs = append(futs, tn.Submit(client, "dup", 0))
	}
	for _, f := range futs {
		if _, _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("6 concurrent identical prompts issued %d model calls, want 1", calls)
	}
}

type countingLLM struct{ onCall func(prompt string) }

func (c *countingLLM) Name() string { return "counting" }
func (c *countingLLM) Complete(ctx context.Context, p string) (string, error) {
	c.onCall(p)
	return "ok", nil
}

// blockingLLM blocks until its context is canceled.
type blockingLLM struct {
	started chan struct{}
	once    sync.Once
}

func (b *blockingLLM) Name() string { return "blocking" }
func (b *blockingLLM) Complete(ctx context.Context, p string) (string, error) {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return "", ctx.Err()
}

func TestSchedulerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	client := &blockingLLM{started: make(chan struct{})}
	s := NewScheduler(nil, 2)
	tn := s.Tenant(ctx, "cancelled")
	defer tn.Close()

	// Saturate both workers plus the queue, then cancel: every future —
	// in-flight and never-dispatched — must resolve with the cancellation.
	var futs []*Future
	for i := 0; i < 5; i++ {
		futs = append(futs, tn.Submit(client, fmt.Sprintf("p%d", i), 0))
	}
	<-client.started
	cancel()
	for i, f := range futs {
		done := make(chan struct{})
		var err error
		go func() {
			_, _, err = f.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("future %d did not resolve after cancellation", i)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("future %d err = %v, want context.Canceled", i, err)
		}
	}
	tn.Quiesce()
}

// TestSchedulerCancelDoesNotPerturbOtherTenants: cancelling one query
// frees its queued work promptly and leaves a concurrent tenant's
// results, accounting and worker access untouched.
func TestSchedulerCancelDoesNotPerturbOtherTenants(t *testing.T) {
	s := NewScheduler(nil, 2)
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	gated := &gatedLLM{release: release, started: started}

	ctxA, cancelA := context.WithCancel(context.Background())
	a := s.Tenant(ctxA, "a")
	defer a.Close()
	b := s.Tenant(context.Background(), "b")
	defer b.Close()

	// A saturates both slots and queues three more; B queues three.
	var aFuts, bFuts []*Future
	for i := 0; i < 5; i++ {
		aFuts = append(aFuts, a.Submit(gated, fmt.Sprintf("a%d prompt", i), 0))
	}
	<-started
	<-started
	for i := 0; i < 3; i++ {
		bFuts = append(bFuts, b.Submit(gated, fmt.Sprintf("b%d prompt", i), 0))
	}

	// Cancel A while its two running prompts hold the slots; its queued
	// futures must resolve cancelled without waiting for the gate.
	cancelA()
	for i := 2; i < 5; i++ {
		done := make(chan struct{})
		var err error
		go func(f *Future) {
			_, _, err = f.Wait()
			close(done)
		}(aFuts[i])
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("queued future a%d not resolved promptly after cancel", i)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("a%d err = %v, want context.Canceled", i, err)
		}
	}

	// Release the gate: A's two running prompts fail with the cancel; B's
	// prompts all complete.
	close(release)
	for i := 0; i < 2; i++ {
		if _, _, err := aFuts[i].Wait(); !errors.Is(err, context.Canceled) {
			t.Errorf("running a%d err = %v, want context.Canceled", i, err)
		}
	}
	for i, f := range bFuts {
		out, _, err := f.Wait()
		if err != nil {
			t.Fatalf("b%d err = %v, want success", i, err)
		}
		if out != "ok done" {
			t.Errorf("b%d out = %q", i, out)
		}
	}
	a.Quiesce()
	b.Quiesce()

	// B's accounting covers exactly its three issued prompts; none of A's
	// cancelled work leaked into it.
	want := 3 * latOf("b0 prompt", "ok done")
	if got := b.AggregateWork(); got != want {
		t.Errorf("tenant b aggregate work = %v, want %v", got, want)
	}
	if a.AggregateWork() != 0 {
		t.Errorf("cancelled tenant accounted work %v, want 0", a.AggregateWork())
	}

	// The slots are free again: a fresh tenant completes immediately.
	c := s.Tenant(context.Background(), "c")
	defer c.Close()
	if _, _, err := c.Do(&echoLLM{name: "blocking-gate", answer: "x"}, "fresh prompt", 0); err != nil {
		t.Fatalf("scheduler wedged after cancellation: %v", err)
	}
}

// gatedLLM records started calls and blocks completions until released
// (or the call context is cancelled).
type gatedLLM struct {
	release chan struct{}
	started chan struct{}
}

func (g *gatedLLM) Name() string { return "blocking-gate" }
func (g *gatedLLM) Complete(ctx context.Context, p string) (string, error) {
	select {
	case g.started <- struct{}{}:
	default:
	}
	select {
	case <-g.release:
		return "ok done", nil
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

// TestSchedulerFairShare: with one endpoint saturated by a long queue
// from tenant A, a late-arriving tenant B gets slots in rotation — B's
// prompts do not wait for A's entire backlog.
func TestSchedulerFairShare(t *testing.T) {
	s := NewScheduler(nil, 1) // one slot: dispatch order is observable
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	step := make(chan struct{}, 64)
	client := &seqLLM{release: release, onCall: func(p string) {
		mu.Lock()
		order = append(order, p)
		mu.Unlock()
		step <- struct{}{}
	}}

	a := s.Tenant(context.Background(), "a")
	defer a.Close()
	b := s.Tenant(context.Background(), "b")
	defer b.Close()

	// A grabs the slot and queues a backlog; then B queues two prompts.
	var futs []*Future
	futs = append(futs, a.Submit(client, "a0", 0))
	<-step // a0 is running (holding the slot)
	for i := 1; i <= 4; i++ {
		futs = append(futs, a.Submit(client, fmt.Sprintf("a%d", i), 0))
	}
	futs = append(futs, b.Submit(client, "b0", 0))
	futs = append(futs, b.Submit(client, "b1", 0))
	close(release)
	for _, f := range futs {
		if _, _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	pos := map[string]int{}
	for i, p := range order {
		pos[p] = i
	}
	// Round-robin: b0 must run before A's backlog drains (strictly before
	// a3), and b1 before a4 — instead of FIFO [a0..a4, b0, b1].
	if pos["b0"] > pos["a3"] {
		t.Errorf("fair share violated: b0 ran at %d, after a3 at %d (order %v)", pos["b0"], pos["a3"], order)
	}
	if pos["b1"] > pos["a4"] {
		t.Errorf("fair share violated: b1 ran at %d, after a4 at %d (order %v)", pos["b1"], pos["a4"], order)
	}
}

// seqLLM records the order prompts reach the model; the first call holds
// its worker slot until released so tests can build a queue behind it.
type seqLLM struct {
	release chan struct{}
	once    sync.Once
	onCall  func(prompt string)
}

func (s *seqLLM) Name() string { return "seq" }
func (s *seqLLM) Complete(ctx context.Context, p string) (string, error) {
	s.onCall(p)
	first := false
	s.once.Do(func() { first = true })
	if first {
		select {
		case <-s.release:
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	return "ok", nil
}

// TestSchedulerTenantIsolationAccounting: two tenants sharing the pool
// account exactly their own prompts, and the aggregate makespan bound
// combines them (max critical path vs summed per-endpoint area).
func TestSchedulerTenantIsolationAccounting(t *testing.T) {
	client := &echoLLM{name: "m", answer: "w x y z"}
	s := NewScheduler(nil, 2)
	a := s.Tenant(context.Background(), "a")
	defer a.Close()
	b := s.Tenant(context.Background(), "b")
	defer b.Close()

	var futs []*Future
	for i := 0; i < 4; i++ {
		futs = append(futs, a.Submit(client, "shared pool prompt", 0))
	}
	for i := 0; i < 2; i++ {
		futs = append(futs, b.Submit(client, "shared pool prompt", 0))
	}
	for _, f := range futs {
		if _, _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	one := latOf("shared pool prompt", "w x y z")
	if got := a.AggregateWork(); got != 4*one {
		t.Errorf("tenant a work = %v, want %v", got, 4*one)
	}
	if got := b.AggregateWork(); got != 2*one {
		t.Errorf("tenant b work = %v, want %v", got, 2*one)
	}
	// Per-tenant makespans price each query as if it ran alone.
	if got := a.Makespan(); got != 4*one/2 {
		t.Errorf("tenant a makespan = %v, want %v", got, 4*one/2)
	}
	if got := b.Makespan(); got != one {
		t.Errorf("tenant b makespan = %v, want %v", got, one)
	}
	// The concurrent aggregate: 6 prompts of work on 2 workers.
	got := AggregateMakespan(2, []*TenantStats{a.Stats(), b.Stats()})
	if want := 6 * one / 2; got != want {
		t.Errorf("aggregate makespan = %v, want %v", got, want)
	}
}

func TestSchedulerErrorPropagates(t *testing.T) {
	client := &failingLLM{}
	tn := tenant(NewScheduler(nil, 2), t)
	if _, _, err := tn.Do(client, "boom", 0); err == nil || !strings.Contains(err.Error(), "model failure") {
		t.Errorf("err = %v, want model failure", err)
	}
}

type failingLLM struct{}

func (f *failingLLM) Name() string { return "failing" }
func (f *failingLLM) Complete(ctx context.Context, p string) (string, error) {
	return "", errors.New("model failure")
}

func TestSchedulerDefaultWorkers(t *testing.T) {
	s := NewScheduler(nil, 0)
	if s.Workers() != DefaultBatchWorkers {
		t.Errorf("workers = %d, want %d", s.Workers(), DefaultBatchWorkers)
	}
}

// TestSchedulerSubmitAfterCancelResolvesImmediately: a tenant whose
// context is already cancelled never blocks a submitter.
func TestSchedulerSubmitAfterCancelResolvesImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewScheduler(nil, 2)
	tn := s.Tenant(ctx, "dead")
	defer tn.Close()
	if _, _, err := tn.Do(&echoLLM{name: "m", answer: "x"}, "p", 0); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
