package llm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// scriptedClient fails each prompt a configured number of times before
// succeeding, recording every attempt it sees.
type scriptedClient struct {
	name     string
	failures int   // attempts 0..failures-1 fail
	failWith error // error returned by failing attempts

	mu       sync.Mutex
	attempts map[string]int
	calls    int
}

func newScripted(failures int, failWith error) *scriptedClient {
	return &scriptedClient{name: "scripted", failures: failures, failWith: failWith, attempts: map[string]int{}}
}

func (c *scriptedClient) Name() string { return c.name }

func (c *scriptedClient) Complete(ctx context.Context, prompt string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	c.mu.Lock()
	n := c.attempts[prompt]
	c.attempts[prompt] = n + 1
	c.calls++
	c.mu.Unlock()
	if n < c.failures {
		return "", c.failWith
	}
	return "echo: " + prompt, nil
}

func (c *scriptedClient) callCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// instantSleep is the test Sleep hook: no wall-clock, still honors ctx.
func instantSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func TestResilientRetriesTransient(t *testing.T) {
	inner := newScripted(2, Transient(errors.New("spurious 500")))
	rc := NewResilient(inner, ResilientConfig{MaxRetries: 3, Sleep: instantSleep})

	out, err := rc.Complete(context.Background(), "hello")
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if out != "echo: hello" {
		t.Fatalf("out = %q", out)
	}
	if got := inner.callCount(); got != 3 {
		t.Fatalf("inner calls = %d, want 3 (two failures + success)", got)
	}
	c := rc.Counters()
	if c.Retries != 2 || c.Faults != 2 {
		t.Fatalf("counters = %+v, want 2 retries / 2 faults", c)
	}
}

func TestResilientRetriesExhausted(t *testing.T) {
	inner := newScripted(10, Transient(errors.New("still down")))
	rc := NewResilient(inner, ResilientConfig{MaxRetries: 2, BreakerThreshold: -1, Sleep: instantSleep})

	_, err := rc.Complete(context.Background(), "hello")
	if err == nil {
		t.Fatal("want error after exhausted retries")
	}
	if Classify(err) != ClassTransient {
		t.Fatalf("class = %v, want transient", Classify(err))
	}
	if got := inner.callCount(); got != 3 {
		t.Fatalf("inner calls = %d, want 3 (initial + 2 retries)", got)
	}
	var ce *Error
	if !errors.As(err, &ce) || ce.Endpoint != "scripted" {
		t.Fatalf("error not stamped with endpoint: %v", err)
	}
}

func TestResilientPermanentNotRetried(t *testing.T) {
	inner := newScripted(10, Permanent(errors.New("bad request")))
	rc := NewResilient(inner, ResilientConfig{MaxRetries: 3, Sleep: instantSleep})

	_, err := rc.Complete(context.Background(), "hello")
	if err == nil || Classify(err) != ClassPermanent {
		t.Fatalf("err = %v, want permanent", err)
	}
	if got := inner.callCount(); got != 1 {
		t.Fatalf("inner calls = %d, want 1 (no retries on permanent)", got)
	}
}

func TestResilientCallerCancelNotRetried(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inner := newScripted(0, nil)
	rc := NewResilient(inner, ResilientConfig{Sleep: instantSleep})

	_, err := rc.Complete(ctx, "hello")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if Classify(err) != ClassCanceled {
		t.Fatalf("class = %v, want canceled", Classify(err))
	}
	if got := inner.callCount(); got != 0 {
		t.Fatalf("inner calls = %d, want 0", got)
	}
	if c := rc.Counters(); c.Faults != 0 || c.Retries != 0 {
		t.Fatalf("cancellation counted as fault: %+v", c)
	}
}

// TestResilientAttemptDeadline: a slow backend call that outlives the
// per-attempt timeout classifies as ClassDeadline and is retried, while
// the caller's context stays live.
func TestResilientAttemptDeadline(t *testing.T) {
	calls := 0
	slowThenFast := clientFunc("slow", func(ctx context.Context, prompt string) (string, error) {
		calls++
		if calls == 1 {
			<-ctx.Done() // hang until the attempt deadline fires
			return "", ctx.Err()
		}
		return "ok", nil
	})
	rc := NewResilient(slowThenFast, ResilientConfig{
		MaxRetries:    2,
		PromptTimeout: 5 * time.Millisecond,
		Sleep:         instantSleep,
	})
	out, err := rc.Complete(context.Background(), "hello")
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if out != "ok" || calls != 2 {
		t.Fatalf("out=%q calls=%d, want recovery on second attempt", out, calls)
	}
	if c := rc.Counters(); c.Faults != 1 || c.Retries != 1 {
		t.Fatalf("counters = %+v, want 1 fault / 1 retry", c)
	}
}

// clientFunc adapts a function to Client.
type clientFuncT struct {
	name string
	fn   func(ctx context.Context, prompt string) (string, error)
}

func clientFunc(name string, fn func(ctx context.Context, prompt string) (string, error)) Client {
	return &clientFuncT{name: name, fn: fn}
}

func (c *clientFuncT) Name() string { return c.name }
func (c *clientFuncT) Complete(ctx context.Context, prompt string) (string, error) {
	return c.fn(ctx, prompt)
}

func TestResilientValidateRejectsMalformed(t *testing.T) {
	calls := 0
	flaky := clientFunc("flaky", func(ctx context.Context, prompt string) (string, error) {
		calls++
		if calls == 1 {
			return "GARBAGE", nil
		}
		return "clean", nil
	})
	rc := NewResilient(flaky, ResilientConfig{
		MaxRetries: 2,
		Sleep:      instantSleep,
		Validate: func(prompt, completion string) error {
			if strings.Contains(completion, "GARBAGE") {
				return errors.New("malformed")
			}
			return nil
		},
	})
	out, err := rc.Complete(context.Background(), "hello")
	if err != nil || out != "clean" {
		t.Fatalf("out=%q err=%v, want clean recovery", out, err)
	}
	if c := rc.Counters(); c.Faults != 1 || c.Retries != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestResilientBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	inner := newScripted(1<<30, Transient(errors.New("down")))
	rc := NewResilient(inner, ResilientConfig{
		MaxRetries:       -1, // isolate the breaker from retry counting
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
		Sleep:            instantSleep,
		Now:              func() time.Time { return now },
	})

	// Three exhausted prompts open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := rc.Complete(context.Background(), fmt.Sprintf("p%d", i)); err == nil {
			t.Fatal("want failure")
		}
	}
	if rc.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", rc.State())
	}

	// While open: fast-fail without touching the backend.
	before := inner.callCount()
	_, err := rc.Complete(context.Background(), "shed")
	if Classify(err) != ClassBreakerOpen || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want breaker-open", err)
	}
	if inner.callCount() != before {
		t.Fatal("open breaker still touched the backend")
	}
	if c := rc.Counters(); c.BreakerFastFails != 1 || c.BreakerOpens != 1 {
		t.Fatalf("counters = %+v", c)
	}

	// Cooldown elapses; the backend heals; a half-open probe closes it.
	now = now.Add(2 * time.Minute)
	if rc.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open after cooldown", rc.State())
	}
	inner.failures = 0 // healed
	inner.attempts = map[string]int{}
	out, err := rc.Complete(context.Background(), "probe")
	if err != nil || out != "echo: probe" {
		t.Fatalf("probe: out=%q err=%v", out, err)
	}
	if rc.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed after successful probe", rc.State())
	}
}

func TestResilientBreakerFailedProbeReopens(t *testing.T) {
	now := time.Unix(0, 0)
	inner := newScripted(1<<30, Transient(errors.New("down")))
	rc := NewResilient(inner, ResilientConfig{
		MaxRetries:       -1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		Sleep:            instantSleep,
		Now:              func() time.Time { return now },
	})
	if _, err := rc.Complete(context.Background(), "p"); err == nil {
		t.Fatal("want failure")
	}
	if rc.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", rc.State())
	}
	now = now.Add(2 * time.Minute)
	if _, err := rc.Complete(context.Background(), "probe"); err == nil {
		t.Fatal("want probe failure")
	}
	if rc.State() != BreakerOpen {
		t.Fatalf("state = %v, want re-opened after failed probe", rc.State())
	}
	if c := rc.Counters(); c.BreakerOpens != 2 {
		t.Fatalf("opens = %d, want 2", c.BreakerOpens)
	}
}

// TestResilientBreakerProbeCancelReleasesSlot: a half-open probe whose
// caller cancels before the backend answers is inconclusive — it must
// hand the probe slot back so a later call can probe and heal the
// breaker, not leave r.probing set and shed every future call forever.
func TestResilientBreakerProbeCancelReleasesSlot(t *testing.T) {
	now := time.Unix(0, 0)
	inner := newScripted(1<<30, Transient(errors.New("down")))
	rc := NewResilient(inner, ResilientConfig{
		MaxRetries:       -1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		Sleep:            instantSleep,
		Now:              func() time.Time { return now },
	})
	if _, err := rc.Complete(context.Background(), "p"); err == nil {
		t.Fatal("want failure")
	}
	if rc.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", rc.State())
	}
	now = now.Add(2 * time.Minute)

	// The admitted probe is abandoned by its caller mid-flight.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rc.Complete(ctx, "probe"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rc.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want still half-open after inconclusive probe", rc.State())
	}

	// A later call must be admitted as a fresh probe — not shed with
	// ClassBreakerOpen by the leaked probing flag — and close the
	// breaker once the backend has healed.
	inner.failures = 0
	inner.attempts = map[string]int{}
	out, err := rc.Complete(context.Background(), "probe2")
	if err != nil || out != "echo: probe2" {
		t.Fatalf("probe after cancelled probe: out=%q err=%v", out, err)
	}
	if rc.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed after successful fresh probe", rc.State())
	}
}

// TestResilientBreakerProbeCancelMidBackoff: same leak, other early
// return — the probe fails transiently, then the caller's context ends
// while the retry is backing off. The probe slot must still be handed
// back.
func TestResilientBreakerProbeCancelMidBackoff(t *testing.T) {
	now := time.Unix(0, 0)
	var cancel context.CancelFunc
	flaky := clientFunc("flaky", func(ctx context.Context, prompt string) (string, error) {
		if cancel != nil {
			cancel() // the caller gives up while the retry backs off
		}
		return "", Transient(errors.New("blip"))
	})
	rc := NewResilient(flaky, ResilientConfig{
		MaxRetries:         2,
		BreakerThreshold:   1,
		BreakerCooldown:    time.Minute,
		RetryBudgetReserve: 100,
		Sleep:              instantSleep, // returns ctx.Err(): a cancelled ctx aborts the backoff
		Now:                func() time.Time { return now },
	})
	// Exhaust one prompt to open the breaker, then elapse the cooldown.
	if _, err := rc.Complete(context.Background(), "p"); err == nil {
		t.Fatal("want failure")
	}
	now = now.Add(2 * time.Minute)

	var ctx context.Context
	ctx, cancel = context.WithCancel(context.Background())
	if _, err := rc.Complete(ctx, "probe"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want cancellation surfaced from mid-backoff sleep", err)
	}
	if rc.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want still half-open", rc.State())
	}

	// The next call must reach the backend as a fresh probe; its own
	// (transient) failure proves admission, and must not classify as
	// breaker-shed.
	cancel = nil
	if _, err := rc.Complete(context.Background(), "probe2"); Classify(err) == ClassBreakerOpen {
		t.Fatalf("fresh probe shed by leaked probing flag: %v", err)
	}
}

func TestResilientRetryBudgetExhaustion(t *testing.T) {
	inner := newScripted(1<<30, Transient(errors.New("down")))
	rc := NewResilient(inner, ResilientConfig{
		MaxRetries:         10,
		BreakerThreshold:   -1,
		RetryBudgetRatio:   0.25,
		RetryBudgetReserve: 2,
		Sleep:              instantSleep,
	})
	// Reserve of 2 (+0.25 deposit) funds exactly two retries; the third
	// is denied and the failure classifies as budget exhaustion.
	_, err := rc.Complete(context.Background(), "p")
	if Classify(err) != ClassBudget || !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want retry-budget exhaustion", err)
	}
	if got := inner.callCount(); got != 3 {
		t.Fatalf("inner calls = %d, want 3 (initial + 2 funded retries)", got)
	}
	if c := rc.Counters(); c.BudgetDenied != 1 {
		t.Fatalf("counters = %+v, want 1 budget denial", c)
	}
}

// TestResilientRetryBudgetCapped: a long healthy run must not bank an
// unbounded token balance that could later fund a retry storm — the
// bucket is clamped at the cap.
func TestResilientRetryBudgetCapped(t *testing.T) {
	inner := newScripted(0, nil)
	rc := NewResilient(inner, ResilientConfig{
		RetryBudgetRatio:   1,
		RetryBudgetReserve: 2,
		RetryBudgetCap:     5,
		Sleep:              instantSleep,
	})
	for i := 0; i < 100; i++ {
		if _, err := rc.Complete(context.Background(), fmt.Sprintf("p%d", i)); err != nil {
			t.Fatalf("Complete: %v", err)
		}
	}
	if c := rc.Counters(); c.BudgetTokens != 5 {
		t.Fatalf("budget tokens = %v, want clamped at cap 5", c.BudgetTokens)
	}
	// A reserve above the cap keeps working: the cap is raised to it,
	// so e.g. the chaos bench's effectively-unlimited reserve survives
	// normalization.
	big := NewResilient(inner, ResilientConfig{RetryBudgetReserve: 1e6, Sleep: instantSleep})
	if got := big.Config().RetryBudgetCap; got != 1e6 {
		t.Fatalf("cap = %v, want raised to the 1e6 reserve", got)
	}
	if c := big.Counters(); c.BudgetTokens != 1e6 {
		t.Fatalf("seed = %v, want the full reserve", c.BudgetTokens)
	}
}

func TestResilientBackoffDeterministicAndBounded(t *testing.T) {
	rc := NewResilient(newScripted(0, nil), ResilientConfig{
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  time.Second,
	})
	for attempt := 0; attempt < 8; attempt++ {
		a := rc.backoff("some prompt", attempt)
		b := rc.backoff("some prompt", attempt)
		if a != b {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, a, b)
		}
		ceiling := 100 * time.Millisecond << uint(attempt)
		if ceiling > time.Second || ceiling <= 0 {
			ceiling = time.Second
		}
		if a < 0 || a >= ceiling {
			t.Fatalf("attempt %d: backoff %v outside [0, %v)", attempt, a, ceiling)
		}
	}
	if a, b := rc.backoff("prompt A", 1), rc.backoff("prompt B", 1); a == b {
		t.Fatalf("distinct prompts hashed to identical jitter %v — suspicious", a)
	}
}

// TestResilientRecorderAttribution: retries and faults land on the
// query recorder passed through the context, and recorded prompt counts
// stay identical to a fault-free run.
func TestResilientRecorderAttribution(t *testing.T) {
	inner := newScripted(2, Transient(errors.New("blip")))
	rc := NewResilient(inner, ResilientConfig{MaxRetries: 3, Sleep: instantSleep})
	rec := NewRecorder(rc)
	ctx := WithRecorder(context.Background(), rec)

	if _, err := rec.Complete(ctx, "hello world"); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	st := rec.Stats()
	if st.Prompts != 1 {
		t.Fatalf("Prompts = %d, want 1 — retries must not inflate prompt accounting", st.Prompts)
	}
	if st.Retries != 2 || st.Faults != 2 {
		t.Fatalf("stats = %+v, want 2 retries / 2 faults attributed", st)
	}
	if !strings.Contains(st.String(), "retries=2") {
		t.Fatalf("String() missing resilience counters: %s", st.String())
	}
	if (Stats{}).String() == st.String() {
		t.Fatal("sanity")
	}
	if strings.Contains((Stats{Prompts: 1}).String(), "retries=") {
		t.Fatal("fault-free String() must not grow new fields")
	}
}

// TestResilientSchedulerPath: a ResilientClient installed under a
// Recorder is traversed by the pipelined scheduler (which unwraps the
// recorder), so faults during pipelined execution are retried and the
// makespan matches the fault-free run.
func TestResilientSchedulerPath(t *testing.T) {
	run := func(failures int) (Stats, VTime) {
		inner := newScripted(failures, Transient(errors.New("blip")))
		rc := NewResilient(inner, ResilientConfig{MaxRetries: 3, RetryBudgetReserve: 100, Sleep: instantSleep})
		rec := NewRecorder(rc)
		sched := NewScheduler(nil, 4)
		ctx := WithRecorder(context.Background(), rec)
		tenant := sched.Tenant(ctx, "")
		defer tenant.Close()
		futs := make([]*Future, 6)
		for i := range futs {
			futs[i] = tenant.Submit(rec, fmt.Sprintf("prompt %d", i), 0)
		}
		for _, f := range futs {
			if _, _, err := f.Wait(); err != nil {
				t.Fatalf("Wait: %v", err)
			}
		}
		tenant.Quiesce()
		return rec.Stats(), tenant.Makespan()
	}

	cleanStats, cleanSpan := run(0)
	faultStats, faultSpan := run(2)
	if faultStats.Prompts != cleanStats.Prompts {
		t.Fatalf("prompts differ: %d vs %d", faultStats.Prompts, cleanStats.Prompts)
	}
	if faultSpan != cleanSpan {
		t.Fatalf("makespan differs under faults: %v vs %v", faultSpan, cleanSpan)
	}
	if faultStats.Retries != 12 { // 6 prompts × 2 retries
		t.Fatalf("retries = %d, want 12", faultStats.Retries)
	}
}

// TestResilientCacheNeverPoisoned: a prompt cache fed through a
// ResilientClient stores only validated, successful completions even
// when every first attempt fails.
func TestResilientCacheNeverPoisoned(t *testing.T) {
	calls := 0
	flaky := clientFunc("flaky", func(ctx context.Context, prompt string) (string, error) {
		calls++
		if calls%2 == 1 {
			return "GARBAGE", nil
		}
		return "good:" + prompt, nil
	})
	rc := NewResilient(flaky, ResilientConfig{
		MaxRetries: 3,
		Sleep:      instantSleep,
		Validate: func(prompt, completion string) error {
			if completion == "GARBAGE" {
				return errors.New("malformed")
			}
			return nil
		},
	})
	cache := NewCache(64)
	for i := 0; i < 4; i++ {
		out, _, err := cache.Fetch(context.Background(), rc.Name(), "p", func() (string, error) {
			return rc.Complete(context.Background(), "p")
		})
		if err != nil {
			t.Fatalf("Fetch %d: %v", i, err)
		}
		if out != "good:p" {
			t.Fatalf("Fetch %d: cache served %q — poisoned by a rejected completion", i, out)
		}
	}
	if calls != 2 {
		t.Fatalf("backend calls = %d, want 2 (one garbage + one good, then cache hits)", calls)
	}
}
