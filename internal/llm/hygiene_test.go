package llm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitDrained polls cond for a few seconds — plenty for goroutines or
// slots that are being released, short enough to fail fast when leaked.
func waitDrained(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s did not drain", what)
}

// goroutinesAtMost waits for the goroutine count to return to the
// baseline (with a little slack for runtime housekeeping).
func goroutinesAtMost(t *testing.T, baseline int) {
	t.Helper()
	waitDrained(t, fmt.Sprintf("goroutines (baseline %d, now %d)", baseline, runtime.NumGoroutine()),
		func() bool { return runtime.NumGoroutine() <= baseline+2 })
}

// TestSchedulerSlotsReleasedOnFailure: a tenant whose prompts all fail
// must release every worker slot and queue spot; the scheduler keeps
// serving other tenants at full budget afterwards.
func TestSchedulerSlotsReleasedOnFailure(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := NewScheduler(nil, 2)
	boom := errors.New("backend down")
	bad := clientFunc("ep", func(ctx context.Context, prompt string) (string, error) {
		return "", Transient(boom)
	})

	tenant := s.Tenant(context.Background(), "doomed")
	var futures []*Future
	for i := 0; i < 16; i++ {
		futures = append(futures, tenant.Submit(bad, fmt.Sprintf("p%d", i), 0))
	}
	for _, f := range futures {
		if _, _, err := f.Wait(); !errors.Is(err, boom) {
			t.Fatalf("future error = %v, want %v", err, boom)
		}
	}
	tenant.Close()
	waitDrained(t, "scheduler slots", func() bool { return s.Busy() == 0 && s.Queued() == 0 })
	goroutinesAtMost(t, baseline)

	// The budget is fully available to the next tenant.
	good := clientFunc("ep", func(ctx context.Context, prompt string) (string, error) {
		return "ok:" + prompt, nil
	})
	next := s.Tenant(context.Background(), "healthy")
	defer next.Close()
	if out, _, err := next.Do(good, "hello", 0); err != nil || out != "ok:hello" {
		t.Fatalf("post-failure query: %q, %v", out, err)
	}
}

// TestSchedulerSlotsReleasedOnCancel: cancelling a tenant mid-flight —
// some prompts running, many queued — must fail its futures, sweep its
// queue, release every slot, and leave no goroutines behind.
func TestSchedulerSlotsReleasedOnCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := NewScheduler(nil, 2)
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	gated := clientFunc("ep", func(ctx context.Context, prompt string) (string, error) {
		started <- struct{}{}
		select {
		case <-release:
			return "late", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	})

	ctx, cancel := context.WithCancel(context.Background())
	tenant := s.Tenant(ctx, "cancelled")
	var futures []*Future
	for i := 0; i < 16; i++ {
		futures = append(futures, tenant.Submit(gated, fmt.Sprintf("p%d", i), 0))
	}
	<-started // at least one prompt is mid-flight
	cancel()
	for _, f := range futures {
		if _, _, err := f.Wait(); !errors.Is(err, context.Canceled) {
			t.Fatalf("future error = %v, want context.Canceled", err)
		}
	}
	tenant.Close()
	close(release)
	waitDrained(t, "scheduler slots", func() bool { return s.Busy() == 0 && s.Queued() == 0 })
	goroutinesAtMost(t, baseline)
}

// TestBatchGoroutineHygieneOnFailure: a batch aborted by one failing
// prompt must cancel its siblings and leave no worker goroutines or
// singleflight leaders behind, with or without the cache.
func TestBatchGoroutineHygieneOnFailure(t *testing.T) {
	baseline := runtime.NumGoroutine()
	boom := errors.New("poof")
	var calls sync.Map
	flaky := clientFunc("ep", func(ctx context.Context, prompt string) (string, error) {
		if prompt == "p3" {
			return "", Permanent(boom)
		}
		select { // siblings hang until the batch cancels them
		case <-ctx.Done():
			return "", ctx.Err()
		case <-time.After(5 * time.Second):
			calls.Store(prompt, true)
			return "slow", nil
		}
	})
	prompts := make([]string, 16)
	for i := range prompts {
		prompts[i] = fmt.Sprintf("p%d", i)
	}

	if _, err := CompleteBatch(context.Background(), flaky, prompts, 4); !errors.Is(err, boom) {
		t.Fatalf("CompleteBatch error = %v, want %v", err, boom)
	}
	goroutinesAtMost(t, baseline)

	if _, err := CompleteBatchCached(context.Background(), flaky, NewCache(64), prompts, 4); !errors.Is(err, boom) {
		t.Fatalf("CompleteBatchCached error = %v, want %v", err, boom)
	}
	goroutinesAtMost(t, baseline)
}
