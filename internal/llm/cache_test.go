package llm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("m", "p"); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put("m", "p", "out")
	if got, ok := c.Get("m", "p"); !ok || got != "out" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// The same prompt under another model is a different entry.
	if _, ok := c.Get("other", "p"); ok {
		t.Error("model name must be part of the key")
	}
	c.Put("m", "p", "updated")
	if got, _ := c.Get("m", "p"); got != "updated" {
		t.Errorf("Put must overwrite, got %q", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("m", "a", "1")
	c.Put("m", "b", "2")
	// Touch a so b becomes the least recently used.
	if _, ok := c.Get("m", "a"); !ok {
		t.Fatal("a must be resident")
	}
	c.Put("m", "c", "3")
	if _, ok := c.Get("m", "b"); ok {
		t.Error("b was least recently used and must be evicted")
	}
	if _, ok := c.Get("m", "a"); !ok {
		t.Error("a was touched and must survive")
	}
	if _, ok := c.Get("m", "c"); !ok {
		t.Error("c was just inserted and must be resident")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, capacity is 2", c.Len())
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < DefaultCacheSize+10; i++ {
		c.Put("m", fmt.Sprintf("p%d", i), "out")
	}
	if c.Len() != DefaultCacheSize {
		t.Errorf("Len = %d, want %d", c.Len(), DefaultCacheSize)
	}
}

// TestCacheSingleflight: concurrent identical prompts must produce exactly
// one client call; everyone gets the same answer. Run with -race.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8)
	var calls int32
	gate := make(chan struct{})

	const goroutines = 16
	var wg sync.WaitGroup
	outs := make([]string, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g], _, errs[g] = c.Fetch(context.Background(), "m", "same prompt", func() (string, error) {
				<-gate // hold the flight open until all callers joined
				atomic.AddInt32(&calls, 1)
				return "answer", nil
			})
		}(g)
	}
	close(gate)
	wg.Wait()

	if calls != 1 {
		t.Errorf("client called %d times, singleflight requires exactly 1", calls)
	}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil || outs[g] != "answer" {
			t.Fatalf("goroutine %d: %q, %v", g, outs[g], errs[g])
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != goroutines-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits", s, goroutines-1)
	}
}

func TestCacheFetchStatsCounters(t *testing.T) {
	c := NewCache(8)
	fetch := func(prompt string) {
		if _, _, err := c.Fetch(context.Background(), "m", prompt, func() (string, error) {
			return "out", nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	fetch("a") // miss
	fetch("a") // hit
	fetch("a") // hit
	fetch("b") // miss
	s := c.Stats()
	if s.Misses != 2 || s.Hits != 2 || s.Entries != 2 {
		t.Errorf("stats = %+v, want 2/2/2", s)
	}
}

func TestCacheFetchDoesNotCacheErrors(t *testing.T) {
	c := NewCache(8)
	boom := errors.New("boom")
	if _, issued, err := c.Fetch(context.Background(), "m", "p", func() (string, error) {
		return "", boom
	}); !issued || !errors.Is(err, boom) {
		t.Fatalf("issued=%v err=%v", issued, err)
	}
	if c.Len() != 0 {
		t.Error("errors must not be cached")
	}
	// The next fetch must retry the model.
	out, issued, err := c.Fetch(context.Background(), "m", "p", func() (string, error) {
		return "recovered", nil
	})
	if err != nil || !issued || out != "recovered" {
		t.Fatalf("retry = %q, issued=%v, %v", out, issued, err)
	}
}

// TestCacheFetchRetriesAfterLeaderFailure: a joiner whose leader fails
// (e.g. the leader's own query was canceled) must not inherit that
// error — it retries and gets a real answer.
func TestCacheFetchRetriesAfterLeaderFailure(t *testing.T) {
	c := NewCache(8)
	leaderStarted := make(chan struct{})
	release := make(chan struct{})

	go func() {
		c.Fetch(context.Background(), "m", "p", func() (string, error) {
			close(leaderStarted)
			<-release
			return "", context.Canceled // the leader's query went away
		})
	}()
	<-leaderStarted

	done := make(chan struct{})
	var out string
	var err error
	go func() {
		defer close(done)
		out, _, err = c.Fetch(context.Background(), "m", "p", func() (string, error) {
			return "answer", nil
		})
	}()
	close(release)
	<-done

	if err != nil {
		t.Fatalf("joiner inherited the leader's failure: %v", err)
	}
	if out != "answer" {
		t.Fatalf("joiner got %q, want its own retried answer", out)
	}
}

// TestCompleteBatchCanceledContext: a canceled parent context must yield
// an error, never a silently partial result slice.
func TestCompleteBatchCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prompts := make([]string, 10)
	for i := range prompts {
		prompts[i] = fmt.Sprintf("p%d", i)
	}
	if out, err := CompleteBatch(ctx, &echoClient{}, prompts, 2); err == nil {
		t.Errorf("canceled batch returned %d outputs with nil error", len(out))
	}
	if out, err := CompleteBatchCached(ctx, &echoClient{}, NewCache(8), prompts, 2); err == nil {
		t.Errorf("canceled cached batch returned %d outputs with nil error", len(out))
	}
}

func TestCompleteCachedThroughRecorder(t *testing.T) {
	client := &echoClient{}
	rec := NewRecorder(client)
	cache := NewCache(8)
	ctx := context.Background()

	first, err := CompleteCached(ctx, rec, cache, "hello world")
	if err != nil {
		t.Fatal(err)
	}
	second, err := CompleteCached(ctx, rec, cache, "hello world")
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("cached answer diverged: %q vs %q", first, second)
	}
	if client.calls != 1 {
		t.Errorf("client called %d times, want 1", client.calls)
	}
	s := rec.Stats()
	if s.Prompts != 1 || s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
	// The hit must cost zero simulated seconds: total latency equals one
	// uncached call's.
	if want := promptLatency(2, 3); s.SimulatedLatency != want {
		t.Errorf("latency = %v, want the single call's %v", s.SimulatedLatency, want)
	}
}

func TestCompleteCachedNilCache(t *testing.T) {
	client := &echoClient{}
	out, err := CompleteCached(context.Background(), client, nil, "p")
	if err != nil || !strings.HasPrefix(out, "echo:") {
		t.Fatalf("nil cache must pass through: %q, %v", out, err)
	}
	if client.calls != 1 {
		t.Errorf("calls = %d", client.calls)
	}
}

// TestCompleteBatchCachedDedup: a batch of N prompts with K distinct
// strings issues exactly K client calls, outputs stay positionally
// aligned, and the recorder charges latency for K prompts only.
func TestCompleteBatchCachedDedup(t *testing.T) {
	client := &echoClient{}
	rec := NewRecorder(client)
	cache := NewCache(64)

	prompts := []string{"a", "b", "a", "c", "b", "a", "a", "c"}
	out, err := CompleteBatchCached(context.Background(), rec, cache, prompts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range prompts {
		if out[i] != "echo: "+p {
			t.Fatalf("output %d misaligned: %q", i, out[i])
		}
	}
	if client.calls != 3 {
		t.Errorf("client called %d times, want 3 distinct prompts", client.calls)
	}
	s := rec.Stats()
	if s.Prompts != 3 || s.CacheMisses != 3 || s.CacheHits != len(prompts)-3 {
		t.Errorf("stats = %+v", s)
	}
}

// TestCompleteBatchCachedCrossBatch: a second batch over prompts the cache
// already holds issues zero client calls and zero simulated latency.
func TestCompleteBatchCachedCrossBatch(t *testing.T) {
	client := &echoClient{}
	rec := NewRecorder(client)
	cache := NewCache(64)
	ctx := context.Background()

	prompts := []string{"a", "b", "c"}
	if _, err := CompleteBatchCached(ctx, rec, cache, prompts, 2); err != nil {
		t.Fatal(err)
	}
	warm := rec.Stats()
	if _, err := CompleteBatchCached(ctx, rec, cache, prompts, 2); err != nil {
		t.Fatal(err)
	}
	if client.calls != 3 {
		t.Errorf("second batch re-issued prompts: %d calls", client.calls)
	}
	s := rec.Stats()
	if s.Prompts != warm.Prompts {
		t.Errorf("cached batch must not issue prompts: %d vs %d", s.Prompts, warm.Prompts)
	}
	if s.SimulatedLatency != warm.SimulatedLatency {
		t.Errorf("cached batch must cost zero simulated time: %v vs %v", s.SimulatedLatency, warm.SimulatedLatency)
	}
	if s.CacheHits != 3 {
		t.Errorf("cache hits = %d, want 3", s.CacheHits)
	}
}

// TestCompleteBatchCachedConcurrent hammers one cache from many batches
// with overlapping prompt sets; under -race this exercises the
// singleflight and LRU paths concurrently.
func TestCompleteBatchCachedConcurrent(t *testing.T) {
	client := &echoClient{}
	cache := NewCache(128)
	ctx := context.Background()

	const batches = 8
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			prompts := make([]string, 20)
			for i := range prompts {
				prompts[i] = fmt.Sprintf("p%02d", (b+i)%10)
			}
			out, err := CompleteBatchCached(ctx, client, cache, prompts, 4)
			if err != nil {
				t.Error(err)
				return
			}
			for i, o := range out {
				if o != "echo: "+prompts[i] {
					t.Errorf("batch %d output %d misaligned: %q", b, i, o)
					return
				}
			}
		}(b)
	}
	wg.Wait()

	// Ten distinct prompts exist in total; every call past the first ten
	// must have been served by the cache or a shared flight.
	if client.calls != 10 {
		t.Errorf("client called %d times, want 10 distinct prompts", client.calls)
	}
}

// failingClient fails prompts containing "fail", tagging the error with
// the prompt, after waiting for `ready` so concurrent failures overlap.
type failingClient struct {
	ready *sync.WaitGroup
}

func (f *failingClient) Name() string { return "failing" }

func (f *failingClient) Complete(ctx context.Context, p string) (string, error) {
	if f.ready != nil {
		f.ready.Done()
		f.ready.Wait()
	}
	if strings.Contains(p, "fail") {
		return "", fmt.Errorf("model refused %s", p)
	}
	return "ok", nil
}

// TestCompleteBatchJoinsDistinctErrors: when several prompts fail
// concurrently, the returned error reports each distinct failure instead
// of an arbitrary single one.
func TestCompleteBatchJoinsDistinctErrors(t *testing.T) {
	var ready sync.WaitGroup
	ready.Add(2)
	client := &failingClient{ready: &ready}
	_, err := CompleteBatch(context.Background(), client, []string{"fail-one", "fail-two"}, 2)
	if err == nil {
		t.Fatal("batch must fail")
	}
	for _, want := range []string{"model refused fail-one", "model refused fail-two"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

func TestJoinDistinct(t *testing.T) {
	a, b := errors.New("a"), errors.New("b")
	if err := joinDistinct([]error{nil, nil}); err != nil {
		t.Errorf("all-nil must join to nil, got %v", err)
	}
	err := joinDistinct([]error{nil, a, errors.New("a"), b})
	if err == nil || !errors.Is(err, a) || !errors.Is(err, b) {
		t.Fatalf("join = %v", err)
	}
	if strings.Count(err.Error(), "a") != 1 {
		t.Errorf("duplicate messages must collapse: %v", err)
	}
}
