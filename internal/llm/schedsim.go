package llm

import (
	"container/heap"
	"sort"
)

// This file is a deterministic discrete-event simulator for the
// scheduler's dispatch policies. The live scheduler's dispatch order
// under contention depends on goroutine interleaving, so "interactive
// p99 under mixed-class load" cannot be measured reproducibly from a
// real run. The simulator closes that gap: it drives the *same*
// endpoint/band dispatch code the live scheduler runs (strict class
// priority + deficit round-robin), but with a virtual clock and a
// virtual worker pool, so per-query latency under contention is a pure
// function of the workload — byte-identical across runs and machines,
// which is what lets BENCH_sched.json be a committed, diffable
// artifact. The round-robin baseline reimplements the pre-deficit
// dispatch (one job per tenant per rotation visit, blind to class and
// prompt cost) for the A/B comparison.

// SimPolicy selects the dispatch policy of one simulation arm.
type SimPolicy int

const (
	// PolicyRoundRobin is the legacy baseline: per-prompt round-robin
	// over tenants, one band, no classes, no token accounting.
	PolicyRoundRobin SimPolicy = iota
	// PolicyDeficitWeighted is the shipped policy: strict-priority
	// class bands drained by token-denominated deficit round-robin —
	// the very same band code the live scheduler dispatches with.
	PolicyDeficitWeighted
)

func (p SimPolicy) String() string {
	if p == PolicyDeficitWeighted {
		return "deficit-weighted"
	}
	return "round-robin"
}

// SimTenant describes one simulated query's prompt stream.
type SimTenant struct {
	Tag     string
	Class   AdmissionClass
	Weight  int
	Arrival VTime // when the tenant's first prompt becomes ready
	// Costs are the prompt token counts, in issue order. When Chain is
	// set each prompt becomes ready only when its predecessor completes
	// (a query's dependent waves); otherwise all prompts are ready at
	// Arrival (a batch scan's independent fan-out).
	Costs []int
	Chain bool
}

// SimTenantResult is one tenant's simulated outcome.
type SimTenantResult struct {
	Tag          string `json:"tag"`
	Class        string `json:"class"`
	Arrival      VTime  `json:"arrival_ns"`
	FirstDone    VTime  `json:"first_done_ns"`
	LastDone     VTime  `json:"last_done_ns"`
	FirstLatency VTime  `json:"first_latency_ns"` // FirstDone - Arrival
	Latency      VTime  `json:"latency_ns"`       // LastDone - Arrival
}

// SimResult is the outcome of one simulation arm.
type SimResult struct {
	Policy   string            `json:"policy"`
	Workers  int               `json:"workers"`
	Tenants  []SimTenantResult `json:"tenants"`
	Makespan VTime             `json:"makespan_ns"` // last completion
}

// simCompletionTokens fixes every simulated answer's token count so
// service time is a function of the prompt cost alone.
const simCompletionTokens = 8

// simService is one simulated prompt's slot-occupancy time.
func simService(cost int) VTime {
	return promptLatency(cost, simCompletionTokens)
}

// SimService exposes the simulator's service-time model: what one
// prompt of the given token cost occupies a virtual slot for. The sched
// benchmark uses it to express the starvation bound ("an interactive
// arrival waits at most one prompt's service time") in the same units
// the simulation runs in.
func SimService(cost int) VTime { return simService(cost) }

// simDispatcher abstracts the policy under test: jobs enter when ready,
// and dispatch picks which queued job gets a freed virtual slot.
type simDispatcher interface {
	enqueue(*job)
	dispatch() *job
}

// drrSim dispatches through a real scheduler endpoint — the shipped
// strict-priority + deficit-round-robin code path, unmodified.
type drrSim struct{ ep *endpoint }

func (d *drrSim) enqueue(j *job) { d.ep.bands[j.t.class].enqueue(j) }
func (d *drrSim) dispatch() *job { return d.ep.dispatchLocked() }

// rrSim reimplements the pre-deficit dispatch: tenants with queued jobs
// in one rotation, one job popped per visit, FIFO within a tenant.
type rrSim struct {
	rr   []*Tenant
	next int
	q    map[*Tenant][]*job
}

func (r *rrSim) enqueue(j *job) {
	if _, ok := r.q[j.t]; !ok {
		r.rr = append(r.rr, j.t)
	}
	r.q[j.t] = append(r.q[j.t], j)
}

func (r *rrSim) dispatch() *job {
	if len(r.rr) == 0 {
		return nil
	}
	if r.next >= len(r.rr) {
		r.next = 0
	}
	t := r.rr[r.next]
	queue := r.q[t]
	j := queue[0]
	if len(queue) == 1 {
		delete(r.q, t)
		r.rr = append(r.rr[:r.next], r.rr[r.next+1:]...)
	} else {
		r.q[t] = queue[1:]
		r.next++
	}
	return j
}

// simEvent is one virtual-clock event: a prompt becoming ready
// (kindReady) or a running prompt completing (kindDone). seq breaks
// same-instant ties in push order, keeping the event order — and hence
// the whole simulation — deterministic.
type simEvent struct {
	at     VTime
	seq    int
	kind   int // kindReady | kindDone
	tenant int
	idx    int // prompt index within the tenant
}

const (
	kindReady = iota
	kindDone
)

type simHeap []simEvent

func (h simHeap) Len() int { return len(h) }
func (h simHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h simHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *simHeap) Push(x any)   { *h = append(*h, x.(simEvent)) }
func (h *simHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Simulate runs one workload against one policy on a virtual pool of
// workers slots and returns per-tenant latencies. Purely arithmetic: no
// goroutines, no wall clock, no randomness — identical inputs give
// identical outputs on every platform.
func Simulate(workers int, policy SimPolicy, tenants []SimTenant) SimResult {
	if workers < 1 {
		workers = DefaultBatchWorkers
	}
	var disp simDispatcher
	if policy == PolicyDeficitWeighted {
		disp = &drrSim{ep: newEndpoint()}
	} else {
		disp = &rrSim{q: map[*Tenant][]*job{}}
	}

	// Dummy tenants carry class/weight into the shared dispatch code;
	// jobs carry the token cost. meta maps a dispatched job back to its
	// (tenant, prompt) coordinates.
	type coord struct{ tenant, idx int }
	meta := map[*job]coord{}
	dummies := make([]*Tenant, len(tenants))
	for i, st := range tenants {
		w := st.Weight
		if w < 1 {
			w = 1
		}
		cls := st.Class
		if cls >= nClasses {
			cls = ClassInteractive
		}
		dummies[i] = &Tenant{tag: st.Tag, class: cls, weight: int64(w)}
	}

	results := make([]SimTenantResult, len(tenants))
	for i, st := range tenants {
		results[i] = SimTenantResult{Tag: st.Tag, Class: dummies[i].class.String(), Arrival: st.Arrival, FirstDone: -1}
	}

	events := &simHeap{}
	seq := 0
	push := func(at VTime, kind, tenant, idx int) {
		heap.Push(events, simEvent{at: at, seq: seq, kind: kind, tenant: tenant, idx: idx})
		seq++
	}
	for i, st := range tenants {
		if len(st.Costs) == 0 {
			continue
		}
		if st.Chain {
			push(st.Arrival, kindReady, i, 0)
		} else {
			for idx := range st.Costs {
				push(st.Arrival, kindReady, i, idx)
			}
		}
	}

	free := workers
	now := VTime(0)
	var makespan VTime
	for events.Len() > 0 {
		e := heap.Pop(events).(simEvent)
		now = e.at
		switch e.kind {
		case kindReady:
			j := &job{t: dummies[e.tenant], cost: int64(max(1, tenants[e.tenant].Costs[e.idx]))}
			meta[j] = coord{e.tenant, e.idx}
			disp.enqueue(j)
		case kindDone:
			free++
			r := &results[e.tenant]
			if r.FirstDone < 0 {
				r.FirstDone = now
			}
			if now > r.LastDone {
				r.LastDone = now
			}
			if now > makespan {
				makespan = now
			}
			st := tenants[e.tenant]
			if st.Chain && e.idx+1 < len(st.Costs) {
				push(now, kindReady, e.tenant, e.idx+1)
			}
		}
		// Work-conserving: hand every free slot to the policy before the
		// clock moves again.
		for free > 0 {
			j := disp.dispatch()
			if j == nil {
				break
			}
			free--
			c := meta[j]
			delete(meta, j)
			push(now+simService(tenants[c.tenant].Costs[c.idx]), kindDone, c.tenant, c.idx)
		}
	}

	for i := range results {
		r := &results[i]
		if r.FirstDone < 0 { // tenant had no prompts
			r.FirstDone, r.LastDone = r.Arrival, r.Arrival
		}
		r.FirstLatency = r.FirstDone - r.Arrival
		r.Latency = r.LastDone - r.Arrival
	}
	return SimResult{Policy: policy.String(), Workers: workers, Tenants: results, Makespan: makespan}
}

// Percentile returns the p-th percentile (0 < p <= 100) of ds by the
// nearest-rank method — deterministic, no interpolation.
func Percentile(ds []VTime, p float64) VTime {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]VTime(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(float64(len(sorted))*p/100 + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
