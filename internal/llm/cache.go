package llm

import (
	"container/list"
	"context"
	"sync"
)

// DefaultCacheSize is the fallback capacity (in completions) of a prompt
// cache built with size 0.
const DefaultCacheSize = 4096

// cacheKey identifies one completion: the same prompt sent to two models
// is two entries.
type cacheKey struct {
	model  string
	prompt string
}

// flight is one in-flight completion shared by every concurrent caller of
// the same (model, prompt); done is closed once out/err are set.
type flight struct {
	done chan struct{}
	out  string
	err  error
}

// cacheEntry is one resident completion, stored inside the LRU list.
type cacheEntry struct {
	key cacheKey
	out string
}

// CacheStats is a snapshot of a cache's lifetime counters.
type CacheStats struct {
	Hits    int // served from memory or from a concurrent in-flight call
	Misses  int // required a model call
	Entries int // completions currently resident
}

// Cache is a concurrency-safe LRU of prompt completions keyed by
// (model name, prompt), with a singleflight layer that collapses
// concurrent identical prompts into one in-flight model call. An engine
// typically shares one Cache across all its queries, so repeated traffic
// reuses completions across operators and across queries.
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[cacheKey]*list.Element
	order    *list.List // front = most recently used
	flights  map[cacheKey]*flight
	hits     int
	misses   int
}

// NewCache builds a cache retaining at most capacity completions
// (0 or negative means DefaultCacheSize).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		capacity: capacity,
		entries:  map[cacheKey]*list.Element{},
		order:    list.New(),
		flights:  map[cacheKey]*flight{},
	}
}

// Get returns the cached completion for (model, prompt), bumping its
// recency. It does not touch the hit/miss counters; Fetch does.
func (c *Cache) Get(model, prompt string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[cacheKey{model, prompt}]
	if !ok {
		return "", false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

// Put stores a completion, evicting the least recently used entry when
// over capacity.
func (c *Cache) Put(model, prompt, out string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(cacheKey{model, prompt}, out)
}

func (c *Cache) insertLocked(key cacheKey, out string) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).out = out
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, out: out})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the number of resident completions.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns a snapshot of the lifetime counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.order.Len()}
}

// Fetch returns the completion for (model, prompt): from the cache when
// resident, from a concurrent identical in-flight call when one exists,
// otherwise by invoking complete and storing its result. The returned
// bool reports whether this caller issued the model call itself — false
// means the answer cost nothing. Errors are never cached, and a joiner
// whose leader failed retries rather than inheriting the failure — the
// leader's error may be its own cancellation, which must not spuriously
// fail an unrelated query sharing the cache.
func (c *Cache) Fetch(ctx context.Context, model, prompt string, complete func() (string, error)) (string, bool, error) {
	key := cacheKey{model, prompt}
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			c.hits++
			out := el.Value.(*cacheEntry).out
			c.mu.Unlock()
			return out, false, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return "", false, ctx.Err()
			}
			if f.err == nil {
				c.mu.Lock()
				c.hits++
				c.mu.Unlock()
				return f.out, false, nil
			}
			if err := ctx.Err(); err != nil {
				return "", false, err
			}
			continue // leader failed; next round joins a fresh flight or leads
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.misses++
		c.mu.Unlock()

		f.out, f.err = complete()
		close(f.done)

		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil {
			c.insertLocked(key, f.out)
		}
		c.mu.Unlock()
		return f.out, true, f.err
	}
}

// CompleteCached issues one prompt through client, consulting cache when
// non-nil: resident completions return immediately (recorded as cache
// hits with zero simulated latency), concurrent identical prompts share
// one model call. With a nil cache it is exactly client.Complete.
func CompleteCached(ctx context.Context, client Client, cache *Cache, prompt string) (string, error) {
	if cache == nil {
		return client.Complete(ctx, prompt)
	}
	rec, _ := client.(*Recorder)
	out, issued, err := cache.Fetch(ctx, client.Name(), prompt, func() (string, error) {
		// The leader goes through the full client (a Recorder accounts the
		// real call normally); joiners and hits bypass it entirely.
		return client.Complete(ctx, prompt)
	})
	if err != nil {
		return "", err
	}
	if rec != nil {
		if issued {
			rec.recordCache(0, 1)
		} else {
			rec.recordCache(1, 0)
		}
	}
	return out, nil
}
