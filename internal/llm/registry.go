package llm

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Role classifies a prompt by the operator that issues it — the unit the
// routing policy works in. Key scans and boolean filters are cheap,
// high-volume prompts a small model answers adequately; attribute
// fetches and verification carry the result's actual content and want
// the strong model. A router maps each role (plus table binding and
// session override) to a named backend.
type Role string

const (
	// RoleKeyscan is the table scan's list prompts, including the
	// more-results continuation loop.
	RoleKeyscan Role = "keyscan"
	// RoleFetch is the per-row attribute fetch prompts.
	RoleFetch Role = "fetch"
	// RoleFilter is the per-row boolean judgment prompts of LLM filters.
	RoleFilter Role = "filter"
	// RoleVerify is the second-model double-check of fetched values.
	RoleVerify Role = "verify"
)

// Roles lists every prompt role, in a fixed order.
var Roles = []Role{RoleKeyscan, RoleFetch, RoleFilter, RoleVerify}

// ParseRole maps the wire spelling of a prompt role to its value.
func ParseRole(s string) (Role, error) {
	switch Role(s) {
	case RoleKeyscan, RoleFetch, RoleFilter, RoleVerify:
		return Role(s), nil
	}
	return "", fmt.Errorf("unknown prompt role %q (want keyscan, fetch, filter or verify)", s)
}

// BackendSpec declares one named backend for a Registry.
type BackendSpec struct {
	// Name is the backend's registry identity — the endpoint name the
	// scheduler budgets under, errors are attributed to, and routes and
	// fallback chains refer to. Distinct backends may share one
	// underlying model under different names.
	Name string
	// Client is the raw transport (a simllm model, an injector-wrapped
	// model, a real API client). The registry wraps it via its wrap hook
	// (normally in a ResilientClient with an independent breaker and
	// retry budget).
	Client Client
	// Workers overrides the scheduler's per-endpoint worker budget for
	// this backend (0 means the scheduler default).
	Workers int
	// CostWeight is the backend's relative price per prompt (1.0 when
	// zero). The optimizer prices plans in prompt-count × weight, so a
	// plan that keeps its volume on a cheap backend wins.
	CostWeight float64
	// SpeedFactor scales the backend's estimated per-prompt latency in
	// plan pricing (1.0 when zero; below 1 is faster).
	SpeedFactor float64
	// Fallback names the backends to fail over to, in order, when a call
	// on this backend is shed or exhausted.
	Fallback []string
}

// Backend is one named model endpoint in a Registry: the (normally
// resilient) transport plus the routing metadata and lifetime prompt
// accounting. It implements Client under its registry name, so the
// scheduler's per-endpoint pools, the prompt cache's keying and error
// attribution all follow the backend identity.
type Backend struct {
	name     string
	client   Client // the wrapped transport calls traverse
	raw      Client // the declared client, before wrapping
	workers  int
	cost     float64
	speed    float64
	fallback []string
	prompts  atomic.Int64
}

// Name implements Client: the backend's registry identity.
func (b *Backend) Name() string { return b.name }

// Complete implements Client, counting completed calls for the
// per-backend stats surface.
func (b *Backend) Complete(ctx context.Context, prompt string) (string, error) {
	out, err := b.client.Complete(ctx, prompt)
	if err != nil {
		return "", err
	}
	b.prompts.Add(1)
	return out, nil
}

// Transport returns the wrapped client calls traverse (normally a
// *ResilientClient).
func (b *Backend) Transport() Client { return b.client }

// Raw returns the declared client, before resilience wrapping.
func (b *Backend) Raw() Client { return b.raw }

// Resilience returns the backend's resilient transport, when it has one.
func (b *Backend) Resilience() (*ResilientClient, bool) {
	rc, ok := b.client.(*ResilientClient)
	return rc, ok
}

// Workers reports the backend's per-endpoint worker override (0 = the
// scheduler default).
func (b *Backend) Workers() int { return b.workers }

// CostWeight reports the backend's relative price per prompt.
func (b *Backend) CostWeight() float64 { return b.cost }

// SpeedFactor reports the backend's latency multiplier in plan pricing.
func (b *Backend) SpeedFactor() float64 { return b.speed }

// Fallback reports the backend's failover chain, in order.
func (b *Backend) Fallback() []string { return append([]string(nil), b.fallback...) }

// Prompts reports the lifetime count of completed calls.
func (b *Backend) Prompts() int64 { return b.prompts.Load() }

// Registry is the named-backend set one runtime owns: declared backends
// in declaration order, a default, per-role routes, and the memoized
// adoption of ad-hoc clients (session verifiers) into backends with
// their own independent resilience — the registry subsumes the old
// per-runtime verifier-wrapper cache.
type Registry struct {
	// wrap turns a declared raw client into the transport calls traverse
	// (normally a ResilientClient named after the backend). Nil means no
	// wrapping.
	wrap func(inner Client, endpoint string) Client

	mu          sync.Mutex
	order       []*Backend
	byName      map[string]*Backend
	defaultName string
	routes      map[Role]string
	adopted     map[Client]*Backend
	failovers   atomic.Int64
}

// NewRegistry builds an empty registry. wrap, when non-nil, wraps every
// declared or adopted client (the runtime passes its resilient-transport
// constructor); the endpoint argument is the backend name the wrapper
// should report.
func NewRegistry(wrap func(inner Client, endpoint string) Client) *Registry {
	return &Registry{
		wrap:    wrap,
		byName:  map[string]*Backend{},
		routes:  map[Role]string{},
		adopted: map[Client]*Backend{},
	}
}

// Add declares one backend. The first backend added becomes the default
// until SetDefault overrides it. Names must be unique.
func (g *Registry) Add(spec BackendSpec) (*Backend, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("llm registry: backend with empty name")
	}
	if spec.Client == nil {
		return nil, fmt.Errorf("llm registry: backend %q has no client", spec.Name)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.byName[spec.Name]; ok {
		return nil, fmt.Errorf("llm registry: duplicate backend %q", spec.Name)
	}
	b := g.newBackend(spec)
	g.byName[spec.Name] = b
	g.order = append(g.order, b)
	if g.defaultName == "" {
		g.defaultName = spec.Name
	}
	return b, nil
}

// newBackend wraps and normalizes one spec. Callers hold g.mu (or are
// constructing the registry).
func (g *Registry) newBackend(spec BackendSpec) *Backend {
	client := spec.Client
	if g.wrap != nil {
		client = g.wrap(spec.Client, spec.Name)
	}
	if spec.CostWeight <= 0 {
		spec.CostWeight = 1
	}
	if spec.SpeedFactor <= 0 {
		spec.SpeedFactor = 1
	}
	return &Backend{
		name:     spec.Name,
		client:   client,
		raw:      spec.Client,
		workers:  spec.Workers,
		cost:     spec.CostWeight,
		speed:    spec.SpeedFactor,
		fallback: append([]string(nil), spec.Fallback...),
	}
}

// SetDefault names the backend unrouted roles resolve to.
func (g *Registry) SetDefault(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.byName[name]; !ok {
		return fmt.Errorf("llm registry: default backend %q not declared", name)
	}
	g.defaultName = name
	return nil
}

// SetRoute binds one prompt role to a backend.
func (g *Registry) SetRoute(role Role, backend string) error {
	if _, err := ParseRole(string(role)); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.byName[backend]; !ok {
		return fmt.Errorf("llm registry: route %s -> %q: backend not declared", role, backend)
	}
	g.routes[role] = backend
	return nil
}

// Get returns a declared backend by name.
func (g *Registry) Get(name string) (*Backend, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.byName[name]
	return b, ok
}

// Default returns the default backend (nil on an empty registry).
func (g *Registry) Default() *Backend {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.byName[g.defaultName]
}

// Backends returns the declared backends in declaration order.
func (g *Registry) Backends() []*Backend {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Backend(nil), g.order...)
}

// Routes snapshots the role → backend bindings.
func (g *Registry) Routes() map[Role]string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[Role]string, len(g.routes))
	for r, b := range g.routes {
		out[r] = b
	}
	return out
}

// Failovers reports how many times a routed call failed over to a
// fallback backend, lifetime.
func (g *Registry) Failovers() int64 { return g.failovers.Load() }

// Adopt turns an ad-hoc client (a per-session verifier, say) into a
// backend with its own independent resilience, memoized per client so
// repeated sessions share one wrapper — breaker state and retry budget
// included. A client that is already one of this registry's backends is
// returned as-is; adopted backends take the client's own name and are
// not routable by name.
func (g *Registry) Adopt(c Client) *Backend {
	if c == nil {
		return nil
	}
	if b, ok := c.(*Backend); ok {
		return b
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, b := range g.order {
		if b.raw == c || b.client == c {
			return b
		}
	}
	if b, ok := g.adopted[c]; ok {
		return b
	}
	b := g.newBackend(BackendSpec{Name: c.Name(), Client: c})
	g.adopted[c] = b
	return b
}

// All returns every backend the registry knows — declared ones in
// declaration order, then adopted ones sorted by name.
func (g *Registry) All() []*Backend {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := append([]*Backend(nil), g.order...)
	extra := make([]*Backend, 0, len(g.adopted))
	for _, b := range g.adopted {
		extra = append(extra, b)
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i].name < extra[j].name })
	return append(out, extra...)
}

// Validate checks that every fallback name and route target resolves to
// a declared backend and that no fallback chain names its own backend.
func (g *Registry) Validate() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.order) == 0 {
		return fmt.Errorf("llm registry: no backends declared")
	}
	for _, b := range g.order {
		for _, fb := range b.fallback {
			if fb == b.name {
				return fmt.Errorf("llm registry: backend %q lists itself as fallback", b.name)
			}
			if _, ok := g.byName[fb]; !ok {
				return fmt.Errorf("llm registry: backend %q fallback %q not declared", b.name, fb)
			}
		}
	}
	return nil
}

// Router builds a routing view over the registry with per-session role
// overrides (nil or empty for none). Overrides must name declared
// backends; unknown names surface when the role is resolved.
func (g *Registry) Router(overrides map[Role]string) *Router {
	return &Router{reg: g, overrides: overrides}
}

// Router resolves prompt roles to backend chains. Resolution order per
// role: the session override, the table binding's backend, the
// registry's role route, the registry default. The chain is the chosen
// backend followed by its declared fallbacks.
type Router struct {
	reg       *Registry
	overrides map[Role]string
}

// Chain resolves one role (with an optional table-bound backend name)
// to its failover chain.
func (r *Router) Chain(role Role, tableBackend string) ([]*Backend, error) {
	g := r.reg
	g.mu.Lock()
	defer g.mu.Unlock()
	name := g.defaultName
	if routed, ok := g.routes[role]; ok {
		name = routed
	}
	if tableBackend != "" {
		name = tableBackend
	}
	if over, ok := r.overrides[role]; ok && over != "" {
		name = over
	}
	primary, ok := g.byName[name]
	if !ok {
		return nil, fmt.Errorf("llm registry: role %s resolves to unknown backend %q", role, name)
	}
	chain := []*Backend{primary}
	seen := map[string]bool{primary.name: true}
	for _, fb := range primary.fallback {
		if seen[fb] {
			continue
		}
		if b, ok := g.byName[fb]; ok {
			chain = append(chain, b)
			seen[fb] = true
		}
	}
	return chain, nil
}

// Backend resolves the primary backend one role's prompts route to —
// the pricing the optimizer charges plans with.
func (r *Router) Backend(role Role, tableBackend string) (*Backend, error) {
	chain, err := r.Chain(role, tableBackend)
	if err != nil {
		return nil, err
	}
	return chain[0], nil
}

// Client resolves one role to a routed client: calls go to the primary
// backend and fail over down the chain on breaker sheds, saturation and
// transient exhaustion, with the attempted-endpoint chain preserved in
// the surfaced error.
func (r *Router) Client(role Role, tableBackend string) (Client, error) {
	chain, err := r.Chain(role, tableBackend)
	if err != nil {
		return nil, err
	}
	if len(chain) == 1 {
		return chain[0], nil
	}
	return &Routed{reg: r.reg, role: role, chain: chain}, nil
}

// Routed is a failover client over a backend chain. It reports the
// primary backend's name, so scheduler pools, prompt-cache keys and
// per-endpoint accounting follow the route's primary; fallback traffic
// executes inside the primary's dispatch slot (the work still has to be
// done — it is the endpoint answering that changes).
type Routed struct {
	reg   *Registry
	role  Role
	chain []*Backend
}

// Name implements Client with the primary backend's name.
func (c *Routed) Name() string { return c.chain[0].Name() }

// Role reports the prompt role this client routes.
func (c *Routed) Role() Role { return c.role }

// Chain reports the backend names in failover order.
func (c *Routed) Chain() []string {
	out := make([]string, len(c.chain))
	for i, b := range c.chain {
		out[i] = b.Name()
	}
	return out
}

// Complete implements Client: try each backend in chain order, moving on
// only while the failure is one another backend could do better on (see
// FailoverEligible). The returned error names the last backend actually
// attempted, with every earlier endpoint in the chain.
func (c *Routed) Complete(ctx context.Context, prompt string) (string, error) {
	var last error
	for i, b := range c.chain {
		out, err := b.Complete(ctx, prompt)
		if err == nil {
			return out, nil
		}
		err = stitchChain(last, err)
		if !FailoverEligible(err) || ctx.Err() != nil {
			return "", err
		}
		last = err
		if i+1 < len(c.chain) {
			c.reg.failovers.Add(1)
		}
	}
	return "", last
}

// FailoverEligible reports whether a failure on one backend warrants
// trying the next backend in the chain: the breaker shed the call, the
// retry budget was exhausted, or retries on this backend were exhausted
// by transient/deadline faults. Permanent failures (the prompt itself is
// bad — it would fail anywhere) and the caller's own cancellation never
// fail over.
func FailoverEligible(err error) bool {
	switch Classify(err) {
	case ClassBreakerOpen, ClassBudget, ClassTransient, ClassDeadline:
		return true
	}
	return false
}

// stitchChain folds the endpoints of an earlier failover attempt into
// the next backend's error, so the surfaced error carries the full
// attempt history in order.
func stitchChain(prev, next error) error {
	if prev == nil {
		return next
	}
	pe, ok := prev.(*Error)
	if !ok {
		return next
	}
	ne, ok := next.(*Error)
	if !ok {
		ne = &Error{Class: Classify(next), Err: next}
	}
	ne.Chain = append(pe.Attempted(), ne.Chain...)
	return ne
}
