// Package llm defines the interface Galois uses to talk to a large
// language model, plus instrumentation (prompt/token accounting, a
// simulated latency model matching the paper's reported ~110 batched
// prompts and ~20 s per query) and a bounded-concurrency batch helper.
//
// The engine never sees anything but this interface: text prompt in, text
// completion out. The simulated models live in package simllm; a real
// HTTP-backed client could implement the same interface.
package llm

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Client is a large language model endpoint.
type Client interface {
	// Name identifies the model ("gpt3", "chatgpt", ...).
	Name() string
	// Complete returns the model's completion for a text prompt.
	Complete(ctx context.Context, prompt string) (string, error)
}

// Stats accumulates usage across one query execution.
type Stats struct {
	Prompts          int
	PromptTokens     int
	CompletionTokens int
	// SimulatedLatency is the wall-clock the prompts would have cost on a
	// real API, assuming the batching the recorder observed. Batched
	// prompts (issued through CompleteBatch) overlap; sequential prompts
	// add up.
	SimulatedLatency time.Duration
}

// Add merges other into s.
func (s *Stats) Add(other Stats) {
	s.Prompts += other.Prompts
	s.PromptTokens += other.PromptTokens
	s.CompletionTokens += other.CompletionTokens
	s.SimulatedLatency += other.SimulatedLatency
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("prompts=%d prompt_tokens=%d completion_tokens=%d simulated_latency=%s",
		s.Prompts, s.PromptTokens, s.CompletionTokens, s.SimulatedLatency.Round(time.Millisecond))
}

// CountTokens approximates a tokenizer with whitespace splitting; good
// enough for accounting and latency simulation.
func CountTokens(s string) int { return len(strings.Fields(s)) }

// Latency model constants, set so that a typical Galois query
// (~110 prompts, mostly batched) lands near the paper's ~20 s.
const (
	perPromptLatency = 420 * time.Millisecond
	perTokenLatency  = 35 * time.Millisecond
)

// promptLatency estimates the API latency of one prompt.
func promptLatency(promptTokens, completionTokens int) time.Duration {
	return perPromptLatency + time.Duration(completionTokens)*perTokenLatency +
		time.Duration(promptTokens)*perTokenLatency/10
}

// Recorder wraps a Client and accumulates Stats. It is safe for
// concurrent use. Batches issued through CompleteBatch record the maximum
// latency of the batch (prompts overlap); direct Complete calls add up.
type Recorder struct {
	inner Client

	mu    sync.Mutex
	stats Stats
}

// NewRecorder wraps client.
func NewRecorder(client Client) *Recorder { return &Recorder{inner: client} }

// Name implements Client.
func (r *Recorder) Name() string { return r.inner.Name() }

// Complete implements Client, recording usage.
func (r *Recorder) Complete(ctx context.Context, prompt string) (string, error) {
	out, err := r.inner.Complete(ctx, prompt)
	if err != nil {
		return "", err
	}
	pt, ct := CountTokens(prompt), CountTokens(out)
	r.mu.Lock()
	r.stats.Prompts++
	r.stats.PromptTokens += pt
	r.stats.CompletionTokens += ct
	r.stats.SimulatedLatency += promptLatency(pt, ct)
	r.mu.Unlock()
	return out, nil
}

// Stats returns a snapshot of the accumulated usage.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Reset clears the accumulated usage.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats = Stats{}
}

// recordBatch accounts a batch of prompts: tokens add up, latency is the
// slowest prompt of each wave of `workers` concurrent calls.
func (r *Recorder) recordBatch(prompts, outputs []string, workers int) {
	if workers < 1 {
		workers = 1
	}
	var totalPT, totalCT int
	var maxLat time.Duration
	for i := range prompts {
		pt, ct := CountTokens(prompts[i]), CountTokens(outputs[i])
		totalPT += pt
		totalCT += ct
		if l := promptLatency(pt, ct); l > maxLat {
			maxLat = l
		}
	}
	waves := (len(prompts) + workers - 1) / workers
	r.mu.Lock()
	r.stats.Prompts += len(prompts)
	r.stats.PromptTokens += totalPT
	r.stats.CompletionTokens += totalCT
	r.stats.SimulatedLatency += time.Duration(waves) * maxLat
	r.mu.Unlock()
}

// CompleteBatch runs the prompts through the client with at most workers
// concurrent calls and returns completions positionally aligned with the
// prompts. The first error cancels the remaining work. When client is a
// *Recorder the batch is accounted with overlapping latency.
func CompleteBatch(ctx context.Context, client Client, prompts []string, workers int) ([]string, error) {
	if len(prompts) == 0 {
		return nil, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(prompts) {
		workers = len(prompts)
	}

	// Unwrap the recorder: the batch is accounted once at the end so the
	// latency model can overlap concurrent prompts.
	rec, _ := client.(*Recorder)
	raw := client
	if rec != nil {
		raw = rec.inner
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	outputs := make([]string, len(prompts))
	errs := make([]error, len(prompts))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out, err := raw.Complete(ctx, prompts[i])
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				outputs[i] = out
			}
		}()
	}
	for i := range prompts {
		select {
		case jobs <- i:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if rec != nil {
		rec.recordBatch(prompts, outputs, workers)
	}
	return outputs, nil
}
