// Package llm defines the interface Galois uses to talk to a large
// language model, plus instrumentation (prompt/token accounting, a
// simulated latency model matching the paper's reported ~110 batched
// prompts and ~20 s per query) and a bounded-concurrency batch helper.
//
// The engine never sees anything but this interface: text prompt in, text
// completion out. The simulated models live in package simllm; a real
// HTTP-backed client could implement the same interface.
package llm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// DefaultBatchWorkers is the fallback bound on concurrent prompt
// execution in batched operators. Every layer that needs a worker-count
// default (engine options, physical operators) uses this constant.
const DefaultBatchWorkers = 8

// Client is a large language model endpoint.
type Client interface {
	// Name identifies the model ("gpt3", "chatgpt", ...).
	Name() string
	// Complete returns the model's completion for a text prompt.
	Complete(ctx context.Context, prompt string) (string, error)
}

// Stats accumulates usage across one query execution.
type Stats struct {
	// Prompts counts model calls actually issued; prompts served by the
	// cache are counted in CacheHits instead and cost zero latency.
	Prompts          int
	PromptTokens     int
	CompletionTokens int
	// CacheHits counts prompts answered without a model call (resident in
	// the prompt cache, collapsed into a concurrent identical call, or
	// deduplicated inside one batch).
	CacheHits int
	// CacheMisses counts prompts that went to the model while a cache was
	// in play.
	CacheMisses int
	// SimulatedLatency is the wall-clock the prompts would have cost on a
	// real API, assuming the execution the recorder observed. Stop-and-go
	// execution sums per-operator batch waves (prompts inside one
	// CompleteBatch overlap; sequential prompts add up). The pipelined
	// executor instead reports the Scheduler's makespan — the larger of
	// the longest cross-operator dependency chain and the aggregate work
	// spread over the shared worker budget. Cached prompts cost nothing
	// in both models.
	SimulatedLatency time.Duration
	// Retries counts prompt attempts resubmitted by the resilience layer
	// after a retryable failure. Retries never inflate Prompts or
	// SimulatedLatency — the recorder sees one completed call per
	// success — so these counters are the only trace fault recovery
	// leaves in a query's stats.
	Retries int
	// Faults counts failed attempts the resilience layer observed on this
	// query's behalf: transient backend errors, expired per-attempt
	// deadlines, and rejected malformed completions.
	Faults int
	// BreakerFastFails counts calls shed without touching the backend
	// because the endpoint's circuit breaker was open.
	BreakerFastFails int
}

// Add merges other into s.
func (s *Stats) Add(other Stats) {
	s.Prompts += other.Prompts
	s.PromptTokens += other.PromptTokens
	s.CompletionTokens += other.CompletionTokens
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.SimulatedLatency += other.SimulatedLatency
	s.Retries += other.Retries
	s.Faults += other.Faults
	s.BreakerFastFails += other.BreakerFastFails
}

// String renders a one-line summary. Resilience counters appear only
// when a fault actually occurred, so fault-free output is unchanged.
func (s Stats) String() string {
	out := fmt.Sprintf("prompts=%d prompt_tokens=%d completion_tokens=%d cache_hits=%d cache_misses=%d simulated_latency=%s",
		s.Prompts, s.PromptTokens, s.CompletionTokens, s.CacheHits, s.CacheMisses, s.SimulatedLatency.Round(time.Millisecond))
	if s.Retries > 0 || s.Faults > 0 || s.BreakerFastFails > 0 {
		out += fmt.Sprintf(" retries=%d faults=%d breaker_fast_fails=%d", s.Retries, s.Faults, s.BreakerFastFails)
	}
	return out
}

// CountTokens approximates a tokenizer with whitespace splitting; good
// enough for accounting and latency simulation.
func CountTokens(s string) int { return len(strings.Fields(s)) }

// Latency model constants, set so that a typical Galois query
// (~110 prompts, mostly batched) lands near the paper's ~20 s.
const (
	perPromptLatency = 420 * time.Millisecond
	perTokenLatency  = 35 * time.Millisecond
)

// promptLatency estimates the API latency of one prompt.
func promptLatency(promptTokens, completionTokens int) time.Duration {
	return perPromptLatency + time.Duration(completionTokens)*perTokenLatency +
		time.Duration(promptTokens)*perTokenLatency/10
}

// EstimateLatency exposes the simulated-latency model of one prompt to
// planners: the cost-based optimizer prices candidate plans with the same
// per-prompt latency the recorders charge at execution time.
func EstimateLatency(promptTokens, completionTokens int) time.Duration {
	return promptLatency(promptTokens, completionTokens)
}

// Recorder wraps a Client and accumulates Stats. It is safe for
// concurrent use. Batches issued through CompleteBatch record the maximum
// latency of the batch (prompts overlap); direct Complete calls add up.
type Recorder struct {
	inner Client

	mu    sync.Mutex
	stats Stats
}

// NewRecorder wraps client.
func NewRecorder(client Client) *Recorder { return &Recorder{inner: client} }

// Name implements Client.
func (r *Recorder) Name() string { return r.inner.Name() }

// Complete implements Client, recording usage.
func (r *Recorder) Complete(ctx context.Context, prompt string) (string, error) {
	out, err := r.inner.Complete(ctx, prompt)
	if err != nil {
		return "", err
	}
	pt, ct := CountTokens(prompt), CountTokens(out)
	r.mu.Lock()
	r.stats.Prompts++
	r.stats.PromptTokens += pt
	r.stats.CompletionTokens += ct
	r.stats.SimulatedLatency += promptLatency(pt, ct)
	r.mu.Unlock()
	return out, nil
}

// Stats returns a snapshot of the accumulated usage.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Reset clears the accumulated usage.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats = Stats{}
}

// recordOverlapped accounts one prompt issued through the pipelined
// scheduler: the prompt and its tokens accrue, but no latency — the
// scheduler owns wall-clock accounting (critical path vs worker area),
// and the query's makespan is merged into Stats at the end.
func (r *Recorder) recordOverlapped(prompt, out string) {
	pt, ct := CountTokens(prompt), CountTokens(out)
	r.mu.Lock()
	r.stats.Prompts++
	r.stats.PromptTokens += pt
	r.stats.CompletionTokens += ct
	r.mu.Unlock()
}

// recordCache accounts prompts answered by (hits) or issued past (misses)
// the prompt cache. Hits add zero simulated latency.
func (r *Recorder) recordCache(hits, misses int) {
	r.mu.Lock()
	r.stats.CacheHits += hits
	r.stats.CacheMisses += misses
	r.mu.Unlock()
}

// recordResilience attributes fault-recovery work to this query. The
// resilience layer sits below the recorder (retries happen inside one
// recorded call), so it reports through the context instead of the call
// chain; see WithRecorder.
func (r *Recorder) recordResilience(retries, faults, fastFails int) {
	r.mu.Lock()
	r.stats.Retries += retries
	r.stats.Faults += faults
	r.stats.BreakerFastFails += fastFails
	r.mu.Unlock()
}

// recordBatch accounts a batch of prompts: tokens add up, latency is the
// slowest prompt of each wave of `workers` concurrent calls.
func (r *Recorder) recordBatch(prompts, outputs []string, workers int) {
	if len(prompts) == 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	var totalPT, totalCT int
	var maxLat time.Duration
	for i := range prompts {
		pt, ct := CountTokens(prompts[i]), CountTokens(outputs[i])
		totalPT += pt
		totalCT += ct
		if l := promptLatency(pt, ct); l > maxLat {
			maxLat = l
		}
	}
	waves := (len(prompts) + workers - 1) / workers
	r.mu.Lock()
	r.stats.Prompts += len(prompts)
	r.stats.PromptTokens += totalPT
	r.stats.CompletionTokens += totalCT
	r.stats.SimulatedLatency += time.Duration(waves) * maxLat
	r.mu.Unlock()
}

// CompleteBatch runs the prompts through the client with at most workers
// concurrent calls and returns completions positionally aligned with the
// prompts. The first error cancels the remaining work; all distinct
// errors are joined into the returned one. When client is a *Recorder the
// batch is accounted with overlapping latency.
func CompleteBatch(ctx context.Context, client Client, prompts []string, workers int) ([]string, error) {
	return CompleteBatchCached(ctx, client, nil, prompts, workers)
}

// CompleteBatchCached is CompleteBatch with a prompt cache: the batch is
// deduplicated first (N prompts with K distinct strings cost at most K
// completions), each distinct prompt consults the cache, and concurrent
// identical prompts — including ones from other batches sharing the cache
// — collapse into one in-flight call. Prompts answered without a model
// call are recorded as cache hits with zero simulated latency. A nil
// cache degrades to the plain batch behavior.
func CompleteBatchCached(ctx context.Context, client Client, cache *Cache, prompts []string, workers int) ([]string, error) {
	if len(prompts) == 0 {
		return nil, nil
	}
	if workers < 1 {
		workers = 1
	}

	// Unwrap the recorder: the batch is accounted once at the end so the
	// latency model can overlap concurrent prompts.
	rec, _ := client.(*Recorder)
	raw := client
	if rec != nil {
		raw = rec.inner
	}

	// Intra-batch dedup: run each distinct prompt once, then fan the
	// answers back out to the original positions.
	distinct := prompts
	var slot map[string]int
	if cache != nil {
		slot = make(map[string]int, len(prompts))
		distinct = make([]string, 0, len(prompts))
		for _, p := range prompts {
			if _, ok := slot[p]; !ok {
				slot[p] = len(distinct)
				distinct = append(distinct, p)
			}
		}
	}
	if workers > len(distinct) {
		workers = len(distinct)
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	outputs := make([]string, len(distinct))
	issued := make([]bool, len(distinct))
	errs := make([]error, len(distinct))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				var out string
				var err error
				if cache != nil {
					out, issued[i], err = cache.Fetch(ctx, client.Name(), distinct[i], func() (string, error) {
						return raw.Complete(ctx, distinct[i])
					})
				} else {
					issued[i] = true
					out, err = raw.Complete(ctx, distinct[i])
				}
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				outputs[i] = out
			}
		}()
	}
	for i := range distinct {
		select {
		case jobs <- i:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
	}
	close(jobs)
	wg.Wait()

	if err := joinBatchErrors(parent, errs); err != nil {
		return nil, err
	}
	// All dispatched jobs succeeded, but the parent context may have been
	// canceled between dispatches, leaving undispatched slots empty —
	// never return partial results as if they were answers.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if rec != nil {
		// Only the prompts that reached the model cost tokens and latency;
		// everything else was served by the cache.
		var issuedPrompts, issuedOutputs []string
		for i := range distinct {
			if issued[i] {
				issuedPrompts = append(issuedPrompts, distinct[i])
				issuedOutputs = append(issuedOutputs, outputs[i])
			}
		}
		rec.recordBatch(issuedPrompts, issuedOutputs, workers)
		if cache != nil {
			rec.recordCache(len(prompts)-len(issuedPrompts), len(issuedPrompts))
		}
	}

	if cache == nil {
		return outputs, nil
	}
	full := make([]string, len(prompts))
	for i, p := range prompts {
		full[i] = outputs[slot[p]]
	}
	return full, nil
}

// joinBatchErrors reduces a batch's per-job errors to the one the
// caller should see, keeping cancellation and backend failure apart.
// The first failing job cancels the batch context, so sibling jobs die
// with context.Canceled through no fault of the backend; joining those
// secondary cancellations into the report would misattribute them. Real
// failures therefore mask cancellations entirely, and a batch that died
// only of cancellation reports the parent context's own error — the
// caller's cancel or deadline — never a backend failure.
func joinBatchErrors(parent context.Context, errs []error) error {
	var failures, cancels []error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if IsCancellation(err) {
			cancels = append(cancels, err)
		} else {
			failures = append(failures, err)
		}
	}
	if len(failures) > 0 {
		return joinDistinct(failures)
	}
	if len(cancels) == 0 {
		return nil
	}
	if err := parent.Err(); err != nil {
		return err
	}
	return joinDistinct(cancels)
}

// joinDistinct joins the distinct non-nil errors (by message) so callers
// see everything that actually failed, not just the first by slice order.
func joinDistinct(errs []error) error {
	var joined []error
	seen := map[string]bool{}
	for _, err := range errs {
		if err == nil || seen[err.Error()] {
			continue
		}
		seen[err.Error()] = true
		joined = append(joined, err)
	}
	return errors.Join(joined...)
}
