package llm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// echoClient returns a transformed prompt, optionally failing.
type echoClient struct {
	calls     int32
	inFlight  int32
	maxSeen   int32
	failEvery int32
	mu        sync.Mutex
}

func (e *echoClient) Name() string { return "echo" }

func (e *echoClient) Complete(ctx context.Context, prompt string) (string, error) {
	n := atomic.AddInt32(&e.calls, 1)
	cur := atomic.AddInt32(&e.inFlight, 1)
	defer atomic.AddInt32(&e.inFlight, -1)
	e.mu.Lock()
	if cur > e.maxSeen {
		e.maxSeen = cur
	}
	e.mu.Unlock()
	if e.failEvery > 0 && n%e.failEvery == 0 {
		return "", errors.New("synthetic failure")
	}
	return "echo: " + prompt, nil
}

func TestCountTokens(t *testing.T) {
	if got := CountTokens("one two  three\nfour"); got != 4 {
		t.Errorf("CountTokens = %d", got)
	}
	if got := CountTokens(""); got != 0 {
		t.Errorf("CountTokens empty = %d", got)
	}
}

func TestRecorder(t *testing.T) {
	rec := NewRecorder(&echoClient{})
	ctx := context.Background()
	out, err := rec.Complete(ctx, "hello world")
	if err != nil || !strings.HasPrefix(out, "echo:") {
		t.Fatalf("Complete = %q, %v", out, err)
	}
	s := rec.Stats()
	if s.Prompts != 1 || s.PromptTokens != 2 || s.CompletionTokens != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.SimulatedLatency <= 0 {
		t.Error("latency must be positive")
	}
	rec.Reset()
	if rec.Stats().Prompts != 0 {
		t.Error("Reset failed")
	}
	if rec.Name() != "echo" {
		t.Errorf("Name = %q", rec.Name())
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{Prompts: 1, PromptTokens: 2, CompletionTokens: 3}
	a.Add(Stats{Prompts: 4, PromptTokens: 5, CompletionTokens: 6})
	if a.Prompts != 5 || a.PromptTokens != 7 || a.CompletionTokens != 9 {
		t.Errorf("Add = %+v", a)
	}
	if !strings.Contains(a.String(), "prompts=5") {
		t.Errorf("String = %q", a.String())
	}
}

func TestCompleteBatchOrder(t *testing.T) {
	client := &echoClient{}
	prompts := make([]string, 50)
	for i := range prompts {
		prompts[i] = fmt.Sprintf("p%02d", i)
	}
	out, err := CompleteBatch(context.Background(), client, prompts, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o != "echo: "+prompts[i] {
			t.Fatalf("output %d misaligned: %q", i, o)
		}
	}
}

func TestCompleteBatchBoundsConcurrency(t *testing.T) {
	client := &echoClient{}
	prompts := make([]string, 40)
	for i := range prompts {
		prompts[i] = "x"
	}
	if _, err := CompleteBatch(context.Background(), client, prompts, 4); err != nil {
		t.Fatal(err)
	}
	if client.maxSeen > 4 {
		t.Errorf("observed %d concurrent calls, cap is 4", client.maxSeen)
	}
}

func TestCompleteBatchError(t *testing.T) {
	client := &echoClient{failEvery: 5}
	prompts := make([]string, 20)
	for i := range prompts {
		prompts[i] = "x"
	}
	if _, err := CompleteBatch(context.Background(), client, prompts, 4); err == nil {
		t.Error("batch must surface the first error")
	}
}

func TestCompleteBatchEmpty(t *testing.T) {
	out, err := CompleteBatch(context.Background(), &echoClient{}, nil, 4)
	if err != nil || out != nil {
		t.Errorf("empty batch = %v, %v", out, err)
	}
}

func TestCompleteBatchThroughRecorder(t *testing.T) {
	rec := NewRecorder(&echoClient{})
	prompts := []string{"a b", "c d e", "f"}
	out, err := CompleteBatch(context.Background(), rec, prompts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("outputs = %d", len(out))
	}
	s := rec.Stats()
	if s.Prompts != 3 {
		t.Errorf("recorder counted %d prompts", s.Prompts)
	}
	// Batched latency overlaps: it must be far less than three sequential
	// calls of the largest prompt.
	seq := 3 * promptLatency(3, 4)
	if s.SimulatedLatency >= seq {
		t.Errorf("batched latency %v not overlapped (sequential would be %v)", s.SimulatedLatency, seq)
	}
}

func TestCompleteBatchContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	blocker := &blockingClient{}
	_, err := CompleteBatch(ctx, blocker, []string{"a", "b"}, 1)
	// Either an error or empty completion is fine; it must not hang.
	_ = err
}

type blockingClient struct{}

func (b *blockingClient) Name() string { return "block" }
func (b *blockingClient) Complete(ctx context.Context, p string) (string, error) {
	select {
	case <-ctx.Done():
		return "", ctx.Err()
	default:
		return "ok", nil
	}
}
