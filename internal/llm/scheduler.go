package llm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// VTime is a point on the simulated-latency axis of one query execution:
// the wall-clock instant (relative to query start) at which a prompt's
// answer would be available on a real API. Operators thread these
// timestamps through the tuple stream so a downstream prompt's start is
// anchored to the completion of the upstream prompt that produced its
// input — the dependency chains the critical-path latency model is built
// from.
type VTime = time.Duration

// Future is one prompt in flight on a Scheduler. Wait blocks until the
// completion is available and returns it together with the prompt's
// virtual completion time.
type Future struct {
	done chan struct{}
	out  string
	vt   VTime
	err  error
}

// Wait blocks until the prompt completes (the scheduler always resolves a
// future, including on error or cancellation).
func (f *Future) Wait() (string, VTime, error) {
	<-f.done
	return f.out, f.vt, f.err
}

// AdmissionClass partitions tenants into dispatch bands. The bands are
// drained in strict priority order — every queued interactive prompt is
// granted a freed slot before any queued batch prompt — which is what
// turns the non-preemptive one-prompt slots into a hard starvation
// bound: an interactive arrival on a saturated scheduler waits at most
// until the first in-flight prompt completes, i.e. one prompt's service
// time, no matter how deep the batch backlog is. Batch tenants in turn
// soak up every slot the interactive band leaves idle, so strict
// priority costs no throughput (the scheduler stays work-conserving).
type AdmissionClass uint8

const (
	// ClassInteractive is the latency-sensitive band: human-facing
	// queries that want their first prompt on a slot as soon as one
	// frees. The default for every tenant.
	ClassInteractive AdmissionClass = iota
	// ClassBatch is the throughput band: analytics-style queries that
	// may consume all idle capacity but must never delay interactive
	// traffic by more than the prompt already on the wire.
	ClassBatch
)

// nClasses sizes the per-class arrays; bands are indexed by class in
// priority order (interactive first).
const nClasses = 2

func (c AdmissionClass) String() string {
	if c == ClassBatch {
		return "batch"
	}
	return "interactive"
}

// ParseClass maps the wire spelling of an admission class ("" defaults
// to interactive) to its value.
func ParseClass(s string) (AdmissionClass, error) {
	switch s {
	case "", "interactive":
		return ClassInteractive, nil
	case "batch":
		return ClassBatch, nil
	}
	return ClassInteractive, fmt.Errorf("unknown admission class %q (want interactive or batch)", s)
}

// DeficitQuantum is the per-rotation deficit refill, in estimated prompt
// tokens, granted to a weight-1 tenant each time the rotation cursor
// reaches it. One token per visit is the finest service granularity:
// tenants interleave in proportion to prompt tokens (equal-cost prompts
// alternate exactly like per-prompt round-robin), and a weight-w tenant
// accrues w tokens per rotation. Dispatch stays O(flows) regardless —
// when a full rotation affords nobody, the rotation is fast-forwarded
// arithmetically rather than spun.
const DeficitQuantum = 1

// promptCost is the deficit-counter currency of one prompt: its
// estimated token count, floored at 1 so zero-token prompts still drain
// deficit and the refill loop always terminates.
func promptCost(prompt string) int64 {
	if n := CountTokens(prompt); n > 1 {
		return int64(n)
	}
	return 1
}

// Scheduler is the engine-global prompt scheduler of the pipelined
// streaming executor: one bounded worker pool per model endpoint, shared
// by every in-flight query of the engine and alive for the engine's
// lifetime. Queries do not talk to it directly — each query execution
// opens a Tenant, submits its prompts through that handle, and closes it
// when done.
//
// When every slot of an endpoint is busy, pending prompts wait in
// per-tenant FIFO queues organised into two dispatch bands by admission
// class. Freed slots drain the interactive band before the batch band
// (strict priority — see AdmissionClass for the starvation bound this
// pins), and within a band tenants are served by deficit round-robin
// denominated in estimated prompt tokens: each rotation visit grants a
// tenant DeficitQuantum × weight tokens of deficit, and a tenant's head
// prompt is dispatched only when its accumulated deficit covers the
// prompt's token cost. Token-denominated deficits mean a tenant issuing
// few huge prompts and a tenant issuing many small ones consume the
// endpoint in proportion to their weights, not their prompt counts —
// the fairness gap plain per-prompt round-robin cannot close.
//
// The worker budget is per model endpoint: a worker slot stands for one
// concurrent connection to one API, and different models (the primary
// and its verifier, say) are different APIs with independent rate
// limits, so calls to one never queue behind calls to the other. Stop-
// and-go execution is unaffected by this distinction — its batches are
// single-endpoint and sequential by construction.
//
// Latency is accounted per tenant with a critical-path model instead of
// summed per-operator waves. Each submitted prompt carries a ready time
// (the virtual completion time of the prompts it depends on) and
// finishes at ready + promptLatency. The simulated wall-clock of one
// query is
//
//	Makespan = max(longest dependency chain, per-endpoint work / workers)
//
// — the classic makespan lower bound of list scheduling: no schedule
// beats the critical path, and no schedule beats an endpoint's total
// work spread over its connection budget. With the cache disabled (the
// benchmark configurations) both terms are pure functions of the prompt
// set and its dependencies, so the reported latency is deterministic
// regardless of the real interleaving of the pool's goroutines — and of
// which other tenants were in flight. Prompts answered by the cache cost
// nothing on either axis, exactly like the stop-and-go accounting; which
// of two concurrent identical prompts becomes the singleflight leader
// (and so carries the latency) depends on arrival order, making
// cached-mode latency approximate.
type Scheduler struct {
	cache   *Cache
	workers int
	tags    atomic.Int64 // auto-generated tenant tags

	mu        sync.Mutex
	endpoints map[string]*endpoint
	epWorkers map[string]int  // per-endpoint worker overrides (else workers)
	drained   [nClasses]int64 // queued prompts granted a slot, per class
}

// endpoint is the dispatch state of one model API: how many of its
// worker slots are running prompts (split by admission class for the
// gauges), and the class bands of prompts waiting for a slot.
type endpoint struct {
	busy    int
	busyCls [nClasses]int
	bands   [nClasses]band
}

func newEndpoint() *endpoint {
	ep := &endpoint{}
	for c := range ep.bands {
		ep.bands[c] = newBand(DeficitQuantum)
	}
	return ep
}

// dispatchLocked pops the next queued job: the interactive band drains
// to empty before the batch band is consulted. Callers hold s.mu.
func (ep *endpoint) dispatchLocked() *job {
	for c := range ep.bands {
		if j := ep.bands[c].dispatch(); j != nil {
			return j
		}
	}
	return nil
}

// band is one admission class's dispatch state on one endpoint: the
// deficit round-robin rotation over tenants with queued prompts. The
// same structure drives both the live scheduler (under Scheduler.mu)
// and the deterministic policy simulator, so the benchmarked dispatch
// order is the shipped dispatch order.
type band struct {
	quantum int64   // deficit refill per rotation visit, weight 1
	rr      []*flow // flows with queued jobs, in rotation order
	next    int     // rotation cursor into rr
	visited bool    // cursor's flow already got this visit's refill
	flows   map[*Tenant]*flow
}

// flow is one tenant's queue within a band, with its deficit state.
type flow struct {
	t       *Tenant
	weight  int64
	deficit int64
	q       []*job
}

func newBand(quantum int64) band {
	return band{quantum: quantum, flows: map[*Tenant]*flow{}}
}

// enqueue appends one job to its tenant's flow, entering the tenant
// into the rotation if it had nothing queued.
func (b *band) enqueue(j *job) {
	fl, ok := b.flows[j.t]
	if !ok {
		fl = &flow{t: j.t, weight: j.t.weight}
		b.flows[j.t] = fl
		b.rr = append(b.rr, fl)
	}
	fl.q = append(fl.q, j)
}

// queued reports the jobs waiting in this band.
func (b *band) queued() int {
	var n int
	for _, fl := range b.flows {
		n += len(fl.q)
	}
	return n
}

// dispatch pops the next job under deficit round-robin (Shreedhar &
// Varghese, adapted to one-job-per-freed-slot): the cursor's flow is
// granted quantum × weight deficit once per rotation visit, serves head
// jobs while its deficit covers their token cost, and passes the cursor
// on when it cannot afford its head. A flow whose queue empties leaves
// the rotation and forfeits its remaining deficit (idle flows must not
// bank credit). Returns nil when the band is empty.
func (b *band) dispatch() *job {
	if len(b.rr) == 0 {
		return nil
	}
	// One pass from the cursor: serve the first flow whose deficit covers
	// its head, refilling each flow once as the cursor reaches it.
	for i := 0; i < len(b.rr); i++ {
		if b.next >= len(b.rr) {
			b.next = 0
			b.visited = false
		}
		fl := b.rr[b.next]
		if !b.visited {
			fl.deficit += b.quantum * fl.weight
			b.visited = true
		}
		if fl.deficit >= fl.q[0].cost {
			return b.serve()
		}
		b.next++
		b.visited = false
	}
	// A full rotation afforded nobody. Fast-forward the k further whole
	// rotations (each granting every flow quantum × weight) after which
	// at least one head becomes affordable, then serve the first such
	// flow in rotation order — arithmetic instead of spinning, keeping
	// dispatch O(flows) for arbitrarily large prompts. Flows past the
	// served one bank their k-th refill one visit early; the resulting
	// deviation from pure DRR is bounded by a single quantum.
	k := int64(-1)
	for _, fl := range b.rr {
		qw := b.quantum * fl.weight
		need := (fl.q[0].cost - fl.deficit + qw - 1) / qw
		if k < 0 || need < k {
			k = need
		}
	}
	for _, fl := range b.rr {
		fl.deficit += k * b.quantum * fl.weight
	}
	for i := 0; i < len(b.rr); i++ {
		if b.next >= len(b.rr) {
			b.next = 0
		}
		if fl := b.rr[b.next]; fl.deficit >= fl.q[0].cost {
			b.visited = true
			return b.serve()
		}
		b.next++
	}
	return nil // unreachable: k rotations make some head affordable
}

// serve pops the cursor flow's head job, charging its token cost
// against the flow's deficit and retiring the flow when its queue
// empties. Callers ensure the head is affordable.
func (b *band) serve() *job {
	fl := b.rr[b.next]
	j := fl.q[0]
	fl.deficit -= j.cost
	fl.q = fl.q[1:]
	if len(fl.q) == 0 {
		b.removeAt(b.next)
	}
	return j
}

// removeAt drops the flow at rotation index i, keeping the cursor on
// the element that now occupies the vacated position (the next flow in
// rotation order) and ending any in-progress visit.
func (b *band) removeAt(i int) {
	fl := b.rr[i]
	delete(b.flows, fl.t)
	fl.deficit = 0
	b.rr = append(b.rr[:i], b.rr[i+1:]...)
	if b.next > i {
		b.next--
	} else if b.next == i {
		b.visited = false
	}
}

// purge drops every queued job of one tenant from the band, returning
// the swept jobs so the caller can fail their futures outside the lock.
func (b *band) purge(t *Tenant) []*job {
	fl, ok := b.flows[t]
	if !ok {
		return nil
	}
	for i, other := range b.rr {
		if other == fl {
			b.removeAt(i)
			break
		}
	}
	q := fl.q
	fl.q = nil
	return q
}

// job is one queued or running prompt. cost is its deficit-counter
// price in estimated prompt tokens.
type job struct {
	t      *Tenant
	client Client
	prompt string
	ready  VTime
	cost   int64
	f      *Future
}

// NewScheduler builds an engine-lifetime scheduler. workers bounds, per
// model endpoint, both the real concurrency of the pool and the
// connection budget of the latency model (0 or negative means
// DefaultBatchWorkers). cache may be nil. The scheduler owns no
// goroutines while idle; it needs no explicit shutdown.
func NewScheduler(cache *Cache, workers int) *Scheduler {
	if workers < 1 {
		workers = DefaultBatchWorkers
	}
	return &Scheduler{
		cache:     cache,
		workers:   workers,
		endpoints: map[string]*endpoint{},
	}
}

// Workers reports the default per-endpoint worker budget.
func (s *Scheduler) Workers() int { return s.workers }

// SetEndpointWorkers overrides one endpoint's worker budget — both the
// live slot count and the connection budget of its latency model.
// Backend registries apply each backend's declared worker count here;
// n <= 0 restores the scheduler default. Set before traffic flows: a
// lowered budget does not preempt slots already granted.
func (s *Scheduler) SetEndpointWorkers(name string, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		delete(s.epWorkers, name)
		return
	}
	if s.epWorkers == nil {
		s.epWorkers = map[string]int{}
	}
	s.epWorkers[name] = n
}

// EndpointWorkers reports the worker budget in effect for one endpoint.
func (s *Scheduler) EndpointWorkers(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workersForLocked(name)
}

// workersForLocked resolves one endpoint's worker budget. Callers hold
// s.mu.
func (s *Scheduler) workersForLocked(name string) int {
	if n, ok := s.epWorkers[name]; ok {
		return n
	}
	return s.workers
}

// Busy reports the worker slots currently running prompts, summed over
// all endpoints. Zero when the scheduler is idle — the invariant the
// slot-hygiene tests assert after failed and cancelled queries.
func (s *Scheduler) Busy() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var busy int
	for _, ep := range s.endpoints {
		busy += ep.busy
	}
	return busy
}

// Queued reports the prompts waiting for a worker slot, summed over all
// endpoints and tenants. Zero when no tenant has pending work — a
// purged or closed tenant must leave nothing behind.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var queued int
	for _, ep := range s.endpoints {
		for c := range ep.bands {
			queued += ep.bands[c].queued()
		}
	}
	return queued
}

// ClassGauges is one admission class's live dispatch state, summed over
// endpoints.
type ClassGauges struct {
	Queued  int   `json:"queued"`  // prompts waiting for a slot
	Busy    int   `json:"busy"`    // slots running this class's prompts
	Drained int64 `json:"drained"` // queued prompts granted a slot, cumulative
}

// SchedulerGauges snapshots the scheduler's dispatch state for
// observability surfaces (galois-serve /stats) and for admission
// controllers sampling model-side saturation.
type SchedulerGauges struct {
	Workers     int         `json:"workers"`
	Interactive ClassGauges `json:"interactive"`
	Batch       ClassGauges `json:"batch"`
}

// Gauges snapshots per-class queued/busy counts and the cumulative
// deficit-scheduler drain counters under one lock acquisition.
func (s *Scheduler) Gauges() SchedulerGauges {
	s.mu.Lock()
	defer s.mu.Unlock()
	var per [nClasses]ClassGauges
	for c := range per {
		per[c].Drained = s.drained[c]
	}
	for _, ep := range s.endpoints {
		for c := range ep.bands {
			per[c].Queued += ep.bands[c].queued()
			per[c].Busy += ep.busyCls[c]
		}
	}
	return SchedulerGauges{
		Workers:     s.workers,
		Interactive: per[ClassInteractive],
		Batch:       per[ClassBatch],
	}
}

// endpointLocked returns the dispatch state of one model endpoint.
// Callers hold s.mu.
func (s *Scheduler) endpointLocked(model string) *endpoint {
	ep, ok := s.endpoints[model]
	if !ok {
		ep = newEndpoint()
		s.endpoints[model] = ep
	}
	return ep
}

// Tenant opens one query's submission handle in the interactive class
// with the default weight — the compatibility surface; TenantFor selects
// class and weight. Prompts submitted through it compete for the shared
// per-endpoint worker budget under class-banded deficit-weighted
// fair-share; accounting (prompt latency, critical path, makespan) is
// kept per tenant so per-query attribution stays exact however many
// queries are in flight. When ctx is cancelled the tenant's queued
// prompts are failed immediately — without draining, delaying or
// otherwise perturbing the other tenants — and its running prompts see
// the cancellation through their call context. tag identifies the tenant
// in diagnostics; empty auto-generates one.
//
// Callers must Close the tenant when the query is done (Close is
// idempotent and also releases the context watcher).
func (s *Scheduler) Tenant(ctx context.Context, tag string) *Tenant {
	return s.TenantFor(ctx, tag, ClassInteractive, 1)
}

// TenantFor opens a tenant in an explicit admission class with a
// deficit weight (values below 1 are clamped to 1). Weight scales the
// tenant's share of its band: a weight-2 batch tenant drains twice the
// prompt tokens per rotation of a weight-1 batch tenant. Class is fixed
// for the tenant's lifetime.
func (s *Scheduler) TenantFor(ctx context.Context, tag string, class AdmissionClass, weight int) *Tenant {
	if tag == "" {
		tag = fmt.Sprintf("q%d", s.tags.Add(1))
	}
	if class >= nClasses {
		class = ClassInteractive
	}
	if weight < 1 {
		weight = 1
	}
	t := &Tenant{
		s:      s,
		ctx:    ctx,
		tag:    tag,
		class:  class,
		weight: int64(weight),
		closed: make(chan struct{}),
		work:   map[string]time.Duration{},
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				t.purge(ctx.Err())
			case <-t.closed:
			}
		}()
	}
	return t
}

// Tenant is one query's handle on the shared scheduler: prompts are
// submitted through it, and simulated-latency accounting accrues on it.
// Safe for concurrent use by the query's operators.
type Tenant struct {
	s      *Scheduler
	ctx    context.Context
	tag    string
	class  AdmissionClass
	weight int64

	inflight sync.WaitGroup // submitted futures not yet resolved
	once     sync.Once
	closed   chan struct{}

	mu   sync.Mutex
	span VTime                    // latest dependency-chain completion
	work map[string]time.Duration // per-endpoint issued-prompt latency
}

// Tag identifies the tenant in diagnostics and stats attribution.
func (t *Tenant) Tag() string { return t.tag }

// Class reports the tenant's admission class.
func (t *Tenant) Class() AdmissionClass { return t.class }

// Weight reports the tenant's deficit weight within its band.
func (t *Tenant) Weight() int { return int(t.weight) }

// Workers reports the scheduler's per-endpoint worker budget.
func (t *Tenant) Workers() int { return t.s.workers }

// Submit enqueues one prompt whose dependencies complete at ready and
// returns immediately; the shared pool resolves the future when a worker
// slot of the client's endpoint is granted to this tenant. When client
// is a *Recorder, tokens and prompt/cache counts are recorded on it, but
// no latency — wall-clock lives in Makespan.
func (t *Tenant) Submit(client Client, prompt string, ready VTime) *Future {
	f := &Future{done: make(chan struct{})}
	if err := t.ctx.Err(); err != nil {
		f.err = err
		close(f.done)
		return f
	}
	j := &job{t: t, client: client, prompt: prompt, ready: ready, cost: promptCost(prompt), f: f}
	t.inflight.Add(1)
	s := t.s
	s.mu.Lock()
	// Re-check under the lock: purge also runs under it, so a cancel
	// landing between the check above and here cannot strand this job in
	// a queue the purge has already swept.
	if err := t.ctx.Err(); err != nil {
		s.mu.Unlock()
		f.err = err
		close(f.done)
		t.inflight.Done()
		return f
	}
	ep := s.endpointLocked(client.Name())
	if ep.busy < s.workersForLocked(client.Name()) {
		// A free slot means every band is empty (dispatch runs under the
		// same lock that frees slots), so direct placement cannot overtake
		// queued work of any class.
		ep.busy++
		ep.busyCls[t.class]++
		s.mu.Unlock()
		go s.run(ep, j)
		return f
	}
	ep.bands[t.class].enqueue(j)
	s.mu.Unlock()
	return f
}

// Do is Submit + Wait: issue one prompt and block for its answer. Used by
// inherently sequential chains (the key scan's "more results" loop).
func (t *Tenant) Do(client Client, prompt string, ready VTime) (string, VTime, error) {
	return t.Submit(client, prompt, ready).Wait()
}

// run executes jobs on one granted worker slot: the handed job first,
// then whatever dispatch hands it next, releasing the slot when the
// endpoint's bands are empty.
func (s *Scheduler) run(ep *endpoint, j *job) {
	for j != nil {
		s.exec(j)
		s.mu.Lock()
		ep.busyCls[j.t.class]--
		j = ep.dispatchLocked()
		if j == nil {
			ep.busy--
		} else {
			ep.busyCls[j.t.class]++
			s.drained[j.t.class]++
		}
		s.mu.Unlock()
	}
}

// exec runs one job to resolution.
func (s *Scheduler) exec(j *job) {
	defer j.t.inflight.Done()
	defer close(j.f.done)
	if err := j.t.ctx.Err(); err != nil {
		j.f.err = err
		return
	}
	j.f.out, j.f.vt, j.f.err = s.complete(j.t, j.client, j.prompt, j.ready)
}

// purge fails every queued-but-not-running job of one tenant, freeing
// the queue without touching other tenants or the running slots. Called
// on context cancellation and on Close.
func (t *Tenant) purge(err error) {
	if err == nil {
		err = context.Canceled
	}
	s := t.s
	var purged []*job
	s.mu.Lock()
	for _, ep := range s.endpoints {
		purged = append(purged, ep.bands[t.class].purge(t)...)
	}
	s.mu.Unlock()
	for _, j := range purged {
		j.f.err = err
		close(j.f.done)
		j.t.inflight.Done()
	}
}

// Close releases the tenant: the context watcher exits, and any queued
// prompts (a cancelled or abandoned query's) are failed. Idempotent.
func (t *Tenant) Close() {
	t.once.Do(func() { close(t.closed) })
	t.purge(t.ctx.Err())
}

func (s *Scheduler) complete(t *Tenant, client Client, prompt string, ready VTime) (string, VTime, error) {
	// Unwrap the recorder: the scheduler does its own accounting so the
	// recorder's per-call summed latency stays out of the pipelined model.
	rec, _ := client.(*Recorder)
	raw := client
	if rec != nil {
		raw = rec.inner
	}

	var out string
	issued := true
	var err error
	if s.cache != nil {
		out, issued, err = s.cache.Fetch(t.ctx, client.Name(), prompt, func() (string, error) {
			return raw.Complete(t.ctx, prompt)
		})
	} else {
		out, err = raw.Complete(t.ctx, prompt)
	}
	if err != nil {
		return "", 0, err
	}

	var lat time.Duration
	if issued {
		lat = promptLatency(CountTokens(prompt), CountTokens(out))
	}
	if rec != nil {
		if issued {
			rec.recordOverlapped(prompt, out)
		}
		if s.cache != nil {
			if issued {
				rec.recordCache(0, 1)
			} else {
				rec.recordCache(1, 0)
			}
		}
	}

	end := ready + lat
	t.mu.Lock()
	t.work[client.Name()] += lat
	if end > t.span {
		t.span = end
	}
	t.mu.Unlock()
	return out, end, nil
}

// Quiesce blocks until every future this tenant submitted has resolved.
// Early termination (a satisfied LIMIT) can abandon futures that are
// still talking to the model; their prompts were issued and must be
// accounted, so callers quiesce before reading final stats or the
// makespan.
func (t *Tenant) Quiesce() { t.inflight.Wait() }

// CriticalPath returns the tenant's longest dependency chain scheduled
// so far.
func (t *Tenant) CriticalPath() VTime {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.span
}

// AggregateWork returns the summed latency of every prompt this tenant
// issued, across all endpoints.
func (t *Tenant) AggregateWork() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total time.Duration
	for _, b := range t.work {
		total += b
	}
	return total
}

// Makespan returns the simulated wall-clock of the tenant's query run
// alone against the full worker budget: the larger of its critical path
// and its busiest endpoint's work spread over the connection budget.
// Under concurrent tenants this is the per-query attribution; the
// aggregate wall-clock of a set of concurrent tenants is
// AggregateMakespan over their stats.
func (t *Tenant) Makespan() VTime {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.span
	for ep, b := range t.work {
		if area := b / time.Duration(t.s.EndpointWorkers(ep)); area > out {
			out = area
		}
	}
	return out
}

// Stats snapshots the tenant's simulated-latency accounting for
// aggregation across concurrent queries.
func (t *Tenant) Stats() *TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	work := make(map[string]time.Duration, len(t.work))
	for ep, b := range t.work {
		work[ep] = b
	}
	return &TenantStats{
		Tag:          t.tag,
		Class:        t.class.String(),
		Weight:       int(t.weight),
		Workers:      t.s.workers,
		CriticalPath: t.span,
		Work:         work,
	}
}

// TenantStats is one query's simulated-latency accounting on the shared
// scheduler: the longest dependency chain of its prompts and the summed
// issued-prompt latency per model endpoint. Class and Weight record the
// dispatch treatment the tenant received; they do not enter the latency
// model (the makespan bound is schedule-independent by construction).
type TenantStats struct {
	Tag          string
	Class        string
	Weight       int
	Workers      int
	CriticalPath VTime
	Work         map[string]time.Duration
}

// Makespan is the query-alone simulated wall-clock of this snapshot
// (critical path vs busiest endpoint area over the full budget).
func (ts *TenantStats) Makespan() VTime {
	out := ts.CriticalPath
	for _, b := range ts.Work {
		if area := b / time.Duration(ts.Workers); area > out {
			out = area
		}
	}
	return out
}

// AggregateMakespan bounds the simulated wall-clock of a set of queries
// run concurrently against one scheduler with the given per-endpoint
// worker budget: the same list-scheduling bound the per-query model
// uses, lifted across tenants — no schedule beats any single query's
// critical path, and no schedule beats an endpoint's total work (summed
// over all tenants) spread over its connection budget. Like the
// per-query makespan, it is a pure function of the prompt sets when the
// cache is off, so concurrency benchmarks built on it are deterministic.
// It is also dispatch-policy-independent: any work-conserving drain
// order (round-robin, deficit-weighted, …) meets the same bound, which
// is why switching policies cannot regress aggregate throughput.
func AggregateMakespan(workers int, stats []*TenantStats) VTime {
	if workers < 1 {
		workers = DefaultBatchWorkers
	}
	var out VTime
	work := map[string]time.Duration{}
	for _, ts := range stats {
		if ts == nil {
			continue
		}
		if ts.CriticalPath > out {
			out = ts.CriticalPath
		}
		for ep, b := range ts.Work {
			work[ep] += b
		}
	}
	for _, b := range work {
		if area := b / time.Duration(workers); area > out {
			out = area
		}
	}
	return out
}
