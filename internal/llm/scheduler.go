package llm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// VTime is a point on the simulated-latency axis of one query execution:
// the wall-clock instant (relative to query start) at which a prompt's
// answer would be available on a real API. Operators thread these
// timestamps through the tuple stream so a downstream prompt's start is
// anchored to the completion of the upstream prompt that produced its
// input — the dependency chains the critical-path latency model is built
// from.
type VTime = time.Duration

// Future is one prompt in flight on a Scheduler. Wait blocks until the
// completion is available and returns it together with the prompt's
// virtual completion time.
type Future struct {
	done chan struct{}
	out  string
	vt   VTime
	err  error
}

// Wait blocks until the prompt completes (the scheduler always resolves a
// future, including on error or cancellation).
func (f *Future) Wait() (string, VTime, error) {
	<-f.done
	return f.out, f.vt, f.err
}

// Scheduler is the engine-global prompt scheduler of the pipelined
// streaming executor: one bounded worker pool per model endpoint, shared
// by every in-flight query of the engine and alive for the engine's
// lifetime. Queries do not talk to it directly — each query execution
// opens a Tenant, submits its prompts through that handle, and closes it
// when done. The pool fair-shares its per-endpoint worker budget across
// tenants with round-robin queueing: when every slot of an endpoint is
// busy, pending prompts wait in per-tenant FIFO queues and freed slots
// are handed to the tenants in rotation, so a query issuing thousands of
// prompts cannot starve a query issuing ten.
//
// The worker budget is per model endpoint: a worker slot stands for one
// concurrent connection to one API, and different models (the primary
// and its verifier, say) are different APIs with independent rate
// limits, so calls to one never queue behind calls to the other. Stop-
// and-go execution is unaffected by this distinction — its batches are
// single-endpoint and sequential by construction.
//
// Latency is accounted per tenant with a critical-path model instead of
// summed per-operator waves. Each submitted prompt carries a ready time
// (the virtual completion time of the prompts it depends on) and
// finishes at ready + promptLatency. The simulated wall-clock of one
// query is
//
//	Makespan = max(longest dependency chain, per-endpoint work / workers)
//
// — the classic makespan lower bound of list scheduling: no schedule
// beats the critical path, and no schedule beats an endpoint's total
// work spread over its connection budget. With the cache disabled (the
// benchmark configurations) both terms are pure functions of the prompt
// set and its dependencies, so the reported latency is deterministic
// regardless of the real interleaving of the pool's goroutines — and of
// which other tenants were in flight. Prompts answered by the cache cost
// nothing on either axis, exactly like the stop-and-go accounting; which
// of two concurrent identical prompts becomes the singleflight leader
// (and so carries the latency) depends on arrival order, making
// cached-mode latency approximate.
type Scheduler struct {
	cache   *Cache
	workers int
	tags    atomic.Int64 // auto-generated tenant tags

	mu        sync.Mutex
	endpoints map[string]*endpoint
}

// endpoint is the dispatch state of one model API: how many of its
// worker slots are running prompts, and the per-tenant queues of prompts
// waiting for a slot, drained round-robin.
type endpoint struct {
	busy int
	rr   []*Tenant          // tenants with queued jobs, in rotation order
	next int                // rotation cursor into rr
	q    map[*Tenant][]*job // per-tenant pending jobs (FIFO)
}

// job is one queued or running prompt.
type job struct {
	t      *Tenant
	client Client
	prompt string
	ready  VTime
	f      *Future
}

// NewScheduler builds an engine-lifetime scheduler. workers bounds, per
// model endpoint, both the real concurrency of the pool and the
// connection budget of the latency model (0 or negative means
// DefaultBatchWorkers). cache may be nil. The scheduler owns no
// goroutines while idle; it needs no explicit shutdown.
func NewScheduler(cache *Cache, workers int) *Scheduler {
	if workers < 1 {
		workers = DefaultBatchWorkers
	}
	return &Scheduler{
		cache:     cache,
		workers:   workers,
		endpoints: map[string]*endpoint{},
	}
}

// Workers reports the per-endpoint worker budget.
func (s *Scheduler) Workers() int { return s.workers }

// Busy reports the worker slots currently running prompts, summed over
// all endpoints. Zero when the scheduler is idle — the invariant the
// slot-hygiene tests assert after failed and cancelled queries.
func (s *Scheduler) Busy() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var busy int
	for _, ep := range s.endpoints {
		busy += ep.busy
	}
	return busy
}

// Queued reports the prompts waiting for a worker slot, summed over all
// endpoints and tenants. Zero when no tenant has pending work — a
// purged or closed tenant must leave nothing behind.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var queued int
	for _, ep := range s.endpoints {
		for _, q := range ep.q {
			queued += len(q)
		}
	}
	return queued
}

// endpointLocked returns the dispatch state of one model endpoint.
// Callers hold s.mu.
func (s *Scheduler) endpointLocked(model string) *endpoint {
	ep, ok := s.endpoints[model]
	if !ok {
		ep = &endpoint{q: map[*Tenant][]*job{}}
		s.endpoints[model] = ep
	}
	return ep
}

// Tenant opens one query's submission handle. Prompts submitted through
// it compete for the shared per-endpoint worker budget under round-robin
// fair-share; accounting (prompt latency, critical path, makespan) is
// kept per tenant so per-query attribution stays exact however many
// queries are in flight. When ctx is cancelled the tenant's queued
// prompts are failed immediately — without draining, delaying or
// otherwise perturbing the other tenants — and its running prompts see
// the cancellation through their call context. tag identifies the tenant
// in diagnostics; empty auto-generates one.
//
// Callers must Close the tenant when the query is done (Close is
// idempotent and also releases the context watcher).
func (s *Scheduler) Tenant(ctx context.Context, tag string) *Tenant {
	if tag == "" {
		tag = fmt.Sprintf("q%d", s.tags.Add(1))
	}
	t := &Tenant{
		s:      s,
		ctx:    ctx,
		tag:    tag,
		closed: make(chan struct{}),
		work:   map[string]time.Duration{},
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				t.purge(ctx.Err())
			case <-t.closed:
			}
		}()
	}
	return t
}

// Tenant is one query's handle on the shared scheduler: prompts are
// submitted through it, and simulated-latency accounting accrues on it.
// Safe for concurrent use by the query's operators.
type Tenant struct {
	s   *Scheduler
	ctx context.Context
	tag string

	inflight sync.WaitGroup // submitted futures not yet resolved
	once     sync.Once
	closed   chan struct{}

	mu   sync.Mutex
	span VTime                    // latest dependency-chain completion
	work map[string]time.Duration // per-endpoint issued-prompt latency
}

// Tag identifies the tenant in diagnostics and stats attribution.
func (t *Tenant) Tag() string { return t.tag }

// Workers reports the scheduler's per-endpoint worker budget.
func (t *Tenant) Workers() int { return t.s.workers }

// Submit enqueues one prompt whose dependencies complete at ready and
// returns immediately; the shared pool resolves the future when a worker
// slot of the client's endpoint is granted to this tenant. When client
// is a *Recorder, tokens and prompt/cache counts are recorded on it, but
// no latency — wall-clock lives in Makespan.
func (t *Tenant) Submit(client Client, prompt string, ready VTime) *Future {
	f := &Future{done: make(chan struct{})}
	if err := t.ctx.Err(); err != nil {
		f.err = err
		close(f.done)
		return f
	}
	j := &job{t: t, client: client, prompt: prompt, ready: ready, f: f}
	t.inflight.Add(1)
	s := t.s
	s.mu.Lock()
	// Re-check under the lock: purge also runs under it, so a cancel
	// landing between the check above and here cannot strand this job in
	// a queue the purge has already swept.
	if err := t.ctx.Err(); err != nil {
		s.mu.Unlock()
		f.err = err
		close(f.done)
		t.inflight.Done()
		return f
	}
	ep := s.endpointLocked(client.Name())
	if ep.busy < s.workers {
		ep.busy++
		s.mu.Unlock()
		go s.run(ep, j)
		return f
	}
	if _, ok := ep.q[t]; !ok {
		ep.rr = append(ep.rr, t)
	}
	ep.q[t] = append(ep.q[t], j)
	s.mu.Unlock()
	return f
}

// Do is Submit + Wait: issue one prompt and block for its answer. Used by
// inherently sequential chains (the key scan's "more results" loop).
func (t *Tenant) Do(client Client, prompt string, ready VTime) (string, VTime, error) {
	return t.Submit(client, prompt, ready).Wait()
}

// run executes jobs on one granted worker slot: the handed job first,
// then whatever dispatch hands it next, releasing the slot when the
// endpoint's queues are empty.
func (s *Scheduler) run(ep *endpoint, j *job) {
	for j != nil {
		s.exec(j)
		s.mu.Lock()
		j = dispatchLocked(ep)
		if j == nil {
			ep.busy--
		}
		s.mu.Unlock()
	}
}

// dispatchLocked pops the next queued job in round-robin tenant order.
// Callers hold s.mu.
func dispatchLocked(ep *endpoint) *job {
	if len(ep.rr) == 0 {
		return nil
	}
	if ep.next >= len(ep.rr) {
		ep.next = 0
	}
	t := ep.rr[ep.next]
	queue := ep.q[t]
	j := queue[0]
	if len(queue) == 1 {
		delete(ep.q, t)
		ep.rr = append(ep.rr[:ep.next], ep.rr[ep.next+1:]...)
		// next now points at the following tenant already.
	} else {
		ep.q[t] = queue[1:]
		ep.next++
	}
	return j
}

// exec runs one job to resolution.
func (s *Scheduler) exec(j *job) {
	defer j.t.inflight.Done()
	defer close(j.f.done)
	if err := j.t.ctx.Err(); err != nil {
		j.f.err = err
		return
	}
	j.f.out, j.f.vt, j.f.err = s.complete(j.t, j.client, j.prompt, j.ready)
}

// purge fails every queued-but-not-running job of one tenant, freeing
// the queue without touching other tenants or the running slots. Called
// on context cancellation and on Close.
func (t *Tenant) purge(err error) {
	if err == nil {
		err = context.Canceled
	}
	s := t.s
	var purged []*job
	s.mu.Lock()
	for _, ep := range s.endpoints {
		queue, ok := ep.q[t]
		if !ok {
			continue
		}
		delete(ep.q, t)
		for i, other := range ep.rr {
			if other == t {
				ep.rr = append(ep.rr[:i], ep.rr[i+1:]...)
				if ep.next > i {
					ep.next--
				}
				break
			}
		}
		purged = append(purged, queue...)
	}
	s.mu.Unlock()
	for _, j := range purged {
		j.f.err = err
		close(j.f.done)
		j.t.inflight.Done()
	}
}

// Close releases the tenant: the context watcher exits, and any queued
// prompts (a cancelled or abandoned query's) are failed. Idempotent.
func (t *Tenant) Close() {
	t.once.Do(func() { close(t.closed) })
	t.purge(t.ctx.Err())
}

func (s *Scheduler) complete(t *Tenant, client Client, prompt string, ready VTime) (string, VTime, error) {
	// Unwrap the recorder: the scheduler does its own accounting so the
	// recorder's per-call summed latency stays out of the pipelined model.
	rec, _ := client.(*Recorder)
	raw := client
	if rec != nil {
		raw = rec.inner
	}

	var out string
	issued := true
	var err error
	if s.cache != nil {
		out, issued, err = s.cache.Fetch(t.ctx, client.Name(), prompt, func() (string, error) {
			return raw.Complete(t.ctx, prompt)
		})
	} else {
		out, err = raw.Complete(t.ctx, prompt)
	}
	if err != nil {
		return "", 0, err
	}

	var lat time.Duration
	if issued {
		lat = promptLatency(CountTokens(prompt), CountTokens(out))
	}
	if rec != nil {
		if issued {
			rec.recordOverlapped(prompt, out)
		}
		if s.cache != nil {
			if issued {
				rec.recordCache(0, 1)
			} else {
				rec.recordCache(1, 0)
			}
		}
	}

	end := ready + lat
	t.mu.Lock()
	t.work[client.Name()] += lat
	if end > t.span {
		t.span = end
	}
	t.mu.Unlock()
	return out, end, nil
}

// Quiesce blocks until every future this tenant submitted has resolved.
// Early termination (a satisfied LIMIT) can abandon futures that are
// still talking to the model; their prompts were issued and must be
// accounted, so callers quiesce before reading final stats or the
// makespan.
func (t *Tenant) Quiesce() { t.inflight.Wait() }

// CriticalPath returns the tenant's longest dependency chain scheduled
// so far.
func (t *Tenant) CriticalPath() VTime {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.span
}

// AggregateWork returns the summed latency of every prompt this tenant
// issued, across all endpoints.
func (t *Tenant) AggregateWork() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total time.Duration
	for _, b := range t.work {
		total += b
	}
	return total
}

// Makespan returns the simulated wall-clock of the tenant's query run
// alone against the full worker budget: the larger of its critical path
// and its busiest endpoint's work spread over the connection budget.
// Under concurrent tenants this is the per-query attribution; the
// aggregate wall-clock of a set of concurrent tenants is
// AggregateMakespan over their stats.
func (t *Tenant) Makespan() VTime {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.span
	for _, b := range t.work {
		if area := b / time.Duration(t.s.workers); area > out {
			out = area
		}
	}
	return out
}

// Stats snapshots the tenant's simulated-latency accounting for
// aggregation across concurrent queries.
func (t *Tenant) Stats() *TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	work := make(map[string]time.Duration, len(t.work))
	for ep, b := range t.work {
		work[ep] = b
	}
	return &TenantStats{Tag: t.tag, Workers: t.s.workers, CriticalPath: t.span, Work: work}
}

// TenantStats is one query's simulated-latency accounting on the shared
// scheduler: the longest dependency chain of its prompts and the summed
// issued-prompt latency per model endpoint.
type TenantStats struct {
	Tag          string
	Workers      int
	CriticalPath VTime
	Work         map[string]time.Duration
}

// Makespan is the query-alone simulated wall-clock of this snapshot
// (critical path vs busiest endpoint area over the full budget).
func (ts *TenantStats) Makespan() VTime {
	out := ts.CriticalPath
	for _, b := range ts.Work {
		if area := b / time.Duration(ts.Workers); area > out {
			out = area
		}
	}
	return out
}

// AggregateMakespan bounds the simulated wall-clock of a set of queries
// run concurrently against one scheduler with the given per-endpoint
// worker budget: the same list-scheduling bound the per-query model
// uses, lifted across tenants — no schedule beats any single query's
// critical path, and no schedule beats an endpoint's total work (summed
// over all tenants) spread over its connection budget. Like the
// per-query makespan, it is a pure function of the prompt sets when the
// cache is off, so concurrency benchmarks built on it are deterministic.
func AggregateMakespan(workers int, stats []*TenantStats) VTime {
	if workers < 1 {
		workers = DefaultBatchWorkers
	}
	var out VTime
	work := map[string]time.Duration{}
	for _, ts := range stats {
		if ts == nil {
			continue
		}
		if ts.CriticalPath > out {
			out = ts.CriticalPath
		}
		for ep, b := range ts.Work {
			work[ep] += b
		}
	}
	for _, b := range work {
		if area := b / time.Duration(workers); area > out {
			out = area
		}
	}
	return out
}
