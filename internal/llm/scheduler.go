package llm

import (
	"context"
	"sync"
	"time"
)

// VTime is a point on the simulated-latency axis of one query execution:
// the wall-clock instant (relative to query start) at which a prompt's
// answer would be available on a real API. Operators thread these
// timestamps through the tuple stream so a downstream prompt's start is
// anchored to the completion of the upstream prompt that produced its
// input — the dependency chains the critical-path latency model is built
// from.
type VTime = time.Duration

// Future is one prompt in flight on a Scheduler. Wait blocks until the
// completion is available and returns it together with the prompt's
// virtual completion time.
type Future struct {
	done chan struct{}
	out  string
	vt   VTime
	err  error
}

// Wait blocks until the prompt completes (the scheduler always resolves a
// future, including on error or cancellation).
func (f *Future) Wait() (string, VTime, error) {
	<-f.done
	return f.out, f.vt, f.err
}

// Scheduler is the query-level prompt scheduler of the pipelined
// streaming executor: a single bounded worker pool shared by every
// operator of one query (replacing per-batch fan-out), accepting prompts
// as upstream tuples arrive and resolving them out-of-band so independent
// prompt chains overlap.
//
// The worker budget is per model endpoint: a worker slot stands for one
// concurrent connection to one API, and different models (the primary
// and its verifier, say) are different APIs with independent rate
// limits, so calls to one never queue behind calls to the other. Stop-
// and-go execution is unaffected by this distinction — its batches are
// single-endpoint and sequential by construction.
//
// Latency is accounted with a critical-path model instead of summed
// per-operator waves. Each submitted prompt carries a ready time (the
// virtual completion time of the prompts it depends on) and finishes at
// ready + promptLatency. The simulated wall-clock of the whole query is
//
//	Makespan = max(longest dependency chain, per-endpoint work / workers)
//
// — the classic makespan lower bound of list scheduling: no schedule
// beats the critical path, and no schedule beats an endpoint's total
// work spread over its connection budget. With the cache disabled (the
// benchmark configurations) both terms are pure functions of the prompt
// set and its dependencies, so the reported latency is deterministic
// regardless of the real interleaving of the pool's goroutines. Prompts
// answered by the cache cost nothing on either axis, exactly like the
// stop-and-go accounting; which of two concurrent identical prompts
// becomes the singleflight leader (and so carries the latency) depends
// on arrival order, making cached-mode latency approximate.
type Scheduler struct {
	ctx     context.Context
	cache   *Cache
	workers int

	inflight sync.WaitGroup // submitted futures not yet resolved

	mu   sync.Mutex
	sems map[string]chan struct{} // per-endpoint connection slots
	busy map[string]time.Duration // per-endpoint issued-prompt work
	span VTime                    // latest dependency-chain completion
}

// NewScheduler builds a scheduler for one query execution. workers
// bounds, per model endpoint, both the real concurrency of the pool and
// the connection budget of the latency model (0 or negative means
// DefaultBatchWorkers). cache may be nil.
func NewScheduler(ctx context.Context, cache *Cache, workers int) *Scheduler {
	if workers < 1 {
		workers = DefaultBatchWorkers
	}
	return &Scheduler{
		ctx:     ctx,
		cache:   cache,
		workers: workers,
		sems:    map[string]chan struct{}{},
		busy:    map[string]time.Duration{},
	}
}

// endpoint returns the connection-slot semaphore of one model endpoint.
func (s *Scheduler) endpoint(model string) chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	sem, ok := s.sems[model]
	if !ok {
		sem = make(chan struct{}, s.workers)
		s.sems[model] = sem
	}
	return sem
}

// Workers reports the worker budget.
func (s *Scheduler) Workers() int { return s.workers }

// Submit enqueues one prompt whose dependencies complete at ready and
// returns immediately; the pool resolves the future when a worker slot
// frees up. When client is a *Recorder, tokens and prompt/cache counts
// are recorded on it, but no latency — wall-clock lives in Makespan.
func (s *Scheduler) Submit(client Client, prompt string, ready VTime) *Future {
	f := &Future{done: make(chan struct{})}
	sem := s.endpoint(client.Name())
	s.inflight.Add(1)
	go func() {
		defer s.inflight.Done()
		defer close(f.done)
		select {
		case sem <- struct{}{}:
		case <-s.ctx.Done():
			f.err = s.ctx.Err()
			return
		}
		defer func() { <-sem }()
		f.out, f.vt, f.err = s.complete(client, prompt, ready)
	}()
	return f
}

// Do is Submit + Wait: issue one prompt and block for its answer. Used by
// inherently sequential chains (the key scan's "more results" loop).
func (s *Scheduler) Do(client Client, prompt string, ready VTime) (string, VTime, error) {
	return s.Submit(client, prompt, ready).Wait()
}

func (s *Scheduler) complete(client Client, prompt string, ready VTime) (string, VTime, error) {
	// Unwrap the recorder: the scheduler does its own accounting so the
	// recorder's per-call summed latency stays out of the pipelined model.
	rec, _ := client.(*Recorder)
	raw := client
	if rec != nil {
		raw = rec.inner
	}

	var out string
	issued := true
	var err error
	if s.cache != nil {
		out, issued, err = s.cache.Fetch(s.ctx, client.Name(), prompt, func() (string, error) {
			return raw.Complete(s.ctx, prompt)
		})
	} else {
		out, err = raw.Complete(s.ctx, prompt)
	}
	if err != nil {
		return "", 0, err
	}

	var lat time.Duration
	if issued {
		lat = promptLatency(CountTokens(prompt), CountTokens(out))
	}
	if rec != nil {
		if issued {
			rec.recordOverlapped(prompt, out)
		}
		if s.cache != nil {
			if issued {
				rec.recordCache(0, 1)
			} else {
				rec.recordCache(1, 0)
			}
		}
	}

	end := ready + lat
	s.mu.Lock()
	s.busy[client.Name()] += lat
	if end > s.span {
		s.span = end
	}
	s.mu.Unlock()
	return out, end, nil
}

// Quiesce blocks until every submitted future has resolved. Early
// termination (a satisfied LIMIT) can abandon futures that are still
// talking to the model; their prompts were issued and must be accounted,
// so callers quiesce before reading final stats or the makespan.
func (s *Scheduler) Quiesce() { s.inflight.Wait() }

// CriticalPath returns the longest dependency chain scheduled so far.
func (s *Scheduler) CriticalPath() VTime {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.span
}

// AggregateWork returns the summed latency of every issued prompt,
// across all endpoints.
func (s *Scheduler) AggregateWork() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total time.Duration
	for _, b := range s.busy {
		total += b
	}
	return total
}

// Makespan returns the simulated wall-clock of the query: the larger of
// the critical path and the busiest endpoint's work spread over its
// connection budget.
func (s *Scheduler) Makespan() VTime {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.span
	for _, b := range s.busy {
		if area := b / time.Duration(s.workers); area > out {
			out = area
		}
	}
	return out
}
