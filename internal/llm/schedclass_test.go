package llm

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// Tests for the class/weight dispatch layer: strict priority between
// the interactive and batch bands, token-denominated deficit shares
// within a band, the per-class gauges, and the class/weight fields on
// the tenant accounting. All of them run on a one-slot scheduler so
// the dispatch order is observable and deterministic: with a single
// worker, every grant happens in the completing job's run loop, one at
// a time, under the scheduler lock.

// TestSchedulerStarvationBound: the tentpole latency guarantee. A batch
// tenant saturates the only slot and queues a deep backlog; an
// interactive prompt that arrives afterwards must be granted the very
// next slot — it waits for exactly the one in-flight prompt, never for
// any queued batch work. (The live-clock twin of the simulator's
// strict-priority test; this one drives the real submit/run path and is
// meant to run under -race.)
func TestSchedulerStarvationBound(t *testing.T) {
	s := NewScheduler(nil, 1)
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	step := make(chan struct{}, 64)
	client := &seqLLM{release: release, onCall: func(p string) {
		mu.Lock()
		order = append(order, p)
		mu.Unlock()
		step <- struct{}{}
	}}

	batch := s.TenantFor(context.Background(), "bulk", ClassBatch, 1)
	defer batch.Close()
	inter := s.Tenant(context.Background(), "human")
	defer inter.Close()

	var futs []*Future
	futs = append(futs, batch.Submit(client, "b0", 0))
	<-step // b0 holds the slot
	for i := 1; i <= 9; i++ {
		futs = append(futs, batch.Submit(client, fmt.Sprintf("b%d", i), 0))
	}
	futs = append(futs, inter.Submit(client, "i0", 0))
	close(release)
	for _, f := range futs {
		if _, _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 11 {
		t.Fatalf("dispatched %d prompts, want 11 (order %v)", len(order), order)
	}
	// The bound: i0 is dispatched immediately after the in-flight b0,
	// ahead of all nine queued batch prompts.
	if order[1] != "i0" {
		t.Fatalf("starvation bound violated: interactive prompt ran at position %v, want 1 (order %v)", order, order)
	}
}

// TestSchedulerWeightedShare: within one band, slots divide in
// proportion to tenant weight. A weight-2 tenant drains two prompts per
// rotation against a weight-1 tenant's one (equal-cost prompts).
func TestSchedulerWeightedShare(t *testing.T) {
	s := NewScheduler(nil, 1)
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	step := make(chan struct{}, 64)
	client := &seqLLM{release: release, onCall: func(p string) {
		mu.Lock()
		order = append(order, p)
		mu.Unlock()
		step <- struct{}{}
	}}

	heavy := s.TenantFor(context.Background(), "heavy", ClassBatch, 2)
	defer heavy.Close()
	light := s.TenantFor(context.Background(), "light", ClassBatch, 1)
	defer light.Close()

	// h0 occupies the slot; then six heavy and three light one-token
	// prompts queue behind it.
	var futs []*Future
	futs = append(futs, heavy.Submit(client, "h0", 0))
	<-step
	for i := 1; i <= 6; i++ {
		futs = append(futs, heavy.Submit(client, fmt.Sprintf("h%d", i), 0))
	}
	for i := 1; i <= 3; i++ {
		futs = append(futs, light.Submit(client, fmt.Sprintf("l%d", i), 0))
	}
	close(release)
	for _, f := range futs {
		if _, _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	// Deficit rotation with quantum 1: heavy (weight 2) affords two
	// one-token prompts per visit, light (weight 1) one.
	want := []string{"h0", "h1", "h2", "l1", "h3", "h4", "l2", "h5", "h6", "l3"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("weighted drain order = %v, want %v", order, want)
	}
}

// TestSchedulerTokenProportionalShare: the deficit is denominated in
// prompt tokens, not prompt counts. At equal weight, a tenant sending
// three-token prompts gets one slot for every three a one-token tenant
// gets — token-fair, not count-fair.
func TestSchedulerTokenProportionalShare(t *testing.T) {
	s := NewScheduler(nil, 1)
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	step := make(chan struct{}, 64)
	client := &seqLLM{release: release, onCall: func(p string) {
		mu.Lock()
		order = append(order, p)
		mu.Unlock()
		step <- struct{}{}
	}}

	wide := s.TenantFor(context.Background(), "wide", ClassBatch, 1)
	defer wide.Close()
	thin := s.TenantFor(context.Background(), "thin", ClassBatch, 1)
	defer thin.Close()

	var futs []*Future
	futs = append(futs, wide.Submit(client, "w0 x y", 0))
	<-step
	futs = append(futs, wide.Submit(client, "w1 x y", 0)) // cost 3
	futs = append(futs, wide.Submit(client, "w2 x y", 0)) // cost 3
	for i := 1; i <= 6; i++ {
		futs = append(futs, thin.Submit(client, fmt.Sprintf("t%d", i), 0)) // cost 1
	}
	close(release)
	for _, f := range futs {
		if _, _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	// Each dispatch pass grants one token of deficit to every flow it
	// crosses, so a three-token prompt fires only after several thin
	// serves: the drain interleaves two thin prompts per wide one and
	// the totals come out token-fair — six thin jobs (6 tokens) against
	// two wide jobs (6 tokens).
	want := []string{"w0 x y", "t1", "t2", "w1 x y", "t3", "t4", "w2 x y", "t5", "t6"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("token-proportional drain order = %v, want %v", order, want)
	}
}

// TestSchedulerClassGauges: the observability snapshot tracks per-class
// queued/busy prompts and the cumulative drain counters that /stats and
// the admission controller read.
func TestSchedulerClassGauges(t *testing.T) {
	s := NewScheduler(nil, 1)
	client := &gatedLLM{release: make(chan struct{}), started: make(chan struct{}, 8)}

	batch := s.TenantFor(context.Background(), "bulk", ClassBatch, 1)
	defer batch.Close()
	inter := s.Tenant(context.Background(), "human")
	defer inter.Close()

	var futs []*Future
	futs = append(futs, batch.Submit(client, "b0", 0))
	<-client.started // b0 holds the only slot
	futs = append(futs, batch.Submit(client, "b1", 0))
	futs = append(futs, inter.Submit(client, "i0", 0))

	g := s.Gauges()
	if g.Workers != 1 {
		t.Errorf("workers = %d, want 1", g.Workers)
	}
	if g.Batch.Busy != 1 || g.Batch.Queued != 1 {
		t.Errorf("batch gauges = %+v, want busy 1 queued 1", g.Batch)
	}
	if g.Interactive.Busy != 0 || g.Interactive.Queued != 1 {
		t.Errorf("interactive gauges = %+v, want busy 0 queued 1", g.Interactive)
	}
	if g.Interactive.Drained != 0 || g.Batch.Drained != 0 {
		t.Errorf("drain counters moved before any queued grant: %+v / %+v", g.Interactive, g.Batch)
	}

	close(client.release)
	for _, f := range futs {
		if _, _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	g = s.Gauges()
	if g.Batch.Busy != 0 || g.Batch.Queued != 0 || g.Interactive.Busy != 0 || g.Interactive.Queued != 0 {
		t.Errorf("gauges leaked after drain: %+v", g)
	}
	// b0 ran on the direct path (free slot, never queued); b1 and i0
	// were queued and granted — one drain in each class.
	if g.Interactive.Drained != 1 || g.Batch.Drained != 1 {
		t.Errorf("drained = interactive %d / batch %d, want 1 / 1", g.Interactive.Drained, g.Batch.Drained)
	}
}

// TestSchedulerStatsClassWeight: tenant accounting carries the dispatch
// treatment (class, weight), and the aggregate makespan bound stays
// exact — and class-blind — for mixed-class tenant sets, because the
// bound is dispatch-policy-independent by construction.
func TestSchedulerStatsClassWeight(t *testing.T) {
	client := &echoLLM{name: "m", answer: "w x y z"}
	s := NewScheduler(nil, 2)
	a := s.Tenant(context.Background(), "a")
	defer a.Close()
	b := s.TenantFor(context.Background(), "b", ClassBatch, 3)
	defer b.Close()

	var futs []*Future
	for i := 0; i < 4; i++ {
		futs = append(futs, a.Submit(client, "shared pool prompt", 0))
	}
	for i := 0; i < 2; i++ {
		futs = append(futs, b.Submit(client, "shared pool prompt", 0))
	}
	for _, f := range futs {
		if _, _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	as, bs := a.Stats(), b.Stats()
	if as.Class != "interactive" || as.Weight != 1 {
		t.Errorf("default tenant stats = class %q weight %d, want interactive/1", as.Class, as.Weight)
	}
	if bs.Class != "batch" || bs.Weight != 3 {
		t.Errorf("batch tenant stats = class %q weight %d, want batch/3", bs.Class, bs.Weight)
	}

	// Exactness: same numbers the single-class accounting test proves,
	// unchanged by the class/weight split — 6 equal prompts over 2
	// workers, area-bound.
	one := latOf("shared pool prompt", "w x y z")
	if got := bs.Makespan(); got != one {
		t.Errorf("batch tenant solo makespan = %v, want %v", got, one)
	}
	if got := AggregateMakespan(2, []*TenantStats{as, bs}); got != 6*one/2 {
		t.Errorf("mixed-class aggregate makespan = %v, want %v", got, 6*one/2)
	}
}

// TestParseClass: the HTTP layer's class parser.
func TestParseClass(t *testing.T) {
	for in, want := range map[string]AdmissionClass{"": ClassInteractive, "interactive": ClassInteractive, "batch": ClassBatch} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseClass("bulk"); err == nil {
		t.Error("ParseClass(\"bulk\") accepted, want error")
	}
}
