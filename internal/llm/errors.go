package llm

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// ErrorClass partitions model-call failures into the categories the
// resilience layer (and the serve front end) react to differently. The
// taxonomy separates three axes the raw error string conflates: whose
// fault it was (caller vs backend), whether retrying can help, and
// whether the failure was the resilience layer shedding load on purpose.
type ErrorClass int

const (
	// ClassPermanent: the backend answered and the answer is a real
	// failure (malformed request, unsupported prompt, authorization).
	// Retrying the same prompt cannot help.
	ClassPermanent ErrorClass = iota
	// ClassTransient: the backend failed in a way that is expected to
	// heal (a 500/503 burst, a dropped connection, a rejected malformed
	// completion). Retrying with backoff is the correct reaction.
	ClassTransient
	// ClassDeadline: one attempt's per-prompt deadline expired before
	// the backend answered. Retryable — the next attempt may be faster —
	// but accounted separately from backend-reported errors.
	ClassDeadline
	// ClassCanceled: the caller's own context ended (cancellation or the
	// caller's deadline). Never retried, never counted against the
	// backend, never trips the breaker: the backend did nothing wrong.
	ClassCanceled
	// ClassBreakerOpen: the per-endpoint circuit breaker is open and the
	// call was shed without touching the backend. Callers should back
	// off; servers translate this into 503 + Retry-After.
	ClassBreakerOpen
	// ClassBudget: the retry budget was exhausted — the original failure
	// was transient, but retrying further would feed a retry storm.
	ClassBudget
)

// String names the class for diagnostics and stats surfaces.
func (c ErrorClass) String() string {
	switch c {
	case ClassPermanent:
		return "permanent"
	case ClassTransient:
		return "transient"
	case ClassDeadline:
		return "deadline"
	case ClassCanceled:
		return "canceled"
	case ClassBreakerOpen:
		return "breaker-open"
	case ClassBudget:
		return "retry-budget"
	}
	return "unknown"
}

// Error is a classified model-call failure. The resilience layer wraps
// every failure it propagates in one, so callers anywhere up the stack
// (operators, the session, the HTTP front end) can switch on Classify
// instead of string-matching.
type Error struct {
	Class    ErrorClass
	Endpoint string // model endpoint name, when known
	// Chain lists the endpoints attempted before Endpoint, in order, when
	// the failure traversed a failover route or a layered transport.
	// Endpoint is always the last backend actually attempted; Chain is
	// empty for single-backend failures.
	Chain []string
	Err   error // underlying cause, never nil
}

// Error implements error.
func (e *Error) Error() string {
	if e.Endpoint != "" {
		if len(e.Chain) > 0 {
			return fmt.Sprintf("llm %s (after %s) [%s]: %v", e.Endpoint, strings.Join(e.Chain, ", "), e.Class, e.Err)
		}
		return fmt.Sprintf("llm %s [%s]: %v", e.Endpoint, e.Class, e.Err)
	}
	return fmt.Sprintf("llm [%s]: %v", e.Class, e.Err)
}

// Attempted lists every endpoint the failure touched, in attempt order
// (the chain, then the final endpoint).
func (e *Error) Attempted() []string {
	out := append([]string(nil), e.Chain...)
	if e.Endpoint != "" {
		out = append(out, e.Endpoint)
	}
	return out
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }

// Transient wraps err as a retryable backend failure. Fault injectors
// and real HTTP clients use it to mark 5xx-style errors.
func Transient(err error) error { return &Error{Class: ClassTransient, Err: err} }

// Permanent wraps err as a non-retryable backend failure.
func Permanent(err error) error { return &Error{Class: ClassPermanent, Err: err} }

// DeadlineError wraps err as an expired per-prompt deadline (retryable,
// accounted separately from backend-reported errors).
func DeadlineError(err error) error { return &Error{Class: ClassDeadline, Err: err} }

// ErrBreakerOpen is the sentinel under every breaker-shed failure.
var ErrBreakerOpen = errors.New("circuit breaker open")

// ErrRetryBudgetExhausted is the sentinel under every failure where a
// retry was warranted but the token budget forbade it.
var ErrRetryBudgetExhausted = errors.New("retry budget exhausted")

// Classify reports the class of a model-call failure. Unwrapped context
// errors are the caller's own cancellation/deadline (the resilience
// layer always wraps the deadlines it imposes), and unclassified errors
// default to permanent — retrying an unknown failure is how retry
// storms start.
func Classify(err error) ErrorClass {
	if err == nil {
		return ClassPermanent
	}
	var ce *Error
	if errors.As(err, &ce) {
		return ce.Class
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassCanceled
	}
	return ClassPermanent
}

// IsRetryable reports whether the resilience layer may resubmit after
// this failure.
func IsRetryable(err error) bool {
	switch Classify(err) {
	case ClassTransient, ClassDeadline:
		return true
	}
	return false
}

// IsCancellation reports whether the failure is the caller's own context
// ending — not a backend failure, and never to be reported as one.
func IsCancellation(err error) bool { return Classify(err) == ClassCanceled }

// ---------------------------------------------------------------- context

type ctxKey int

const (
	ctxKeyAttempt ctxKey = iota
	ctxKeyRecorder
)

// WithAttempt marks ctx with the zero-based retry attempt of the prompt
// being issued. The resilience layer sets it on every attempt; fault
// injectors read it so an injected failure can be a pure function of
// (prompt, attempt) — the seed of the deterministic chaos harness.
func WithAttempt(ctx context.Context, attempt int) context.Context {
	return context.WithValue(ctx, ctxKeyAttempt, attempt)
}

// AttemptFromContext reports the retry attempt marked on ctx (0 when
// unmarked, i.e. a first attempt or an unwrapped client).
func AttemptFromContext(ctx context.Context) int {
	if v, ok := ctx.Value(ctxKeyAttempt).(int); ok {
		return v
	}
	return 0
}

// WithRecorder attaches the query's stats recorder to ctx so layers
// below the recorder itself (the resilience layer retries inside one
// recorded call) can attribute faults, retries and breaker sheds to the
// query that suffered them.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKeyRecorder, rec)
}

// recorderFromContext returns the recorder attached by WithRecorder
// (nil when none).
func recorderFromContext(ctx context.Context) *Recorder {
	rec, _ := ctx.Value(ctxKeyRecorder).(*Recorder)
	return rec
}
