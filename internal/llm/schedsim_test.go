package llm

import (
	"reflect"
	"testing"
)

// simTestWorkload is a small mixed-class workload with batch fan-out
// and staggered interactive chains — the shape the benchmark simulates,
// scaled down.
func simTestWorkload() []SimTenant {
	ts := []SimTenant{}
	for b := 0; b < 3; b++ {
		costs := make([]int, 4)
		for i := range costs {
			costs[i] = 24 + 8*((b+i)%3)
		}
		ts = append(ts, SimTenant{Tag: "batch", Class: ClassBatch, Weight: 1, Costs: costs})
	}
	for q := 0; q < 2; q++ {
		ts = append(ts, SimTenant{
			Tag:     "inter",
			Class:   ClassInteractive,
			Weight:  1,
			Arrival: VTime(q) * simService(16),
			Costs:   []int{16, 20, 16},
			Chain:   true,
		})
	}
	return ts
}

// TestSimulateDeterministic: identical inputs give identical outputs —
// the property that makes BENCH_sched.json a committed, diffable
// artifact. Both policies, run twice each.
func TestSimulateDeterministic(t *testing.T) {
	for _, p := range []SimPolicy{PolicyRoundRobin, PolicyDeficitWeighted} {
		a := Simulate(2, p, simTestWorkload())
		b := Simulate(2, p, simTestWorkload())
		if !reflect.DeepEqual(a, b) {
			t.Errorf("policy %v: two identical simulations diverged:\n%+v\n%+v", p, a, b)
		}
		if a.Makespan <= 0 || len(a.Tenants) != 5 {
			t.Errorf("policy %v: degenerate result %+v", p, a)
		}
	}
}

// TestSimulateStrictPriorityBound: on a single virtual slot saturated
// by eight batch tenants, an interactive arrival is served right after
// the in-flight prompt under the deficit policy (first latency = one
// in-flight service + its own), while the round-robin baseline makes it
// wait out a full rotation of the batch fleet. Exact virtual times, so
// any off-by-one in the dispatch plumbing fails loudly.
func TestSimulateStrictPriorityBound(t *testing.T) {
	const cost = 10
	ts := []SimTenant{}
	for b := 0; b < 8; b++ {
		ts = append(ts, SimTenant{Tag: "batch", Class: ClassBatch, Costs: []int{cost, cost, cost, cost}})
	}
	// Listed last: at t=0 its ready event sorts after every batch job's.
	ts = append(ts, SimTenant{Tag: "inter", Class: ClassInteractive, Costs: []int{cost}})

	s := simService(cost)
	drr := Simulate(1, PolicyDeficitWeighted, ts)
	if got := drr.Tenants[8].FirstLatency; got != 2*s {
		t.Errorf("deficit: interactive first latency = %v, want %v (one in-flight prompt + own service)", got, 2*s)
	}
	// Round-robin grants one job per tenant per rotation visit: the
	// interactive prompt is the 10th dispatch (b0's second job slips in
	// before the rotation reaches the late-added flow).
	rr := Simulate(1, PolicyRoundRobin, ts)
	if got := rr.Tenants[8].FirstLatency; got != 10*s {
		t.Errorf("round-robin: interactive first latency = %v, want %v", got, 10*s)
	}
	// Both policies are work-conserving on a saturated slot: same
	// makespan, 33 equal-cost jobs back to back.
	if drr.Makespan != 33*s || rr.Makespan != 33*s {
		t.Errorf("makespans = %v / %v, want both %v", drr.Makespan, rr.Makespan, 33*s)
	}
}

// TestSimServiceModel: the exported service-time accessor matches the
// scheduler's latency model for the simulator's fixed completion size.
func TestSimServiceModel(t *testing.T) {
	if got, want := SimService(10), promptLatency(10, simCompletionTokens); got != want {
		t.Errorf("SimService(10) = %v, want %v", got, want)
	}
}

// TestPercentile: nearest-rank on small slices, plus the empty and
// out-of-range edges.
func TestPercentile(t *testing.T) {
	ds := []VTime{4, 1, 3, 2}
	cases := []struct {
		p    float64
		want VTime
	}{{1, 1}, {25, 1}, {50, 2}, {75, 3}, {99, 4}, {100, 4}}
	for _, c := range cases {
		if got := Percentile(ds, c.p); got != c.want {
			t.Errorf("Percentile(%v, %v) = %v, want %v", ds, c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}
