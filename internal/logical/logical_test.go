package logical

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/sql/parser"
	"repro/internal/value"
)

// fakeResolver serves two tables: city (LLM) and employees (DB).
type fakeResolver struct{}

func cityDef() *schema.TableDef {
	return &schema.TableDef{
		Name:      "city",
		KeyColumn: "name",
		Schema: schema.New(
			schema.Column{Name: "name", Type: value.KindString},
			schema.Column{Name: "country", Type: value.KindString},
			schema.Column{Name: "population", Type: value.KindInt},
		),
	}
}

func employeesDef() *schema.TableDef {
	return &schema.TableDef{
		Name:      "employees",
		KeyColumn: "id",
		Schema: schema.New(
			schema.Column{Name: "id", Type: value.KindInt},
			schema.Column{Name: "countryCode", Type: value.KindString},
			schema.Column{Name: "salary", Type: value.KindFloat},
		),
	}
}

func (fakeResolver) ResolveTable(name, explicit string) (*schema.TableDef, string, error) {
	switch strings.ToLower(name) {
	case "city":
		return cityDef(), "LLM", nil
	case "employees":
		return employeesDef(), "DB", nil
	}
	return nil, "", fmt.Errorf("no table %s", name)
}

func build(t *testing.T, sql string) Node {
	t.Helper()
	sel, err := parser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(sel, fakeResolver{})
	if err != nil {
		t.Fatalf("Build(%q): %v", sql, err)
	}
	return n
}

func TestScanSchemas(t *testing.T) {
	llm := NewScan(cityDef(), "c", "LLM")
	if llm.Schema().Len() != 1 || llm.Schema().Columns[0].Name != "name" {
		t.Errorf("LLM scan exposes only the key: %v", llm.Schema())
	}
	db := NewScan(employeesDef(), "e", "DB")
	if db.Schema().Len() != 3 {
		t.Errorf("DB scan exposes all columns: %v", db.Schema())
	}
	if db.Schema().Columns[0].Table != "e" {
		t.Error("scan columns must be qualified by binding")
	}
}

func TestBuildSimple(t *testing.T) {
	n := build(t, "SELECT countryCode FROM employees")
	proj, ok := n.(*Project)
	if !ok {
		t.Fatalf("root = %T", n)
	}
	if _, ok := proj.Input.(*Scan); !ok {
		t.Fatalf("input = %T", proj.Input)
	}
}

func TestBuildWhere(t *testing.T) {
	n := build(t, "SELECT id FROM employees WHERE salary > 50000")
	proj := n.(*Project)
	if _, ok := proj.Input.(*Filter); !ok {
		t.Fatalf("expected Filter below Project, got %T", proj.Input)
	}
}

func TestBuildTypesLLMColumnsBeforeLowering(t *testing.T) {
	// population is not in the LLM scan's runtime schema, but typing must
	// succeed from the declared schema.
	n := build(t, "SELECT name, population FROM city")
	cols := n.Schema().Columns
	if cols[1].Type != value.KindInt {
		t.Errorf("population typed %v", cols[1].Type)
	}
}

func TestBuildAggregate(t *testing.T) {
	n := build(t, "SELECT countryCode, COUNT(*), AVG(salary) FROM employees GROUP BY countryCode")
	proj := n.(*Project)
	agg, ok := proj.Input.(*Aggregate)
	if !ok {
		t.Fatalf("expected Aggregate, got %T", proj.Input)
	}
	if len(agg.Aggs) != 2 {
		t.Fatalf("aggs = %d", len(agg.Aggs))
	}
	out := n.Schema()
	if out.Columns[1].Type != value.KindInt || out.Columns[2].Type != value.KindFloat {
		t.Errorf("agg output types = %v", out)
	}
}

func TestBuildHaving(t *testing.T) {
	n := build(t, "SELECT countryCode FROM employees GROUP BY countryCode HAVING COUNT(*) > 2")
	proj := n.(*Project)
	if _, ok := proj.Input.(*Filter); !ok {
		t.Fatalf("HAVING should become a Filter above the Aggregate, got %T", proj.Input)
	}
}

func TestImplicitFirstAggregate(t *testing.T) {
	// The paper's hybrid query selects a non-grouped column.
	n := build(t, "SELECT salary, COUNT(*) FROM employees GROUP BY countryCode")
	proj := n.(*Project)
	agg := proj.Input.(*Aggregate)
	found := false
	for _, spec := range agg.Aggs {
		if spec.Call.Name == "FIRST" {
			found = true
		}
	}
	if !found {
		t.Error("non-grouped column should compile to FIRST()")
	}
	// The output column keeps the user-visible name.
	if n.Schema().Columns[0].Name != "salary" {
		t.Errorf("output column = %q", n.Schema().Columns[0].Name)
	}
}

func TestUngroupedAggregateMixRejected(t *testing.T) {
	sel, err := parser.ParseSelect("SELECT COUNT(zzz) FROM employees")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(sel, fakeResolver{}); err == nil {
		t.Error("aggregate over unknown column must fail")
	}
}

func TestOrderByHiddenColumn(t *testing.T) {
	// ORDER BY references a column that is not projected.
	n := build(t, "SELECT countryCode FROM employees ORDER BY salary DESC LIMIT 1")
	strip, ok := n.(*StripProject)
	if !ok {
		t.Fatalf("root should strip the hidden sort column, got %T", n)
	}
	if strip.Schema().Len() != 1 || strip.Schema().Columns[0].Name != "countryCode" {
		t.Errorf("final schema = %v", strip.Schema())
	}
	lim, ok := strip.Input.(*Limit)
	if !ok {
		t.Fatalf("below strip = %T", strip.Input)
	}
	if _, ok := lim.Input.(*Sort); !ok {
		t.Fatalf("below limit = %T", lim.Input)
	}
}

func TestOrderByProjectedAlias(t *testing.T) {
	n := build(t, "SELECT salary AS s FROM employees ORDER BY s")
	if _, ok := n.(*Sort); !ok {
		t.Fatalf("ORDER BY alias needs no hidden column, got %T", n)
	}
}

func TestDistinct(t *testing.T) {
	n := build(t, "SELECT DISTINCT countryCode FROM employees")
	if _, ok := n.(*Distinct); !ok {
		t.Fatalf("root = %T", n)
	}
}

func TestStarExpansion(t *testing.T) {
	n := build(t, "SELECT * FROM employees")
	if n.Schema().Len() != 3 {
		t.Errorf("star over employees = %v", n.Schema())
	}
	// LLM star expands to the declared columns, not just the key.
	n = build(t, "SELECT * FROM city")
	if n.Schema().Len() != 3 {
		t.Errorf("star over LLM city = %v", n.Schema())
	}
}

func TestJoins(t *testing.T) {
	n := build(t, "SELECT c.name, e.salary FROM city c, employees e WHERE c.country = e.countryCode")
	proj := n.(*Project)
	filter, ok := proj.Input.(*Filter)
	if !ok {
		t.Fatalf("WHERE over the join = %T", proj.Input)
	}
	join, ok := filter.Input.(*Join)
	if !ok {
		t.Fatalf("join = %T", filter.Input)
	}
	if join.Type.String() != "CROSS JOIN" {
		t.Errorf("comma join is cross before optimization, got %v", join.Type)
	}
}

func TestExplain(t *testing.T) {
	n := build(t, "SELECT countryCode FROM employees WHERE salary > 1")
	out := Explain(n)
	for _, want := range []string{"Project", "Filter", "Scan employees"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// Indentation reflects depth.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[1], "  ") {
		t.Errorf("child not indented:\n%s", out)
	}
}

func TestNoFromRejected(t *testing.T) {
	sel, err := parser.ParseSelect("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(sel, fakeResolver{}); err == nil {
		t.Error("SELECT without FROM must be rejected")
	}
}

func TestFetchAttrNode(t *testing.T) {
	scan := NewScan(cityDef(), "c", "LLM")
	fa, err := NewFetchAttr(scan, cityDef(), "c", "population", 0)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Schema().Len() != 2 || fa.Schema().Columns[1].Type != value.KindInt {
		t.Errorf("FetchAttr schema = %v", fa.Schema())
	}
	if !strings.Contains(fa.Describe(), "LLMFetchAttr") {
		t.Errorf("Describe = %q", fa.Describe())
	}
	if _, err := NewFetchAttr(scan, cityDef(), "c", "zzz", 0); err == nil {
		t.Error("unknown attribute must fail")
	}
}

func TestInferType(t *testing.T) {
	s := schema.New(
		schema.Column{Name: "a", Type: value.KindInt},
		schema.Column{Name: "f", Type: value.KindFloat},
		schema.Column{Name: "s", Type: value.KindString},
	)
	cases := []struct {
		src  string
		want value.Kind
	}{
		{"a + a", value.KindInt},
		{"a + f", value.KindFloat},
		{"a / a", value.KindFloat},
		{"s + s", value.KindString},
		{"a > 1", value.KindBool},
		{"a IN (1)", value.KindBool},
		{"LENGTH(s)", value.KindInt},
		{"UPPER(s)", value.KindString},
	}
	for _, c := range cases {
		sel, err := parser.ParseSelect("SELECT " + c.src + " FROM t")
		if err != nil {
			t.Fatal(err)
		}
		got, err := InferType(sel.Items[0].Expr, s)
		if err != nil {
			t.Errorf("InferType(%s): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("InferType(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}
