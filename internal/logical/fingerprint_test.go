package logical

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

func fpTableDef(name, key string) *schema.TableDef {
	return &schema.TableDef{
		Name:      name,
		KeyColumn: key,
		Schema: schema.New(
			schema.Column{Name: "name", Type: value.KindString},
			schema.Column{Name: "population", Type: value.KindInt},
		),
	}
}

func popFilter(in Node, n int64) *Filter {
	return &Filter{Input: in, Cond: &ast.Binary{
		Op:    ">",
		Left:  &ast.ColumnRef{Table: "c", Name: "population"},
		Right: &ast.Literal{Val: value.Int(n)},
	}}
}

func TestFingerprintDeterministicAndDistinct(t *testing.T) {
	def := fpTableDef("city", "name")

	a := popFilter(NewScan(def, "c", "LLM"), 1000000)
	b := popFilter(NewScan(def, "c", "LLM"), 1000000)
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("identical plans produced different fingerprints")
	}

	// Literals are kept: a different constant is a different result.
	c := popFilter(NewScan(def, "c", "LLM"), 500000)
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("different literals collided")
	}

	// The resolved source is folded in: an LLM scan and a DB scan of the
	// same table never collide.
	if Fingerprint(NewScan(def, "c", "LLM")) == Fingerprint(NewScan(def, "c", "DB")) {
		t.Error("LLM and DB scans collided")
	}

	// Table bindings are folded in: rebinding the same name with a
	// different schema or key changes the fingerprint.
	def2 := fpTableDef("city", "population")
	if Fingerprint(NewScan(def, "c", "LLM")) == Fingerprint(NewScan(def2, "c", "LLM")) {
		t.Error("bindings with different key columns collided")
	}
	def3 := fpTableDef("city", "name")
	def3.Schema = schema.New(schema.Column{Name: "name", Type: value.KindString})
	if Fingerprint(NewScan(def, "c", "LLM")) == Fingerprint(NewScan(def3, "c", "LLM")) {
		t.Error("bindings with different schemas collided")
	}

	// Distinct key-column prefixes are result-relevant.
	d1 := &Distinct{Input: NewScan(def, "c", "DB"), KeyCols: 0}
	d2 := &Distinct{Input: NewScan(def, "c", "DB"), KeyCols: 1}
	if Fingerprint(d1) == Fingerprint(d2) {
		t.Error("Distinct with different key prefixes collided")
	}

	// Structure is parenthesized: nesting order matters.
	if fp := Fingerprint(a); !strings.Contains(fp, "(") || !strings.Contains(fp, "LLMKeyScan") {
		t.Errorf("fingerprint misses structure: %q", fp)
	}
}
