package logical

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/sql/ast"
)

// This file is the structured side of the plan's canonical form. The
// flat text rendered by Fingerprint keys exact-match result caching;
// Decompose breaks the same built plan into the pieces subsumption
// matching needs: the FROM tree, the conjuncts filtering it, and the
// operator chain above. A cached relation R answers an incoming query Q
// when both read the same FROM tree, R's conjuncts are a subset of Q's
// (R is weaker-or-equal), and everything Q computes resolves over R's
// output columns — then Q's residual (its extra conjuncts plus its own
// upper chain) evaluated over R is exactly Q's result, for zero prompts.

// ComponentDB is the invalidation component of every DB-bound scan: all
// relational tables share one attached store, so re-attaching it
// invalidates them together.
const ComponentDB = "db"

// ComponentLLM returns the invalidation component of one LLM table
// binding. Rebinding that table invalidates only entries reading it.
func ComponentLLM(table string) string { return "llm:" + strings.ToLower(table) }

// Components returns the sorted invalidation components of every base
// relation the plan reads.
func Components(n Node) []string {
	set := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		if s, ok := n.(*Scan); ok {
			if s.Source == "LLM" {
				set[ComponentLLM(s.Table.Name)] = true
			} else {
				set[ComponentDB] = true
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Conjunct is one AND-ed base-filter predicate in canonical form: the
// rendered text (the unit of subsumption comparison) plus the expression
// itself (re-used to build residual filters).
type Conjunct struct {
	Text string
	Expr ast.Expr
}

// Shape is the structured canonical form of one built (pre-optimization)
// plan. The builder emits a fixed single-input chain —
// Strip?(Limit?(Sort?(Distinct?(Project(Filter*(Aggregate?(Filter*(FROM))))))))
// — and Decompose splits it at the base filters directly above the FROM
// tree.
type Shape struct {
	// From is the root of the maximal Scan/Join subtree.
	From Node
	// FromKey canonically serializes the FROM tree (bindings, sources,
	// declared schemas, join structure with literals). Two shapes can
	// only subsume one another when their FromKeys are equal.
	FromKey string
	// FromLabel renders the FROM tree for humans; EXPLAIN's
	// "residual over cached(...)" nodes carry it.
	FromLabel string
	// Conjuncts are the AND-ed base-filter predicates directly above
	// the FROM tree, in plan order, deduplicated by rendered text.
	Conjuncts []Conjunct
	// Upper is the operator chain above the base filters, outermost
	// first. For a plain filtered projection it is just [Project].
	Upper []Node
	// Tables are the sorted invalidation components the plan reads.
	Tables []string
	// Producer reports whether this plan's result can answer subsumed
	// queries: the upper chain must be exactly one Project with no
	// hidden columns — no Sort, Distinct, Aggregate or Limit — so the
	// cached rows keep the base scan order and full row set that any
	// residual consumer (including ones adding Sort/Limit/Distinct on
	// top) reproduces bit-identically.
	Producer bool
	// HasLimit reports a truncating plan (a Limit node anywhere): its
	// result must never be stored as the query's complete relation.
	HasLimit bool
}

// ConjunctTexts returns the canonical texts of the base conjuncts.
func (s *Shape) ConjunctTexts() []string {
	out := make([]string, len(s.Conjuncts))
	for i, c := range s.Conjuncts {
		out[i] = c.Text
	}
	return out
}

// Decompose computes the structured canonical form of a built plan. It
// returns nil when the plan does not fit the builder's single-input
// chain over a Scan/Join FROM tree (defensive: such plans simply do not
// participate in subsumption).
func Decompose(n Node) *Shape {
	var chain []Node
	cur := n
walk:
	for {
		switch cur.(type) {
		case *StripProject, *Limit, *Sort, *Distinct, *Project, *Aggregate, *Filter:
			chain = append(chain, cur)
			cur = cur.Children()[0]
		default:
			break walk
		}
	}
	if !fromOnly(cur) {
		return nil
	}
	// Peel the run of Filters sitting directly on the FROM tree: those
	// are the base conjuncts (WHERE, and HAVING when no aggregate
	// intervenes). A Filter above an Aggregate stays in the upper chain.
	base := len(chain)
	for base > 0 {
		if _, ok := chain[base-1].(*Filter); !ok {
			break
		}
		base--
	}
	var conjs []Conjunct
	seen := map[string]bool{}
	for _, f := range chain[base:] {
		for _, e := range splitAnd(f.(*Filter).Cond) {
			t := e.String()
			if seen[t] {
				continue
			}
			seen[t] = true
			conjs = append(conjs, Conjunct{Text: t, Expr: e})
		}
	}
	upper := chain[:base]
	producer := false
	if len(upper) == 1 {
		if p, ok := upper[0].(*Project); ok && p.Hidden == 0 {
			producer = true
		}
	}
	hasLimit := false
	for _, c := range chain {
		if _, ok := c.(*Limit); ok {
			hasLimit = true
		}
	}
	return &Shape{
		From:      cur,
		FromKey:   Fingerprint(cur),
		FromLabel: fromLabel(cur),
		Conjuncts: conjs,
		Upper:     upper,
		Tables:    Components(cur),
		Producer:  producer,
		HasLimit:  hasLimit,
	}
}

// fromOnly reports whether the subtree consists solely of Scan and Join
// nodes — a pure FROM tree.
func fromOnly(n Node) bool {
	switch n.(type) {
	case *Scan:
		return true
	case *Join:
		for _, c := range n.Children() {
			if !fromOnly(c) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// fromLabel renders a FROM tree compactly for cache diagnostics and
// EXPLAIN.
func fromLabel(n Node) string {
	switch node := n.(type) {
	case *Scan:
		return fmt.Sprintf("%s.%s AS %s", node.Source, node.Table.Name, node.Binding)
	case *Join:
		return fromLabel(node.Left) + " JOIN " + fromLabel(node.Right)
	default:
		return "?"
	}
}

// splitAnd flattens a predicate into its AND-ed conjuncts.
func splitAnd(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.Binary); ok && b.Op == "AND" {
		return append(splitAnd(b.Left), splitAnd(b.Right)...)
	}
	return []ast.Expr{e}
}

// Subsumes reports whether a cached producer — over the FROM tree
// identified by fromKey, filtered by producerConjuncts — can answer the
// incoming shape, and returns the residual conjuncts the consumer must
// still apply locally. The producer must be weaker-or-equal: every one
// of its conjuncts appears (textually) among the incoming ones;
// anything else risks the cached relation missing rows the incoming
// query needs. Column coverage is not checked here — the residual plan
// either compiles against the producer's output schema or the candidate
// is discarded.
func Subsumes(in *Shape, fromKey string, producerConjuncts []string) ([]ast.Expr, bool) {
	if in == nil || in.FromKey != fromKey {
		return nil, false
	}
	prod := map[string]bool{}
	for _, t := range producerConjuncts {
		prod[t] = true
	}
	matched := 0
	var residual []ast.Expr
	for _, c := range in.Conjuncts {
		if prod[c.Text] {
			matched++
			continue
		}
		residual = append(residual, c.Expr)
	}
	if matched != len(prod) {
		return nil, false
	}
	return residual, true
}

// BuildResidual rebuilds the incoming shape's plan over a cached
// relation: the upper chain is copied node-for-node onto a residual
// Filter (the conjuncts the producer did not already apply) over cs.
// Expressions are reused as-is; whether they resolve against the
// producer's output schema is decided by compiling the returned plan.
func BuildResidual(in *Shape, cs *CachedScan, residual []ast.Expr) (Node, error) {
	var out Node = cs
	if len(residual) > 0 {
		cond := residual[0]
		for _, c := range residual[1:] {
			cond = &ast.Binary{Op: "AND", Left: cond, Right: c}
		}
		out = &Filter{Input: out, Cond: cond}
	}
	for i := len(in.Upper) - 1; i >= 0; i-- {
		n, err := rewire(in.Upper[i], out)
		if err != nil {
			return nil, err
		}
		out = n
	}
	return out, nil
}

// rewire shallow-copies one chain operator onto a new input. Output
// schemas are reused: they were typed at build time and the residual
// preserves column positions.
func rewire(n Node, input Node) (Node, error) {
	switch node := n.(type) {
	case *Filter:
		return &Filter{Input: input, Cond: node.Cond}, nil
	case *Project:
		return &Project{Input: input, Items: node.Items, Hidden: node.Hidden, out: node.out}, nil
	case *Aggregate:
		return &Aggregate{Input: input, GroupBy: node.GroupBy, Aggs: node.Aggs, out: node.out}, nil
	case *StripProject:
		return &StripProject{Input: input, Keep: node.Keep, out: node.out}, nil
	case *Distinct:
		return &Distinct{Input: input, KeyCols: node.KeyCols}, nil
	case *Sort:
		return &Sort{Input: input, Items: node.Items}, nil
	case *Limit:
		return &Limit{Input: input, N: node.N, Offset: node.Offset}, nil
	default:
		return nil, fmt.Errorf("logical: cannot rebuild %T over a cached relation", n)
	}
}

// CachedScan is the leaf of a residual plan: it reads a relation the
// result cache materialized earlier instead of any base table. Source
// and Stamp identify the producing cache entry (its exact-match key);
// Rel is attached immediately before execution, after the residual plan
// has won costing — the entry may have been evicted in between, in
// which case the session falls back to fresh execution.
type CachedScan struct {
	Label  string // FROM-tree label of the producing plan
	Source string // exact-match fingerprint of the producing entry
	Stamp  string // per-table epoch stamp the entry is valid under
	Rows   int    // cached cardinality, for costing
	Rel    *schema.Relation
	out    *schema.Schema
}

// NewCachedScan builds a cached-relation leaf with the producer's output
// schema.
func NewCachedScan(label, source, stamp string, rows int, out *schema.Schema) *CachedScan {
	return &CachedScan{Label: label, Source: source, Stamp: stamp, Rows: rows, out: out}
}

// Schema implements Node.
func (c *CachedScan) Schema() *schema.Schema { return c.out }

// Children implements Node.
func (c *CachedScan) Children() []Node { return nil }

// Describe implements Node.
func (c *CachedScan) Describe() string {
	return fmt.Sprintf("residual over cached(%s) [%d rows]", c.Label, c.Rows)
}

// FindCachedScan returns the plan's CachedScan leaf, or nil when the
// plan executes against base tables.
func FindCachedScan(n Node) *CachedScan {
	if cs, ok := n.(*CachedScan); ok {
		return cs
	}
	for _, c := range n.Children() {
		if cs := FindCachedScan(c); cs != nil {
			return cs
		}
	}
	return nil
}
