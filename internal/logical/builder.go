package logical

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/sql/ast"
)

// Resolver maps a table name (and optional explicit source qualifier from
// "LLM.country"-style references) to its definition and the engine that
// materializes it.
type Resolver interface {
	// ResolveTable returns the table definition and the source ("DB" or
	// "LLM") for a FROM item. explicit is "" when the query did not
	// qualify the table.
	ResolveTable(name, explicit string) (*schema.TableDef, string, error)
}

// Build turns a parsed SELECT into a logical plan. The plan is generic:
// LLM-specific lowering (FetchAttr / LLMFilter injection) happens in the
// optimizer package.
func Build(sel *ast.Select, r Resolver) (Node, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("logical: SELECT without FROM is not supported")
	}

	// FROM: left-deep join tree of scans. The typing schema collects the
	// FULL declared columns of every table (qualified by binding): before
	// LLM lowering, the runtime schema of an LLM scan holds only the key,
	// but expressions must type against everything the relation offers.
	var root Node
	typing := schema.New()
	for i, ref := range sel.From {
		def, source, err := r.ResolveTable(ref.Table, ref.Source)
		if err != nil {
			return nil, err
		}
		for _, c := range def.Schema.Columns {
			typing.Columns = append(typing.Columns,
				schema.Column{Table: ref.Binding(), Name: c.Name, Type: c.Type})
		}
		scan := NewScan(def, ref.Binding(), source)
		if i == 0 {
			root = scan
			continue
		}
		jt := ref.Join
		if jt == ast.JoinNone {
			jt = ast.JoinCross
		}
		root = NewJoin(root, scan, jt, ref.On)
	}

	// Comma-style joins express the join predicate in WHERE; leave it
	// there — the optimizer turns cross+filter into keyed joins.
	if sel.Where != nil {
		root = &Filter{Input: root, Cond: sel.Where}
	}

	// Aggregation. Collect aggregate calls from the output expressions,
	// HAVING and ORDER BY; if any exist (or GROUP BY does), insert an
	// Aggregate node and rewrite the upper expressions to reference its
	// output columns.
	items := make([]ast.SelectItem, len(sel.Items))
	copy(items, sel.Items)
	having := sel.Having
	orderBy := make([]ast.OrderItem, len(sel.OrderBy))
	copy(orderBy, sel.OrderBy)

	var aggCalls []*ast.FuncCall
	seenAgg := map[string]bool{}
	collect := func(e ast.Expr) {
		ast.Walk(e, func(x ast.Expr) bool {
			if f, ok := x.(*ast.FuncCall); ok && f.IsAggregate() {
				if !seenAgg[f.String()] {
					seenAgg[f.String()] = true
					aggCalls = append(aggCalls, f)
				}
				return false
			}
			return true
		})
	}
	for _, it := range items {
		collect(it.Expr)
	}
	if having != nil {
		collect(having)
	}
	for _, o := range orderBy {
		collect(o.Expr)
	}

	if len(aggCalls) > 0 || len(sel.GroupBy) > 0 {
		specs := make([]AggSpec, len(aggCalls))
		for i, c := range aggCalls {
			specs[i] = AggSpec{Call: c, Name: c.String()}
		}

		// Permissive GROUP BY (the paper's hybrid query selects c.gdp
		// while grouping by e.countryCode): non-grouped, non-aggregated
		// column references become implicit FIRST() aggregates, taking
		// the first value within each group.
		grouped := map[string]bool{}
		for _, g := range sel.GroupBy {
			grouped[g.String()] = true
		}
		haveAgg := map[string]bool{}
		for _, spec := range specs {
			haveAgg[spec.Name] = true
		}
		implicit := map[string]AggSpec{}
		collectImplicit := func(e ast.Expr) {
			ast.Walk(e, func(x ast.Expr) bool {
				if f, ok := x.(*ast.FuncCall); ok && f.IsAggregate() {
					return false
				}
				if ref, ok := x.(*ast.ColumnRef); ok && !grouped[ref.String()] {
					call := &ast.FuncCall{Name: "FIRST", Args: []ast.Expr{ref}}
					if !haveAgg[call.String()] {
						haveAgg[call.String()] = true
						implicit[ref.String()] = AggSpec{Call: call, Name: call.String()}
					}
				}
				return true
			})
		}
		for _, it := range items {
			collectImplicit(it.Expr)
		}
		if having != nil {
			collectImplicit(having)
		}
		for _, o := range orderBy {
			collectImplicit(o.Expr)
		}
		implicitRefs := make([]string, 0, len(implicit))
		for refText := range implicit {
			implicitRefs = append(implicitRefs, refText)
		}
		sort.Strings(implicitRefs)
		for _, refText := range implicitRefs {
			specs = append(specs, implicit[refText])
		}

		agg, err := NewAggregateTyped(root, sel.GroupBy, specs, typing)
		if err != nil {
			return nil, err
		}
		root = agg
		// Everything above the aggregate references only its outputs.
		typing = agg.Schema()

		// Rewrite references to aggregates and group-by expressions into
		// column references over the aggregate output.
		repl := map[string]ast.Expr{}
		for _, spec := range specs {
			repl[spec.Name] = &ast.ColumnRef{Name: spec.Name}
		}
		for _, refText := range implicitRefs {
			repl[refText] = &ast.ColumnRef{Name: implicit[refText].Name}
		}
		for gi, g := range sel.GroupBy {
			col := agg.Schema().Columns[gi]
			repl[g.String()] = &ast.ColumnRef{Table: col.Table, Name: col.Name}
		}
		for i := range items {
			// Keep the user-visible output name when an implicit FIRST
			// replaces a bare column reference.
			if ref, ok := items[i].Expr.(*ast.ColumnRef); ok && items[i].Alias == "" {
				if _, isImplicit := implicit[ref.String()]; isImplicit {
					items[i].Alias = ref.Name
				}
			}
			items[i].Expr = RewriteExpr(items[i].Expr, repl)
		}
		if having != nil {
			having = RewriteExpr(having, repl)
		}
		for i := range orderBy {
			orderBy[i].Expr = RewriteExpr(orderBy[i].Expr, repl)
		}

		// Validate: every output must now resolve against the aggregate
		// schema.
		for _, it := range items {
			if err := validateRefs(it.Expr, agg.Schema()); err != nil {
				return nil, fmt.Errorf("logical: %s is neither aggregated nor grouped", it.Expr.String())
			}
		}
	}

	if having != nil {
		root = &Filter{Input: root, Cond: having}
	}

	// Expand * / t.* against the full declared columns (an LLM-bound
	// SELECT * retrieves every declared attribute, not just the key).
	items, err := expandStars(items, typing)
	if err != nil {
		return nil, err
	}

	// ORDER BY support: each order expression must be computable over the
	// projection output. If it matches a projected item (by alias or by
	// rendered text) reference that column; otherwise append a hidden item.
	hidden := 0
	orderRefs := make([]ast.OrderItem, len(orderBy))
	projItems := items
	for i, o := range orderBy {
		ref, found := matchProjected(o.Expr, items)
		if found {
			orderRefs[i] = ast.OrderItem{Expr: ref, Desc: o.Desc}
			continue
		}
		alias := fmt.Sprintf("__ord%d", i)
		projItems = append(projItems, ast.SelectItem{Expr: o.Expr, Alias: alias})
		hidden++
		orderRefs[i] = ast.OrderItem{Expr: &ast.ColumnRef{Name: alias}, Desc: o.Desc}
	}

	proj, err := NewProjectTyped(root, projItems, hidden, typing)
	if err != nil {
		return nil, err
	}
	root = proj

	if sel.Distinct {
		root = &Distinct{Input: root, KeyCols: len(items)}
	}
	if len(orderRefs) > 0 {
		root = &Sort{Input: root, Items: orderRefs}
	}
	if sel.Limit >= 0 || sel.Offset > 0 {
		n := sel.Limit
		if n < 0 {
			n = -1
		}
		root = &Limit{Input: root, N: n, Offset: sel.Offset}
	}
	if hidden > 0 {
		root = NewStripProject(root, len(items))
	}
	return root, nil
}

// matchProjected reports whether e matches one of the projected items,
// returning a column reference into the projection output to order by.
func matchProjected(e ast.Expr, items []ast.SelectItem) (ast.Expr, bool) {
	// Alias match: ORDER BY alias.
	if ref, ok := e.(*ast.ColumnRef); ok && ref.Table == "" {
		for _, it := range items {
			if it.Alias != "" && strings.EqualFold(it.Alias, ref.Name) {
				return &ast.ColumnRef{Name: it.Alias}, true
			}
		}
	}
	text := e.String()
	for _, it := range items {
		if it.Expr.String() == text {
			if it.Alias != "" {
				return &ast.ColumnRef{Name: it.Alias}, true
			}
			if ref, ok := it.Expr.(*ast.ColumnRef); ok {
				// Keep the qualifier: projected columns retain their
				// table binding, and two bindings may share a name.
				return &ast.ColumnRef{Table: ref.Table, Name: ref.Name}, true
			}
			return &ast.ColumnRef{Name: text}, true
		}
	}
	return nil, false
}

func expandStars(items []ast.SelectItem, s *schema.Schema) ([]ast.SelectItem, error) {
	var out []ast.SelectItem
	for _, it := range items {
		star, ok := it.Expr.(*ast.Star)
		if !ok {
			out = append(out, it)
			continue
		}
		matched := false
		for _, c := range s.Columns {
			if star.Table != "" && !strings.EqualFold(c.Table, star.Table) {
				continue
			}
			out = append(out, ast.SelectItem{Expr: &ast.ColumnRef{Table: c.Table, Name: c.Name}})
			matched = true
		}
		if !matched {
			return nil, fmt.Errorf("logical: %s matches no columns", star.String())
		}
	}
	return out, nil
}

func validateRefs(e ast.Expr, s *schema.Schema) error {
	var bad error
	ast.Walk(e, func(x ast.Expr) bool {
		if ref, ok := x.(*ast.ColumnRef); ok {
			if _, err := s.Resolve(ref.Table, ref.Name); err != nil {
				bad = err
				return false
			}
		}
		return true
	})
	return bad
}

// RewriteExpr returns a copy of e where any sub-expression whose rendered
// text matches a key of repl is replaced by the mapped expression.
// Replaced subtrees are not descended into.
func RewriteExpr(e ast.Expr, repl map[string]ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	if r, ok := repl[e.String()]; ok {
		return r
	}
	switch n := e.(type) {
	case *ast.Binary:
		return &ast.Binary{Op: n.Op, Left: RewriteExpr(n.Left, repl), Right: RewriteExpr(n.Right, repl)}
	case *ast.Unary:
		return &ast.Unary{Op: n.Op, Expr: RewriteExpr(n.Expr, repl)}
	case *ast.FuncCall:
		args := make([]ast.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = RewriteExpr(a, repl)
		}
		return &ast.FuncCall{Name: n.Name, Distinct: n.Distinct, Args: args}
	case *ast.InList:
		list := make([]ast.Expr, len(n.List))
		for i, a := range n.List {
			list[i] = RewriteExpr(a, repl)
		}
		return &ast.InList{Expr: RewriteExpr(n.Expr, repl), List: list, Not: n.Not}
	case *ast.Between:
		return &ast.Between{Expr: RewriteExpr(n.Expr, repl), Lo: RewriteExpr(n.Lo, repl), Hi: RewriteExpr(n.Hi, repl), Not: n.Not}
	case *ast.Like:
		return &ast.Like{Expr: RewriteExpr(n.Expr, repl), Pattern: RewriteExpr(n.Pattern, repl), Not: n.Not}
	case *ast.IsNull:
		return &ast.IsNull{Expr: RewriteExpr(n.Expr, repl), Not: n.Not}
	case *ast.Case:
		whens := make([]ast.CaseWhen, len(n.Whens))
		for i, w := range n.Whens {
			whens[i] = ast.CaseWhen{Cond: RewriteExpr(w.Cond, repl), Result: RewriteExpr(w.Result, repl)}
		}
		return &ast.Case{Whens: whens, Else: RewriteExpr(n.Else, repl)}
	default:
		return e
	}
}
