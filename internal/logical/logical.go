// Package logical defines the logical query plan Galois builds from a
// parsed SELECT. The plan doubles as the chain-of-thought decomposition of
// the query (Section 4 of the paper): each node is a simple step that either
// the LLM (via prompts) or the traditional engine can execute.
//
// Plans are trees of Node values. Scans carry the source binding ("DB" or
// "LLM"); the optimizer package lowers LLM-bound subtrees by injecting
// FetchAttr and LLMFilter nodes before operators that need attributes not
// yet retrieved.
package logical

import (
	"fmt"
	"strings"

	"repro/internal/schema"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// Node is one operator of the logical plan.
type Node interface {
	// Schema is the output schema of the operator.
	Schema() *schema.Schema
	// Children returns the input operators.
	Children() []Node
	// Describe renders the operator line for EXPLAIN.
	Describe() string
}

// Scan reads a base relation. For Source "DB" it produces every column;
// for Source "LLM" it produces only the key attribute (the paper's leaf
// retrieval), with other attributes fetched lazily by FetchAttr nodes.
// PushedFilter holds a selection merged into the retrieval prompt by the
// pushdown optimization; it is nil by default.
type Scan struct {
	Table        *schema.TableDef
	Binding      string // alias used in the query ("c" for "city c")
	Source       string // "DB" or "LLM"
	PushedFilter ast.Expr
	out          *schema.Schema
}

// NewScan builds a scan node. For LLM sources the output schema contains
// only the key column.
func NewScan(def *schema.TableDef, binding, source string) *Scan {
	s := &Scan{Table: def, Binding: binding, Source: source}
	if source == "LLM" {
		ki := def.KeyIndex()
		if ki < 0 {
			ki = 0
		}
		kc := def.Schema.Columns[ki]
		s.out = schema.New(schema.Column{Table: binding, Name: kc.Name, Type: kc.Type})
	} else {
		cols := make([]schema.Column, len(def.Schema.Columns))
		for i, c := range def.Schema.Columns {
			cols[i] = schema.Column{Table: binding, Name: c.Name, Type: c.Type}
		}
		s.out = schema.New(cols...)
	}
	return s
}

// Schema implements Node.
func (s *Scan) Schema() *schema.Schema { return s.out }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Describe implements Node.
func (s *Scan) Describe() string {
	var b strings.Builder
	if s.Source == "LLM" {
		fmt.Fprintf(&b, "LLMKeyScan %s AS %s (key=%s)", s.Table.Name, s.Binding, s.Table.KeyColumn)
	} else {
		fmt.Fprintf(&b, "Scan %s AS %s", s.Table.Name, s.Binding)
	}
	if s.PushedFilter != nil {
		fmt.Fprintf(&b, " [pushed: %s]", s.PushedFilter.String())
	}
	return b.String()
}

// FetchAttr retrieves one additional attribute of an LLM-bound relation for
// every input tuple ("Get the current mayor of c.name", Section 4). It is
// injected right before the operator that needs the attribute.
type FetchAttr struct {
	Input   Node
	Table   *schema.TableDef
	Binding string
	Attr    string
	KeyCol  int // index of the relation's key column in the input schema
	out     *schema.Schema
}

// NewFetchAttr builds a fetch node appending Attr to the input schema.
func NewFetchAttr(input Node, def *schema.TableDef, binding, attr string, keyCol int) (*FetchAttr, error) {
	var kind value.Kind
	found := false
	for _, c := range def.Schema.Columns {
		if strings.EqualFold(c.Name, attr) {
			kind = c.Type
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("logical: relation %s has no attribute %s", def.Name, attr)
	}
	out := input.Schema().Clone()
	out.Columns = append(out.Columns, schema.Column{Table: binding, Name: attr, Type: kind})
	return &FetchAttr{Input: input, Table: def, Binding: binding, Attr: attr, KeyCol: keyCol, out: out}, nil
}

// Schema implements Node.
func (f *FetchAttr) Schema() *schema.Schema { return f.out }

// Children implements Node.
func (f *FetchAttr) Children() []Node { return []Node{f.Input} }

// Describe implements Node.
func (f *FetchAttr) Describe() string {
	return fmt.Sprintf("LLMFetchAttr %s.%s (per key %s.%s)", f.Binding, f.Attr, f.Binding, f.Table.KeyColumn)
}

// LLMFilter filters tuples of an LLM-bound relation with one boolean prompt
// per key ("Has city c.name more than 1M population?"). Cond references
// exactly one non-key attribute of the relation compared to a literal.
type LLMFilter struct {
	Input   Node
	Table   *schema.TableDef
	Binding string
	Cond    *ast.Binary // attr op literal
	KeyCol  int
}

// Schema implements Node.
func (f *LLMFilter) Schema() *schema.Schema { return f.Input.Schema() }

// Children implements Node.
func (f *LLMFilter) Children() []Node { return []Node{f.Input} }

// Describe implements Node.
func (f *LLMFilter) Describe() string {
	return fmt.Sprintf("LLMFilter %s (per key %s.%s)", f.Cond.String(), f.Binding, f.Table.KeyColumn)
}

// Filter keeps tuples satisfying Cond; executed by the traditional engine.
type Filter struct {
	Input Node
	Cond  ast.Expr
}

// Schema implements Node.
func (f *Filter) Schema() *schema.Schema { return f.Input.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Input} }

// Describe implements Node.
func (f *Filter) Describe() string { return "Filter " + f.Cond.String() }

// Join combines two inputs. On is nil for cross joins.
type Join struct {
	Left  Node
	Right Node
	Type  ast.JoinType
	On    ast.Expr
	out   *schema.Schema
}

// NewJoin builds a join node with the concatenated schema.
func NewJoin(left, right Node, jt ast.JoinType, on ast.Expr) *Join {
	return &Join{Left: left, Right: right, Type: jt, On: on,
		out: left.Schema().Concat(right.Schema())}
}

// Schema implements Node.
func (j *Join) Schema() *schema.Schema { return j.out }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Describe implements Node.
func (j *Join) Describe() string {
	name := "Join"
	switch j.Type {
	case ast.JoinCross:
		name = "CrossJoin"
	case ast.JoinLeft:
		name = "LeftJoin"
	}
	if j.On == nil {
		return name
	}
	return name + " ON " + j.On.String()
}

// AggSpec is one aggregate computed by an Aggregate node.
type AggSpec struct {
	Call *ast.FuncCall
	Name string // output column name = Call.String()
}

// Aggregate groups the input by GroupBy and computes Aggs. Its output
// schema is the group-by columns followed by one column per aggregate.
type Aggregate struct {
	Input   Node
	GroupBy []ast.Expr
	Aggs    []AggSpec
	out     *schema.Schema
}

// NewAggregate builds an aggregate node, inferring output column types
// against the input's runtime schema.
func NewAggregate(input Node, groupBy []ast.Expr, aggs []AggSpec) (*Aggregate, error) {
	return NewAggregateTyped(input, groupBy, aggs, input.Schema())
}

// NewAggregateTyped builds an aggregate node, inferring types against an
// explicit typing schema. The builder passes the full declared schema of
// every FROM table here, because before LLM lowering the runtime schema of
// an LLM scan holds only the key attribute.
func NewAggregateTyped(input Node, groupBy []ast.Expr, aggs []AggSpec, in *schema.Schema) (*Aggregate, error) {
	var cols []schema.Column
	for _, g := range groupBy {
		kind, err := InferType(g, in)
		if err != nil {
			return nil, err
		}
		if ref, ok := g.(*ast.ColumnRef); ok {
			cols = append(cols, schema.Column{Table: ref.Table, Name: ref.Name, Type: kind})
		} else {
			cols = append(cols, schema.Column{Name: g.String(), Type: kind})
		}
	}
	for _, a := range aggs {
		kind, err := aggType(a.Call, in)
		if err != nil {
			return nil, err
		}
		cols = append(cols, schema.Column{Name: a.Name, Type: kind})
	}
	return &Aggregate{Input: input, GroupBy: groupBy, Aggs: aggs, out: schema.New(cols...)}, nil
}

func aggType(call *ast.FuncCall, in *schema.Schema) (value.Kind, error) {
	switch call.Name {
	case "COUNT":
		// COUNT(expr) still requires the argument to resolve.
		if len(call.Args) == 1 {
			if _, isStar := call.Args[0].(*ast.Star); !isStar {
				if _, err := InferType(call.Args[0], in); err != nil {
					return value.KindNull, err
				}
			}
		}
		return value.KindInt, nil
	case "SUM", "AVG":
		return value.KindFloat, nil
	case "MIN", "MAX", "FIRST":
		if len(call.Args) != 1 {
			return value.KindNull, fmt.Errorf("logical: %s expects one argument", call.Name)
		}
		return InferType(call.Args[0], in)
	default:
		return value.KindNull, fmt.Errorf("logical: unknown aggregate %s", call.Name)
	}
}

// Schema implements Node.
func (a *Aggregate) Schema() *schema.Schema { return a.out }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Input} }

// Describe implements Node.
func (a *Aggregate) Describe() string {
	var parts []string
	for _, s := range a.Aggs {
		parts = append(parts, s.Name)
	}
	d := "Aggregate [" + strings.Join(parts, ", ") + "]"
	if len(a.GroupBy) > 0 {
		var gs []string
		for _, g := range a.GroupBy {
			gs = append(gs, g.String())
		}
		d += " GROUP BY " + strings.Join(gs, ", ")
	}
	return d
}

// Project evaluates Items over each input tuple. Hidden marks trailing
// items added only to support ORDER BY; a final StripProject removes them.
type Project struct {
	Input  Node
	Items  []ast.SelectItem
	Hidden int // number of trailing hidden items
	out    *schema.Schema
}

// NewProject builds a projection node, naming output columns by alias,
// column reference, or rendered expression. Types are inferred against the
// input's runtime schema.
func NewProject(input Node, items []ast.SelectItem, hidden int) (*Project, error) {
	return NewProjectTyped(input, items, hidden, input.Schema())
}

// NewProjectTyped is NewProject with an explicit typing schema (see
// NewAggregateTyped).
func NewProjectTyped(input Node, items []ast.SelectItem, hidden int, in *schema.Schema) (*Project, error) {
	cols := make([]schema.Column, len(items))
	for i, it := range items {
		kind, err := InferType(it.Expr, in)
		if err != nil {
			return nil, err
		}
		switch {
		case it.Alias != "":
			cols[i] = schema.Column{Name: it.Alias, Type: kind}
		default:
			if ref, ok := it.Expr.(*ast.ColumnRef); ok {
				cols[i] = schema.Column{Table: ref.Table, Name: ref.Name, Type: kind}
			} else {
				cols[i] = schema.Column{Name: it.Expr.String(), Type: kind}
			}
		}
	}
	return &Project{Input: input, Items: items, Hidden: hidden, out: schema.New(cols...)}, nil
}

// Schema implements Node.
func (p *Project) Schema() *schema.Schema { return p.out }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// Describe implements Node.
func (p *Project) Describe() string {
	parts := make([]string, 0, len(p.Items))
	for i, it := range p.Items {
		if i >= len(p.Items)-p.Hidden {
			parts = append(parts, it.String()+" (hidden)")
		} else {
			parts = append(parts, it.String())
		}
	}
	return "Project " + strings.Join(parts, ", ")
}

// StripProject drops the trailing Hidden columns after sorting.
type StripProject struct {
	Input Node
	Keep  int
	out   *schema.Schema
}

// NewStripProject keeps the first keep columns of the input.
func NewStripProject(input Node, keep int) *StripProject {
	idx := make([]int, keep)
	for i := range idx {
		idx[i] = i
	}
	return &StripProject{Input: input, Keep: keep, out: input.Schema().Project(idx)}
}

// Schema implements Node.
func (s *StripProject) Schema() *schema.Schema { return s.out }

// Children implements Node.
func (s *StripProject) Children() []Node { return []Node{s.Input} }

// Describe implements Node.
func (s *StripProject) Describe() string {
	return fmt.Sprintf("Project (first %d columns)", s.Keep)
}

// Distinct removes duplicate tuples, considering only the first KeyCols
// columns (all columns when KeyCols is 0).
type Distinct struct {
	Input   Node
	KeyCols int
}

// Schema implements Node.
func (d *Distinct) Schema() *schema.Schema { return d.Input.Schema() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Input} }

// Describe implements Node.
func (d *Distinct) Describe() string { return "Distinct" }

// Sort orders tuples by the given items.
type Sort struct {
	Input Node
	Items []ast.OrderItem
}

// Schema implements Node.
func (s *Sort) Schema() *schema.Schema { return s.Input.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Input} }

// Describe implements Node.
func (s *Sort) Describe() string {
	parts := make([]string, len(s.Items))
	for i, it := range s.Items {
		parts[i] = it.Expr.String()
		if it.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort " + strings.Join(parts, ", ")
}

// Limit keeps at most N tuples after skipping Offset.
type Limit struct {
	Input  Node
	N      int
	Offset int
}

// Schema implements Node.
func (l *Limit) Schema() *schema.Schema { return l.Input.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }

// Describe implements Node.
func (l *Limit) Describe() string {
	if l.Offset > 0 {
		return fmt.Sprintf("Limit %d OFFSET %d", l.N, l.Offset)
	}
	return fmt.Sprintf("Limit %d", l.N)
}

// Explain renders the plan as an indented tree, the format the CLI's
// -explain flag and the Figure 3 golden test use.
func Explain(n Node) string {
	var b strings.Builder
	explain(&b, n, 0)
	return b.String()
}

func explain(b *strings.Builder, n Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Describe())
	b.WriteByte('\n')
	for _, c := range n.Children() {
		explain(b, c, depth+1)
	}
}

// InferType computes the static type of e against s. It errs on the side
// of FLOAT for arithmetic so LLM-sourced numeric strings stay comparable.
func InferType(e ast.Expr, s *schema.Schema) (value.Kind, error) {
	switch n := e.(type) {
	case *ast.Literal:
		if n.Val.IsNull() {
			return value.KindString, nil
		}
		return n.Val.Kind(), nil
	case *ast.ColumnRef:
		i, err := s.Resolve(n.Table, n.Name)
		if err != nil {
			return value.KindNull, err
		}
		return s.Columns[i].Type, nil
	case *ast.Binary:
		switch n.Op {
		case "AND", "OR", "=", "!=", "<", "<=", ">", ">=":
			return value.KindBool, nil
		case "+", "-", "*":
			lt, err := InferType(n.Left, s)
			if err != nil {
				return value.KindNull, err
			}
			rt, err := InferType(n.Right, s)
			if err != nil {
				return value.KindNull, err
			}
			if lt == value.KindInt && rt == value.KindInt {
				return value.KindInt, nil
			}
			if lt == value.KindString && rt == value.KindString && n.Op == "+" {
				return value.KindString, nil
			}
			return value.KindFloat, nil
		default: // "/", "%"
			return value.KindFloat, nil
		}
	case *ast.Unary:
		if n.Op == "NOT" {
			return value.KindBool, nil
		}
		return InferType(n.Expr, s)
	case *ast.FuncCall:
		if n.IsAggregate() {
			return aggType(n, s)
		}
		switch n.Name {
		case "LENGTH":
			return value.KindInt, nil
		case "ABS", "ROUND":
			if len(n.Args) > 0 {
				return InferType(n.Args[0], s)
			}
			return value.KindFloat, nil
		default:
			return value.KindString, nil
		}
	case *ast.InList, *ast.Between, *ast.Like, *ast.IsNull:
		return value.KindBool, nil
	case *ast.Case:
		if len(n.Whens) > 0 {
			return InferType(n.Whens[0].Result, s)
		}
		return value.KindString, nil
	case *ast.Star:
		return value.KindNull, fmt.Errorf("logical: cannot type *")
	default:
		return value.KindNull, fmt.Errorf("logical: cannot type %T", e)
	}
}
