package logical

import (
	"fmt"
	"strings"
)

// Fingerprint renders a canonical serialization of a plan for result
// caching: two plans share a fingerprint only if they would compute the
// same relation against the same runtime state. Every Describe line is
// kept (operator kind, conditions with their literals, projection items,
// sort order), and nodes whose Describe omits result-relevant state get
// it folded in explicitly:
//
//   - Scan: the resolved source (LLM vs DB) plus the bound table's key
//     column and declared schema, so two bindings of one table name
//     never collide;
//   - Distinct: the key-column prefix it compares;
//   - Limit: N and Offset (in Describe, but LIMIT-bearing plans bypass
//     the result cache anyway — a truncated relation must never be
//     served as complete).
//
// The fingerprint deliberately ignores anything that only changes *how*
// the relation is computed (worker budgets, pipelining, candidate plan
// choice): the differential harness pins those result-identical.
// Result-affecting session options are prefixed by the caller — see
// core.Session.
//
// Fingerprint is the flat, exact-match side of the plan's canonical
// form; Decompose (shape.go) is the structured side the semantic cache
// matches subsumption against. Both derive from the same built plan.
func Fingerprint(n Node) string {
	var b strings.Builder
	fingerprint(&b, n)
	return b.String()
}

func fingerprint(b *strings.Builder, n Node) {
	b.WriteByte('(')
	b.WriteString(n.Describe())
	switch node := n.(type) {
	case *Scan:
		fmt.Fprintf(b, "|src=%s|key=%s|cols=", node.Source, node.Table.KeyColumn)
		for _, c := range node.Table.Schema.Columns {
			fmt.Fprintf(b, "%s:%s,", c.Name, c.Type)
		}
	case *Distinct:
		fmt.Fprintf(b, "|keycols=%d", node.KeyCols)
	case *CachedScan:
		// Residual plans are never used as cache keys themselves, but a
		// fingerprint of one must still identify the entry it reads.
		fmt.Fprintf(b, "|src=%s|stamp=%s", node.Source, node.Stamp)
	}
	for _, c := range n.Children() {
		fingerprint(b, c)
	}
	b.WriteByte(')')
}
