package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func mustPut(t *testing.T, s *Store, kind, key, stamp, payload string) {
	t.Helper()
	if err := s.Put(kind, key, stamp, []byte(payload), false); err != nil {
		t.Fatalf("Put(%s,%s): %v", kind, key, err)
	}
}

// TestRoundTrip: puts, supersedes, deletes and stamps survive a clean
// close and reopen.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustPut(t, s, "rel", "a", "db=1;", "alpha")
	mustPut(t, s, "rel", "b", "db=1;", "bravo-v1")
	mustPut(t, s, "rel", "b", "db=2;", "bravo-v2") // supersedes
	mustPut(t, s, "rel", "c", "", "charlie")
	if err := s.Delete("rel", "c"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Put("stats", "global", "", []byte("{}"), true); err != nil {
		t.Fatalf("Put pinned: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got := s2.Counters().Loaded; got != 3 {
		t.Fatalf("Loaded = %d, want 3 (a, b, stats)", got)
	}
	r, ok := s2.Get("rel", "b")
	if !ok || string(r.Payload) != "bravo-v2" || r.Stamp != "db=2;" {
		t.Fatalf("Get(rel,b) = %+v, %v; want superseding record", r, ok)
	}
	if _, ok := s2.Get("rel", "c"); ok {
		t.Fatal("deleted record served after reopen")
	}
	all := s2.All("rel")
	if len(all) != 2 || all[0].Key != "a" || all[1].Key != "b" {
		t.Fatalf("All(rel) = %v, want [a b] key-ordered", all)
	}
	if r, ok := s2.Get("stats", "global"); !ok || !r.Pinned {
		t.Fatalf("pinned record lost: %+v, %v", r, ok)
	}
}

// TestTornTailDropped: a crash mid-append leaves a torn frame at the
// segment tail; reopening drops exactly the damaged suffix — every
// earlier record still serves — and appends continue on a valid chain.
func TestTornTailDropped(t *testing.T) {
	for _, cut := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated-mid-frame", func(b []byte) []byte { return b[:len(b)-7] }},
		{"corrupted-payload", func(b []byte) []byte { b[len(b)-3] ^= 0xFF; return b }},
		{"garbage-appended", func(b []byte) []byte { return append(b, 0xDE, 0xAD, 0xBE, 0xEF) }},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{})
			mustPut(t, s, "rel", "keep1", "", "payload-one")
			mustPut(t, s, "rel", "keep2", "", "payload-two")
			mustPut(t, s, "rel", "torn", "", "payload-that-will-tear")
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			seg := filepath.Join(dir, s.man.Segments[len(s.man.Segments)-1])
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatalf("reading segment: %v", err)
			}
			if err := os.WriteFile(seg, cut.mut(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatalf("writing damage: %v", err)
			}

			s2 := mustOpen(t, dir, Options{})
			defer s2.Close()
			ctr := s2.Counters()
			if ctr.DroppedCorrupt == 0 {
				t.Fatal("damage went undetected")
			}
			for _, key := range []string{"keep1", "keep2"} {
				if _, ok := s2.Get("rel", key); !ok {
					t.Fatalf("undamaged record %s lost", key)
				}
			}
			if cut.name != "garbage-appended" {
				if _, ok := s2.Get("rel", "torn"); ok {
					t.Fatal("torn record served")
				}
			}
			// The chain stays appendable: a new record written after the
			// truncation survives the next reopen.
			mustPut(t, s2, "rel", "after", "", "post-damage")
			s2.Close()
			s3 := mustOpen(t, dir, Options{})
			defer s3.Close()
			if _, ok := s3.Get("rel", "after"); !ok {
				t.Fatal("append after damage recovery lost")
			}
			if _, ok := s3.Get("rel", "keep1"); !ok {
				t.Fatal("keep1 lost after second reopen")
			}
		})
	}
}

// TestMidFlushKill: a crash between writing a new segment/manifest temp
// and the manifest swap must leave the old manifest's state in effect —
// orphan segments and stranded temps are discarded, not replayed.
func TestMidFlushKill(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustPut(t, s, "rel", "committed", "", "durable")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate the kill: an orphan segment full of valid frames that the
	// manifest never adopted, plus a manifest temp that never renamed.
	orphan := encodeBody(diskRec{kind: "rel", key: "phantom", written: 1, payload: []byte("never-committed")})
	frame := make([]byte, frameHeaderLen, frameHeaderLen+len(orphan))
	putFrameHeader(frame, orphan)
	frame = append(frame, orphan...)
	if err := os.WriteFile(filepath.Join(dir, "seg-999999.log"), frame, 0o644); err != nil {
		t.Fatalf("writing orphan: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.tmp"), []byte(`{"generation":999999,"segments":["seg-999999.log"]}`), 0o644); err != nil {
		t.Fatalf("writing manifest temp: %v", err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if _, ok := s2.Get("rel", "phantom"); ok {
		t.Fatal("record from an uncommitted segment served")
	}
	if _, ok := s2.Get("rel", "committed"); !ok {
		t.Fatal("committed record lost")
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-999999.log")); !os.IsNotExist(err) {
		t.Fatal("orphan segment not cleaned up")
	}
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST.tmp")); !os.IsNotExist(err) {
		t.Fatal("stranded manifest temp not cleaned up")
	}
}

// putFrameHeader writes magic/length/CRC for body into the 12-byte
// header (test helper mirroring appendFrame's framing).
func putFrameHeader(header, body []byte) {
	binary.BigEndian.PutUint32(header, frameMagic)
	binary.BigEndian.PutUint32(header[4:], uint32(len(body)))
	binary.BigEndian.PutUint32(header[8:], crc32.ChecksumIEEE(body))
}

// TestTTLExpiry: records past the TTL are not served and are dropped on
// reopen; fresh records survive.
func TestTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := mustOpen(t, dir, Options{TTL: time.Hour, Now: clock})
	mustPut(t, s, "rel", "old", "", "stale payload")
	now = now.Add(30 * time.Minute)
	mustPut(t, s, "rel", "fresh", "", "fresh payload")
	now = now.Add(45 * time.Minute) // old is 75m stale, fresh 45m
	if _, ok := s.Get("rel", "old"); ok {
		t.Fatal("expired record served")
	}
	if _, ok := s.Get("rel", "fresh"); !ok {
		t.Fatal("fresh record dropped")
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{TTL: time.Hour, Now: clock})
	defer s2.Close()
	ctr := s2.Counters()
	if ctr.Loaded != 1 || ctr.DroppedExpired == 0 {
		t.Fatalf("reopen Loaded=%d DroppedExpired=%d, want 1 live and the stale one counted", ctr.Loaded, ctr.DroppedExpired)
	}
}

// TestByteBudgetEviction: past the byte budget the oldest-written
// unpinned records are evicted — durably, so they stay gone after
// reopen — while pinned records survive any pressure.
func TestByteBudgetEviction(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	clock := func() time.Time { now = now.Add(time.Second); return now }
	payload := bytes.Repeat([]byte("x"), 200)
	s := mustOpen(t, dir, Options{MaxBytes: 1200, Now: clock})
	if err := s.Put("epochs", "global", "", []byte("tiny"), true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		mustPut(t, s, "rel", fmt.Sprintf("k%d", i), "", string(payload))
	}
	ctr := s.Counters()
	if ctr.Evicted == 0 || ctr.LiveBytes > 1200 {
		t.Fatalf("Evicted=%d LiveBytes=%d, want eviction under the 1200-byte budget", ctr.Evicted, ctr.LiveBytes)
	}
	if _, ok := s.Get("rel", "k0"); ok {
		t.Fatal("oldest record survived the byte budget")
	}
	if _, ok := s.Get("rel", "k7"); !ok {
		t.Fatal("newest record evicted")
	}
	if _, ok := s.Get("epochs", "global"); !ok {
		t.Fatal("pinned record evicted by the byte budget")
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{MaxBytes: 1200, Now: clock})
	defer s2.Close()
	if _, ok := s2.Get("rel", "k0"); ok {
		t.Fatal("evicted record resurrected after reopen")
	}
	if _, ok := s2.Get("epochs", "global"); !ok {
		t.Fatal("pinned record lost after reopen")
	}
}

// TestCompact: compaction collapses superseded records and tombstones
// into one segment, the state is unchanged, and old segments are gone.
func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 20; i++ {
		mustPut(t, s, "rel", fmt.Sprintf("k%d", i%4), "", fmt.Sprintf("payload %d", i))
	}
	s.Delete("rel", "k3")
	if segs := s.Counters().Segments; segs < 2 {
		t.Fatalf("segments = %d, want rolls before compaction", segs)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if segs := s.Counters().Segments; segs != 1 {
		t.Fatalf("segments after Compact = %d, want 1", segs)
	}
	for i := 0; i < 3; i++ {
		r, ok := s.Get("rel", fmt.Sprintf("k%d", i))
		want := fmt.Sprintf("payload %d", 16+i)
		if !ok || string(r.Payload) != want {
			t.Fatalf("k%d after compact = %q, %v; want %q", i, r.Payload, ok, want)
		}
	}
	if _, ok := s.Get("rel", "k3"); ok {
		t.Fatal("tombstoned record resurrected by compaction")
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got := s2.Counters().Loaded; got != 3 {
		t.Fatalf("Loaded after compact+reopen = %d, want 3", got)
	}
	// Reopen appends to the compacted tail segment rather than rolling,
	// so exactly one segment file remains on disk.
	files, _ := os.ReadDir(dir)
	segCount := 0
	for _, f := range files {
		if strings.HasPrefix(f.Name(), segPrefix) {
			segCount++
		}
	}
	if segCount != 1 {
		t.Fatalf("segment files on disk = %d, want 1", segCount)
	}
}

// TestSegmentRoll: appends past SegmentBytes roll to new manifest-listed
// segments and everything replays across them.
func TestSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 100})
	for i := 0; i < 10; i++ {
		mustPut(t, s, "rel", fmt.Sprintf("k%d", i), "", fmt.Sprintf("roll payload %d", i))
	}
	if segs := s.Counters().Segments; segs < 3 {
		t.Fatalf("segments = %d, want >= 3 with a 100-byte roll threshold", segs)
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{SegmentBytes: 100})
	defer s2.Close()
	if got := s2.Counters().Loaded; got != 10 {
		t.Fatalf("Loaded = %d, want 10 across rolled segments", got)
	}
}
