// Package store implements the disk-backed, content-addressed
// persistence tier under the engine's learned state: optimizer
// statistics, binding epochs and result-cache relations survive process
// restarts so a rebooted server plans and serves from everything the
// fleet already paid prompts to learn.
//
// Layout (modeled on content-addressed block stores like Dolt's nbs): a
// directory holds append-only segment files (`seg-<n>.log`) of CRC-framed
// records plus a MANIFEST naming the live segments in replay order. All
// writes append; a record for an existing (kind, key) supersedes the
// earlier one on replay, and deletes append tombstones. Compaction
// rewrites the live set into a fresh segment and swaps the MANIFEST.
//
// Crash safety:
//
//   - The MANIFEST is replaced atomically: write temp + fsync + rename +
//     directory fsync. A crash mid-swap leaves the old manifest — and the
//     old, consistent segment set — in effect.
//   - Every record carries a CRC32 over its body. A torn or truncated
//     append (crash mid-write) fails the checksum; Open drops exactly the
//     damaged suffix of that segment, truncates it back to the last valid
//     frame, and never serves a corrupt record.
//   - Segment files not named by the MANIFEST (a crash between segment
//     creation and the manifest swap) are deleted on Open.
//
// Eviction: an optional byte budget (oldest-written unpinned records are
// tombstoned first) and an optional TTL (expired records are dropped on
// Open, on Compact and on read).
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"container/list"
)

const (
	manifestName = "MANIFEST"
	segPrefix    = "seg-"
	segSuffix    = ".log"

	// frameMagic marks the start of every record frame.
	frameMagic = uint32(0x474C5347) // "GLSG"
	// frameHeaderLen is magic + body length + body CRC32.
	frameHeaderLen = 12
	// maxBodyLen bounds one record body; a length field past it is
	// treated as corruption rather than an allocation request.
	maxBodyLen = 1 << 30

	// DefaultSegmentBytes is the roll threshold of the active segment.
	DefaultSegmentBytes = 4 << 20

	// recordOverhead is the flat per-record accounting added to the
	// payload and key sizes for the byte budget.
	recordOverhead = 64

	// tombstone flags a record body as a deletion marker.
	flagTombstone = byte(1 << 0)
	// flagPinned marks a record the byte budget never evicts (small
	// control-plane state: statistics, epochs).
	flagPinned = byte(1 << 1)
)

// Options configures a Store.
type Options struct {
	// MaxBytes caps the approximate live bytes (0 = unlimited). Past it,
	// the oldest-written unpinned records are evicted (tombstoned).
	MaxBytes int
	// TTL expires records this long after they were written (0 = never).
	TTL time.Duration
	// SegmentBytes rolls the active segment past this size
	// (0 = DefaultSegmentBytes).
	SegmentBytes int
	// Now is the clock (nil = time.Now); injectable for TTL tests.
	Now func() time.Time
}

// Record is one live (kind, key) entry as the store serves it.
type Record struct {
	Kind    string
	Key     string
	Stamp   string // opaque validity stamp (binding epochs); the store only transports it
	Written time.Time
	Pinned  bool
	Payload []byte
}

// Counters snapshots a store's lifetime accounting.
type Counters struct {
	// Loaded counts records live after Open's replay.
	Loaded int `json:"loaded"`
	// DroppedCorrupt counts torn/truncated/garbled frames dropped on
	// replay — the damaged suffixes that were never served.
	DroppedCorrupt int `json:"dropped_corrupt"`
	// DroppedExpired counts records dropped past their TTL.
	DroppedExpired int `json:"dropped_expired"`
	// Evicted counts records tombstoned by the byte budget.
	Evicted int `json:"evicted"`
	// Compactions counts manifest-swapping rewrites.
	Compactions int `json:"compactions"`
	// Records and LiveBytes describe the current live set; Segments the
	// on-disk file count.
	Records   int `json:"records"`
	LiveBytes int `json:"live_bytes"`
	Segments  int `json:"segments"`
}

// manifest is the JSON root naming the live segments in replay order.
type manifest struct {
	Generation uint64   `json:"generation"`
	Segments   []string `json:"segments"`
}

// rec is one live record inside the in-memory index.
type rec struct {
	kind    string
	key     string
	stamp   string
	written int64 // unix nanoseconds
	pinned  bool
	payload []byte
	size    int
	elem    *list.Element
}

// Store is a concurrency-safe handle on one store directory. One process
// must own a directory at a time; the store does no cross-process
// locking.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options

	man    manifest
	active *os.File
	// activeSize tracks the byte length of the active segment, for rolls.
	activeSize int64
	closed     bool

	index map[string]*rec // indexKey(kind, key) -> live record
	// order lists live records oldest-written first: the byte budget's
	// eviction order. Values are *rec.
	order     *list.List
	liveBytes int

	ctr Counters
}

func indexKey(kind, key string) string { return kind + "\x00" + key }

// Open opens (or creates) the store at dir, replaying the manifest's
// segments. Damaged segment suffixes are dropped — and truncated away so
// subsequent appends extend a valid chain — and expired records are not
// loaded.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		index: map[string]*rec{},
		order: list.New(),
	}
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	if err := s.replay(); err != nil {
		return nil, err
	}
	s.removeOrphans()
	s.expireLocked(opts.Now())
	s.ctr.Loaded = len(s.index)
	return s, nil
}

// loadManifest reads the MANIFEST, treating a missing one as an empty
// store.
func (s *Store) loadManifest() error {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading manifest: %w", err)
	}
	if err := json.Unmarshal(data, &s.man); err != nil {
		return fmt.Errorf("store: corrupt manifest: %w", err)
	}
	return nil
}

// replay loads every manifest segment in order, applying puts and
// tombstones, then opens the last segment for appending (truncated back
// to its last valid frame). With no segments, a fresh one is rolled.
func (s *Store) replay() error {
	for i, name := range s.man.Segments {
		path := filepath.Join(s.dir, name)
		data, err := os.ReadFile(path)
		if errors.Is(err, os.ErrNotExist) {
			// A manifest segment that vanished: nothing to serve from it.
			s.ctr.DroppedCorrupt++
			continue
		}
		if err != nil {
			return fmt.Errorf("store: reading %s: %w", name, err)
		}
		valid := s.applySegment(data)
		if i == len(s.man.Segments)-1 {
			// The tail segment becomes the active one: truncate away any
			// damaged suffix so appends extend the valid chain.
			f, err := os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				return fmt.Errorf("store: opening %s: %w", name, err)
			}
			if err := f.Truncate(int64(valid)); err != nil {
				f.Close()
				return fmt.Errorf("store: truncating %s: %w", name, err)
			}
			if _, err := f.Seek(int64(valid), 0); err != nil {
				f.Close()
				return fmt.Errorf("store: seeking %s: %w", name, err)
			}
			s.active, s.activeSize = f, int64(valid)
		}
	}
	if s.active == nil {
		return s.rollLocked()
	}
	return nil
}

// applySegment replays one segment's frames into the index, returning
// the length of the valid prefix. Any malformed frame ends the segment:
// everything from it on is counted dropped.
func (s *Store) applySegment(data []byte) (valid int) {
	off := 0
	for {
		body, n, ok := nextFrame(data[off:])
		if !ok {
			if off < len(data) {
				s.ctr.DroppedCorrupt++
			}
			return off
		}
		r, err := decodeBody(body)
		if err != nil {
			s.ctr.DroppedCorrupt++
			return off
		}
		s.applyRecord(r)
		off += n
	}
}

// nextFrame parses one frame from the head of data, returning its body
// and total length. ok is false at a clean end *or* on damage; the
// caller distinguishes by whether bytes remain.
func nextFrame(data []byte) (body []byte, n int, ok bool) {
	if len(data) < frameHeaderLen {
		return nil, 0, false
	}
	if binary.BigEndian.Uint32(data) != frameMagic {
		return nil, 0, false
	}
	bodyLen := binary.BigEndian.Uint32(data[4:])
	if bodyLen > maxBodyLen || int(bodyLen) > len(data)-frameHeaderLen {
		return nil, 0, false
	}
	sum := binary.BigEndian.Uint32(data[8:])
	body = data[frameHeaderLen : frameHeaderLen+int(bodyLen)]
	if crc32.ChecksumIEEE(body) != sum {
		return nil, 0, false
	}
	return body, frameHeaderLen + int(bodyLen), true
}

// diskRec is one decoded frame body.
type diskRec struct {
	kind, key, stamp string
	written          int64
	flags            byte
	payload          []byte
}

// encodeBody renders one record body (lengths-prefixed fields).
func encodeBody(r diskRec) []byte {
	buf := make([]byte, 0, len(r.kind)+len(r.key)+len(r.stamp)+len(r.payload)+40)
	appendStr := func(v string) {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	appendStr(r.kind)
	appendStr(r.key)
	appendStr(r.stamp)
	buf = binary.AppendVarint(buf, r.written)
	buf = append(buf, r.flags)
	buf = binary.AppendUvarint(buf, uint64(len(r.payload)))
	buf = append(buf, r.payload...)
	return buf
}

// decodeBody parses one record body, rejecting any truncation or
// overrun.
func decodeBody(body []byte) (diskRec, error) {
	var r diskRec
	off := 0
	str := func() (string, error) {
		n, used := binary.Uvarint(body[off:])
		if used <= 0 || n > uint64(len(body)-off-used) {
			return "", errors.New("store: malformed record")
		}
		off += used
		v := string(body[off : off+int(n)])
		off += int(n)
		return v, nil
	}
	var err error
	if r.kind, err = str(); err != nil {
		return r, err
	}
	if r.key, err = str(); err != nil {
		return r, err
	}
	if r.stamp, err = str(); err != nil {
		return r, err
	}
	w, used := binary.Varint(body[off:])
	if used <= 0 {
		return r, errors.New("store: malformed record")
	}
	r.written = w
	off += used
	if off >= len(body) {
		return r, errors.New("store: malformed record")
	}
	r.flags = body[off]
	off++
	n, used := binary.Uvarint(body[off:])
	if used <= 0 || n > uint64(len(body)-off-used) {
		return r, errors.New("store: malformed record")
	}
	off += used
	r.payload = append([]byte(nil), body[off:off+int(n)]...)
	if off+int(n) != len(body) {
		return r, errors.New("store: malformed record")
	}
	return r, nil
}

// applyRecord folds one replayed record into the index: later records
// supersede earlier ones for the same (kind, key); tombstones delete.
func (s *Store) applyRecord(d diskRec) {
	ik := indexKey(d.kind, d.key)
	if old, ok := s.index[ik]; ok {
		s.order.Remove(old.elem)
		s.liveBytes -= old.size
		delete(s.index, ik)
	}
	if d.flags&flagTombstone != 0 {
		return
	}
	r := &rec{
		kind:    d.kind,
		key:     d.key,
		stamp:   d.stamp,
		written: d.written,
		pinned:  d.flags&flagPinned != 0,
		payload: d.payload,
		size:    recordOverhead + len(d.kind) + len(d.key) + len(d.stamp) + len(d.payload),
	}
	r.elem = s.order.PushBack(r)
	s.index[ik] = r
	s.liveBytes += r.size
}

// removeOrphans deletes segment files the manifest does not name — the
// residue of a crash between segment creation and the manifest swap.
func (s *Store) removeOrphans() {
	listed := map[string]bool{}
	for _, name := range s.man.Segments {
		listed[name] = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix) && !listed[name] {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
	// A stranded manifest temp (crash before the rename) is dead weight.
	os.Remove(filepath.Join(s.dir, manifestName+".tmp"))
}

// expireLocked drops every record past the TTL.
func (s *Store) expireLocked(now time.Time) {
	if s.opts.TTL <= 0 {
		return
	}
	cutoff := now.Add(-s.opts.TTL).UnixNano()
	for el := s.order.Front(); el != nil; {
		next := el.Next()
		r := el.Value.(*rec)
		if r.written <= cutoff {
			s.dropLocked(r)
			s.ctr.DroppedExpired++
		}
		el = next
	}
}

// dropLocked removes one record from the in-memory live set.
func (s *Store) dropLocked(r *rec) {
	s.order.Remove(r.elem)
	delete(s.index, indexKey(r.kind, r.key))
	s.liveBytes -= r.size
}

// expiredLocked reports whether r is past the TTL at time now.
func (s *Store) expiredLocked(r *rec, now time.Time) bool {
	return s.opts.TTL > 0 && r.written <= now.Add(-s.opts.TTL).UnixNano()
}

// appendFrame encodes and appends one record frame to the active
// segment, rolling it past the size threshold.
func (s *Store) appendFrame(d diskRec) error {
	if s.closed {
		return errors.New("store: closed")
	}
	body := encodeBody(d)
	frame := make([]byte, frameHeaderLen, frameHeaderLen+len(body))
	binary.BigEndian.PutUint32(frame, frameMagic)
	binary.BigEndian.PutUint32(frame[4:], uint32(len(body)))
	binary.BigEndian.PutUint32(frame[8:], crc32.ChecksumIEEE(body))
	frame = append(frame, body...)
	n, err := s.active.Write(frame)
	s.activeSize += int64(n)
	if err != nil {
		return fmt.Errorf("store: appending: %w", err)
	}
	if s.activeSize >= int64(s.opts.SegmentBytes) {
		return s.rollLocked()
	}
	return nil
}

// rollLocked starts a fresh active segment and publishes it in the
// manifest (the manifest swap happens before any append can reach the
// new file, so a crash never strands acknowledged records in an
// unlisted segment).
func (s *Store) rollLocked() error {
	s.man.Generation++
	name := fmt.Sprintf("%s%06d%s", segPrefix, s.man.Generation, segSuffix)
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	man := s.man
	man.Segments = append(append([]string(nil), s.man.Segments...), name)
	if err := s.writeManifest(man); err != nil {
		f.Close()
		return err
	}
	s.man = man
	if s.active != nil {
		s.active.Sync()
		s.active.Close()
	}
	s.active, s.activeSize = f, 0
	return nil
}

// writeManifest atomically replaces the MANIFEST: temp + fsync + rename
// + directory fsync.
func (s *Store) writeManifest(m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return fmt.Errorf("store: swapping manifest: %w", err)
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Put stores payload under (kind, key) with the given stamp, superseding
// any earlier record. Pinned records are exempt from byte-budget
// eviction. The append is not fsynced; call Sync (or Close) to make a
// batch durable.
func (s *Store) Put(kind, key, stamp string, payload []byte, pinned bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var flags byte
	if pinned {
		flags |= flagPinned
	}
	now := s.opts.Now().UnixNano()
	if err := s.appendFrame(diskRec{kind: kind, key: key, stamp: stamp, written: now, flags: flags, payload: payload}); err != nil {
		return err
	}
	s.applyRecord(diskRec{kind: kind, key: key, stamp: stamp, written: now, flags: flags,
		payload: append([]byte(nil), payload...)})
	return s.evictLocked()
}

// evictLocked tombstones oldest-written unpinned records until the live
// set fits the byte budget.
func (s *Store) evictLocked() error {
	if s.opts.MaxBytes <= 0 {
		return nil
	}
	el := s.order.Front()
	for s.liveBytes > s.opts.MaxBytes && el != nil {
		next := el.Next()
		r := el.Value.(*rec)
		if !r.pinned {
			if err := s.appendFrame(diskRec{kind: r.kind, key: r.key, written: s.opts.Now().UnixNano(), flags: flagTombstone}); err != nil {
				return err
			}
			s.dropLocked(r)
			s.ctr.Evicted++
		}
		el = next
	}
	return nil
}

// Delete removes (kind, key), appending a tombstone so the deletion
// survives restart.
func (s *Store) Delete(kind, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.index[indexKey(kind, key)]
	if !ok {
		return nil
	}
	if err := s.appendFrame(diskRec{kind: kind, key: key, written: s.opts.Now().UnixNano(), flags: flagTombstone}); err != nil {
		return err
	}
	s.dropLocked(r)
	return nil
}

// Get returns the live record under (kind, key). Expired records read as
// absent (and are dropped).
func (s *Store) Get(kind, key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.index[indexKey(kind, key)]
	if !ok {
		return Record{}, false
	}
	if s.expiredLocked(r, s.opts.Now()) {
		s.dropLocked(r)
		s.ctr.DroppedExpired++
		return Record{}, false
	}
	return recordOf(r), true
}

// All returns every live record of one kind, key-ordered (deterministic
// for warm-start replay). Expired records are dropped, not returned.
func (s *Store) All(kind string) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opts.Now()
	var out []Record
	for el := s.order.Front(); el != nil; {
		next := el.Next()
		r := el.Value.(*rec)
		if r.kind == kind {
			if s.expiredLocked(r, now) {
				s.dropLocked(r)
				s.ctr.DroppedExpired++
			} else {
				out = append(out, recordOf(r))
			}
		}
		el = next
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func recordOf(r *rec) Record {
	return Record{
		Kind:    r.kind,
		Key:     r.key,
		Stamp:   r.stamp,
		Written: time.Unix(0, r.written),
		Pinned:  r.pinned,
		Payload: append([]byte(nil), r.payload...),
	}
}

// Sync fsyncs the active segment: every previously acknowledged Put and
// Delete becomes durable.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	return s.active.Sync()
}

// Compact rewrites the live set into one fresh segment and swaps the
// manifest to it, reclaiming superseded records, tombstones and dropped
// damage. Crash-safe: until the manifest swap commits, the old segment
// chain remains in effect.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	s.expireLocked(s.opts.Now())
	s.man.Generation++
	name := fmt.Sprintf("%s%06d%s", segPrefix, s.man.Generation, segSuffix)
	path := filepath.Join(s.dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: compacting: %w", err)
	}
	var size int64
	for el := s.order.Front(); el != nil; el = el.Next() {
		r := el.Value.(*rec)
		var flags byte
		if r.pinned {
			flags |= flagPinned
		}
		body := encodeBody(diskRec{kind: r.kind, key: r.key, stamp: r.stamp, written: r.written, flags: flags, payload: r.payload})
		frame := make([]byte, frameHeaderLen, frameHeaderLen+len(body))
		binary.BigEndian.PutUint32(frame, frameMagic)
		binary.BigEndian.PutUint32(frame[4:], uint32(len(body)))
		binary.BigEndian.PutUint32(frame[8:], crc32.ChecksumIEEE(body))
		frame = append(frame, body...)
		n, err := f.Write(frame)
		size += int64(n)
		if err != nil {
			f.Close()
			os.Remove(path)
			return fmt.Errorf("store: compacting: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	old := s.man.Segments
	man := s.man
	man.Segments = []string{name}
	if err := s.writeManifest(man); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	s.man = man
	if s.active != nil {
		s.active.Close()
	}
	s.active, s.activeSize = f, size
	for _, o := range old {
		if o != name {
			os.Remove(filepath.Join(s.dir, o))
		}
	}
	s.ctr.Compactions++
	return nil
}

// Counters snapshots the lifetime accounting.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.ctr
	c.Records = len(s.index)
	c.LiveBytes = s.liveBytes
	c.Segments = len(s.man.Segments)
	return c
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close fsyncs and closes the active segment. The store is unusable
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.active == nil {
		return nil
	}
	err := s.active.Sync()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	return err
}
