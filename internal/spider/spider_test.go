package spider

import (
	"context"
	"strings"
	"testing"

	"repro/internal/memdb"
	"repro/internal/sql/parser"
	"repro/internal/world"
)

func TestCorpusSize(t *testing.T) {
	qs := Queries()
	if len(qs) != 46 {
		t.Fatalf("corpus has %d queries, the paper uses 46", len(qs))
	}
	seen := map[int]bool{}
	for i, q := range qs {
		if q.ID != i+1 {
			t.Errorf("query %d has ID %d", i, q.ID)
		}
		if seen[q.ID] {
			t.Errorf("duplicate ID %d", q.ID)
		}
		seen[q.ID] = true
	}
}

func TestClassBreakdown(t *testing.T) {
	counts := map[Class]int{}
	for _, q := range Queries() {
		counts[q.Class]++
	}
	if counts[ClassOther] != 10 || counts[ClassSelection] != 14 ||
		counts[ClassAggregate] != 12 || counts[ClassJoin] != 10 {
		t.Errorf("class breakdown = %v", counts)
	}
	if got := len(ByClass(ClassJoin)); got != 10 {
		t.Errorf("ByClass(join) = %d", got)
	}
}

func TestEveryQueryParses(t *testing.T) {
	for _, q := range Queries() {
		if _, err := parser.ParseSelect(q.SQL); err != nil {
			t.Errorf("query %d does not parse: %v", q.ID, err)
		}
		if strings.TrimSpace(q.NL) == "" {
			t.Errorf("query %d has no NL paraphrase", q.ID)
		}
		if q.Spec.Relation == "" {
			t.Errorf("query %d has no semantic spec", q.ID)
		}
	}
}

func TestQuestionBank(t *testing.T) {
	bank := QuestionBank()
	if len(bank) != 46 {
		t.Fatalf("question bank has %d entries (NL paraphrases must be distinct)", len(bank))
	}
	for _, q := range Queries() {
		if _, ok := bank[q.NL]; !ok {
			t.Errorf("question %d missing from bank", q.ID)
		}
	}
}

// TestGroundTruthNonEmpty executes every query on the world DB: each must
// run and return at least one row (the paper averages over queries with
// non-empty results; ours are all non-empty by construction).
func TestGroundTruthNonEmpty(t *testing.T) {
	w := world.Build()
	db := memdb.New()
	for _, name := range w.Tables() {
		if err := db.LoadRelation(w.Table(name).Def, w.Relation(name)); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for _, q := range Queries() {
		rel, err := db.QuerySQL(ctx, q.SQL)
		if err != nil {
			t.Errorf("query %d fails on ground truth: %v", q.ID, err)
			continue
		}
		if rel.Cardinality() == 0 {
			t.Errorf("query %d has empty ground truth: %s", q.ID, q.SQL)
		}
	}
}

// TestSpecsConsistentWithSQL sanity-checks that each spec's relation and
// join relation exist in the world and that selected attrs are declared.
func TestSpecsConsistentWithSQL(t *testing.T) {
	w := world.Build()
	for _, q := range Queries() {
		def := w.Def(q.Spec.Relation)
		if def == nil {
			t.Errorf("query %d spec references unknown relation %q", q.ID, q.Spec.Relation)
			continue
		}
		for _, a := range q.Spec.Select {
			if def.Schema.IndexOf("", a) < 0 {
				t.Errorf("query %d spec selects unknown attr %s.%s", q.ID, q.Spec.Relation, a)
			}
		}
		for _, f := range q.Spec.Filter {
			if def.Schema.IndexOf("", f.Attr) < 0 {
				t.Errorf("query %d spec filters unknown attr %s.%s", q.ID, q.Spec.Relation, f.Attr)
			}
		}
		if j := q.Spec.Join; j != nil {
			jdef := w.Def(j.Relation)
			if jdef == nil {
				t.Errorf("query %d spec joins unknown relation %q", q.ID, j.Relation)
				continue
			}
			if def.Schema.IndexOf("", j.LeftAttr) < 0 {
				t.Errorf("query %d join left attr %s missing", q.ID, j.LeftAttr)
			}
			if jdef.Schema.IndexOf("", j.RightAttr) < 0 {
				t.Errorf("query %d join right attr %s missing", q.ID, j.RightAttr)
			}
			for _, a := range j.Select {
				if jdef.Schema.IndexOf("", a) < 0 {
					t.Errorf("query %d join selects unknown attr %s.%s", q.ID, j.Relation, a)
				}
			}
		}
	}
}

// TestGenericTopicsOnly ensures the corpus avoids the DB-only employees
// table (the paper keeps only queries "about generic topics" the LLM has
// seen).
func TestGenericTopicsOnly(t *testing.T) {
	for _, q := range Queries() {
		if strings.Contains(strings.ToLower(q.SQL), "employees") {
			t.Errorf("query %d touches the DB-only employees table", q.ID)
		}
	}
}
