// Package spider defines the benchmark corpus: 46 SQL queries about
// generic topics (world geography, cities, airports, music, sport) in the
// spirit of the paper's Spider subset, each with its natural-language
// paraphrase (for the QA baselines) and a class tag matching Table 2's
// breakdown (selections, aggregates, joins, other).
//
// Every query runs against the synthetic world: on the in-memory DBMS for
// the ground truth R_D, through Galois for R_M, and as an NL question for
// T_M and T_M^C.
package spider

import (
	"repro/internal/simllm"
)

// Class tags a query for Table 2's per-class breakdown.
type Class string

// Query classes.
const (
	ClassOther     Class = "other"     // projection-only
	ClassSelection Class = "selection" // selection (+ projection)
	ClassAggregate Class = "aggregate" // aggregation, optionally filtered
	ClassJoin      Class = "join"      // multi-relation
)

// Query is one benchmark entry.
type Query struct {
	ID    int
	SQL   string
	NL    string
	Class Class
	// Spec is the semantic reading of NL registered with the simulated
	// models so they can answer the question holistically.
	Spec simllm.QuerySpec
}

// Queries returns the 46-query corpus in ID order.
func Queries() []Query { return corpus }

// ByClass returns the queries of one class.
func ByClass(c Class) []Query {
	var out []Query
	for _, q := range corpus {
		if q.Class == c {
			out = append(out, q)
		}
	}
	return out
}

// QuestionBank maps every NL paraphrase to its spec, for
// Model.RegisterQuestions.
func QuestionBank() map[string]simllm.QuerySpec {
	bank := make(map[string]simllm.QuerySpec, len(corpus))
	for _, q := range corpus {
		bank[q.NL] = q.Spec
	}
	return bank
}

var corpus = []Query{
	// ------------------------------------------------ projections (other)
	{
		ID: 1, Class: ClassOther,
		SQL: `SELECT name FROM country`,
		NL:  "List the names of all countries.",
		Spec: simllm.QuerySpec{
			Relation: "country", Select: []string{"name"},
		},
	},
	{
		ID: 2, Class: ClassOther,
		SQL: `SELECT name, capital FROM country`,
		NL:  "What are the names and capitals of all countries?",
		Spec: simllm.QuerySpec{
			Relation: "country", Select: []string{"name", "capital"},
		},
	},
	{
		ID: 3, Class: ClassOther,
		SQL: `SELECT name FROM city`,
		NL:  "List the names of all cities.",
		Spec: simllm.QuerySpec{
			Relation: "city", Select: []string{"name"},
		},
	},
	{
		ID: 4, Class: ClassOther,
		SQL: `SELECT iata, city FROM airport`,
		NL:  "List the IATA code and city of every airport.",
		Spec: simllm.QuerySpec{
			Relation: "airport", Select: []string{"iata", "city"},
		},
	},
	{
		ID: 5, Class: ClassOther,
		SQL: `SELECT name, genre FROM singer`,
		NL:  "List every singer together with their genre.",
		Spec: simllm.QuerySpec{
			Relation: "singer", Select: []string{"name", "genre"},
		},
	},
	{
		ID: 6, Class: ClassOther,
		SQL: `SELECT name, mountain_range FROM mountain`,
		NL:  "List every mountain and the range it belongs to.",
		Spec: simllm.QuerySpec{
			Relation: "mountain", Select: []string{"name", "mountain_range"},
		},
	},
	{
		ID: 7, Class: ClassOther,
		SQL: `SELECT name, city FROM stadium`,
		NL:  "List stadium names and the cities they are in.",
		Spec: simllm.QuerySpec{
			Relation: "stadium", Select: []string{"name", "city"},
		},
	},
	{
		ID: 8, Class: ClassOther,
		SQL: `SELECT name, language FROM country`,
		NL:  "What language is spoken in each country?",
		Spec: simllm.QuerySpec{
			Relation: "country", Select: []string{"name", "language"},
		},
	},
	{
		ID: 9, Class: ClassOther,
		SQL: `SELECT name, mayor FROM city`,
		NL:  "Who is the mayor of each city?",
		Spec: simllm.QuerySpec{
			Relation: "city", Select: []string{"name", "mayor"},
		},
	},
	{
		ID: 10, Class: ClassOther,
		SQL: `SELECT name, currency FROM country`,
		NL:  "What currency does each country use?",
		Spec: simllm.QuerySpec{
			Relation: "country", Select: []string{"name", "currency"},
		},
	},

	// ------------------------------------------------------- selections
	{
		ID: 11, Class: ClassSelection,
		SQL: `SELECT name FROM country WHERE independence_year > 1950`,
		NL:  "What are the names of the countries that became independent after 1950?",
		Spec: simllm.QuerySpec{
			Relation: "country", Select: []string{"name"},
			Filter: []simllm.FilterSpec{{Attr: "independence_year", Op: ">", Value: "1950"}},
		},
	},
	{
		ID: 12, Class: ClassSelection,
		SQL: `SELECT name FROM city WHERE population > 5000000`,
		NL:  "Which cities have more than 5 million inhabitants?",
		Spec: simllm.QuerySpec{
			Relation: "city", Select: []string{"name"},
			Filter: []simllm.FilterSpec{{Attr: "population", Op: ">", Value: "5000000"}},
		},
	},
	{
		ID: 13, Class: ClassSelection,
		SQL: `SELECT name FROM country WHERE continent = 'Europe'`,
		NL:  "List the countries in Europe.",
		Spec: simllm.QuerySpec{
			Relation: "country", Select: []string{"name"},
			Filter: []simllm.FilterSpec{{Attr: "continent", Op: "=", Value: "Europe"}},
		},
	},
	{
		ID: 14, Class: ClassSelection,
		SQL: `SELECT name FROM mountain WHERE height > 5000`,
		NL:  "Which mountains are higher than 5000 meters?",
		Spec: simllm.QuerySpec{
			Relation: "mountain", Select: []string{"name"},
			Filter: []simllm.FilterSpec{{Attr: "height", Op: ">", Value: "5000"}},
		},
	},
	{
		ID: 15, Class: ClassSelection,
		SQL: `SELECT name FROM singer WHERE birth_year > 1990`,
		NL:  "Which singers were born after 1990?",
		Spec: simllm.QuerySpec{
			Relation: "singer", Select: []string{"name"},
			Filter: []simllm.FilterSpec{{Attr: "birth_year", Op: ">", Value: "1990"}},
		},
	},
	{
		ID: 16, Class: ClassSelection,
		SQL: `SELECT name FROM stadium WHERE capacity > 80000`,
		NL:  "Which stadiums hold more than 80000 spectators?",
		Spec: simllm.QuerySpec{
			Relation: "stadium", Select: []string{"name"},
			Filter: []simllm.FilterSpec{{Attr: "capacity", Op: ">", Value: "80000"}},
		},
	},
	{
		ID: 17, Class: ClassSelection,
		SQL: `SELECT iata FROM airport WHERE passengers > 50`,
		NL:  "Which airports serve more than 50 million passengers a year? Give their IATA codes.",
		Spec: simllm.QuerySpec{
			Relation: "airport", Select: []string{"iata"},
			Filter: []simllm.FilterSpec{{Attr: "passengers", Op: ">", Value: "50"}},
		},
	},
	{
		ID: 18, Class: ClassSelection,
		SQL: `SELECT name FROM country WHERE population > 100000000`,
		NL:  "Which countries have more than 100 million people?",
		Spec: simllm.QuerySpec{
			Relation: "country", Select: []string{"name"},
			Filter: []simllm.FilterSpec{{Attr: "population", Op: ">", Value: "100000000"}},
		},
	},
	{
		ID: 19, Class: ClassSelection,
		SQL: `SELECT name FROM city WHERE elevation > 1000`,
		NL:  "Which cities lie above 1000 meters of elevation?",
		Spec: simllm.QuerySpec{
			Relation: "city", Select: []string{"name"},
			Filter: []simllm.FilterSpec{{Attr: "elevation", Op: ">", Value: "1000"}},
		},
	},
	{
		ID: 20, Class: ClassSelection,
		SQL: `SELECT name FROM country WHERE continent = 'Africa'`,
		NL:  "List the countries in Africa.",
		Spec: simllm.QuerySpec{
			Relation: "country", Select: []string{"name"},
			Filter: []simllm.FilterSpec{{Attr: "continent", Op: "=", Value: "Africa"}},
		},
	},
	{
		ID: 21, Class: ClassSelection,
		SQL: `SELECT name FROM singer WHERE genre = 'Pop'`,
		NL:  "Which singers perform pop music?",
		Spec: simllm.QuerySpec{
			Relation: "singer", Select: []string{"name"},
			Filter: []simllm.FilterSpec{{Attr: "genre", Op: "=", Value: "Pop"}},
		},
	},
	{
		ID: 22, Class: ClassSelection,
		SQL: `SELECT name FROM mayor WHERE election_year = 2019`,
		NL:  "Which mayors were elected in 2019?",
		Spec: simllm.QuerySpec{
			Relation: "mayor", Select: []string{"name"},
			Filter: []simllm.FilterSpec{{Attr: "election_year", Op: "=", Value: "2019"}},
		},
	},
	{
		ID: 23, Class: ClassSelection,
		SQL: `SELECT name FROM city WHERE founded_year < 1000`,
		NL:  "Which cities were founded before the year 1000?",
		Spec: simllm.QuerySpec{
			Relation: "city", Select: []string{"name"},
			Filter: []simllm.FilterSpec{{Attr: "founded_year", Op: "<", Value: "1000"}},
		},
	},
	{
		ID: 24, Class: ClassSelection,
		SQL: `SELECT name FROM stadium WHERE opened_year > 2000`,
		NL:  "Which stadiums opened after the year 2000?",
		Spec: simllm.QuerySpec{
			Relation: "stadium", Select: []string{"name"},
			Filter: []simllm.FilterSpec{{Attr: "opened_year", Op: ">", Value: "2000"}},
		},
	},

	// ------------------------------------------------------- aggregates
	{
		ID: 25, Class: ClassAggregate,
		SQL: `SELECT COUNT(*) FROM country`,
		NL:  "How many countries are there?",
		Spec: simllm.QuerySpec{
			Relation: "country", Agg: "count",
		},
	},
	{
		ID: 26, Class: ClassAggregate,
		SQL: `SELECT AVG(population) FROM city`,
		NL:  "What is the average population of the cities?",
		Spec: simllm.QuerySpec{
			Relation: "city", Agg: "avg", AggAttr: "population",
		},
	},
	{
		ID: 27, Class: ClassAggregate,
		SQL: `SELECT MAX(height) FROM mountain`,
		NL:  "How high is the highest mountain?",
		Spec: simllm.QuerySpec{
			Relation: "mountain", Agg: "max", AggAttr: "height",
		},
	},
	{
		ID: 28, Class: ClassAggregate,
		SQL: `SELECT MIN(opened_year) FROM stadium`,
		NL:  "In which year did the oldest stadium open?",
		Spec: simllm.QuerySpec{
			Relation: "stadium", Agg: "min", AggAttr: "opened_year",
		},
	},
	{
		ID: 29, Class: ClassAggregate,
		SQL: `SELECT SUM(albums) FROM singer`,
		NL:  "How many albums have all the singers released in total?",
		Spec: simllm.QuerySpec{
			Relation: "singer", Agg: "sum", AggAttr: "albums",
		},
	},
	{
		ID: 30, Class: ClassAggregate,
		SQL: `SELECT AVG(gdp) FROM country WHERE continent = 'Europe'`,
		NL:  "What is the average GDP of European countries?",
		Spec: simllm.QuerySpec{
			Relation: "country", Agg: "avg", AggAttr: "gdp",
			Filter: []simllm.FilterSpec{{Attr: "continent", Op: "=", Value: "Europe"}},
		},
	},
	{
		ID: 31, Class: ClassAggregate,
		SQL: `SELECT COUNT(*) FROM city WHERE population > 5000000`,
		NL:  "How many cities have more than 5 million inhabitants?",
		Spec: simllm.QuerySpec{
			Relation: "city", Agg: "count",
			Filter: []simllm.FilterSpec{{Attr: "population", Op: ">", Value: "5000000"}},
		},
	},
	{
		ID: 32, Class: ClassAggregate,
		SQL: `SELECT MAX(capacity) FROM stadium`,
		NL:  "What is the capacity of the largest stadium?",
		Spec: simllm.QuerySpec{
			Relation: "stadium", Agg: "max", AggAttr: "capacity",
		},
	},
	{
		ID: 33, Class: ClassAggregate,
		SQL: `SELECT AVG(passengers) FROM airport`,
		NL:  "On average, how many million passengers does an airport serve per year?",
		Spec: simllm.QuerySpec{
			Relation: "airport", Agg: "avg", AggAttr: "passengers",
		},
	},
	{
		ID: 34, Class: ClassAggregate,
		SQL: `SELECT COUNT(*) FROM singer WHERE genre = 'Pop'`,
		NL:  "How many singers perform pop music?",
		Spec: simllm.QuerySpec{
			Relation: "singer", Agg: "count",
			Filter: []simllm.FilterSpec{{Attr: "genre", Op: "=", Value: "Pop"}},
		},
	},
	{
		ID: 35, Class: ClassAggregate,
		SQL: `SELECT continent, COUNT(*) FROM country GROUP BY continent`,
		NL:  "How many countries are there on each continent?",
		Spec: simllm.QuerySpec{
			Relation: "country", Agg: "count", GroupBy: "continent",
		},
	},
	{
		ID: 36, Class: ClassAggregate,
		SQL: `SELECT MIN(height) FROM mountain`,
		NL:  "How high is the lowest of the famous mountains?",
		Spec: simllm.QuerySpec{
			Relation: "mountain", Agg: "min", AggAttr: "height",
		},
	},

	// ------------------------------------------------------------ joins
	{
		ID: 37, Class: ClassJoin,
		SQL: `SELECT c.name, m.birth_date FROM city c, mayor m WHERE c.mayor = m.name AND m.election_year = 2019`,
		NL:  "List names of the cities and mayor birth date for the cities where the current mayor has been in charge since 2019.",
		Spec: simllm.QuerySpec{
			Relation: "city", Select: []string{"name"},
			Join: &simllm.JoinSpec{
				Relation: "mayor", LeftAttr: "mayor", RightAttr: "name",
				Select: []string{"birth_date"},
				Filter: []simllm.FilterSpec{{Attr: "election_year", Op: "=", Value: "2019"}},
			},
		},
	},
	{
		ID: 38, Class: ClassJoin,
		SQL: `SELECT ci.name, co.continent FROM city ci, country co WHERE ci.country = co.name`,
		NL:  "For each city, which continent is it on?",
		Spec: simllm.QuerySpec{
			Relation: "city", Select: []string{"name"},
			Join: &simllm.JoinSpec{
				Relation: "country", LeftAttr: "country", RightAttr: "name",
				Select: []string{"continent"},
			},
		},
	},
	{
		ID: 39, Class: ClassJoin,
		SQL: `SELECT a.iata, c.population FROM airport a, city c WHERE a.city = c.name`,
		NL:  "For each airport, what is the population of its city?",
		Spec: simllm.QuerySpec{
			Relation: "airport", Select: []string{"iata"},
			Join: &simllm.JoinSpec{
				Relation: "city", LeftAttr: "city", RightAttr: "name",
				Select: []string{"population"},
			},
		},
	},
	{
		ID: 40, Class: ClassJoin,
		SQL: `SELECT s.name, c.mayor FROM stadium s, city c WHERE s.city = c.name`,
		NL:  "For each stadium, who is the mayor of its city?",
		Spec: simllm.QuerySpec{
			Relation: "stadium", Select: []string{"name"},
			Join: &simllm.JoinSpec{
				Relation: "city", LeftAttr: "city", RightAttr: "name",
				Select: []string{"mayor"},
			},
		},
	},
	{
		ID: 41, Class: ClassJoin,
		SQL: `SELECT m.name, c.population FROM mountain m, country c WHERE m.country = c.name`,
		NL:  "For each mountain, what is the population of its country?",
		Spec: simllm.QuerySpec{
			Relation: "mountain", Select: []string{"name"},
			Join: &simllm.JoinSpec{
				Relation: "country", LeftAttr: "country", RightAttr: "name",
				Select: []string{"population"},
			},
		},
	},
	{
		ID: 42, Class: ClassJoin,
		SQL: `SELECT s.name, co.capital FROM singer s, country co WHERE s.country = co.name`,
		NL:  "For each singer, what is the capital of their country?",
		Spec: simllm.QuerySpec{
			Relation: "singer", Select: []string{"name"},
			Join: &simllm.JoinSpec{
				Relation: "country", LeftAttr: "country", RightAttr: "name",
				Select: []string{"capital"},
			},
		},
	},
	{
		ID: 43, Class: ClassJoin,
		SQL: `SELECT c.name, m.party FROM city c, mayor m WHERE c.mayor = m.name AND c.population > 5000000`,
		NL:  "For the cities with more than 5 million inhabitants, which party does the mayor belong to?",
		Spec: simllm.QuerySpec{
			Relation: "city", Select: []string{"name"},
			Filter: []simllm.FilterSpec{{Attr: "population", Op: ">", Value: "5000000"}},
			Join: &simllm.JoinSpec{
				Relation: "mayor", LeftAttr: "mayor", RightAttr: "name",
				Select: []string{"party"},
			},
		},
	},
	{
		ID: 44, Class: ClassJoin,
		SQL: `SELECT a.name, co.code FROM airport a, country co WHERE a.country = co.name AND co.continent = 'Europe'`,
		NL:  "List the European airports together with their country code.",
		Spec: simllm.QuerySpec{
			Relation: "airport", Select: []string{"name"},
			Join: &simllm.JoinSpec{
				Relation: "country", LeftAttr: "country", RightAttr: "name",
				Select: []string{"code"},
				Filter: []simllm.FilterSpec{{Attr: "continent", Op: "=", Value: "Europe"}},
			},
		},
	},
	{
		ID: 45, Class: ClassJoin,
		SQL: `SELECT ci.name, co.gdp FROM city ci, country co WHERE ci.country = co.name AND co.continent = 'Asia'`,
		NL:  "For the cities in Asian countries, what is the GDP of their country?",
		Spec: simllm.QuerySpec{
			Relation: "city", Select: []string{"name"},
			Join: &simllm.JoinSpec{
				Relation: "country", LeftAttr: "country", RightAttr: "name",
				Select: []string{"gdp"},
				Filter: []simllm.FilterSpec{{Attr: "continent", Op: "=", Value: "Asia"}},
			},
		},
	},
	{
		ID: 46, Class: ClassJoin,
		SQL: `SELECT m.city, m.name FROM mayor m, city c WHERE m.name = c.mayor AND m.age < 40`,
		NL:  "Which cities have a mayor younger than 40, and who is it?",
		Spec: simllm.QuerySpec{
			Relation: "mayor", Select: []string{"city", "name"},
			Filter: []simllm.FilterSpec{{Attr: "age", Op: "<", Value: "40"}},
			Join: &simllm.JoinSpec{
				Relation: "city", LeftAttr: "name", RightAttr: "mayor",
			},
		},
	},
}
