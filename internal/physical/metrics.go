package physical

import (
	"sync"

	"repro/internal/logical"
)

// NodeMetrics are the actual per-operator counters of one execution,
// keyed by the logical node the operator was compiled from. Prompts
// counts prompts *requested* by the operator (before any cache), so the
// numbers compare directly against the planner's estimates, which do not
// model cache hits.
type NodeMetrics struct {
	Prompts int
	RowsIn  int
	RowsOut int
}

// Metrics collects per-node actuals for EXPLAIN ANALYZE and for the
// optimizer's statistics feedback. Safe for concurrent use (pipelined
// producers update it from their goroutines). A nil *Metrics ignores all
// updates.
type Metrics struct {
	mu sync.Mutex
	m  map[logical.Node]NodeMetrics
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics { return &Metrics{m: map[logical.Node]NodeMetrics{}} }

// Add merges deltas into the node's counters.
func (m *Metrics) Add(n logical.Node, prompts, rowsIn, rowsOut int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	nm := m.m[n]
	nm.Prompts += prompts
	nm.RowsIn += rowsIn
	nm.RowsOut += rowsOut
	m.m[n] = nm
	m.mu.Unlock()
}

// Get returns the node's counters; ok is false when the node never
// reported.
func (m *Metrics) Get(n logical.Node) (NodeMetrics, bool) {
	if m == nil {
		return NodeMetrics{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	nm, ok := m.m[n]
	return nm, ok
}

// TotalPrompts sums requested prompts across all nodes.
func (m *Metrics) TotalPrompts() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for _, nm := range m.m {
		total += nm.Prompts
	}
	return total
}
