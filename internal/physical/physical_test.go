package physical

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/logical"
	"repro/internal/schema"
	"repro/internal/sql/parser"
	"repro/internal/value"
)

// fixture tables

func peopleDef() *schema.TableDef {
	return &schema.TableDef{
		Name:      "people",
		KeyColumn: "name",
		Schema: schema.New(
			schema.Column{Name: "name", Type: value.KindString},
			schema.Column{Name: "city", Type: value.KindString},
			schema.Column{Name: "age", Type: value.KindInt},
		),
	}
}

func citiesDef() *schema.TableDef {
	return &schema.TableDef{
		Name:      "cities",
		KeyColumn: "name",
		Schema: schema.New(
			schema.Column{Name: "name", Type: value.KindString},
			schema.Column{Name: "population", Type: value.KindInt},
		),
	}
}

func peopleRows() *schema.Relation {
	r := schema.NewRelation(peopleDef().Schema.Clone())
	for _, p := range []struct {
		name, city string
		age        int64
	}{
		{"Ann", "Rome", 34},
		{"Bob", "Paris", 58},
		{"Cid", "Rome", 41},
		{"Dee", "Oslo", 29},
		{"Eve", "Paris", 41},
	} {
		r.Append(schema.Tuple{value.Text(p.name), value.Text(p.city), value.Int(p.age)})
	}
	return r
}

func cityRows() *schema.Relation {
	r := schema.NewRelation(citiesDef().Schema.Clone())
	for _, c := range []struct {
		name string
		pop  int64
	}{
		{"Rome", 2873000},
		{"Paris", 2161000},
		{"Tiny", 900},
	} {
		r.Append(schema.Tuple{value.Text(c.name), value.Int(c.pop)})
	}
	return r
}

type fixture struct{}

func (fixture) ResolveTable(name, explicit string) (*schema.TableDef, string, error) {
	switch strings.ToLower(name) {
	case "people":
		return peopleDef(), "DB", nil
	case "cities":
		return citiesDef(), "DB", nil
	}
	return nil, "", fmt.Errorf("no table %s", name)
}

func fixtureEnv() *Env {
	return &Env{Data: func(table string) (*schema.Relation, error) {
		switch strings.ToLower(table) {
		case "people":
			return peopleRows(), nil
		case "cities":
			return cityRows(), nil
		}
		return nil, fmt.Errorf("no data for %s", table)
	}}
}

// runSQL compiles and runs a DB-only query over the fixtures.
func runSQL(t *testing.T, sql string) *schema.Relation {
	t.Helper()
	sel, err := parser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := logical.Build(sel, fixture{})
	if err != nil {
		t.Fatal(err)
	}
	op, err := Compile(plan, fixtureEnv())
	if err != nil {
		t.Fatal(err)
	}
	rel, err := Run(&Context{Ctx: context.Background()}, op)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return rel
}

func cell(t *testing.T, rel *schema.Relation, row, col int) value.Value {
	t.Helper()
	if row >= rel.Cardinality() {
		t.Fatalf("relation has %d rows, wanted row %d:\n%s", rel.Cardinality(), row, rel.String())
	}
	return rel.Rows[row][col]
}

func TestScanProjectFilter(t *testing.T) {
	rel := runSQL(t, "SELECT name FROM people WHERE age > 40")
	if rel.Cardinality() != 3 {
		t.Fatalf("rows = %d:\n%s", rel.Cardinality(), rel.String())
	}
	rel.SortRows()
	if cell(t, rel, 0, 0).AsString() != "Bob" {
		t.Errorf("first = %v", rel.Rows[0])
	}
}

func TestProjectionExpressions(t *testing.T) {
	rel := runSQL(t, "SELECT name, age * 2 AS dbl FROM people WHERE name = 'Ann'")
	if cell(t, rel, 0, 1).AsInt() != 68 {
		t.Errorf("dbl = %v", rel.Rows[0][1])
	}
	if rel.Schema.Columns[1].Name != "dbl" {
		t.Errorf("alias column = %q", rel.Schema.Columns[1].Name)
	}
}

func TestHashJoin(t *testing.T) {
	rel := runSQL(t, "SELECT p.name, c.population FROM people p, cities c WHERE p.city = c.name")
	// Dee lives in Oslo, which is not in the cities table.
	if rel.Cardinality() != 4 {
		t.Fatalf("join rows = %d:\n%s", rel.Cardinality(), rel.String())
	}
	rel.SortRows()
	if cell(t, rel, 0, 0).AsString() != "Ann" || cell(t, rel, 0, 1).AsInt() != 2873000 {
		t.Errorf("row 0 = %v", rel.Rows[0])
	}
}

func TestLeftJoin(t *testing.T) {
	rel := runSQL(t, "SELECT c.name, p.name FROM cities c LEFT JOIN people p ON p.city = c.name")
	// Tiny has no inhabitants → padded with NULL.
	found := false
	for _, row := range rel.Rows {
		if row[0].AsString() == "Tiny" {
			found = true
			if !row[1].IsNull() {
				t.Errorf("Tiny should pair with NULL, got %v", row[1])
			}
		}
	}
	if !found {
		t.Fatalf("left row missing:\n%s", rel.String())
	}
	if rel.Cardinality() != 5 {
		t.Errorf("rows = %d", rel.Cardinality())
	}
}

func TestCrossJoin(t *testing.T) {
	rel := runSQL(t, "SELECT p.name, c.name FROM people p CROSS JOIN cities c")
	if rel.Cardinality() != 15 {
		t.Errorf("cross rows = %d", rel.Cardinality())
	}
}

func TestNonEquiJoin(t *testing.T) {
	rel := runSQL(t, "SELECT p.name FROM people p JOIN cities c ON p.age > c.population")
	if rel.Cardinality() != 0 {
		t.Errorf("no one is older than a population: %d", rel.Cardinality())
	}
	rel = runSQL(t, "SELECT p.name, c.name FROM people p JOIN cities c ON c.population < p.age * 100")
	// Tiny (900) < age*100 for ages > 9 → every person matches Tiny only.
	if rel.Cardinality() != 5 {
		t.Errorf("rows = %d:\n%s", rel.Cardinality(), rel.String())
	}
}

func TestAggregates(t *testing.T) {
	rel := runSQL(t, "SELECT COUNT(*), SUM(age), AVG(age), MIN(age), MAX(age) FROM people")
	row := rel.Rows[0]
	if row[0].AsInt() != 5 {
		t.Errorf("count = %v", row[0])
	}
	if f, _ := row[1].Numeric(); f != 203 {
		t.Errorf("sum = %v", row[1])
	}
	if f, _ := row[2].Numeric(); f != 40.6 {
		t.Errorf("avg = %v", row[2])
	}
	if f, _ := row[3].Numeric(); f != 29 {
		t.Errorf("min = %v", row[3])
	}
	if f, _ := row[4].Numeric(); f != 58 {
		t.Errorf("max = %v", row[4])
	}
}

func TestGroupBy(t *testing.T) {
	rel := runSQL(t, "SELECT city, COUNT(*) FROM people GROUP BY city ORDER BY city")
	if rel.Cardinality() != 3 {
		t.Fatalf("groups = %d", rel.Cardinality())
	}
	if cell(t, rel, 0, 0).AsString() != "Oslo" || cell(t, rel, 0, 1).AsInt() != 1 {
		t.Errorf("group 0 = %v", rel.Rows[0])
	}
	if cell(t, rel, 2, 0).AsString() != "Rome" || cell(t, rel, 2, 1).AsInt() != 2 {
		t.Errorf("group 2 = %v", rel.Rows[2])
	}
}

func TestCountDistinct(t *testing.T) {
	rel := runSQL(t, "SELECT COUNT(DISTINCT city) FROM people")
	if cell(t, rel, 0, 0).AsInt() != 3 {
		t.Errorf("count distinct = %v", rel.Rows[0][0])
	}
}

func TestHaving(t *testing.T) {
	rel := runSQL(t, "SELECT city, COUNT(*) FROM people GROUP BY city HAVING COUNT(*) > 1 ORDER BY city")
	if rel.Cardinality() != 2 {
		t.Fatalf("having groups = %d:\n%s", rel.Cardinality(), rel.String())
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	rel := runSQL(t, "SELECT COUNT(*), MAX(age) FROM people WHERE age > 1000")
	if rel.Cardinality() != 1 {
		t.Fatalf("global aggregate always yields one row, got %d", rel.Cardinality())
	}
	if cell(t, rel, 0, 0).AsInt() != 0 || !rel.Rows[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", rel.Rows[0])
	}
}

func TestSortAndLimit(t *testing.T) {
	rel := runSQL(t, "SELECT name FROM people ORDER BY age DESC LIMIT 2")
	if rel.Cardinality() != 2 {
		t.Fatalf("rows = %d", rel.Cardinality())
	}
	if cell(t, rel, 0, 0).AsString() != "Bob" {
		t.Errorf("oldest first: %v", rel.Rows)
	}
	if rel.Schema.Len() != 1 {
		t.Errorf("hidden sort column must be stripped: %v", rel.Schema)
	}
}

func TestSortStability(t *testing.T) {
	// Cid and Eve share age 41; input order must be preserved.
	rel := runSQL(t, "SELECT name FROM people WHERE age = 41 ORDER BY age")
	if cell(t, rel, 0, 0).AsString() != "Cid" || cell(t, rel, 1, 0).AsString() != "Eve" {
		t.Errorf("stability broken: %v", rel.Rows)
	}
}

func TestOffset(t *testing.T) {
	rel := runSQL(t, "SELECT name FROM people ORDER BY name LIMIT 2 OFFSET 1")
	if rel.Cardinality() != 2 || cell(t, rel, 0, 0).AsString() != "Bob" {
		t.Errorf("offset window = %v", rel.Rows)
	}
}

func TestDistinctOp(t *testing.T) {
	rel := runSQL(t, "SELECT DISTINCT city FROM people ORDER BY city")
	if rel.Cardinality() != 3 {
		t.Errorf("distinct cities = %d", rel.Cardinality())
	}
}

// pullCountingOp counts how often its input stream is pulled.
type pullCountingOp struct {
	inner Operator
	pulls int
}

func (p *pullCountingOp) Schema() *schema.Schema { return p.inner.Schema() }
func (p *pullCountingOp) Open(c *Context) error  { return p.inner.Open(c) }
func (p *pullCountingOp) Close() error           { return p.inner.Close() }
func (p *pullCountingOp) Next() (schema.Tuple, error) {
	p.pulls++
	return p.inner.Next()
}

// TestLimitZeroNeverPullsInput: LIMIT 0 must return io.EOF without
// pulling — or skipping OFFSET rows of — its input.
func TestLimitZeroNeverPullsInput(t *testing.T) {
	probe := &pullCountingOp{inner: NewMemScan(peopleDef().Schema, peopleRows())}
	op := &limitOp{input: probe, n: 0, offset: 2}
	rel, err := Run(&Context{Ctx: context.Background()}, op)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 0 {
		t.Errorf("LIMIT 0 returned %d rows", rel.Cardinality())
	}
	if probe.pulls != 0 {
		t.Errorf("LIMIT 0 pulled its input %d times, want 0", probe.pulls)
	}
}

// TestLimitZeroSQL: the end-to-end LIMIT 0 path through the compiler.
func TestLimitZeroSQL(t *testing.T) {
	rel := runSQL(t, "SELECT name FROM people LIMIT 0")
	if rel.Cardinality() != 0 {
		t.Errorf("LIMIT 0 = %d rows", rel.Cardinality())
	}
}

func TestOrderByNullsLast(t *testing.T) {
	rel := runSQL(t, "SELECT c.name, p.name FROM cities c LEFT JOIN people p ON p.city = c.name ORDER BY p.name")
	last := rel.Rows[rel.Cardinality()-1]
	if !last[1].IsNull() {
		t.Errorf("NULLs must sort last: %v", rel.Rows)
	}
}

func TestImplicitFirstExecution(t *testing.T) {
	rel := runSQL(t, "SELECT age, COUNT(*) FROM people GROUP BY city ORDER BY city")
	if rel.Cardinality() != 3 {
		t.Fatalf("groups = %d", rel.Cardinality())
	}
	// Oslo group: first (only) age is 29.
	if cell(t, rel, 0, 0).AsInt() != 29 {
		t.Errorf("FIRST(age) for Oslo = %v", rel.Rows[0][0])
	}
}
