package physical

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clean"
	"repro/internal/llm"
	"repro/internal/logical"
	"repro/internal/prompt"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// pipelinedCtx builds a Context running the streaming executor with its
// own query-level scheduler.
func pipelinedCtx(ctx context.Context, client llm.Client, workers, buffer int) *Context {
	b := prompt.NewBuilder()
	b.IncludePreamble = false
	return &Context{
		Ctx:               ctx,
		Client:            client,
		Prompts:           b,
		Cleaner:           clean.New(clean.DefaultOptions()),
		MaxScanIterations: 5,
		BatchWorkers:      workers,
		Scheduler:         llm.NewScheduler(nil, workers).Tenant(ctx, "test"),
		PipelineBuffer:    buffer,
	}
}

// townClient scripts a three-town world: the scan finds Alpha, Beta and
// Gamma; the filter keeps the two big ones; the fetch answers their
// populations.
func townClient() *scriptedLLM {
	return (&scriptedLLM{}).
		on("Do not repeat", "Done").
		on("List the names of all towns", "Alpha\nBeta\nGamma").
		on("Has town Alpha population more than 1000000", "yes").
		on("Has town Beta population more than 1000000", "yes").
		on("Has town Gamma population more than 1000000", "no").
		on("population of the town Alpha", "1.2 million").
		on("population of the town Beta", "2,300,000")
}

// townTree builds scan → LLM filter (population > 1M) → fetch population:
// the multi-operator prompt chain the pipelined executor overlaps.
func townTree(t *testing.T) Operator {
	t.Helper()
	def := townDef()
	scan := logical.NewScan(def, "t", "LLM")
	cond := &ast.Binary{
		Op:    ">",
		Left:  &ast.ColumnRef{Table: "t", Name: "population"},
		Right: &ast.Literal{Val: value.Int(1000000)},
	}
	filter := &logical.LLMFilter{Input: scan, Table: def, Binding: "t", Cond: cond, KeyCol: 0}
	fa, err := logical.NewFetchAttr(filter, def, "t", "population", 0)
	if err != nil {
		t.Fatal(err)
	}
	scanOp := &llmKeyScanOp{scan: scan, out: scan.Schema()}
	filterOp := &llmFilterOp{node: filter, input: scanOp}
	return &llmFetchAttrOp{node: fa, input: filterOp, out: fa.Schema()}
}

// TestPipelinedMatchesStopAndGo: the streaming executor must produce
// bit-identical results with the same prompts as stop-and-go execution,
// at strictly lower simulated latency (the waves overlap).
func TestPipelinedMatchesStopAndGo(t *testing.T) {
	// Stop-and-go reference.
	legacyRec := llm.NewRecorder(townClient())
	legacyVerify := llm.NewRecorder(townClient())
	legacyCtx := llmCtx(&scriptedLLM{})
	legacyCtx.Client = legacyRec
	legacyCtx.Verifier = legacyVerify
	want, err := Run(legacyCtx, townTree(t))
	if err != nil {
		t.Fatal(err)
	}
	legacyLat := legacyRec.Stats().SimulatedLatency + legacyVerify.Stats().SimulatedLatency
	legacyPrompts := legacyRec.Stats().Prompts + legacyVerify.Stats().Prompts

	// Pipelined run.
	pipeRec := llm.NewRecorder(townClient())
	pipeVerify := llm.NewRecorder(townClient())
	pctx := pipelinedCtx(context.Background(), pipeRec, 2, 4)
	pctx.Verifier = pipeVerify
	got, err := Run(pctx, townTree(t))
	if err != nil {
		t.Fatal(err)
	}

	if got.String() != want.String() {
		t.Errorf("pipelined result diverged:\nstop-and-go:\n%s\npipelined:\n%s", want.String(), got.String())
	}
	if got.Cardinality() != 2 {
		t.Errorf("rows = %d, want 2:\n%s", got.Cardinality(), got.String())
	}
	pipePrompts := pipeRec.Stats().Prompts + pipeVerify.Stats().Prompts
	if pipePrompts != legacyPrompts {
		t.Errorf("pipelined issued %d prompts, stop-and-go %d", pipePrompts, legacyPrompts)
	}
	if pipeRec.Stats().SimulatedLatency != 0 || pipeVerify.Stats().SimulatedLatency != 0 {
		t.Error("pipelined recorders must not accumulate per-call latency")
	}
	makespan := pctx.Scheduler.Makespan()
	if makespan == 0 || makespan >= legacyLat {
		t.Errorf("pipelined makespan %v must be positive and below stop-and-go %v", makespan, legacyLat)
	}
}

// TestPipelinedVTimePropagation: downstream prompts are anchored to
// their upstream chain, so the critical path spans scan → filter → fetch
// and is longer than any single prompt.
func TestPipelinedVTimePropagation(t *testing.T) {
	pctx := pipelinedCtx(context.Background(), townClient(), 8, 4)
	if _, err := Run(pctx, townTree(t)); err != nil {
		t.Fatal(err)
	}
	// 8 workers: with every prompt independent the span would be one
	// prompt latency; the staged chain forces list page → filter → fetch
	// in sequence, so the span must cover at least three per-prompt bases.
	span := pctx.Scheduler.CriticalPath()
	if span < 3*420*time.Millisecond {
		t.Errorf("critical path %v too short for a 3-deep prompt chain", span)
	}
	if span > pctx.Scheduler.AggregateWork() {
		t.Errorf("critical path %v cannot exceed aggregate work %v", span, pctx.Scheduler.AggregateWork())
	}
}

// pagingLLM invents a fresh town on every list page, forever.
type pagingLLM struct {
	mu    sync.Mutex
	pages int
}

func (d *pagingLLM) Name() string { return "paging" }
func (d *pagingLLM) Complete(ctx context.Context, p string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pages++
	return fmt.Sprintf("Town%d", d.pages), nil
}

func (d *pagingLLM) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages
}

// TestPipelinedLimitStopsUpstream: once a downstream LIMIT is satisfied,
// closing the tree must stop the key scan from issuing further
// "more results" iterations (bounded by the pipeline buffer).
func TestPipelinedLimitStopsUpstream(t *testing.T) {
	client := &pagingLLM{}
	pctx := pipelinedCtx(context.Background(), client, 2, 2)
	pctx.MaxScanIterations = 50

	scan := logical.NewScan(townDef(), "t", "LLM")
	op := &limitOp{input: &llmKeyScanOp{scan: scan, out: scan.Schema()}, n: 3, offset: 0}
	rel, err := Run(pctx, op)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 3 {
		t.Fatalf("rows = %d, want 3", rel.Cardinality())
	}
	// 3 consumed + buffer 2 + one blocked send + one in flight: far below
	// the 50-iteration cap a stop-and-go scan would burn.
	if n := client.count(); n > 10 {
		t.Errorf("LIMIT 3 with buffer 2 issued %d scan pages, early termination failed", n)
	}
}

// stallLLM signals the first call, then blocks until the context dies.
type stallLLM struct {
	started chan struct{}
	once    sync.Once
}

func (s *stallLLM) Name() string { return "stall" }
func (s *stallLLM) Complete(ctx context.Context, p string) (string, error) {
	s.once.Do(func() { close(s.started) })
	<-ctx.Done()
	return "", ctx.Err()
}

// TestPipelinedCancellation: canceling the query context aborts in-flight
// pipelined prompts promptly and surfaces the cancellation.
func TestPipelinedCancellation(t *testing.T) {
	client := &stallLLM{started: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pctx := pipelinedCtx(ctx, client, 2, 4)

	errCh := make(chan error, 1)
	go func() {
		_, err := Run(pctx, townTree(t))
		errCh <- err
	}()
	<-client.started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipelined query did not abort after cancellation")
	}
}

// TestBatchCancellation: the stop-and-go batch path must abort a prompt
// wave mid-flight on context cancellation too.
func TestBatchCancellation(t *testing.T) {
	client := &stallLLM{started: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	c := llmCtx(&scriptedLLM{})
	c.Ctx = ctx
	c.Client = client

	scan := logical.NewScan(townDef(), "t", "LLM")
	keyOp := &memScan{out: scan.Schema(), rel: keysRelation("Alpha", "Beta", "Gamma", "Delta")}
	fa, err := logical.NewFetchAttr(scan, townDef(), "t", "population", 0)
	if err != nil {
		t.Fatal(err)
	}
	op := &llmFetchAttrOp{node: fa, input: keyOp, out: fa.Schema()}

	errCh := make(chan error, 1)
	go func() {
		_, err := Run(c, op)
		errCh <- err
	}()
	<-client.started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batched fetch did not abort after cancellation")
	}
}

// TestPipelinedFetchVerify: cross-model verification runs in pipelined
// mode with the same NULL-on-disagreement semantics as stop-and-go.
func TestPipelinedFetchVerify(t *testing.T) {
	client := (&scriptedLLM{}).
		on("population of the town Alpha", "100").
		on("population of the town Beta", "200")
	verifier := (&scriptedLLM{}).
		on("population of the town Alpha", "105").
		on("population of the town Beta", "900")
	scan := logical.NewScan(townDef(), "t", "LLM")
	keyOp := &memScan{out: scan.Schema(), rel: keysRelation("Alpha", "Beta")}
	fa, err := logical.NewFetchAttr(scan, townDef(), "t", "population", 0)
	if err != nil {
		t.Fatal(err)
	}
	op := &llmFetchAttrOp{node: fa, input: keyOp, out: fa.Schema()}
	pctx := pipelinedCtx(context.Background(), client, 2, 4)
	pctx.Verifier = verifier
	rel, err := Run(pctx, op)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][1].AsInt() != 100 {
		t.Errorf("agreeing value must survive: %v", rel.Rows[0][1])
	}
	if !rel.Rows[1][1].IsNull() {
		t.Errorf("contradicted value must become NULL: %v", rel.Rows[1][1])
	}
}

// TestPipelinedErrorPropagates: a producer-side model failure surfaces
// through Next with the operator's error context.
func TestPipelinedErrorPropagates(t *testing.T) {
	client := townClient()
	client.failOn = "population of the town Beta"
	pctx := pipelinedCtx(context.Background(), client, 2, 4)
	if _, err := Run(pctx, townTree(t)); err == nil {
		t.Error("pipelined model failure must propagate")
	}
}
