package physical

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/clean"
	"repro/internal/logical"
	"repro/internal/prompt"
	"repro/internal/schema"
	"repro/internal/sql/ast"
	"repro/internal/value"
)

// llmKeyScanOp materializes the key-attribute values of an LLM-bound
// relation: one list prompt, then "more results" prompts carrying the
// already-seen keys, until no new keys arrive or the iteration cap is hit
// (Section 4's two critical steps: iteration and termination threshold).
type llmKeyScanOp struct {
	scan *logical.Scan
	out  *schema.Schema

	rows   []schema.Tuple
	cursor int
}

func (s *llmKeyScanOp) Schema() *schema.Schema { return s.out }

func (s *llmKeyScanOp) Open(c *Context) error {
	if c.Client == nil {
		return fmt.Errorf("physical: LLM scan of %s without an LLM client", s.scan.Table.Name)
	}
	conds, err := pushedConditions(s.scan.PushedFilter)
	if err != nil {
		return err
	}
	keyKind := s.out.Columns[0].Type

	var keys []string
	seen := map[string]bool{}
	maxIter := c.MaxScanIterations
	if maxIter <= 0 {
		maxIter = 12
	}
	for iter := 0; iter < maxIter; iter++ {
		p := c.Prompts.KeyList(s.scan.Table.Name, s.scan.Table.KeyColumn, conds, keys)
		resp, err := c.Complete(p)
		if err != nil {
			return fmt.Errorf("physical: key scan of %s: %w", s.scan.Table.Name, err)
		}
		trimmed := strings.TrimSpace(resp)
		if strings.EqualFold(trimmed, prompt.DoneMarker) || strings.EqualFold(trimmed, prompt.UnknownMarker) {
			break
		}
		added := 0
		for _, item := range clean.SplitList(resp) {
			k := c.Cleaner.Key(item)
			if k == "" {
				continue
			}
			lower := strings.ToLower(k)
			if seen[lower] {
				continue
			}
			seen[lower] = true
			keys = append(keys, k)
			added++
		}
		if added == 0 {
			break
		}
	}

	s.rows = s.rows[:0]
	for _, k := range keys {
		v, err := value.ParseAs(keyKind, k)
		if err != nil || v.IsNull() {
			continue // enforce the key's type constraint
		}
		s.rows = append(s.rows, schema.Tuple{v})
	}
	s.cursor = 0
	return nil
}

func (s *llmKeyScanOp) Close() error { return nil }

func (s *llmKeyScanOp) Next() (schema.Tuple, error) {
	if s.cursor >= len(s.rows) {
		return nil, io.EOF
	}
	t := s.rows[s.cursor]
	s.cursor++
	return t, nil
}

// pushedConditions converts a pushed-down predicate into prompt
// conditions.
func pushedConditions(e ast.Expr) ([]prompt.Condition, error) {
	if e == nil {
		return nil, nil
	}
	var out []prompt.Condition
	for _, c := range splitAnd(e) {
		b, ok := c.(*ast.Binary)
		if !ok {
			return nil, fmt.Errorf("physical: cannot push %s into a prompt", c.String())
		}
		ref, okL := b.Left.(*ast.ColumnRef)
		lit, okR := b.Right.(*ast.Literal)
		if !okL || !okR {
			return nil, fmt.Errorf("physical: cannot push %s into a prompt", c.String())
		}
		out = append(out, prompt.Condition{
			Attr:     prompt.Humanize(ref.Name),
			OpPhrase: prompt.OpPhrase(b.Op),
			Value:    lit.Val.String(),
		})
	}
	return out, nil
}

// llmFetchAttrOp retrieves one attribute per input tuple with a batched
// prompt per key, appending the cleaned value as a new column.
type llmFetchAttrOp struct {
	node  *logical.FetchAttr
	input Operator
	out   *schema.Schema

	rows   []schema.Tuple
	cursor int
}

func (f *llmFetchAttrOp) Schema() *schema.Schema { return f.out }

func (f *llmFetchAttrOp) Open(c *Context) error {
	if c.Client == nil {
		return fmt.Errorf("physical: LLM fetch of %s without an LLM client", f.node.Attr)
	}
	if err := f.input.Open(c); err != nil {
		return err
	}
	rows, err := drain(f.input)
	f.input.Close()
	if err != nil {
		return err
	}

	kind := f.out.Columns[f.out.Len()-1].Type
	prompts := make([]string, len(rows))
	for i, row := range rows {
		key := row[f.node.KeyCol].String()
		prompts[i] = c.Prompts.Attr(f.node.Table.Name, key, f.node.Attr)
	}
	answers, err := c.CompleteBatch(c.Client, prompts)
	if err != nil {
		return fmt.Errorf("physical: fetching %s.%s: %w", f.node.Table.Name, f.node.Attr, err)
	}

	values := make([]value.Value, len(rows))
	for i := range rows {
		values[i] = c.Cleaner.Cell(answers[i], kind)
	}

	// Cross-model verification (Section 6): ask a second model the same
	// question and NULL out disagreements.
	if c.Verifier != nil {
		verdicts, err := c.CompleteBatch(c.Verifier, prompts)
		if err != nil {
			return fmt.Errorf("physical: verifying %s.%s: %w", f.node.Table.Name, f.node.Attr, err)
		}
		tol := c.VerifyTolerance
		if tol <= 0 {
			tol = 0.1
		}
		for i := range values {
			if values[i].IsNull() {
				continue
			}
			other := c.Cleaner.Cell(verdicts[i], kind)
			if !valuesAgree(values[i], other, tol) {
				values[i] = value.Null()
			}
		}
	}

	f.rows = make([]schema.Tuple, len(rows))
	for i, row := range rows {
		f.rows[i] = append(row.Clone(), values[i])
	}
	f.cursor = 0
	return nil
}

// valuesAgree compares two independently produced answers: numerics within
// a relative tolerance, strings case-insensitively.
func valuesAgree(a, b value.Value, tol float64) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	af, aNum := a.Numeric()
	bf, bNum := b.Numeric()
	if aNum && bNum {
		if af == 0 {
			return bf == 0
		}
		d := af - bf
		if d < 0 {
			d = -d
		}
		ref := af
		if ref < 0 {
			ref = -ref
		}
		return d/ref <= tol
	}
	return strings.EqualFold(strings.TrimSpace(a.String()), strings.TrimSpace(b.String()))
}

func (f *llmFetchAttrOp) Close() error { return nil }

func (f *llmFetchAttrOp) Next() (schema.Tuple, error) {
	if f.cursor >= len(f.rows) {
		return nil, io.EOF
	}
	t := f.rows[f.cursor]
	f.cursor++
	return t, nil
}

// llmFilterOp keeps tuples for which the per-key boolean prompt answers
// yes ("Has city Chicago population more than 1000000? Answer yes or no.").
type llmFilterOp struct {
	node  *logical.LLMFilter
	input Operator

	rows   []schema.Tuple
	cursor int
}

func (f *llmFilterOp) Schema() *schema.Schema { return f.node.Schema() }

func (f *llmFilterOp) Open(c *Context) error {
	if c.Client == nil {
		return fmt.Errorf("physical: LLM filter without an LLM client")
	}
	if err := f.input.Open(c); err != nil {
		return err
	}
	rows, err := drain(f.input)
	f.input.Close()
	if err != nil {
		return err
	}

	ref := f.node.Cond.Left.(*ast.ColumnRef)
	lit := f.node.Cond.Right.(*ast.Literal)
	opPhrase := prompt.OpPhrase(f.node.Cond.Op)

	prompts := make([]string, len(rows))
	for i, row := range rows {
		key := row[f.node.KeyCol].String()
		prompts[i] = c.Prompts.Filter(f.node.Table.Name, key, ref.Name, opPhrase, lit.Val.String())
	}
	answers, err := c.CompleteBatch(c.Client, prompts)
	if err != nil {
		return fmt.Errorf("physical: LLM filter %s: %w", f.node.Cond.String(), err)
	}

	f.rows = f.rows[:0]
	for i, row := range rows {
		if isYes(answers[i]) {
			f.rows = append(f.rows, row)
		}
	}
	f.cursor = 0
	return nil
}

func isYes(s string) bool {
	s = strings.ToLower(strings.TrimSpace(s))
	return strings.HasPrefix(s, "yes") || strings.HasPrefix(s, "true")
}

func (f *llmFilterOp) Close() error { return nil }

func (f *llmFilterOp) Next() (schema.Tuple, error) {
	if f.cursor >= len(f.rows) {
		return nil, io.EOF
	}
	t := f.rows[f.cursor]
	f.cursor++
	return t, nil
}
